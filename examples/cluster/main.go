// Cluster demonstrates the N-device generalisation of the paper's
// Algorithm 2: a search cluster of one Xeon host and two Xeon Phi
// coprocessors, comparing the static residue split against the dynamic
// device-level chunk queue the paper names as future work, then running a
// batched search and a streaming Submit/Results session.
//
// Run with: go run ./examples/cluster [-scale 0.003]
package main

import (
	"flag"
	"fmt"
	"log"

	"heterosw"
)

func main() {
	scale := flag.Float64("scale", 0.003, "database scale relative to Swiss-Prot (0.003 ~ 1.6k sequences)")
	flag.Parse()

	db, queries := heterosw.SyntheticSwissProt(*scale, true)
	fmt.Println("database:", db)
	query := queries[9] // the 1000-residue benchmark query
	fmt.Printf("query:    %s (%d aa)\n\n", query.ID(), query.Len())

	roster := []heterosw.DeviceKind{heterosw.DeviceXeon, heterosw.DevicePhi, heterosw.DevicePhi}

	// One search per distribution strategy. Scores are identical by
	// construction; only the simulated schedule changes.
	for _, dist := range []string{"static", "dynamic", "guided"} {
		cl, err := heterosw.NewCluster(db, heterosw.ClusterOptions{Devices: roster, Dist: dist})
		if err != nil {
			log.Fatal(err)
		}
		res, err := cl.Search(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.2f simulated GCUPS, makespan %.4fs\n", dist, res.SimGCUPS, res.SimSeconds)
		for _, b := range res.Backends {
			fmt.Printf("  %-8s %5.1f%% of residues, %2d chunk(s), %8.4fs busy\n",
				b.Name, b.Share*100, b.Chunks, b.SimSeconds)
		}
	}

	// Batched search: the shard split and per-backend lane packings are
	// built once and reused for every query in the batch.
	cl, err := heterosw.NewCluster(db, heterosw.ClusterOptions{Devices: roster, Dist: "dynamic", Options: heterosw.Options{TopK: 1}})
	if err != nil {
		log.Fatal(err)
	}
	batch := queries[:5]
	results, err := cl.SearchBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbatch of 5 queries (amortised pre-processing):")
	for i, r := range results {
		fmt.Printf("  %-12s (%4d aa) top hit %-12s score %5d\n",
			batch[i].ID(), batch[i].Len(), r.Hits[0].ID, r.Hits[0].Score)
	}

	// Streaming session: submissions return immediately; results arrive
	// in submission order on the Results channel.
	for _, q := range queries[5:8] {
		if err := cl.Submit(q); err != nil {
			log.Fatal(err)
		}
	}
	cl.Close()
	fmt.Println("\nstreaming session:")
	for sr := range cl.Results() {
		if sr.Err != nil {
			log.Fatal(sr.Err)
		}
		fmt.Printf("  #%d %-12s -> top hit %-12s (%.2f GCUPS simulated)\n",
			sr.Index, sr.Query.ID(), sr.Result.Hits[0].ID, sr.Result.SimGCUPS)
	}
}
