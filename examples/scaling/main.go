// Scaling studies the two levers the paper identifies as essential for
// heterogeneous Smith-Waterman throughput — thread-level parallelism and
// the OpenMP scheduling policy — using the functional engine and the
// simulated device models side by side.
//
// Run with: go run ./examples/scaling [-scale 0.005]
package main

import (
	"flag"
	"fmt"
	"log"

	"heterosw"
)

func main() {
	scale := flag.Float64("scale", 0.005, "database scale relative to Swiss-Prot")
	flag.Parse()

	db, queries := heterosw.SyntheticSwissProt(*scale, true)
	query := queries[10] // 1500 residues
	fmt.Println("database:", db)
	fmt.Printf("query:    %s (%d aa)\n", query.ID(), query.Len())

	fmt.Println("\n-- thread scaling (intrinsic-SP, dynamic schedule, simulated devices) --")
	fmt.Printf("%8s %16s %16s\n", "threads", "xeon GCUPS", "phi GCUPS")
	phiThreads := map[int]int{1: 30, 2: 60, 4: 120, 8: 180, 16: 240, 32: 240}
	for _, t := range []int{1, 2, 4, 8, 16, 32} {
		xeon, err := db.Search(query, heterosw.Options{Threads: t})
		if err != nil {
			log.Fatal(err)
		}
		phi, err := db.Search(query, heterosw.Options{Device: heterosw.DevicePhi, Threads: phiThreads[t]})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %16.2f %11.2f@%dT\n", t, xeon.SimGCUPS, phi.SimGCUPS, phiThreads[t])
	}

	fmt.Println("\n-- scheduling policy (intrinsic-SP, Xeon 32T) --")
	fmt.Printf("%10s %14s %14s\n", "policy", "sorted db", "unsorted db")
	seqs := make([]heterosw.Sequence, db.Len())
	for i := range seqs {
		seqs[i] = db.Seq(i)
	}
	unsortedDB, err := heterosw.NewDatabaseUnsorted(seqs)
	if err != nil {
		log.Fatal(err)
	}
	for _, policy := range []string{"static", "dynamic", "guided"} {
		a, err := db.Search(query, heterosw.Options{Schedule: policy})
		if err != nil {
			log.Fatal(err)
		}
		b, err := unsortedDB.Search(query, heterosw.Options{Schedule: policy})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10s %14.2f %14.2f\n", policy, a.SimGCUPS, b.SimGCUPS)
	}
	fmt.Println("\npaper: dynamic outperforms static significantly; guided is slightly behind dynamic;")
	fmt.Println("pre-sorting the database by length keeps lane groups tight and the schedule balanced.")

	fmt.Println("\n-- kernel variants (Xeon 32T vs Phi 240T, simulated) --")
	fmt.Printf("%14s %12s %12s %14s\n", "variant", "xeon", "phi", "host wall GCUPS")
	for _, v := range heterosw.Variants() {
		x, err := db.Search(query, heterosw.Options{Variant: v})
		if err != nil {
			log.Fatal(err)
		}
		p, err := db.Search(query, heterosw.Options{Variant: v, Device: heterosw.DevicePhi})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%14s %12.2f %12.2f %14.3f\n", v, x.SimGCUPS, p.SimGCUPS, x.WallGCUPS)
	}
}
