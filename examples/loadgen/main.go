// Command loadgen drives serving traffic against the swserve HTTP API and
// reports throughput and latency, demonstrating what the micro-batching
// scheduler buys over one-query-at-a-time serving: concurrent requests
// coalesce into micro-batches, identical in-flight queries share one
// execution, and repeated queries come straight from the LRU cache.
//
// With no -url it is fully self-contained: it builds a synthetic cluster,
// mounts the JSON API on an in-process test server and drives load
// against that — run it from the repo root with:
//
//	go run ./examples/loadgen
//	go run ./examples/loadgen -requests 256 -concurrency 32 -distinct 8
//	go run ./examples/loadgen -url http://localhost:7734
//
// The workload models serving traffic: -requests requests drawn from a
// pool of -distinct queries (hot queries repeat, as real traffic does).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"heterosw"
)

type searchRequest struct {
	ID       string `json:"id"`
	Residues string `json:"residues"`
	TopK     int    `json:"top_k"`
}

type searchResponse struct {
	ID   string `json:"id"`
	Hits []struct {
		ID    string `json:"id"`
		Score int    `json:"score"`
	} `json:"hits"`
}

func main() {
	var (
		url         = flag.String("url", "", "swserve base URL (empty: spin up an in-process server)")
		scale       = flag.Float64("scale", 0.0005, "synthetic database scale for the in-process server")
		requests    = flag.Int("requests", 128, "total requests to send")
		concurrency = flag.Int("concurrency", 16, "concurrent client connections")
		distinct    = flag.Int("distinct", 8, "distinct queries in the workload pool")
		qlen        = flag.Int("qlen", 120, "residues per generated query")
		seed        = flag.Int64("seed", 42, "workload RNG seed")
	)
	flag.Parse()

	base := *url
	if base == "" {
		db, _ := heterosw.SyntheticSwissProt(*scale, false)
		cl, err := heterosw.NewCluster(db, heterosw.ClusterOptions{Dist: "dynamic"})
		if err != nil {
			fatal(err)
		}
		ts := httptest.NewServer(heterosw.NewHTTPHandler(cl))
		defer ts.Close()
		defer cl.CloseNow()
		base = ts.URL
		fmt.Printf("loadgen: in-process server over %s\n", db)
	}

	rng := rand.New(rand.NewSource(*seed))
	pool := make([]searchRequest, *distinct)
	const letters = "ARNDCQEGHILKMFPSTWYV"
	for i := range pool {
		buf := make([]byte, *qlen)
		for j := range buf {
			buf[j] = letters[rng.Intn(len(letters))]
		}
		pool[i] = searchRequest{ID: fmt.Sprintf("q%d", i), Residues: string(buf), TopK: 3}
	}
	// Serving traffic repeats hot queries; shuffle a fixed request
	// schedule so every run is reproducible.
	schedule := make([]int, *requests)
	for i := range schedule {
		schedule[i] = i % *distinct
	}
	rng.Shuffle(len(schedule), func(i, j int) { schedule[i], schedule[j] = schedule[j], schedule[i] })

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		failures  int
	)
	next := make(chan int, len(schedule))
	for _, qi := range schedule {
		next <- qi
	}
	close(next)
	client := &http.Client{Timeout: 5 * time.Minute}
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range next {
				t0 := time.Now()
				err := post(client, base+"/search", pool[qi])
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					failures++
					fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				} else {
					latencies = append(latencies, d)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	if len(latencies) == 0 {
		fatal(fmt.Errorf("all %d requests failed", *requests))
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	fmt.Printf("loadgen: %d requests (%d distinct queries, %d clients) in %v\n",
		*requests, *distinct, *concurrency, wall.Round(time.Millisecond))
	fmt.Printf("loadgen: %.1f req/s, %d failures\n", float64(len(latencies))/wall.Seconds(), failures)
	fmt.Printf("loadgen: latency p50 %v  p95 %v  max %v\n",
		pct(0.50).Round(time.Millisecond), pct(0.95).Round(time.Millisecond), pct(1.0).Round(time.Millisecond))

	if resp, err := http.Get(base + "/healthz"); err == nil {
		var health struct {
			Queries   int64 `json:"queries"`
			Scheduler struct {
				Batches        int64 `json:"batches"`
				BatchedQueries int64 `json:"batched_queries"`
				Joined         int64 `json:"joined"`
				CacheHits      int64 `json:"cache_hits"`
			} `json:"scheduler"`
			Cache struct {
				Hits int64 `json:"hits"`
			} `json:"cache"`
		}
		if json.NewDecoder(resp.Body).Decode(&health) == nil {
			meanBatch := 0.0
			if health.Scheduler.Batches > 0 {
				meanBatch = float64(health.Scheduler.BatchedQueries) / float64(health.Scheduler.Batches)
			}
			fmt.Printf("loadgen: server ran %d searches in %d micro-batches (mean %.1f/batch), "+
				"%d joined in flight, %d cache hits\n",
				health.Queries, health.Scheduler.Batches, meanBatch,
				health.Scheduler.Joined, health.Scheduler.CacheHits)
		}
		resp.Body.Close()
	}
}

func post(client *http.Client, url string, req searchRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, msg)
	}
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("bad response: %v", err)
	}
	if len(sr.Hits) == 0 {
		return fmt.Errorf("response carries no hits")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
