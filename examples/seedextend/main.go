// Seedextend demonstrates the workflow the paper's introduction motivates:
// BLAST-style heuristic search built on Smith-Waterman as the rescoring
// primitive. A k-mer index finds seed matches, seeds are extended with the
// library's banded Smith-Waterman, and the candidates are compared against
// the exhaustive (full Smith-Waterman) search to measure recall.
//
// Run with: go run ./examples/seedextend [-k 4] [-band 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"heterosw"
)

// kmerIndex maps every k-mer to the (sequence, offset) positions where it
// occurs — the hash table BLAST builds over the database.
type kmerIndex struct {
	k    int
	post map[string][]posting
}

type posting struct {
	seq int
	off int
}

func buildIndex(db *heterosw.Database, k int) *kmerIndex {
	idx := &kmerIndex{k: k, post: make(map[string][]posting)}
	for i := 0; i < db.Len(); i++ {
		s := db.Seq(i).String()
		for off := 0; off+k <= len(s); off++ {
			w := s[off : off+k]
			idx.post[w] = append(idx.post[w], posting{seq: i, off: off})
		}
	}
	return idx
}

// seeds returns candidate (sequence, diagonal) pairs hit by exact k-mer
// matches of the query, with hit counts.
func (idx *kmerIndex) seeds(query string) map[posting]int {
	hits := make(map[posting]int)
	for off := 0; off+idx.k <= len(query); off++ {
		w := query[off : off+idx.k]
		for _, p := range idx.post[w] {
			// Key by (sequence, diagonal): diagonal = subject offset -
			// query offset, the invariant of an ungapped match.
			hits[posting{seq: p.seq, off: p.off - off}]++
		}
	}
	return hits
}

func main() {
	k := flag.Int("k", 4, "seed k-mer length")
	band := flag.Int("band", 16, "band half-width for seed extension")
	minSeeds := flag.Int("minseeds", 2, "minimum seed hits on one diagonal to trigger extension")
	flag.Parse()

	db, queries := heterosw.SyntheticSwissProt(0.002, true)
	fmt.Println("database:", db)
	query := queries[4] // 464 residues
	fmt.Printf("query:    %s (%d aa), k=%d band=%d\n\n", query.ID(), query.Len(), *k, *band)

	// Ground truth: exhaustive Smith-Waterman over the whole database.
	t0 := time.Now()
	exact, err := db.Search(query, heterosw.Options{})
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(t0)
	type scored struct {
		idx, score int
	}
	var truth []scored
	for i, s := range exact.Scores {
		truth = append(truth, scored{i, s})
	}
	sort.Slice(truth, func(a, b int) bool { return truth[a].score > truth[b].score })
	const topN = 10

	// Heuristic pipeline: index, seed, extend with banded SW.
	t1 := time.Now()
	idx := buildIndex(db, *k)
	indexTime := time.Since(t1)

	t2 := time.Now()
	seedHits := idx.seeds(query.String())
	candScores := make(map[int]int)
	extended := 0
	for cand, count := range seedHits {
		if count < *minSeeds {
			continue
		}
		extended++
		sc, err := heterosw.ScoreBanded(query, db.Seq(cand.seq), cand.off, *band, heterosw.AlignOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if sc > candScores[cand.seq] {
			candScores[cand.seq] = sc
		}
	}
	searchTime := time.Since(t2)

	var heuristic []scored
	for i, s := range candScores {
		heuristic = append(heuristic, scored{i, s})
	}
	sort.Slice(heuristic, func(a, b int) bool {
		if heuristic[a].score != heuristic[b].score {
			return heuristic[a].score > heuristic[b].score
		}
		return heuristic[a].idx < heuristic[b].idx
	})

	// Recall: how many of the true top-N subjects did the heuristic rank
	// in its own top-N?
	inTruth := make(map[int]bool)
	for _, t := range truth[:topN] {
		inTruth[t.idx] = true
	}
	found := 0
	for i := 0; i < topN && i < len(heuristic); i++ {
		if inTruth[heuristic[i].idx] {
			found++
		}
	}

	fmt.Printf("exhaustive SW:   %d alignments, %v\n", db.Len(), exactTime.Round(time.Millisecond))
	fmt.Printf("seed-and-extend: %d banded extensions after k-mer seeding (index build %v, search %v)\n",
		extended, indexTime.Round(time.Millisecond), searchTime.Round(time.Millisecond))
	fmt.Printf("recall: %d/%d of the true top-%d subjects recovered\n\n", found, topN, topN)

	fmt.Printf("%4s %-14s %9s %9s\n", "#", "subject", "heuristic", "exact")
	for i := 0; i < topN && i < len(heuristic); i++ {
		h := heuristic[i]
		fmt.Printf("%4d %-14s %9d %9d\n", i+1, db.Seq(h.idx).ID(), h.score, exact.Scores[h.idx])
	}
	fmt.Println("\n(heuristic scores are banded lower bounds; BLAST-style tools rescore final candidates with full SW)")
}
