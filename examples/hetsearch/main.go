// Hetsearch reproduces the paper's headline scenario end to end on the
// functional engine: a Smith-Waterman database search split between the
// Xeon host model and the Xeon Phi coprocessor model (Algorithm 2), with a
// sweep over the workload distribution (Figure 8) and the energy view the
// paper proposes as future work.
//
// Run with: go run ./examples/hetsearch [-scale 0.005]
package main

import (
	"flag"
	"fmt"
	"log"

	"heterosw"
)

func main() {
	scale := flag.Float64("scale", 0.005, "database scale relative to Swiss-Prot (0.005 ~ 2.7k sequences)")
	flag.Parse()

	db, queries := heterosw.SyntheticSwissProt(*scale, true)
	fmt.Println("database:", db)
	query := queries[9] // the 1000-residue benchmark query
	fmt.Printf("query:    %s (%d aa)\n\n", query.ID(), query.Len())

	// Single-device baselines.
	xeon, err := db.Search(query, heterosw.Options{Device: heterosw.DeviceXeon})
	if err != nil {
		log.Fatal(err)
	}
	phi, err := db.Search(query, heterosw.Options{Device: heterosw.DevicePhi})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Xeon alone: %6.2f simulated GCUPS\n", xeon.SimGCUPS)
	fmt.Printf("Phi alone:  %6.2f simulated GCUPS (includes PCIe offload transfers)\n\n", phi.SimGCUPS)

	// The paper's Figure 8: sweep the share of the database offloaded to
	// the coprocessor and watch the hybrid throughput peak near the
	// homogeneous point.
	var devices []heterosw.DeviceInfo = heterosw.Devices()
	xeonW, phiW := devices[0].TDPWatts, devices[1].TDPWatts
	fmt.Printf("%8s %14s %14s %12s\n", "phi %", "hybrid GCUPS", "vs best solo", "GCUPS/W")
	bestShare, bestG := 0.0, 0.0
	for p := 0; p <= 100; p += 10 {
		share := float64(p) / 100
		if p == 0 {
			share = -1 // HeteroOptions treats 0 as "default"; negative means a true zero
		}
		res, err := db.SearchHetero(query, heterosw.HeteroOptions{PhiShare: share})
		if err != nil {
			log.Fatal(err)
		}
		solo := xeon.SimGCUPS
		if phi.SimGCUPS > solo {
			solo = phi.SimGCUPS
		}
		watts := xeonW + phiW
		fmt.Printf("%8d %14.2f %13.2fx %12.4f\n", p, res.SimGCUPS, res.SimGCUPS/solo, res.SimGCUPS/watts)
		if res.SimGCUPS > bestG {
			bestG, bestShare = res.SimGCUPS, float64(p)/100
		}
	}
	fmt.Printf("\nbest split: %.0f%% on the Phi -> %.2f GCUPS", bestShare*100, bestG)
	fmt.Printf(" (paper: 55%% -> 62.6 GCUPS at full database scale)\n")

	// Energy view (the paper's future-work): the hybrid wins on raw
	// throughput, but GCUPS per watt tells a different story.
	fmt.Printf("\nenergy efficiency: Xeon alone %.4f, Phi alone %.4f, hybrid best %.4f GCUPS/W\n",
		xeon.SimGCUPS/xeonW, phi.SimGCUPS/phiW, bestG/(xeonW+phiW))
}
