// Quickstart: build a small synthetic protein database and run one
// two-phase aligned search — the vectorised score pass selects the top
// hits, the traceback phase decorates them with coordinates, CIGARs and
// identities, and a fitted null model adds bit scores and E-values — all
// from a single Cluster.Search call.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"heterosw"
)

func main() {
	// A 1/1000-scale Swiss-Prot stand-in (~540 sequences) with the
	// paper's 20 benchmark queries planted inside it.
	db, queries := heterosw.SyntheticSwissProt(0.001, true)
	fmt.Println("database:", db)

	query := queries[2] // a 222-residue query, quick to align everywhere
	fmt.Printf("query:    %s (%d aa)\n\n", query.ID(), query.Len())

	// The paper's Xeon+Phi pair with the dynamic work queue; any roster
	// works (e.g. Devices: []heterosw.DeviceKind{heterosw.DeviceXeon}).
	cl, err := heterosw.NewCluster(db, heterosw.ClusterOptions{Dist: "dynamic"})
	if err != nil {
		log.Fatal(err)
	}

	// One call: score pass + tracebacks over the top 5 hits + E-values.
	res, err := cl.Search(query, heterosw.ReportOptions{
		Alignments: true,
		EValues:    true,
		TopK:       5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%.2f simulated GCUPS across %d backends (%.3f GCUPS wall-clock)\n\n",
		res.SimGCUPS, len(res.Backends), res.WallGCUPS)
	for i, h := range res.Hits {
		fmt.Printf("  %d. %-12s score %5d  bits %6.1f  E-value %.2g  CIGAR %s\n",
			i+1, h.ID, h.Score,
			h.Significance.BitScore, h.Significance.EValue, h.Alignment.CIGAR)
	}

	// The same decorated result renders as a BLAST-style report.
	fmt.Println()
	if err := heterosw.WriteReport(os.Stdout, query, db, res, 60); err != nil {
		log.Fatal(err)
	}
}
