// Quickstart: build a small synthetic protein database, search one query
// with the paper's best configuration (intrinsic-SP kernels, blocking,
// BLOSUM62, gaps 10/2), and print the top hits with one full alignment.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"heterosw"
)

func main() {
	// A 1/1000-scale Swiss-Prot stand-in (~540 sequences) with the
	// paper's 20 benchmark queries planted inside it.
	db, queries := heterosw.SyntheticSwissProt(0.001, true)
	fmt.Println("database:", db)

	query := queries[2] // a 222-residue query, quick to align everywhere
	fmt.Printf("query:    %s (%d aa)\n\n", query.ID(), query.Len())

	res, err := db.Search(query, heterosw.Options{TopK: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%.2f simulated GCUPS on %s (%d simulated threads), %.3f GCUPS wall-clock\n\n",
		res.SimGCUPS, heterosw.DeviceXeon, res.Threads, res.WallGCUPS)
	sig, err := res.FitSignificance(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top hits (significance from the fitted null model,", sig, "):")
	for i, h := range res.Hits {
		fmt.Printf("  %d. %-12s score %5d  bits %6.1f  E-value %.2g\n",
			i+1, h.ID, h.Score, sig.BitScore(h.Score), sig.EValue(h.Score))
	}

	// The planted query must be its own best hit; show that alignment.
	best := res.Hits[0]
	al, err := heterosw.Align(query, db.Seq(best.Index), heterosw.AlignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest alignment (CIGAR %s):\n%s", al.CIGAR(), al.Format(60))
}
