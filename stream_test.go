package heterosw

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutines polls until the live goroutine count drops to at most
// want, failing the test after a generous deadline. It is how the leak
// regression tests prove every streaming goroutine exits.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= want {
			return
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("%d goroutines still alive (want <= %d):\n%s", n, want, buf[:runtime.Stack(buf, true)])
}

// shortQueries builds n distinct short queries so streaming tests measure
// scheduler behaviour, not kernel time.
func shortQueries(n, length int) []Sequence {
	const letters = "ARNDCQEGHILKMFPSTWYV"
	out := make([]Sequence, n)
	seed := uint32(1)
	for i := range out {
		buf := make([]byte, length)
		for j := range buf {
			seed = seed*1664525 + 1013904223
			buf[j] = letters[seed%uint32(len(letters))]
		}
		out[i] = NewSequence(fmt.Sprintf("sq%d", i), string(buf))
	}
	return out
}

// Regression for the PR-1 goroutine leak: the old streamWorker blocked
// forever on its unconditional channel send when the Results consumer
// walked away. Now an abandoned consumer calls CloseNow (or cancels the
// stream context) and every goroutine — delivery, collector, batch
// workers — exits.
func TestStreamAbandonedConsumerLeavesNoGoroutines(t *testing.T) {
	db, _ := tinyDB(t) // searches are microseconds: this test times the scheduler, not kernels
	queries := shortQueries(3*streamBuffer, 12)
	base := runtime.NumGoroutine()
	cl, err := NewCluster(db, ClusterOptions{Dist: "dynamic"})
	if err != nil {
		t.Fatal(err)
	}
	st := cl.NewStream(context.Background())
	// Far more submissions than the streamBuffer channel depth, so the
	// delivery goroutine is guaranteed to end up blocked on the Results
	// send — exactly where the PR-1 worker leaked forever.
	for i := 0; i < 3*streamBuffer; i++ {
		if err := st.Submit(queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Consume one result, then abandon the stream like a crashed client.
	sr := <-st.Results()
	if sr.Err != nil {
		t.Fatal(sr.Err)
	}
	st.CloseNow()
	if _, open := <-drain(st.Results()); open {
		t.Fatal("Results not closed after CloseNow")
	}
	if err := st.Submit(queries[0]); err == nil {
		t.Fatal("Submit accepted after CloseNow")
	}
	waitGoroutines(t, base)
	// The cluster survives an aborted stream: a fresh session works.
	st2 := cl.NewStream(context.Background())
	if err := st2.Submit(queries[0]); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	sr2, open := <-st2.Results()
	if !open || sr2.Err != nil {
		t.Fatalf("fresh stream after abort: open=%v err=%v", open, sr2.Err)
	}
}

// A producer running arbitrarily far ahead of the consumer must not cause
// unbounded completed-result memory: the stream forwards at most its
// window to the scheduler until deliveries free slots (the PR-1 worker's
// memory bound, restored).
func TestStreamBacklogBoundsForwarding(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	st := cl.NewStream(context.Background())
	const n = 600
	queries := shortQueries(n, 12)
	for _, q := range queries {
		if err := st.Submit(q); err != nil {
			t.Fatal(err)
		}
	}
	// Without consuming anything, let the scheduler quiesce: forwarded
	// submissions must stop at the window (plus the one the deliverer
	// holds), even though 600 are queued.
	deadline := time.Now().Add(10 * time.Second)
	var last int64 = -1
	for time.Now().Before(deadline) {
		cur := st.sched.Stats().Submitted
		if cur == last {
			break
		}
		last = cur
		time.Sleep(50 * time.Millisecond)
	}
	// The hard bound is the forwarding window, plus the streamBuffer
	// results the delivery goroutine can park in the Results channel,
	// plus the one delivery in its hand.
	if got, bound := st.sched.Stats().Submitted, int64(st.window+streamBuffer+1); got > bound {
		t.Fatalf("scheduler saw %d submissions with nothing consumed; bound is %d", got, bound)
	}
	// Draining still yields every result, in order.
	st.Close()
	next := 0
	for sr := range st.Results() {
		if sr.Err != nil || sr.Index != next {
			t.Fatalf("result %d (want %d): %v", sr.Index, next, sr.Err)
		}
		next++
	}
	if next != n {
		t.Fatalf("drained %d of %d", next, n)
	}
}

// drain consumes the channel until it closes, returning the final
// receive so callers can assert the closed state.
func drain(ch <-chan StreamResult) <-chan StreamResult {
	for range ch {
	}
	return ch
}

// Cancelling the context handed to NewStream must behave exactly like
// CloseNow: no stranded goroutines, Results closed.
func TestStreamContextCancelStopsWorkers(t *testing.T) {
	db, _ := tinyDB(t)
	queries := shortQueries(2*streamBuffer, 12)
	base := runtime.NumGoroutine()
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	st := cl.NewStream(ctx)
	for i := 0; i < 2*streamBuffer; i++ {
		if err := st.Submit(queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if _, open := <-drain(st.Results()); open {
		t.Fatal("Results not closed after context cancellation")
	}
	waitGoroutines(t, base)
}

// The acceptance pin: under concurrent micro-batches, delivery must stay
// in submission order, results must be correct, and graceful shutdown must
// drain completely. Run under -race in CI.
func TestStreamOrderedDeliveryUnderConcurrency(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0001, false)
	queries := shortQueries(12, 40)
	cl, err := NewCluster(db, ClusterOptions{
		Devices:     []DeviceKind{DeviceXeon, DevicePhi},
		Dist:        "dynamic",
		MaxInFlight: 4,
		MaxBatch:    4,
		BatchWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	st := cl.NewStream(context.Background())
	want := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer and consumer run concurrently
		defer wg.Done()
		for i := 0; i < n; i++ {
			q := queries[i%len(queries)]
			want[i] = q.ID()
			if err := st.Submit(q); err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
		}
		st.Close()
	}()
	next := 0
	var firstTop string
	for sr := range st.Results() {
		if sr.Err != nil {
			t.Fatalf("result %d: %v", sr.Index, sr.Err)
		}
		if sr.Index != next {
			t.Fatalf("result %d arrived out of order (want %d)", sr.Index, next)
		}
		if sr.Query.ID() != want[sr.Index] {
			t.Fatalf("result %d carries query %q, want %q", sr.Index, sr.Query.ID(), want[sr.Index])
		}
		if sr.Index%len(queries) == 0 { // repeated query: identical top hit
			if firstTop == "" {
				firstTop = sr.Result.Hits[0].ID
			} else if sr.Result.Hits[0].ID != firstTop {
				t.Fatalf("repeated query diverged: %q vs %q", sr.Result.Hits[0].ID, firstTop)
			}
		}
		next++
	}
	wg.Wait()
	if next != n {
		t.Fatalf("drained %d of %d results", next, n)
	}
}

// Aligned searches through NewStream: mixed aligned and score-only
// submissions of the same queries must deliver in submission order with
// the right decorations (an aligned result and a score-only result of the
// same residues must never alias through the shared cache), and every
// goroutine must exit once the stream drains. Run under -race in CI.
func TestStreamAlignedOrderedNoLeak(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0001, false) // 54 sequences: E-value fit viable
	queries := shortQueries(6, 30)
	base := runtime.NumGoroutine()
	cl, err := NewCluster(db, ClusterOptions{
		Dist:        "dynamic",
		MaxInFlight: 4,
		MaxBatch:    4,
		BatchWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := cl.NewStream(context.Background())
	const n = 24
	rep := ReportOptions{Alignments: true, EValues: true, TopK: 3}
	for i := 0; i < n; i++ {
		q := queries[i%len(queries)]
		var err error
		if i%2 == 0 {
			err = st.Submit(q, rep) // aligned
		} else {
			err = st.Submit(q) // score-only, same residues as i-1
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	next := 0
	for sr := range st.Results() {
		if sr.Err != nil {
			t.Fatalf("result %d: %v", sr.Index, sr.Err)
		}
		if sr.Index != next {
			t.Fatalf("result %d arrived out of order (want %d)", sr.Index, next)
		}
		if sr.Index%2 == 0 {
			if len(sr.Result.Hits) != 3 || sr.Result.Significance == nil {
				t.Fatalf("aligned result %d: %d hits, significance %v",
					sr.Index, len(sr.Result.Hits), sr.Result.Significance)
			}
			for _, h := range sr.Result.Hits {
				if h.Alignment == nil || h.Alignment.CIGAR == "" || h.Significance == nil {
					t.Fatalf("aligned result %d hit %s missing decorations", sr.Index, h.ID)
				}
			}
		} else {
			if sr.Result.Significance != nil {
				t.Fatalf("score-only result %d carries a significance model (cache aliasing)", sr.Index)
			}
			for _, h := range sr.Result.Hits {
				if h.Alignment != nil || h.Significance != nil {
					t.Fatalf("score-only result %d hit %s is decorated (cache aliasing)", sr.Index, h.ID)
				}
			}
		}
		next++
	}
	if next != n {
		t.Fatalf("drained %d of %d results", next, n)
	}
	waitGoroutines(t, base)
}

// Repeated queries must be served from the cluster's LRU cache, shared
// between the scheduled entry points.
func TestSchedulerCacheServesRepeats(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0002, false)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := shortQueries(1, 80)[0]
	direct, err := cl.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	first, err := cl.SearchScheduled(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.SearchScheduled(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Scores {
		if first.Scores[i] != direct.Scores[i] || second.Scores[i] != direct.Scores[i] {
			t.Fatalf("scheduled score %d diverged from direct search", i)
		}
	}
	hits, misses, entries := cl.CacheStats()
	if hits < 1 || entries < 1 {
		t.Fatalf("cache did not serve the repeat: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
	st := cl.SchedulerStats()
	if st.Submitted != 2 || st.CacheHits < 1 {
		t.Fatalf("scheduler stats %+v", st)
	}
	// A stream over the same cluster shares the cache.
	sess := cl.NewStream(context.Background())
	if err := sess.Submit(q); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	sr := <-sess.Results()
	if sr.Err != nil {
		t.Fatal(sr.Err)
	}
	if sr.Result.Hits[0].ID != direct.Hits[0].ID {
		t.Fatalf("stream cache hit top %q != %q", sr.Result.Hits[0].ID, direct.Hits[0].ID)
	}
	if h2, _, _ := func() (int64, int64, int) { return cl.CacheStats() }(); h2 <= hits {
		t.Fatalf("stream did not hit the shared cache (hits %d -> %d)", hits, h2)
	}
}

// A caching-disabled cluster must recompute every query and never share.
func TestCacheDisabled(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0002, false)
	queries := shortQueries(1, 60)
	cl, err := NewCluster(db, ClusterOptions{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.SearchScheduled(context.Background(), queries[0]); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _, entries := cl.CacheStats(); hits != 0 || entries != 0 {
		t.Fatalf("disabled cache recorded hits=%d entries=%d", hits, entries)
	}
}

// SearchScheduled's context bounds the caller's wait; a cancelled context
// returns promptly while the computation (if started) completes for the
// cache.
func TestSearchScheduledContextCancel(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0002, false)
	queries := shortQueries(1, 60)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.SearchScheduled(ctx, queries[0]); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cluster remains serviceable afterwards.
	if _, err := cl.SearchScheduled(context.Background(), queries[0]); err != nil {
		t.Fatal(err)
	}
}

// Cluster.CloseNow tears down the default stream and the serving
// scheduler; direct searches stay usable.
func TestClusterCloseNow(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0002, false)
	queries := shortQueries(1, 60)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Submit(queries[0]); err != nil {
		t.Fatal(err)
	}
	cl.CloseNow()
	if _, open := <-drain(cl.Results()); open {
		t.Fatal("Results not closed after CloseNow")
	}
	if _, err := cl.SearchScheduled(context.Background(), queries[0]); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("SearchScheduled after CloseNow: err = %v, want ErrClusterClosed", err)
	}
	if _, err := cl.Search(queries[0]); err != nil {
		t.Fatalf("direct Search broken after CloseNow: %v", err)
	}
}

// Totals must reflect work arriving over every entry point.
func TestClusterTotals(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0002, false)
	queries := shortQueries(3, 60)
	cl, err := NewCluster(db, ClusterOptions{Devices: []DeviceKind{DeviceXeon, DevicePhi}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Search(queries[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SearchBatch(queries[1:3]); err != nil {
		t.Fatal(err)
	}
	n, per := cl.Totals()
	if n != 3 {
		t.Fatalf("%d queries recorded, want 3", n)
	}
	if len(per) != 2 || per[0].Device != DeviceXeon || per[1].Device != DevicePhi {
		t.Fatalf("backend totals %+v", per)
	}
	var residues int64
	for _, bt := range per {
		residues += bt.Residues
	}
	if want := 3 * db.Residues(); residues != want {
		t.Fatalf("recorded %d residues, want %d", residues, want)
	}
}
