package heterosw

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// validateSAM is a structural SAM validator: header shape, reference
// dictionary consistency, field counts, and — the part a golden-byte
// comparison cannot express — that every CIGAR is arithmetically
// consistent with its SEQ and stays inside its reference's declared
// length. It returns one error per violation so a failure names them all.
func validateSAM(text string) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	refLen := make(map[string]int)
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "@HD\t") || !strings.Contains(lines[0], "VN:") {
		fail(1, "first line must be an @HD header with a VN tag, got %q", lines[0])
	}
	inHeader := true
	for i, line := range lines {
		no := i + 1
		if strings.HasPrefix(line, "@") {
			if !inHeader {
				fail(no, "header line after the first alignment record")
			}
			if strings.HasPrefix(line, "@SQ\t") {
				var sn string
				ln := -1
				for _, f := range strings.Split(line, "\t")[1:] {
					switch {
					case strings.HasPrefix(f, "SN:"):
						sn = f[3:]
					case strings.HasPrefix(f, "LN:"):
						ln, _ = strconv.Atoi(f[3:])
					}
				}
				if sn == "" || ln <= 0 {
					fail(no, "@SQ needs SN and positive LN: %q", line)
					continue
				}
				if _, dup := refLen[sn]; dup {
					fail(no, "duplicate @SQ %s", sn)
				}
				refLen[sn] = ln
			}
			continue
		}
		inHeader = false
		f := strings.Split(line, "\t")
		if len(f) < 11 {
			fail(no, "record has %d fields, want >= 11", len(f))
			continue
		}
		if _, err := strconv.Atoi(f[1]); err != nil {
			fail(no, "FLAG %q is not an integer", f[1])
		}
		rname, pos, cigar, seq := f[2], f[3], f[5], f[9]
		p, err := strconv.Atoi(pos)
		if err != nil || p < 0 {
			fail(no, "POS %q is not a non-negative integer", pos)
			continue
		}
		if mapq, err := strconv.Atoi(f[4]); err != nil || mapq < 0 || mapq > 255 {
			fail(no, "MAPQ %q out of range", f[4])
		}
		ln, known := refLen[rname]
		if rname != "*" && !known {
			fail(no, "RNAME %s has no @SQ header", rname)
		}
		if cigar == "*" {
			continue
		}
		qlen, rlen, ok := cigarLengths(cigar)
		if !ok {
			fail(no, "malformed CIGAR %q", cigar)
			continue
		}
		if seq != "*" && qlen != len(seq) {
			fail(no, "CIGAR %s consumes %d query bases but SEQ has %d", cigar, qlen, len(seq))
		}
		if known && p+rlen-1 > ln {
			fail(no, "alignment [%d, %d] overruns %s (LN %d)", p, p+rlen-1, rname, ln)
		}
	}
	return errs
}

// cigarLengths sums the query-consuming (M I S = X) and
// reference-consuming (M D N = X) op lengths of a CIGAR string.
func cigarLengths(cigar string) (qlen, rlen int, ok bool) {
	n := 0
	sawOp := false
	for i := 0; i < len(cigar); i++ {
		c := cigar[i]
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
			continue
		}
		if n == 0 {
			return 0, 0, false // zero-length or missing count
		}
		switch c {
		case 'M', '=', 'X':
			qlen += n
			rlen += n
		case 'I', 'S':
			qlen += n
		case 'D', 'N':
			rlen += n
		case 'H', 'P':
			// consume neither
		default:
			return 0, 0, false
		}
		n = 0
		sawOp = true
	}
	return qlen, rlen, sawOp && n == 0
}

// TestCigarLengths anchors the validator's own arithmetic.
func TestCigarLengths(t *testing.T) {
	cases := []struct {
		cigar      string
		qlen, rlen int
		ok         bool
	}{
		{"100M", 100, 100, true},
		{"1S99M", 100, 99, true},
		{"5M2D3M", 8, 10, true},
		{"5M2I3M", 10, 8, true},
		{"4S10M3S", 17, 10, true},
		{"10H5M", 5, 5, true},
		{"M", 0, 0, false},
		{"5", 0, 0, false},
		{"3Q", 0, 0, false},
		{"0M", 0, 0, false},
	}
	for _, tc := range cases {
		q, r, ok := cigarLengths(tc.cigar)
		if q != tc.qlen || r != tc.rlen || ok != tc.ok {
			t.Errorf("cigarLengths(%q) = (%d, %d, %t), want (%d, %d, %t)",
				tc.cigar, q, r, ok, tc.qlen, tc.rlen, tc.ok)
		}
	}
}

// TestValidateSAMCatchesDamage proves the validator is not vacuous: each
// deliberately damaged document must be rejected.
func TestValidateSAMCatchesDamage(t *testing.T) {
	good := "@HD\tVN:1.6\tSO:unknown\n" +
		"@SQ\tSN:R1\tLN:50\n" +
		"q\t0\tR1\t10\t255\t5M\t*\t0\t0\tAAAAA\t*\tAS:i:25\n"
	if errs := validateSAM(good); len(errs) != 0 {
		t.Fatalf("valid document rejected: %v", errs)
	}
	bad := map[string]string{
		"no @HD":           strings.Replace(good, "@HD\tVN:1.6\tSO:unknown", "@XX\tVN:1.6", 1),
		"unknown RNAME":    strings.Replace(good, "\tR1\t10", "\tR9\t10", 1),
		"CIGAR/SEQ skew":   strings.Replace(good, "5M", "6M", 1),
		"overruns LN":      strings.Replace(good, "\t10\t255", "\t47\t255", 1),
		"malformed CIGAR":  strings.Replace(good, "5M", "5Z", 1),
		"truncated record": strings.Replace(good, "\t*\tAS:i:25\n", "\n", 1),
	}
	for name, doc := range bad {
		if errs := validateSAM(doc); len(errs) == 0 {
			t.Errorf("%s: damaged document passed validation", name)
		}
	}
}

// TestGoldenSAMStructure runs the structural validator over every golden
// SAM on disk, and pins the FLAG fix: a protein-vs-translated-DNA hit is
// not a reverse-complemented nucleotide read, so FLAG 0x10 must never be
// set — the frame sign lives in ZF:i alone.
func TestGoldenSAMStructure(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden_dna_translated.sam")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range validateSAM(string(raw)) {
		t.Error(e)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "@") {
			continue
		}
		f := strings.Split(line, "\t")
		if f[1] != "0" {
			t.Errorf("record %s: FLAG %s, want 0 (strand belongs in ZF:i only)", f[0], f[1])
		}
		if !strings.Contains(line, "ZF:i:-1") {
			t.Errorf("record %s: reverse-frame hit lost its ZF:i strand tag", f[0])
		}
	}
}

// TestFreshSAMStructure validates freshly rendered SAM output — both the
// reverse-frame translated search and a plain protein search — so the
// validator guards the writer itself, not just the checked-in goldens.
func TestFreshSAMStructure(t *testing.T) {
	db, query, cl := goldenTranslatedSetup(t)
	res, err := cl.SearchTranslated(query, ReportOptions{Alignments: true, EValues: true, TopK: goldenDNATopK})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFormat(&buf, "sam", query, db, res, 60); err != nil {
		t.Fatal(err)
	}
	for _, e := range validateSAM(buf.String()) {
		t.Errorf("translated SAM: %v", e)
	}

	pdb, pq, pcl := goldenSetup(t)
	pres, err := pcl.Search(pq, ReportOptions{Alignments: true, EValues: true, TopK: goldenDNATopK})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFormat(&buf, "sam", pq, pdb, pres, 60); err != nil {
		t.Fatal(err)
	}
	for _, e := range validateSAM(buf.String()) {
		t.Errorf("protein SAM: %v", e)
	}
}
