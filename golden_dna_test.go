package heterosw

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// The genomics golden tests pin the generalised alphabet layer end to end:
// a nucleotide match/mismatch search over a curated DNA mini-database, and
// a six-frame translated search of a DNA query against the protein golden
// database — each across the library (Cluster.Search/SearchTranslated),
// the HTTP front end and the swsearch output formats (blast report, SAM,
// TSV). Regenerate with go test -run TestGolden -update .

const goldenDNATopK = 5

func goldenDNASetup(t *testing.T) (*Database, Sequence, *Cluster) {
	t.Helper()
	qs, err := ReadDNAFASTAFile("testdata/golden_dna_query.fasta")
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := ReadDNAFASTAFile("testdata/golden_dna_db.fasta")
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if db.Alphabet() != "dna" {
		t.Fatalf("database alphabet %q, want dna", db.Alphabet())
	}
	cl, err := NewCluster(db, ClusterOptions{
		Devices: []DeviceKind{DeviceXeon, DevicePhi},
		Dist:    "dynamic",
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, qs[0], cl
}

// TestGoldenDNASearch pins the nucleotide match/mismatch search (NUC
// matrix by default) through the library surface, plus the .swdb index
// round trip reproducing it byte for byte.
func TestGoldenDNASearch(t *testing.T) {
	db, query, cl := goldenDNASetup(t)
	rep := ReportOptions{Alignments: true, EValues: true, TopK: goldenDNATopK}
	res, err := cl.Search(query, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != goldenDNATopK {
		t.Fatalf("%d hits, want %d", len(res.Hits), goldenDNATopK)
	}
	checkGoldenFileAt(t, "Cluster.Search[dna]", goldenFromResult(t, query, db, res), "testdata/golden_dna.json")

	var buf bytes.Buffer
	if err := WriteReport(&buf, query, db, res, 60); err != nil {
		t.Fatal(err)
	}
	checkGoldenText(t, "WriteReport[dna]", buf.Bytes(), "testdata/golden_dna_report.txt")

	buf.Reset()
	if err := WriteFormat(&buf, "tsv", query, db, res, 60); err != nil {
		t.Fatal(err)
	}
	checkGoldenText(t, "WriteFormat[dna,tsv]", buf.Bytes(), "testdata/golden_dna.tsv")

	// The .swdb round trip must restore the DNA alphabet and reproduce
	// the FASTA-loaded pipeline exactly.
	swdb := t.TempDir() + "/golden_dna.swdb"
	if err := WriteIndexFile(swdb, db); err != nil {
		t.Fatal(err)
	}
	idb, err := LoadDatabaseFile(swdb)
	if err != nil {
		t.Fatal(err)
	}
	if idb.Alphabet() != "dna" {
		t.Fatalf("swdb alphabet %q, want dna", idb.Alphabet())
	}
	icl, err := NewCluster(idb, ClusterOptions{
		Devices: []DeviceKind{DeviceXeon, DevicePhi},
		Dist:    "dynamic",
	})
	if err != nil {
		t.Fatal(err)
	}
	ires, err := icl.Search(query, rep)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		return
	}
	checkGoldenFileAt(t, "swdb Cluster.Search[dna]", goldenFromResult(t, query, idb, ires), "testdata/golden_dna.json")
}

// TestGoldenDNAHTTP pins the HTTP surface over the DNA cluster: the JSON
// response must match the library pin, and the tsv format the TSV pin.
func TestGoldenDNAHTTP(t *testing.T) {
	db, query, cl := goldenDNASetup(t)
	ts := httptest.NewServer(NewHTTPHandler(cl))
	t.Cleanup(func() { ts.Close(); cl.CloseNow() })

	resp, body := postJSON(t, ts.URL+"/search", map[string]any{
		"id":       query.ID(),
		"residues": query.String(),
		"top_k":    goldenDNATopK,
		"align":    true,
		"evalue":   true,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SearchJSON
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if *updateGolden {
		t.Skip("golden files are regenerated from the library path")
	}
	checkGoldenFileAt(t, "HTTP /search[dna]", goldenFromJSON(t, query, db, sr), "testdata/golden_dna.json")

	resp, body = postJSON(t, ts.URL+"/search", map[string]any{
		"id":       query.ID(),
		"residues": query.String(),
		"top_k":    goldenDNATopK,
		"evalue":   true,
		"format":   "tsv",
	})
	if resp.StatusCode != 200 {
		t.Fatalf("tsv status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("tsv content type %q", ct)
	}
	checkGoldenText(t, "HTTP /search[dna,tsv]", body, "testdata/golden_dna.tsv")
}

// goldenBackTranslate renders a protein as DNA through one fixed codon per
// amino acid, so a translated search of the result reproduces the protein
// search in frame +1.
func goldenBackTranslate(t *testing.T, protein string) string {
	t.Helper()
	codons := map[byte]string{
		'A': "GCT", 'R': "CGT", 'N': "AAT", 'D': "GAT", 'C': "TGT",
		'Q': "CAA", 'E': "GAA", 'G': "GGT", 'H': "CAT", 'I': "ATT",
		'L': "CTG", 'K': "AAA", 'M': "ATG", 'F': "TTT", 'P': "CCT",
		'S': "TCT", 'T': "ACT", 'W': "TGG", 'Y': "TAT", 'V': "GTT",
	}
	var sb strings.Builder
	for i := 0; i < len(protein); i++ {
		c, ok := codons[protein[i]]
		if !ok {
			t.Fatalf("no codon for %q", protein[i])
		}
		sb.WriteString(c)
	}
	return sb.String()
}

// goldenRevComp reverse-complements an ACGT string.
func goldenRevComp(t *testing.T, dna string) string {
	t.Helper()
	comp := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}
	out := make([]byte, len(dna))
	for i := 0; i < len(dna); i++ {
		c, ok := comp[dna[len(dna)-1-i]]
		if !ok {
			t.Fatalf("no complement for %q", dna[len(dna)-1-i])
		}
		out[i] = c
	}
	return string(out)
}

// goldenTranslatedSetup back-translates the protein golden query and
// reverse-complements it, so every pinned hit exercises a reverse reading
// frame with non-trivial DNA coordinate mapping.
func goldenTranslatedSetup(t *testing.T) (*Database, Sequence, *Cluster) {
	t.Helper()
	db, query, cl := goldenSetup(t)
	dna := goldenRevComp(t, goldenBackTranslate(t, query.String()))
	return db, NewDNASequence("G_QUERY_RC", dna), cl
}

// TestGoldenTranslatedSearch pins the six-frame translated search: the
// merged hit list with frames and DNA coordinates (JSON), the blast-style
// report, and the SAM and TSV renderings.
func TestGoldenTranslatedSearch(t *testing.T) {
	db, query, cl := goldenTranslatedSetup(t)
	res, err := cl.SearchTranslated(query, ReportOptions{Alignments: true, EValues: true, TopK: goldenDNATopK})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != goldenDNATopK {
		t.Fatalf("%d hits, want %d", len(res.Hits), goldenDNATopK)
	}
	for i, h := range res.Hits {
		if h.Frame != -1 {
			t.Fatalf("hit %d frame %+d, want -1 (reverse-complemented frame +1 query)", i, h.Frame)
		}
	}
	checkGoldenFileAt(t, "SearchTranslated", goldenFromResult(t, query, db, res), "testdata/golden_dna_translated.json")

	for _, f := range []struct{ format, path string }{
		{"blast", "testdata/golden_dna_translated_report.txt"},
		{"sam", "testdata/golden_dna_translated.sam"},
		{"tsv", "testdata/golden_dna_translated.tsv"},
	} {
		var buf bytes.Buffer
		if err := WriteFormat(&buf, f.format, query, db, res, 60); err != nil {
			t.Fatal(err)
		}
		checkGoldenText(t, "WriteFormat[translated,"+f.format+"]", buf.Bytes(), f.path)
	}
}

// TestGoldenTranslatedMatchesProtein is the consistency proof behind the
// translated pins: a forward back-translation of the protein golden query
// must reproduce the protein search's scores exactly, with every top hit
// won by frame +1.
func TestGoldenTranslatedMatchesProtein(t *testing.T) {
	_, query, cl := goldenSetup(t)
	pres, err := cl.Search(query, ReportOptions{TopK: goldenDNATopK})
	if err != nil {
		t.Fatal(err)
	}
	dna := NewDNASequence("fwd", goldenBackTranslate(t, query.String()))
	tres, err := cl.SearchTranslated(dna, ReportOptions{TopK: goldenDNATopK})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pres.Hits {
		p, tr := pres.Hits[i], tres.Hits[i]
		if p.Index != tr.Index || p.Score != tr.Score || tr.Frame != +1 {
			t.Fatalf("hit %d: protein {%d %d} vs translated {%d %d frame %+d}",
				i, p.Index, p.Score, tr.Index, tr.Score, tr.Frame)
		}
	}
}

// TestGoldenTranslatedHTTP pins POST /search with translate=true: the SAM
// rendering must be byte-identical to the library's, and the JSON response
// must carry frames and DNA coordinates.
func TestGoldenTranslatedHTTP(t *testing.T) {
	_, query, cl := goldenTranslatedSetup(t)
	ts := httptest.NewServer(NewHTTPHandler(cl))
	t.Cleanup(func() { ts.Close(); cl.CloseNow() })

	resp, body := postJSON(t, ts.URL+"/search", map[string]any{
		"id":        query.ID(),
		"residues":  query.String(),
		"top_k":     goldenDNATopK,
		"evalue":    true,
		"translate": true,
		"format":    "sam",
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if *updateGolden {
		t.Skip("golden files are regenerated from the library path")
	}
	checkGoldenText(t, "HTTP /search[translate,sam]", body, "testdata/golden_dna_translated.sam")

	resp, body = postJSON(t, ts.URL+"/search", map[string]any{
		"id":        query.ID(),
		"residues":  query.String(),
		"top_k":     goldenDNATopK,
		"align":     true,
		"evalue":    true,
		"translate": true,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SearchJSON
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	for i, h := range sr.Hits {
		if h.Frame != -1 || h.Alignment == nil || h.Alignment.QueryDNAEnd == 0 {
			t.Fatalf("HTTP translated hit %d lacks frame/DNA coords: %+v", i, h)
		}
	}
}
