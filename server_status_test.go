package heterosw

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestSearchStatus pins the HTTP status mapping both serving endpoints
// share — in particular the two ordering rules its doc comment argues
// for: teardown beats a dead request context (503, retryable), and 408
// is only truthful when the failure actually came from the request's
// own context, so a real 5xx racing a client disconnect stays a 5xx.
func TestSearchStatus(t *testing.T) {
	liveReq := func() *http.Request {
		return httptest.NewRequest(http.MethodPost, "/search", nil)
	}
	cancelledReq := func() *http.Request {
		r := liveReq()
		ctx, cancel := context.WithCancel(r.Context())
		cancel()
		return r.WithContext(ctx)
	}

	cases := []struct {
		name string
		req  *http.Request
		err  error
		want int
	}{
		{"closed, live ctx", liveReq(), ErrClusterClosed, http.StatusServiceUnavailable},
		// The first ordering pin: under CloseNow the request context is
		// often dead too, and the old blanket context check turned this
		// retryable teardown into a terminal-looking 408.
		{"closed, dead ctx", cancelledReq(), fmt.Errorf("wait: %w (%w)", ErrClusterClosed, context.Canceled), http.StatusServiceUnavailable},
		// The second ordering pin: a genuine server-side failure that
		// merely races a client disconnect must stay a 5xx — the error
		// does not wrap the request context's error.
		{"real failure, dead ctx", cancelledReq(), errors.New("kernel: simulated fault"), http.StatusInternalServerError},
		{"client cancel", cancelledReq(), fmt.Errorf("search: %w", context.Canceled), http.StatusRequestTimeout},
		{"no significance", liveReq(), fmt.Errorf("fit: %w", ErrNoSignificance), http.StatusUnprocessableEntity},
		{"bad matrix", liveReq(), fmt.Errorf("parse: %w", ErrBadMatrix), http.StatusBadRequest},
		{"too many alignments", liveReq(), ErrTooManyAlignments, http.StatusBadRequest},
		{"generic failure", liveReq(), errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := searchStatus(tc.req, tc.err); got != tc.want {
				t.Errorf("searchStatus(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

// TestSearchStatusDeadline covers the deadline flavour of 408: the
// request context expired and the failure wraps that expiry.
func TestSearchStatusDeadline(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/search", nil)
	ctx, cancel := context.WithDeadline(r.Context(), time.Now().Add(-time.Second))
	defer cancel()
	r = r.WithContext(ctx)
	<-ctx.Done()
	err := fmt.Errorf("search: %w", context.DeadlineExceeded)
	if got := searchStatus(r, err); got != http.StatusRequestTimeout {
		t.Fatalf("deadline-exceeded search = %d, want 408", got)
	}
}
