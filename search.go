package heterosw

import (
	"fmt"
	"sync"

	"heterosw/internal/core"
	"heterosw/internal/seqdb"
)

// Database is an indexed collection of target sequences ready for
// searching. Build one with NewDatabase, ReadFASTA + NewDatabase, or
// SyntheticSwissProt. A Database is safe for concurrent searches.
//
// Engines (one per device model) are created lazily and cache their lane
// packings, so repeated searches amortise pre-processing exactly as the
// paper's step 2 does.
type Database struct {
	db *seqdb.Database

	mu      sync.Mutex // guards engines
	engines map[DeviceKind]*core.Engine
}

// NewDatabase indexes sequences with the paper's pre-processing: the
// processing order is sorted by length so lane groups pack tightly and
// scheduling stays balanced.
func NewDatabase(seqs []Sequence) (*Database, error) {
	return newDatabase(seqs, true)
}

// NewDatabaseUnsorted indexes sequences without the length-sorting
// pre-processing, reproducing the paper's motivation for sorting (padding
// waste and load imbalance). Intended for ablation studies.
func NewDatabaseUnsorted(seqs []Sequence) (*Database, error) {
	return newDatabase(seqs, false)
}

func newDatabase(seqs []Sequence, sorted bool) (*Database, error) {
	raw, err := unwrapSeqs(seqs)
	if err != nil {
		return nil, err
	}
	return &Database{
		db:      seqdb.New(raw, sorted),
		engines: make(map[DeviceKind]*core.Engine),
	}, nil
}

// Len returns the number of sequences.
func (d *Database) Len() int { return d.db.Len() }

// Alphabet returns the name of the alphabet every database sequence is
// encoded under: "protein" or "dna".
func (d *Database) Alphabet() string { return d.db.Alphabet().Name() }

// Residues returns the total residue count.
func (d *Database) Residues() int64 { return d.db.Residues() }

// Key returns the database's durable content identity — the
// checksum-derived key of a .swdb-loaded database (see OpenIndexFile) —
// or "" for an in-memory database, which has no durable identity. The
// distributed layer routes shards by this key.
func (d *Database) Key() string { return d.db.Key() }

// Seq returns the i-th sequence in the caller's original order.
func (d *Database) Seq(i int) Sequence { return Sequence{impl: d.db.Seq(i)} }

// String summarises the database.
func (d *Database) String() string { return d.db.String() }

func (d *Database) engineFor(kind DeviceKind) (*core.Engine, error) {
	if kind == "" {
		kind = DeviceXeon
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.engines[kind]; ok {
		return e, nil
	}
	m, err := kind.model()
	if err != nil {
		return nil, err
	}
	e, err := core.NewEngine(d.db, m)
	if err != nil {
		return nil, err
	}
	d.engines[kind] = e
	return e, nil
}

// Hit is one database match.
type Hit struct {
	// Index is the subject's position in the database (original order).
	Index int
	// ID is the subject's identifier.
	ID string
	// Score is the optimal Smith-Waterman score.
	Score int
	// Frame is the reading frame (+1, +2, +3, -1, -2, -3) the hit's best
	// score was found in, for translated searches (SearchTranslated); 0
	// for direct protein or DNA searches.
	Frame int
	// Alignment carries the phase-two traceback detail (coordinates,
	// CIGAR, identities). It is nil unless the search requested
	// ReportOptions.Alignments and the hit is within the report's top-K.
	Alignment *HitAlignment
	// Significance carries the hit's bit score and E-value under the
	// search's fitted null model; nil unless ReportOptions.EValues.
	Significance *HitSignificance
}

// HitAlignment is the traceback decoration of one hit: the aligned
// segments recovered by re-aligning the query against the subject with the
// full dynamic-programming matrix (reporting phase two).
type HitAlignment struct {
	// QueryStart/QueryEnd and SubjectStart/SubjectEnd delimit the aligned
	// segments as half-open residue ranges. For translated searches the
	// query coordinates count residues of the hit's reading frame.
	QueryStart, QueryEnd     int
	SubjectStart, SubjectEnd int
	// QueryDNAStart/QueryDNAEnd delimit, for translated searches, the
	// half-open nucleotide range of the original DNA query (forward-strand
	// coordinates) the aligned frame segment was translated from; both
	// zero for direct searches.
	QueryDNAStart, QueryDNAEnd int
	// CIGAR is the alignment path in run-length notation, e.g. "12M2D5M".
	CIGAR string
	// Identities counts exactly-matching columns; Columns is the total
	// alignment length.
	Identities int
	Columns    int
}

// HitSignificance is a hit's statistical significance under the fitted
// Gumbel null model of its search (see Result.FitSignificance).
type HitSignificance struct {
	// BitScore is the raw score on the fitted model's bit scale; EValue
	// the expected number of equal-or-better chance hits in a database of
	// this size. E-values well below 1 indicate likely homology.
	BitScore float64
	EValue   float64
}

// Result reports a database search.
type Result struct {
	// Hits is sorted by descending score (the paper's step 4), truncated
	// to TopK when requested.
	Hits []Hit
	// Scores holds every subject's score in database order.
	Scores []int
	// Cells is the number of dynamic-programming cell updates (the GCUPS
	// numerator).
	Cells int64
	// Threads is the simulated thread count used.
	Threads int
	// SimSeconds and SimGCUPS report the device-model timing (the
	// figures' axis); WallSeconds and WallGCUPS report the real pure-Go
	// execution on the host.
	SimSeconds  float64
	SimGCUPS    float64
	WallSeconds float64
	WallGCUPS   float64
	// Overflows counts 16-bit lane saturations escalated to 32-bit
	// recomputation — the ladder's top tier, reached from the 16-bit first
	// pass or from an already-escalated 8-bit lane.
	Overflows int64
	// Overflows8 counts 8-bit first-pass saturations escalated to 16-bit
	// recomputation; always zero unless the search ran an "-8bit" variant.
	Overflows8 int64
}

func wrapResult(r *core.Result) *Result {
	out := &Result{
		Hits:        make([]Hit, len(r.Hits)),
		Scores:      make([]int, len(r.Scores)),
		Cells:       r.Stats.Cells,
		Threads:     r.Threads,
		SimSeconds:  r.SimSeconds,
		SimGCUPS:    r.SimGCUPS,
		WallSeconds: r.WallSeconds,
		WallGCUPS:   r.WallGCUPS,
		Overflows:   r.Stats.Overflows,
		Overflows8:  r.Stats.Overflows8,
	}
	for i, h := range r.Hits {
		out.Hits[i] = Hit{Index: h.SeqIndex, ID: h.ID, Score: int(h.Score)}
	}
	for i, s := range r.Scores {
		out.Scores[i] = int(s)
	}
	return out
}

// Search aligns the query against every database sequence (the paper's
// Algorithm 1) and returns scores sorted in descending order, with
// simulated and wall-clock performance accounting.
func (d *Database) Search(query Sequence, opt Options) (*Result, error) {
	if query.impl == nil {
		return nil, fmt.Errorf("heterosw: zero-value query")
	}
	eng, err := d.engineFor(opt.Device)
	if err != nil {
		return nil, err
	}
	copt, err := opt.toCore(d.db.Alphabet())
	if err != nil {
		return nil, err
	}
	res, err := eng.Search(query.impl, copt)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// HeteroOptions configures the heterogeneous search of Algorithm 2.
type HeteroOptions struct {
	// Options carries the shared kernel configuration. Its Device field
	// is ignored; Threads applies to the CPU side.
	Options
	// PhiShare is the fraction of database residues offloaded to the
	// coprocessor. The paper's best configuration is ~0.55; that is the
	// default when PhiShare is zero, unless NoShareDefault is set.
	PhiShare float64
	// NoShareDefault disables the 0.55 defaulting above, so a literal
	// PhiShare of 0 means "everything on the host" — mirroring how
	// NoGapDefaults makes literal zero gap penalties expressible. It
	// replaces the old negative-means-zero sentinel, which remains
	// honoured for existing callers.
	NoShareDefault bool
	// PhiThreads is the coprocessor's simulated thread count (240 when
	// zero).
	PhiThreads int
	// AutoSplit derives the split from the device cost models instead of
	// PhiShare: the completion times of both devices over the whole
	// database are predicted and the share balancing them is used.
	AutoSplit bool
}

// HeteroResult reports a heterogeneous search.
type HeteroResult struct {
	Result
	// CPUSeconds and PhiSeconds are the simulated per-device times; the
	// Phi time includes PCIe transfers. The total SimSeconds is their
	// maximum (host compute overlaps the offload region).
	CPUSeconds, PhiSeconds float64
	// CPUShare and PhiShare are the realised residue fractions.
	CPUShare, PhiShare float64
}

// SearchHetero performs Algorithm 2: a static split of the database
// between the Xeon host and the Xeon Phi coprocessor, with the coprocessor
// share running as an asynchronous offload region overlapped with host
// compute, and a merged, sorted score list.
func (d *Database) SearchHetero(query Sequence, opt HeteroOptions) (*HeteroResult, error) {
	if query.impl == nil {
		return nil, fmt.Errorf("heterosw: zero-value query")
	}
	share := opt.PhiShare
	switch {
	case opt.NoShareDefault:
		if share < 0 {
			return nil, fmt.Errorf("heterosw: PhiShare %v < 0 with NoShareDefault", opt.PhiShare)
		}
	case share == 0:
		share = 0.55 // the paper's best configuration
	case share < 0:
		share = 0 // legacy sentinel for a true zero share
	}
	if share > 1 {
		return nil, fmt.Errorf("heterosw: PhiShare %v > 1", opt.PhiShare)
	}
	copt, err := opt.Options.toCore(d.db.Alphabet())
	if err != nil {
		return nil, err
	}
	res, err := core.SearchHetero(d.db, query.impl, core.HeteroOptions{
		Search:     copt,
		CPUThreads: opt.Threads,
		MICThreads: opt.PhiThreads,
		MICShare:   share,
		AutoSplit:  opt.AutoSplit,
	})
	if err != nil {
		return nil, err
	}
	out := &HeteroResult{
		Result:     *wrapResult(&res.Result),
		CPUSeconds: res.CPUSeconds,
		PhiSeconds: res.MICSeconds,
		CPUShare:   res.CPUShare,
		PhiShare:   res.MICShare,
	}
	return out, nil
}
