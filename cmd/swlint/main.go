// Command swlint runs the project's static-analysis suite
// (internal/analysis) over Go package patterns and exits non-zero on any
// finding. It is the CI gate for the repository's mechanical invariants:
//
//	swlint ./...          # whole repo, all analyzers
//	swlint -only ctxflow,errfence ./internal/core
//	swlint -list          # describe the analyzers
//
// Diagnostics print as file:line:col: message (analyzer), one per line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"heterosw/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: swlint [-list] [-only names] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swlint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "swlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.All, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analysis.All {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see swlint -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
