// Command swverify cross-checks every optimised kernel variant against the
// reference Smith-Waterman implementation on randomised workloads — the
// long-running fuzzing counterpart of the unit tests. It exercises all six
// variants, blocked and unblocked, both device lane widths, the intra-task
// long-sequence path and 16-bit overflow escalation.
//
// Usage:
//
//	swverify [-trials 50] [-seed 1] [-maxlen 400] [-seqs 64]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"heterosw"
)

var letters = "ARNDCQEGHILKMFPSTWYVBZX"

func randSeq(rng *rand.Rand, id string, n int) heterosw.Sequence {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[rng.Intn(len(letters))])
	}
	return heterosw.NewSequence(id, sb.String())
}

func main() {
	var (
		trials = flag.Int("trials", 50, "number of random databases to verify")
		seed   = flag.Int64("seed", 1, "random seed")
		maxLen = flag.Int("maxlen", 400, "maximum subject length")
		nSeqs  = flag.Int("seqs", 64, "subjects per database")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	checked := 0
	for trial := 0; trial < *trials; trial++ {
		seqs := make([]heterosw.Sequence, *nSeqs)
		for i := range seqs {
			n := rng.Intn(*maxLen) + 1
			if trial%7 == 3 && i == 0 {
				n = 3500 // force the intra-task long-sequence path
			}
			seqs[i] = randSeq(rng, fmt.Sprintf("t%dseq%d", trial, i), n)
		}
		db, err := heterosw.NewDatabase(seqs)
		if err != nil {
			fatal(err)
		}
		queryLen := rng.Intn(200) + 1
		query := randSeq(rng, "q", queryLen)

		// Reference scores via the pairwise oracle.
		want := make([]int, len(seqs))
		for i, s := range seqs {
			w, err := heterosw.Score(query, s, heterosw.AlignOptions{})
			if err != nil {
				fatal(err)
			}
			want[i] = w
		}

		for _, variant := range heterosw.Variants() {
			for _, dev := range []heterosw.DeviceKind{heterosw.DeviceXeon, heterosw.DevicePhi} {
				for _, noBlock := range []bool{false, true} {
					res, err := db.Search(query, heterosw.Options{
						Variant: variant, Device: dev, NoBlocking: noBlock,
					})
					if err != nil {
						fatal(err)
					}
					for i := range want {
						if res.Scores[i] != want[i] {
							fmt.Fprintf(os.Stderr,
								"MISMATCH trial %d %s/%s noblock=%v: subject %d scored %d, oracle %d\n",
								trial, variant, dev, noBlock, i, res.Scores[i], want[i])
							os.Exit(1)
						}
					}
					checked++
				}
			}
		}
	}
	fmt.Printf("swverify: OK — %d trials, %d engine configurations, all scores match the reference (%v)\n",
		*trials, checked, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swverify:", err)
	os.Exit(1)
}
