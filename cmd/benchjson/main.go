// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark artifact, so CI can publish machine-readable performance data
// points (GCUPS and queries/s) per commit and the perf trajectory of the
// repository has actual data behind it — and diffs two such artifacts so
// CI can fail on a throughput regression.
//
// Usage:
//
//	go test -run '^$' -bench 'Kernel|Stream' -benchtime=1x . | benchjson -out BENCH.json
//	benchjson -diff [-max-regress 0.20] [-max-regress-wall 0.50] BENCH_old.json BENCH_new.json
//
// Standard ns/op values and every custom metric (Mcells/s, sim-GCUPS,
// queries/s, ...) are carried through verbatim; two normalised fields,
// gcups and queries_per_sec, are derived where the metrics allow so
// downstream tooling does not need to know each benchmark's unit. A
// gcups_source field records whether the normalised value came from a
// deterministic simulated metric ("sim") or from host wall time ("wall").
//
// Diff mode compares the gcups of benchmarks present in both artifacts.
// "sim"-sourced values come from the device models and are identical on
// any machine, so any drop beyond -max-regress is a real cost-model or
// kernel regression. "wall"-sourced values measure host throughput —
// since the native vector backend landed they gate too, against the
// looser -max-regress-wall threshold: runner-to-runner noise is real but
// bounded, while losing the native backend (a mis-detected CPU feature, a
// dispatch regression) costs an order of magnitude and must fail CI. Pass
// a negative -max-regress-wall to restore info-only wall reporting. The
// exit status is 1 when any gated benchmark regressed beyond its
// threshold (fractions; 0.20 = 20%).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// GCUPS is derived from a GCUPS-valued metric (sim-GCUPS, GCUPS) or a
	// Mcells/s metric divided by 1000; QueriesPerSec from a queries/s
	// metric. Zero when the benchmark reports neither.
	GCUPS         float64 `json:"gcups,omitempty"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
	// GCUPSSource is "sim" when GCUPS came from a simulated device-model
	// metric (deterministic across machines) and "wall" when it came from
	// host wall-clock throughput; empty when GCUPS is zero.
	GCUPSSource string `json:"gcups_source,omitempty"`
}

// Artifact is the emitted document.
type Artifact struct {
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-P  N  v1 u1  v2 u2 ..." line,
// returning ok=false for non-benchmark lines.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.SplitN(fields[0], "-", 2)[0],
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		b.Metrics[unit] = v
		switch {
		case unit == "GCUPS" || strings.HasSuffix(unit, "-GCUPS"):
			// Simulated metrics always win over wall-derived ones. The
			// figure benchmarks' plain "GCUPS" is device-model output too.
			b.GCUPS = v
			if strings.HasPrefix(unit, "wall") {
				b.GCUPSSource = "wall"
			} else {
				b.GCUPSSource = "sim"
			}
		case unit == "Mcells/s" || strings.HasSuffix(unit, "-McUPS"):
			if b.GCUPSSource != "sim" {
				b.GCUPS = v / 1000
				b.GCUPSSource = "wall"
			}
		case unit == "queries/s":
			b.QueriesPerSec = v
		}
	}
	return b, true
}

func readArtifact(path string) (*Artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}

// diff compares two artifacts on the benchmarks they share: "sim"-sourced
// gcups gate at maxRegress, "wall"-sourced at maxRegressWall (negative
// disables wall gating). It returns the number of gated regressions.
func diff(oldArt, newArt *Artifact, maxRegress, maxRegressWall float64) int {
	oldBy := make(map[string]Benchmark, len(oldArt.Benchmarks))
	for _, b := range oldArt.Benchmarks {
		oldBy[b.Name] = b
	}
	names := make([]string, 0, len(newArt.Benchmarks))
	for _, b := range newArt.Benchmarks {
		if _, ok := oldBy[b.Name]; ok {
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)
	newBy := make(map[string]Benchmark, len(newArt.Benchmarks))
	for _, b := range newArt.Benchmarks {
		newBy[b.Name] = b
	}
	regressions := 0
	fmt.Printf("%-40s %12s %12s %8s  %s\n", "benchmark", "old gcups", "new gcups", "delta", "verdict")
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		if o.GCUPS == 0 || n.GCUPS == 0 {
			continue
		}
		delta := (n.GCUPS - o.GCUPS) / o.GCUPS
		verdict := "ok"
		switch {
		case o.GCUPSSource != "sim" || n.GCUPSSource != "sim":
			switch {
			case maxRegressWall < 0:
				verdict = "info (wall-clock, not gated)"
			case delta < -maxRegressWall:
				verdict = fmt.Sprintf("REGRESSION (wall, > %.0f%%)", maxRegressWall*100)
				regressions++
			default:
				verdict = "ok (wall)"
			}
		case delta < -maxRegress:
			verdict = fmt.Sprintf("REGRESSION (> %.0f%%)", maxRegress*100)
			regressions++
		}
		fmt.Printf("%-40s %12.3f %12.3f %+7.1f%%  %s\n", name, o.GCUPS, n.GCUPS, delta*100, verdict)
	}
	return regressions
}

func main() {
	out := flag.String("out", "", "output file (stdout when empty)")
	diffMode := flag.Bool("diff", false, "compare two artifacts: benchjson -diff old.json new.json")
	maxRegress := flag.Float64("max-regress", 0.20, "with -diff: maximum tolerated fractional drop in simulated GCUPS")
	maxRegressWall := flag.Float64("max-regress-wall", 0.50, "with -diff: maximum tolerated fractional drop in wall-clock GCUPS (negative = info only)")
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two artifact paths")
			os.Exit(2)
		}
		oldArt, err := readArtifact(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		newArt, err := readArtifact(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if n := diff(oldArt, newArt, *maxRegress, *maxRegressWall); n > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d GCUPS regression(s) beyond threshold (sim %.0f%%, wall %.0f%%)\n",
				n, *maxRegress*100, *maxRegressWall*100)
			os.Exit(1)
		}
		return
	}

	art := Artifact{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			art.Benchmarks = append(art.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	raw, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(art.Benchmarks), *out)
}
