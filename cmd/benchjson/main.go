// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark artifact, so CI can publish machine-readable performance data
// points (GCUPS and queries/s) per commit and the perf trajectory of the
// repository has actual data behind it.
//
// Usage:
//
//	go test -run '^$' -bench 'Kernel|Stream' -benchtime=1x . | benchjson -out BENCH.json
//
// Standard ns/op values and every custom metric (Mcells/s, sim-GCUPS,
// queries/s, ...) are carried through verbatim; two normalised fields,
// gcups and queries_per_sec, are derived where the metrics allow so
// downstream tooling does not need to know each benchmark's unit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// GCUPS is derived from a GCUPS-valued metric (sim-GCUPS, GCUPS) or a
	// Mcells/s metric divided by 1000; QueriesPerSec from a queries/s
	// metric. Zero when the benchmark reports neither.
	GCUPS         float64 `json:"gcups,omitempty"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
}

// Artifact is the emitted document.
type Artifact struct {
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-P  N  v1 u1  v2 u2 ..." line,
// returning ok=false for non-benchmark lines.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.SplitN(fields[0], "-", 2)[0],
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		b.Metrics[unit] = v
		switch {
		case unit == "GCUPS" || strings.HasSuffix(unit, "-GCUPS"):
			b.GCUPS = v
		case unit == "Mcells/s" || strings.HasSuffix(unit, "-McUPS"):
			if b.GCUPS == 0 {
				b.GCUPS = v / 1000
			}
		case unit == "queries/s":
			b.QueriesPerSec = v
		}
	}
	return b, true
}

func main() {
	out := flag.String("out", "", "output file (stdout when empty)")
	flag.Parse()

	art := Artifact{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			art.Benchmarks = append(art.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	raw, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(art.Benchmarks), *out)
}
