// Command swbench regenerates every figure and in-text table of the
// paper's evaluation (Section V) from the simulated heterogeneous system,
// and compares cluster workload-distribution strategies over arbitrary
// device rosters.
//
// Usage:
//
//	swbench [-fig all|fig3|fig4|fig5|fig6|fig7|fig8|eff|sched|power|transfer]
//	        [-scale 1.0] [-csv] [-summary] [-o out.txt]
//	swbench -devices xeon,phi,phi -dist dynamic [-scale 1.0]
//	swbench -devices xeon,phi -db db.swdb
//
// By default the full 541,561-sequence synthetic Swiss-Prot is simulated
// (fast: the device models consume shape information only; see DESIGN.md).
// GCUPS values are simulated-device throughput; run cmd/swverify or the
// examples for functional (wall-clock) execution.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"heterosw/internal/core"
	"heterosw/internal/datagen"
	"heterosw/internal/device"
	"heterosw/internal/figures"
	"heterosw/internal/report"
	"heterosw/internal/sched"
	"heterosw/internal/seqdb/index"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: all, fig3..fig8, eff, sched, power, transfer")
		scale   = flag.Float64("scale", 1.0, "database scale relative to Swiss-Prot 2013_11 (541,561 sequences)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		summary = flag.Bool("summary", false, "one line per figure (best value per series)")
		outPath = flag.String("o", "", "write output to a file instead of stdout")
		devices = flag.String("devices", "", "cluster mode: comma-separated roster (e.g. xeon,phi,phi)")
		dbPath  = flag.String("db", "", "cluster mode: plan over this database (FASTA or .swdb) instead of the synthetic corpus")
		dist    = flag.String("dist", "", "cluster mode: compare only this distribution (default: all)")
		qlen    = flag.Int("qlen", 1000, "cluster mode: query length")
		variant = flag.String("variant", "intrinsic-SP", "cluster mode: kernel variant spec (append -8bit for the precision ladder)")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	if *devices != "" {
		if *csv || *summary {
			fatal(fmt.Errorf("-csv and -summary are not supported with -devices (cluster mode prints one fixed table)"))
		}
		if err := clusterBench(out, *devices, *dist, *variant, *dbPath, *scale, *qlen); err != nil {
			fatal(err)
		}
		return
	}
	if *dbPath != "" {
		fatal(fmt.Errorf("-db needs cluster mode (-devices); the figures always use the synthetic corpus"))
	}

	start := time.Now()
	w := figures.NewWorkload(*scale)
	fmt.Fprintf(out, "# swbench: %s\n", w)
	fmt.Fprintf(out, "# devices: Xeon (16c/32t, 256-bit) + Xeon Phi (60c/240t, 512-bit); BLOSUM62, gaps 10/2\n")
	fmt.Fprintf(out, "# vec backend: %s\n", device.HostSIMD())
	fmt.Fprintf(out, "# GCUPS below are simulated-device throughput (see DESIGN.md section 6)\n\n")

	var figs []*figures.Figure
	if *fig == "all" {
		figs = figures.All(w)
	} else {
		for _, id := range strings.Split(*fig, ",") {
			f, err := figures.ByID(w, strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			figs = append(figs, f)
		}
	}
	for _, f := range figs {
		var err error
		switch {
		case *summary:
			err = report.Summary(out, f)
		case *csv:
			err = report.CSV(out, f)
		default:
			err = report.Table(out, f)
		}
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(out, "# generated in %v\n", time.Since(start).Round(time.Millisecond))
}

// clusterBench compares workload-distribution strategies for a device
// roster at shape level: the full database is planned, never executed, so
// the comparison runs in milliseconds at any scale.
func clusterBench(out io.Writer, roster, only, variant, dbPath string, scale float64, queryLen int) error {
	models := device.Devices()
	var backends []core.Backend
	var names []string
	for i, d := range strings.Split(roster, ",") {
		d = strings.TrimSpace(d)
		m, ok := models[d]
		if !ok {
			return fmt.Errorf("unknown device %q (have xeon, phi)", d)
		}
		name := fmt.Sprintf("%s#%d", d, i)
		backends = append(backends, core.NewBackend(name, m, 0))
		names = append(names, name)
	}
	var lengths []int
	if dbPath != "" {
		// A real database (FASTA or preprocessed .swdb, sniffed by magic);
		// planning only needs its length distribution.
		db, _, err := index.LoadDatabase(dbPath)
		if err != nil {
			return err
		}
		lengths = db.OrderLengths()
	} else {
		lengths = datagen.Lengths(datagen.SwissProtConfig(scale))
	}
	var residues int64
	for _, l := range lengths {
		residues += int64(l)
	}
	cells := float64(queryLen) * float64(residues)

	dists := []core.Distribution{core.DistStatic, core.DistDynamic, core.DistGuided}
	if only != "" {
		d, err := core.ParseDistribution(only)
		if err != nil {
			return err
		}
		dists = []core.Distribution{d}
	}
	v, prec, err := core.ParseVariantSpec(variant)
	if err != nil {
		return err
	}
	opt := core.DispatchOptions{Search: core.SearchOptions{
		Params:   core.Params{Variant: v, GapOpen: 10, GapExtend: 2, Blocked: true, Prec: prec},
		Schedule: sched.Dynamic,
	}}

	fmt.Fprintf(out, "# cluster: %s over %d sequences (%d residues), query %d aa, variant %s\n",
		roster, len(lengths), residues, queryLen, core.VariantSpec(v, prec))
	fmt.Fprintf(out, "# static shares are model-balanced (OptimalShares); GCUPS is simulated throughput\n\n")
	fmt.Fprintf(out, "%-8s %12s %10s", "dist", "makespan s", "GCUPS")
	for _, n := range names {
		fmt.Fprintf(out, " %16s", n)
	}
	fmt.Fprintln(out)
	for _, d := range dists {
		o := opt
		o.Dist = d
		p, err := core.PlanLengths(lengths, queryLen, backends, o)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-8s %12.4f %10.2f", d, p.Makespan, cells/p.Makespan/1e9)
		for i := range backends {
			fmt.Fprintf(out, "  %5.1f%% (%2d chk)", p.Shares[i]*100, p.Chunks[i])
		}
		fmt.Fprintln(out)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swbench:", err)
	os.Exit(1)
}
