// Command swbench regenerates every figure and in-text table of the
// paper's evaluation (Section V) from the simulated heterogeneous system.
//
// Usage:
//
//	swbench [-fig all|fig3|fig4|fig5|fig6|fig7|fig8|eff|sched|power|transfer]
//	        [-scale 1.0] [-csv] [-summary] [-o out.txt]
//
// By default the full 541,561-sequence synthetic Swiss-Prot is simulated
// (fast: the device models consume shape information only; see DESIGN.md).
// GCUPS values are simulated-device throughput; run cmd/swverify or the
// examples for functional (wall-clock) execution.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"heterosw/internal/figures"
	"heterosw/internal/report"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: all, fig3..fig8, eff, sched, power, transfer")
		scale   = flag.Float64("scale", 1.0, "database scale relative to Swiss-Prot 2013_11 (541,561 sequences)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		summary = flag.Bool("summary", false, "one line per figure (best value per series)")
		outPath = flag.String("o", "", "write output to a file instead of stdout")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	start := time.Now()
	w := figures.NewWorkload(*scale)
	fmt.Fprintf(out, "# swbench: %s\n", w)
	fmt.Fprintf(out, "# devices: Xeon (16c/32t, 256-bit) + Xeon Phi (60c/240t, 512-bit); BLOSUM62, gaps 10/2\n")
	fmt.Fprintf(out, "# GCUPS below are simulated-device throughput (see DESIGN.md section 6)\n\n")

	var figs []*figures.Figure
	if *fig == "all" {
		figs = figures.All(w)
	} else {
		for _, id := range strings.Split(*fig, ",") {
			f, err := figures.ByID(w, strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			figs = append(figs, f)
		}
	}
	for _, f := range figs {
		var err error
		switch {
		case *summary:
			err = report.Summary(out, f)
		case *csv:
			err = report.CSV(out, f)
		default:
			err = report.Table(out, f)
		}
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(out, "# generated in %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swbench:", err)
	os.Exit(1)
}
