// Command swgen writes the synthetic Swiss-Prot stand-in database (and
// optionally the paper's 20 benchmark queries) as FASTA files, so external
// tools — or this library reading real data paths — can consume them.
//
// Usage:
//
//	swgen -scale 0.01 -o db.fasta [-queries queries.fasta] [-plant]
package main

import (
	"flag"
	"fmt"
	"os"

	"heterosw"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.01, "database scale relative to Swiss-Prot 2013_11 (541,561 sequences)")
		outPath = flag.String("o", "db.fasta", "output database FASTA path")
		qPath   = flag.String("queries", "", "also write the 20 paper queries to this FASTA path")
		ixPath  = flag.String("index", "", "also write a preprocessed .swdb index of the database to this path")
		plant   = flag.Bool("plant", true, "plant the paper queries inside the database (guarantees perfect hits)")
	)
	flag.Parse()

	db, queries := heterosw.SyntheticSwissProt(*scale, *plant)
	seqs := make([]heterosw.Sequence, db.Len())
	for i := range seqs {
		seqs[i] = db.Seq(i)
	}
	if err := heterosw.WriteFASTAFile(*outPath, seqs); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *outPath, db)
	if *ixPath != "" {
		if err := heterosw.WriteIndexFile(*ixPath, db); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: preprocessed index (load with -db, no parse or sort at startup)\n", *ixPath)
	}
	if *qPath != "" {
		if len(queries) == 0 {
			// -plant=false still allows emitting queries.
			_, queries = heterosw.SyntheticSwissProt(0.0001, true)
		}
		if err := heterosw.WriteFASTAFile(*qPath, queries); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d paper queries (lengths %v)\n", *qPath, len(queries), heterosw.PaperQueryLengths())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swgen:", err)
	os.Exit(1)
}
