// Command swindex builds and inspects persistent preprocessed database
// indexes (.swdb): a binary image of the fully preprocessed search
// database — encoded residues packed in length-sorted order into one
// contiguous arena, the sort permutation, header strings and precomputed
// lane-group shapes — so swsearch, swserve and swbench start in O(1) work
// per sequence instead of re-parsing and re-sorting FASTA on every boot.
//
// Usage:
//
//	swindex build db.fasta -o db.swdb [-unsorted]
//	swindex info db.swdb
//	swindex split db.swdb -n 4 [-dir shards/] [-prefix db]
//
// Every -db flag in this repository accepts the resulting .swdb wherever
// it accepts FASTA; the formats are sniffed by magic.
//
// split cuts an index into n shard .swdb files (equal residue fractions,
// dealt greedily in processing order so every shard inherits the parent's
// length distribution) plus a manifest recording each shard's checksum
// key and its mapping back into the parent. Distribute the shard files
// across swserve -shards nodes and hand the manifest to a coordinator
// (swserve -manifest -nodes); the checksum keys guarantee both sides are
// talking about the same bytes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"heterosw/internal/remote"
	"heterosw/internal/seqdb"
	"heterosw/internal/seqdb/index"
	"heterosw/internal/sequence"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "split":
		split(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fatal(fmt.Errorf("unknown subcommand %q (have build, info, split)", os.Args[1]))
	}
}

func build(args []string) {
	fs := flag.NewFlagSet("swindex build", flag.ExitOnError)
	out := fs.String("o", "", "output .swdb path (default: input with .swdb extension)")
	unsorted := fs.Bool("unsorted", false, "skip the length-sorting pre-processing (ablation databases)")
	// Accept the documented `build db.fasta -o db.swdb` shape: the flag
	// package stops at the first positional, so lift it out first.
	var in string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		in = args[0]
		args = args[1:]
	}
	fs.Parse(args)
	switch {
	case in == "" && fs.NArg() == 1:
		in = fs.Arg(0)
	case in != "" && fs.NArg() == 0:
	default:
		fatal(fmt.Errorf("build needs exactly one input file (FASTA or .swdb)"))
	}
	outPath := *out
	if outPath == "" {
		// db.fasta -> db.swdb; db.swdb -> db.swdb (an in-place rebuild:
		// WriteFile replaces atomically, so the mapped input stays valid).
		outPath = strings.TrimSuffix(strings.TrimSuffix(in, ".fasta"), ".swdb") + ".swdb"
	}

	start := time.Now()
	var (
		db   *seqdb.Database
		kind string
		err  error
	)
	if *unsorted {
		// Sniff the magic before parsing so the FASTA file is read once.
		if index.SniffFile(in) {
			fatal(fmt.Errorf("-unsorted needs FASTA input; %s is already an index", in))
		}
		var seqs []*sequence.Sequence
		seqs, err = sequence.ReadFASTAFile(in)
		db, kind = seqdb.New(seqs, false), "fasta"
	} else {
		db, kind, err = index.LoadDatabase(in)
	}
	if err != nil {
		fatal(err)
	}
	loaded := time.Since(start)

	sum, err := index.WriteFile(outPath, db)
	if err != nil {
		fatal(err)
	}
	st, err := os.Stat(outPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("swindex: %s (%s input, loaded in %v)\n", db, kind, loaded.Round(time.Millisecond))
	fmt.Printf("swindex: wrote %s: %d bytes, checksum %016x\n", outPath, st.Size(), sum)
}

func info(args []string) {
	fs := flag.NewFlagSet("swindex info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("info needs exactly one .swdb file"))
	}
	start := time.Now()
	ix, err := index.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	opened := time.Since(start)
	db := ix.Database()
	fmt.Printf("file:      %s (swdb v%d, opened in %v)\n", fs.Arg(0), index.Version, opened.Round(time.Microsecond))
	fmt.Printf("checksum:  %016x (engine key %s)\n", ix.Checksum, ix.Key())
	fmt.Printf("database:  %s\n", db)
	for _, tk := range ix.ShapeTables() {
		shapes, _ := ix.Shapes(tk.Lanes, tk.LongThreshold)
		intra := 0
		for _, s := range shapes {
			if s.Intra {
				intra++
			}
		}
		fmt.Printf("shapes:    %d lanes (long > %d): %d chunks (%d intra)\n",
			tk.Lanes, tk.LongThreshold, len(shapes), intra)
	}
}

func split(args []string) {
	fs := flag.NewFlagSet("swindex split", flag.ExitOnError)
	n := fs.Int("n", 2, "number of shards")
	dir := fs.String("dir", ".", "output directory for shard files and the manifest")
	prefix := fs.String("prefix", "", "shard filename prefix (default: input basename)")
	// Accept the documented `split db.swdb -n 4` shape: lift the leading
	// positional before flag parsing, as build does.
	var in string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		in = args[0]
		args = args[1:]
	}
	fs.Parse(args)
	switch {
	case in == "" && fs.NArg() == 1:
		in = fs.Arg(0)
	case in != "" && fs.NArg() == 0:
	default:
		fatal(fmt.Errorf("split needs exactly one input .swdb file"))
	}
	p := *prefix
	if p == "" {
		base := filepath.Base(in)
		p = strings.TrimSuffix(base, filepath.Ext(base))
	}
	start := time.Now()
	man, err := remote.SplitIndex(in, *n, *dir, p)
	if err != nil {
		fatal(err)
	}
	manPath := filepath.Join(*dir, p+".manifest.json")
	if err := remote.WriteManifest(manPath, man); err != nil {
		fatal(err)
	}
	fmt.Printf("swindex: split %s (%d sequences, %d residues) into %d shards in %v\n",
		in, man.Sequences, man.Residues, len(man.Shards), time.Since(start).Round(time.Millisecond))
	for i, sh := range man.Shards {
		fmt.Printf("swindex: shard %d: %s (%d sequences, %d residues, key %s)\n",
			i, filepath.Join(*dir, sh.File), sh.Sequences, sh.Residues, sh.Key)
	}
	fmt.Printf("swindex: wrote manifest %s\n", manPath)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  swindex build db.fasta -o db.swdb [-unsorted]
  swindex info db.swdb
  swindex split db.swdb -n 4 [-dir shards/] [-prefix db]
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swindex:", err)
	os.Exit(1)
}
