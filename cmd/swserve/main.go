// Command swserve fronts a Smith-Waterman search cluster with an HTTP
// JSON API, turning the library into a long-running query service: the
// SwissAlign-webserver serving shape over the N-device dispatcher, with
// every request routed through the cluster's concurrent micro-batching
// scheduler (requests arriving together coalesce into micro-batches,
// identical queries share one execution, repeats hit the LRU cache).
//
// Usage:
//
//	swserve -synthetic 0.01 -listen :7734
//	swserve -db swissprot.fasta -devices xeon,phi,phi -dist dynamic
//
// Endpoints:
//
//	POST /search   {"id": "q1", "residues": "MKWVLA...", "top_k": 10}
//	POST /batch    {"queries": [{"id": "a", "residues": "..."}], "top_k": 5}
//	GET  /healthz  database, roster, scheduler and cache snapshot
//
// Example session:
//
//	swserve -synthetic 0.001 &
//	curl -s localhost:7734/search -d '{"residues":"MKWVLAARND","top_k":3}'
//	curl -s localhost:7734/healthz
//
// SIGINT/SIGTERM shuts down gracefully: in-flight requests get a drain
// window, then the cluster's scheduled paths are torn down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"heterosw"
	"heterosw/internal/device"
)

func main() {
	var (
		listen    = flag.String("listen", ":7734", "HTTP listen address")
		dbPath    = flag.String("db", "", "database file: FASTA or a swindex-built .swdb index")
		synthetic = flag.Float64("synthetic", 0, "use a synthetic Swiss-Prot database at this scale instead of -db")
		devices   = flag.String("devices", "xeon,phi", "comma-separated cluster roster (e.g. xeon,phi,phi)")
		dist      = flag.String("dist", "dynamic", "workload distribution: static, dynamic, guided")
		shares    = flag.String("shares", "", "comma-separated static residue shares (model-balanced when empty)")
		variant   = flag.String("variant", "intrinsic-SP", "kernel variant")
		matrix    = flag.String("matrix", "", "substitution matrix (default: BLOSUM62 for protein, NUC for DNA)")
		dna       = flag.Bool("dna", false, "nucleotide mode: parse the FASTA database under the IUPAC DNA alphabet")
		inflight  = flag.Int("inflight", 0, "max micro-batches in flight (0 = default)")
		window    = flag.Duration("window", 0, "micro-batch coalescing window (0 = default, negative disables)")
		maxBatch  = flag.Int("maxbatch", 0, "max queries per micro-batch (0 = default)")
		cacheSize = flag.Int("cache", 0, "LRU result cache entries (0 = default, negative disables)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	)
	flag.Parse()

	var (
		db  *heterosw.Database
		err error
	)
	switch {
	case *synthetic > 0:
		if *dna {
			fatal(fmt.Errorf("-dna does not apply to the synthetic protein database"))
		}
		db, _ = heterosw.SyntheticSwissProt(*synthetic, false)
	case *dbPath != "":
		// FASTA or a preprocessed .swdb index, sniffed by magic. Serving
		// restarts over a prebuilt index skip the parse and sort entirely,
		// so the server is ready near-instantly at any database scale.
		if *dna {
			db, err = heterosw.LoadDNADatabaseFile(*dbPath)
		} else {
			db, err = heterosw.LoadDatabaseFile(*dbPath)
		}
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("provide -db or -synthetic; see -help"))
	}

	opt := heterosw.ClusterOptions{
		Options:     heterosw.Options{Variant: *variant, Matrix: *matrix},
		Dist:        *dist,
		MaxInFlight: *inflight,
		BatchWindow: *window,
		MaxBatch:    *maxBatch,
		CacheSize:   *cacheSize,
	}
	for _, d := range strings.Split(*devices, ",") {
		d = strings.TrimSpace(d)
		if d != "" {
			opt.Devices = append(opt.Devices, heterosw.DeviceKind(d))
		}
	}
	if *shares != "" {
		for _, s := range strings.Split(*shares, ",") {
			v, perr := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if perr != nil {
				fatal(fmt.Errorf("bad share %q: %v", s, perr))
			}
			opt.Shares = append(opt.Shares, v)
		}
	}
	cl, err := heterosw.NewCluster(db, opt)
	if err != nil {
		fatal(err)
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           heterosw.NewHTTPHandler(cl),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("swserve: %s\n", db)
	fmt.Printf("swserve: vec backend %s\n", device.HostSIMD())
	fmt.Printf("swserve: roster %v, dist %s; listening on %s\n", opt.Devices, *dist, *listen)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-stop:
		fmt.Printf("swserve: %v, draining for up to %v\n", sig, *drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "swserve: shutdown: %v\n", err)
	}
	cl.CloseNow()
	fmt.Println("swserve: stopped")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "swserve: %v\n", err)
	os.Exit(1)
}
