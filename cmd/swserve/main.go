// Command swserve fronts a Smith-Waterman search cluster with an HTTP
// JSON API, turning the library into a long-running query service: the
// SwissAlign-webserver serving shape over the N-device dispatcher, with
// every request routed through the cluster's concurrent micro-batching
// scheduler (requests arriving together coalesce into micro-batches,
// identical queries share one execution, repeats hit the LRU cache).
//
// Usage:
//
//	swserve -synthetic 0.01 -listen :7734
//	swserve -db swissprot.fasta -devices xeon,phi,phi -dist dynamic
//
// Endpoints:
//
//	POST /search   {"id": "q1", "residues": "MKWVLA...", "top_k": 10}
//	POST /batch    {"queries": [{"id": "a", "residues": "..."}], "top_k": 5}
//	GET  /healthz  database, roster, scheduler and cache snapshot
//
// Example session:
//
//	swserve -synthetic 0.001 &
//	curl -s localhost:7734/search -d '{"residues":"MKWVLAARND","top_k":3}'
//	curl -s localhost:7734/healthz
//
// # Distributed serving
//
// swserve also runs as either side of a multi-node deployment over a
// swindex-split shard cut:
//
//	swindex split db.swdb -n 2 -dir shards/
//	swserve -shards shards/db-00.swdb -listen :7741        # node A
//	swserve -shards shards/db-01.swdb -listen :7742        # node B
//	swserve -db db.swdb -manifest shards/db.manifest.json \
//	        -nodes http://localhost:7741,http://localhost:7742
//
// A -shards node serves the shard execution protocol (GET /shards, POST
// /shard/search, POST /shard/align) for the listed shard files; the
// coordinator (-manifest -nodes) fans each front-door query out to the
// nodes owning each shard, merges scores into parent order and answers
// the normal /search, /batch and /healthz API with results byte-identical
// to a single-node search of the unsplit database. Nodes execute shards
// under their OWN kernel flags — configure nodes and coordinator
// identically. -node-timeout, -node-retries, -node-backoff and -hedge
// shape the coordinator's tail-latency policy; only 503 answers and
// transport failures are retried.
//
// The coordinator's topology is live: a background prober (-probe-interval,
// -probe-dead-after) tracks every node through a healthy/degraded/dead
// state machine, fails a dead node's shards over to surviving replicas and
// readopts the node when it answers again — without a restart. SIGHUP or
// POST /admin/reload re-reads the manifest for a re-cut shard layout (a
// failed reload leaves the old topology serving); POST /admin/probe forces
// an immediate sweep; GET /healthz reports per-node health, probe latency
// quantiles and per-shard replica routing, answering "degraded" while any
// shard has no live replica.
//
// SIGINT/SIGTERM shuts down gracefully: in-flight requests get a drain
// window; if it expires, the cluster's scheduled paths are torn down so
// blocked handlers resolve with the retryable 503 — never a torn
// response — before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"heterosw"
	"heterosw/internal/device"
)

func main() {
	var (
		listen    = flag.String("listen", ":7734", "HTTP listen address")
		dbPath    = flag.String("db", "", "database file: FASTA or a swindex-built .swdb index")
		synthetic = flag.Float64("synthetic", 0, "use a synthetic Swiss-Prot database at this scale instead of -db")
		devices   = flag.String("devices", "xeon,phi", "comma-separated cluster roster (e.g. xeon,phi,phi)")
		dist      = flag.String("dist", "dynamic", "workload distribution: static, dynamic, guided")
		shares    = flag.String("shares", "", "comma-separated static residue shares (model-balanced when empty)")
		variant   = flag.String("variant", "intrinsic-SP", "kernel variant")
		matrix    = flag.String("matrix", "", "substitution matrix (default: BLOSUM62 for protein, NUC for DNA)")
		dna       = flag.Bool("dna", false, "nucleotide mode: parse the FASTA database under the IUPAC DNA alphabet")
		inflight  = flag.Int("inflight", 0, "max micro-batches in flight (0 = default)")
		window    = flag.Duration("window", 0, "micro-batch coalescing window (0 = default, negative disables)")
		maxBatch  = flag.Int("maxbatch", 0, "max queries per micro-batch (0 = default)")
		cacheSize = flag.Int("cache", 0, "LRU result cache entries (0 = default, negative disables)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")

		shardsFlag  = flag.String("shards", "", "node mode: comma-separated shard .swdb files to serve the shard protocol for")
		manifest    = flag.String("manifest", "", "coordinator mode: shard manifest written by swindex split (requires -db parent index and -nodes)")
		nodes       = flag.String("nodes", "", "coordinator mode: comma-separated node base URLs")
		nodeTimeout = flag.Duration("node-timeout", 0, "coordinator: per-attempt node request timeout (0 = default 10s)")
		nodeRetries = flag.Int("node-retries", 0, "coordinator: retries per node request after a retryable failure (0 = default 2)")
		nodeBackoff = flag.Duration("node-backoff", 0, "coordinator: initial retry backoff, doubling per attempt (0 = default 100ms)")
		hedge       = flag.Duration("hedge", 0, "coordinator: duplicate a slow shard request to the next replica after this delay (0 disables)")
		probeEvery  = flag.Duration("probe-interval", 0, "coordinator: background health-probe period (0 = default 15s, negative disables)")
		deadAfter   = flag.Int("probe-dead-after", 0, "coordinator: consecutive probe failures that mark a node dead (0 = default 3)")
	)
	flag.Parse()

	opt := heterosw.ClusterOptions{
		Options:     heterosw.Options{Variant: *variant, Matrix: *matrix},
		Dist:        *dist,
		MaxInFlight: *inflight,
		BatchWindow: *window,
		MaxBatch:    *maxBatch,
		CacheSize:   *cacheSize,
	}
	for _, d := range strings.Split(*devices, ",") {
		d = strings.TrimSpace(d)
		if d != "" {
			opt.Devices = append(opt.Devices, heterosw.DeviceKind(d))
		}
	}
	if *shares != "" {
		for _, s := range strings.Split(*shares, ",") {
			v, perr := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if perr != nil {
				fatal(fmt.Errorf("bad share %q: %v", s, perr))
			}
			opt.Shares = append(opt.Shares, v)
		}
	}

	if *shardsFlag != "" {
		if *dbPath != "" || *synthetic > 0 || *manifest != "" {
			fatal(fmt.Errorf("-shards (node mode) excludes -db, -synthetic and -manifest"))
		}
		runNode(*listen, splitList(*shardsFlag), opt, *drain)
		return
	}

	var (
		db  *heterosw.Database
		err error
	)
	switch {
	case *synthetic > 0:
		if *dna {
			fatal(fmt.Errorf("-dna does not apply to the synthetic protein database"))
		}
		db, _ = heterosw.SyntheticSwissProt(*synthetic, false)
	case *dbPath != "":
		// FASTA or a preprocessed .swdb index, sniffed by magic. Serving
		// restarts over a prebuilt index skip the parse and sort entirely,
		// so the server is ready near-instantly at any database scale.
		if *dna {
			db, err = heterosw.LoadDNADatabaseFile(*dbPath)
		} else {
			db, err = heterosw.LoadDatabaseFile(*dbPath)
		}
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("provide -db, -synthetic or -shards; see -help"))
	}

	var cl *heterosw.Cluster
	if *manifest != "" {
		nodeURLs := splitList(*nodes)
		if len(nodeURLs) == 0 {
			fatal(fmt.Errorf("-manifest (coordinator mode) requires -nodes"))
		}
		cl, err = heterosw.NewDistributedCluster(context.Background(), db, *manifest, nodeURLs, heterosw.DistributedOptions{
			Options:        opt.Options,
			MaxInFlight:    *inflight,
			BatchWindow:    *window,
			MaxBatch:       *maxBatch,
			CacheSize:      *cacheSize,
			Timeout:        *nodeTimeout,
			Retries:        *nodeRetries,
			Backoff:        *nodeBackoff,
			HedgeDelay:     *hedge,
			ProbeInterval:  *probeEvery,
			ProbeDeadAfter: *deadAfter,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("swserve: coordinator over %d nodes: %s\n", len(nodeURLs), strings.Join(nodeURLs, ", "))
	} else {
		cl, err = heterosw.NewCluster(db, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("swserve: roster %v, dist %s\n", opt.Devices, *dist)
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           heterosw.NewHTTPHandler(cl),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("swserve: %s\n", db)
	fmt.Printf("swserve: vec backend %s\n", device.HostSIMD())
	fmt.Printf("swserve: listening on %s\n", *listen)
	var reload func() error
	if *manifest != "" {
		// SIGHUP hot-reloads the coordinator's manifest; the reload runs
		// under its own root context because it belongs to the process, not
		// to any request.
		reload = func() error { return cl.ReloadManifest(context.Background()) }
	}
	serve(srv, *drain, cl.Close, cl.CloseNow, reload)
}

// runNode serves the shard execution protocol for the listed shard .swdb
// files: one full Cluster per shard (each with its own scheduler and
// cache), fronted by the heterosw.ShardServer handler.
func runNode(listen string, shardFiles []string, opt heterosw.ClusterOptions, drain time.Duration) {
	if len(shardFiles) == 0 {
		fatal(fmt.Errorf("-shards needs at least one .swdb file"))
	}
	clusters := make([]*heterosw.Cluster, len(shardFiles))
	for i, path := range shardFiles {
		db, err := heterosw.OpenIndexFile(path)
		if err != nil {
			fatal(fmt.Errorf("shard %s: %w", path, err))
		}
		cl, err := heterosw.NewCluster(db, opt)
		if err != nil {
			fatal(fmt.Errorf("shard %s: %w", path, err))
		}
		clusters[i] = cl
		fmt.Printf("swserve: shard %s: %s (key %s)\n", path, db, db.Key())
	}
	ss, err := heterosw.NewShardServer(clusters)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{
		Addr:              listen,
		Handler:           ss.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("swserve: vec backend %s\n", device.HostSIMD())
	fmt.Printf("swserve: node serving %d shard(s) on %s\n", len(shardFiles), listen)
	serve(srv, drain, ss.Close, ss.CloseNow, nil)
}

// serve runs the server until SIGINT/SIGTERM, then tears it down with
// shutdownServer. A non-nil reload runs on every SIGHUP (the coordinator's
// manifest hot-reload); serving continues either way — a failed reload
// leaves the old topology up, and the error is logged, not fatal.
func serve(srv *http.Server, drain time.Duration, closeFn, closeNowFn func(), reload func() error) {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	var hup chan os.Signal
	if reload != nil {
		hup = make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	for {
		select {
		case err := <-errc:
			fatal(err)
		case <-hup:
			if err := reload(); err != nil {
				fmt.Fprintf(os.Stderr, "swserve: reload: %v\n", err)
			} else {
				fmt.Println("swserve: manifest reloaded")
			}
			continue
		case sig := <-stop:
			fmt.Printf("swserve: %v, draining for up to %v\n", sig, drain)
		}
		break
	}
	if err := shutdownServer(srv, drain, closeFn, closeNowFn); err != nil {
		fmt.Fprintf(os.Stderr, "swserve: shutdown: %v\n", err)
	}
	fmt.Println("swserve: stopped")
}

// shutdownServer serializes teardown so no client ever sees a torn
// response:
//
//  1. Drain: srv.Shutdown waits up to drain for in-flight requests to
//     finish. If they all do, the scheduled paths close gracefully
//     (closeFn) and we are done — CloseNow would be gratuitous.
//  2. Deadline exceeded: requests are still blocked inside the cluster
//     (typically waiting on scheduler tickets). Tear the scheduled paths
//     down first (closeNowFn): every blocked handler resolves with
//     ErrClusterClosed and writes a complete 503 JSON body. Only then
//     wait out a short flush window for exactly those writes; the
//     listener hard-closes only if even that expires.
//
// The previous ordering — Shutdown, then CloseNow with no second wait —
// let the process exit while just-unblocked handlers were mid-write,
// tearing their responses; and it used CloseNow even after a clean
// drain, aborting queued stream work that had every chance to finish.
func shutdownServer(srv *http.Server, drain time.Duration, closeFn, closeNowFn func()) error {
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err == nil {
		closeFn()
		return nil
	}
	closeNowFn()
	if !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	flush, fcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer fcancel()
	if ferr := srv.Shutdown(flush); ferr != nil {
		srv.Close()
		return fmt.Errorf("drain window expired and responses were still in flight after the flush window: %w", ferr)
	}
	return nil
}

// splitList parses a comma-separated flag value, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "swserve: %v\n", err)
	os.Exit(1)
}
