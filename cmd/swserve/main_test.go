package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"heterosw"
)

func testCluster(t *testing.T, opt heterosw.ClusterOptions) *heterosw.Cluster {
	t.Helper()
	db, _ := heterosw.SyntheticSwissProt(0.001, false)
	cl, err := heterosw.NewCluster(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func startServer(t *testing.T, cl *heterosw.Cluster) (*http.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: heterosw.NewHTTPHandler(cl)}
	go srv.Serve(ln)
	return srv, "http://" + ln.Addr().String()
}

// TestShutdownUnderLoad pins the teardown ordering fix end to end: with
// requests still blocked inside the scheduler when the drain window
// expires, every in-flight client must receive a COMPLETE response —
// a 200 result or the retryable 503 — never a torn connection, because
// shutdownServer now tears down the scheduled paths first and then waits
// out a flush window for the unblocked handlers' writes.
func TestShutdownUnderLoad(t *testing.T) {
	// A huge coalescing window clogs the scheduler deterministically:
	// every request parks in the micro-batch window far longer than the
	// drain, so teardown is guaranteed to find them in flight.
	cl := testCluster(t, heterosw.ClusterOptions{
		Devices:     []heterosw.DeviceKind{heterosw.DeviceXeon},
		Dist:        "static",
		BatchWindow: time.Hour,
		MaxBatch:    1024,
		CacheSize:   -1,
	})
	srv, base := startServer(t, cl)

	const clients = 8
	type reply struct {
		status int
		body   []byte
		err    error
	}
	replies := make([]reply, clients)
	var wg sync.WaitGroup
	httpc := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"id":"q%d","residues":"MKWVTFISLLLLFSSAYSRGV%sARND"}`,
				i, strings.Repeat("A", i+1))
			resp, err := httpc.Post(base+"/search", "application/json", strings.NewReader(body))
			if err != nil {
				replies[i] = reply{err: err}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			replies[i] = reply{status: resp.StatusCode, body: b, err: err}
		}(i)
	}

	// Let every request reach the scheduler before tearing down.
	deadline := time.Now().Add(5 * time.Second)
	for cl.SchedulerStats().Submitted < clients {
		if time.Now().After(deadline) {
			t.Fatal("requests never reached the scheduler")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := shutdownServer(srv, 50*time.Millisecond, cl.Close, cl.CloseNow); err != nil {
		t.Fatalf("shutdownServer: %v", err)
	}
	wg.Wait()

	var got503 int
	for i, r := range replies {
		if r.err != nil {
			t.Errorf("client %d: torn response: %v", i, r.err)
			continue
		}
		if r.status != http.StatusOK && r.status != http.StatusServiceUnavailable {
			t.Errorf("client %d: status %d, want 200 or 503 (body %s)", i, r.status, r.body)
		}
		if !json.Valid(r.body) {
			t.Errorf("client %d: incomplete JSON body: %q", i, r.body)
		}
		if r.status == http.StatusServiceUnavailable {
			got503++
		}
	}
	if got503 == 0 {
		t.Error("no client saw the retryable 503; the drain window never expired under load")
	}
}

// TestShutdownCleanDrain pins the other half of the fix: when every
// request finishes inside the drain window, teardown must NOT hard-abort
// the scheduled paths (the old code called CloseNow even after a clean
// drain) — the graceful close path runs and shutdownServer reports nil.
func TestShutdownCleanDrain(t *testing.T) {
	closedNow := false
	cl := testCluster(t, heterosw.ClusterOptions{
		Devices:     []heterosw.DeviceKind{heterosw.DeviceXeon},
		Dist:        "static",
		BatchWindow: -1, // execute immediately
	})
	srv, base := startServer(t, cl)

	resp, err := http.Post(base+"/search", "application/json",
		strings.NewReader(`{"id":"q","residues":"MKWVTFISLLLLFSSAYSRGV"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up search: status %d", resp.StatusCode)
	}

	err = shutdownServer(srv, 10*time.Second, cl.Close, func() { closedNow = true; cl.CloseNow() })
	if err != nil {
		t.Fatalf("shutdownServer: %v", err)
	}
	if closedNow {
		t.Fatal("clean drain must not hard-abort the scheduled paths")
	}
}
