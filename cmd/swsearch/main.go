// Command swsearch runs a Smith-Waterman database search: the paper's
// Algorithm 1 (single device), Algorithm 2 (heterogeneous CPU+Phi) or its
// N-device cluster generalisation, printing the top hits with optional
// alignments. Protein is the default alphabet; -dna searches nucleotide
// databases and -translate runs a six-frame translated (blastx-style)
// search of DNA queries against a protein database.
//
// Usage:
//
//	swsearch -db db.fasta -query q.fasta [flags]
//	swsearch -synthetic 0.01 -queryindex 3 [flags]
//	swsearch -synthetic 0.01 -devices xeon,phi,phi -dist dynamic
//	swsearch -db genes.fasta -query reads.fasta -dna -outfmt tsv
//	swsearch -db prot.swdb -query reads.fasta -translate -outfmt sam
//	swsearch -db prot.swdb -query many.fasta -batch -blast
//
// Flags select the kernel variant, device model, thread count, scheduling
// policy, substitution matrix (built-in by name, or a custom file with
// -matrixfile) and gap penalties; see -help.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"heterosw"
	hostdev "heterosw/internal/device"
)

func main() {
	var (
		dbPath     = flag.String("db", "", "database file: FASTA or a swindex-built .swdb index")
		queryPath  = flag.String("query", "", "query FASTA file (first record is searched unless -queryindex)")
		synthetic  = flag.Float64("synthetic", 0, "use a synthetic Swiss-Prot database at this scale instead of -db")
		queryIndex = flag.Int("queryindex", 0, "index of the query record (within -query, or among the 20 paper queries with -synthetic)")
		hetero     = flag.Bool("hetero", false, "run the heterogeneous CPU+Phi search (Algorithm 2)")
		phiShare   = flag.Float64("phishare", 0.55, "fraction of the database offloaded to the Phi with -hetero")
		devices    = flag.String("devices", "", "comma-separated cluster roster (e.g. xeon,phi,phi); overrides -hetero/-device")
		dist       = flag.String("dist", "static", "cluster workload distribution with -devices: static, dynamic, guided")
		shares     = flag.String("shares", "", "comma-separated static residue shares with -devices (model-balanced when empty)")
		device     = flag.String("device", "xeon", "device model: xeon or phi")
		variant    = flag.String("variant", "intrinsic-SP", "kernel variant: no-vec-QP, no-vec-SP, simd-QP, simd-SP, intrinsic-QP, intrinsic-SP; append -8bit to an intrinsic variant for the adaptive 8/16/32-bit scoring ladder")
		matrix     = flag.String("matrix", "", "substitution matrix: BLOSUM45/50/62/80, PAM250, NUC (default: BLOSUM62 for protein, NUC for DNA)")
		matrixFile = flag.String("matrixfile", "", "custom substitution matrix file in the NCBI textual format (overrides -matrix)")
		gapOpen    = flag.Int("gapopen", 10, "gap open penalty q (gap of length x costs q + r*x)")
		gapExtend  = flag.Int("gapextend", 2, "gap extension penalty r")
		threads    = flag.Int("threads", 0, "simulated device threads (0 = device maximum)")
		schedule   = flag.String("schedule", "dynamic", "OpenMP loop policy: static, dynamic, guided")
		noBlock    = flag.Bool("noblocking", false, "disable the cache-blocking optimisation")
		topK       = flag.Int("top", 10, "number of hits to print")
		showAlign  = flag.Int("align", 0, "print full alignments for the first N hits")
		blast      = flag.Bool("blast", false, "run the two-phase aligned search (score pass, then tracebacks over the top hits) and print a BLAST-style report")
		evalue     = flag.Bool("evalue", false, "with -blast: fit a null model over the score distribution and report bit scores and E-values")
		dna        = flag.Bool("dna", false, "nucleotide mode: parse the FASTA database and queries under the IUPAC DNA alphabet")
		translated = flag.Bool("translate", false, "six-frame translated search (blastx-style): DNA queries against a protein database; implies the reporting pipeline")
		outfmt     = flag.String("outfmt", "", "report format: blast, sam, tsv; implies the two-phase aligned search like -blast")
		batch      = flag.Bool("batch", false, "search every record of the query FASTA as one batch instead of just -queryindex")
	)
	flag.Parse()

	var (
		db      *heterosw.Database
		queries []heterosw.Sequence
		err     error
	)
	switch {
	case *synthetic > 0:
		if *dna {
			fatal(fmt.Errorf("-dna does not apply to the synthetic protein database"))
		}
		db, queries = heterosw.SyntheticSwissProt(*synthetic, true)
		if *translated {
			fatal(fmt.Errorf("-translate needs DNA queries from -query"))
		}
	case *dbPath != "":
		// FASTA or a preprocessed .swdb index, sniffed by magic; the index
		// path restores the sorted database without parsing.
		if *dna {
			db, err = heterosw.LoadDNADatabaseFile(*dbPath)
		} else {
			db, err = heterosw.LoadDatabaseFile(*dbPath)
		}
		if err != nil {
			fatal(err)
		}
		if *queryPath == "" {
			fatal(fmt.Errorf("-query is required with -db"))
		}
		// Translated search takes nucleotide queries against a protein
		// database, so -translate reads the query FASTA as DNA even
		// without -dna.
		if *dna || *translated {
			queries, err = heterosw.ReadDNAFASTAFile(*queryPath)
		} else {
			queries, err = heterosw.ReadFASTAFile(*queryPath)
		}
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("provide -db/-query or -synthetic; see -help"))
	}
	if *queryIndex < 0 || *queryIndex >= len(queries) {
		fatal(fmt.Errorf("query index %d outside [0,%d)", *queryIndex, len(queries)))
	}
	query := queries[*queryIndex]

	opt := heterosw.Options{
		Device:    heterosw.DeviceKind(*device),
		Variant:   *variant,
		Matrix:    *matrix,
		GapOpen:   *gapOpen,
		GapExtend: *gapExtend,
		Threads:   *threads,
		Schedule:  *schedule,
		TopK:      *topK,
	}
	opt.NoBlocking = *noBlock
	if *matrixFile != "" {
		text, rerr := os.ReadFile(*matrixFile)
		if rerr != nil {
			fatal(rerr)
		}
		opt.MatrixText = string(text)
	}

	if *blast || *outfmt != "" || *translated || *batch {
		// The two-phase reporting pipeline: the vectorised score pass over
		// the roster selects the top hits, then the traceback phase
		// re-aligns the query against just those hits. A bare -blast runs
		// a single-device roster of -device; -batch feeds every query
		// record through the cluster's batch scheduler in one pass.
		roster := *devices
		if roster == "" {
			roster = *device
		}
		cl, cerr := heterosw.NewCluster(db, clusterOptions(opt, roster, *dist, *shares, *threads))
		if cerr != nil {
			fatal(cerr)
		}
		rep := heterosw.ReportOptions{Alignments: true, EValues: *evalue, TopK: *topK}
		sel := []heterosw.Sequence{query}
		if *batch {
			sel = queries
		}
		start := time.Now()
		var results []*heterosw.ClusterResult
		switch {
		case *translated:
			for _, q := range sel {
				res, rerr := cl.SearchTranslated(q, rep)
				if rerr != nil {
					fatal(rerr)
				}
				results = append(results, res)
			}
		case len(sel) > 1:
			results, err = cl.SearchBatch(sel, rep)
			if err != nil {
				fatal(err)
			}
		default:
			res, rerr := cl.Search(sel[0], rep)
			if rerr != nil {
				fatal(rerr)
			}
			results = []*heterosw.ClusterResult{res}
		}
		format := *outfmt
		if format == "" {
			format = "blast"
		}
		for i, res := range results {
			if i > 0 && format == "blast" {
				fmt.Println(strings.Repeat("=", 70))
			}
			if err := heterosw.WriteFormat(os.Stdout, format, sel[i], db, res, 60); err != nil {
				fatal(err)
			}
		}
		if format == "blast" {
			var gcups, sim float64
			for _, res := range results {
				gcups = res.SimGCUPS
				sim += res.SimSeconds
			}
			fmt.Printf("\nperformance: %.2f GCUPS simulated (%.4fs on model), %v real\n",
				gcups, sim, time.Since(start).Round(time.Millisecond))
		}
		return
	}

	unit := "aa"
	if query.Alphabet() == "dna" {
		unit = "nt"
	}
	fmt.Printf("database: %s\n", db)
	fmt.Printf("query:    %s (%d %s)\n", query.ID(), query.Len(), unit)
	fmt.Printf("vec:      %s\n", hostdev.HostSIMD())

	start := time.Now()
	var res *heterosw.Result
	if *devices != "" {
		cl, cerr := heterosw.NewCluster(db, clusterOptions(opt, *devices, *dist, *shares, *threads))
		if cerr != nil {
			fatal(cerr)
		}
		cres, cerr := cl.Search(query)
		if cerr != nil {
			fatal(cerr)
		}
		fmt.Printf("cluster:  %d backends, %s distribution\n", len(cres.Backends), *dist)
		for _, b := range cres.Backends {
			fmt.Printf("  %-8s %5.1f%% of residues, %3d chunk(s), %8.4fs simulated, %d threads\n",
				b.Name, b.Share*100, b.Chunks, b.SimSeconds, b.Threads)
		}
		res = &cres.Result
	} else if *hetero {
		hres, herr := db.SearchHetero(query, heterosw.HeteroOptions{Options: opt, PhiShare: *phiShare})
		if herr != nil {
			fatal(herr)
		}
		fmt.Printf("hetero:   CPU %.0f%% / Phi %.0f%% of residues; CPU %.3fs, Phi %.3fs (simulated)\n",
			hres.CPUShare*100, hres.PhiShare*100, hres.CPUSeconds, hres.PhiSeconds)
		res = &hres.Result
	} else {
		res, err = db.Search(query, opt)
		if err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("performance: %.2f GCUPS simulated (%.4fs on model), %.3f GCUPS wall (%v real)\n",
		res.SimGCUPS, res.SimSeconds, res.WallGCUPS, elapsed.Round(time.Millisecond))
	fmt.Printf("cells: %d, simulated threads: %d, overflow escalations: %d to 16-bit, %d to 32-bit\n\n",
		res.Cells, res.Threads, res.Overflows8, res.Overflows)

	fmt.Printf("%4s %-16s %7s\n", "#", "subject", "score")
	for i, h := range res.Hits {
		fmt.Printf("%4d %-16s %7d\n", i+1, h.ID, h.Score)
	}
	for i := 0; i < *showAlign && i < len(res.Hits); i++ {
		h := res.Hits[i]
		al, aerr := heterosw.Align(query, db.Seq(h.Index), heterosw.AlignOptions{
			Matrix: *matrix, GapOpen: *gapOpen, GapExtend: *gapExtend,
		})
		if aerr != nil {
			fatal(aerr)
		}
		fmt.Printf("\n>%s (CIGAR %s)\n%s", h.ID, al.CIGAR(), al.Format(60))
	}
}

// clusterOptions assembles ClusterOptions from the shared cluster flags:
// the comma-separated roster and static shares, and -threads applied to
// every backend (0 = each device's maximum).
func clusterOptions(opt heterosw.Options, devices, dist, shares string, threads int) heterosw.ClusterOptions {
	kinds := []heterosw.DeviceKind{}
	for _, d := range strings.Split(devices, ",") {
		kinds = append(kinds, heterosw.DeviceKind(strings.TrimSpace(d)))
	}
	var shareList []float64
	if shares != "" {
		for _, s := range strings.Split(shares, ",") {
			v, perr := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if perr != nil {
				fatal(perr)
			}
			shareList = append(shareList, v)
		}
	}
	var perBackend []int
	if threads > 0 {
		perBackend = make([]int, len(kinds))
		for i := range perBackend {
			perBackend[i] = threads
		}
	}
	return heterosw.ClusterOptions{
		Options: opt,
		Devices: kinds,
		Threads: perBackend,
		Dist:    dist,
		Shares:  shareList,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swsearch:", err)
	os.Exit(1)
}
