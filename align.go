package heterosw

import (
	"fmt"

	"heterosw/internal/alphabet"
	"heterosw/internal/submat"
	"heterosw/internal/swalign"
)

// AlignOptions configures pairwise alignment. The zero value uses the
// alphabet's conventional matrix (BLOSUM62 for protein, NUC for DNA) with
// gap open 10 and extend 2, the paper's parameters.
type AlignOptions struct {
	// Matrix is a built-in substitution matrix name (the first sequence's
	// alphabet default when empty).
	Matrix string
	// GapOpen and GapExtend are the affine penalties (10/2 when zero;
	// set NoGapDefaults for literal zeros).
	GapOpen, GapExtend int
	NoGapDefaults      bool
}

func (o AlignOptions) scoringFor(alpha *alphabet.Alphabet) (swalign.Scoring, error) {
	name := o.Matrix
	if name == "" {
		if alpha == alphabet.DNA {
			name = "NUC"
		} else {
			name = "BLOSUM62"
		}
	}
	m, err := submat.ByName(name)
	if err != nil {
		return swalign.Scoring{}, err
	}
	gapOpen, gapExtend := o.GapOpen, o.GapExtend
	if !o.NoGapDefaults {
		if gapOpen == 0 {
			gapOpen = 10
		}
		if gapExtend == 0 {
			gapExtend = 2
		}
	}
	sc := swalign.Scoring{Matrix: m, GapOpen: gapOpen, GapExtend: gapExtend}
	return sc, sc.Validate()
}

// Alignment is the outcome of a pairwise local alignment with traceback.
type Alignment struct {
	impl *swalign.Alignment
}

// Score returns the optimal local alignment score.
func (a *Alignment) Score() int { return a.impl.Score }

// Identities returns the number of identical aligned residue pairs.
func (a *Alignment) Identities() int { return a.impl.Identities }

// Coordinates returns the aligned segments as half-open ranges
// [aStart,aEnd) of the first sequence and [bStart,bEnd) of the second.
func (a *Alignment) Coordinates() (aStart, aEnd, bStart, bEnd int) {
	return a.impl.AStart, a.impl.AEnd, a.impl.BStart, a.impl.BEnd
}

// CIGAR renders the alignment path in run-length notation, e.g. "12M2D5M".
func (a *Alignment) CIGAR() string { return a.impl.CIGAR() }

// Format renders a three-line human-readable alignment wrapped at width
// columns (60 when width <= 0).
func (a *Alignment) Format(width int) string { return a.impl.Format(width) }

// Align computes the optimal local alignment between two sequences with
// the full dynamic-programming matrix and backtracking (Section II of the
// paper, steps 1-4).
func Align(a, b Sequence, opt AlignOptions) (*Alignment, error) {
	if a.impl == nil || b.impl == nil {
		return nil, fmt.Errorf("heterosw: zero-value sequence")
	}
	sc, err := opt.scoringFor(a.impl.Alphabet())
	if err != nil {
		return nil, err
	}
	return &Alignment{impl: swalign.Align(a.impl.Residues, b.impl.Residues, sc)}, nil
}

// Score computes only the optimal local alignment score, in linear space.
func Score(a, b Sequence, opt AlignOptions) (int, error) {
	if a.impl == nil || b.impl == nil {
		return 0, fmt.Errorf("heterosw: zero-value sequence")
	}
	sc, err := opt.scoringFor(a.impl.Alphabet())
	if err != nil {
		return 0, err
	}
	return swalign.Score(a.impl.Residues, b.impl.Residues, sc), nil
}

// ScoreBanded computes a banded local alignment score around the given
// diagonal (j - i = diag): the rescoring primitive of seed-and-extend
// pipelines. The result is a lower bound on Score, equal whenever the
// optimal alignment stays within the band.
func ScoreBanded(a, b Sequence, diag, band int, opt AlignOptions) (int, error) {
	if a.impl == nil || b.impl == nil {
		return 0, fmt.Errorf("heterosw: zero-value sequence")
	}
	sc, err := opt.scoringFor(a.impl.Alphabet())
	if err != nil {
		return 0, err
	}
	return swalign.ScoreBanded(a.impl.Residues, b.impl.Residues, sc, diag, band), nil
}
