package heterosw

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func testServer(t *testing.T) (*httptest.Server, *Cluster, *Database) {
	t.Helper()
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{Dist: "dynamic"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandler(cl))
	t.Cleanup(func() { ts.Close(); cl.CloseNow() })
	return ts, cl, db
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPSearch(t *testing.T) {
	ts, cl, _ := testServer(t)
	resp, body := postJSON(t, ts.URL+"/search", map[string]any{
		"id": "q1", "residues": "MKWVLA", "top_k": 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SearchJSON
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if sr.ID != "q1" || len(sr.Hits) != 2 {
		t.Fatalf("response %+v", sr)
	}
	// The HTTP path must agree with the direct search.
	direct, err := cl.Search(NewSequence("q1", "MKWVLA"))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Hits[0].ID != direct.Hits[0].ID || sr.Hits[0].Score != direct.Hits[0].Score {
		t.Fatalf("HTTP top hit %+v != direct %+v", sr.Hits[0], direct.Hits[0])
	}
}

func TestHTTPBatchOrderAndHealthz(t *testing.T) {
	ts, _, db := testServer(t)
	queries := []map[string]any{
		{"id": "a", "residues": "MKWVLA"},
		{"id": "b", "residues": "CCQEGH"},
		{"id": "a2", "residues": "MKWVLA"}, // repeat: joins or hits the cache
	}
	resp, body := postJSON(t, ts.URL+"/batch", map[string]any{"queries": queries, "top_k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchJSON
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("%d results", len(br.Results))
	}
	for i, want := range []string{"a", "b", "a2"} {
		if br.Results[i].ID != want {
			t.Fatalf("result %d is %q, want %q (order lost)", i, br.Results[i].ID, want)
		}
	}
	if br.Results[0].Hits[0].ID != br.Results[2].Hits[0].ID {
		t.Fatal("repeated query diverged across the batch")
	}

	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var h HealthJSON
	if err := json.NewDecoder(hres.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sequences != db.Len() || h.Residues != db.Residues() {
		t.Fatalf("healthz %+v", h)
	}
	if h.Queries < 2 {
		t.Fatalf("healthz reports %d queries, want >= 2", h.Queries)
	}
	if h.Scheduler.Submitted < 3 {
		t.Fatalf("healthz scheduler %+v", h.Scheduler)
	}
	if len(h.Backends) != 2 || h.Backends[0].Name == "" {
		t.Fatalf("healthz backends %+v", h.Backends)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _, _ := testServer(t)
	cases := []struct {
		path   string
		body   string
		status int
	}{
		{"/search", `{"residues":""}`, http.StatusBadRequest},
		{"/search", `{bad json`, http.StatusBadRequest},
		{"/search", `{"residues":"MKV","unknown_field":1}`, http.StatusBadRequest},
		{"/batch", `{"queries":[]}`, http.StatusBadRequest},
		{"/batch", `{"queries":[{"residues":""}]}`, http.StatusBadRequest},
		// Response-shaping validation: negative and absurd top_k, and an
		// aligned report over the traceback cap, are client errors.
		{"/search", `{"residues":"MKV","top_k":-1}`, http.StatusBadRequest},
		{"/search", `{"residues":"MKV","top_k":10001}`, http.StatusBadRequest},
		{"/search", `{"residues":"MKV","top_k":65,"align":true}`, http.StatusBadRequest},
		{"/batch", `{"queries":[{"residues":"MKV"}],"top_k":-5}`, http.StatusBadRequest},
		{"/batch", `{"queries":[{"residues":"MKV"}],"top_k":65,"align":true}`, http.StatusBadRequest},
		// top_k exactly at the align cap is fine.
		{"/search", `{"residues":"MKV","top_k":64,"align":true}`, http.StatusOK},
		// An E-value fit over the 4-sequence test database cannot work:
		// the non-retryable 422, not a hard 500.
		{"/search", `{"residues":"MKV","evalue":true}`, http.StatusUnprocessableEntity},
		{"/batch", `{"queries":[{"residues":"MKV"}],"evalue":true}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("POST %s %q: status %d, want %d", tc.path, tc.body, resp.StatusCode, tc.status)
		}
	}
	// Method checks.
	if resp, err := http.Get(ts.URL + "/search"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /search: status %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(ts.URL+"/healthz", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /healthz: status %d", resp.StatusCode)
		}
	}
}

// An oversize request body must be refused with 413, on both endpoints.
func TestHTTPOversizeBody(t *testing.T) {
	ts, _, _ := testServer(t)
	huge := `{"residues":"` + strings.Repeat("A", maxRequestBytes+1) + `"}`
	for _, path := range []string{"/search", "/batch"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversize: status %d, want 413", path, resp.StatusCode)
		}
	}
}

// An aligned /batch over a database large enough for the E-value fit
// returns per-query decorations in request order, and healthz accounts
// the traceback phase.
func TestHTTPBatchAligned(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0001, false) // 54 sequences: fit viable
	cl, err := NewCluster(db, ClusterOptions{Dist: "dynamic"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandler(cl))
	t.Cleanup(func() { ts.Close(); cl.CloseNow() })

	resp, body := postJSON(t, ts.URL+"/batch", map[string]any{
		"queries": []map[string]any{
			{"id": "a", "residues": "MKWVLAARNDCCQEGHIL"},
			{"id": "b", "residues": "WYVKMFPSTWYVARNDAR"},
		},
		"top_k": 3, "align": true, "evalue": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchJSON
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 || br.Results[0].ID != "a" || br.Results[1].ID != "b" {
		t.Fatalf("results %+v", br.Results)
	}
	for _, sr := range br.Results {
		if sr.Significance == "" || len(sr.Hits) != 3 {
			t.Fatalf("query %s: significance %q, %d hits", sr.ID, sr.Significance, len(sr.Hits))
		}
		for _, h := range sr.Hits {
			if h.Alignment == nil || h.Alignment.CIGAR == "" || h.BitScore == nil || h.EValue == nil {
				t.Fatalf("query %s hit %s missing decorations: %+v", sr.ID, h.ID, h)
			}
		}
	}

	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var h HealthJSON
	if err := json.NewDecoder(hres.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	var tracebacks int64
	for _, b := range h.Backends {
		tracebacks += b.Tracebacks
	}
	if tracebacks != 6 { // 2 queries x top_k 3, never the whole database
		t.Fatalf("healthz records %d tracebacks, want 6", tracebacks)
	}
}

// Concurrent HTTP clients must coalesce through the serving scheduler and
// all receive correct answers — the serving-path analogue of the stream
// ordering test. Run under -race in CI.
func TestHTTPConcurrentClients(t *testing.T) {
	ts, cl, _ := testServer(t)
	want, err := cl.Search(NewSequence("q", "MKWVLA"))
	if err != nil {
		t.Fatal(err)
	}
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/search", "application/json",
				bytes.NewReader([]byte(fmt.Sprintf(`{"id":"c%d","residues":"MKWVLA","top_k":1}`, i))))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var sr SearchJSON
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				errs <- err
				return
			}
			if len(sr.Hits) != 1 || sr.Hits[0].ID != want.Hits[0].ID || sr.Hits[0].Score != want.Hits[0].Score {
				errs <- fmt.Errorf("client %d got %+v", i, sr.Hits)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if hits, _, _ := cl.CacheStats(); hits == 0 {
		st := cl.SchedulerStats()
		if st.Joined == 0 {
			t.Fatalf("identical concurrent requests neither joined nor hit the cache: %+v", st)
		}
	}
}

// A draining cluster answers both endpoints with the retryable 503, not a
// hard 500.
func TestHTTPClosedCluster(t *testing.T) {
	ts, cl, _ := testServer(t)
	cl.CloseNow()
	resp, body := postJSON(t, ts.URL+"/search", map[string]any{"residues": "MKWVLA"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/search on closed cluster: status %d (%s), want 503", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/batch", map[string]any{
		"queries": []map[string]any{{"residues": "MKWVLA"}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/batch on closed cluster: status %d (%s), want 503", resp.StatusCode, body)
	}
}

// A client that disconnects mid-request must not break the server or leak
// its wait; the computation completes into the cache.
func TestHTTPClientDisconnect(t *testing.T) {
	ts, cl, _ := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/search",
		bytes.NewReader([]byte(`{"residues":"MKWVLAARND"}`)))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("cancelled request succeeded")
	}
	// The server keeps serving.
	resp, body := postJSON(t, ts.URL+"/search", map[string]any{"residues": "MKWVLAARND"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after disconnect: %s", resp.StatusCode, body)
	}
	_ = cl
}

// TestHTTPMatrixErrors pins the user-matrix contract: every way submitted
// matrix text can be rejected maps to 400 with the sentinel family visible
// at the library layer (errors.Is on ErrBadMatrix and the specific mode).
func TestHTTPMatrixErrors(t *testing.T) {
	ts, cl, _ := testServer(t)
	cases := []struct {
		name   string
		matrix string
		want   error
	}{
		{"bad-alphabet-header", "A 1 C\nA 4 0 0\n", ErrBadMatrixAlphabet},
		{"bad-alphabet-row", "A C\n1 4 0\n", ErrBadMatrixAlphabet},
		{"not-square", "A C\nA 4\n", ErrMatrixNotSquare},
		{"asymmetric", "A C\nA 4 1\nC 2 4\n", ErrMatrixNotSquare},
		{"empty", "# only a comment\n", ErrMatrixNotSquare},
		{"score-overflow", "A\nA 999\n", ErrMatrixScoreRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/search", map[string]any{
				"residues": "MKWVLA", "matrix": tc.matrix,
			})
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d (%s), want 400", resp.StatusCode, body)
			}
			// The same text through the library surfaces the typed sentinels.
			_, err := cl.SearchMatrix(NewSequence("q", "MKWVLA"), tc.matrix)
			if !errors.Is(err, ErrBadMatrix) {
				t.Fatalf("SearchMatrix error %v does not wrap ErrBadMatrix", err)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("SearchMatrix error %v does not wrap %v", err, tc.want)
			}
		})
	}
}

// A well-formed user matrix flows through /search and changes scoring: an
// identity-only matrix collapses every alignment to exact residue runs.
func TestHTTPMatrixCustom(t *testing.T) {
	ts, _, _ := testServer(t)
	matrix := "# match-only\nM K W V L A\nM 9 -9 -9 -9 -9 -9\nK -9 9 -9 -9 -9 -9\nW -9 -9 9 -9 -9 -9\nV -9 -9 -9 9 -9 -9\nL -9 -9 -9 -9 9 -9\nA -9 -9 -9 -9 -9 9\n"
	resp, body := postJSON(t, ts.URL+"/search", map[string]any{
		"id": "q", "residues": "MKWVLA", "matrix": matrix, "top_k": 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SearchJSON
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	// 6 exact residues x 9 under the custom matrix; BLOSUM62 scores this
	// pairing 34, so the request-scoped matrix demonstrably applied.
	if len(sr.Hits) != 1 || sr.Hits[0].Score != 54 {
		t.Fatalf("custom-matrix top hit %+v, want score 54", sr.Hits)
	}
}

// TestHTTPFormats pins the format field: blast/sam/tsv return text/plain
// renderings, unknown formats are client errors, and json stays default.
func TestHTTPFormats(t *testing.T) {
	ts, _, _ := testServer(t)
	for _, format := range []string{"blast", "sam", "tsv"} {
		resp, body := postJSON(t, ts.URL+"/search", map[string]any{
			"id": "q1", "residues": "MKWVLA", "top_k": 2, "format": format,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("format=%s: status %d: %s", format, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("format=%s: content type %q", format, ct)
		}
		if json.Valid(body) {
			t.Fatalf("format=%s returned JSON: %s", format, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/search", map[string]any{
		"residues": "MKWVLA", "format": "xml",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml: status %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestHTTPBatchFASTA pins the fasta body field on /batch: records parse
// under the database alphabet, mix with explicit queries, and order is
// queries-then-fasta.
func TestHTTPBatchFASTA(t *testing.T) {
	ts, _, _ := testServer(t)
	fasta := ">f1 first\nMKWVLA\n>f2 second\nCCQEGH\n"
	resp, body := postJSON(t, ts.URL+"/batch", map[string]any{
		"queries": []map[string]any{{"id": "e1", "residues": "WYVKMF"}},
		"fasta":   fasta,
		"top_k":   1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchJSON
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("%d results, want 3", len(br.Results))
	}
	for i, want := range []string{"e1", "f1", "f2"} {
		if br.Results[i].ID != want {
			t.Fatalf("result %d is %q, want %q", i, br.Results[i].ID, want)
		}
	}
	// Malformed FASTA is a client error.
	resp, body = postJSON(t, ts.URL+"/batch", map[string]any{"fasta": "no header\n"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad fasta: status %d (%s), want 400", resp.StatusCode, body)
	}
}
