package heterosw

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"heterosw/internal/core"
	"heterosw/internal/device"
	"heterosw/internal/qsched"
	"heterosw/internal/remote"
	"heterosw/internal/seqdb"
)

// DeviceRemote is the roster label of a remote shard node in a
// distributed cluster's reports. It is not constructible through
// ClusterOptions.Devices — remote backends come from NewDistributedCluster.
const DeviceRemote = DeviceKind("remote")

// DistributedOptions configures a coordinator over remote shard nodes.
type DistributedOptions struct {
	// Options carries the kernel configuration used for the coordinator's
	// own reporting (significance fit parameters, TopK, matrix for the
	// local traceback fallback). The remote nodes execute shards under
	// their OWN configured options — the coordinator ships queries, not
	// search parameters — so operators must configure nodes and
	// coordinator identically for the merged result to be meaningful.
	Options

	// MaxInFlight, BatchWindow, MaxBatch and CacheSize tune the
	// coordinator's serving scheduler and result cache exactly as the
	// same-named ClusterOptions fields do.
	MaxInFlight int
	BatchWindow time.Duration
	MaxBatch    int
	CacheSize   int

	// Timeout bounds each node request attempt; Retries and Backoff shape
	// the retry policy over retryable (503/transport) failures; HedgeDelay
	// launches a duplicate request to the next replica of a slow shard.
	// See remote.Options for defaults.
	Timeout    time.Duration
	Retries    int
	Backoff    time.Duration
	HedgeDelay time.Duration
	// HTTPClient optionally supplies the underlying HTTP client.
	HTTPClient *http.Client

	// ProbeInterval is the background health-probe period (15s when 0;
	// negative disables the background loop, leaving probes to explicit
	// ProbeNodes calls — the mode deterministic tests use). Each sweep
	// re-probes every node, updates the per-node health state machine and
	// recomputes every shard's replica set from the latest ownership
	// reports.
	ProbeInterval time.Duration
	// ProbeDeadAfter is the consecutive probe-failure count that marks a
	// node dead and fails its shards over to the surviving replicas (3
	// when 0). A later successful probe readopts the node.
	ProbeDeadAfter int
}

// liveTopology is a coordinator's mutable topology state: the manifest
// generation currently serving, one live replica set per shard, and the
// prober that keeps them converged with reality. The engine itself (the
// dispatcher built over the shard cut) lives in Cluster.eng and is
// swapped atomically on reload; this struct owns everything that changes
// between and within generations.
type liveTopology struct {
	client       *remote.Client
	prober       *remote.Prober
	nodes        []string
	manifestPath string
	db           *Database

	mu sync.Mutex
	//sw:guardedBy(mu)
	man *remote.Manifest
	// keys mirrors man.Shards[i].Key; replicas[i] is shard i's live
	// replica set, rewritten by refresh after every probe sweep.
	//sw:guardedBy(mu)
	keys []string
	//sw:guardedBy(mu)
	replicas []*remote.ReplicaSet
	//sw:guardedBy(mu)
	generation int
	//sw:guardedBy(mu)
	reloads int
	//sw:guardedBy(mu)
	reloadFailures int
}

// install publishes a freshly validated topology generation.
func (t *liveTopology) install(man *remote.Manifest, keys []string, sets []*remote.ReplicaSet) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.man = man
	t.keys = keys
	t.replicas = sets
	t.generation++
}

// noteReload records a reload outcome.
func (t *liveTopology) noteReload(ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ok {
		t.reloads++
	} else {
		t.reloadFailures++
	}
}

// refresh is the prober's onChange hook: recompute every shard's replica
// set from the latest ownership reports. A node that newly reports a
// shard key joins that shard's replicas; a dead node leaves every set it
// was in — failover and readoption are both exactly this rewrite. The
// sets are updated in place, so in-flight requests (which snapshotted
// their URL list already) are untouched.
func (t *liveTopology) refresh() {
	t.mu.Lock()
	keys := t.keys
	sets := t.replicas
	t.mu.Unlock()
	if len(keys) == 0 {
		return // construction probe: nothing published yet
	}
	owners := t.prober.Owners(keys)
	for i, key := range keys {
		sets[i].Set(owners[key])
	}
}

// kick forwards a request failure to the prober for an immediate
// re-probe of the failing node.
func (t *liveTopology) kick(url string, err error) {
	t.prober.Kick(url)
}

// NewDistributedCluster builds a coordinator: a Cluster whose backends
// are remote shard nodes instead of local device models. The manifest
// (written by swindex split) names the shard cut of the parent database;
// nodes are probed for which shard keys they serve, and each shard's
// owners become the replica set its requests route (and hedge) across.
//
// db must be the parent .swdb index the manifest was cut from — the
// checksum keys must agree — so the coordinator can reconstruct each
// shard's exact sequence membership locally (seqdb.Select over the
// manifest's parent-index lists). Scores merge into parent order, the
// hit list and the Gumbel significance fit run over the union score
// distribution, and every report is byte-identical to a single-node
// search of the unsplit database under the same options — a guarantee
// that holds through node deaths, failovers and manifest reloads as long
// as at least one live replica serves every shard.
//
// The topology stays live after construction: a background prober
// (ProbeInterval) re-probes the node roster, tracks each node through a
// healthy/degraded/dead state machine with latency accounting, fails a
// dead node's shards over to its surviving replicas and readopts the
// node when it answers again — all without restarting the coordinator.
// ReloadManifest (wired to SIGHUP and POST /admin/reload by swserve)
// re-reads the manifest for a re-cut shard layout; Topology snapshots
// the whole state for /healthz.
//
// Every scheduled entry point works unchanged: SearchScheduled and the
// HTTP front end coalesce, dedup and cache exactly as on a local
// cluster. Aligned reports fan tracebacks out to the nodes owning each
// hit's shard.
//
// ctx bounds the construction-time node probes (which run concurrently):
// cancelling it aborts the topology discovery (a caller-side startup
// deadline), and it is not retained after NewDistributedCluster returns.
func NewDistributedCluster(ctx context.Context, db *Database, manifestPath string, nodes []string, opt DistributedOptions) (*Cluster, error) {
	if db == nil {
		return nil, fmt.Errorf("heterosw: nil database")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("heterosw: no nodes")
	}
	man, err := remote.ReadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	if err := validateManifestFor(db, man); err != nil {
		return nil, err
	}

	topo := &liveTopology{
		nodes:        append([]string(nil), nodes...),
		manifestPath: manifestPath,
		db:           db,
	}
	topo.client = remote.NewClient(remote.Options{
		HTTP:       opt.HTTPClient,
		Timeout:    opt.Timeout,
		Retries:    opt.Retries,
		Backoff:    opt.Backoff,
		HedgeDelay: opt.HedgeDelay,
		OnFailure:  topo.kick,
	})
	topo.prober = remote.NewProber(topo.client, nodes, remote.ProberOptions{
		Interval:  opt.ProbeInterval,
		DeadAfter: opt.ProbeDeadAfter,
	}, topo.refresh)

	// Probe every node (concurrently, under the caller's ctx) for the
	// shard keys it serves. Individual probe failures are tolerated — a
	// node may be restarting, and replicas exist exactly for this — but a
	// shard nobody owns is fatal: the merged result would silently miss
	// its sequences.
	topo.prober.ProbeAll(ctx)
	eng, keys, sets, err := buildShardEngine(db, man, topo.prober, topo.client)
	if err != nil {
		return nil, err
	}
	topo.install(man, keys, sets)

	search, err := opt.Options.toCore(db.db.Alphabet())
	if err != nil {
		return nil, err
	}
	cacheSize := opt.CacheSize
	if cacheSize == 0 {
		cacheSize = defaultCacheSize(db.Len())
	}
	c := &Cluster{
		db:   db,
		topo: topo,
		dopt: core.DispatchOptions{
			Search: search,
			Dist:   core.DistStatic,
		},
		schedOpt: qsched.Options{
			MaxBatch:    opt.MaxBatch,
			Window:      opt.BatchWindow,
			MaxInFlight: opt.MaxInFlight,
		},
		cache: qsched.NewCache[*ClusterResult](cacheSize),
	}
	c.eng.Store(eng)
	c.keyBase = fmt.Sprintf("%v|%v|%d|%+v|", c.dopt.Dist, c.dopt.Shares, c.dopt.ChunkResidues, c.dopt.Search)
	topo.prober.Start()
	return c, nil
}

// validateManifestFor checks a manifest against the coordinator's parent
// database: the durable checksum identity and the alphabet must agree.
// Construction and every hot-reload run exactly this gate.
func validateManifestFor(db *Database, man *remote.Manifest) error {
	key := db.Key()
	if key == "" {
		return fmt.Errorf("heterosw: the coordinator database needs a durable key (open the parent .swdb index, not FASTA)")
	}
	if key != man.Parent {
		return fmt.Errorf("heterosw: database key %s does not match the manifest parent %s", key, man.Parent)
	}
	if a := db.Alphabet(); a != man.Alphabet {
		return fmt.Errorf("heterosw: database alphabet %s does not match the manifest alphabet %s", a, man.Alphabet)
	}
	return nil
}

// buildShardEngine assembles one topology generation over a validated
// manifest: per-shard replica sets from the prober's latest ownership
// reports, one remote backend per shard, and the sharded dispatcher.
// A shard with no live owner fails the build — the caller keeps serving
// the previous generation (hot-reload) or refuses to start (construction).
func buildShardEngine(db *Database, man *remote.Manifest, prober *remote.Prober, client *remote.Client) (*engineState, []string, []*remote.ReplicaSet, error) {
	keys := make([]string, len(man.Shards))
	for i, sh := range man.Shards {
		keys[i] = sh.Key
	}
	owners := prober.Owners(keys)
	backends := make([]core.Backend, len(man.Shards))
	shardDBs := make([]*seqdb.Database, len(man.Shards))
	shardIdx := make([][]int, len(man.Shards))
	kinds := make([]DeviceKind, len(man.Shards))
	sets := make([]*remote.ReplicaSet, len(man.Shards))
	for i, sh := range man.Shards {
		urls := owners[sh.Key]
		if len(urls) == 0 {
			return nil, nil, nil, fmt.Errorf("heterosw: no node serves shard %d (%s)%s", i, sh.Key, probeSuffix(prober.ProbeErrors()))
		}
		sdb, err := db.db.Select(sh.ParentIndex, sh.Key)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("heterosw: shard %d (%s): %w", i, sh.Key, err)
		}
		if sdb.Residues() != sh.Residues {
			return nil, nil, nil, fmt.Errorf("heterosw: shard %d (%s) selects %d residues, manifest declares %d",
				i, sh.Key, sdb.Residues(), sh.Residues)
		}
		sets[i] = remote.NewReplicaSet(urls)
		// device.Xeon is a planning placeholder only: under a fixed shard
		// assignment the cut is the plan, so the model is never consulted.
		backends[i] = remote.NewBackendSet(fmt.Sprintf("remote#%d", i), client, sets[i], device.Xeon())
		shardDBs[i] = sdb
		shardIdx[i] = sh.ParentIndex
		kinds[i] = DeviceRemote
	}
	disp, err := core.NewDispatcherShards(db.db, backends, shardDBs, shardIdx)
	if err != nil {
		return nil, nil, nil, err
	}
	return &engineState{disp: disp, kinds: kinds}, keys, sets, nil
}

// probeSuffix folds node probe failures into a shard-ownership error, so
// "no node serves shard X" explains itself when the real problem is that
// the nodes were unreachable.
func probeSuffix(probeErrs []error) string {
	if len(probeErrs) == 0 {
		return ""
	}
	return fmt.Sprintf("; %d node probe(s) failed: %v", len(probeErrs), errors.Join(probeErrs...))
}

// ProbeNodes runs one synchronous health-probe sweep over the node
// roster: every node is probed concurrently, the per-node state machines
// advance, and every shard's replica set is recomputed from the latest
// ownership reports. The background prober does exactly this every
// ProbeInterval; explicit calls serve deterministic tests (which disable
// the background loop) and the POST /admin/probe endpoint. Fails only on
// a non-distributed cluster — individual node failures are what the
// sweep exists to record.
func (c *Cluster) ProbeNodes(ctx context.Context) error {
	if c.topo == nil {
		return fmt.Errorf("heterosw: ProbeNodes needs a distributed coordinator")
	}
	c.topo.prober.ProbeAll(ctx)
	return nil
}

// ReloadManifest re-reads the coordinator's manifest from the path given
// at construction and atomically swaps the serving topology onto the new
// shard cut — the hot-reload behind swserve's SIGHUP and POST
// /admin/reload. The discipline mirrors the .swdb writer's temp+rename:
// the incoming manifest is read, validated against the parent database,
// and built into a complete engine (nodes re-probed, every shard needing
// at least one live owner) BEFORE anything is published; any failure
// leaves the old topology serving untouched. In-flight queries hold the
// engine snapshot they started with, so a reload never tears a response.
//
// The swap resets the per-backend Totals accounting (the new generation
// has fresh backends); the result cache is kept — the conformance
// guarantee makes results identical across cuts of the same parent.
func (c *Cluster) ReloadManifest(ctx context.Context) error {
	t := c.topo
	if t == nil {
		return fmt.Errorf("heterosw: ReloadManifest needs a distributed coordinator")
	}
	man, err := remote.ReadManifest(t.manifestPath)
	if err != nil {
		t.noteReload(false)
		return fmt.Errorf("heterosw: manifest reload: %w", err)
	}
	if err := validateManifestFor(t.db, man); err != nil {
		t.noteReload(false)
		return err
	}
	// Re-probe before building so nodes newly serving the incoming cut's
	// shards are discovered in this very call, not a sweep later.
	t.prober.ProbeAll(ctx)
	eng, keys, sets, err := buildShardEngine(t.db, man, t.prober, t.client)
	if err != nil {
		t.noteReload(false)
		return err
	}
	t.install(man, keys, sets)
	c.eng.Store(eng)
	t.noteReload(true)
	return nil
}

// NodeHealthInfo is one node's entry in a Topology snapshot.
type NodeHealthInfo struct {
	// URL is the node's base URL; State its health-state-machine position
	// ("healthy", "degraded" or "dead").
	URL   string `json:"url"`
	State string `json:"state"`
	// ConsecutiveFailures counts the node's current probe-failure streak
	// (0 while healthy); Probes every probe ever sent to it.
	ConsecutiveFailures int   `json:"consecutive_failures"`
	Probes              int64 `json:"probes"`
	// The latency figures cover successful probes only: an exponentially
	// weighted moving average plus ring-buffer quantiles, in seconds.
	LatencyEWMASeconds float64 `json:"latency_ewma_seconds"`
	LatencyP50Seconds  float64 `json:"latency_p50_seconds"`
	LatencyP90Seconds  float64 `json:"latency_p90_seconds"`
	LatencyP99Seconds  float64 `json:"latency_p99_seconds"`
	// Shards lists the shard keys the node reported on its last
	// successful probe (a dead node keeps its last report, for operators
	// deciding what its loss cost).
	Shards []string `json:"shards"`
	// LastError is the failure that failed the latest probe ("" while
	// healthy).
	LastError string `json:"last_error,omitempty"`
}

// ShardRouteInfo is one shard's routing entry in a Topology snapshot.
type ShardRouteInfo struct {
	// Key is the shard's .swdb checksum key; Replicas the node URLs its
	// requests currently route across, in preference order (healthy
	// first). An empty Replicas means the shard is uncovered: requests
	// touching it fail with the retryable remote.ErrNoReplicas until a
	// node serving it recovers.
	Key      string   `json:"key"`
	Replicas []string `json:"replicas"`
}

// TopologyInfo is a distributed coordinator's live-topology snapshot: the
// /healthz "topology" document a load balancer rotates coordinators on.
type TopologyInfo struct {
	// Generation counts installed topologies (1 after construction,
	// incremented per successful ReloadManifest); Reloads and
	// ReloadFailures count reload outcomes.
	Generation     int `json:"generation"`
	Reloads        int `json:"reloads"`
	ReloadFailures int `json:"reload_failures"`
	// Nodes is the probed roster in construction order; Shards the
	// current manifest's shards in manifest order.
	Nodes  []NodeHealthInfo `json:"nodes"`
	Shards []ShardRouteInfo `json:"shards"`
}

// Uncovered reports whether any shard currently has no live replica.
func (t *TopologyInfo) Uncovered() bool {
	for _, sh := range t.Shards {
		if len(sh.Replicas) == 0 {
			return true
		}
	}
	return false
}

// Topology snapshots a distributed coordinator's live topology: per-node
// health (state machine, failure streaks, latency quantiles, reported
// shards) and per-shard replica routing. Returns nil for a local cluster.
func (c *Cluster) Topology() *TopologyInfo {
	t := c.topo
	if t == nil {
		return nil
	}
	health := t.prober.Health()
	out := &TopologyInfo{Nodes: make([]NodeHealthInfo, len(health))}
	for i, h := range health {
		out.Nodes[i] = NodeHealthInfo{
			URL:                 h.URL,
			State:               h.State.String(),
			ConsecutiveFailures: h.ConsecutiveFailures,
			Probes:              h.Probes,
			LatencyEWMASeconds:  h.LatencyEWMA.Seconds(),
			LatencyP50Seconds:   h.LatencyP50.Seconds(),
			LatencyP90Seconds:   h.LatencyP90.Seconds(),
			LatencyP99Seconds:   h.LatencyP99.Seconds(),
			Shards:              h.Shards,
			LastError:           h.LastError,
		}
	}
	t.mu.Lock()
	out.Generation = t.generation
	out.Reloads = t.reloads
	out.ReloadFailures = t.reloadFailures
	keys := t.keys
	sets := t.replicas
	t.mu.Unlock()
	out.Shards = make([]ShardRouteInfo, len(keys))
	for i, key := range keys {
		out.Shards[i] = ShardRouteInfo{Key: key, Replicas: sets[i].URLs()}
	}
	return out
}

// SplitIndexFile cuts a parent .swdb index into n shard .swdb files under
// dir and writes the manifest describing the cut (swindex split wraps
// exactly this). prefix names the shard files (prefix-00.swdb, ...); ""
// derives it from the parent filename. Returns the manifest path.
func SplitIndexFile(parentPath string, n int, dir, prefix string) (string, error) {
	if prefix == "" {
		base := filepath.Base(parentPath)
		prefix = base[:len(base)-len(filepath.Ext(base))]
	}
	man, err := remote.SplitIndex(parentPath, n, dir, prefix)
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, prefix+".manifest.json")
	if err := remote.WriteManifest(path, man); err != nil {
		return "", err
	}
	return path, nil
}
