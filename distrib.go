package heterosw

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"heterosw/internal/core"
	"heterosw/internal/device"
	"heterosw/internal/qsched"
	"heterosw/internal/remote"
	"heterosw/internal/seqdb"
)

// DeviceRemote is the roster label of a remote shard node in a
// distributed cluster's reports. It is not constructible through
// ClusterOptions.Devices — remote backends come from NewDistributedCluster.
const DeviceRemote = DeviceKind("remote")

// DistributedOptions configures a coordinator over remote shard nodes.
type DistributedOptions struct {
	// Options carries the kernel configuration used for the coordinator's
	// own reporting (significance fit parameters, TopK, matrix for the
	// local traceback fallback). The remote nodes execute shards under
	// their OWN configured options — the coordinator ships queries, not
	// search parameters — so operators must configure nodes and
	// coordinator identically for the merged result to be meaningful.
	Options

	// MaxInFlight, BatchWindow, MaxBatch and CacheSize tune the
	// coordinator's serving scheduler and result cache exactly as the
	// same-named ClusterOptions fields do.
	MaxInFlight int
	BatchWindow time.Duration
	MaxBatch    int
	CacheSize   int

	// Timeout bounds each node request attempt; Retries and Backoff shape
	// the retry policy over retryable (503/transport) failures; HedgeDelay
	// launches a duplicate request to the next replica of a slow shard.
	// See remote.Options for defaults.
	Timeout    time.Duration
	Retries    int
	Backoff    time.Duration
	HedgeDelay time.Duration
	// HTTPClient optionally supplies the underlying HTTP client.
	HTTPClient *http.Client
}

// NewDistributedCluster builds a coordinator: a Cluster whose backends
// are remote shard nodes instead of local device models. The manifest
// (written by swindex split) names the shard cut of the parent database;
// nodes are probed for which shard keys they serve, and each shard's
// owners become the replica set its requests route (and hedge) across.
//
// db must be the parent .swdb index the manifest was cut from — the
// checksum keys must agree — so the coordinator can reconstruct each
// shard's exact sequence membership locally (seqdb.Select over the
// manifest's parent-index lists). Scores merge into parent order, the
// hit list and the Gumbel significance fit run over the union score
// distribution, and every report is byte-identical to a single-node
// search of the unsplit database under the same options.
//
// Every scheduled entry point works unchanged: SearchScheduled and the
// HTTP front end coalesce, dedup and cache exactly as on a local
// cluster. Aligned reports fan tracebacks out to the nodes owning each
// hit's shard.
//
// ctx bounds the construction-time node probes: cancelling it aborts the
// topology discovery (a caller-side startup deadline), and it is not
// retained after NewDistributedCluster returns.
func NewDistributedCluster(ctx context.Context, db *Database, manifestPath string, nodes []string, opt DistributedOptions) (*Cluster, error) {
	if db == nil {
		return nil, fmt.Errorf("heterosw: nil database")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("heterosw: no nodes")
	}
	man, err := remote.ReadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	key := db.Key()
	if key == "" {
		return nil, fmt.Errorf("heterosw: the coordinator database needs a durable key (open the parent .swdb index, not FASTA)")
	}
	if key != man.Parent {
		return nil, fmt.Errorf("heterosw: database key %s does not match the manifest parent %s", key, man.Parent)
	}
	if a := db.Alphabet(); a != man.Alphabet {
		return nil, fmt.Errorf("heterosw: database alphabet %s does not match the manifest alphabet %s", a, man.Alphabet)
	}

	client := remote.NewClient(remote.Options{
		HTTP:       opt.HTTPClient,
		Timeout:    opt.Timeout,
		Retries:    opt.Retries,
		Backoff:    opt.Backoff,
		HedgeDelay: opt.HedgeDelay,
	})

	// Probe every node for the shard keys it serves. Individual probe
	// failures are tolerated — a node may be restarting, and replicas
	// exist exactly for this — but a shard nobody owns is fatal: the
	// merged result would silently miss its sequences.
	owners := make(map[string][]string)
	var probeErrs []error
	for _, node := range nodes {
		resp, err := client.Shards(ctx, node)
		if err != nil {
			probeErrs = append(probeErrs, fmt.Errorf("%s: %w", node, err))
			continue
		}
		for _, sh := range resp.Shards {
			owners[sh.Key] = append(owners[sh.Key], node)
		}
	}
	backends := make([]core.Backend, len(man.Shards))
	shardDBs := make([]*seqdb.Database, len(man.Shards))
	shardIdx := make([][]int, len(man.Shards))
	kinds := make([]DeviceKind, len(man.Shards))
	for i, sh := range man.Shards {
		urls := owners[sh.Key]
		if len(urls) == 0 {
			return nil, fmt.Errorf("heterosw: no node serves shard %d (%s)%s", i, sh.Key, probeSuffix(probeErrs))
		}
		sdb, err := db.db.Select(sh.ParentIndex, sh.Key)
		if err != nil {
			return nil, fmt.Errorf("heterosw: shard %d (%s): %w", i, sh.Key, err)
		}
		if sdb.Residues() != sh.Residues {
			return nil, fmt.Errorf("heterosw: shard %d (%s) selects %d residues, manifest declares %d",
				i, sh.Key, sdb.Residues(), sh.Residues)
		}
		// device.Xeon is a planning placeholder only: under a fixed shard
		// assignment the cut is the plan, so the model is never consulted.
		backends[i] = remote.NewBackend(fmt.Sprintf("remote#%d", i), client, urls, device.Xeon())
		shardDBs[i] = sdb
		shardIdx[i] = sh.ParentIndex
		kinds[i] = DeviceRemote
	}

	search, err := opt.Options.toCore(db.db.Alphabet())
	if err != nil {
		return nil, err
	}
	disp, err := core.NewDispatcherShards(db.db, backends, shardDBs, shardIdx)
	if err != nil {
		return nil, err
	}
	cacheSize := opt.CacheSize
	if cacheSize == 0 {
		cacheSize = defaultCacheSize(db.Len())
	}
	c := &Cluster{
		db:    db,
		disp:  disp,
		kinds: kinds,
		dopt: core.DispatchOptions{
			Search: search,
			Dist:   core.DistStatic,
		},
		schedOpt: qsched.Options{
			MaxBatch:    opt.MaxBatch,
			Window:      opt.BatchWindow,
			MaxInFlight: opt.MaxInFlight,
		},
		cache: qsched.NewCache[*ClusterResult](cacheSize),
	}
	c.keyBase = fmt.Sprintf("%v|%v|%d|%+v|", c.dopt.Dist, c.dopt.Shares, c.dopt.ChunkResidues, c.dopt.Search)
	return c, nil
}

// probeSuffix folds node probe failures into a shard-ownership error, so
// "no node serves shard X" explains itself when the real problem is that
// the nodes were unreachable.
func probeSuffix(probeErrs []error) string {
	if len(probeErrs) == 0 {
		return ""
	}
	return fmt.Sprintf("; %d node probe(s) failed: %v", len(probeErrs), errors.Join(probeErrs...))
}

// SplitIndexFile cuts a parent .swdb index into n shard .swdb files under
// dir and writes the manifest describing the cut (swindex split wraps
// exactly this). prefix names the shard files (prefix-00.swdb, ...); ""
// derives it from the parent filename. Returns the manifest path.
func SplitIndexFile(parentPath string, n int, dir, prefix string) (string, error) {
	if prefix == "" {
		base := filepath.Base(parentPath)
		prefix = base[:len(base)-len(filepath.Ext(base))]
	}
	man, err := remote.SplitIndex(parentPath, n, dir, prefix)
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, prefix+".manifest.json")
	if err := remote.WriteManifest(path, man); err != nil {
		return "", err
	}
	return path, nil
}
