package heterosw

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"heterosw/internal/remote"
	"heterosw/internal/remote/faultproxy"
)

// The live-topology soak harness: a coordinator over fault-proxied nodes
// is driven through node death, failover, recovery and readoption with
// the background prober disabled (ProbeInterval -1) and every sweep
// triggered explicitly — so each phase transition is a deterministic
// program step, not a timing race. The invariant under test is the
// conformance guarantee extended over failures: as long as at least one
// live replica serves every shard, every query answers byte-identically
// to a single-node search; when a shard loses its last replica, the
// failure is the typed, retryable remote.ErrNoReplicas, never a wrong or
// torn result.

// liveDistribOptions is fastDistribOptions with the background prober
// disabled and a 2-failure death threshold, so tests step the state
// machine by explicit ProbeNodes calls.
func liveDistribOptions() DistributedOptions {
	opt := fastDistribOptions()
	opt.ProbeInterval = -1
	opt.ProbeDeadAfter = 2
	return opt
}

// proxiedShardNode starts a shard node serving the given shard files and
// wraps it in a fault proxy; coordinators address the proxy URL.
func proxiedShardNode(t testing.TB, shardPaths []string) *faultproxy.Proxy {
	t.Helper()
	srv, _ := startShardNode(t, shardPaths, nil)
	px, err := faultproxy.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	return px
}

// refCanon computes the single-node reference canon bytes per query.
func refCanon(t testing.TB, parentPath string, queries []Sequence, rep ReportOptions) [][]byte {
	t.Helper()
	refDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCluster(refDB, distribOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.CloseNow()
	want := make([][]byte, len(queries))
	for i, q := range queries {
		res, err := ref.Search(q, rep)
		if err != nil {
			t.Fatalf("reference Search(%s): %v", q.ID(), err)
		}
		want[i] = canonDistrib(t, res)
	}
	return want
}

// nodeState reads one node's state string out of a topology snapshot.
func nodeState(t testing.TB, topo *TopologyInfo, url string) string {
	t.Helper()
	for _, n := range topo.Nodes {
		if n.URL == url {
			return n.State
		}
	}
	t.Fatalf("node %s not in topology %+v", url, topo)
	return ""
}

// TestCoordinatorLiveTopologySoak is the tentpole soak: kill a node mid
// sequence — zero failed queries, every result byte-identical via the
// replicas; probe it dead — its shards fail over; kill the last replica
// of a shard — typed retryable failure, /healthz degraded; restore —
// re-probe readopts everything and results are again byte-identical.
func TestCoordinatorLiveTopologySoak(t *testing.T) {
	parentPath, manifestPath, shardPaths, queries := distribSetup(t)
	rep := ReportOptions{Alignments: true, EValues: true, TopK: 5}
	want := refCanon(t, parentPath, queries, rep)

	pxA := proxiedShardNode(t, shardPaths) // both shards
	pxB := proxiedShardNode(t, shardPaths[:1])
	pxC := proxiedShardNode(t, shardPaths[1:])

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath,
		[]string{pxA.URL(), pxB.URL(), pxC.URL()}, liveDistribOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseNow()
	ctx := context.Background()

	checkAll := func(phase string) {
		t.Helper()
		for i, q := range queries {
			res, err := coord.Search(q, rep)
			if err != nil {
				t.Fatalf("%s: Search(%s): %v", phase, q.ID(), err)
			}
			if got := canonDistrib(t, res); !bytes.Equal(got, want[i]) {
				t.Fatalf("%s: query %s diverged from single-node:\nwant %s\ngot  %s", phase, q.ID(), want[i], got)
			}
		}
	}

	// Phase 1 — everything healthy.
	checkAll("healthy")
	topo := coord.Topology()
	if topo.Generation != 1 || len(topo.Shards) != 2 || len(topo.Nodes) != 3 {
		t.Fatalf("initial topology: %+v", topo)
	}
	for _, px := range []*faultproxy.Proxy{pxA, pxB, pxC} {
		if s := nodeState(t, topo, px.URL()); s != "healthy" {
			t.Fatalf("node %s state %s after construction probe, want healthy", px.URL(), s)
		}
	}
	// Replica order pins the conformance routing: A leads both shards.
	if r := topo.Shards[0].Replicas; len(r) != 2 || r[0] != pxA.URL() || r[1] != pxB.URL() {
		t.Fatalf("shard 0 replicas %v, want [A B]", r)
	}
	if r := topo.Shards[1].Replicas; len(r) != 2 || r[0] != pxA.URL() || r[1] != pxC.URL() {
		t.Fatalf("shard 1 replicas %v, want [A C]", r)
	}

	// Phase 2 — node A dies, not yet probed out: every request's first
	// attempt hits the corpse and the retry answers from the replica.
	// Zero failed queries, still byte-identical.
	pxA.SetDown(true)
	checkAll("A down, pre-probe")

	// Phase 3 — two sweeps (ProbeDeadAfter) mark A dead; its shards fail
	// over, so requests no longer touch it at all.
	if err := coord.ProbeNodes(ctx); err != nil {
		t.Fatal(err)
	}
	if err := coord.ProbeNodes(ctx); err != nil {
		t.Fatal(err)
	}
	topo = coord.Topology()
	if s := nodeState(t, topo, pxA.URL()); s != "dead" {
		t.Fatalf("A after %d failed sweeps: %s, want dead", 2, s)
	}
	if r := topo.Shards[0].Replicas; len(r) != 1 || r[0] != pxB.URL() {
		t.Fatalf("shard 0 failed over to %v, want [B]", r)
	}
	if r := topo.Shards[1].Replicas; len(r) != 1 || r[0] != pxC.URL() {
		t.Fatalf("shard 1 failed over to %v, want [C]", r)
	}
	checkAll("A dead, failed over")

	// Phase 4 — B dies too: shard 0 is uncovered. The failure is typed
	// and retryable, and /healthz reports degraded.
	pxB.SetDown(true)
	if err := coord.ProbeNodes(ctx); err != nil {
		t.Fatal(err)
	}
	if err := coord.ProbeNodes(ctx); err != nil {
		t.Fatal(err)
	}
	topo = coord.Topology()
	if !topo.Uncovered() {
		t.Fatalf("shard 0 with both owners dead must be uncovered: %+v", topo.Shards)
	}
	_, err = coord.Search(queries[0], rep)
	if !errors.Is(err, remote.ErrNoReplicas) {
		t.Fatalf("uncovered shard: err = %v, want remote.ErrNoReplicas", err)
	}
	if !remote.Retryable(err) {
		t.Fatalf("uncovered-shard failure must stay retryable: %v", err)
	}

	// Phase 5 — restore both; one clean sweep readopts them, the replica
	// sets refill in preference order, and conformance holds again.
	pxA.SetDown(false)
	pxB.SetDown(false)
	if err := coord.ProbeNodes(ctx); err != nil {
		t.Fatal(err)
	}
	topo = coord.Topology()
	for _, px := range []*faultproxy.Proxy{pxA, pxB, pxC} {
		if s := nodeState(t, topo, px.URL()); s != "healthy" {
			t.Fatalf("restored node %s state %s, want healthy", px.URL(), s)
		}
	}
	if r := topo.Shards[0].Replicas; len(r) != 2 || r[0] != pxA.URL() {
		t.Fatalf("readopted shard 0 replicas %v, want A leading", r)
	}
	checkAll("restored")
}

// TestCoordinatorScriptedFaultSchedule drives one query's two-shard
// fan-out through a scripted burst of every fault class — 503, truncated
// body, half-close, dropped connection, two of each so both shard
// streams see faults under any interleaving — and requires the final
// result byte-identical to single-node. The schedule is attempt-keyed:
// no sleeps, no randomness, identical under -race and -count=20.
func TestCoordinatorScriptedFaultSchedule(t *testing.T) {
	parentPath, manifestPath, shardPaths, queries := distribSetup(t)
	rep := ReportOptions{Alignments: true, EValues: true, TopK: 5}
	want := refCanon(t, parentPath, queries[:1], rep)

	px := proxiedShardNode(t, shardPaths) // one node, both shards
	px.Match(func(r *http.Request) bool { return r.URL.Path == "/shard/search" })
	px.Program(
		faultproxy.Step{Act: faultproxy.Unavailable},
		faultproxy.Step{Act: faultproxy.Unavailable},
		faultproxy.Step{Act: faultproxy.Truncate, Bytes: 8},
		faultproxy.Step{Act: faultproxy.Truncate, Bytes: 8},
		faultproxy.Step{Act: faultproxy.HalfClose},
		faultproxy.Step{Act: faultproxy.HalfClose},
		faultproxy.Step{Act: faultproxy.Drop},
		faultproxy.Step{Act: faultproxy.Drop},
	)

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	opt := liveDistribOptions()
	// 8 scripted faults across two shard streams: under the worst
	// interleaving one stream absorbs all 8 before its first success, so
	// the budget must cover that and the outcome stays deterministic.
	opt.Retries = 8
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{px.URL()}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseNow()

	res, err := coord.Search(queries[0], rep)
	if err != nil {
		t.Fatalf("search through the fault schedule: %v", err)
	}
	if got := canonDistrib(t, res); !bytes.Equal(got, want[0]) {
		t.Fatalf("faulted result diverged from single-node:\nwant %s\ngot  %s", want[0], got)
	}
	// Every scripted fault was consumed, then both streams passed: 10
	// matched attempts exactly, whatever the interleaving.
	counts := map[faultproxy.Action]int{}
	for _, a := range px.Log() {
		counts[a]++
	}
	wantCounts := map[faultproxy.Action]int{
		faultproxy.Unavailable: 2,
		faultproxy.Truncate:    2,
		faultproxy.HalfClose:   2,
		faultproxy.Drop:        2,
		faultproxy.Pass:        2,
	}
	for act, n := range wantCounts {
		if counts[act] != n {
			t.Fatalf("fault log %v: %d x %s, want %d", px.Log(), counts[act], act, n)
		}
	}
}

// TestCoordinatorTopologyRacesQueries runs a concurrent query load while
// a node is repeatedly killed, probed out, revived and readopted. Every
// query must succeed byte-identically — node A covers both shards
// throughout, so the churn on node C must never surface to a caller —
// and the -race build must stay silent over the topology swaps.
func TestCoordinatorTopologyRacesQueries(t *testing.T) {
	parentPath, manifestPath, shardPaths, queries := distribSetup(t)
	rep := ReportOptions{Alignments: true, EValues: true, TopK: 5}
	want := refCanon(t, parentPath, queries, rep)

	pxA := proxiedShardNode(t, shardPaths) // both shards, always up
	pxC := proxiedShardNode(t, shardPaths[1:])

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath,
		[]string{pxA.URL(), pxC.URL()}, liveDistribOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseNow()

	workers, perWorker, churns := 4, 6, 8
	if testing.Short() {
		workers, perWorker, churns = 2, 3, 3
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				qi := (w + i) % len(queries)
				res, err := coord.Search(queries[qi], rep)
				if err != nil {
					errc <- fmt.Errorf("worker %d query %d: %w", w, i, err)
					return
				}
				if got := canonDistrib(t, res); !bytes.Equal(got, want[qi]) {
					errc <- fmt.Errorf("worker %d query %d: result diverged under churn", w, i)
					return
				}
			}
		}(w)
	}
	ctx := context.Background()
	for i := 0; i < churns; i++ {
		pxC.SetDown(true)
		if err := coord.ProbeNodes(ctx); err != nil {
			t.Fatal(err)
		}
		if err := coord.ProbeNodes(ctx); err != nil {
			t.Fatal(err)
		}
		pxC.SetDown(false)
		if err := coord.ProbeNodes(ctx); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// After the final revival sweep the churned node must be readopted.
	if s := nodeState(t, coord.Topology(), pxC.URL()); s != "healthy" {
		t.Fatalf("churned node finished %s, want healthy", s)
	}
}

// TestCoordinatorConstructionProbeFailureText pins the construction
// diagnostics through the concurrent prober: an unreachable node folds
// its probe failure into the unowned-shard error, URL and all.
func TestCoordinatorConstructionProbeFailureText(t *testing.T) {
	parentPath, manifestPath, shardPaths, _ := distribSetup(t)
	pxB := proxiedShardNode(t, shardPaths[:1]) // shard 0 only
	pxDead := proxiedShardNode(t, shardPaths[1:])
	pxDead.SetDown(true) // shard 1's only owner is unreachable

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewDistributedCluster(context.Background(), parentDB, manifestPath,
		[]string{pxB.URL(), pxDead.URL()}, liveDistribOptions())
	if err == nil {
		t.Fatal("construction with shard 1 unowned must fail")
	}
	msg := err.Error()
	if !bytes.Contains([]byte(msg), []byte("no node serves shard")) {
		t.Fatalf("error should name the unowned shard, got: %v", err)
	}
	if !bytes.Contains([]byte(msg), []byte("node probe(s) failed")) ||
		!bytes.Contains([]byte(msg), []byte(pxDead.URL())) {
		t.Fatalf("error should fold in the failed probe with its URL, got: %v", err)
	}
}
