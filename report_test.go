package heterosw

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// The direct Search path with ReportOptions must produce decorations that
// agree with the standalone pairwise Align oracle.
func TestSearchReportMatchesAlignOracle(t *testing.T) {
	db, seqs := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLAARND")
	res, err := cl.Search(q, ReportOptions{Alignments: true, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 {
		t.Fatalf("%d hits, want 3", len(res.Hits))
	}
	for _, h := range res.Hits {
		if h.Alignment == nil {
			t.Fatalf("hit %s undecorated", h.ID)
		}
		want, err := Align(q, db.Seq(h.Index), AlignOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if h.Score != want.Score() || h.Alignment.CIGAR != want.CIGAR() ||
			h.Alignment.Identities != want.Identities() {
			t.Fatalf("hit %s: {score %d, %s, %d ids}, oracle {%d, %s, %d}",
				h.ID, h.Score, h.Alignment.CIGAR, h.Alignment.Identities,
				want.Score(), want.CIGAR(), want.Identities())
		}
		qs, qe, ss, se := want.Coordinates()
		a := h.Alignment
		if a.QueryStart != qs || a.QueryEnd != qe || a.SubjectStart != ss || a.SubjectEnd != se {
			t.Fatalf("hit %s coordinates [%d:%d)x[%d:%d), oracle [%d:%d)x[%d:%d)",
				h.ID, a.QueryStart, a.QueryEnd, a.SubjectStart, a.SubjectEnd, qs, qe, ss, se)
		}
	}
	// SearchBatch carries the same report options across the batch.
	batch, err := cl.SearchBatch([]Sequence{q, seqs[1]}, ReportOptions{Alignments: true, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range batch {
		if len(r.Hits) != 2 || r.Hits[0].Alignment == nil {
			t.Fatalf("batch result %d undecorated: %+v", i, r.Hits)
		}
	}
}

// A reporting search with no explicit K anywhere bounds the returned hit
// list at defaultReportHits and decorates every returned hit — never a
// partially decorated full-database list.
func TestReportUnboundedTopKIsBounded(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0001, false)  // 54 sequences > defaultReportHits
	cl, err := NewCluster(db, ClusterOptions{}) // cluster TopK 0
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLAARNDCCQEGHIL")
	for _, rep := range []ReportOptions{
		{Alignments: true},
		{EValues: true},
		{Alignments: true, EValues: true},
	} {
		res, err := cl.Search(q, rep)
		if err != nil {
			t.Fatalf("%+v: %v", rep, err)
		}
		if len(res.Hits) != defaultReportHits {
			t.Fatalf("%+v: %d hits, want %d", rep, len(res.Hits), defaultReportHits)
		}
		for _, h := range res.Hits {
			if rep.Alignments && h.Alignment == nil {
				t.Fatalf("%+v: hit %s missing alignment", rep, h.ID)
			}
			if rep.EValues && h.Significance == nil {
				t.Fatalf("%+v: hit %s missing significance", rep, h.ID)
			}
		}
		if len(res.Scores) != db.Len() {
			t.Fatalf("%+v: score list truncated to %d", rep, len(res.Scores))
		}
	}
	// A score-only search over the same cluster stays unbounded.
	plain, err := cl.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Hits) != db.Len() {
		t.Fatalf("score-only search returned %d hits, want %d", len(plain.Hits), db.Len())
	}
}

// E-values over a 4-sequence database cannot be fitted; the sentinel
// error must surface through every entry point.
func TestSearchReportNoSignificance(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLA")
	if _, err := cl.Search(q, ReportOptions{EValues: true}); !errors.Is(err, ErrNoSignificance) {
		t.Fatalf("Search: err = %v, want ErrNoSignificance", err)
	}
	if _, err := cl.SearchScheduled(context.Background(), q, ReportOptions{EValues: true}); !errors.Is(err, ErrNoSignificance) {
		t.Fatalf("SearchScheduled: err = %v, want ErrNoSignificance", err)
	}
}

func TestReportOptionsValidation(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLA")
	if _, err := cl.Search(q, ReportOptions{TopK: -1}); err == nil {
		t.Error("negative TopK accepted")
	}
	if _, err := cl.Search(q, ReportOptions{EValueTrim: 0.7}); err == nil {
		t.Error("EValueTrim 0.7 accepted")
	}
	if _, err := cl.Search(q, ReportOptions{}, ReportOptions{}); err == nil {
		t.Error("two ReportOptions accepted")
	}
	if err := cl.Submit(q, ReportOptions{TopK: -2}); err == nil {
		t.Error("stream Submit accepted negative TopK")
	}
}

// Score-only and aligned results of the same query must not alias in the
// serving scheduler's cache, in either direction.
func TestReportCacheKeysNeverAlias(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0001, false)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLAARNDCCQEGHIL")
	ctx := context.Background()
	plain, err := cl.SearchScheduled(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Significance != nil || plain.Hits[0].Alignment != nil {
		t.Fatal("score-only result is decorated")
	}
	rep := ReportOptions{Alignments: true, EValues: true, TopK: 4}
	aligned, err := cl.SearchScheduled(ctx, q, rep)
	if err != nil {
		t.Fatal(err)
	}
	if aligned.Significance == nil || len(aligned.Hits) != 4 || aligned.Hits[0].Alignment == nil {
		t.Fatalf("aligned result undecorated: %+v", aligned.Hits)
	}
	// Repeats hit the cache and keep their own shapes.
	plain2, err := cl.SearchScheduled(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if plain2.Hits[0].Alignment != nil || plain2.Significance != nil {
		t.Fatal("score-only repeat served the aligned result")
	}
	aligned2, err := cl.SearchScheduled(ctx, q, rep)
	if err != nil {
		t.Fatal(err)
	}
	if aligned2.Hits[0].Alignment == nil {
		t.Fatal("aligned repeat served the score-only result")
	}
	if hits, _, _ := cl.CacheStats(); hits < 2 {
		t.Fatalf("repeats were not cache hits (hits=%d)", hits)
	}
}

// WriteReport renders a plain score-only result as a bare table, and an
// aligned one with the alignment blocks.
func TestWriteReportShapes(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLA")
	plain, err := cl.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, q, db, plain, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "cigar") || strings.Contains(out, "e-value") || strings.Contains(out, "> ") {
		t.Fatalf("plain report carries report-phase columns:\n%s", out)
	}
	aligned, err := cl.Search(q, ReportOptions{Alignments: true, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteReport(&buf, q, db, aligned, 0); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "cigar") || !strings.Contains(out, "Query") || !strings.Contains(out, "Sbjct") {
		t.Fatalf("aligned report missing alignment blocks:\n%s", out)
	}
	if err := WriteReport(&buf, Sequence{}, db, aligned, 0); err == nil {
		t.Error("zero-value query accepted")
	}
	if err := WriteReport(&buf, q, nil, aligned, 0); err == nil {
		t.Error("nil database accepted")
	}
}
