package heterosw

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// The direct Search path with ReportOptions must produce decorations that
// agree with the standalone pairwise Align oracle.
func TestSearchReportMatchesAlignOracle(t *testing.T) {
	db, seqs := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLAARND")
	res, err := cl.Search(q, ReportOptions{Alignments: true, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 {
		t.Fatalf("%d hits, want 3", len(res.Hits))
	}
	for _, h := range res.Hits {
		if h.Alignment == nil {
			t.Fatalf("hit %s undecorated", h.ID)
		}
		want, err := Align(q, db.Seq(h.Index), AlignOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if h.Score != want.Score() || h.Alignment.CIGAR != want.CIGAR() ||
			h.Alignment.Identities != want.Identities() {
			t.Fatalf("hit %s: {score %d, %s, %d ids}, oracle {%d, %s, %d}",
				h.ID, h.Score, h.Alignment.CIGAR, h.Alignment.Identities,
				want.Score(), want.CIGAR(), want.Identities())
		}
		qs, qe, ss, se := want.Coordinates()
		a := h.Alignment
		if a.QueryStart != qs || a.QueryEnd != qe || a.SubjectStart != ss || a.SubjectEnd != se {
			t.Fatalf("hit %s coordinates [%d:%d)x[%d:%d), oracle [%d:%d)x[%d:%d)",
				h.ID, a.QueryStart, a.QueryEnd, a.SubjectStart, a.SubjectEnd, qs, qe, ss, se)
		}
	}
	// SearchBatch carries the same report options across the batch.
	batch, err := cl.SearchBatch([]Sequence{q, seqs[1]}, ReportOptions{Alignments: true, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range batch {
		if len(r.Hits) != 2 || r.Hits[0].Alignment == nil {
			t.Fatalf("batch result %d undecorated: %+v", i, r.Hits)
		}
	}
}

// A reporting search with no explicit K anywhere bounds the returned hit
// list at defaultReportHits and decorates every returned hit — never a
// partially decorated full-database list.
func TestReportUnboundedTopKIsBounded(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0001, false)  // 54 sequences > defaultReportHits
	cl, err := NewCluster(db, ClusterOptions{}) // cluster TopK 0
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLAARNDCCQEGHIL")
	for _, rep := range []ReportOptions{
		{Alignments: true},
		{EValues: true},
		{Alignments: true, EValues: true},
	} {
		res, err := cl.Search(q, rep)
		if err != nil {
			t.Fatalf("%+v: %v", rep, err)
		}
		if len(res.Hits) != defaultReportHits {
			t.Fatalf("%+v: %d hits, want %d", rep, len(res.Hits), defaultReportHits)
		}
		for _, h := range res.Hits {
			if rep.Alignments && h.Alignment == nil {
				t.Fatalf("%+v: hit %s missing alignment", rep, h.ID)
			}
			if rep.EValues && h.Significance == nil {
				t.Fatalf("%+v: hit %s missing significance", rep, h.ID)
			}
		}
		if len(res.Scores) != db.Len() {
			t.Fatalf("%+v: score list truncated to %d", rep, len(res.Scores))
		}
	}
	// A score-only search over the same cluster stays unbounded.
	plain, err := cl.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Hits) != db.Len() {
		t.Fatalf("score-only search returned %d hits, want %d", len(plain.Hits), db.Len())
	}
}

// E-values over a 4-sequence database cannot be fitted; the sentinel
// error must surface through every entry point.
func TestSearchReportNoSignificance(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLA")
	if _, err := cl.Search(q, ReportOptions{EValues: true}); !errors.Is(err, ErrNoSignificance) {
		t.Fatalf("Search: err = %v, want ErrNoSignificance", err)
	}
	if _, err := cl.SearchScheduled(context.Background(), q, ReportOptions{EValues: true}); !errors.Is(err, ErrNoSignificance) {
		t.Fatalf("SearchScheduled: err = %v, want ErrNoSignificance", err)
	}
}

func TestReportOptionsValidation(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLA")
	if _, err := cl.Search(q, ReportOptions{TopK: -1}); err == nil {
		t.Error("negative TopK accepted")
	}
	if _, err := cl.Search(q, ReportOptions{EValueTrim: 0.7}); err == nil {
		t.Error("EValueTrim 0.7 accepted")
	}
	if _, err := cl.Search(q, ReportOptions{}, ReportOptions{}); err == nil {
		t.Error("two ReportOptions accepted")
	}
	if err := cl.Submit(q, ReportOptions{TopK: -2}); err == nil {
		t.Error("stream Submit accepted negative TopK")
	}
}

// Score-only and aligned results of the same query must not alias in the
// serving scheduler's cache, in either direction.
func TestReportCacheKeysNeverAlias(t *testing.T) {
	db, _ := SyntheticSwissProt(0.0001, false)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLAARNDCCQEGHIL")
	ctx := context.Background()
	plain, err := cl.SearchScheduled(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Significance != nil || plain.Hits[0].Alignment != nil {
		t.Fatal("score-only result is decorated")
	}
	rep := ReportOptions{Alignments: true, EValues: true, TopK: 4}
	aligned, err := cl.SearchScheduled(ctx, q, rep)
	if err != nil {
		t.Fatal(err)
	}
	if aligned.Significance == nil || len(aligned.Hits) != 4 || aligned.Hits[0].Alignment == nil {
		t.Fatalf("aligned result undecorated: %+v", aligned.Hits)
	}
	// Repeats hit the cache and keep their own shapes.
	plain2, err := cl.SearchScheduled(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if plain2.Hits[0].Alignment != nil || plain2.Significance != nil {
		t.Fatal("score-only repeat served the aligned result")
	}
	aligned2, err := cl.SearchScheduled(ctx, q, rep)
	if err != nil {
		t.Fatal(err)
	}
	if aligned2.Hits[0].Alignment == nil {
		t.Fatal("aligned repeat served the score-only result")
	}
	if hits, _, _ := cl.CacheStats(); hits < 2 {
		t.Fatalf("repeats were not cache hits (hits=%d)", hits)
	}
}

// WriteReport renders a plain score-only result as a bare table, and an
// aligned one with the alignment blocks.
func TestWriteReportShapes(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLA")
	plain, err := cl.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, q, db, plain, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "cigar") || strings.Contains(out, "e-value") || strings.Contains(out, "> ") {
		t.Fatalf("plain report carries report-phase columns:\n%s", out)
	}
	aligned, err := cl.Search(q, ReportOptions{Alignments: true, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteReport(&buf, q, db, aligned, 0); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "cigar") || !strings.Contains(out, "Query") || !strings.Contains(out, "Sbjct") {
		t.Fatalf("aligned report missing alignment blocks:\n%s", out)
	}
	if err := WriteReport(&buf, Sequence{}, db, aligned, 0); err == nil {
		t.Error("zero-value query accepted")
	}
	if err := WriteReport(&buf, q, nil, aligned, 0); err == nil {
		t.Error("nil database accepted")
	}
}

// A wrapped alignment row consumed entirely by a gap run used to print an
// inverted n..n-1 coordinate range; it must label both ends with the last
// consumed residue, BLAST-style, on whichever side the gap falls.
func TestReportWrappedGapRowCoordinates(t *testing.T) {
	gap60 := strings.Repeat("-", 60)

	// 120 deletion columns: the second wrapped row consumes no query.
	query := NewSequence("q", "WW")
	subject := NewSequence("s", "W"+strings.Repeat("A", 120)+"W")
	db, err := NewDatabase([]Sequence{subject})
	if err != nil {
		t.Fatal(err)
	}
	res := &ClusterResult{}
	res.Hits = []Hit{{
		Index: 0, ID: "s", Score: 10,
		Alignment: &HitAlignment{
			QueryStart: 0, QueryEnd: 2, SubjectStart: 0, SubjectEnd: 122,
			CIGAR: "1M120D1M", Identities: 2, Columns: 122,
		},
	}}
	var buf bytes.Buffer
	if err := WriteReport(&buf, query, db, res, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if want := "  Query      1 " + gap60 + " 1\n"; !strings.Contains(out, want) {
		t.Fatalf("query-less row not labelled with last-consumed coordinates; want %q in:\n%s", want, out)
	}
	if bad := "  Query      2 " + gap60 + " 1\n"; strings.Contains(out, bad) {
		t.Fatalf("inverted 2..1 query range still printed:\n%s", out)
	}
	// The rows around the gap keep their consumed-range labels.
	if want := "  Query      2 -W 2\n"; !strings.Contains(out, want) {
		t.Fatalf("final row mislabelled; want %q in:\n%s", want, out)
	}

	// The symmetric case: 120 insertion columns, a subject-less row.
	query2 := NewSequence("q", "W"+strings.Repeat("A", 120)+"W")
	subject2 := NewSequence("s", "WW")
	db2, err := NewDatabase([]Sequence{subject2})
	if err != nil {
		t.Fatal(err)
	}
	res2 := &ClusterResult{}
	res2.Hits = []Hit{{
		Index: 0, ID: "s", Score: 10,
		Alignment: &HitAlignment{
			QueryStart: 0, QueryEnd: 122, SubjectStart: 0, SubjectEnd: 2,
			CIGAR: "1M120I1M", Identities: 2, Columns: 122,
		},
	}}
	buf.Reset()
	if err := WriteReport(&buf, query2, db2, res2, 60); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if want := "  Sbjct      1 " + gap60 + " 1\n"; !strings.Contains(out, want) {
		t.Fatalf("subject-less row not labelled with last-consumed coordinates:\n%s", out)
	}
	if bad := "  Sbjct      2 " + gap60 + " 1\n"; strings.Contains(out, bad) {
		t.Fatalf("inverted 2..1 subject range still printed:\n%s", out)
	}
}

// A per-call ReportOptions.TopK larger than the cluster-wide Options.TopK
// must expand the hit selection from the retained score list (the score
// pass had already truncated Hits), not silently under-deliver; a smaller
// per-call K still truncates.
func TestReportTopKOverridesClusterTopK(t *testing.T) {
	db, _ := tinyDB(t)
	truncated, err := NewCluster(db, ClusterOptions{Options: Options{TopK: 2}})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLA")
	want, err := full.Search(q)
	if err != nil {
		t.Fatal(err)
	}

	// Expansion: call K of 4 against a cluster that keeps only 2.
	res, err := truncated.Search(q, ReportOptions{Alignments: true, TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 4 {
		t.Fatalf("expanded hit list has %d hits, want 4", len(res.Hits))
	}
	for i, h := range res.Hits {
		if h.Index != want.Hits[i].Index || h.Score != want.Hits[i].Score {
			t.Fatalf("expanded hit %d = {%d, %d}, want {%d, %d}",
				i, h.Index, h.Score, want.Hits[i].Index, want.Hits[i].Score)
		}
		if h.Alignment == nil {
			t.Fatalf("expanded hit %d undecorated", i)
		}
	}

	// Expansion without alignments behaves identically.
	res, err = truncated.Search(q, ReportOptions{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 {
		t.Fatalf("plain expansion returned %d hits, want 3", len(res.Hits))
	}

	// Truncation: a smaller per-call K still wins.
	res, err = truncated.Search(q, ReportOptions{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Index != want.Hits[0].Index {
		t.Fatalf("truncation returned %+v, want the single best hit", res.Hits)
	}

	// A K beyond the database is satisfied with every sequence.
	res, err = truncated.Search(q, ReportOptions{TopK: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != db.Len() {
		t.Fatalf("over-database K returned %d hits, want %d", len(res.Hits), db.Len())
	}
}

// Library-side tracebacks are capped at MaxAlignHits on every entry point:
// a huge per-call TopK — or a huge cluster-wide Options.TopK — with
// Alignments fails fast instead of re-aligning an arbitrary slice of the
// database.
func TestAlignmentCapEnforced(t *testing.T) {
	seqs := make([]Sequence, 100)
	for i := range seqs {
		seqs[i] = NewSequence(fmt.Sprintf("s%d", i), "MKWVLAARNDCCQEGHIL")
	}
	db, err := NewDatabase(seqs)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLA")

	if _, err := cl.Search(q, ReportOptions{Alignments: true, TopK: 500000}); !errors.Is(err, ErrTooManyAlignments) {
		t.Fatalf("Search accepted a 500000-traceback report: %v", err)
	}
	if _, err := cl.SearchBatch([]Sequence{q}, ReportOptions{Alignments: true, TopK: MaxAlignHits + 1}); !errors.Is(err, ErrTooManyAlignments) {
		t.Fatalf("SearchBatch accepted TopK %d: %v", MaxAlignHits+1, err)
	}
	if _, err := cl.SearchScheduled(context.Background(), q, ReportOptions{Alignments: true, TopK: MaxAlignHits + 1}); !errors.Is(err, ErrTooManyAlignments) {
		t.Fatalf("SearchScheduled accepted TopK %d: %v", MaxAlignHits+1, err)
	}

	// At the cap exactly, the search runs and decorates every hit.
	res, err := cl.Search(q, ReportOptions{Alignments: true, TopK: MaxAlignHits})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != MaxAlignHits || res.Hits[MaxAlignHits-1].Alignment == nil {
		t.Fatalf("cap-sized report: %d hits, last decorated=%v", len(res.Hits), res.Hits[len(res.Hits)-1].Alignment != nil)
	}

	// A cluster-wide TopK above the cap is just as rejected when the call
	// requests alignments without its own K.
	big, err := NewCluster(db, ClusterOptions{Options: Options{TopK: MaxAlignHits + 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.Search(q, ReportOptions{Alignments: true}); !errors.Is(err, ErrTooManyAlignments) {
		t.Fatalf("cluster-wide TopK above the cap accepted: %v", err)
	}
	// Score-only reporting is unaffected by the cap.
	if _, err := big.Search(q, ReportOptions{TopK: 90}); err != nil {
		t.Fatalf("score-only report rejected: %v", err)
	}
}
