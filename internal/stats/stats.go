// Package stats estimates the statistical significance of Smith-Waterman
// database-search scores. Local-alignment scores of unrelated random
// sequences follow an extreme-value (Gumbel) distribution
// (Karlin & Altschul); instead of shipping precomputed parameters for a
// single matrix, the model is fitted empirically to the score list of the
// search itself — the bulk of a database is effectively random with
// respect to any one query, so the sample is dominated by the null
// distribution and true homologs appear as extreme outliers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// EValueModel is a fitted Gumbel null model for one search's score list.
type EValueModel struct {
	// Lambda and Mu are the Gumbel parameters of the per-subject null
	// score distribution.
	Lambda, Mu float64
	// N is the number of database sequences the model was fitted over
	// (the trials count converting P-values to E-values).
	N int
	// Trimmed is the number of top scores excluded from the fit as
	// suspected true positives.
	Trimmed int
}

// eulerGamma is the Euler–Mascheroni constant appearing in the Gumbel
// mean.
const eulerGamma = 0.5772156649015329

// fitPlan resolves the trim rule for an n-score sample: the effective
// trim fraction (0 selects the 1% default), the number of top scores to
// exclude, and whether enough usable scores (>= 30) remain. It is the
// single source of the trimming arithmetic, shared by the viability
// pre-check and the fit itself.
func fitPlan(n int, trimFrac float64) (trim int, err error) {
	if trimFrac <= 0 {
		trimFrac = 0.01
	}
	if trimFrac >= 0.5 {
		return 0, fmt.Errorf("stats: trim fraction %v too large", trimFrac)
	}
	trim = int(float64(n) * trimFrac)
	if trim < 1 {
		trim = 1
	}
	if n-trim < 30 {
		return 0, fmt.Errorf("stats: only %d scores after trimming; need >= 30", n-trim)
	}
	return trim, nil
}

// FitViable reports whether a score list of n entries can support a fit
// at the given trim fraction: at least 30 usable scores must remain after
// trimming. It lets callers reject an unsatisfiable fit before computing
// any scores. (A distribution can still be too degenerate — zero variance
// — which only the fit itself can detect.)
func FitViable(n int, trimFrac float64) error {
	_, err := fitPlan(n, trimFrac)
	return err
}

// FitEValues fits a Gumbel null model to a search's score list by the
// method of moments, after trimming the top trimFrac fraction of scores
// (suspected homologs; 0 selects the 1% default). At least 30 usable
// scores are required (see FitViable).
func FitEValues(scores []int, trimFrac float64) (*EValueModel, error) {
	n := len(scores)
	trim, err := fitPlan(n, trimFrac)
	if err != nil {
		return nil, err
	}
	sorted := append([]int(nil), scores...)
	sort.Ints(sorted)
	sample := sorted[:n-trim]

	var sum, sumSq float64
	for _, s := range sample {
		v := float64(s)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(len(sample))
	variance := sumSq/float64(len(sample)) - mean*mean
	if variance <= 0 {
		return nil, fmt.Errorf("stats: degenerate score distribution (variance %v)", variance)
	}
	// Gumbel: var = pi^2 / (6 lambda^2); mean = mu + gamma / lambda.
	lambda := math.Pi / math.Sqrt(6*variance)
	mu := mean - eulerGamma/lambda
	return &EValueModel{Lambda: lambda, Mu: mu, N: n, Trimmed: trim}, nil
}

// PValue returns the probability that a single unrelated subject scores
// >= s under the null model.
func (m *EValueModel) PValue(s int) float64 {
	z := m.Lambda * (float64(s) - m.Mu)
	// P(S >= s) = 1 - exp(-exp(-z)); use expm1 for precision at large z.
	return -math.Expm1(-math.Exp(-z))
}

// EValue returns the expected number of database subjects scoring >= s by
// chance: N * PValue(s).
func (m *EValueModel) EValue(s int) float64 {
	return float64(m.N) * m.PValue(s)
}

// BitScore converts a raw score to bits under the fitted model, the
// scale-free score used by BLAST-style reports: higher means less likely
// by chance (score mu maps to 0 bits).
func (m *EValueModel) BitScore(s int) float64 {
	return m.Lambda * (float64(s) - m.Mu) / math.Ln2
}

// String summarises the fitted parameters.
func (m *EValueModel) String() string {
	return fmt.Sprintf("gumbel(lambda=%.4f, mu=%.2f) over %d subjects (%d trimmed)",
		m.Lambda, m.Mu, m.N, m.Trimmed)
}
