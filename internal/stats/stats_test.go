package stats

import (
	"math"
	"math/rand"
	"testing"
)

// gumbelSample draws from Gumbel(mu, lambda).
func gumbelSample(rng *rand.Rand, mu, lambda float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return mu - math.Log(-math.Log(u))/lambda
}

func TestFitRecoversKnownParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	const mu, lambda = 40.0, 0.25
	scores := make([]int, 20000)
	for i := range scores {
		scores[i] = int(math.Round(gumbelSample(rng, mu, lambda)))
	}
	m, err := FitEValues(scores, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mu-mu) > 1.5 {
		t.Errorf("mu = %.2f, want ~%.1f", m.Mu, mu)
	}
	if math.Abs(m.Lambda-lambda) > 0.03 {
		t.Errorf("lambda = %.4f, want ~%.2f", m.Lambda, lambda)
	}
}

func TestEValueMonotoneDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	scores := make([]int, 5000)
	for i := range scores {
		scores[i] = int(gumbelSample(rng, 35, 0.3))
	}
	m, err := FitEValues(scores, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for s := 20; s < 200; s += 5 {
		e := m.EValue(s)
		if e > prev {
			t.Fatalf("EValue not decreasing at %d: %v > %v", s, e, prev)
		}
		if e < 0 {
			t.Fatalf("negative EValue %v", e)
		}
		prev = e
	}
}

func TestEValueCalibration(t *testing.T) {
	// ~half the sample should sit above the fitted median: E(median) ~ N/2.
	rng := rand.New(rand.NewSource(502))
	n := 10000
	scores := make([]int, n)
	for i := range scores {
		scores[i] = int(gumbelSample(rng, 50, 0.2))
	}
	m, err := FitEValues(scores, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Median of Gumbel = mu - ln(ln 2)/lambda.
	median := int(m.Mu - math.Log(math.Log(2))/m.Lambda)
	e := m.EValue(median)
	if e < float64(n)/4 || e > float64(n)*3/4 {
		t.Errorf("EValue(median) = %.0f, want ~%d", e, n/2)
	}
	// A far outlier must be overwhelmingly significant.
	if e := m.EValue(int(m.Mu + 100/m.Lambda)); e > 1e-6 {
		t.Errorf("outlier EValue = %v", e)
	}
}

func TestBitScore(t *testing.T) {
	m := &EValueModel{Lambda: 0.25, Mu: 40, N: 1000}
	if got := m.BitScore(40); math.Abs(got) > 1e-9 {
		t.Errorf("BitScore(mu) = %v", got)
	}
	if m.BitScore(80) <= m.BitScore(60) {
		t.Error("BitScore not increasing")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitEValues(make([]int, 10), 0.01); err == nil {
		t.Error("tiny sample accepted")
	}
	same := make([]int, 1000)
	for i := range same {
		same[i] = 42
	}
	if _, err := FitEValues(same, 0.01); err == nil {
		t.Error("degenerate distribution accepted")
	}
	if _, err := FitEValues(make([]int, 1000), 0.9); err == nil {
		t.Error("absurd trim accepted")
	}
}

func TestStringer(t *testing.T) {
	m := &EValueModel{Lambda: 0.25, Mu: 40, N: 1000, Trimmed: 10}
	if m.String() == "" {
		t.Error("empty String()")
	}
}
