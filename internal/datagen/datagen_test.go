package datagen

import (
	"math"
	"testing"

	"heterosw/internal/alphabet"
	"heterosw/internal/sequence"
)

func TestLengthsDeterministic(t *testing.T) {
	cfg := SwissProtConfig(0.01)
	a := Lengths(cfg)
	b := Lengths(cfg)
	if len(a) != len(b) {
		t.Fatal("length count differs between runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lengths differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestLengthsStatistics(t *testing.T) {
	cfg := SwissProtConfig(0.05) // ~27k sequences
	ls := Lengths(cfg)
	var sum, maxLen int
	for _, l := range ls {
		if l < 2 || l > SwissProtMaxLen {
			t.Fatalf("length %d out of range", l)
		}
		sum += l
		if l > maxLen {
			maxLen = l
		}
	}
	mean := float64(sum) / float64(len(ls))
	want := float64(SwissProtResidues) / float64(SwissProtSequences) // ~355
	if math.Abs(mean-want) > want*0.1 {
		t.Fatalf("mean length %.1f, want ~%.1f", mean, want)
	}
	if maxLen != SwissProtMaxLen {
		t.Fatalf("max length %d, want planted %d", maxLen, SwissProtMaxLen)
	}
}

func TestSwissProtConfigScale(t *testing.T) {
	full := SwissProtConfig(1)
	if full.Sequences != SwissProtSequences {
		t.Fatalf("full scale = %d sequences", full.Sequences)
	}
	tiny := SwissProtConfig(0)
	if tiny.Sequences < 1 {
		t.Fatal("zero scale produced empty config")
	}
}

func TestGenerateMatchesLengths(t *testing.T) {
	cfg := SwissProtConfig(0.001)
	seqs := Generate(cfg)
	ls := Lengths(cfg)
	if len(seqs) != len(ls) {
		t.Fatalf("Generate %d != Lengths %d", len(seqs), len(ls))
	}
	for i := range seqs {
		if seqs[i].Len() != ls[i] {
			t.Fatalf("seq %d length %d, want %d", i, seqs[i].Len(), ls[i])
		}
	}
}

func TestGenerateResidueDistribution(t *testing.T) {
	cfg := SwissProtConfig(0.002)
	seqs := Generate(cfg)
	counts := make(map[alphabet.Code]int)
	total := 0
	for _, s := range seqs {
		for _, c := range s.Residues {
			counts[c]++
			total++
		}
	}
	// Only standard residues, with Leucine the most common (~9.7%).
	for c := range counts {
		if !alphabet.IsStandard(c) {
			t.Fatalf("non-standard residue %c generated", alphabet.Decode(c))
		}
	}
	leu, _ := alphabet.Encode('L')
	trp, _ := alphabet.Encode('W')
	fLeu := float64(counts[leu]) / float64(total)
	fTrp := float64(counts[trp]) / float64(total)
	if fLeu < 0.08 || fLeu > 0.12 {
		t.Fatalf("Leu frequency %.4f, want ~0.097", fLeu)
	}
	if fTrp < 0.005 || fTrp > 0.02 {
		t.Fatalf("Trp frequency %.4f, want ~0.011", fTrp)
	}
}

func TestPaperQueries(t *testing.T) {
	specs := PaperQueries()
	if len(specs) != 20 {
		t.Fatalf("%d queries, want 20", len(specs))
	}
	if specs[0].Length != 144 || specs[19].Length != 5478 {
		t.Fatalf("length range %d..%d, want 144..5478 (paper Section V.B)",
			specs[0].Length, specs[19].Length)
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].Length <= specs[i-1].Length {
			t.Fatal("queries not in ascending length order")
		}
	}
}

func TestGenerateQueries(t *testing.T) {
	qs := GenerateQueries(7)
	specs := PaperQueries()
	for i, q := range qs {
		if q.Len() != specs[i].Length {
			t.Fatalf("query %s length %d, want %d", q.ID, q.Len(), specs[i].Length)
		}
		if q.ID != specs[i].Accession {
			t.Fatalf("query %d ID %s", i, q.ID)
		}
	}
	again := GenerateQueries(7)
	if qs[3].String() != again[3].String() {
		t.Fatal("queries not deterministic")
	}
	other := GenerateQueries(8)
	if qs[3].String() == other[3].String() {
		t.Fatal("different seeds gave identical queries")
	}
}

func TestPlantQueries(t *testing.T) {
	cfg := SwissProtConfig(0.001)
	db := Generate(cfg)
	qs := GenerateQueries(7)
	PlantQueries(db, qs)
	found := 0
	for _, s := range db {
		for _, q := range qs {
			if s == q {
				found++
			}
		}
	}
	if found != len(qs) {
		t.Fatalf("%d queries planted, want %d", found, len(qs))
	}
	// Planting into an empty database must not panic.
	PlantQueries(nil, qs)
	PlantQueries([]*sequence.Sequence{}, qs)
}
