// Package datagen generates the synthetic protein workload that stands in
// for the Swiss-Prot release 2013_11 database used by the paper (541,561
// sequences, 192,480,382 amino acids, longest sequence 35,213 residues).
// Real Swiss-Prot is not redistributable inside this repository, so the
// generator reproduces the statistics that GCUPS measurements are sensitive
// to: the sequence count, the mean length and heavy-tailed length
// distribution, and the Swiss-Prot amino-acid background frequencies. A
// real FASTA dump can be substituted at any time via sequence.ReadFASTAFile.
//
// Everything is deterministic in the seed, so experiments are reproducible
// bit-for-bit.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"heterosw/internal/alphabet"
	"heterosw/internal/sequence"
)

// Swiss-Prot 2013_11 headline statistics (from the paper's Section V.B).
const (
	SwissProtSequences = 541561
	SwissProtResidues  = 192480382
	SwissProtMaxLen    = 35213
)

// swissProtFreq holds amino-acid background frequencies (percent) from the
// Swiss-Prot release notes, indexed by residue letter.
var swissProtFreq = map[byte]float64{
	'A': 8.26, 'R': 5.53, 'N': 4.06, 'D': 5.46, 'C': 1.37,
	'Q': 3.93, 'E': 6.74, 'G': 7.08, 'H': 2.27, 'I': 5.94,
	'L': 9.66, 'K': 5.83, 'M': 2.41, 'F': 3.86, 'P': 4.71,
	'S': 6.56, 'T': 5.34, 'W': 1.09, 'Y': 2.92, 'V': 6.87,
}

// Config parameterises the generator.
type Config struct {
	// Sequences is the number of database sequences.
	Sequences int
	// Seed makes the output deterministic.
	Seed int64
	// MeanLen and SigmaLog shape the log-normal length distribution.
	// The defaults reproduce Swiss-Prot's mean length of ~355.
	MeanLen  float64
	SigmaLog float64
	// MaxLen truncates the length tail.
	MaxLen int
}

// SwissProtConfig returns a Config reproducing Swiss-Prot 2013_11 scaled by
// the given factor (1.0 = full size; 1/32 is a practical functional-run
// size). The length distribution is scale-invariant.
func SwissProtConfig(scale float64) Config {
	n := int(math.Round(float64(SwissProtSequences) * scale))
	if n < 1 {
		n = 1
	}
	return Config{
		Sequences: n,
		Seed:      20131122, // release 2013_11's vintage, for flavour
		MeanLen:   float64(SwissProtResidues) / float64(SwissProtSequences),
		SigmaLog:  0.62,
		MaxLen:    SwissProtMaxLen,
	}
}

func (c Config) withDefaults() Config {
	if c.MeanLen <= 0 {
		c.MeanLen = 355
	}
	if c.SigmaLog <= 0 {
		c.SigmaLog = 0.62
	}
	if c.MaxLen <= 0 {
		c.MaxLen = SwissProtMaxLen
	}
	return c
}

// sampleLen draws one sequence length from the truncated log-normal.
func sampleLen(rng *rand.Rand, mu, sigma float64, maxLen int) int {
	l := int(math.Round(math.Exp(mu + sigma*rng.NormFloat64())))
	if l < 2 {
		l = 2
	}
	if l > maxLen {
		l = maxLen
	}
	return l
}

// Lengths generates only the sequence-length distribution of a database —
// all the device cost model needs — without materialising residues. This
// is what lets the figure harness simulate the full 541,561-sequence
// Swiss-Prot in milliseconds.
func Lengths(cfg Config) []int {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Log-normal mean is exp(mu + sigma^2/2); solve mu for the target.
	mu := math.Log(cfg.MeanLen) - cfg.SigmaLog*cfg.SigmaLog/2
	out := make([]int, cfg.Sequences)
	for i := range out {
		out[i] = sampleLen(rng, mu, cfg.SigmaLog, cfg.MaxLen)
	}
	// Plant one maximum-length sequence, mirroring Swiss-Prot's titin
	// entry, so padding and blocking see the documented extreme.
	if len(out) >= 1000 {
		out[len(out)/2] = cfg.MaxLen
	}
	return out
}

// residueSampler draws residues from the Swiss-Prot background
// distribution via a 4096-entry lookup table.
type residueSampler struct {
	table [4096]alphabet.Code
}

func newResidueSampler() *residueSampler {
	s := &residueSampler{}
	type fr struct {
		c alphabet.Code
		f float64
	}
	var frs []fr
	var total float64
	for b, f := range swissProtFreq {
		c, ok := alphabet.Encode(b)
		if !ok {
			panic("datagen: bad frequency table")
		}
		frs = append(frs, fr{c, f})
		total += f
	}
	// Deterministic order (map iteration is random).
	for i := 0; i < len(frs); i++ {
		for j := i + 1; j < len(frs); j++ {
			if frs[j].c < frs[i].c {
				frs[i], frs[j] = frs[j], frs[i]
			}
		}
	}
	idx := 0
	acc := 0.0
	for _, e := range frs {
		acc += e.f
		target := int(math.Round(acc / total * float64(len(s.table))))
		for ; idx < target && idx < len(s.table); idx++ {
			s.table[idx] = e.c
		}
	}
	for ; idx < len(s.table); idx++ {
		s.table[idx] = frs[len(frs)-1].c
	}
	return s
}

func (s *residueSampler) draw(rng *rand.Rand) alphabet.Code {
	return s.table[rng.Intn(len(s.table))]
}

// Generate materialises a full synthetic database: Lengths(cfg) plus
// residues drawn from the Swiss-Prot background distribution.
func Generate(cfg Config) []*sequence.Sequence {
	lengths := Lengths(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	sampler := newResidueSampler()
	out := make([]*sequence.Sequence, len(lengths))
	for i, L := range lengths {
		res := make([]alphabet.Code, L)
		for j := range res {
			res[j] = sampler.draw(rng)
		}
		out[i] = &sequence.Sequence{
			ID:       fmt.Sprintf("SYN%06d", i),
			Desc:     "synthetic Swiss-Prot-like protein",
			Residues: res,
		}
	}
	return out
}

// QuerySpec names one of the paper's 20 benchmark queries.
type QuerySpec struct {
	// Accession is the Swiss-Prot accession the paper lists.
	Accession string
	// Length is the published sequence length.
	Length int
}

// PaperQueries returns the paper's 20 query proteins (Section V.B),
// "ranging in length from 144 to 5478", in ascending length order.
func PaperQueries() []QuerySpec {
	return []QuerySpec{
		{"P02232", 144}, {"P05013", 189}, {"P14942", 222}, {"P07327", 375},
		{"P01008", 464}, {"P03435", 567}, {"P42357", 657}, {"P21177", 729},
		{"Q38941", 850}, {"P27895", 1000}, {"P07756", 1500}, {"P04775", 2005},
		{"P19096", 2504}, {"P28167", 3005}, {"P0C6B8", 3564}, {"P20930", 4061},
		{"P08519", 4548}, {"Q7TMA5", 4743}, {"P33450", 5147}, {"Q9UKN1", 5478},
	}
}

// GenerateQueries synthesises the 20 benchmark queries with the paper's
// exact lengths, deterministically in the seed.
func GenerateQueries(seed int64) []*sequence.Sequence {
	rng := rand.New(rand.NewSource(seed))
	sampler := newResidueSampler()
	specs := PaperQueries()
	out := make([]*sequence.Sequence, len(specs))
	for i, spec := range specs {
		res := make([]alphabet.Code, spec.Length)
		for j := range res {
			res[j] = sampler.draw(rng)
		}
		out[i] = &sequence.Sequence{
			ID:       spec.Accession,
			Desc:     fmt.Sprintf("synthetic stand-in for %s (%d aa)", spec.Accession, spec.Length),
			Residues: res,
		}
	}
	return out
}

// PlantQueries inserts the queries into the database at deterministic
// positions (replacing same-index synthetic entries), mirroring the paper's
// protocol of selecting query sequences from the database itself: each
// query then has a guaranteed perfect hit.
func PlantQueries(db []*sequence.Sequence, queries []*sequence.Sequence) {
	if len(db) == 0 {
		return
	}
	stride := len(db) / (len(queries) + 1)
	if stride == 0 {
		stride = 1
	}
	for i, q := range queries {
		pos := (i + 1) * stride % len(db)
		db[pos] = q
	}
}
