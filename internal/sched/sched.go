// Package sched models the OpenMP worksharing loop at the heart of the
// paper's Algorithm 1 (#pragma omp parallel for over database groups) and
// executes its real counterpart.
//
// The two concerns are deliberately separated:
//
//   - Parallel runs the functional kernels on the host machine with a
//     goroutine worker pool (real parallelism, any order, deterministic
//     results because chunks are independent);
//   - Simulate replays a scheduling policy over the per-chunk simulated
//     costs deterministically, yielding the makespan a given simulated
//     thread count would achieve. This mirrors how the paper's dynamic
//     scheduling outperforms static when chunk costs vary.
//
// Splitting execution from schedule simulation keeps simulated results
// independent of host timing jitter and lets one functional pass be
// replayed under many thread counts and policies.
package sched

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Policy is an OpenMP loop scheduling policy.
type Policy int

const (
	// Static divides iterations into equal contiguous blocks, one per
	// thread (OpenMP schedule(static)).
	Static Policy = iota
	// Dynamic hands out fixed-size chunks to threads as they go idle
	// (OpenMP schedule(dynamic, chunk)).
	Dynamic
	// Guided hands out geometrically shrinking chunks, proportional to
	// the remaining iterations per thread (OpenMP schedule(guided)).
	Guided
)

// String returns the OpenMP name of the policy.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy converts an OpenMP policy name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range []Policy{Static, Dynamic, Guided} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q", s)
}

// Result summarises a simulated schedule.
type Result struct {
	// Makespan is the finish time of the last thread, in the cost units
	// of the input (simulated cycles).
	Makespan float64
	// PerThread holds each simulated thread's total busy time.
	PerThread []float64
	// Chunks counts dispatched chunks (scheduling events).
	Chunks int
}

// Imbalance returns the relative gap between the busiest thread and the
// mean: 0 for a perfectly balanced schedule.
func (r Result) Imbalance() float64 {
	if len(r.PerThread) == 0 || r.Makespan == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.PerThread {
		sum += v
	}
	mean := sum / float64(len(r.PerThread))
	if mean == 0 {
		return 0
	}
	return r.Makespan/mean - 1
}

type threadHeap struct {
	avail []float64
	id    []int
}

func (h *threadHeap) Len() int { return len(h.avail) }
func (h *threadHeap) Less(i, j int) bool {
	if h.avail[i] != h.avail[j] {
		return h.avail[i] < h.avail[j]
	}
	return h.id[i] < h.id[j] // deterministic tie-break
}
func (h *threadHeap) Swap(i, j int) {
	h.avail[i], h.avail[j] = h.avail[j], h.avail[i]
	h.id[i], h.id[j] = h.id[j], h.id[i]
}
func (h *threadHeap) Push(x any) {
	panic("sched: fixed-size heap")
}
func (h *threadHeap) Pop() any {
	panic("sched: fixed-size heap")
}

// Simulate schedules n = len(costs) iterations with the given per-iteration
// costs onto `threads` simulated threads. chunkSize is the OpenMP chunk
// parameter: for Dynamic it is the dispatch granularity (default 1); for
// Guided it is the minimum chunk; Static ignores it and uses one contiguous
// block per thread. dispatchOverhead is added to a thread's busy time per
// dispatched chunk, modelling the cost of the worksharing construct (this
// is what makes dynamic,1 more expensive than guided on balanced loads).
//
// Dynamic dispatches chunks heaviest-first (longest-processing-time list
// scheduling): self-scheduled Smith-Waterman engines iterate their
// length-sorted database from the long end for exactly this reason — it
// eliminates the end-of-loop tail where a thread starts a heavy chunk just
// as the queue drains. Static and Guided consume the iteration space in
// order, as the OpenMP constructs do.
func Simulate(costs []float64, threads int, policy Policy, chunkSize int, dispatchOverhead float64) Result {
	n := len(costs)
	if threads < 1 {
		threads = 1
	}
	if chunkSize < 1 {
		chunkSize = 1
	}
	res := Result{PerThread: make([]float64, threads)}
	if n == 0 {
		return res
	}

	// Build the chunk cost list: contiguous iteration runs per policy.
	// Chunk identity does not affect the makespan, so only costs are kept.
	var chunks []float64
	addChunk := func(start, size int) {
		var c float64
		for i := start; i < start+size && i < n; i++ {
			c += costs[i]
		}
		chunks = append(chunks, c)
	}
	switch policy {
	case Static:
		block := (n + threads - 1) / threads
		for start := 0; start < n; start += block {
			size := block
			if start+size > n {
				size = n - start
			}
			addChunk(start, size)
		}
	case Dynamic:
		for start := 0; start < n; start += chunkSize {
			size := chunkSize
			if start+size > n {
				size = n - start
			}
			addChunk(start, size)
		}
		// Heaviest-first list scheduling.
		sort.Sort(sort.Reverse(sort.Float64Slice(chunks)))
	case Guided:
		next, remaining := 0, n
		for next < n {
			size := remaining / (2 * threads)
			if size < chunkSize {
				size = chunkSize
			}
			if size > remaining {
				size = remaining
			}
			addChunk(next, size)
			next += size
			remaining -= size
		}
	default:
		panic(fmt.Sprintf("sched: unknown policy %d", int(policy)))
	}
	res.Chunks = len(chunks)

	if policy == Static {
		// One block per thread, in order.
		for t, c := range chunks {
			res.PerThread[t] = c + dispatchOverhead
		}
	} else {
		// List scheduling: each chunk goes to the earliest-available
		// thread.
		h := &threadHeap{avail: make([]float64, threads), id: make([]int, threads)}
		for t := range h.id {
			h.id[t] = t
		}
		heap.Init(h)
		for _, c := range chunks {
			t := h.id[0]
			res.PerThread[t] += c + dispatchOverhead
			h.avail[0] = res.PerThread[t]
			heap.Fix(h, 0)
		}
	}

	for _, v := range res.PerThread {
		if v > res.Makespan {
			res.Makespan = v
		}
	}
	return res
}

// DeviceSchedule is the outcome of scheduling device-level chunks onto a
// set of heterogeneous workers (compute devices), the cluster analogue of
// Result for the in-device worksharing loop.
type DeviceSchedule struct {
	// Assign maps each chunk (in consumption order) to the worker that
	// claimed it.
	Assign []int
	// Busy is each worker's finish time, including its start offset.
	Busy []float64
	// Chunks counts the chunks each worker claimed.
	Chunks []int
	// Makespan is the latest finish time across workers.
	Makespan float64
}

// ScheduleChunks replays a device-level dynamic chunk queue over
// heterogeneous workers: chunks are consumed in the given order and each
// goes to the worker with the earliest predicted finish for it
// (busy[w] + cost(chunk, w), ties to the lowest worker index). This is the
// cost-aware analogue of the self-scheduling the paper's dynamic OpenMP
// policy performs inside one device, lifted to the cluster level where
// workers differ in speed: a fast device keeps stealing chunks while a
// slow one is still busy, so the queue drains with a balanced tail.
//
// start[w] seeds worker w's busy time (parallel-region launch, one-time
// query transfer for offload devices); nil means all zeros. The function
// is deterministic: identical inputs produce identical schedules.
func ScheduleChunks(n, workers int, start []float64, cost func(chunk, worker int) float64) DeviceSchedule {
	if workers < 1 {
		workers = 1
	}
	s := DeviceSchedule{
		Assign: make([]int, n),
		Busy:   make([]float64, workers),
		Chunks: make([]int, workers),
	}
	for w := 0; w < workers && w < len(start); w++ {
		s.Busy[w] = start[w]
	}
	for c := 0; c < n; c++ {
		best, bestFinish := 0, s.Busy[0]+cost(c, 0)
		for w := 1; w < workers; w++ {
			if f := s.Busy[w] + cost(c, w); f < bestFinish {
				best, bestFinish = w, f
			}
		}
		s.Assign[c] = best
		s.Busy[best] = bestFinish
		s.Chunks[best]++
	}
	for _, b := range s.Busy {
		if b > s.Makespan {
			s.Makespan = b
		}
	}
	return s
}

// ChunkSizes partitions a total workload (in any additive unit — the
// dispatcher uses residues) into device-level chunk sizes, mirroring the
// OpenMP chunking rules at cluster granularity. Dynamic yields equal
// chunks of size chunk; Guided yields geometrically shrinking chunks of
// remaining/(2*workers), floored at chunk, so the queue starts with large
// grants and finishes with small ones that fill the load-balancing tail.
// Static returns one equal block per worker (the degenerate distribution
// the cluster dispatcher's static path expresses through residue shares
// instead).
func ChunkSizes(policy Policy, total int64, workers int, chunk int64) []int64 {
	if total <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	var sizes []int64
	switch policy {
	case Static:
		block := (total + int64(workers) - 1) / int64(workers)
		for rem := total; rem > 0; rem -= block {
			s := block
			if s > rem {
				s = rem
			}
			sizes = append(sizes, s)
		}
	case Dynamic:
		for rem := total; rem > 0; rem -= chunk {
			s := chunk
			if s > rem {
				s = rem
			}
			sizes = append(sizes, s)
		}
	case Guided:
		for rem := total; rem > 0; {
			s := rem / int64(2*workers)
			if s < chunk {
				s = chunk
			}
			if s > rem {
				s = rem
			}
			sizes = append(sizes, s)
			rem -= s
		}
	default:
		panic(fmt.Sprintf("sched: unknown policy %d", int(policy)))
	}
	return sizes
}

// Parallel executes fn(i, worker) for every i in [0, n) using a pool of
// real goroutines. worker identifies the executing worker in [0, workers),
// so callers can hand each worker private scratch buffers. workers <= 0
// selects GOMAXPROCS. The iteration order is unspecified; fn must be safe
// to call concurrently for distinct i.
func Parallel(n, workers int, fn func(i, worker int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, worker)
			}
		}(w)
	}
	wg.Wait()
}
