package sched

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func totalCost(costs []float64) float64 {
	var s float64
	for _, c := range costs {
		s += c
	}
	return s
}

func randCosts(rng *rand.Rand, n int, skew float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 + skew*rng.Float64()*rng.Float64()*100
	}
	return out
}

func TestSimulateSingleThread(t *testing.T) {
	costs := []float64{3, 1, 4, 1, 5}
	for _, p := range []Policy{Static, Dynamic, Guided} {
		r := Simulate(costs, 1, p, 1, 0)
		if r.Makespan != 14 {
			t.Errorf("%v: makespan %v, want 14", p, r.Makespan)
		}
	}
}

func TestSimulateMakespanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 50; trial++ {
		costs := randCosts(rng, rng.Intn(500)+1, 1)
		threads := rng.Intn(64) + 1
		total := totalCost(costs)
		var maxC float64
		for _, c := range costs {
			if c > maxC {
				maxC = c
			}
		}
		for _, p := range []Policy{Static, Dynamic, Guided} {
			r := Simulate(costs, threads, p, 1, 0)
			lower := total / float64(threads)
			if maxC > lower {
				lower = maxC
			}
			if r.Makespan < lower-1e-9 {
				t.Fatalf("%v: makespan %v below lower bound %v", p, r.Makespan, lower)
			}
			if r.Makespan > total+1e-9 {
				t.Fatalf("%v: makespan %v above serial time %v", p, r.Makespan, total)
			}
			var busy float64
			for _, v := range r.PerThread {
				busy += v
			}
			if busy < total-1e-6 {
				t.Fatalf("%v: work lost: %v < %v", p, busy, total)
			}
		}
	}
}

func TestDynamicBeatsStaticOnSkewedLoad(t *testing.T) {
	// A sorted-descending cost pattern with a few huge chunks up front:
	// static's contiguous blocks give thread 0 all the heavy work.
	costs := make([]float64, 256)
	for i := range costs {
		costs[i] = 1
	}
	for i := 0; i < 16; i++ {
		costs[i] = 100
	}
	static := Simulate(costs, 16, Static, 1, 0)
	dynamic := Simulate(costs, 16, Dynamic, 1, 0)
	guided := Simulate(costs, 16, Guided, 1, 0)
	if dynamic.Makespan >= static.Makespan {
		t.Fatalf("dynamic %v >= static %v", dynamic.Makespan, static.Makespan)
	}
	if guided.Makespan >= static.Makespan {
		t.Fatalf("guided %v >= static %v", guided.Makespan, static.Makespan)
	}
}

func TestDynamicNearOptimalOnUniformLoad(t *testing.T) {
	costs := make([]float64, 1024)
	for i := range costs {
		costs[i] = 2
	}
	r := Simulate(costs, 32, Dynamic, 1, 0)
	ideal := totalCost(costs) / 32
	if r.Makespan > ideal*1.01 {
		t.Fatalf("dynamic makespan %v far above ideal %v", r.Makespan, ideal)
	}
	if got := r.Imbalance(); got > 0.01 {
		t.Fatalf("imbalance %v", got)
	}
}

func TestDispatchOverheadCounted(t *testing.T) {
	costs := make([]float64, 100)
	for i := range costs {
		costs[i] = 1
	}
	noOv := Simulate(costs, 4, Dynamic, 1, 0)
	withOv := Simulate(costs, 4, Dynamic, 1, 0.5)
	if withOv.Makespan <= noOv.Makespan {
		t.Fatalf("overhead ignored: %v <= %v", withOv.Makespan, noOv.Makespan)
	}
	// Guided dispatches far fewer chunks than dynamic,1 on uniform loads.
	guided := Simulate(costs, 4, Guided, 1, 0.5)
	if guided.Chunks >= withOv.Chunks {
		t.Fatalf("guided chunks %d >= dynamic chunks %d", guided.Chunks, withOv.Chunks)
	}
}

func TestSimulateChunkSizes(t *testing.T) {
	costs := randCosts(rand.New(rand.NewSource(61)), 333, 1)
	for _, chunk := range []int{1, 4, 16, 100, 1000} {
		r := Simulate(costs, 8, Dynamic, chunk, 0)
		if r.Makespan < totalCost(costs)/8-1e-9 {
			t.Fatalf("chunk %d: impossible makespan", chunk)
		}
	}
}

func TestSimulateEmptyAndDegenerate(t *testing.T) {
	r := Simulate(nil, 8, Dynamic, 1, 0)
	if r.Makespan != 0 || r.Chunks != 0 {
		t.Fatalf("empty: %+v", r)
	}
	r = Simulate([]float64{5}, 0, Static, 0, 0) // threads/chunk clamped
	if r.Makespan != 5 {
		t.Fatalf("degenerate: %+v", r)
	}
}

func TestStaticDeterministicPartition(t *testing.T) {
	costs := randCosts(rand.New(rand.NewSource(62)), 97, 1)
	a := Simulate(costs, 10, Static, 1, 0)
	b := Simulate(costs, 10, Static, 1, 0)
	for i := range a.PerThread {
		if a.PerThread[i] != b.PerThread[i] {
			t.Fatal("static schedule not deterministic")
		}
	}
}

// Property: makespan is monotonically non-increasing in thread count for
// dynamic scheduling (more threads never hurt without contention).
func TestDynamicMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		costs := randCosts(r, r.Intn(200)+1, 2)
		prev := Simulate(costs, 1, Dynamic, 1, 0).Makespan
		for _, th := range []int{2, 4, 8, 16} {
			cur := Simulate(costs, th, Dynamic, 1, 0).Makespan
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParallelVisitsAllOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 64} {
		n := 1000
		visited := make([]atomic.Int32, n)
		Parallel(n, workers, func(i, worker int) {
			visited[i].Add(1)
		})
		for i := range visited {
			if visited[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, visited[i].Load())
			}
		}
	}
}

func TestParallelWorkerIDsInRange(t *testing.T) {
	var bad atomic.Int32
	Parallel(500, 7, func(i, worker int) {
		if worker < 0 || worker >= 7 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d out-of-range worker ids", bad.Load())
	}
}

func TestParallelZero(t *testing.T) {
	called := false
	Parallel(0, 4, func(i, worker int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range []Policy{Static, Dynamic, Guided} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("auto"); err == nil {
		t.Fatal("ParsePolicy accepted junk")
	}
}

func TestScheduleChunksBalance(t *testing.T) {
	// Worker 1 is 3x faster than worker 0; over many equal chunks it must
	// claim roughly 3x as many, and the makespan must stay within one
	// chunk of the perfectly balanced completion time.
	n := 200
	cost := func(chunk, worker int) float64 {
		if worker == 1 {
			return 1
		}
		return 3
	}
	s := ScheduleChunks(n, 2, nil, cost)
	if s.Chunks[0]+s.Chunks[1] != n {
		t.Fatalf("chunks lost: %v", s.Chunks)
	}
	ratio := float64(s.Chunks[1]) / float64(s.Chunks[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("fast worker claimed %v (ratio %.2f, want ~3)", s.Chunks, ratio)
	}
	// Aggregate rate 1/3+1 chunks per unit -> ideal makespan n/(4/3).
	ideal := float64(n) / (4.0 / 3.0)
	if s.Makespan < ideal || s.Makespan > ideal+3 {
		t.Fatalf("makespan %v, ideal %v", s.Makespan, ideal)
	}
	if s.Makespan != max(s.Busy[0], s.Busy[1]) {
		t.Fatalf("makespan %v != max busy %v", s.Makespan, s.Busy)
	}
}

func TestScheduleChunksDeterministicAndSeeded(t *testing.T) {
	cost := func(chunk, worker int) float64 { return float64(chunk%7 + worker + 1) }
	a := ScheduleChunks(50, 3, []float64{5, 0, 0}, cost)
	b := ScheduleChunks(50, 3, []float64{5, 0, 0}, cost)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("nondeterministic assignment at chunk %d", i)
		}
	}
	if a.Busy[0] < 5 {
		t.Fatalf("start offset ignored: busy %v", a.Busy)
	}
	// A heavily penalised worker should claim nothing.
	s := ScheduleChunks(10, 2, []float64{1e12, 0}, cost)
	if s.Chunks[0] != 0 || s.Chunks[1] != 10 {
		t.Fatalf("seeded-out worker still claimed chunks: %v", s.Chunks)
	}
}

func TestChunkSizesConservation(t *testing.T) {
	for _, p := range []Policy{Static, Dynamic, Guided} {
		for _, total := range []int64{1, 7, 1000, 54321} {
			sizes := ChunkSizes(p, total, 3, 10)
			var sum int64
			for _, s := range sizes {
				if s <= 0 {
					t.Fatalf("%v total %d: non-positive chunk %d", p, total, s)
				}
				sum += s
			}
			if sum != total {
				t.Fatalf("%v total %d: chunks sum to %d", p, total, sum)
			}
		}
	}
	if ChunkSizes(Dynamic, 0, 3, 10) != nil {
		t.Fatal("zero total must yield no chunks")
	}
}

func TestChunkSizesShapes(t *testing.T) {
	dyn := ChunkSizes(Dynamic, 100, 4, 10)
	if len(dyn) != 10 {
		t.Fatalf("dynamic: %d chunks, want 10", len(dyn))
	}
	for _, s := range dyn {
		if s != 10 {
			t.Fatalf("dynamic chunk %d, want 10", s)
		}
	}
	g := ChunkSizes(Guided, 10000, 2, 5)
	if len(g) < 3 {
		t.Fatalf("guided produced only %d chunks", len(g))
	}
	for i := 1; i < len(g); i++ {
		if g[i] > g[i-1] {
			t.Fatalf("guided chunks grow at %d: %v", i, g[:i+1])
		}
	}
	if g[0] != 10000/4 {
		t.Fatalf("first guided chunk %d, want remaining/(2*workers) = 2500", g[0])
	}
	st := ChunkSizes(Static, 90, 4, 1)
	if len(st) != 4 {
		t.Fatalf("static: %d blocks, want 4", len(st))
	}
}
