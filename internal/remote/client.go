package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// maxNodeResponseBytes bounds one node response. A full shard score list
// is ~11 bytes per sequence in JSON; 64 MB covers multi-million-sequence
// shards with an order of magnitude to spare.
const maxNodeResponseBytes = 64 << 20

// Options tunes a Client. The zero value selects the defaults noted on
// each field.
type Options struct {
	// HTTP is the underlying client (http.DefaultClient family semantics
	// when nil). Per-attempt deadlines come from Timeout, not from
	// HTTP.Timeout, so hedged attempts can share one transport.
	HTTP *http.Client
	// Timeout bounds each individual attempt (10s when 0; negative
	// disables). A slow node trips it and the next attempt routes to the
	// next replica.
	Timeout time.Duration
	// Retries is how many additional attempts follow a retryable failure
	// (2 when 0; negative disables retries). Attempts rotate across the
	// shard's replicas.
	Retries int
	// Backoff is the wait before the first retry, doubling per attempt
	// (100ms when 0; negative disables waiting). Retries triggered by a
	// 503 — a draining node — are exactly the ones backoff helps.
	Backoff time.Duration
	// HedgeDelay, when positive and the shard has at least two replicas,
	// launches a duplicate request against the next replica if the
	// primary has not answered within the delay; the first success wins
	// and the loser is cancelled. 0 disables hedging.
	HedgeDelay time.Duration
	// OnFailure, when non-nil, is called with the primary URL of every
	// retryable attempt failure (the caller's context still being live).
	// The coordinator wires it to the health prober's Kick, so a node
	// failing real traffic is re-probed immediately instead of at the
	// next periodic sweep. It must not block.
	OnFailure func(url string, err error)
}

func (o Options) withDefaults() Options {
	if o.HTTP == nil {
		o.HTTP = &http.Client{}
	}
	if o.Timeout == 0 {
		o.Timeout = 10 * time.Second
	} else if o.Timeout < 0 {
		o.Timeout = 0
	}
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff == 0 {
		o.Backoff = 100 * time.Millisecond
	} else if o.Backoff < 0 {
		o.Backoff = 0
	}
	return o
}

// Client talks to swserve shard nodes with per-attempt timeouts, bounded
// retries over retryable failures, exponential backoff and optional
// hedging across replicas. A Client is safe for concurrent use and is
// shared by every Backend of one coordinator.
type Client struct {
	opt Options
}

// NewClient builds a client.
func NewClient(opt Options) *Client {
	return &Client{opt: opt.withDefaults()}
}

// Shards fetches one node's shard inventory. Discovery is a single
// attempt — the coordinator probes every node and tolerates individual
// failures, so retrying here would only slow startup.
func (c *Client) Shards(ctx context.Context, node string) (*ShardsResponse, error) {
	if c.opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opt.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/shards", nil)
	if err != nil {
		return nil, err
	}
	raw, err := c.read(req, node)
	if err != nil {
		return nil, err
	}
	var out ShardsResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("remote: %s/shards: %w", node, err)
	}
	return &out, nil
}

// ShardSearch scores one query over one shard, trying the shard's replica
// URLs under the client's retry/hedging policy.
func (c *Client) ShardSearch(ctx context.Context, urls []string, req *ShardSearchRequest) (*ShardSearchResponse, error) {
	out := new(ShardSearchResponse)
	if err := c.do(ctx, urls, "/shard/search", req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ShardAlign runs tracebacks for one shard's hits under the same policy.
func (c *Client) ShardAlign(ctx context.Context, urls []string, req *ShardAlignRequest) (*ShardAlignResponse, error) {
	out := new(ShardAlignResponse)
	if err := c.do(ctx, urls, "/shard/align", req, out); err != nil {
		return nil, err
	}
	return out, nil
}

// do is the retry loop: attempt a routes to urls[a mod len(urls)], failed
// retryable attempts back off exponentially, and non-retryable failures
// (or a dead caller context) stop immediately.
func (c *Client) do(ctx context.Context, urls []string, path string, reqBody, respBody any) error {
	if len(urls) == 0 {
		return fmt.Errorf("%w for %s", ErrNoReplicas, path)
	}
	body, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	attempts := c.opt.Retries + 1
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 && c.opt.Backoff > 0 {
			select {
			case <-time.After(c.opt.Backoff << (a - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		raw, err := c.attempt(ctx, urls, a, path, body)
		if err == nil {
			if uerr := json.Unmarshal(raw, respBody); uerr != nil {
				return fmt.Errorf("remote: %s: %w", path, uerr)
			}
			return nil
		}
		lastErr = err
		if !Retryable(err) || ctx.Err() != nil {
			return err
		}
		if c.opt.OnFailure != nil {
			c.opt.OnFailure(urls[a%len(urls)], err)
		}
	}
	return fmt.Errorf("remote: %s failed after %d attempts: %w", path, attempts, lastErr)
}

// postResult is one in-flight POST's outcome.
type postResult struct {
	url string
	raw []byte
	err error
}

// attempt runs one logical attempt: a POST to the attempt's primary
// replica, plus — when hedging is enabled and another replica exists — a
// duplicate launched either after HedgeDelay or immediately once the
// primary fails. The first success wins and cancels the other request;
// the attempt fails only when every launched request has failed.
func (c *Client) attempt(ctx context.Context, urls []string, a int, path string, body []byte) ([]byte, error) {
	actx, cancel := context.WithCancel(ctx)
	if c.opt.Timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.opt.Timeout)
	}
	defer cancel()

	primary := urls[a%len(urls)]
	if c.opt.HedgeDelay <= 0 || len(urls) < 2 {
		r := c.post(actx, primary, path, body)
		return r.raw, r.err
	}
	hedge := urls[(a+1)%len(urls)]

	ch := make(chan postResult, 2)
	launch := func(url string) {
		go func() { ch <- c.post(actx, url, path, body) }()
	}
	launch(primary)
	inflight, hedged := 1, false
	timer := time.NewTimer(c.opt.HedgeDelay)
	defer timer.Stop()
	var errs []error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				// Winner: cancel the in-flight loser (if any) via the
				// shared attempt context.
				cancel()
				return r.raw, nil
			}
			errs = append(errs, fmt.Errorf("%s: %w", r.url, r.err))
			if !hedged {
				// The primary failed before the hedge timer fired: there
				// is no reason to sit out the rest of the delay.
				timer.Stop()
				launch(hedge)
				hedged, inflight = true, inflight+1
				continue
			}
			if inflight == 0 {
				return nil, errors.Join(errs...)
			}
		case <-timer.C:
			if !hedged {
				launch(hedge)
				hedged, inflight = true, inflight+1
			}
		}
	}
}

// post runs one POST and returns the raw 200 body or a classified error.
func (c *Client) post(ctx context.Context, base, path string, body []byte) postResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return postResult{url: base, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	raw, err := c.read(req, base)
	return postResult{url: base, raw: raw, err: err}
}

// read executes a prepared request, capping the body and converting
// non-200 statuses to StatusError.
func (c *Client) read(req *http.Request, base string) ([]byte, error) {
	resp, err := c.opt.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxNodeResponseBytes))
	if resp.StatusCode != http.StatusOK {
		msg := ""
		var ej errorJSON
		if json.Unmarshal(raw, &ej) == nil {
			msg = ej.Error
		}
		return nil, &StatusError{Code: resp.StatusCode, Msg: msg}
	}
	if err != nil {
		return nil, fmt.Errorf("remote: reading %s: %w", base, err)
	}
	return raw, nil
}
