package remote

import (
	"context"
	"fmt"

	"heterosw/internal/alphabet"
	"heterosw/internal/core"
	"heterosw/internal/device"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
)

// Backend adapts a remote swserve node to core.Backend, so the dispatcher
// drives it exactly like a local device backend: Search scores the shard
// it is handed (always its own fixed shard under a sharded dispatcher)
// and AlignShard fans tracebacks out to the node holding the shard bytes.
type Backend struct {
	name     string
	client   *Client
	replicas *ReplicaSet
	model    *device.Model
}

// NewBackend builds a backend over one shard's fixed replica URLs. model
// is the device model the planner should assume for the remote node; it
// has no effect under a fixed shard assignment (the cut is the plan) but
// keeps the Backend contract total.
func NewBackend(name string, client *Client, urls []string, model *device.Model) *Backend {
	return NewBackendSet(name, client, NewReplicaSet(urls), model)
}

// NewBackendSet builds a backend over a live replica set: each request
// snapshots the set's current URLs, so the coordinator's health prober
// can rewrite shard ownership — failover, readoption, rebalance — under
// running traffic without touching the backend.
func NewBackendSet(name string, client *Client, replicas *ReplicaSet, model *device.Model) *Backend {
	return &Backend{name: name, client: client, replicas: replicas, model: model}
}

// Name implements core.Backend.
func (b *Backend) Name() string { return b.name }

// Model implements core.Backend.
func (b *Backend) Model() *device.Model { return b.model }

// Threads implements core.Backend. The remote node's parallelism is its
// own configuration; the coordinator reports what the node answered per
// search, so the static capability is 0.
func (b *Backend) Threads() int { return 0 }

// URLs returns a snapshot of the replica URLs this backend routes to.
func (b *Backend) URLs() []string { return b.replicas.URLs() }

// residueBytes copies encoded residues into wire bytes. alphabet.Code is
// a uint8, so this is a widening-free copy, not a re-encode — the node
// rebuilds the exact residue slice and its caches dedup identically.
func residueBytes(codes []alphabet.Code) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = byte(c)
	}
	return out
}

// Search implements core.Backend: one score-only shard execution on the
// remote node. The node runs the search under its own configured kernel
// options — the coordinator ships the query, not the search parameters —
// so operators must configure nodes and coordinator identically (see the
// README's distributed serving contract).
func (b *Backend) Search(ctx context.Context, db *seqdb.Database, query *sequence.Sequence, opt core.SearchOptions) (*core.Result, error) {
	resp, err := b.client.ShardSearch(ctx, b.replicas.URLs(), &ShardSearchRequest{
		Shard: db.Key(),
		ID:    query.ID,
		Codes: residueBytes(query.Residues),
	})
	if err != nil {
		return nil, fmt.Errorf("remote: backend %s: %w", b.name, err)
	}
	if len(resp.Scores) != db.Len() {
		return nil, fmt.Errorf("remote: backend %s answered %d scores for the %d-sequence shard %s",
			b.name, len(resp.Scores), db.Len(), db.Key())
	}
	r := &core.Result{
		Scores:      resp.Scores,
		Threads:     resp.Threads,
		SimSeconds:  resp.SimSeconds,
		WallSeconds: resp.WallSeconds,
	}
	r.Stats.Cells = resp.Cells
	r.Stats.Overflows = resp.Overflows
	r.Stats.Overflows8 = resp.Overflows8
	return r, nil
}

// AlignShard implements core.ShardAligner: tracebacks run on the node
// that holds the shard, and come back as shard-local details the
// dispatcher remaps to parent indices.
func (b *Backend) AlignShard(ctx context.Context, query *sequence.Sequence, shard *seqdb.Database, hits []core.Hit, opt core.SearchOptions) ([]core.AlignmentDetail, error) {
	req := &ShardAlignRequest{
		Shard:   shard.Key(),
		ID:      query.ID,
		Codes:   residueBytes(query.Residues),
		Indices: make([]int, len(hits)),
		Scores:  make([]int32, len(hits)),
	}
	for i, h := range hits {
		req.Indices[i] = h.SeqIndex
		req.Scores[i] = h.Score
	}
	resp, err := b.client.ShardAlign(ctx, b.replicas.URLs(), req)
	if err != nil {
		return nil, fmt.Errorf("remote: backend %s: %w", b.name, err)
	}
	if len(resp.Alignments) != len(hits) {
		return nil, fmt.Errorf("remote: backend %s answered %d alignments for %d hits", b.name, len(resp.Alignments), len(hits))
	}
	out := make([]core.AlignmentDetail, len(hits))
	for i, w := range resp.Alignments {
		if w.Index != hits[i].SeqIndex {
			return nil, fmt.Errorf("remote: backend %s answered alignment %d for index %d (want %d)", b.name, i, w.Index, hits[i].SeqIndex)
		}
		out[i] = core.AlignmentDetail{
			SeqIndex:     w.Index,
			Score:        w.Score,
			QueryStart:   w.QueryStart,
			QueryEnd:     w.QueryEnd,
			SubjectStart: w.SubjectStart,
			SubjectEnd:   w.SubjectEnd,
			CIGAR:        w.CIGAR,
			Identities:   w.Identities,
			Columns:      w.Columns,
		}
	}
	return out, nil
}
