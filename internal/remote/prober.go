package remote

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NodeState is one node's position in the prober's health state machine.
// Healthy nodes answered their latest probe; a probe failure demotes the
// node to degraded (it stays routable — the client's retry policy covers
// transient faults — but loses replica-order preference); DeadAfter
// consecutive failures demote it to dead, at which point its shards fail
// over to the surviving replicas until a later probe succeeds and
// readopts it.
type NodeState int

const (
	NodeHealthy NodeState = iota
	NodeDegraded
	NodeDead
)

// String implements fmt.Stringer with the lowercase names the /healthz
// topology document serves.
func (s NodeState) String() string {
	switch s {
	case NodeHealthy:
		return "healthy"
	case NodeDegraded:
		return "degraded"
	case NodeDead:
		return "dead"
	}
	return fmt.Sprintf("NodeState(%d)", int(s))
}

// ProberOptions tunes a Prober. The zero value selects the defaults noted
// on each field.
type ProberOptions struct {
	// Interval is the background probe period (15s when 0; negative
	// disables the background loop entirely, leaving probes to explicit
	// ProbeAll calls — the deterministic mode the fault-injection tests
	// drive).
	Interval time.Duration
	// DeadAfter is the consecutive-failure count that demotes a node from
	// degraded to dead (3 when 0).
	DeadAfter int
	// EWMAAlpha weights the newest latency sample in the per-node
	// exponentially weighted moving average (0.3 when 0).
	EWMAAlpha float64
	// Window is how many latency samples the per-node quantile ring keeps
	// (64 when 0).
	Window int
}

func (o ProberOptions) withDefaults() ProberOptions {
	if o.Interval == 0 {
		o.Interval = 15 * time.Second
	} else if o.Interval < 0 {
		o.Interval = 0
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 3
	}
	if o.EWMAAlpha <= 0 || o.EWMAAlpha > 1 {
		o.EWMAAlpha = 0.3
	}
	if o.Window <= 0 {
		o.Window = 64
	}
	return o
}

// NodeHealth is one node's health snapshot: its state-machine position,
// failure streak, latency statistics over successful probes, the shard
// keys it reported last, and the error that failed its latest probe (""
// while healthy).
type NodeHealth struct {
	URL                 string
	State               NodeState
	ConsecutiveFailures int
	Probes              int64
	LatencyEWMA         time.Duration
	LatencyP50          time.Duration
	LatencyP90          time.Duration
	LatencyP99          time.Duration
	Shards              []string
	LastError           string
}

// nodeStatus is the prober's mutable per-node record.
type nodeStatus struct {
	state    NodeState
	failures int
	probes   int64
	ewma     float64   // seconds
	window   []float64 // latency ring, seconds
	wnext    int       // next ring slot once the window is full
	shards   []string  // shard keys from the last successful probe
	lastErr  error
}

// Prober tracks the health of a fixed node roster by probing GET /shards:
// periodically from a background loop, and immediately when Kick reports
// a request failure against a node. Every sweep ends by invoking the
// onChange callback, which the coordinator uses to recompute each shard's
// replica set from the latest ownership reports — a node that newly
// reports a shard key joins that shard's replicas, and a dead node's
// shards fail over to the survivors, all without a coordinator restart.
type Prober struct {
	client   *Client
	nodes    []string // immutable roster, construction order
	opt      ProberOptions
	onChange func()

	kick      chan string
	stopc     chan struct{}
	done      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
	looping   atomic.Bool

	mu sync.Mutex
	//sw:guardedBy(mu)
	status map[string]*nodeStatus
	//sw:guardedBy(mu)
	sweeps int64
}

// NewProber builds a prober over the node roster. onChange (may be nil)
// runs after every probe sweep and every triggered single-node probe,
// outside the prober's lock, so it may call back into Owners and Health.
// The prober is inert until ProbeAll or Start is called.
func NewProber(client *Client, nodes []string, opt ProberOptions, onChange func()) *Prober {
	p := &Prober{
		client:   client,
		nodes:    append([]string(nil), nodes...),
		opt:      opt.withDefaults(),
		onChange: onChange,
		kick:     make(chan string, 2*len(nodes)+4),
		stopc:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	p.mu.Lock()
	p.status = make(map[string]*nodeStatus, len(nodes))
	for _, url := range p.nodes {
		// Unprobed counts as degraded: routable (construction probes run
		// before any traffic, but a safe default either way) yet never
		// preferred over a node that has proven itself.
		p.status[url] = &nodeStatus{state: NodeDegraded}
	}
	p.mu.Unlock()
	return p
}

// Start launches the background probe loop: a sweep every Interval, plus
// immediate single-node probes for every Kick. No-op when the interval is
// negative (disabled) or Start already ran.
//
//sw:ctxroot
func (p *Prober) Start() {
	p.startOnce.Do(func() {
		if p.opt.Interval <= 0 {
			return
		}
		p.looping.Store(true)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			defer close(p.done)
			defer cancel()
			ticker := time.NewTicker(p.opt.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-p.stopc:
					return
				case <-ticker.C:
					p.ProbeAll(ctx)
				case url := <-p.kick:
					p.probeOne(ctx, url)
				}
			}
		}()
	})
}

// Stop terminates the background loop and waits for it to exit. Safe to
// call multiple times and without a prior Start.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stopc) })
	if p.looping.Load() {
		<-p.done
	}
}

// Kick requests an immediate re-probe of one node — the client's request
// path calls it on every retryable failure, so a dying node is detected
// at the next loop iteration instead of the next periodic sweep. The send
// never blocks; kicks beyond the buffer (or with the loop disabled) are
// dropped, which keeps deterministic tests free of background probes.
func (p *Prober) Kick(url string) {
	select {
	case p.kick <- url:
	default:
	}
}

// ProbeAll probes every node concurrently, waits for all results, then
// runs the onChange callback once. ctx bounds the sweep; each probe is
// additionally bounded by the client's per-attempt timeout.
func (p *Prober) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, url := range p.nodes {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			p.probe(ctx, url)
		}(url)
	}
	wg.Wait()
	p.mu.Lock()
	p.sweeps++
	p.mu.Unlock()
	if p.onChange != nil {
		p.onChange()
	}
}

// probeOne re-probes a single known node and runs onChange. Unknown URLs
// are ignored: the roster is fixed at construction.
func (p *Prober) probeOne(ctx context.Context, url string) {
	known := false
	for _, n := range p.nodes {
		if n == url {
			known = true
			break
		}
	}
	if !known {
		return
	}
	p.probe(ctx, url)
	if p.onChange != nil {
		p.onChange()
	}
}

// probe runs one GET /shards probe and folds the outcome into the node's
// status record.
func (p *Prober) probe(ctx context.Context, url string) {
	start := time.Now()
	resp, err := p.client.Shards(ctx, url)
	lat := time.Since(start).Seconds()
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.status[url]
	st.probes++
	if err != nil {
		st.failures++
		st.lastErr = err
		if st.failures >= p.opt.DeadAfter {
			st.state = NodeDead
		} else {
			st.state = NodeDegraded
		}
		return
	}
	st.failures = 0
	st.lastErr = nil
	st.state = NodeHealthy
	keys := make([]string, len(resp.Shards))
	for i, sh := range resp.Shards {
		keys[i] = sh.Key
	}
	st.shards = keys
	if st.ewma == 0 {
		st.ewma = lat
	} else {
		st.ewma = p.opt.EWMAAlpha*lat + (1-p.opt.EWMAAlpha)*st.ewma
	}
	if len(st.window) < p.opt.Window {
		st.window = append(st.window, lat)
	} else {
		st.window[st.wnext] = lat
		st.wnext = (st.wnext + 1) % p.opt.Window
	}
}

// Owners maps each requested shard key to the live node URLs reporting
// it, healthy nodes first, then degraded, each group in roster order —
// so attempt 0 of every request prefers a node that answered its latest
// probe. Dead nodes are excluded: their shards have failed over.
func (p *Prober) Owners(keys []string) map[string][]string {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	owners := make(map[string][]string, len(keys))
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, state := range []NodeState{NodeHealthy, NodeDegraded} {
		for _, url := range p.nodes {
			st := p.status[url]
			if st.state != state {
				continue
			}
			for _, k := range st.shards {
				if want[k] {
					owners[k] = append(owners[k], url)
				}
			}
		}
	}
	return owners
}

// Health snapshots every node's health in roster order.
func (p *Prober) Health() []NodeHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]NodeHealth, len(p.nodes))
	for i, url := range p.nodes {
		st := p.status[url]
		h := NodeHealth{
			URL:                 url,
			State:               st.state,
			ConsecutiveFailures: st.failures,
			Probes:              st.probes,
			LatencyEWMA:         secondsToDuration(st.ewma),
			Shards:              append([]string(nil), st.shards...),
		}
		if st.lastErr != nil {
			h.LastError = st.lastErr.Error()
		}
		if n := len(st.window); n > 0 {
			sorted := append([]float64(nil), st.window...)
			sort.Float64s(sorted)
			h.LatencyP50 = secondsToDuration(quantile(sorted, 0.50))
			h.LatencyP90 = secondsToDuration(quantile(sorted, 0.90))
			h.LatencyP99 = secondsToDuration(quantile(sorted, 0.99))
		}
		out[i] = h
	}
	return out
}

// ProbeErrors lists, in roster order, the last probe failure of every
// node whose latest probe failed, each as "url: error" — the exact shape
// the coordinator's construction-time probeSuffix joins.
func (p *Prober) ProbeErrors() []error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var errs []error
	for _, url := range p.nodes {
		if st := p.status[url]; st.lastErr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", url, st.lastErr))
		}
	}
	return errs
}

// Sweeps counts completed ProbeAll sweeps.
func (p *Prober) Sweeps() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sweeps
}

// quantile reads the nearest-rank q-quantile from an ascending sample.
func quantile(sorted []float64, q float64) float64 {
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
