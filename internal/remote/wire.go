// Package remote implements the distributed search layer's client side: the
// JSON wire types spoken between a coordinator and swserve shard nodes, the
// shard manifest that carries the durable checksum identity of each cut, a
// retrying/hedging HTTP client, and a Backend implementing core.Backend so
// a remote node slots into the dispatcher exactly like a local device.
//
// The protocol is deliberately small — three endpoints on every node:
//
//	GET  /shards        which shard keys this node owns
//	POST /shard/search  score one query over one shard (full score list)
//	POST /shard/align   traceback selected hits of one shard
//
// Shards are addressed by their .swdb checksum key (index.Key), never by
// file path: the key is content-derived, so a coordinator and a node that
// disagree about a shard's bytes can never silently mis-merge scores.
//
// Error contract: a node answers 503 only for retryable conditions (the
// node is draining or closed); every other failure status is terminal for
// that request. The client's retry and hedging policy keys off exactly
// this distinction — see Retryable.
package remote

import (
	"errors"
	"fmt"
	"net/http"
)

// ShardInfo describes one shard a node owns.
type ShardInfo struct {
	// Key is the shard's content identity: the checksum key of its .swdb
	// index (index.Key), matching the manifest entry it was cut under.
	Key string `json:"key"`
	// Sequences and Residues size the shard.
	Sequences int   `json:"sequences"`
	Residues  int64 `json:"residues"`
}

// ShardsResponse is the GET /shards discovery document.
type ShardsResponse struct {
	// Alphabet names the shards' residue alphabet ("protein" or "dna").
	Alphabet string `json:"alphabet"`
	// Shards lists every shard this node serves.
	Shards []ShardInfo `json:"shards"`
}

// ShardSearchRequest is the POST /shard/search body: one query scored over
// one shard.
type ShardSearchRequest struct {
	// Shard is the target shard's checksum key; unknown keys answer 404.
	Shard string `json:"shard"`
	// ID labels the query (diagnostics only; it does not affect scores).
	ID string `json:"id,omitempty"`
	// Codes holds the query residues pre-encoded under the shard's
	// alphabet (alphabet.Code bytes, base64 in JSON). Shipping codes
	// rather than letters makes the round trip loss-free: the encoding is
	// injective, so the node's cache keys dedup exactly like local ones.
	Codes []byte `json:"codes"`
}

// ShardSearchResponse is the score-only result of one shard execution.
// Scores is the full shard-length score list in the shard's caller order —
// the coordinator owns TopK selection, so nodes never truncate.
type ShardSearchResponse struct {
	Scores []int32 `json:"scores"`
	// Cells counts useful DP cell updates (query length x shard residues);
	// summed across shards it reproduces the single-node cell count
	// exactly, whatever the cut.
	Cells   int64 `json:"cells"`
	Threads int   `json:"threads"`
	// SimSeconds and WallSeconds report the node-local timing of the
	// execution that produced this result (cache hits repeat the original
	// search's figures).
	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	Overflows   int64   `json:"overflows,omitempty"`
	Overflows8  int64   `json:"overflows8,omitempty"`
}

// ShardAlignRequest is the POST /shard/align body: traceback the listed
// subjects of one shard against the query.
type ShardAlignRequest struct {
	Shard string `json:"shard"`
	ID    string `json:"id,omitempty"`
	Codes []byte `json:"codes"`
	// Indices lists the subjects to align as shard-local caller indices;
	// Scores carries the kernel score of each, which the node verifies
	// against its own traceback (a mismatch is a 500: the shard contents
	// disagree and no retry can fix that).
	Indices []int   `json:"indices"`
	Scores  []int32 `json:"scores"`
}

// AlignmentWire is one traceback result, mirroring core.AlignmentDetail
// with a shard-local Index.
type AlignmentWire struct {
	Index        int    `json:"index"`
	Score        int32  `json:"score"`
	QueryStart   int    `json:"query_start"`
	QueryEnd     int    `json:"query_end"`
	SubjectStart int    `json:"subject_start"`
	SubjectEnd   int    `json:"subject_end"`
	CIGAR        string `json:"cigar"`
	Identities   int    `json:"identities"`
	Columns      int    `json:"columns"`
}

// ShardAlignResponse answers /shard/align: one alignment per requested
// index, in request order.
type ShardAlignResponse struct {
	Alignments []AlignmentWire `json:"alignments"`
}

// errorJSON mirrors the server's error body.
type errorJSON struct {
	Error string `json:"error"`
}

// ErrNoReplicas reports a request against a shard whose replica set is
// currently empty: every node that served it is dead (or was never
// probed successfully). It is retryable by classification — the prober
// readopts a recovering node and refills the set without a coordinator
// restart — so front ends map it to 503, telling clients to retry
// exactly as they would against a draining node.
var ErrNoReplicas = errors.New("remote: no live replicas")

// StatusError is a non-200 node answer, carrying the HTTP status the
// retry policy classifies on.
type StatusError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("remote: node answered %d", e.Code)
	}
	return fmt.Sprintf("remote: node answered %d: %s", e.Code, e.Msg)
}

// Retryable reports whether a node failure may succeed on retry (against
// the same node later, or another replica now). Transport-level failures —
// connection refused or reset, a per-attempt timeout — are retryable: the
// node may be restarting, and replicas exist exactly for this. Of the HTTP
// statuses only 503 is: it is the one status nodes reserve for "healthy
// request, unavailable node" (draining, shard cluster closed). Everything
// else — 400s, 404 unknown shard, 500 — reports a request that cannot
// succeed as posed, and retrying would only amplify the failure.
// ErrNoReplicas is retryable too (no StatusError to classify): the
// prober refills an emptied replica set when a node recovers.
func Retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusServiceUnavailable
	}
	return true
}
