package remote

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"heterosw/internal/remote/faultproxy"
)

// fakeNode serves a /shards listing for the given keys — the minimum a
// prober target needs.
func fakeNode(t *testing.T, keys ...string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/shards" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"alphabet":"protein","shards":[`)
		for i, k := range keys {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, `{"key":%q,"sequences":1,"residues":10}`, k)
		}
		fmt.Fprint(w, `]}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// proxiedNode is a fakeNode behind a faultproxy, so tests can kill and
// revive it deterministically.
func proxiedNode(t *testing.T, keys ...string) *faultproxy.Proxy {
	t.Helper()
	up := fakeNode(t, keys...)
	p, err := faultproxy.New(up.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func stateOf(t *testing.T, p *Prober, url string) NodeHealth {
	t.Helper()
	for _, h := range p.Health() {
		if h.URL == url {
			return h
		}
	}
	t.Fatalf("node %s not in Health()", url)
	return NodeHealth{}
}

// TestProberStateMachine walks one node through the full lifecycle:
// unprobed (degraded) -> healthy -> degraded on first failure -> dead
// after DeadAfter consecutive failures -> readopted healthy on recovery,
// with the failure streak and last-error fields tracking each move.
func TestProberStateMachine(t *testing.T) {
	px := proxiedNode(t, "k0", "k1")
	c := fastClient(Options{})
	p := NewProber(c, []string{px.URL()}, ProberOptions{Interval: -1, DeadAfter: 3}, nil)
	ctx := context.Background()

	if h := stateOf(t, p, px.URL()); h.State != NodeDegraded {
		t.Fatalf("unprobed state = %v, want degraded", h.State)
	}
	p.ProbeAll(ctx)
	h := stateOf(t, p, px.URL())
	if h.State != NodeHealthy || h.ConsecutiveFailures != 0 || h.LastError != "" {
		t.Fatalf("after clean probe: %+v, want healthy with no failures", h)
	}
	if len(h.Shards) != 2 || h.Shards[0] != "k0" || h.Shards[1] != "k1" {
		t.Fatalf("reported shards %v, want [k0 k1]", h.Shards)
	}
	if h.LatencyEWMA <= 0 || h.LatencyP50 <= 0 {
		t.Fatalf("latency not recorded: %+v", h)
	}

	px.SetDown(true)
	for i := 1; i <= 2; i++ {
		p.ProbeAll(ctx)
		h = stateOf(t, p, px.URL())
		if h.State != NodeDegraded || h.ConsecutiveFailures != i {
			t.Fatalf("after %d failures: state %v streak %d, want degraded/%d", i, h.State, h.ConsecutiveFailures, i)
		}
		if h.LastError == "" {
			t.Fatalf("failure %d recorded no error", i)
		}
	}
	p.ProbeAll(ctx)
	if h = stateOf(t, p, px.URL()); h.State != NodeDead || h.ConsecutiveFailures != 3 {
		t.Fatalf("after 3 failures: state %v streak %d, want dead/3", h.State, h.ConsecutiveFailures)
	}
	// A dead node keeps its last shard report for the operator.
	if len(h.Shards) != 2 {
		t.Fatalf("dead node lost its shard report: %v", h.Shards)
	}

	px.SetDown(false)
	p.ProbeAll(ctx)
	if h = stateOf(t, p, px.URL()); h.State != NodeHealthy || h.ConsecutiveFailures != 0 || h.LastError != "" {
		t.Fatalf("readopted node: %+v, want healthy with the streak reset", h)
	}
}

// TestProberOwners pins the replica ordering contract: healthy owners
// first, then degraded, each group in roster order; dead nodes excluded.
// The ordering is what keeps a freshly constructed coordinator's replica
// sets identical to the old sequential-probe construction, so the
// conformance guarantee is ordering-stable.
func TestProberOwners(t *testing.T) {
	a := proxiedNode(t, "k0", "k1")
	b := proxiedNode(t, "k0")
	c := proxiedNode(t, "k1")
	cl := fastClient(Options{Retries: 0})
	p := NewProber(cl, []string{a.URL(), b.URL(), c.URL()}, ProberOptions{Interval: -1, DeadAfter: 2}, nil)
	ctx := context.Background()

	p.ProbeAll(ctx)
	owners := p.Owners([]string{"k0", "k1"})
	if got, want := owners["k0"], []string{a.URL(), b.URL()}; !equalStrings(got, want) {
		t.Fatalf("k0 owners %v, want %v (roster order)", got, want)
	}
	if got, want := owners["k1"], []string{a.URL(), c.URL()}; !equalStrings(got, want) {
		t.Fatalf("k1 owners %v, want %v (roster order)", got, want)
	}

	// One failure demotes a to degraded: it must drop behind b but stay
	// routable.
	a.SetDown(true)
	p.ProbeAll(ctx)
	if got, want := p.Owners([]string{"k0"})["k0"], []string{b.URL(), a.URL()}; !equalStrings(got, want) {
		t.Fatalf("degraded owners %v, want %v (healthy first)", got, want)
	}

	// The second failure kills it: its shards fail over entirely.
	p.ProbeAll(ctx)
	owners = p.Owners([]string{"k0", "k1"})
	if got, want := owners["k0"], []string{b.URL()}; !equalStrings(got, want) {
		t.Fatalf("post-death k0 owners %v, want %v", got, want)
	}
	if got, want := owners["k1"], []string{c.URL()}; !equalStrings(got, want) {
		t.Fatalf("post-death k1 owners %v, want %v", got, want)
	}

	// Recovery readopts it at healthy preference.
	a.SetDown(false)
	p.ProbeAll(ctx)
	if got, want := p.Owners([]string{"k0"})["k0"], []string{a.URL(), b.URL()}; !equalStrings(got, want) {
		t.Fatalf("readopted owners %v, want %v", got, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestProberProbeErrors pins the "url: error" shape and roster order the
// coordinator's probeSuffix joins into construction failures.
func TestProberProbeErrors(t *testing.T) {
	good := proxiedNode(t, "k0")
	bad := proxiedNode(t, "k1")
	bad.SetDown(true)
	cl := fastClient(Options{Retries: 0})
	p := NewProber(cl, []string{good.URL(), bad.URL()}, ProberOptions{Interval: -1}, nil)
	p.ProbeAll(context.Background())

	errs := p.ProbeErrors()
	if len(errs) != 1 {
		t.Fatalf("ProbeErrors() = %v, want exactly the dead node's", errs)
	}
	if !strings.HasPrefix(errs[0].Error(), bad.URL()+": ") {
		t.Fatalf("probe error %q must lead with the node URL", errs[0])
	}
}

// TestProberOnChange pins that every sweep and every triggered probe runs
// the onChange callback — the hook the coordinator's replica-set refresh
// hangs off.
func TestProberOnChange(t *testing.T) {
	px := proxiedNode(t, "k0")
	changes := 0
	cl := fastClient(Options{})
	p := NewProber(cl, []string{px.URL()}, ProberOptions{Interval: -1}, func() { changes++ })
	p.ProbeAll(context.Background())
	p.ProbeAll(context.Background())
	if changes != 2 {
		t.Fatalf("onChange ran %d times for 2 sweeps, want 2", changes)
	}
	if p.Sweeps() != 2 {
		t.Fatalf("Sweeps() = %d, want 2", p.Sweeps())
	}
}

// TestProberQuantilesOrdered sanity-checks the latency accounting: after
// a run of successful probes the quantiles are populated and ordered.
func TestProberQuantilesOrdered(t *testing.T) {
	px := proxiedNode(t, "k0")
	cl := fastClient(Options{})
	p := NewProber(cl, []string{px.URL()}, ProberOptions{Interval: -1, Window: 8}, nil)
	for i := 0; i < 12; i++ { // overfill the window to exercise the ring wrap
		p.ProbeAll(context.Background())
	}
	h := stateOf(t, p, px.URL())
	if h.Probes != 12 {
		t.Fatalf("Probes = %d, want 12", h.Probes)
	}
	if h.LatencyP50 <= 0 || h.LatencyP50 > h.LatencyP90 || h.LatencyP90 > h.LatencyP99 {
		t.Fatalf("quantiles out of order: p50 %v p90 %v p99 %v", h.LatencyP50, h.LatencyP90, h.LatencyP99)
	}
}

// TestProberBackgroundLoop exercises Start/Stop with a real ticker: the
// loop sweeps on its own, reacts to Kick, and Stop terminates it.
func TestProberBackgroundLoop(t *testing.T) {
	px := proxiedNode(t, "k0")
	cl := fastClient(Options{})
	p := NewProber(cl, []string{px.URL()}, ProberOptions{Interval: 2 * time.Millisecond}, nil)
	p.Start()
	deadline := time.Now().Add(10 * time.Second)
	for p.Sweeps() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never swept twice")
		}
		time.Sleep(time.Millisecond)
	}
	p.Kick(px.URL())
	p.Stop()
	p.Stop() // idempotent
	if h := stateOf(t, p, px.URL()); h.State != NodeHealthy {
		t.Fatalf("looped prober left node %v, want healthy", h.State)
	}
}

// TestProberKickWithoutLoop pins that Kick on a loop-disabled prober is a
// dropped no-op — deterministic tests must never get surprise probes.
func TestProberKickWithoutLoop(t *testing.T) {
	px := proxiedNode(t, "k0")
	cl := fastClient(Options{})
	p := NewProber(cl, []string{px.URL()}, ProberOptions{Interval: -1}, nil)
	p.Start() // no-op: interval disabled
	for i := 0; i < 100; i++ {
		p.Kick(px.URL()) // must never block, even far past the buffer
	}
	if h := stateOf(t, p, px.URL()); h.Probes != 0 {
		t.Fatalf("disabled prober ran %d probes off Kick, want 0", h.Probes)
	}
	p.Stop()
}
