package remote

import (
	"fmt"
	"path/filepath"

	"heterosw/internal/seqdb/index"
)

// SplitIndex cuts a parent .swdb index into n shard .swdb files under dir
// (named prefix-00.swdb, prefix-01.swdb, ...) and returns the manifest
// describing the cut. Shards are equal residue fractions dealt greedily in
// processing order (seqdb.SplitN), so every shard inherits the parent's
// length distribution. Each written shard is reopened to obtain its
// durable checksum key — the same key the serving node will advertise —
// which both validates the write round-trips and ties the manifest to the
// bytes on disk rather than to this process's in-memory state.
//
// The caller persists the manifest with WriteManifest.
func SplitIndex(parentPath string, n int, dir, prefix string) (*Manifest, error) {
	if n < 2 {
		return nil, fmt.Errorf("remote: cannot split into %d shards (want at least 2)", n)
	}
	ix, err := index.Open(parentPath)
	if err != nil {
		return nil, err
	}
	db := ix.Database()
	if db.Len() < n {
		return nil, fmt.Errorf("remote: cannot split %d sequences into %d shards", db.Len(), n)
	}
	fracs := make([]float64, n)
	for i := range fracs {
		fracs[i] = 1 / float64(n)
	}
	shards, idx := db.SplitN(fracs)
	m := &Manifest{
		Version:   ManifestVersion,
		Parent:    ix.Key(),
		Alphabet:  db.Alphabet().Name(),
		Sequences: db.Len(),
		Residues:  db.Residues(),
	}
	for i, sdb := range shards {
		file := fmt.Sprintf("%s-%02d.swdb", prefix, i)
		path := filepath.Join(dir, file)
		if _, err := index.WriteFile(path, sdb); err != nil {
			return nil, fmt.Errorf("remote: writing shard %d: %w", i, err)
		}
		six, err := index.Open(path)
		if err != nil {
			return nil, fmt.Errorf("remote: reopening shard %d: %w", i, err)
		}
		m.Shards = append(m.Shards, ShardManifest{
			Key:         six.Key(),
			File:        file,
			Sequences:   sdb.Len(),
			Residues:    sdb.Residues(),
			ParentIndex: idx[i],
		})
	}
	return m, nil
}
