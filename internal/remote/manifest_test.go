package remote

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validManifest() *Manifest {
	return &Manifest{
		Version:   ManifestVersion,
		Parent:    "swdb:0a0b0c0d-4-40",
		Alphabet:  "protein",
		Sequences: 4,
		Residues:  40,
		Shards: []ShardManifest{
			{Key: "swdb:11111111-2-22", File: "db-00.swdb", Sequences: 2, Residues: 22, ParentIndex: []int{0, 3}},
			{Key: "swdb:22222222-2-18", File: "db-01.swdb", Sequences: 2, Residues: 18, ParentIndex: []int{2, 1}},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.manifest.json")
	m := validManifest()
	if err := WriteManifest(path, m); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if got.Parent != m.Parent || len(got.Shards) != 2 || got.Shards[1].ParentIndex[1] != 1 {
		t.Fatalf("round trip mangled the manifest: %+v", got)
	}
	// Atomic write must leave no temp litter behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".manifest-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestManifestValidate(t *testing.T) {
	mutate := func(f func(*Manifest)) *Manifest {
		m := validManifest()
		f(m)
		return m
	}
	cases := []struct {
		name string
		m    *Manifest
		want string // substring of the expected error
	}{
		{"wrong version", mutate(func(m *Manifest) { m.Version = 2 }), "version"},
		{"no parent", mutate(func(m *Manifest) { m.Parent = "" }), "parent"},
		{"no shard key", mutate(func(m *Manifest) { m.Shards[0].Key = "" }), "no key"},
		{"count mismatch", mutate(func(m *Manifest) { m.Shards[0].Sequences = 3 }), "maps"},
		{"index out of range", mutate(func(m *Manifest) { m.Shards[0].ParentIndex = []int{0, 4} }), "cover"},
		{"duplicate index", mutate(func(m *Manifest) { m.Shards[1].ParentIndex = []int{0, 1} }), "cover"},
		{"incomplete cover", mutate(func(m *Manifest) {
			m.Shards[1].ParentIndex = []int{2}
			m.Shards[1].Sequences = 1
		}), "cover"},
		{"residue mismatch", mutate(func(m *Manifest) { m.Shards[1].Residues = 17 }), "residues"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.m.Validate()
			if err == nil {
				t.Fatal("want validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := validManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

func TestWriteManifestRejectsInvalid(t *testing.T) {
	m := validManifest()
	m.Parent = ""
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteManifest(path, m); err == nil {
		t.Fatal("want error writing an invalid manifest")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("invalid manifest must not reach disk")
	}
}
