package remote

import "sync"

// ReplicaSet is the mutable list of node URLs serving one shard. A
// Backend reads a snapshot per request; the coordinator's health prober
// rewrites the list as nodes die, recover or start reporting the shard —
// that swap is the whole failover mechanism, so in-flight requests keep
// the replica order they started with and never observe a half-written
// list.
type ReplicaSet struct {
	mu sync.Mutex
	//sw:guardedBy(mu)
	urls []string
}

// NewReplicaSet builds a replica set over an initial URL list.
func NewReplicaSet(urls []string) *ReplicaSet {
	r := &ReplicaSet{}
	r.Set(urls)
	return r
}

// URLs returns a snapshot of the current replica URLs. The returned slice
// is the caller's to keep: Set never mutates a previously returned slice.
func (r *ReplicaSet) URLs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.urls
}

// Set replaces the replica list atomically. The slice is copied, so the
// caller may reuse its argument.
func (r *ReplicaSet) Set(urls []string) {
	cp := append([]string(nil), urls...)
	r.mu.Lock()
	r.urls = cp
	r.mu.Unlock()
}
