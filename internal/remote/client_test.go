package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastClient(opt Options) *Client {
	if opt.Timeout == 0 {
		opt.Timeout = 5 * time.Second
	}
	if opt.Backoff == 0 {
		opt.Backoff = time.Millisecond
	}
	return NewClient(opt)
}

func searchReq() *ShardSearchRequest {
	return &ShardSearchRequest{Shard: "swdb:deadbeef-3-10", ID: "q", Codes: []byte{1, 2, 3}}
}

// TestRetry503ThenSuccess pins the core retry contract: a 503 answer is
// retried (with backoff) and the eventual success is returned.
func TestRetry503ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"draining"}`)
			return
		}
		fmt.Fprintf(w, `{"scores":[7,8,9]}`)
	}))
	defer srv.Close()

	c := fastClient(Options{Retries: 2})
	resp, err := c.ShardSearch(context.Background(), []string{srv.URL}, searchReq())
	if err != nil {
		t.Fatalf("ShardSearch: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (503 then success)", got)
	}
	if len(resp.Scores) != 3 || resp.Scores[0] != 7 {
		t.Fatalf("unexpected scores %v", resp.Scores)
	}
}

// TestNoRetryOnTerminalStatus pins the other half of the contract: 400,
// 404 and 500 answers are terminal — exactly one request reaches the
// node, and the status comes back in a StatusError.
func TestNoRetryOnTerminalStatus(t *testing.T) {
	for _, status := range []int{http.StatusBadRequest, http.StatusNotFound, http.StatusInternalServerError} {
		t.Run(fmt.Sprint(status), func(t *testing.T) {
			var calls atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.WriteHeader(status)
				fmt.Fprintf(w, `{"error":"nope"}`)
			}))
			defer srv.Close()

			c := fastClient(Options{Retries: 3})
			_, err := c.ShardSearch(context.Background(), []string{srv.URL}, searchReq())
			if err == nil {
				t.Fatal("want error")
			}
			var se *StatusError
			if !errors.As(err, &se) || se.Code != status {
				t.Fatalf("want StatusError %d, got %v", status, err)
			}
			if got := calls.Load(); got != 1 {
				t.Fatalf("server saw %d calls, want exactly 1 for status %d", got, status)
			}
		})
	}
}

// TestRetriesExhausted pins that a persistently-503 node fails after
// exactly 1+Retries attempts with the last failure wrapped.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := fastClient(Options{Retries: 2})
	_, err := c.ShardSearch(context.Background(), []string{srv.URL}, searchReq())
	if err == nil {
		t.Fatal("want error")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("want wrapped 503, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestRetriesRotateReplicas pins that attempt a routes to urls[a mod n]:
// a dead primary with a healthy second replica succeeds on the first
// retry.
func TestRetriesRotateReplicas(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"scores":[1]}`)
	}))
	defer good.Close()
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close() // connection refused from now on

	c := fastClient(Options{Retries: 1})
	resp, err := c.ShardSearch(context.Background(), []string{dead.URL, good.URL}, searchReq())
	if err != nil {
		t.Fatalf("ShardSearch: %v", err)
	}
	if len(resp.Scores) != 1 {
		t.Fatalf("unexpected scores %v", resp.Scores)
	}
}

// TestBackoffHonoursContext pins that a caller context cancelled during
// the backoff sleep aborts the retry loop promptly with the context's
// error.
func TestBackoffHonoursContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	c := fastClient(Options{Retries: 5, Backoff: time.Hour})
	start := time.Now()
	_, err := c.ShardSearch(ctx, []string{srv.URL}, searchReq())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v to take effect", elapsed)
	}
}

// TestHedgeWinnerCancelsLoser pins the hedging contract end to end: a
// slow primary trips the hedge delay, the replica's answer wins, and the
// primary's in-flight request is cancelled (observed server-side via its
// request context) rather than left running.
func TestHedgeWinnerCancelsLoser(t *testing.T) {
	primaryCancelled := make(chan struct{})
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: net/http only watches for client
		// disconnects once the request body is consumed, exactly as the
		// real node handlers do by decoding it.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // stall until the winner cancels us
		close(primaryCancelled)
	}))
	defer primary.Close()
	hedge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"scores":[42]}`)
	}))
	defer hedge.Close()

	c := fastClient(Options{Retries: -1, HedgeDelay: 5 * time.Millisecond})
	resp, err := c.ShardSearch(context.Background(), []string{primary.URL, hedge.URL}, searchReq())
	if err != nil {
		t.Fatalf("ShardSearch: %v", err)
	}
	if len(resp.Scores) != 1 || resp.Scores[0] != 42 {
		t.Fatalf("want the hedge replica's answer, got %v", resp.Scores)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing primary request was never cancelled")
	}
}

// TestHedgePromotesOnPrimaryFailure pins that a primary failing before
// the hedge timer fires launches the hedge immediately instead of
// sitting out the delay.
func TestHedgePromotesOnPrimaryFailure(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close()
	hedge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"scores":[5]}`)
	}))
	defer hedge.Close()

	c := fastClient(Options{Retries: -1, HedgeDelay: time.Hour})
	start := time.Now()
	resp, err := c.ShardSearch(context.Background(), []string{dead.URL, hedge.URL}, searchReq())
	if err != nil {
		t.Fatalf("ShardSearch: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("promotion waited %v; should not sit out the hedge delay", elapsed)
	}
	if len(resp.Scores) != 1 || resp.Scores[0] != 5 {
		t.Fatalf("unexpected scores %v", resp.Scores)
	}
}

// TestHedgeBothFail pins that a hedged attempt with both requests failed
// reports both failures, and that the retry loop still classifies it.
func TestHedgeBothFail(t *testing.T) {
	a := httptest.NewServer(http.HandlerFunc(nil))
	a.Close()
	b := httptest.NewServer(http.HandlerFunc(nil))
	b.Close()

	c := fastClient(Options{Retries: -1, HedgeDelay: time.Millisecond})
	_, err := c.ShardSearch(context.Background(), []string{a.URL, b.URL}, searchReq())
	if err == nil {
		t.Fatal("want error when both replicas are down")
	}
}

// TestRetryableClassification pins the status classification the whole
// retry/hedging policy keys off.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&StatusError{Code: http.StatusServiceUnavailable}, true},
		{&StatusError{Code: http.StatusInternalServerError}, false},
		{&StatusError{Code: http.StatusBadRequest}, false},
		{&StatusError{Code: http.StatusNotFound}, false},
		{&StatusError{Code: http.StatusRequestTimeout}, false},
		{fmt.Errorf("wrapped: %w", &StatusError{Code: http.StatusServiceUnavailable}), true},
		{fmt.Errorf("wrapped: %w", &StatusError{Code: http.StatusBadRequest}), false},
		{errors.New("connection refused"), true}, // transport-level: retryable
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %t, want %t", tc.err, got, tc.want)
		}
	}
}

// TestNoReplicas pins the degenerate call.
func TestNoReplicas(t *testing.T) {
	c := fastClient(Options{})
	if _, err := c.ShardSearch(context.Background(), nil, searchReq()); err == nil {
		t.Fatal("want error for zero replica URLs")
	}
}
