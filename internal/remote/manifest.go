package remote

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// ShardManifest describes one shard of a cut.
type ShardManifest struct {
	// Key is the shard's durable content identity: the checksum key of
	// its .swdb file (index.Key). Nodes advertise it on /shards and the
	// coordinator routes by it.
	Key string `json:"key"`
	// File is the shard's .swdb filename, relative to the manifest.
	File string `json:"file"`
	// Sequences and Residues size the shard.
	Sequences int   `json:"sequences"`
	Residues  int64 `json:"residues"`
	// ParentIndex maps the shard's caller order back to the parent
	// database: parent index ParentIndex[j] is the shard's j-th sequence.
	// Replaying it through seqdb.Select reconstructs the shard exactly.
	ParentIndex []int `json:"parent_index"`
}

// Manifest records a shard cut of one parent .swdb index: which shards
// exist, their durable checksum keys, and how each maps back into the
// parent — everything a coordinator needs to merge per-shard scores into
// parent order without trusting file paths or node configuration.
type Manifest struct {
	Version int `json:"version"`
	// Parent is the parent index's checksum key; a coordinator refuses to
	// serve a database whose key disagrees.
	Parent string `json:"parent"`
	// Alphabet names the residue alphabet ("protein" or "dna").
	Alphabet string `json:"alphabet"`
	// Sequences and Residues size the parent.
	Sequences int   `json:"sequences"`
	Residues  int64 `json:"residues"`
	// Shards lists the cut, in cut order.
	Shards []ShardManifest `json:"shards"`
}

// Validate checks the manifest's internal consistency: a known version,
// non-empty keys, and shard ParentIndex lists that cover the parent
// exactly (every parent index in exactly one shard). A manifest that
// fails Validate can silently mis-merge scores, so every loader runs it.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("remote: manifest version %d (want %d)", m.Version, ManifestVersion)
	}
	if m.Parent == "" {
		return fmt.Errorf("remote: manifest has no parent key")
	}
	seen := make([]bool, m.Sequences)
	covered := 0
	var residues int64
	for i, sh := range m.Shards {
		if sh.Key == "" {
			return fmt.Errorf("remote: shard %d has no key", i)
		}
		if len(sh.ParentIndex) != sh.Sequences {
			return fmt.Errorf("remote: shard %d (%s) declares %d sequences but maps %d parent indices",
				i, sh.Key, sh.Sequences, len(sh.ParentIndex))
		}
		for _, pi := range sh.ParentIndex {
			if pi < 0 || pi >= m.Sequences || seen[pi] {
				return fmt.Errorf("remote: shard %d (%s) maps parent index %d outside a one-to-one cover of [0,%d)",
					i, sh.Key, pi, m.Sequences)
			}
			seen[pi] = true
			covered++
		}
		residues += sh.Residues
	}
	if covered != m.Sequences {
		return fmt.Errorf("remote: shards cover %d of %d parent sequences", covered, m.Sequences)
	}
	if residues != m.Residues {
		return fmt.Errorf("remote: shard residues sum to %d, parent holds %d", residues, m.Residues)
	}
	return nil
}

// ReadManifest loads and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("remote: %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("remote: %s: %w", path, err)
	}
	return &m, nil
}

// WriteManifest validates and writes a manifest, atomically (temp file +
// rename) so a crashed write never leaves a half-manifest a coordinator
// could load.
func WriteManifest(path string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
