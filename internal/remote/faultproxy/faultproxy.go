// Package faultproxy is a deterministic in-process fault-injection HTTP
// proxy for the distributed layer's tests: it sits between a coordinator
// (or prober, or bare client) and one shard node, applying a scripted
// schedule of faults — drop, delay, half-close, 503 burst, byte-truncate
// — keyed purely on the request attempt number. Nothing is randomised and
// nothing depends on wall-clock timing, so a schedule replays identically
// under -race, -count=20 and loaded CI runners.
//
// The script is a step list: request n (0-based, counting only requests
// the filter matches) gets Steps[n]; requests beyond the script pass
// through untouched. SetDown simulates whole-node death independently of
// the script — every request is dropped at the TCP level and the script
// position does not advance — so a test can kill and revive a node
// without rebinding ports or disturbing its schedule.
package faultproxy

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Action is one scripted fault.
type Action int

const (
	// Pass forwards the request untouched.
	Pass Action = iota
	// Drop closes the client connection without reading or answering:
	// the client sees a transport error (retryable).
	Drop
	// Delay waits Step.Wait, then forwards. With Wait beyond the
	// client's per-attempt timeout this is the deterministic "slow
	// replica"; below it, a latency spike the request survives.
	Delay
	// HalfClose forwards the request to the upstream — its side effects
	// happen — then closes the client connection before writing any
	// response byte: the client's request succeeded server-side but
	// looks like a transport failure (retryable), the classic
	// ambiguous-failure case.
	HalfClose
	// Unavailable answers 503 without contacting the upstream — a
	// draining node (retryable by the wire contract).
	Unavailable
	// Truncate forwards the request, then delivers the response with its
	// ORIGINAL Content-Length but only Step.Bytes body bytes before
	// closing. The client's body read fails with unexpected EOF — a
	// retryable transport error — rather than delivering short JSON that
	// would fail terminally at the unmarshal layer.
	Truncate
)

// String names the action for schedule logs and test failures.
func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case HalfClose:
		return "half-close"
	case Unavailable:
		return "503"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Step is one scheduled fault. Wait applies to Delay; Bytes to Truncate.
type Step struct {
	Act   Action
	Wait  time.Duration
	Bytes int
}

// Proxy is one node's fault injector. Zero value is not usable; build
// with New.
type Proxy struct {
	upstream  string
	ln        net.Listener
	srv       *http.Server
	transport *http.Transport

	mu sync.Mutex
	//sw:guardedBy(mu)
	steps []Step
	//sw:guardedBy(mu)
	pos int
	//sw:guardedBy(mu)
	down bool
	//sw:guardedBy(mu)
	match func(*http.Request) bool
	//sw:guardedBy(mu)
	applied []Action
}

// New starts a proxy in front of the upstream base URL (e.g. an
// httptest.Server.URL), listening on a loopback port. With no script
// programmed every request passes through.
func New(upstream string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		upstream:  upstream,
		ln:        ln,
		transport: &http.Transport{},
	}
	p.srv = &http.Server{Handler: http.HandlerFunc(p.handle)}
	go func() { _ = p.srv.Serve(ln) }()
	return p, nil
}

// URL is the proxy's base URL; clients use it in place of the upstream's.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// Close stops the listener and releases idle upstream connections.
func (p *Proxy) Close() {
	_ = p.srv.Close()
	p.transport.CloseIdleConnections()
}

// Program installs a fault schedule and resets the attempt counter and
// action log: matching request n gets steps[n]; later requests pass.
func (p *Proxy) Program(steps ...Step) {
	p.mu.Lock()
	p.steps = append([]Step(nil), steps...)
	p.pos = 0
	p.applied = nil
	p.mu.Unlock()
}

// Match restricts the schedule to requests the filter accepts (e.g. only
// /shard/search, leaving probe traffic clean); nil matches everything.
// Non-matching requests pass through without consuming a step.
func (p *Proxy) Match(f func(*http.Request) bool) {
	p.mu.Lock()
	p.match = f
	p.mu.Unlock()
}

// SetDown marks the node dead (every request dropped, script untouched)
// or alive again.
func (p *Proxy) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

// Attempts counts the matching requests that consumed schedule positions
// since the last Program.
func (p *Proxy) Attempts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pos
}

// Log returns the actions applied to matching requests since the last
// Program, in arrival order.
func (p *Proxy) Log() []Action {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Action(nil), p.applied...)
}

// next resolves the step for one inbound request.
func (p *Proxy) next(r *http.Request) Step {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return Step{Act: Drop}
	}
	if p.match != nil && !p.match(r) {
		return Step{Act: Pass}
	}
	step := Step{Act: Pass}
	if p.pos < len(p.steps) {
		step = p.steps[p.pos]
	}
	p.pos++
	p.applied = append(p.applied, step.Act)
	return step
}

func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	step := p.next(r)
	switch step.Act {
	case Drop:
		p.abort(w)
	case Unavailable:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"faultproxy: scripted unavailability"}`)
	case Delay:
		select {
		case <-time.After(step.Wait):
		case <-r.Context().Done():
			p.abort(w)
			return
		}
		p.forward(w, r)
	case Pass:
		p.forward(w, r)
	case HalfClose:
		resp, err := p.roundTrip(r)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		p.abort(w)
	case Truncate:
		resp, err := p.roundTrip(r)
		if err != nil {
			p.abort(w)
			return
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			p.abort(w)
			return
		}
		p.truncate(w, resp, body, step.Bytes)
	}
}

// roundTrip replays the inbound request against the upstream.
func (p *Proxy) roundTrip(r *http.Request) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.upstream+r.URL.RequestURI(), r.Body)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	req.ContentLength = r.ContentLength
	return p.transport.RoundTrip(req)
}

// forward proxies the request and relays the full response.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request) {
	resp, err := p.roundTrip(r)
	if err != nil {
		// The upstream is genuinely gone; surface it as the same torn
		// connection a Drop produces, so the client classification is
		// uniform (transport error, retryable).
		p.abort(w)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// abort tears the client connection down without an HTTP response.
func (p *Proxy) abort(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// Should not happen on HTTP/1.1; panicking with ErrAbortHandler
		// still kills the connection without a response.
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	conn.Close()
}

// truncate writes the response status and headers with the ORIGINAL
// Content-Length, delivers only n body bytes, and closes the connection:
// the client's body read dies with unexpected EOF.
func (p *Proxy) truncate(w http.ResponseWriter, resp *http.Response, body []byte, n int) {
	if n > len(body) {
		n = len(body)
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	defer conn.Close()
	fmt.Fprintf(bufrw, "HTTP/1.1 %s\r\n", resp.Status)
	ct := resp.Header.Get("Content-Type")
	if ct != "" {
		fmt.Fprintf(bufrw, "Content-Type: %s\r\n", ct)
	}
	fmt.Fprintf(bufrw, "Content-Length: %d\r\nConnection: close\r\n\r\n", len(body))
	_, _ = bufrw.Write(body[:n])
	_ = bufrw.Flush()
}
