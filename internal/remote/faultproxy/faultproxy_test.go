package faultproxy

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The proxy's own contract tests: each scripted action must produce, at
// the client, exactly the failure class the distributed layer's retry
// policy expects — and the schedule must advance only on matching
// requests, so a programmed test never races its own probe traffic.

// startUpstream serves a fixed JSON body on every path.
func startUpstream(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"scores":[1,2,3]}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func startProxy(t *testing.T, upstream string) *Proxy {
	t.Helper()
	p, err := New(upstream)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// get issues one GET through a fresh connection (no keep-alive reuse, so
// a prior torn connection cannot poison the next request).
func get(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	tr := &http.Transport{DisableKeepAlives: true}
	defer tr.CloseIdleConnections()
	c := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	return resp, body, rerr
}

// TestScheduleSequence pins the core mechanism: matching request n gets
// step n, requests beyond the script pass, and the log records the
// applied actions.
func TestScheduleSequence(t *testing.T) {
	up := startUpstream(t)
	p := startProxy(t, up.URL)
	p.Program(Step{Act: Unavailable}, Step{Act: Pass})

	resp, _, err := get(t, p.URL()+"/shard/search")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("step 0: status %v err %v, want 503", resp, err)
	}
	for i := 0; i < 2; i++ { // step 1 (Pass) and beyond-script passthrough
		resp, body, err := get(t, p.URL()+"/shard/search")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %v err %v, want 200", i+1, resp, err)
		}
		if !strings.Contains(string(body), `"scores"`) {
			t.Fatalf("request %d: body %q lost the upstream payload", i+1, body)
		}
	}
	if got := p.Attempts(); got != 3 {
		t.Fatalf("Attempts() = %d, want 3", got)
	}
	if log := p.Log(); len(log) != 3 || log[0] != Unavailable || log[1] != Pass || log[2] != Pass {
		t.Fatalf("Log() = %v, want [503 pass pass]", log)
	}
}

// TestDropIsTransportError pins that Drop (and a down node) surface as a
// transport error, not any HTTP response.
func TestDropIsTransportError(t *testing.T) {
	up := startUpstream(t)
	p := startProxy(t, up.URL)
	p.Program(Step{Act: Drop})

	if _, _, err := get(t, p.URL()+"/x"); err == nil {
		t.Fatal("Drop must surface as a transport error")
	}
}

// TestTruncateIsBodyReadError pins the Truncate contract: the client gets
// the original status and Content-Length but a short body, so the failure
// lands in the body read (retryable transport class), never in a JSON
// decoder fed complete-looking bytes.
func TestTruncateIsBodyReadError(t *testing.T) {
	up := startUpstream(t)
	p := startProxy(t, up.URL)
	p.Program(Step{Act: Truncate, Bytes: 5})

	resp, body, err := get(t, p.URL()+"/x")
	if resp == nil {
		t.Fatalf("Truncate must deliver headers, got transport error %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want the upstream's 200", resp.StatusCode)
	}
	if err == nil {
		t.Fatalf("body read must fail short, got %d clean bytes", len(body))
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want unexpected EOF, got %v", err)
	}
	if len(body) != 5 {
		t.Fatalf("delivered %d bytes before the cut, want 5", len(body))
	}
}

// TestHalfCloseReachesUpstream pins the ambiguous-failure case: the
// upstream sees (and completes) the request, but the client sees only a
// torn connection.
func TestHalfCloseReachesUpstream(t *testing.T) {
	hits := 0
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, `{"ok":true}`)
	}))
	defer up.Close()
	p := startProxy(t, up.URL)
	p.Program(Step{Act: HalfClose})

	if _, _, err := get(t, p.URL()+"/x"); err == nil {
		t.Fatal("HalfClose must look like a transport error to the client")
	}
	if hits != 1 {
		t.Fatalf("upstream saw %d requests, want 1 (the side effect happened)", hits)
	}
}

// TestSetDownPreservesSchedule pins the kill/revive contract: a down node
// drops everything without consuming script positions, so the programmed
// schedule resumes exactly where it was on revival.
func TestSetDownPreservesSchedule(t *testing.T) {
	up := startUpstream(t)
	p := startProxy(t, up.URL)
	p.Program(Step{Act: Unavailable})

	p.SetDown(true)
	for i := 0; i < 3; i++ {
		if _, _, err := get(t, p.URL()+"/x"); err == nil {
			t.Fatalf("down request %d: want transport error", i)
		}
	}
	if got := p.Attempts(); got != 0 {
		t.Fatalf("down requests consumed %d schedule positions, want 0", got)
	}
	p.SetDown(false)
	resp, _, err := get(t, p.URL()+"/x")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("revived step 0: status %v err %v, want the scripted 503", resp, err)
	}
}

// TestMatchFilterSkipsOtherPaths pins that non-matching traffic (probes)
// passes through without consuming the schedule.
func TestMatchFilterSkipsOtherPaths(t *testing.T) {
	up := startUpstream(t)
	p := startProxy(t, up.URL)
	p.Match(func(r *http.Request) bool { return r.URL.Path == "/shard/search" })
	p.Program(Step{Act: Drop})

	resp, _, err := get(t, p.URL()+"/shards")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("probe through a programmed proxy: status %v err %v, want clean 200", resp, err)
	}
	if got := p.Attempts(); got != 0 {
		t.Fatalf("probe consumed %d schedule positions, want 0", got)
	}
	if _, _, err := get(t, p.URL()+"/shard/search"); err == nil {
		t.Fatal("matching request must hit the scripted Drop")
	}
	if got := p.Attempts(); got != 1 {
		t.Fatalf("Attempts() = %d after the matching request, want 1", got)
	}
}

// TestDelayForwardsAfterWait pins that a sub-timeout Delay is survivable:
// the request completes with the upstream's answer.
func TestDelayForwardsAfterWait(t *testing.T) {
	up := startUpstream(t)
	p := startProxy(t, up.URL)
	p.Program(Step{Act: Delay, Wait: 10 * time.Millisecond})

	start := time.Now()
	resp, _, err := get(t, p.URL()+"/x")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delayed request: status %v err %v, want 200", resp, err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("response arrived before the scripted delay elapsed")
	}
}
