package remote

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"heterosw/internal/remote/faultproxy"
)

// The client half of the fault-injection matrix: every scripted fault
// class must be classified retryable and survived within the retry
// budget, and the OnFailure hook must see each retryable failure with
// the URL it struck.

// searchUpstream answers /shard/search with a fixed score body.
func searchUpstream(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"scores":[7,8,9]}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func faultedClientProxy(t *testing.T) *faultproxy.Proxy {
	t.Helper()
	up := searchUpstream(t)
	p, err := faultproxy.New(up.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestClientSurvivesScriptedFaults drives one scripted fault of each
// class ahead of a clean pass: every attempt must be classified
// retryable, and the final retry must deliver the upstream's answer
// unchanged. The schedule is attempt-keyed, so the test replays
// identically under -race and -count=20.
func TestClientSurvivesScriptedFaults(t *testing.T) {
	px := faultedClientProxy(t)
	px.Program(
		faultproxy.Step{Act: faultproxy.Unavailable},
		faultproxy.Step{Act: faultproxy.Drop},
		faultproxy.Step{Act: faultproxy.Truncate, Bytes: 4},
		faultproxy.Step{Act: faultproxy.HalfClose},
		faultproxy.Step{Act: faultproxy.Pass},
	)
	c := fastClient(Options{Retries: 4})
	resp, err := c.ShardSearch(context.Background(), []string{px.URL()}, searchReq())
	if err != nil {
		t.Fatalf("ShardSearch through the fault schedule: %v", err)
	}
	if len(resp.Scores) != 3 || resp.Scores[0] != 7 {
		t.Fatalf("scores %v survived the faults wrong", resp.Scores)
	}
	want := []faultproxy.Action{faultproxy.Unavailable, faultproxy.Drop, faultproxy.Truncate, faultproxy.HalfClose, faultproxy.Pass}
	log := px.Log()
	if len(log) != len(want) {
		t.Fatalf("proxy log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("proxy log %v, want %v", log, want)
		}
	}
}

// TestClientFailsUnderBudget pins that the same schedule with one fewer
// retry surfaces the last failure instead of the answer — the budget is
// real, not advisory.
func TestClientFailsUnderBudget(t *testing.T) {
	px := faultedClientProxy(t)
	px.Program(
		faultproxy.Step{Act: faultproxy.Unavailable},
		faultproxy.Step{Act: faultproxy.Drop},
		faultproxy.Step{Act: faultproxy.Pass},
	)
	c := fastClient(Options{Retries: 1})
	if _, err := c.ShardSearch(context.Background(), []string{px.URL()}, searchReq()); err == nil {
		t.Fatal("two scripted faults must exhaust a 1-retry budget")
	}
	if got := px.Attempts(); got != 2 {
		t.Fatalf("proxy saw %d attempts, want exactly 2 (1 + 1 retry)", got)
	}
}

// TestOnFailureHook pins the health-feedback contract: every retryable
// attempt failure invokes OnFailure with the URL the attempt targeted,
// terminal failures do not, and the final success never does.
func TestOnFailureHook(t *testing.T) {
	px := faultedClientProxy(t)
	px.Program(
		faultproxy.Step{Act: faultproxy.Unavailable},
		faultproxy.Step{Act: faultproxy.Drop},
		faultproxy.Step{Act: faultproxy.Pass},
	)
	var failed []string
	c := fastClient(Options{
		Retries:   2,
		OnFailure: func(url string, err error) { failed = append(failed, url) },
	})
	if _, err := c.ShardSearch(context.Background(), []string{px.URL()}, searchReq()); err != nil {
		t.Fatalf("ShardSearch: %v", err)
	}
	if len(failed) != 2 || failed[0] != px.URL() || failed[1] != px.URL() {
		t.Fatalf("OnFailure saw %v, want the proxy URL twice", failed)
	}
}

// TestOnFailureSkipsTerminal pins the other half: a terminal status (400)
// aborts the retry loop without notifying OnFailure — the node answered,
// it is not unhealthy.
func TestOnFailureSkipsTerminal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad request"}`)
	}))
	defer srv.Close()
	calls := 0
	c := fastClient(Options{
		Retries:   3,
		OnFailure: func(url string, err error) { calls++ },
	})
	_, err := c.ShardSearch(context.Background(), []string{srv.URL}, searchReq())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("want terminal 400, got %v", err)
	}
	if calls != 0 {
		t.Fatalf("OnFailure ran %d times for a terminal failure, want 0", calls)
	}
}

// TestEmptyReplicasIsTypedRetryable pins the uncovered-shard error: a
// request against zero replicas fails with ErrNoReplicas, classified
// retryable, so callers keep retrying while the prober refills the set.
func TestEmptyReplicasIsTypedRetryable(t *testing.T) {
	c := fastClient(Options{})
	_, err := c.ShardSearch(context.Background(), nil, searchReq())
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("want ErrNoReplicas, got %v", err)
	}
	if !Retryable(err) {
		t.Fatalf("ErrNoReplicas must classify retryable, got terminal: %v", err)
	}
}
