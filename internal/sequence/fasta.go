package sequence

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"heterosw/internal/alphabet"
)

// ReadFASTA parses all records from a FASTA stream under the protein
// alphabet. Sequence data may span multiple lines; blank lines and ';'
// comment lines are ignored. Residue letters outside the alphabet are
// encoded as X (tolerant mode), matching the behaviour of typical
// database-search tools on Swiss-Prot dumps.
func ReadFASTA(r io.Reader) ([]*Sequence, error) {
	return ReadFASTAAlpha(r, alphabet.Protein)
}

// ReadFASTAAlpha parses all records from a FASTA stream under an explicit
// alphabet. Residue letters outside the alphabet encode as its unknown
// code (X for protein, N for DNA); lowercase soft-masked residues encode
// case-insensitively.
func ReadFASTAAlpha(r io.Reader, alpha *alphabet.Alphabet) ([]*Sequence, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var (
		out  []*Sequence
		cur  *Sequence
		body []alphabet.Code
		line int
	)
	flush := func() {
		if cur != nil {
			cur.Residues = body
			body = nil
			out = append(out, cur)
			cur = nil
		}
	}
	for {
		raw, err := br.ReadBytes('\n')
		line++
		if len(raw) > 0 {
			l := bytes.TrimSpace(raw)
			switch {
			case len(l) == 0 || l[0] == ';':
				// skip
			case l[0] == '>':
				flush()
				header := string(l[1:])
				id, desc, _ := strings.Cut(strings.TrimSpace(header), " ")
				if id == "" {
					return nil, fmt.Errorf("fasta: line %d: empty header", line)
				}
				cur = &Sequence{ID: id, Desc: strings.TrimSpace(desc), Alpha: alpha}
				body = make([]alphabet.Code, 0, 256)
			default:
				if cur == nil {
					return nil, fmt.Errorf("fasta: line %d: sequence data before first header", line)
				}
				for _, b := range l {
					body = append(body, alpha.MustEncode(b))
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("fasta: line %d: %v", line, err)
		}
	}
	flush()
	return out, nil
}

// ReadFASTAFile reads all records from a FASTA file on disk under the
// protein alphabet.
func ReadFASTAFile(path string) ([]*Sequence, error) {
	return ReadFASTAFileAlpha(path, alphabet.Protein)
}

// ReadFASTAFileAlpha reads all records from a FASTA file on disk under an
// explicit alphabet.
func ReadFASTAFileAlpha(path string, alpha *alphabet.Alphabet) ([]*Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFASTAAlpha(f, alpha)
}

// WriteFASTA writes records in FASTA format with lines wrapped at width
// residues (60 if width <= 0). Each record decodes under its own alphabet.
func WriteFASTA(w io.Writer, seqs []*Sequence, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Header()); err != nil {
			return err
		}
		letters := s.Alphabet().DecodeAll(s.Residues)
		for off := 0; off < len(letters); off += width {
			end := off + width
			if end > len(letters) {
				end = len(letters)
			}
			if _, err := bw.Write(letters[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFASTAFile writes records to a FASTA file on disk.
func WriteFASTAFile(path string, seqs []*Sequence, width int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFASTA(f, seqs, width); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
