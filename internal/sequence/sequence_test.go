package sequence

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"heterosw/internal/alphabet"
)

func TestNewEncodes(t *testing.T) {
	s := FromString("q1", "ARNDW")
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if s.String() != "ARNDW" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestUnknownResiduesBecomeX(t *testing.T) {
	s := FromString("q", "A1R")
	if s.String() != "AXR" {
		t.Fatalf("String = %q, want AXR", s.String())
	}
}

func TestHeader(t *testing.T) {
	s := &Sequence{ID: "P02232", Desc: "Hemoglobin"}
	if got := s.Header(); got != "P02232 Hemoglobin" {
		t.Fatalf("Header = %q", got)
	}
	s.Desc = ""
	if got := s.Header(); got != "P02232" {
		t.Fatalf("Header = %q", got)
	}
}

func TestSlice(t *testing.T) {
	s := FromString("q", "ARNDCQE")
	sub := s.Slice(2, 5)
	if sub.String() != "NDC" {
		t.Fatalf("Slice = %q, want NDC", sub.String())
	}
	if !strings.Contains(sub.ID, "[2:5]") {
		t.Fatalf("Slice ID = %q", sub.ID)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad slice did not panic")
		}
	}()
	s.Slice(5, 2)
}

func TestReadFASTABasic(t *testing.T) {
	in := `>P1 first protein
ARND
CQEG
; a comment line

>P2
wyvx
`
	seqs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records, want 2", len(seqs))
	}
	if seqs[0].ID != "P1" || seqs[0].Desc != "first protein" {
		t.Fatalf("rec0 header = %q/%q", seqs[0].ID, seqs[0].Desc)
	}
	if seqs[0].String() != "ARNDCQEG" {
		t.Fatalf("rec0 = %q", seqs[0].String())
	}
	if seqs[1].String() != "WYVX" { // lower case accepted
		t.Fatalf("rec1 = %q", seqs[1].String())
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ARND\n")); err == nil {
		t.Error("data before header accepted")
	}
	if _, err := ReadFASTA(strings.NewReader(">\nAR\n")); err == nil {
		t.Error("empty header accepted")
	}
}

func TestReadFASTAEmpty(t *testing.T) {
	seqs, err := ReadFASTA(strings.NewReader(""))
	if err != nil || len(seqs) != 0 {
		t.Fatalf("empty input: %v, %d records", err, len(seqs))
	}
}

func TestReadFASTANoTrailingNewline(t *testing.T) {
	seqs, err := ReadFASTA(strings.NewReader(">P1\nARND"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0].String() != "ARND" {
		t.Fatalf("got %v", seqs)
	}
}

func TestWriteFASTAWraps(t *testing.T) {
	s := FromString("P1", strings.Repeat("A", 130))
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, []*Sequence{s}, 60); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 60 + 60 + 10
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	if len(lines[1]) != 60 || len(lines[3]) != 10 {
		t.Fatalf("wrap widths wrong: %d, %d", len(lines[1]), len(lines[3]))
	}
}

func TestFASTARoundTripFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/db.fasta"
	want := []*Sequence{
		FromString("A1", "ARNDCQEGHILKMFPSTWYV"),
		{ID: "B2", Desc: "desc here", Residues: alphabet.EncodeAll([]byte("MKV"))},
	}
	if err := WriteFASTAFile(path, want, 7); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTAFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Desc != want[i].Desc || got[i].String() != want[i].String() {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// Property: writing then reading any batch of random sequences reproduces
// IDs and residues exactly.
func TestFASTARoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8, wrap uint8) bool {
		count := int(n%8) + 1
		seqs := make([]*Sequence, count)
		for i := range seqs {
			L := rng.Intn(200) + 1
			res := make([]alphabet.Code, L)
			for j := range res {
				res[j] = alphabet.Code(rng.Intn(alphabet.Size))
			}
			seqs[i] = &Sequence{ID: "S" + string(rune('A'+i)), Residues: res}
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, seqs, int(wrap%90)); err != nil {
			return false
		}
		back, err := ReadFASTA(&buf)
		if err != nil || len(back) != count {
			return false
		}
		for i := range seqs {
			if back[i].String() != seqs[i].String() || back[i].ID != seqs[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
