package sequence

import (
	"bytes"
	"strings"
	"testing"

	"heterosw/internal/alphabet"
)

// TestDNAFASTASoftMaskRoundTrip pins soft-masked genomic FASTA handling:
// lowercase (repeat-masked) nucleotides parse case-insensitively to the
// same codes as uppercase, unrecognised letters become N, and re-rendering
// yields canonical uppercase residues.
func TestDNAFASTASoftMaskRoundTrip(t *testing.T) {
	in := ">chr1 masked fragment\nACGTacgtNnRYryEQZ\nuU\n"
	seqs, err := ReadFASTAAlpha(strings.NewReader(in), alphabet.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 {
		t.Fatalf("%d sequences, want 1", len(seqs))
	}
	s := seqs[0]
	if s.Alphabet() != alphabet.DNA {
		t.Fatalf("parsed alphabet %s, want dna", s.Alphabet().Name())
	}
	// E, Q and Z are not IUPAC nucleotides -> N; u/U is RNA uracil -> T.
	if got, want := s.String(), "ACGTACGTNNRYRYNNNTT"; got != want {
		t.Fatalf("canonical residues %q, want %q", got, want)
	}
	upper := FromStringAlpha("chr1", strings.ToUpper(s.String()), alphabet.DNA)
	if !bytes.Equal(alphabet.BytesView(upper.Residues), alphabet.BytesView(s.Residues)) {
		t.Fatal("soft-masked codes differ from uppercase codes")
	}

	// Writing and re-reading the parsed sequence is a fixed point.
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, seqs, 60); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTAAlpha(bytes.NewReader(buf.Bytes()), alphabet.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].String() != s.String() || back[0].ID != s.ID {
		t.Fatalf("FASTA round trip changed the record: %+v", back)
	}
}

// TestDNAVsProteinParse pins that the same bytes encode differently under
// the two alphabets — the generalisation the alphabet refactor exists for.
func TestDNAVsProteinParse(t *testing.T) {
	d := FromStringAlpha("x", "ACGT", alphabet.DNA)
	p := FromStringAlpha("x", "ACGT", alphabet.Protein)
	if bytes.Equal(alphabet.BytesView(d.Residues), alphabet.BytesView(p.Residues)) {
		t.Fatal("DNA and protein encodings of ACGT coincide")
	}
	if d.String() != "ACGT" || p.String() != "ACGT" {
		t.Fatalf("decode mismatch: dna %q protein %q", d.String(), p.String())
	}
}
