package sequence

import (
	"strings"
	"testing"
)

// Windows-produced FASTA uses CRLF line endings; the parser must not leak
// carriage returns into IDs, descriptions or residues.
func TestReadFASTACRLF(t *testing.T) {
	in := ">P1 first protein\r\nARND\r\nCQEG\r\n>P2\r\nMKV\r\n"
	seqs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records, want 2", len(seqs))
	}
	if seqs[0].ID != "P1" || seqs[0].Desc != "first protein" {
		t.Fatalf("rec0 header %q/%q", seqs[0].ID, seqs[0].Desc)
	}
	if seqs[0].String() != "ARNDCQEG" {
		t.Fatalf("rec0 residues %q", seqs[0].String())
	}
	if seqs[1].ID != "P2" || seqs[1].String() != "MKV" {
		t.Fatalf("rec1 %q %q", seqs[1].ID, seqs[1].String())
	}
}

// A CRLF file with no trailing newline ends in a bare \r-less fragment;
// both quirks together must still round the last record off cleanly.
func TestReadFASTACRLFNoTrailingNewline(t *testing.T) {
	seqs, err := ReadFASTA(strings.NewReader(">P1\r\nAR\r\nND"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0].String() != "ARND" {
		t.Fatalf("got %+v", seqs)
	}
}

// '*' is the stop/terminator letter of the NCBI alphabet and appears in
// ORF translations; it must parse as itself, not as unknown.
func TestReadFASTAStopCodons(t *testing.T) {
	seqs, err := ReadFASTA(strings.NewReader(">orf1\nMKV*\n>orf2\nAR*ND*\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records", len(seqs))
	}
	if got := seqs[0].String(); got != "MKV*" {
		t.Fatalf("rec0 %q, want MKV*", got)
	}
	if got := seqs[1].String(); got != "AR*ND*" {
		t.Fatalf("rec1 %q, want AR*ND*", got)
	}
}

// Headers with no sequence lines (empty bodies) occur in truncated dumps;
// each must yield a zero-length record in order, wherever it sits.
func TestReadFASTAEmptyBodies(t *testing.T) {
	in := ">empty1\n>full\nMKV\n>empty2\n\n>last\n"
	seqs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 {
		t.Fatalf("got %d records, want 4", len(seqs))
	}
	wantIDs := []string{"empty1", "full", "empty2", "last"}
	wantLens := []int{0, 3, 0, 0}
	for i := range seqs {
		if seqs[i].ID != wantIDs[i] {
			t.Fatalf("record %d is %q, want %q", i, seqs[i].ID, wantIDs[i])
		}
		if seqs[i].Len() != wantLens[i] {
			t.Fatalf("record %q has %d residues, want %d", seqs[i].ID, seqs[i].Len(), wantLens[i])
		}
	}
}

// A header as the very last byte of the stream (no newline at all) is the
// extreme of both edge cases at once.
func TestReadFASTAHeaderAtEOF(t *testing.T) {
	seqs, err := ReadFASTA(strings.NewReader(">only"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0].ID != "only" || seqs[0].Len() != 0 {
		t.Fatalf("got %+v", seqs)
	}
}

// Empty-body records must survive a write/read round trip.
func TestFASTARoundTripEmptyBody(t *testing.T) {
	var sb strings.Builder
	in := []*Sequence{
		{ID: "E1"},
		FromString("F1", "MKWVLA"),
		{ID: "E2", Desc: "truncated entry"},
	}
	if err := WriteFASTA(&sb, in, 60); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("round trip lost records: %d", len(back))
	}
	for i := range in {
		if back[i].ID != in[i].ID || back[i].Desc != in[i].Desc || back[i].String() != in[i].String() {
			t.Fatalf("record %d differs: %+v vs %+v", i, back[i], in[i])
		}
	}
}
