// Package sequence defines the protein sequence representation shared by
// the database engine and alignment kernels, together with FASTA input and
// output.
//
// Residues are stored pre-encoded (alphabet.Code) so that alignment inner
// loops never translate bytes. A Sequence is immutable after construction
// by convention: the engine shares the underlying residue slices across
// goroutines without copying.
package sequence

import (
	"fmt"

	"heterosw/internal/alphabet"
)

// Sequence is a named, encoded protein sequence.
type Sequence struct {
	// ID is the FASTA identifier (first whitespace-delimited token of the
	// header), e.g. an accession number.
	ID string
	// Desc is the remainder of the FASTA header, possibly empty.
	Desc string
	// Residues holds the encoded residues. Shared, not copied; treat as
	// read-only.
	Residues []alphabet.Code
}

// New encodes an ASCII residue string into a Sequence. Unrecognised bytes
// map to the unknown residue X, mirroring the tolerant behaviour of common
// search tools.
func New(id string, residues []byte) *Sequence {
	return &Sequence{ID: id, Residues: alphabet.EncodeAll(residues)}
}

// FromString is a convenience wrapper over New for literal sequences.
func FromString(id, residues string) *Sequence {
	return New(id, []byte(residues))
}

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.Residues) }

// String renders the residues as ASCII letters.
func (s *Sequence) String() string { return string(alphabet.DecodeAll(s.Residues)) }

// Header renders the FASTA header line content (without the leading '>').
func (s *Sequence) Header() string {
	if s.Desc == "" {
		return s.ID
	}
	return fmt.Sprintf("%s %s", s.ID, s.Desc)
}

// Slice returns a view of residues [from, to) as a new Sequence sharing the
// underlying storage. The ID records the coordinates for traceability.
func (s *Sequence) Slice(from, to int) *Sequence {
	if from < 0 || to > len(s.Residues) || from > to {
		panic(fmt.Sprintf("sequence: bad slice [%d,%d) of %s (len %d)", from, to, s.ID, len(s.Residues)))
	}
	return &Sequence{
		ID:       fmt.Sprintf("%s[%d:%d]", s.ID, from, to),
		Residues: s.Residues[from:to],
	}
}
