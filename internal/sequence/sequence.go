// Package sequence defines the biological sequence representation shared
// by the database engine and alignment kernels, together with FASTA input
// and output.
//
// Residues are stored pre-encoded (alphabet.Code) under the sequence's
// alphabet — protein by default, IUPAC DNA for nucleotide data — so that
// alignment inner loops never translate bytes. A Sequence is immutable
// after construction by convention: the engine shares the underlying
// residue slices across goroutines without copying.
package sequence

import (
	"fmt"

	"heterosw/internal/alphabet"
)

// Sequence is a named, encoded sequence.
type Sequence struct {
	// ID is the FASTA identifier (first whitespace-delimited token of the
	// header), e.g. an accession number.
	ID string
	// Desc is the remainder of the FASTA header, possibly empty.
	Desc string
	// Residues holds the encoded residues. Shared, not copied; treat as
	// read-only.
	Residues []alphabet.Code
	// Alpha is the alphabet the residues are encoded under. nil means the
	// protein alphabet, keeping zero-valued and legacy-constructed
	// sequences valid.
	Alpha *alphabet.Alphabet
}

// Alphabet returns the alphabet the residues are encoded under.
func (s *Sequence) Alphabet() *alphabet.Alphabet {
	if s.Alpha == nil {
		return alphabet.Protein
	}
	return s.Alpha
}

// New encodes an ASCII residue string into a protein Sequence.
// Unrecognised bytes map to the unknown residue X, mirroring the tolerant
// behaviour of common search tools.
func New(id string, residues []byte) *Sequence {
	return NewAlpha(id, residues, alphabet.Protein)
}

// NewAlpha encodes an ASCII residue string under an explicit alphabet.
// Unrecognised bytes map to the alphabet's unknown residue.
func NewAlpha(id string, residues []byte, alpha *alphabet.Alphabet) *Sequence {
	return &Sequence{ID: id, Residues: alpha.EncodeAll(residues), Alpha: alpha}
}

// FromString is a convenience wrapper over New for literal sequences.
func FromString(id, residues string) *Sequence {
	return New(id, []byte(residues))
}

// FromStringAlpha is a convenience wrapper over NewAlpha for literals.
func FromStringAlpha(id, residues string, alpha *alphabet.Alphabet) *Sequence {
	return NewAlpha(id, []byte(residues), alpha)
}

// Len returns the number of residues.
func (s *Sequence) Len() int { return len(s.Residues) }

// String renders the residues as ASCII letters.
func (s *Sequence) String() string { return string(s.Alphabet().DecodeAll(s.Residues)) }

// Header renders the FASTA header line content (without the leading '>').
func (s *Sequence) Header() string {
	if s.Desc == "" {
		return s.ID
	}
	return fmt.Sprintf("%s %s", s.ID, s.Desc)
}

// Slice returns a view of residues [from, to) as a new Sequence sharing the
// underlying storage. The ID records the coordinates for traceability.
func (s *Sequence) Slice(from, to int) *Sequence {
	if from < 0 || to > len(s.Residues) || from > to {
		panic(fmt.Sprintf("sequence: bad slice [%d,%d) of %s (len %d)", from, to, s.ID, len(s.Residues)))
	}
	return &Sequence{
		ID:       fmt.Sprintf("%s[%d:%d]", s.ID, from, to),
		Residues: s.Residues[from:to],
		Alpha:    s.Alpha,
	}
}
