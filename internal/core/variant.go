// Package core implements the paper's contribution: the portable
// Smith-Waterman database-search engine evaluated on the Xeon and Xeon Phi
// models. It provides the six kernel variants of Section V ({no-vec,
// guided-simd, intrinsic} x {query profile, score profile}), optional
// blocking, 16-bit saturating arithmetic with 32-bit overflow escalation,
// the single-device search of Algorithm 1 and the heterogeneous search of
// Algorithm 2.
package core

import (
	"fmt"
	"strings"
)

// VecMode selects how the inner loop is (emulated-)vectorised, matching the
// three columns of the paper's figures.
type VecMode int

const (
	// VecNone is the scalar baseline ("no-vec"): one database sequence at
	// a time, plain integer arithmetic.
	VecNone VecMode = iota
	// VecGuided models compiler-driven vectorisation (#pragma omp simd):
	// lane loops over 32-bit integers, the code shape a compiler emits
	// from portable source.
	VecGuided
	// VecIntrinsic models hand-tuned vectorisation: explicit fixed-width
	// 16-bit saturating vector operations with 32-bit recomputation of
	// overflowed lanes.
	VecIntrinsic
)

// ProfMode selects the substitution-score layout (Section IV).
type ProfMode int

const (
	// ProfQuery uses the query profile: built once per query, indexed by
	// each lane's database residue (gather access pattern).
	ProfQuery ProfMode = iota
	// ProfScore uses the score profile (the paper's "sequence profile"):
	// rebuilt per database column, loaded contiguously by the inner loop.
	ProfScore
)

// Variant is one of the six algorithm variants evaluated by the paper.
type Variant int

const (
	NoVecQP Variant = iota
	NoVecSP
	GuidedQP
	GuidedSP
	IntrinsicQP
	IntrinsicSP
	numVariants
)

// Variants lists all variants in the order the paper's figures plot them.
func Variants() []Variant {
	return []Variant{NoVecQP, NoVecSP, GuidedQP, GuidedSP, IntrinsicQP, IntrinsicSP}
}

// Vec returns the variant's vectorisation mode.
func (v Variant) Vec() VecMode {
	switch v {
	case NoVecQP, NoVecSP:
		return VecNone
	case GuidedQP, GuidedSP:
		return VecGuided
	default:
		return VecIntrinsic
	}
}

// Prof returns the variant's profile mode.
func (v Variant) Prof() ProfMode {
	switch v {
	case NoVecQP, GuidedQP, IntrinsicQP:
		return ProfQuery
	default:
		return ProfScore
	}
}

// String returns the paper's label for the variant, e.g. "intrinsic-SP".
func (v Variant) String() string {
	switch v {
	case NoVecQP:
		return "no-vec-QP"
	case NoVecSP:
		return "no-vec-SP"
	case GuidedQP:
		return "simd-QP"
	case GuidedSP:
		return "simd-SP"
	case IntrinsicQP:
		return "intrinsic-QP"
	case IntrinsicSP:
		return "intrinsic-SP"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// ParseVariant converts a paper-style label (as printed by String) back to
// a Variant.
func ParseVariant(s string) (Variant, error) {
	for _, v := range Variants() {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("core: unknown variant %q", s)
}

// Precision selects the first-pass element width of the intrinsic kernels'
// scoring ladder.
type Precision int

const (
	// Prec16 is the classic two-tier scheme: a 16-bit first pass with
	// saturated lanes recomputed in 32 bits.
	Prec16 Precision = iota
	// Prec8 is the adaptive three-tier ladder: an 8-bit biased unsigned
	// first pass with twice the lanes per vector word, escalating
	// saturated lanes to 16 bits and, should those saturate too, to 32
	// bits. Lane groups whose score upper bound provably fits a byte skip
	// saturation detection entirely.
	Prec8
)

// String returns the flag-friendly precision name.
func (p Precision) String() string {
	if p == Prec8 {
		return "8"
	}
	return "16"
}

// variantPrecSuffix is the variant-spec suffix selecting the 8-bit first
// pass, e.g. "intrinsic-SP-8bit".
const variantPrecSuffix = "-8bit"

// VariantSpec renders a variant plus first-pass precision as a single
// parseable label: the plain variant name for Prec16, the name suffixed
// with "-8bit" for Prec8.
func VariantSpec(v Variant, prec Precision) string {
	if prec == Prec8 {
		return v.String() + variantPrecSuffix
	}
	return v.String()
}

// ParseVariantSpec parses a variant label with an optional "-8bit"
// precision suffix. The suffix is only meaningful on the intrinsic
// variants: the guided and scalar kernels already run 32-bit lanes, so an
// 8-bit first pass does not exist for them.
func ParseVariantSpec(s string) (Variant, Precision, error) {
	prec := Prec16
	name := s
	if cut, ok := strings.CutSuffix(s, variantPrecSuffix); ok {
		prec = Prec8
		name = cut
	}
	v, err := ParseVariant(name)
	if err != nil {
		return 0, 0, err
	}
	if prec == Prec8 && v.Vec() != VecIntrinsic {
		return 0, 0, fmt.Errorf("core: variant %q: the 8-bit first pass requires an intrinsic variant", s)
	}
	return v, prec, nil
}
