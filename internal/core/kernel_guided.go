package core

import (
	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
)

// alignGroupGuided is the guided-vectorisation kernel (#pragma omp simd in
// the paper's source): the inner loops are written as plain per-lane loops
// over 32-bit integers — the shape a compiler auto-vectorises — processing
// the whole lane group column by column.
//
// Blocking and non-blocking share one driver: the query dimension is
// processed in tiles of blockRows rows (a single tile when unblocked),
// carrying H and F boundary rows across tiles. The boundary columns of the
// DP matrix make the single-tile case degenerate correctly: the boundary
// arrays start at H[0][j] = 0 and F = -inf and are only consumed where a
// previous tile's last row would be.
//
//sw:hotpath
func alignGroupGuided(q *profile.Query, g *seqdb.LaneGroup, p Params, buf *Buffers) ([]int32, Stats) {
	L := g.Lanes
	M := q.Len()
	N := g.Width
	scores := make([]int32, L)
	var st Stats
	st.Groups = 1
	for lane := 0; lane < L; lane++ {
		if g.SeqIdx[lane] >= 0 {
			st.Alignments++
		}
	}
	if M == 0 || N == 0 {
		return scores, st
	}
	B := p.blockRows()
	if B == 0 || B > M {
		B = M
	}
	qr := int32(p.GapOpen + p.GapExtend)
	r := int32(p.GapExtend)
	isQP := p.Variant.Prof() == ProfQuery

	h := grow32(&buf.h32, (B+1)*L)   // block-local H, previous column
	e := grow32(&buf.e32, (B+1)*L)   // block-local E (database-direction gaps)
	hb := grow32(&buf.hb32, (N+1)*L) // boundary H row: previous tile's last row
	fb := grow32(&buf.fb32, (N+1)*L) // boundary F entering this tile's first row
	maxv := buf.max32
	fcol := buf.f32
	diagv := buf.diag32
	upv := buf.up32

	for l := 0; l < L; l++ {
		maxv[l] = 0
	}
	for i := range hb {
		hb[i] = 0
		fb[i] = negInf32
	}

	for i0 := 1; i0 <= M; i0 += B {
		i1 := i0 + B - 1
		if i1 > M {
			i1 = M
		}
		rows := i1 - i0 + 1
		for i := 0; i < (rows+1)*L; i++ {
			h[i] = 0
			e[i] = negInf32
		}
		for l := 0; l < L; l++ {
			diagv[l] = 0 // H[i0-1][0] == 0 (column boundary)
		}
		for jj := 1; jj <= N; jj++ {
			col := g.Interleaved[(jj-1)*L : jj*L]
			if !isQP {
				buf.sr.Build(q, col)
			}
			fbRow := fb[jj*L : jj*L+L]
			copy(fcol, fbRow)
			for ri := 0; ri < rows; ri++ {
				i := i0 + ri
				hrow := h[(ri+1)*L : (ri+2)*L]
				erow := e[(ri+1)*L : (ri+2)*L]
				copy(upv, hrow)
				if isQP {
					qpRow := q.QPRow(i - 1)
					for l := 0; l < L; l++ {
						sc := int32(qpRow[col[l]])
						hij := diagv[l] + sc
						if erow[l] > hij {
							hij = erow[l]
						}
						if fcol[l] > hij {
							hij = fcol[l]
						}
						if hij < 0 {
							hij = 0
						}
						if hij > maxv[l] {
							maxv[l] = hij
						}
						ei := erow[l] - r
						if v := hij - qr; v > ei {
							ei = v
						}
						erow[l] = ei
						fl := fcol[l] - r
						if v := hij - qr; v > fl {
							fl = v
						}
						fcol[l] = fl
						hrow[l] = hij
					}
				} else {
					spRow := buf.sr.Row(int(q.Seq[i-1]))
					for l := 0; l < L; l++ {
						sc := int32(spRow[l])
						hij := diagv[l] + sc
						if erow[l] > hij {
							hij = erow[l]
						}
						if fcol[l] > hij {
							hij = fcol[l]
						}
						if hij < 0 {
							hij = 0
						}
						if hij > maxv[l] {
							maxv[l] = hij
						}
						ei := erow[l] - r
						if v := hij - qr; v > ei {
							ei = v
						}
						erow[l] = ei
						fl := fcol[l] - r
						if v := hij - qr; v > fl {
							fl = v
						}
						fcol[l] = fl
						hrow[l] = hij
					}
				}
				diagv, upv = upv, diagv
			}
			// Boundary hand-off: next column's first-row diagonal is this
			// column's old boundary value; then store this tile's last row
			// and the F state entering the next tile.
			hbRow := hb[jj*L : jj*L+L]
			copy(diagv, hbRow)
			copy(hbRow, h[rows*L:(rows+1)*L])
			copy(fbRow, fcol)
		}
	}

	for l := 0; l < L; l++ {
		if g.SeqIdx[l] >= 0 {
			scores[l] = maxv[l]
		}
	}
	st.Cells = int64(M) * g.Residues
	st.VecIters = int64(M) * int64(N)
	st.PaddedCells = st.VecIters * int64(L)
	st.Columns = int64(N)
	if isQP {
		st.Gathers = st.VecIters
	} else {
		st.SPBuilds = st.Columns
	}
	return scores, st
}
