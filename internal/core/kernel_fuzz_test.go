package core

import (
	"bytes"
	"testing"

	"heterosw/internal/alphabet"
	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
	"heterosw/internal/submat"
	"heterosw/internal/swalign"
	"heterosw/internal/vec"
)

// Caps bounding one fuzz execution: large enough to cross the int16
// saturation ceiling (a tryptophan self-alignment needs ~3000 residues at
// 11 points per column) and to exercise multi-group lane packings, small
// enough that one input stays well under a second across all kernels.
const (
	fuzzMaxQuery  = 3200
	fuzzMaxSeqLen = 3200
	fuzzMaxDBRes  = 6400
	fuzzMaxSeqs   = 64
)

// fuzzLadderMaxCells bounds the inputs that additionally run the 8-bit
// ladder passes. A fully saturating input pays up to three full passes per
// subject (8, 16 and 32 bits), so running the ladder on the 3000-residue
// int16-saturation seed would triple that seed's cost and trip the fuzz
// engine's per-input hang budget under coverage instrumentation. Every
// byte-rail boundary lives at scores of a few hundred — a few dozen
// residues — so the cap loses no 8-bit coverage; the giant-input ladder
// chain is pinned deterministically by TestLadderEscalationTiers instead.
const fuzzLadderMaxCells = 2_000_000

// fuzzSeqDelim separates database sequences in the raw fuzz input.
const fuzzSeqDelim = 0xFF

// fuzzResiduesAlpha maps raw fuzz bytes onto an alphabet's code space.
func fuzzResiduesAlpha(raw []byte, max int, alpha *alphabet.Alphabet) []alphabet.Code {
	if len(raw) > max {
		raw = raw[:max]
	}
	out := make([]alphabet.Code, len(raw))
	for i, b := range raw {
		out[i] = alphabet.Code(int(b) % alpha.Size())
	}
	return out
}

// fuzzResidues maps raw fuzz bytes onto the 24-letter protein alphabet.
func fuzzResidues(raw []byte, max int) []alphabet.Code {
	return fuzzResiduesAlpha(raw, max, alphabet.Protein)
}

// fuzzSequence builds an internal sequence from residue codes via the
// ASCII round trip, so the input goes through the same constructor real
// data does.
func fuzzSequence(id string, codes []alphabet.Code, alpha *alphabet.Alphabet) *sequence.Sequence {
	return sequence.FromStringAlpha(id, string(alpha.DecodeAll(codes)), alpha)
}

// fuzzDatabase splits the raw bytes into database sequences on the
// delimiter byte, applying the corpus caps.
func fuzzDatabase(raw []byte, sorted bool, alpha *alphabet.Alphabet) *seqdb.Database {
	var seqs []*sequence.Sequence
	var total int
	for _, chunk := range bytes.Split(raw, []byte{fuzzSeqDelim}) {
		if len(chunk) == 0 {
			continue
		}
		codes := fuzzResiduesAlpha(chunk, fuzzMaxSeqLen, alpha)
		if total+len(codes) > fuzzMaxDBRes {
			codes = codes[:fuzzMaxDBRes-total]
			if len(codes) == 0 {
				break
			}
		}
		total += len(codes)
		seqs = append(seqs, fuzzSequence("s", codes, alpha))
		if len(seqs) >= fuzzMaxSeqs || total >= fuzzMaxDBRes {
			break
		}
	}
	if len(seqs) == 0 {
		return nil
	}
	return seqdb.New(seqs, sorted)
}

// FuzzKernelParity drives random queries and databases through every
// scoring path — the scalar kernel, the guided and intrinsic lane kernels
// (16-bit with 32-bit overflow escalation), and both intra-task kernels
// (anti-diagonal wavefront and Farrar's striped layout) — and requires
// bit-identical scores against the swalign oracle. The seed corpus covers
// the int16 saturation boundary, 1-residue sequences on both sides,
// lane-count edges (one sequence more than a full lane group) and zero
// gap penalties (the lazy-F worst case).
func FuzzKernelParity(f *testing.F) {
	w := byte(17) // 'W', the highest-scoring self-match in BLOSUM62
	wRun := bytes.Repeat([]byte{w}, 3000)
	lane33 := bytes.Repeat([]byte{w, fuzzSeqDelim}, 33)
	// penSel packs gap penalties: low nibble opens, high nibble extends.
	paperPens := uint8(10 | 2<<4)
	f.Add([]byte("MKWVLA"), []byte("MKWVLA\xffCCQEGHIL\xffW"), uint8(2), paperPens, uint8(1))
	f.Add([]byte{w}, []byte{w}, uint8(0), paperPens, uint8(0))                                     // 1-residue pair
	f.Add(wRun, wRun, uint8(4), paperPens, uint8(1))                                               // int16 saturation
	f.Add([]byte{w}, wRun, uint8(6), paperPens, uint8(0))                                          // 1-residue query, long subject
	f.Add(wRun[:64], lane33, uint8(6), paperPens, uint8(2))                                        // 33 sequences across 32 lanes
	f.Add([]byte("ARNDARND"), []byte("ARND\xffRNDA\xffNDAR"), uint8(3), uint8(0), uint8(0))        // zero gap penalties
	f.Add([]byte{}, []byte("ARND"), uint8(1), paperPens, uint8(3))                                 // empty query
	f.Add([]byte("AAAA"), bytes.Repeat([]byte{0, fuzzSeqDelim}, 40), uint8(7), uint8(5), uint8(7)) // many tiny sequences, 64 lanes

	// int8-saturation seeds for the 8-bit ladder: W self-alignments score
	// 11/residue, so these straddle the signed-byte boundary (121 vs 132
	// over 127) and the biased unsigned rail (242 vs 253 over 255-bias=251)
	// — the group-safety bound and the escalation test both flip inside
	// this window. Zero penalties keep saturated H plateaus alive through
	// padding, and a 1-residue pair against a saturating neighbour pins
	// per-lane (not per-group) escalation.
	w11, w12 := bytes.Repeat([]byte{w}, 11), bytes.Repeat([]byte{w}, 12)
	w22, w23 := bytes.Repeat([]byte{w}, 22), bytes.Repeat([]byte{w}, 23)
	f.Add(w11, append(append([]byte{}, w11...), append([]byte{fuzzSeqDelim}, w12...)...), uint8(4), paperPens, uint8(0)) // straddles 127
	f.Add(w12, w12, uint8(0), paperPens, uint8(1))                                                                       // just over 127
	f.Add(w23, append(append([]byte{}, w22...), append([]byte{fuzzSeqDelim}, w23...)...), uint8(4), paperPens, uint8(2)) // straddles 255-bias
	f.Add(w23, w23, uint8(2), uint8(0), uint8(0))                                                                        // 8-bit rail, zero penalties
	f.Add(w23, append(append([]byte{}, w23...), fuzzSeqDelim, w), uint8(1), paperPens, uint8(0))                         // saturating lane beside a 1-residue lane
	f.Add(wRun[:256], wRun[:256], uint8(6), uint8(0), uint8(3))                                                          // deep zero-penalty plateau over the rail

	// Backend-dispatch edges: the native AVX2 column kernels only engage
	// on full 16-lane (int16) / 32-lane (uint8) groups, so sequence counts
	// one past a group boundary exercise the mixed native-group +
	// portable-tail packing, and a saturating lane inside an odd tail pins
	// the rails on both sides of the dispatch split.
	lane17 := bytes.Repeat([]byte{w, fuzzSeqDelim}, 17) // one past a 16-lane group
	f.Add(wRun[:48], lane17, uint8(6), paperPens, uint8(1))
	f.Add(w23, append(bytes.Repeat([]byte{w, fuzzSeqDelim}, 32), w23...), uint8(7), paperPens, uint8(2)) // 33 lanes, saturating tail lane
	f.Add(wRun[:128], bytes.Repeat([]byte{w, fuzzSeqDelim}, 31), uint8(7), uint8(0), uint8(0))           // 31 lanes: just under the u8 group width

	lanesTable := []int{1, 2, 3, 4, 8, 16, 32, 64}
	blockTable := []int{0, 1, 7, 64}

	f.Fuzz(func(t *testing.T, qRaw, dbRaw []byte, lanesSel, penSel, blockSel uint8) {
		query := fuzzResidues(qRaw, fuzzMaxQuery)
		db := fuzzDatabase(dbRaw, lanesSel&1 == 0, alphabet.Protein)
		if db == nil {
			return
		}
		lanes := lanesTable[int(lanesSel)%len(lanesTable)]
		p := Params{
			GapOpen:   int(penSel & 0x0F),
			GapExtend: int(penSel >> 4),
			Blocked:   blockSel&1 == 1,
			BlockRows: blockTable[int(blockSel>>1)%len(blockTable)],
		}
		sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: p.GapOpen, GapExtend: p.GapExtend}
		qp := profile.NewQuery(query, submat.BLOSUM62)

		want := make([]int32, db.Len())
		for i := 0; i < db.Len(); i++ {
			want[i] = int32(swalign.Score(query, db.Seq(i).Residues, sc))
		}
		check := func(kernel string, got []int32) {
			t.Helper()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s (lanes=%d, q=%daa, penalties %d/%d, blocked=%v/%d): seq %d (%daa) scored %d, oracle %d",
						kernel, lanes, len(query), p.GapOpen, p.GapExtend, p.Blocked, p.BlockRows,
						i, db.Seq(i).Len(), got[i], want[i])
				}
			}
		}

		ladderOK := int64(len(query))*db.Residues() <= fuzzLadderMaxCells
		specs := []struct {
			v    Variant
			prec Precision
		}{
			{NoVecSP, Prec16},
			{GuidedQP, Prec16},
			{IntrinsicSP, Prec16},
			{IntrinsicSP, Prec8},
			{IntrinsicQP, Prec8},
		}
		runSpecs := func(tag string, vecOnly bool) {
			for _, s := range specs {
				if s.prec == Prec8 && !ladderOK {
					continue
				}
				if vecOnly && s.v.Vec() == VecNone {
					continue
				}
				pv := p
				pv.Variant = s.v
				pv.Prec = s.prec
				vl := lanes
				if s.v.Vec() == VecNone {
					vl = 1
				}
				got, _ := runVariantQuiet(db, qp, pv, vl)
				check(VariantSpec(s.v, s.prec)+tag, got)
			}
		}
		runSpecs("", false)
		// On AVX2 hosts the pass above ran the native backend; replay the
		// vectorised kernels with the portable loops forced so every input
		// pins native == portable == oracle. Without AVX2 both passes would
		// be identical, so the replay is skipped.
		if vec.Native() {
			prev := vec.ForcePortable(true)
			runSpecs(" [portable]", true)
			vec.ForcePortable(prev)
		}

		buf := NewBuffers(stripedLanes8)
		intra := make([]int32, db.Len())
		striped := make([]int32, db.Len())
		ladder := make([]int32, db.Len())
		p8 := p
		p8.Variant = IntrinsicSP
		p8.Prec = Prec8
		for i := 0; i < db.Len(); i++ {
			subject := db.Seq(i).Residues
			intra[i] = alignPairIntra(qp, subject, p, buf)
			striped[i] = alignPairStriped(qp, subject, p, buf)
			if ladderOK {
				var st Stats
				ladder[i] = alignPairStripedLadder(qp, subject, p8, qp.Bias8Viable(), buf, &st)
			}
		}
		check("intra-wavefront", intra)
		check("intra-striped", striped)
		if ladderOK {
			check("intra-striped-8bit", ladder)
		}

		// DNA leg: the same raw input mapped onto the 15-letter IUPAC
		// nucleotide alphabet and scored with the NUC match/mismatch matrix
		// against the oracle — pins that no kernel, profile or packing path
		// still assumes the 24-letter protein table. A reduced kernel set
		// (scalar, intrinsic 16-bit, ladder 8-bit) bounds the extra cost;
		// the protein leg above already sweeps the full variant matrix.
		dnaQuery := fuzzResiduesAlpha(qRaw, fuzzMaxQuery, alphabet.DNA)
		dnaDB := fuzzDatabase(dbRaw, lanesSel&1 == 0, alphabet.DNA)
		if dnaDB != nil {
			dsc := swalign.Scoring{Matrix: submat.NUC, GapOpen: p.GapOpen, GapExtend: p.GapExtend}
			dqp := profile.NewQuery(dnaQuery, submat.NUC)
			dwant := make([]int32, dnaDB.Len())
			for i := 0; i < dnaDB.Len(); i++ {
				dwant[i] = int32(swalign.Score(dnaQuery, dnaDB.Seq(i).Residues, dsc))
			}
			for _, s := range []struct {
				v    Variant
				prec Precision
			}{
				{NoVecSP, Prec16},
				{IntrinsicSP, Prec16},
				{IntrinsicSP, Prec8},
			} {
				if s.prec == Prec8 && !ladderOK {
					continue
				}
				pv := p
				pv.Variant = s.v
				pv.Prec = s.prec
				vl := lanes
				if s.v.Vec() == VecNone {
					vl = 1
				}
				got, _ := runVariantQuiet(dnaDB, dqp, pv, vl)
				for i := range dwant {
					if got[i] != dwant[i] {
						t.Fatalf("dna %s (lanes=%d, q=%dnt, penalties %d/%d): seq %d (%dnt) scored %d, oracle %d",
							VariantSpec(s.v, s.prec), vl, len(dnaQuery), p.GapOpen, p.GapExtend,
							i, dnaDB.Seq(i).Len(), got[i], dwant[i])
					}
				}
			}
		}
	})
}
