package core

import (
	"math/rand"
	"testing"

	"heterosw/internal/device"
	"heterosw/internal/sched"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
)

func testEngine(t *testing.T, db *seqdb.Database) *Engine {
	t.Helper()
	e, err := NewEngine(db, device.Xeon())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func defaultSearchOptions() SearchOptions {
	return SearchOptions{
		Params:   Params{Variant: IntrinsicSP, GapOpen: 10, GapExtend: 2, Blocked: true},
		Schedule: sched.Dynamic,
	}
}

func TestSearchMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	db := randDB(rng, 60, 80, true)
	query := randProtein(rng, 50)
	want := oracleScores(db, query.Residues)
	e := testEngine(t, db)
	for _, v := range Variants() {
		opt := defaultSearchOptions()
		opt.Variant = v
		res, err := e.Search(query, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if int(res.Scores[i]) != want[i] {
				t.Fatalf("%v: seq %d score %d, want %d", v, i, res.Scores[i], want[i])
			}
		}
	}
}

func TestSearchHitsSortedAndSelfHitFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	db := randDB(rng, 40, 60, true)
	// Plant the query itself: it must be the top hit.
	query := randProtein(rng, 55)
	planted := *query
	planted.ID = "PLANTED"
	seqs := make([]*sequence.Sequence, 0, db.Len()+1)
	for i := 0; i < db.Len(); i++ {
		seqs = append(seqs, db.Seq(i))
	}
	seqs = append(seqs, &planted)
	db2 := seqdb.New(seqs, true)
	e := testEngine(t, db2)
	res, err := e.Search(query, defaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[0].ID != "PLANTED" {
		t.Fatalf("top hit %q score %d, want PLANTED", res.Hits[0].ID, res.Hits[0].Score)
	}
	for i := 1; i < len(res.Hits); i++ {
		if res.Hits[i].Score > res.Hits[i-1].Score {
			t.Fatal("hits not sorted descending")
		}
	}
}

func TestSearchTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	db := randDB(rng, 30, 40, true)
	e := testEngine(t, db)
	opt := defaultSearchOptions()
	opt.TopK = 5
	res, err := e.Search(randProtein(rng, 30), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 5 {
		t.Fatalf("TopK gave %d hits", len(res.Hits))
	}
	if len(res.Scores) != db.Len() {
		t.Fatalf("Scores truncated to %d", len(res.Scores))
	}
}

func TestSearchSimTimingSane(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	// Enough sequences that every thread count has plenty of lane groups
	// (chunk starvation legitimately makes HT counterproductive).
	db := randDB(rng, 2000, 120, true)
	query := randProtein(rng, 300)
	e := testEngine(t, db)

	prev := 0.0
	for _, threads := range []int{1, 4, 16, 32} {
		opt := defaultSearchOptions()
		opt.Threads = threads
		res, err := e.Search(query, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.SimSeconds <= 0 || res.SimGCUPS <= 0 {
			t.Fatalf("threads=%d: non-positive sim timing %v / %v", threads, res.SimSeconds, res.SimGCUPS)
		}
		if prev > 0 && res.SimSeconds >= prev {
			t.Fatalf("threads=%d: sim time %v did not improve on %v", threads, res.SimSeconds, prev)
		}
		prev = res.SimSeconds
		if res.Threads != threads {
			t.Fatalf("Threads = %d", res.Threads)
		}
	}
}

func TestSearchOnPhiChargesTransfers(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	db := randDB(rng, 100, 100, true)
	query := randProtein(rng, 200)
	phiEng, err := NewEngine(db, device.Phi())
	if err != nil {
		t.Fatal(err)
	}
	res, err := phiEng.Search(query, defaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The transfer+latency floor: at least two PCIe latencies.
	if res.SimSeconds < 2*device.Phi().PCIeLatencySec {
		t.Fatalf("Phi search %vs does not include transfer costs", res.SimSeconds)
	}
}

func TestSearchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	db := randDB(rng, 5, 20, true)
	e := testEngine(t, db)
	if _, err := e.Search(nil, defaultSearchOptions()); err == nil {
		t.Error("nil query accepted")
	}
	opt := defaultSearchOptions()
	opt.Threads = 1000
	if _, err := e.Search(randProtein(rng, 5), opt); err == nil {
		t.Error("absurd thread count accepted")
	}
	opt = defaultSearchOptions()
	opt.GapOpen = -3
	if _, err := e.Search(randProtein(rng, 5), opt); err == nil {
		t.Error("negative gap accepted")
	}
	if _, err := NewEngine(nil, device.Xeon()); err == nil {
		t.Error("nil db accepted")
	}
	if _, err := NewEngine(db, nil); err == nil {
		t.Error("nil device accepted")
	}
}

func TestHeteroMatchesSingleDeviceScores(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	db := randDB(rng, 80, 70, true)
	query := randProtein(rng, 60)
	want := oracleScores(db, query.Residues)

	for _, share := range []float64{0, 0.3, 0.55, 1} {
		res, err := SearchHetero(db, query, HeteroOptions{
			Search:   defaultSearchOptions(),
			MICShare: share,
		})
		if err != nil {
			t.Fatalf("share %v: %v", share, err)
		}
		for i := range want {
			if int(res.Scores[i]) != want[i] {
				t.Fatalf("share %v: seq %d score %d, want %d", share, i, res.Scores[i], want[i])
			}
		}
		if len(res.Hits) != db.Len() {
			t.Fatalf("share %v: %d hits", share, len(res.Hits))
		}
		gotShare := res.MICShare
		if gotShare < share-0.06 || gotShare > share+0.06 {
			t.Fatalf("realised MIC share %v, want ~%v", gotShare, share)
		}
	}
}

func TestHeteroOverlapTiming(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	db := randDB(rng, 150, 100, true)
	query := randProtein(rng, 200)
	res, err := SearchHetero(db, query, HeteroOptions{
		Search:   defaultSearchOptions(),
		MICShare: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantMax := res.CPUSeconds
	if res.MICSeconds > wantMax {
		wantMax = res.MICSeconds
	}
	if res.SimSeconds != wantMax {
		t.Fatalf("SimSeconds %v != max(%v, %v)", res.SimSeconds, res.CPUSeconds, res.MICSeconds)
	}
	if res.Stats.Cells != int64(query.Len())*db.Residues() {
		t.Fatalf("combined cells %d", res.Stats.Cells)
	}
}

func TestHeteroBadShare(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	db := randDB(rng, 5, 20, true)
	if _, err := SearchHetero(db, randProtein(rng, 5), HeteroOptions{Search: defaultSearchOptions(), MICShare: 1.5}); err == nil {
		t.Error("share 1.5 accepted")
	}
	if _, err := SearchHetero(nil, randProtein(rng, 5), HeteroOptions{Search: defaultSearchOptions()}); err == nil {
		t.Error("nil db accepted")
	}
}
