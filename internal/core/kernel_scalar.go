package core

import (
	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
	"heterosw/internal/vec"
)

const negInf32 = int32(-(1 << 29))

// scalarLane runs the plain 32-bit Smith-Waterman recurrence for a single
// lane of an interleaved group. It is both the no-vec kernel body and the
// recomputation path for lanes that saturate 16-bit arithmetic. h and e
// must have at least len(q.Seq)+1 entries: h carries the previous column's
// H values per query row, e the database-direction gap state per query row.
//
//sw:hotpath
func scalarLane(q *profile.Query, g *seqdb.LaneGroup, lane int, p Params, h, e []int32) int32 {
	m := q.Len()
	n := g.Lens[lane]
	if m == 0 || n == 0 {
		return 0
	}
	qr := int32(p.GapOpen + p.GapExtend)
	r := int32(p.GapExtend)
	L := g.Lanes

	for i := 0; i <= m; i++ {
		h[i] = 0
		e[i] = negInf32
	}
	best := int32(0)
	for j := 0; j < n; j++ {
		d := int(g.Interleaved[j*L+lane])
		// The scalar SP/QP distinction is purely an access pattern (and
		// cost-model) difference: both read V(q_i, d).
		row := q.ExtRow(d) // V(*, d); symmetric matrix, so V(q_i,d) = row[q_i]
		var diag, fcol int32 = 0, negInf32
		for i := 1; i <= m; i++ {
			up := h[i]
			sc := int32(row[q.Seq[i-1]])
			hij := diag + sc
			if e[i] > hij {
				hij = e[i]
			}
			if fcol > hij {
				hij = fcol
			}
			if hij < 0 {
				hij = 0
			}
			if hij > best {
				best = hij
			}
			// E[i][j+1] = max(E[i][j], H[i][j]-q) - r
			ei := e[i] - r
			if v := hij - qr; v > ei {
				ei = v
			}
			e[i] = ei
			// F[i+1][j] = max(F[i][j], H[i][j]-q) - r
			fcol -= r
			if v := hij - qr; v > fcol {
				fcol = v
			}
			diag = up
			h[i] = hij
		}
	}
	return best
}

// scalarLane16 runs the Smith-Waterman recurrence for one lane in 16-bit
// saturating arithmetic — the middle tier of the precision ladder. It
// mirrors the intrinsic 16-bit kernel's per-lane operation sequence
// (saturating add on the diagonal, rail-clamped gap updates) so its
// clipping behaviour agrees with the lane pass exactly. The second return
// value reports whether the running maximum reached the int16 ceiling, in
// which case the score may be clipped and the caller must recompute at 32
// bits. h and e need len(q.Seq)+1 entries.
//
//sw:hotpath
func scalarLane16(q *profile.Query, g *seqdb.LaneGroup, lane int, p Params, h, e []int16) (int32, bool) {
	m := q.Len()
	n := g.Lens[lane]
	if m == 0 || n == 0 {
		return 0, false
	}
	qr := int32(p.GapOpen + p.GapExtend)
	r := int32(p.GapExtend)
	L := g.Lanes

	for i := 0; i <= m; i++ {
		h[i] = 0
		e[i] = vec.MinI16
	}
	best := int16(0)
	for j := 0; j < n; j++ {
		d := int(g.Interleaved[j*L+lane])
		row := q.ExtRow(d)
		diag, fcol := int32(0), int32(vec.MinI16)
		for i := 1; i <= m; i++ {
			up := h[i]
			hv := diag + int32(row[q.Seq[i-1]])
			if hv > vec.MaxI16 {
				hv = vec.MaxI16
			}
			if int32(e[i]) > hv {
				hv = int32(e[i])
			}
			if fcol > hv {
				hv = fcol
			}
			if hv < 0 {
				hv = 0
			}
			h16 := int16(hv)
			if h16 > best {
				best = h16
			}
			uv := hv - qr
			e2 := int32(e[i]) - r
			if e2 < vec.MinI16 {
				e2 = vec.MinI16
			}
			if uv > e2 {
				e2 = uv
			}
			e[i] = int16(e2)
			fcol -= r
			if fcol < vec.MinI16 {
				fcol = vec.MinI16
			}
			if uv > fcol {
				fcol = uv
			}
			diag = int32(up)
			h[i] = h16
		}
	}
	return int32(best), best == vec.MaxI16
}

// alignGroupScalar is the no-vec kernel: each lane of the group is aligned
// sequentially with scalar arithmetic. Padding never enters the loop, so
// PaddedCells equals Cells.
//
//sw:hotpath
func alignGroupScalar(q *profile.Query, g *seqdb.LaneGroup, p Params) ([]int32, Stats) {
	scores := make([]int32, g.Lanes)
	m := q.Len()
	h := make([]int32, m+1)
	e := make([]int32, m+1)
	var st Stats
	st.Groups = 1
	for lane := 0; lane < g.Lanes; lane++ {
		if g.SeqIdx[lane] < 0 {
			continue
		}
		scores[lane] = scalarLane(q, g, lane, p, h, e)
		cells := int64(m) * int64(g.Lens[lane])
		st.Cells += cells
		st.PaddedCells += cells
		st.VecIters += cells // scalar iterations
		st.Columns += int64(g.Lens[lane])
		st.Alignments++
	}
	return scores, st
}
