package core

import (
	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
)

const negInf32 = int32(-(1 << 29))

// scalarLane runs the plain 32-bit Smith-Waterman recurrence for a single
// lane of an interleaved group. It is both the no-vec kernel body and the
// recomputation path for lanes that saturate 16-bit arithmetic. h and e
// must have at least len(q.Seq)+1 entries: h carries the previous column's
// H values per query row, e the database-direction gap state per query row.
func scalarLane(q *profile.Query, g *seqdb.LaneGroup, lane int, p Params, h, e []int32) int32 {
	m := q.Len()
	n := g.Lens[lane]
	if m == 0 || n == 0 {
		return 0
	}
	qr := int32(p.GapOpen + p.GapExtend)
	r := int32(p.GapExtend)
	L := g.Lanes

	for i := 0; i <= m; i++ {
		h[i] = 0
		e[i] = negInf32
	}
	best := int32(0)
	for j := 0; j < n; j++ {
		d := int(g.Interleaved[j*L+lane])
		// The scalar SP/QP distinction is purely an access pattern (and
		// cost-model) difference: both read V(q_i, d).
		row := q.ExtRow(d) // V(*, d); symmetric matrix, so V(q_i,d) = row[q_i]
		var diag, fcol int32 = 0, negInf32
		for i := 1; i <= m; i++ {
			up := h[i]
			sc := int32(row[q.Seq[i-1]])
			hij := diag + sc
			if e[i] > hij {
				hij = e[i]
			}
			if fcol > hij {
				hij = fcol
			}
			if hij < 0 {
				hij = 0
			}
			if hij > best {
				best = hij
			}
			// E[i][j+1] = max(E[i][j], H[i][j]-q) - r
			ei := e[i] - r
			if v := hij - qr; v > ei {
				ei = v
			}
			e[i] = ei
			// F[i+1][j] = max(F[i][j], H[i][j]-q) - r
			fcol -= r
			if v := hij - qr; v > fcol {
				fcol = v
			}
			diag = up
			h[i] = hij
		}
	}
	return best
}

// alignGroupScalar is the no-vec kernel: each lane of the group is aligned
// sequentially with scalar arithmetic. Padding never enters the loop, so
// PaddedCells equals Cells.
func alignGroupScalar(q *profile.Query, g *seqdb.LaneGroup, p Params) ([]int32, Stats) {
	scores := make([]int32, g.Lanes)
	m := q.Len()
	h := make([]int32, m+1)
	e := make([]int32, m+1)
	var st Stats
	st.Groups = 1
	for lane := 0; lane < g.Lanes; lane++ {
		if g.SeqIdx[lane] < 0 {
			continue
		}
		scores[lane] = scalarLane(q, g, lane, p, h, e)
		cells := int64(m) * int64(g.Lens[lane])
		st.Cells += cells
		st.PaddedCells += cells
		st.VecIters += cells // scalar iterations
		st.Columns += int64(g.Lens[lane])
		st.Alignments++
	}
	return scores, st
}
