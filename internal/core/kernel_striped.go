package core

import (
	"heterosw/internal/alphabet"
	"heterosw/internal/profile"
	"heterosw/internal/vec"
)

// alignPairStriped is Farrar's striped Smith-Waterman [13] — the
// intra-task vectorisation the paper contrasts with its inter-task scheme —
// implemented over the emulated 16-bit lanes with saturation escalation.
//
// The query is split into L segments of length t = ceil(M/L); vector
// element k of stripe i covers query position k*t + i. The inner loop
// walks stripes, so the F (query-direction gap) dependency crosses vector
// elements only at segment boundaries; the main pass assumes no such flow
// and the lazy-F loop afterwards propagates boundary-crossing gaps until
// they can no longer raise any H. Scores saturating the int16 ceiling are
// recomputed exactly by the 32-bit anti-diagonal kernel.
//
// stripedLanes is fixed at 16 (the Xeon model's width); the algorithm is
// width-agnostic and the cost model charges intra-task work identically
// for both intra kernels.
const stripedLanes = 16

// stripedProfile builds the striped query profile for the current query:
// for every residue index e, t stripe vectors of V(e, q[k*t+i]) with
// padding positions scoring profile.PadScore. Layout:
// prof[((e*t)+i)*L + k].
//
//sw:hotpath
func stripedProfile(q *profile.Query, dst []int16, t int) []int16 {
	L := stripedLanes
	need := q.Width * t * L
	if cap(dst) < need {
		dst = make([]int16, need)
	}
	dst = dst[:need]
	m := q.Len()
	for e := 0; e < q.Width; e++ {
		row := q.ExtRow(e)
		base := e * t * L
		for i := 0; i < t; i++ {
			for k := 0; k < L; k++ {
				p := k*t + i
				if p < m {
					dst[base+i*L+k] = row[q.Seq[p]]
				} else {
					dst[base+i*L+k] = profile.PadScore
				}
			}
		}
	}
	return dst
}

// vshift shifts a stripe vector one lane upward: element k receives
// element k-1, element 0 receives the boundary value 0 for H (the caller
// passes boundary explicitly for F). This is the element-shift that maps
// the last stripe onto the first stripe's diagonal predecessors.
func vshift(dst, src vec.I16, boundary int16) {
	for k := len(src) - 1; k >= 1; k-- {
		dst[k] = src[k-1]
	}
	dst[0] = boundary
}

// alignPairStriped computes the Smith-Waterman score of one pair,
// recomputing saturated scores exactly with the 32-bit anti-diagonal
// kernel.
func alignPairStriped(q *profile.Query, subject []alphabet.Code, p Params, buf *Buffers) int32 {
	best, saturated := alignPairStriped16(q, subject, p, buf)
	if saturated {
		return alignPairIntra(q, subject, p, buf)
	}
	return best
}

// alignPairStriped16 is the 16-bit striped pass; the second return value
// reports int16 saturation (the score may be clipped and the caller must
// recompute at 32 bits).
//
//sw:hotpath
func alignPairStriped16(q *profile.Query, subject []alphabet.Code, p Params, buf *Buffers) (int32, bool) {
	m := q.Len()
	n := len(subject)
	if m == 0 || n == 0 {
		return 0, false
	}
	L := stripedLanes
	t := (m + L - 1) / L
	qr := int16(p.GapOpen + p.GapExtend)
	r := int16(p.GapExtend)
	qOnly := int16(p.GapOpen)

	buf.striped = stripedProfile(q, buf.striped, t)
	prof := buf.striped

	// Striped state: two H column buffers (previous/current), E, and lane
	// temporaries. Reuses the 16-bit scratch pools.
	hPrev := grow16(&buf.h16, t*L)
	hCur := grow16(&buf.e16, t*L)
	eCol := grow16(&buf.hb16, t*L)
	for i := range hPrev {
		hPrev[i] = 0
		eCol[i] = vec.MinI16
	}
	vH := make(vec.I16, L)
	vF := make(vec.I16, L)
	vMax := make(vec.I16, L)
	vTmp := make(vec.I16, L)
	vec.Set1(vMax, 0)

	for j := 0; j < n; j++ {
		pBase := int(subject[j]) * t * L
		// Diagonal for stripe 0: last stripe of the previous column,
		// shifted one lane up (query position k*t-1 lives in lane k-1).
		vshift(vH, hPrev[(t-1)*L:t*L], 0)
		vec.Set1(vF, vec.MinI16)
		for i := 0; i < t; i++ {
			hp := vec.I16(hPrev[i*L : (i+1)*L])
			hc := vec.I16(hCur[i*L : (i+1)*L])
			ev := vec.I16(eCol[i*L : (i+1)*L])
			pv := vec.I16(prof[pBase+i*L : pBase+(i+1)*L])
			// H = max(0, diag+score, E, F); track the maximum.
			vec.AddSat(vH, vH, pv)
			vec.Max(vH, vH, ev)
			vec.Max(vH, vH, vF)
			vec.MaxConst(vH, vH, 0)
			vec.MaxInto(vMax, vH)
			copy(hc, vH)
			// E and F updates for the next column / next row.
			vec.SubSatConst(vTmp, vH, qr)
			vec.SubSatConst(ev, ev, r)
			vec.Max(ev, ev, vTmp)
			vec.SubSatConst(vF, vF, r)
			vec.Max(vF, vF, vTmp)
			// Next stripe's diagonal is this stripe of the previous
			// column.
			copy(vH, hp)
		}

		// Lazy-F: propagate query-direction gaps across segment
		// boundaries. Each pass shifts F into the next segment and decays
		// it along the stripes, improving H (and refreshing E) where it
		// still wins. Farrar's termination test applies: once F <= H - q
		// in every lane, any onward flow (F - r) is dominated by the
		// H - q - r refreshes the main pass already propagated, so the
		// column is done. F can cross at most L-1 boundaries, bounding
		// the passes even with a zero extension penalty.
	lazyF:
		for pass := 0; pass < L; pass++ {
			vshift(vF, vF, vec.MinI16)
			for i := 0; i < t; i++ {
				hc := vec.I16(hCur[i*L : (i+1)*L])
				// Check against the pre-update H: once F <= H - q in
				// every lane, F cannot improve this H, and its onward
				// flow (F - r) is dominated by the H - q - r refresh the
				// main pass already propagated from this unchanged H.
				vec.SubSatConst(vTmp, hc, qOnly)
				if !vec.AnyGT(vF, vTmp) {
					break lazyF
				}
				vec.Max(hc, hc, vF)
				vec.MaxInto(vMax, hc)
				ev := vec.I16(eCol[i*L : (i+1)*L])
				vec.SubSatConst(vTmp, hc, qr)
				vec.Max(ev, ev, vTmp)
				vec.SubSatConst(vF, vF, r)
			}
		}
		hPrev, hCur = hCur, hPrev
	}

	best := vec.HorizontalMax(vMax)
	return int32(best), best == vec.MaxI16
}

// alignPairStripedLadder runs the striped kernel for one pair at the
// requested first-pass precision, escalating on saturation — 8-bit striped
// to 16-bit striped to the 32-bit anti-diagonal kernel — and folding the
// per-tier escalation counts and recomputation cells into st.
//
//sw:hotpath
func alignPairStripedLadder(q *profile.Query, subject []alphabet.Code, p Params, prec8 bool, buf *Buffers, st *Stats) int32 {
	m := q.Len()
	cells := int64(m) * int64(len(subject))
	if prec8 {
		s, sat8 := alignPairStriped8(q, subject, p, buf)
		if !sat8 {
			return s
		}
		st.Overflows8++
		st.OverflowCells += cells
	}
	s, sat16 := alignPairStriped16(q, subject, p, buf)
	if !sat16 {
		return s
	}
	st.Overflows++
	st.OverflowCells += cells
	return alignPairIntra(q, subject, p, buf)
}

// stripedLanes8 is the byte-lane count of the 8-bit striped pass: the same
// 256-bit register as stripedLanes, twice the lanes.
const stripedLanes8 = 32

// stripedProfile8 builds the biased uint8 striped query profile; padding
// positions hold 0, the strongest representable penalty. Layout matches
// stripedProfile. Only valid when q.Bias8Viable().
//
//sw:hotpath
func stripedProfile8(q *profile.Query, dst []uint8, t int) []uint8 {
	L := stripedLanes8
	need := q.Width * t * L
	if cap(dst) < need {
		dst = make([]uint8, need)
	}
	dst = dst[:need]
	m := q.Len()
	for e := 0; e < q.Width; e++ {
		row := q.Ext8[e*q.Width : (e+1)*q.Width]
		base := e * t * L
		for i := 0; i < t; i++ {
			for k := 0; k < L; k++ {
				p := k*t + i
				if p < m {
					dst[base+i*L+k] = row[q.Seq[p]]
				} else {
					dst[base+i*L+k] = 0
				}
			}
		}
	}
	return dst
}

// vshiftU8 is vshift over byte lanes.
func vshiftU8(dst, src vec.U8, boundary uint8) {
	for k := len(src) - 1; k >= 1; k-- {
		dst[k] = src[k-1]
	}
	dst[0] = boundary
}

// clampU8 clamps a non-negative penalty constant to the byte rail; a
// saturating subtract of 255 always floors at zero, which is the correct
// clamped value of any deeper penalty.
func clampU8(v int) uint8 {
	if v > vec.MaxU8 {
		return vec.MaxU8
	}
	return uint8(v)
}

// alignPairStriped8 is the ladder's 8-bit striped pass: Farrar's layout
// over unsigned byte lanes with biased scores, 32 lanes per 256-bit word.
// H/E/F hold true cell values clamped at zero (see alignGroupIntrinsic8
// for the soundness argument). The second return value reports biased-rail
// saturation, in which case the caller escalates to the 16-bit striped
// pass. Only valid when q.Bias8Viable().
//
//sw:hotpath
func alignPairStriped8(q *profile.Query, subject []alphabet.Code, p Params, buf *Buffers) (int32, bool) {
	m := q.Len()
	n := len(subject)
	if m == 0 || n == 0 {
		return 0, false
	}
	L := stripedLanes8
	t := (m + L - 1) / L
	bias := q.Bias
	qr := clampU8(p.GapOpen + p.GapExtend)
	r := clampU8(p.GapExtend)
	qOnly := clampU8(p.GapOpen)
	safe := ladderSafe8(q, n)

	buf.striped8 = stripedProfile8(q, buf.striped8, t)
	prof := buf.striped8

	hPrev := grow8(&buf.h8, t*L)
	hCur := grow8(&buf.e8, t*L)
	eCol := grow8(&buf.hb8, t*L)
	for i := range hPrev {
		hPrev[i] = 0
		eCol[i] = 0
	}
	vH := make(vec.U8, L)
	vF := make(vec.U8, L)
	vMax := make(vec.U8, L)
	vTmp := make(vec.U8, L)
	vec.Set1U8(vMax, 0)

	for j := 0; j < n; j++ {
		pBase := int(subject[j]) * t * L
		vshiftU8(vH, hPrev[(t-1)*L:t*L], 0)
		vec.Set1U8(vF, 0)
		for i := 0; i < t; i++ {
			hp := vec.U8(hPrev[i*L : (i+1)*L])
			hc := vec.U8(hCur[i*L : (i+1)*L])
			ev := vec.U8(eCol[i*L : (i+1)*L])
			pv := vec.U8(prof[pBase+i*L : pBase+(i+1)*L])
			// H = max(diag+score, E, F) with the zero floor supplied by
			// the unsigned clamp; track the maximum.
			vec.AddSatU8(vH, vH, pv)
			vec.SubSatU8Const(vH, vH, bias)
			vec.MaxU8s(vH, vH, ev)
			vec.MaxU8s(vH, vH, vF)
			vec.MaxIntoU8(vMax, vH)
			copy(hc, vH)
			vec.SubSatU8Const(vTmp, vH, qr)
			vec.SubSatU8Const(ev, ev, r)
			vec.MaxU8s(ev, ev, vTmp)
			vec.SubSatU8Const(vF, vF, r)
			vec.MaxU8s(vF, vF, vTmp)
			copy(vH, hp)
		}

		// Lazy-F over byte lanes; Farrar's termination test as in the
		// 16-bit pass.
	lazyF:
		for pass := 0; pass < L; pass++ {
			vshiftU8(vF, vF, 0)
			for i := 0; i < t; i++ {
				hc := vec.U8(hCur[i*L : (i+1)*L])
				vec.SubSatU8Const(vTmp, hc, qOnly)
				if !vec.AnyGTU8(vF, vTmp) {
					break lazyF
				}
				vec.MaxU8s(hc, hc, vF)
				vec.MaxIntoU8(vMax, hc)
				ev := vec.U8(eCol[i*L : (i+1)*L])
				vec.SubSatU8Const(vTmp, hc, qr)
				vec.MaxU8s(ev, ev, vTmp)
				vec.SubSatU8Const(vF, vF, r)
			}
		}
		hPrev, hCur = hCur, hPrev
	}

	best := int32(vec.HorizontalMaxU8(vMax))
	if safe {
		return best, false
	}
	return best, best >= int32(vec.MaxU8)-int32(bias)
}
