package core

import (
	"heterosw/internal/alphabet"
	"heterosw/internal/profile"
	"heterosw/internal/vec"
)

// alignPairStriped is Farrar's striped Smith-Waterman [13] — the
// intra-task vectorisation the paper contrasts with its inter-task scheme —
// implemented over the emulated 16-bit lanes with saturation escalation.
//
// The query is split into L segments of length t = ceil(M/L); vector
// element k of stripe i covers query position k*t + i. The inner loop
// walks stripes, so the F (query-direction gap) dependency crosses vector
// elements only at segment boundaries; the main pass assumes no such flow
// and the lazy-F loop afterwards propagates boundary-crossing gaps until
// they can no longer raise any H. Scores saturating the int16 ceiling are
// recomputed exactly by the 32-bit anti-diagonal kernel.
//
// stripedLanes is fixed at 16 (the Xeon model's width); the algorithm is
// width-agnostic and the cost model charges intra-task work identically
// for both intra kernels.
const stripedLanes = 16

// stripedProfile builds the striped query profile for the current query:
// for every residue index e, t stripe vectors of V(e, q[k*t+i]) with
// padding positions scoring profile.PadScore. Layout:
// prof[((e*t)+i)*L + k].
func stripedProfile(q *profile.Query, dst []int16, t int) []int16 {
	L := stripedLanes
	need := profile.TableWidth * t * L
	if cap(dst) < need {
		dst = make([]int16, need)
	}
	dst = dst[:need]
	m := q.Len()
	for e := 0; e < profile.TableWidth; e++ {
		row := q.ExtRow(e)
		base := e * t * L
		for i := 0; i < t; i++ {
			for k := 0; k < L; k++ {
				p := k*t + i
				if p < m {
					dst[base+i*L+k] = row[q.Seq[p]]
				} else {
					dst[base+i*L+k] = profile.PadScore
				}
			}
		}
	}
	return dst
}

// vshift shifts a stripe vector one lane upward: element k receives
// element k-1, element 0 receives the boundary value 0 for H (the caller
// passes boundary explicitly for F). This is the element-shift that maps
// the last stripe onto the first stripe's diagonal predecessors.
func vshift(dst, src vec.I16, boundary int16) {
	for k := len(src) - 1; k >= 1; k-- {
		dst[k] = src[k-1]
	}
	dst[0] = boundary
}

// alignPairStriped computes the Smith-Waterman score of one pair.
func alignPairStriped(q *profile.Query, subject []alphabet.Code, p Params, buf *Buffers) int32 {
	m := q.Len()
	n := len(subject)
	if m == 0 || n == 0 {
		return 0
	}
	L := stripedLanes
	t := (m + L - 1) / L
	qr := int16(p.GapOpen + p.GapExtend)
	r := int16(p.GapExtend)
	qOnly := int16(p.GapOpen)

	buf.striped = stripedProfile(q, buf.striped, t)
	prof := buf.striped

	// Striped state: two H column buffers (previous/current), E, and lane
	// temporaries. Reuses the 16-bit scratch pools.
	hPrev := grow16(&buf.h16, t*L)
	hCur := grow16(&buf.e16, t*L)
	eCol := grow16(&buf.hb16, t*L)
	for i := range hPrev {
		hPrev[i] = 0
		eCol[i] = vec.MinI16
	}
	vH := make(vec.I16, L)
	vF := make(vec.I16, L)
	vMax := make(vec.I16, L)
	vTmp := make(vec.I16, L)
	vec.Set1(vMax, 0)

	for j := 0; j < n; j++ {
		pBase := int(subject[j]) * t * L
		// Diagonal for stripe 0: last stripe of the previous column,
		// shifted one lane up (query position k*t-1 lives in lane k-1).
		vshift(vH, hPrev[(t-1)*L:t*L], 0)
		vec.Set1(vF, vec.MinI16)
		for i := 0; i < t; i++ {
			hp := vec.I16(hPrev[i*L : (i+1)*L])
			hc := vec.I16(hCur[i*L : (i+1)*L])
			ev := vec.I16(eCol[i*L : (i+1)*L])
			pv := vec.I16(prof[pBase+i*L : pBase+(i+1)*L])
			// H = max(0, diag+score, E, F); track the maximum.
			vec.AddSat(vH, vH, pv)
			vec.Max(vH, vH, ev)
			vec.Max(vH, vH, vF)
			vec.MaxConst(vH, vH, 0)
			vec.MaxInto(vMax, vH)
			copy(hc, vH)
			// E and F updates for the next column / next row.
			vec.SubSatConst(vTmp, vH, qr)
			vec.SubSatConst(ev, ev, r)
			vec.Max(ev, ev, vTmp)
			vec.SubSatConst(vF, vF, r)
			vec.Max(vF, vF, vTmp)
			// Next stripe's diagonal is this stripe of the previous
			// column.
			copy(vH, hp)
		}

		// Lazy-F: propagate query-direction gaps across segment
		// boundaries. Each pass shifts F into the next segment and decays
		// it along the stripes, improving H (and refreshing E) where it
		// still wins. Farrar's termination test applies: once F <= H - q
		// in every lane, any onward flow (F - r) is dominated by the
		// H - q - r refreshes the main pass already propagated, so the
		// column is done. F can cross at most L-1 boundaries, bounding
		// the passes even with a zero extension penalty.
	lazyF:
		for pass := 0; pass < L; pass++ {
			vshift(vF, vF, vec.MinI16)
			for i := 0; i < t; i++ {
				hc := vec.I16(hCur[i*L : (i+1)*L])
				// Check against the pre-update H: once F <= H - q in
				// every lane, F cannot improve this H, and its onward
				// flow (F - r) is dominated by the H - q - r refresh the
				// main pass already propagated from this unchanged H.
				vec.SubSatConst(vTmp, hc, qOnly)
				if !vec.AnyGT(vF, vTmp) {
					break lazyF
				}
				vec.Max(hc, hc, vF)
				vec.MaxInto(vMax, hc)
				ev := vec.I16(eCol[i*L : (i+1)*L])
				vec.SubSatConst(vTmp, hc, qr)
				vec.Max(ev, ev, vTmp)
				vec.SubSatConst(vF, vF, r)
			}
		}
		hPrev, hCur = hCur, hPrev
	}

	best := vec.HorizontalMax(vMax)
	if best == vec.MaxI16 {
		// Saturated: recompute exactly in 32 bits.
		return alignPairIntra(q, subject, p, buf)
	}
	return int32(best)
}
