package core

import (
	"math/rand"
	"strings"
	"testing"

	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
	"heterosw/internal/submat"
	"heterosw/internal/swalign"
)

func intraScore(t *testing.T, query, subject *sequence.Sequence) int32 {
	t.Helper()
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	buf := NewBuffers(4)
	return alignPairIntra(q, subject.Residues, testParamsBase, buf)
}

func TestIntraMatchesOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: 10, GapExtend: 2}
	for trial := 0; trial < 200; trial++ {
		a := randProtein(rng, rng.Intn(70)+1)
		b := randProtein(rng, rng.Intn(70)+1)
		want := swalign.Score(a.Residues, b.Residues, sc)
		got := intraScore(t, a, b)
		if int(got) != want {
			t.Fatalf("trial %d: intra %d, oracle %d (|a|=%d |b|=%d)", trial, got, want, a.Len(), b.Len())
		}
	}
}

func TestIntraAsymmetricShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: 10, GapExtend: 2}
	shapes := [][2]int{{1, 1}, {1, 50}, {50, 1}, {2, 300}, {300, 2}, {128, 128}, {37, 91}}
	for _, sh := range shapes {
		a := randProtein(rng, sh[0])
		b := randProtein(rng, sh[1])
		want := swalign.Score(a.Residues, b.Residues, sc)
		got := intraScore(t, a, b)
		if int(got) != want {
			t.Fatalf("shape %v: intra %d, oracle %d", sh, got, want)
		}
	}
}

func TestIntraEmptyInputs(t *testing.T) {
	q := profile.NewQuery(nil, submat.BLOSUM62)
	buf := NewBuffers(4)
	if got := alignPairIntra(q, randProtein(rand.New(rand.NewSource(1)), 5).Residues, testParamsBase, buf); got != 0 {
		t.Fatalf("empty query scored %d", got)
	}
	q2 := profile.NewQuery(randProtein(rand.New(rand.NewSource(2)), 5).Residues, submat.BLOSUM62)
	if got := alignPairIntra(q2, nil, testParamsBase, buf); got != 0 {
		t.Fatalf("empty subject scored %d", got)
	}
}

func TestIntraLargeScores(t *testing.T) {
	// The 32-bit intra kernel must be exact far beyond the int16 range.
	long := strings.Repeat("W", 4000)
	a := sequence.FromString("a", long)
	got := intraScore(t, a, a)
	if got != 11*4000 {
		t.Fatalf("intra self-score %d, want %d", got, 11*4000)
	}
}

func TestIntraOtherPenalties(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for _, gp := range [][2]int{{0, 1}, {5, 0}, {14, 4}} {
		sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: gp[0], GapExtend: gp[1]}
		p := Params{Variant: IntrinsicSP, GapOpen: gp[0], GapExtend: gp[1]}
		q := profile.NewQuery(randProtein(rng, 60).Residues, submat.BLOSUM62)
		buf := NewBuffers(4)
		for trial := 0; trial < 30; trial++ {
			b := randProtein(rng, rng.Intn(80)+1)
			want := swalign.Score(q.Seq, b.Residues, sc)
			got := alignPairIntra(q, b.Residues, p, buf)
			if int(got) != want {
				t.Fatalf("q=%d r=%d trial %d: intra %d oracle %d", gp[0], gp[1], trial, got, want)
			}
		}
	}
}

// TestEngineRoutesLongSequences verifies the end-to-end path: a database
// containing a sequence beyond the threshold must produce oracle-correct
// scores and account the work as intra-task cells.
func TestEngineRoutesLongSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	seqs := []*sequence.Sequence{
		randProtein(rng, 30),
		randProtein(rng, 3073), // just above DefaultLongSeqThreshold
		randProtein(rng, 100),
		randProtein(rng, 4000),
	}
	db := seqdb.New(seqs, true)
	query := randProtein(rng, 40)
	want := oracleScores(db, query.Residues)

	e := testEngine(t, db)
	res, err := e.Search(query, defaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if int(res.Scores[i]) != want[i] {
			t.Fatalf("seq %d (len %d): score %d, want %d", i, seqs[i].Len(), res.Scores[i], want[i])
		}
	}
	wantIntra := int64(query.Len()) * int64(3073+4000)
	if res.Stats.IntraCells != wantIntra {
		t.Fatalf("IntraCells = %d, want %d", res.Stats.IntraCells, wantIntra)
	}
	if res.Stats.Cells != int64(query.Len())*db.Residues() {
		t.Fatalf("Cells = %d", res.Stats.Cells)
	}

	// Disabling routing must give identical scores through the lane
	// kernels (with heavy padding).
	opt := defaultSearchOptions()
	opt.LongSeqThreshold = -1
	res2, err := e.Search(query, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res2.Scores[i] != res.Scores[i] {
			t.Fatalf("routing changed scores at %d: %d vs %d", i, res2.Scores[i], res.Scores[i])
		}
	}
	if res2.Stats.IntraCells != 0 {
		t.Fatalf("routing disabled but IntraCells = %d", res2.Stats.IntraCells)
	}
}

func TestPartitionRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	seqs := []*sequence.Sequence{
		randProtein(rng, 10),
		randProtein(rng, 5000),
		randProtein(rng, 20),
	}
	db := seqdb.New(seqs, true)
	groups, long := db.Partition(4, 3072)
	if len(long) != 1 || long[0] != 1 {
		t.Fatalf("long = %v, want [1]", long)
	}
	total := int64(0)
	for _, g := range groups {
		total += g.Residues
		if g.Width > 3072 {
			t.Fatalf("group width %d above threshold", g.Width)
		}
	}
	if total != 30 {
		t.Fatalf("groups hold %d residues, want 30", total)
	}
}
