package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"heterosw/internal/alphabet"
	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
	"heterosw/internal/submat"
	"heterosw/internal/swalign"
)

var testParamsBase = Params{GapOpen: 10, GapExtend: 2}

func randProtein(rng *rand.Rand, n int) *sequence.Sequence {
	letters := "ARNDCQEGHILKMFPSTWYV"
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[rng.Intn(len(letters))])
	}
	return sequence.FromString("s", sb.String())
}

func randDB(rng *rand.Rand, n, maxLen int, sorted bool) *seqdb.Database {
	seqs := make([]*sequence.Sequence, n)
	for i := range seqs {
		seqs[i] = randProtein(rng, rng.Intn(maxLen)+1)
	}
	return seqdb.New(seqs, sorted)
}

// oracleScores computes reference scores for every database sequence.
func oracleScores(db *seqdb.Database, query []alphabet.Code) []int {
	sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: 10, GapExtend: 2}
	out := make([]int, db.Len())
	for i := 0; i < db.Len(); i++ {
		out[i] = swalign.Score(query, db.Seq(i).Residues, sc)
	}
	return out
}

func runVariant(t *testing.T, db *seqdb.Database, q *profile.Query, p Params, lanes int) ([]int32, Stats) {
	t.Helper()
	groups := db.Groups(lanes)
	buf := NewBuffers(lanes)
	scores := make([]int32, db.Len())
	var st Stats
	for _, g := range groups {
		got, s := AlignGroup(q, g, p, buf)
		st.Add(s)
		for l, idx := range g.SeqIdx {
			if idx >= 0 {
				scores[idx] = got[l]
			}
		}
	}
	return scores, st
}

func allParams() []Params {
	var out []Params
	for _, v := range Variants() {
		for _, blk := range []Params{
			{Blocked: false},
			{Blocked: true, BlockRows: 1},
			{Blocked: true, BlockRows: 7},
			{Blocked: true, BlockRows: 64},
		} {
			p := testParamsBase
			p.Variant = v
			p.Blocked = blk.Blocked
			p.BlockRows = blk.BlockRows
			out = append(out, p)
		}
	}
	return out
}

func TestAllVariantsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	db := randDB(rng, 37, 60, true)
	query := randProtein(rng, 45)
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	want := oracleScores(db, query.Residues)

	for _, p := range allParams() {
		for _, lanes := range []int{1, 4, 16, 32} {
			got, _ := runVariant(t, db, q, p, lanes)
			for i := range want {
				if int(got[i]) != want[i] {
					t.Fatalf("%v blocked=%v/%d lanes=%d: seq %d score %d, want %d",
						p.Variant, p.Blocked, p.BlockRows, lanes, i, got[i], want[i])
				}
			}
		}
	}
}

func TestVariantsMatchOracleUnsortedDB(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	db := randDB(rng, 25, 80, false) // unsorted: heavy padding in groups
	query := randProtein(rng, 33)
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	want := oracleScores(db, query.Residues)
	for _, v := range Variants() {
		p := testParamsBase
		p.Variant = v
		got, _ := runVariant(t, db, q, p, 8)
		for i := range want {
			if int(got[i]) != want[i] {
				t.Fatalf("%v unsorted: seq %d score %d, want %d", v, i, got[i], want[i])
			}
		}
	}
}

func TestVariantsManyRandomTrials(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 12; trial++ {
		db := randDB(rng, rng.Intn(20)+3, rng.Intn(70)+4, trial%2 == 0)
		query := randProtein(rng, rng.Intn(90)+2)
		q := profile.NewQuery(query.Residues, submat.BLOSUM62)
		want := oracleScores(db, query.Residues)
		p := testParamsBase
		p.Variant = Variant(trial % int(numVariants))
		p.Blocked = trial%3 == 0
		p.BlockRows = []int{0, 3, 17}[trial%3]
		lanes := []int{2, 8, 16, 32}[trial%4]
		got, _ := runVariant(t, db, q, p, lanes)
		for i := range want {
			if int(got[i]) != want[i] {
				t.Fatalf("trial %d (%v lanes=%d): seq %d score %d, want %d",
					trial, p.Variant, lanes, i, got[i], want[i])
			}
		}
	}
}

func TestIntrinsicOverflowEscalation(t *testing.T) {
	// A ~3000-residue tryptophan repeat self-aligned scores 11*3000 =
	// 33000 > MaxInt16, forcing 16-bit saturation; the kernel must detect
	// it and recompute in 32 bits.
	long := strings.Repeat("W", 3000)
	seqs := []*sequence.Sequence{
		sequence.FromString("long", long),
		sequence.FromString("short", "ARNDARND"),
	}
	db := seqdb.New(seqs, true)
	query := sequence.FromString("q", long)
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	want := oracleScores(db, query.Residues)
	if want[0] <= 32767 {
		t.Fatalf("test setup: oracle score %d does not exceed int16", want[0])
	}
	for _, blocked := range []bool{false, true} {
		p := testParamsBase
		p.Variant = IntrinsicSP
		p.Blocked = blocked
		got, st := runVariant(t, db, q, p, 4)
		if int(got[0]) != want[0] || int(got[1]) != want[1] {
			t.Fatalf("blocked=%v: scores %v, want %v", blocked, got[:2], want)
		}
		if st.Overflows != 1 {
			t.Fatalf("blocked=%v: Overflows = %d, want 1", blocked, st.Overflows)
		}
		if st.OverflowCells != int64(len(long))*int64(len(long)) {
			t.Fatalf("OverflowCells = %d", st.OverflowCells)
		}
	}
}

func TestGuidedNoOverflowForLargeScores(t *testing.T) {
	// The 32-bit guided kernel must handle >int16 scores directly.
	long := strings.Repeat("W", 3100)
	db := seqdb.New([]*sequence.Sequence{sequence.FromString("l", long)}, true)
	query := sequence.FromString("q", long)
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	p := testParamsBase
	p.Variant = GuidedSP
	got, st := runVariant(t, db, q, p, 4)
	if int(got[0]) != 11*3100 {
		t.Fatalf("score %d, want %d", got[0], 11*3100)
	}
	if st.Overflows != 0 {
		t.Fatalf("guided kernel reported overflows: %d", st.Overflows)
	}
}

func TestStatsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	db := randDB(rng, 20, 40, true)
	query := randProtein(rng, 25)
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	m := int64(q.Len())

	p := testParamsBase
	p.Variant = IntrinsicSP
	_, st := runVariant(t, db, q, p, 8)
	if st.Cells != m*db.Residues() {
		t.Errorf("Cells = %d, want %d", st.Cells, m*db.Residues())
	}
	if st.Alignments != int64(db.Len()) {
		t.Errorf("Alignments = %d, want %d", st.Alignments, db.Len())
	}
	if st.PaddedCells < st.Cells {
		t.Errorf("PaddedCells %d < Cells %d", st.PaddedCells, st.Cells)
	}
	if st.SPBuilds != st.Columns || st.Gathers != 0 {
		t.Errorf("SP variant counts: SPBuilds=%d Columns=%d Gathers=%d", st.SPBuilds, st.Columns, st.Gathers)
	}
	groups := db.Groups(8)
	if st.Groups != int64(len(groups)) {
		t.Errorf("Groups = %d, want %d", st.Groups, len(groups))
	}

	p.Variant = IntrinsicQP
	_, st = runVariant(t, db, q, p, 8)
	if st.Gathers != st.VecIters || st.SPBuilds != 0 {
		t.Errorf("QP variant counts: Gathers=%d VecIters=%d SPBuilds=%d", st.Gathers, st.VecIters, st.SPBuilds)
	}

	p.Variant = NoVecQP
	_, st = runVariant(t, db, q, p, 1)
	if st.PaddedCells != st.Cells {
		t.Errorf("no-vec padded %d != cells %d", st.PaddedCells, st.Cells)
	}
	if st.VecIters != st.Cells {
		t.Errorf("no-vec iters %d != cells %d", st.VecIters, st.Cells)
	}
}

func TestEmptyQueryAndTinySequences(t *testing.T) {
	db := seqdb.New([]*sequence.Sequence{
		sequence.FromString("a", "A"),
		sequence.FromString("b", "W"),
	}, true)
	q := profile.NewQuery(nil, submat.BLOSUM62)
	for _, v := range Variants() {
		p := testParamsBase
		p.Variant = v
		got, st := runVariant(t, db, q, p, 4)
		for i, s := range got {
			if s != 0 {
				t.Fatalf("%v: empty query scored %d for seq %d", v, s, i)
			}
		}
		if st.Cells != 0 {
			t.Fatalf("%v: empty query counted %d cells", v, st.Cells)
		}
	}
}

func TestVariantStringRoundTrip(t *testing.T) {
	for _, v := range Variants() {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Fatalf("round trip of %v failed: %v, %v", v, got, err)
		}
	}
	if _, err := ParseVariant("avx-512"); err == nil {
		t.Fatal("ParseVariant accepted junk")
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{Variant: IntrinsicSP, GapOpen: 10, GapExtend: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Variant: Variant(99)},
		{Variant: NoVecQP, GapOpen: -1},
		{Variant: NoVecQP, GapExtend: -2},
		{Variant: NoVecQP, Blocked: true, BlockRows: -5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Cells: 1, PaddedCells: 2, VecIters: 3, Columns: 4, SPBuilds: 5,
		Gathers: 6, Groups: 7, Alignments: 8, Overflows: 9, OverflowCells: 10}
	b := a
	b.Add(a)
	if b.Cells != 2 || b.OverflowCells != 20 || b.Groups != 14 {
		t.Fatalf("Add wrong: %+v", b)
	}
}

// Property: for random gap penalties, every kernel variant agrees with the
// reference implementation (testing/quick drives the parameter space).
func TestRandomPenaltiesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	db := randDB(rng, 12, 50, true)
	query := randProtein(rng, 40)
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	f := func(qo, qe uint8, variantSeed uint8, blocked bool) bool {
		gapOpen := int(qo % 20)
		gapExtend := int(qe % 8)
		sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: gapOpen, GapExtend: gapExtend}
		p := Params{
			Variant:   Variant(int(variantSeed) % int(numVariants)),
			GapOpen:   gapOpen,
			GapExtend: gapExtend,
			Blocked:   blocked,
		}
		got, _ := runVariantQuiet(db, q, p, 8)
		for i := 0; i < db.Len(); i++ {
			if int(got[i]) != swalign.Score(query.Residues, db.Seq(i).Residues, sc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// runVariantQuiet is runVariant without the testing.T plumbing, usable
// inside quick.Check property functions.
func runVariantQuiet(db *seqdb.Database, q *profile.Query, p Params, lanes int) ([]int32, Stats) {
	groups := db.Groups(lanes)
	buf := NewBuffers(lanes)
	scores := make([]int32, db.Len())
	var st Stats
	for _, g := range groups {
		got, s := AlignGroup(q, g, p, buf)
		st.Add(s)
		for l, idx := range g.SeqIdx {
			if idx >= 0 {
				scores[idx] = got[l]
			}
		}
	}
	return scores, st
}
