package core

import (
	"math/rand"
	"testing"

	"heterosw/internal/device"
)

func TestOptimalMICShareBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	// Large enough that the Phi's 240 threads are not chunk-starved; on
	// tiny databases the model correctly gives the Phi a small share.
	db := randDB(rng, 30000, 400, true)
	opt := defaultSearchOptions()
	share := OptimalMICShare(db, 1000, opt, device.Xeon(), device.Phi(), 0, 0)
	// The Phi is somewhat faster than the Xeon on intrinsic-SP, so the
	// balanced share gives it the larger half.
	if share < 0.45 || share > 0.70 {
		t.Fatalf("optimal share %v outside the plausible band", share)
	}
	// The small-database regime: the model hands the starved Phi less.
	tiny := randDB(rng, 1500, 300, true)
	tinyShare := OptimalMICShare(tiny, 1000, opt, device.Xeon(), device.Phi(), 0, 0)
	if tinyShare >= share {
		t.Fatalf("tiny-db share %.3f not below large-db share %.3f", tinyShare, share)
	}

	// The auto split's completion must be at least as good as clearly
	// unbalanced splits of the same (functional, smaller) search.
	query := randProtein(rng, 120)
	auto, err := SearchHetero(tiny, query, HeteroOptions{
		Search: opt, AutoSplit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{0.02, 0.9} {
		res, err := SearchHetero(tiny, query, HeteroOptions{
			Search: opt, MICShare: bad,
		})
		if err != nil {
			t.Fatal(err)
		}
		if auto.SimSeconds > res.SimSeconds*1.02 {
			t.Fatalf("auto split (%v s, share %.2f) worse than share %.1f (%v s)",
				auto.SimSeconds, auto.MICShare, bad, res.SimSeconds)
		}
	}
}

func TestOptimalMICShareDegenerate(t *testing.T) {
	if got := OptimalMICShare(nil, 100, defaultSearchOptions(), device.Xeon(), device.Phi(), 0, 0); got != 0.5 {
		t.Fatalf("nil db share %v", got)
	}
	rng := rand.New(rand.NewSource(601))
	db := randDB(rng, 10, 50, true)
	if got := OptimalMICShare(db, 0, defaultSearchOptions(), device.Xeon(), device.Phi(), 0, 0); got != 0.5 {
		t.Fatalf("zero query share %v", got)
	}
}

func TestEstimateSecondsTracksEngine(t *testing.T) {
	// The predictor must agree with the engine's own simulated seconds
	// (same cost pipeline, minus functional overflow accounting).
	rng := rand.New(rand.NewSource(602))
	db := randDB(rng, 800, 300, true)
	query := randProtein(rng, 250)
	opt := defaultSearchOptions()
	for _, dev := range []*device.Model{device.Xeon(), device.Phi()} {
		eng, err := NewEngine(db, dev)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Search(query, opt)
		if err != nil {
			t.Fatal(err)
		}
		lengths := make([]int, db.Len())
		for i := range lengths {
			lengths[i] = db.Seq(i).Len()
		}
		est := estimateSeconds(lengths, query.Len(), dev, opt)
		ratio := est / res.SimSeconds
		if ratio < 0.98 || ratio > 1.02 {
			t.Fatalf("%s: estimate %v vs engine %v (ratio %v)", dev.Short, est, res.SimSeconds, ratio)
		}
	}
}
