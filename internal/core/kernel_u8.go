package core

import (
	"heterosw/internal/alphabet"
	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
	"heterosw/internal/vec"
)

// The 8-bit first pass of the precision ladder. Scores are computed in
// unsigned byte lanes with biased substitution scores (the SSW Library's
// representation): twice the lanes per vector word as the 16-bit pass, so
// short-sequence lane groups — the bulk of a length-sorted protein
// database — pack twice as many subjects per vector iteration. Saturation
// escalates per lane, 8 -> 16 -> 32 bits, exactly mirroring the existing
// 16 -> 32 scheme; lane groups whose score upper bound provably fits a
// byte skip saturation detection entirely.

// scoreBound returns an upper bound on any Smith-Waterman score of the
// query against a subject of at most n residues: an alignment has at most
// min(M, n) match columns, each worth at most the matrix maximum, and gap
// columns never add score. A non-positive matrix maximum bounds every
// score at zero.
func scoreBound(q *profile.Query, n int) int64 {
	if q.MaxScore <= 0 {
		return 0
	}
	m := q.Len()
	if n < m {
		m = n
	}
	return int64(m) * int64(q.MaxScore)
}

// ladderSafe8 reports whether every lane of a width-n group provably stays
// below the biased uint8 saturation rail, so the 8-bit pass needs no
// saturation detection and no lane can ever need escalation.
func ladderSafe8(q *profile.Query, n int) bool {
	return scoreBound(q, n)+int64(q.Bias) < vec.MaxU8
}

// alignGroupIntrinsic8 is the ladder's first-pass kernel: the intrinsic
// tile driver of alignGroupIntrinsic run over unsigned byte lanes with
// biased scores. H, E and F hold true non-negative cell values clamped at
// zero (lifting a negative E/F to zero never changes H = max(0, ...), the
// standard unsigned-SIMD argument); the per-cell sequence is a saturating
// add of the biased score, a saturating subtract of the bias, the three-way
// max, and saturating gap updates. A lane whose tracked maximum reaches
// MaxU8-Bias may have clipped and is recomputed at 16 bits (scalarLane16);
// should that saturate too, at 32 bits (scalarLane).
//
// Callers must ensure q.Bias8Viable(); AlignGroup falls back to the 16-bit
// kernel otherwise.
//
//sw:hotpath
func alignGroupIntrinsic8(q *profile.Query, g *seqdb.LaneGroup, p Params, buf *Buffers) ([]int32, Stats) {
	L := g.Lanes
	M := q.Len()
	N := g.Width
	scores := make([]int32, L)
	var st Stats
	st.Groups = 1
	for lane := 0; lane < L; lane++ {
		if g.SeqIdx[lane] >= 0 {
			st.Alignments++
		}
	}
	if M == 0 || N == 0 {
		return scores, st
	}
	B := p.blockRows()
	if B == 0 || B > M {
		B = M
	}
	bias := int32(q.Bias)
	qr := int32(p.GapOpen + p.GapExtend)
	r := int32(p.GapExtend)
	isQP := p.Variant.Prof() == ProfQuery
	safe := ladderSafe8(q, N)
	if safe {
		st.Safe8Groups = 1
	}

	// H and E share one contiguous slab, mirroring the 16-bit kernel.
	he := grow8(&buf.he8, 2*(B+1)*L)
	h, e := he[:(B+1)*L], he[(B+1)*L:]
	hb := grow8(&buf.hb8, (N+1)*L)
	fb := grow8(&buf.fb8, (N+1)*L)
	maxv := buf.max8
	fcol := buf.f8
	diagv := buf.diag8

	vec.Set1U8(maxv, 0)
	for i := range hb {
		hb[i] = 0
		fb[i] = 0 // true -inf clamps to the unsigned floor
	}

	// Gap penalties clamp to the byte rail exactly: H <= 255, so a
	// saturating subtract of min(penalty, 255) equals the wide subtract
	// clamped at zero.
	qr8 := clampU8(int(qr))
	r8 := clampU8(int(r))

	// The byte-lane op sequence (AddSatU8 diag+biased score; SubSatU8Const
	// bias; MaxU8s with E and F; MaxIntoU8 tracker; SubSatU8Const updates
	// of E and F) is fused into one vec column step per database column;
	// internal/vec holds the unfused reference semantics.
	seqBytes := alphabet.BytesView(q.Seq)
	for i0 := 1; i0 <= M; i0 += B {
		i1 := i0 + B - 1
		if i1 > M {
			i1 = M
		}
		rows := i1 - i0 + 1
		for i := 0; i < (rows+1)*L; i++ {
			h[i] = 0
			e[i] = 0
		}
		vec.Set1U8(diagv, 0)
		tileSeq := seqBytes[i0-1 : i1]
		tileQP := q.QP8[(i0-1)*q.Width:]
		for jj := 1; jj <= N; jj++ {
			col := g.Interleaved[(jj-1)*L : jj*L]
			fbRow := vec.U8(fb[jj*L : jj*L+L])
			copy(fcol, fbRow)
			if isQP {
				vec.StepCol8QP(vec.U8(h[L:]), vec.U8(e[L:]), fcol, diagv, maxv,
					tileQP, q.Width, col, rows, L, q.Bias, qr8, r8)
			} else {
				buf.sr8.Build(q, col)
				vec.StepCol8SP(vec.U8(h[L:]), vec.U8(e[L:]), fcol, diagv, maxv,
					buf.sr8.Raw(), tileSeq, rows, L, q.Bias, qr8, r8)
			}
			hbRow := vec.U8(hb[jj*L : jj*L+L])
			copy(diagv, hbRow)
			copy(hbRow, h[rows*L:(rows+1)*L])
			copy(fbRow, fcol)
		}
	}

	// Score extraction with ladder escalation: provably-safe groups skip
	// detection entirely; otherwise a lane whose tracked maximum reached
	// the biased rail is recomputed at the next tier.
	rail := int32(vec.MaxU8) - bias
	var h16, e16 []int16
	var h32, e32 []int32
	for l := 0; l < L; l++ {
		if g.SeqIdx[l] < 0 {
			continue
		}
		if safe || int32(maxv[l]) < rail {
			scores[l] = int32(maxv[l])
			continue
		}
		// 8-bit saturation: recompute the lane at 16 bits.
		if h16 == nil {
			h16 = grow16(&buf.lane16H, M+1)
			e16 = grow16(&buf.lane16E, M+1)
		}
		st.Overflows8++
		st.OverflowCells += int64(M) * int64(g.Lens[l])
		s, sat := scalarLane16(q, g, l, p, h16, e16)
		if !sat {
			scores[l] = s
			continue
		}
		// 16-bit saturation: the top rung, exact 32-bit recomputation.
		if h32 == nil {
			h32 = grow32(&buf.h32, M+1)
			e32 = grow32(&buf.e32, M+1)
		}
		st.Overflows++
		st.OverflowCells += int64(M) * int64(g.Lens[l])
		scores[l] = scalarLane(q, g, l, p, h32, e32)
	}
	st.Cells = int64(M) * g.Residues
	st.VecIters = int64(M) * int64(N)
	st.PaddedCells = st.VecIters * int64(L)
	st.Columns = int64(N)
	if isQP {
		st.Gathers = st.VecIters
	} else {
		st.SPBuilds = st.Columns
	}
	return scores, st
}
