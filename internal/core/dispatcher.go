package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"heterosw/internal/device"
	"heterosw/internal/offload"
	"heterosw/internal/sched"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
)

// Backend is one compute device participating in a cluster search: an
// identity, a performance model for cost prediction and simulated timing,
// and an executor that runs Algorithm 1 over a database shard. The stock
// implementation is EngineBackend; experiment code can plug in any other
// device roster (the KNL of the 2017 follow-up, a gather-less Phi
// ablation, ...) by providing a device.Model or a whole implementation.
type Backend interface {
	// Name identifies the backend in results and diagnostics; rosters
	// with repeated device kinds should still use distinct names.
	Name() string
	// Model is the device performance model used for cost prediction and
	// simulated timing.
	Model() *device.Model
	// Threads is the simulated thread count the backend runs with
	// (0 = the model's hardware maximum).
	Threads() int
	// Search runs the single-device Algorithm 1 over db. Implementations
	// must be safe for concurrent calls and should cache per-database
	// pre-processing (lane packings) so batched queries amortise it.
	// ctx is the request's context: remote backends pass it through to
	// the wire so a cancelled search stops burning node time; local
	// backends may only check it between chunks (kernels are
	// uncancellable mid-column).
	Search(ctx context.Context, db *seqdb.Database, query *sequence.Sequence, opt SearchOptions) (*Result, error)
}

// EngineBackend is the stock Backend: it wraps Engine and caches one
// engine per database shard, so repeated searches over the dispatcher's
// shards or chunks reuse their lane packings exactly as the paper's step 2
// amortises pre-processing.
type EngineBackend struct {
	name    string
	model   *device.Model
	threads int

	mu      sync.Mutex
	engines map[any]*Engine
}

// NewBackend builds an EngineBackend over a device model. threads is the
// simulated thread count (0 = model maximum).
func NewBackend(name string, m *device.Model, threads int) *EngineBackend {
	return &EngineBackend{
		name:    name,
		model:   m,
		threads: threads,
		engines: make(map[any]*Engine),
	}
}

// engineKey is the engine-cache identity of a database: the content key
// for index-backed databases (seqdb.Database.Key), so shards carrying the
// same checksum-derived key share one engine — and its cached lane
// packings — across distinct Database values (a rebuilt shard split of the
// same .swdb, two loads of one index); the pointer for ad-hoc databases,
// whose content has no durable identity.
func engineKey(db *seqdb.Database) any {
	if k := db.Key(); k != "" {
		return k
	}
	return db
}

// Name implements Backend.
func (b *EngineBackend) Name() string { return b.name }

// Model implements Backend.
func (b *EngineBackend) Model() *device.Model { return b.model }

// Threads implements Backend.
func (b *EngineBackend) Threads() int { return b.threads }

// maxCachedEngines bounds the per-backend engine cache. It comfortably
// covers several full default chunk partitions (chunksPerBackend chunks
// per backend per set) so steady-state batch traffic never evicts; when a
// long-running cluster rotates through more shards than this, one
// arbitrary entry is evicted per insert rather than flushing the cache
// wholesale.
const maxCachedEngines = 512

// Search implements Backend, caching one engine per database identity
// (see engineKey). The engine computation itself is uncancellable; ctx is
// honoured at the call boundary so an already-dead request never launches
// kernels.
func (b *EngineBackend) Search(ctx context.Context, db *seqdb.Database, query *sequence.Sequence, opt SearchOptions) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := engineKey(db)
	b.mu.Lock()
	eng, ok := b.engines[key]
	b.mu.Unlock()
	if !ok {
		var err error
		eng, err = NewEngine(db, b.model)
		if err != nil {
			return nil, err
		}
		b.mu.Lock()
		if cached, again := b.engines[key]; again {
			eng = cached
		} else {
			if len(b.engines) >= maxCachedEngines {
				for k := range b.engines {
					delete(b.engines, k)
					break
				}
			}
			b.engines[key] = eng
		}
		b.mu.Unlock()
	}
	return eng.Search(query, opt)
}

// Distribution selects the dispatcher's workload-distribution strategy.
type Distribution int

const (
	// DistStatic splits the database residues into one shard per backend
	// before the search starts — Algorithm 2's distribution, generalised
	// from two devices to N.
	DistStatic Distribution = iota
	// DistDynamic runs a device-level work queue of equal-residue chunks
	// that idle backends claim as they drain — the dynamic distribution
	// strategy the paper names as future work, mirroring OpenMP
	// schedule(dynamic) one level up.
	DistDynamic
	// DistGuided is DistDynamic with geometrically shrinking chunks
	// (OpenMP schedule(guided) at the device level): large grants early,
	// small ones to fill the load-balancing tail.
	DistGuided
)

// String returns the distribution's flag-friendly name.
func (d Distribution) String() string {
	switch d {
	case DistStatic:
		return "static"
	case DistDynamic:
		return "dynamic"
	case DistGuided:
		return "guided"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// ParseDistribution converts a distribution name to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	for _, d := range []Distribution{DistStatic, DistDynamic, DistGuided} {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("core: unknown distribution %q (have static, dynamic, guided)", s)
}

// DispatchOptions configures one cluster search.
type DispatchOptions struct {
	// Search carries the shared kernel configuration. Its Threads field is
	// ignored: each backend runs with its own Backend.Threads().
	Search SearchOptions
	// Dist selects the workload distribution (DistStatic when zero).
	Dist Distribution
	// Shares holds the static residue fraction per backend; nil derives
	// model-balanced shares (OptimalShares) per query. Ignored by the
	// dynamic distributions.
	Shares []float64
	// ChunkResidues is the dynamic chunk granularity in residues (for
	// DistGuided, the minimum chunk). 0 derives a default that yields
	// roughly chunksPerBackend chunks per backend.
	ChunkResidues int64
}

// chunksPerBackend sets the default dynamic chunk granularity: enough
// chunks that the end-of-queue imbalance is a small fraction of the whole
// search, few enough that per-chunk dispatch and PCIe latency stay noise.
const chunksPerBackend = 24

// BackendStats reports one backend's part in a cluster search.
type BackendStats struct {
	// Name and Threads identify the backend and its simulated occupancy
	// (Threads is 0 when the backend received no work).
	Name    string
	Threads int
	// Share is the realised fraction of database residues the backend
	// processed (static) or was scheduled in simulation (dynamic).
	Share float64
	// Chunks counts the device-level work grants: 1 shard under the
	// static distribution, claimed queue chunks under the dynamic ones.
	Chunks int
	// SimSeconds is the backend's simulated busy time, including its PCIe
	// transfers for offload devices.
	SimSeconds float64
}

// ClusterResult reports a dispatcher search: the merged score list plus
// per-backend accounting.
type ClusterResult struct {
	Result
	// PerBackend has one entry per dispatcher backend, in roster order.
	PerBackend []BackendStats
}

// Dispatcher distributes database shards across N backends: the paper's
// Algorithm 2 generalised from the fixed Xeon+Phi pair to a device-count-
// agnostic cluster, with either the static residue split or a dynamic
// device-level chunk queue. A Dispatcher is safe for concurrent searches;
// shard splits, chunk partitions and per-backend engines are cached, so
// batched queries amortise every piece of pre-processing.
type Dispatcher struct {
	db       *seqdb.Database
	backends []Backend

	// fixed pins the shard assignment (one shard per backend, in roster
	// order) instead of deriving splits from shares — the distributed
	// coordinator's mode, where backend i is the remote node owning shard
	// i and the cut was made ahead of time by swindex split. owner maps
	// each parent sequence index to its owning backend and shard-local
	// index, for the traceback fan-out. Both are nil for ordinary
	// dispatchers.
	fixed *shardSet
	owner []shardRef

	mu         sync.Mutex
	shards     map[string]*shardSet   //sw:guardedBy(mu)
	chunks     map[chunkKey]*chunkSet //sw:guardedBy(mu)
	plans      map[string]*Plan       //sw:guardedBy(mu)
	autoShares map[string][]float64   //sw:guardedBy(mu)

	totalsMu sync.Mutex
	queries  int64           //sw:guardedBy(totalsMu)
	totals   []BackendTotals //sw:guardedBy(totalsMu)
}

// shardSet is one cached static split.
type shardSet struct {
	shares []float64 // requested
	dbs    []*seqdb.Database
	idx    [][]int
}

type chunkKey struct {
	dist          Distribution
	chunkResidues int64
}

// chunkSet is one cached device-level chunk partition. Chunks are stored
// in consumption order (see newChunkSet).
type chunkSet struct {
	dbs []*seqdb.Database
	idx [][]int
}

// NewDispatcher builds a dispatcher over a database and a backend roster.
func NewDispatcher(db *seqdb.Database, backends []Backend) (*Dispatcher, error) {
	if db == nil {
		return nil, fmt.Errorf("core: nil database")
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("core: empty backend roster")
	}
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("core: nil backend %d", i)
		}
		if err := b.Model().Validate(); err != nil {
			return nil, fmt.Errorf("core: backend %d (%s): %w", i, b.Name(), err)
		}
	}
	totals := make([]BackendTotals, len(backends))
	for i, b := range backends {
		totals[i].Name = b.Name()
	}
	return &Dispatcher{
		db:         db,
		backends:   backends,
		shards:     make(map[string]*shardSet),
		chunks:     make(map[chunkKey]*chunkSet),
		plans:      make(map[string]*Plan),
		autoShares: make(map[string][]float64),
		totals:     totals,
	}, nil
}

// shardRef locates one parent sequence within a fixed shard assignment.
type shardRef struct {
	backend int // roster index of the owning backend
	local   int // caller index within that backend's shard
}

// NewDispatcherShards builds a dispatcher over a pre-cut shard assignment:
// backend i permanently owns shardDBs[i], whose caller-order sequences map
// back to the parent database through shardIdx[i]. This is the distributed
// coordinator's construction — the shards were cut ahead of time (swindex
// split) and each backend is a remote node that can only search the shard
// it holds, so the dispatcher must never re-split. The shards must cover
// the parent exactly: every parent index appears in exactly one shard.
// Only the static distribution is valid over a fixed assignment.
func NewDispatcherShards(db *seqdb.Database, backends []Backend, shardDBs []*seqdb.Database, shardIdx [][]int) (*Dispatcher, error) {
	d, err := NewDispatcher(db, backends)
	if err != nil {
		return nil, err
	}
	if len(shardDBs) != len(backends) || len(shardIdx) != len(backends) {
		return nil, fmt.Errorf("core: %d shards and %d index maps for %d backends",
			len(shardDBs), len(shardIdx), len(backends))
	}
	owner := make([]shardRef, db.Len())
	seen := make([]bool, db.Len())
	covered := 0
	for i, sdb := range shardDBs {
		if sdb == nil {
			return nil, fmt.Errorf("core: nil shard %d", i)
		}
		if sdb.Len() != len(shardIdx[i]) {
			return nil, fmt.Errorf("core: shard %d holds %d sequences but maps %d parent indices",
				i, sdb.Len(), len(shardIdx[i]))
		}
		for j, pi := range shardIdx[i] {
			if pi < 0 || pi >= db.Len() || seen[pi] {
				return nil, fmt.Errorf("core: shard %d maps parent index %d outside a one-to-one cover of [0,%d)",
					i, pi, db.Len())
			}
			seen[pi] = true
			covered++
			owner[pi] = shardRef{backend: i, local: j}
		}
	}
	if covered != db.Len() {
		return nil, fmt.Errorf("core: shards cover %d of %d parent sequences", covered, db.Len())
	}
	d.fixed = &shardSet{dbs: shardDBs, idx: shardIdx}
	d.owner = owner
	return d, nil
}

// BackendTotals is one backend's cumulative accounting across every search
// the dispatcher has completed, whichever concurrent batch it arrived on.
type BackendTotals struct {
	// Name identifies the backend within the roster.
	Name string
	// Grants counts executed work grants: shards under the static
	// distribution, claimed queue chunks under the dynamic ones.
	Grants int64
	// Residues is the total database residues the backend has processed.
	Residues int64
	// SimSeconds is the backend's accumulated simulated busy time.
	SimSeconds float64
	// Tracebacks counts the aligned-hit tracebacks the backend has run in
	// reporting phase two (AlignHits).
	Tracebacks int64
}

// Totals reports the number of completed query searches and per-backend
// cumulative accounting, in roster order. It is safe to call while batches
// are in flight; the snapshot is internally consistent.
func (d *Dispatcher) Totals() (queries int64, per []BackendTotals) {
	d.totalsMu.Lock()
	defer d.totalsMu.Unlock()
	return d.queries, append([]BackendTotals(nil), d.totals...)
}

// totalsDelta is one search's contribution to the cumulative accounting:
// functionally executed work grants and residues per backend, plus the
// per-backend simulated busy time. Deltas are committed only for searches
// whose results reach the caller, so a failed batch that gets retried
// query-by-query never counts its discarded partial work twice.
type totalsDelta struct {
	grants, residues []int64
	simSeconds       []float64
}

// commitTotals folds completed searches into the cumulative accounting.
func (d *Dispatcher) commitTotals(deltas []totalsDelta) {
	if len(deltas) == 0 {
		return
	}
	d.totalsMu.Lock()
	defer d.totalsMu.Unlock()
	for _, td := range deltas {
		d.queries++
		for i := range d.totals {
			d.totals[i].Grants += td.grants[i]
			d.totals[i].Residues += td.residues[i]
			d.totals[i].SimSeconds += td.simSeconds[i]
		}
	}
}

// Backends returns the dispatcher's roster.
func (d *Dispatcher) Backends() []Backend { return d.backends }

// DB returns the dispatcher's database.
func (d *Dispatcher) DB() *seqdb.Database { return d.db }

// resolveShares validates explicit shares or derives model-balanced ones.
// Derived shares are quantised to 1/128 so that queries of nearby lengths
// resolve to the same share vector and hit the cached shard split instead
// of materialising a fresh one per distinct query length, and the
// derivation itself — a full-database cost estimate per backend — is
// cached per cost-relevant option key so per-query traffic does not
// re-plan the whole database every search.
func (d *Dispatcher) resolveShares(queryLen int, opt DispatchOptions) ([]float64, error) {
	if opt.Shares == nil {
		key := shareKey(queryLen, opt.Search)
		d.mu.Lock()
		if s, ok := d.autoShares[key]; ok {
			d.mu.Unlock()
			return s, nil
		}
		d.mu.Unlock()
		shares := OptimalShares(d.db.OrderLengths(), queryLen, opt.Search, d.backends)
		for i := range shares {
			shares[i] = math.Round(shares[i]*128) / 128
		}
		d.mu.Lock()
		if len(d.autoShares) >= maxCachedPlans {
			d.autoShares = make(map[string][]float64)
		}
		d.autoShares[key] = shares
		d.mu.Unlock()
		return shares, nil
	}
	if err := validateShares(opt.Shares, len(d.backends)); err != nil {
		return nil, err
	}
	return opt.Shares, nil
}

// shareKey identifies every option that feeds the share derivation's cost
// estimate (per-backend threads are fixed by the roster).
func shareKey(queryLen int, opt SearchOptions) string {
	return fmt.Sprintf("%d|%+v|%d|%v|%d",
		queryLen, opt.Params, opt.LongSeqThreshold, opt.Schedule, opt.ChunkSize)
}

// validateShares checks an explicit static share vector against a roster
// size.
func validateShares(shares []float64, backends int) error {
	if len(shares) != backends {
		return fmt.Errorf("core: %d shares for %d backends", len(shares), backends)
	}
	var sum float64
	for i, s := range shares {
		if s < 0 {
			return fmt.Errorf("core: negative share %v for backend %d", s, i)
		}
		sum += s
	}
	if sum == 0 {
		return fmt.Errorf("core: shares sum to zero")
	}
	return nil
}

// maxCachedSplits and maxCachedChunkSets bound the dispatcher's caches: a
// long-running cluster serving pathological option mixes flushes and
// rebuilds rather than growing without bound.
const (
	maxCachedSplits    = 16
	maxCachedChunkSets = 8
)

// shardsFor returns (and caches) the static split for a share vector.
func (d *Dispatcher) shardsFor(shares []float64) *shardSet {
	key := fmt.Sprintf("%.9v", shares)
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.shards[key]; ok {
		return s
	}
	if len(d.shards) >= maxCachedSplits {
		d.shards = make(map[string]*shardSet)
	}
	dbs, idx := d.db.SplitN(shares)
	s := &shardSet{shares: shares, dbs: dbs, idx: idx}
	d.shards[key] = s
	return s
}

// chunkWindows computes device-level chunk boundaries over a
// length-sorted processing order: windows of consecutive sequences whose
// residues accumulate to the sched.ChunkSizes targets. Dynamic chunks are
// returned heaviest-first (the reversed, longest-sequences-first order, as
// sched.Simulate's in-device dynamic policy dispatches), Guided chunks in
// front-to-back order so the shrinking grants end with the smallest.
// target <= 0 derives the default granularity of roughly chunksPerBackend
// chunks per worker.
func chunkWindows(lengths []int, dist Distribution, workers int, target int64) [][2]int {
	var total int64
	for _, l := range lengths {
		total += int64(l)
	}
	if target <= 0 {
		target = total / int64(chunksPerBackend*workers)
	}
	if target < 1 {
		target = 1
	}
	policy := sched.Dynamic
	if dist == DistGuided {
		policy = sched.Guided
	}
	sizes := sched.ChunkSizes(policy, total, workers, target)
	var windows [][2]int
	start := 0
	for _, size := range sizes {
		if start >= len(lengths) {
			break
		}
		end := start
		var got int64
		for end < len(lengths) && got < size {
			got += int64(lengths[end])
			end++
		}
		windows = append(windows, [2]int{start, end})
		start = end
	}
	// Residue targets can under-run when single sequences exceed the
	// chunk size; sweep up the remainder as one final chunk.
	if start < len(lengths) {
		windows = append(windows, [2]int{start, len(lengths)})
	}
	if policy == sched.Dynamic {
		for i, j := 0, len(windows)-1; i < j; i, j = i+1, j-1 {
			windows[i], windows[j] = windows[j], windows[i]
		}
	}
	return windows
}

// chunksFor returns (and caches) the device-level chunk partition for a
// dynamic distribution, materialised as sub-databases plus parent index
// maps, in consumption order.
func (d *Dispatcher) chunksFor(opt DispatchOptions) *chunkSet {
	target := opt.ChunkResidues
	if target <= 0 {
		target = d.db.Residues() / int64(chunksPerBackend*len(d.backends))
	}
	if target < 1 {
		target = 1
	}
	key := chunkKey{dist: opt.Dist, chunkResidues: target}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.chunks[key]; ok {
		return c
	}
	if len(d.chunks) >= maxCachedChunkSets {
		d.chunks = make(map[chunkKey]*chunkSet)
	}
	c := &chunkSet{}
	for _, w := range chunkWindows(d.db.OrderLengths(), opt.Dist, len(d.backends), target) {
		cdb, idx := d.db.OrderSlice(w[0], w[1])
		c.dbs = append(c.dbs, cdb)
		c.idx = append(c.idx, idx)
	}
	d.chunks[key] = c
	return c
}

// backendOpt specialises the shared kernel options for one backend.
func backendOpt(opt SearchOptions, b Backend) SearchOptions {
	o := opt
	o.Threads = b.Threads()
	o.TopK = 0
	return o
}

// Search distributes one query over the cluster and merges the score
// lists into caller order — Algorithm 2 with N devices. It is the
// context-free convenience root; serving paths use SearchContext.
//
//sw:ctxroot
func (d *Dispatcher) Search(query *sequence.Sequence, opt DispatchOptions) (*ClusterResult, error) {
	return d.SearchContext(context.Background(), query, opt)
}

// SearchContext is Search with cancellation (see SearchBatchContext for
// the semantics).
func (d *Dispatcher) SearchContext(ctx context.Context, query *sequence.Sequence, opt DispatchOptions) (*ClusterResult, error) {
	res, err := d.SearchBatchContext(ctx, []*sequence.Sequence{query}, opt)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// SearchBatch runs a batch of queries over the cluster. The shard split
// (or chunk partition) is resolved once for the whole batch and every
// backend engine caches its lane packings, so per-query work reduces to
// the query-profile setup and the kernels themselves. With model-balanced
// static shares the split is derived from the mean query length. It is
// the context-free convenience root; serving paths use SearchBatchContext.
//
//sw:ctxroot
func (d *Dispatcher) SearchBatch(queries []*sequence.Sequence, opt DispatchOptions) ([]*ClusterResult, error) {
	return d.SearchBatchContext(context.Background(), queries, opt)
}

// SearchBatchContext is SearchBatch with cancellation: the context is
// checked at every query boundary, so an abandoned batch (a closed stream,
// a disconnected HTTP client) stops burning backend time mid-batch instead
// of running to completion. Kernels already launched finish their current
// query; nothing is left running after the call returns.
func (d *Dispatcher) SearchBatchContext(ctx context.Context, queries []*sequence.Sequence, opt DispatchOptions) ([]*ClusterResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	for i, q := range queries {
		if q == nil {
			return nil, fmt.Errorf("core: nil query %d", i)
		}
	}
	var search func(q *sequence.Sequence) (*ClusterResult, totalsDelta, error)
	switch {
	case d.fixed != nil:
		// A fixed shard assignment admits no re-splitting and no chunk
		// queue: each backend can only ever search the shard it owns.
		if opt.Dist != DistStatic {
			return nil, fmt.Errorf("core: %v distribution over a fixed shard assignment (only static is valid)", opt.Dist)
		}
		set := d.fixed
		search = func(q *sequence.Sequence) (*ClusterResult, totalsDelta, error) {
			return d.searchStatic(ctx, q, opt, set)
		}
	case opt.Dist == DistStatic:
		meanLen := 0
		for _, q := range queries {
			meanLen += q.Len()
		}
		meanLen /= len(queries)
		shares, err := d.resolveShares(meanLen, opt)
		if err != nil {
			return nil, err
		}
		set := d.shardsFor(shares)
		search = func(q *sequence.Sequence) (*ClusterResult, totalsDelta, error) {
			return d.searchStatic(ctx, q, opt, set)
		}
	case opt.Dist == DistDynamic || opt.Dist == DistGuided:
		set := d.chunksFor(opt)
		search = func(q *sequence.Sequence) (*ClusterResult, totalsDelta, error) {
			return d.searchDynamic(ctx, q, opt, set)
		}
	default:
		return nil, fmt.Errorf("core: unknown distribution %v", opt.Dist)
	}
	out := make([]*ClusterResult, len(queries))
	deltas := make([]totalsDelta, 0, len(queries))
	for i, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, td, err := search(q)
		if err != nil {
			return nil, err
		}
		out[i] = r
		deltas = append(deltas, td)
	}
	// Totals commit only when the whole batch succeeds: results of a
	// failed batch are discarded by the caller (and typically retried),
	// so counting their partial work would double-book the retry.
	d.commitTotals(deltas)
	return out, nil
}

// searchStatic runs every backend over its pre-split shard concurrently
// (each launch is an asynchronous offload region; the paper's signal/wait
// pair generalises to one signal per backend) and merges by shard index
// maps. Backends with empty shards are skipped entirely, exactly as
// Algorithm 2 degenerates to Algorithm 1 at a 0% coprocessor share.
func (d *Dispatcher) searchStatic(ctx context.Context, query *sequence.Sequence, opt DispatchOptions, set *shardSet) (*ClusterResult, totalsDelta, error) {
	n := len(d.backends)
	results := make([]*Result, n)
	errs := make([]error, n)
	start := time.Now()
	sigs := make([]*offload.Signal, n)
	for i, b := range d.backends {
		if set.dbs[i].Len() == 0 {
			continue
		}
		i, b := i, b
		sigs[i] = offload.Start(func() {
			results[i], errs[i] = b.Search(ctx, set.dbs[i], query, backendOpt(opt.Search, b))
		})
	}
	for _, sig := range sigs {
		if sig != nil {
			sig.Wait()
		}
	}
	wall := time.Since(start).Seconds()
	if err := firstErr(errs...); err != nil {
		return nil, totalsDelta{}, err
	}

	out := &ClusterResult{PerBackend: make([]BackendStats, n)}
	scores := make([]int32, d.db.Len())
	grants := make([]int64, n)
	residues := make([]int64, n)
	simSeconds := make([]float64, n)
	for i, b := range d.backends {
		st := &out.PerBackend[i]
		st.Name = b.Name()
		st.Chunks = 1
		if d.db.Residues() > 0 {
			st.Share = float64(set.dbs[i].Residues()) / float64(d.db.Residues())
		}
		r := results[i]
		if r == nil {
			st.Chunks = 0
			continue
		}
		st.Threads = r.Threads
		st.SimSeconds = r.SimSeconds
		grants[i] = 1
		residues[i] = set.dbs[i].Residues()
		simSeconds[i] = r.SimSeconds
		for j, s := range r.Scores {
			scores[set.idx[i][j]] = s
		}
		out.Stats.Add(r.Stats)
		out.Threads += r.Threads
		if r.SimSeconds > out.SimSeconds {
			out.SimSeconds = r.SimSeconds
		}
	}
	out.Scores = scores
	out.WallSeconds = wall
	d.finishResult(out, opt)
	return out, totalsDelta{grants: grants, residues: residues, simSeconds: simSeconds}, nil
}

// searchDynamic drains a shared chunk queue with one worker goroutine per
// backend: each backend claims the next chunk as it goes idle (real work
// stealing over lane-group chunks). Scores land in disjoint index ranges,
// so the merge is race-free by construction. Simulated per-backend times
// come from the deterministic device-level schedule replay (Plan), keeping
// simulated results independent of host timing jitter exactly as
// internal/sched separates Parallel from Simulate.
func (d *Dispatcher) searchDynamic(ctx context.Context, query *sequence.Sequence, opt DispatchOptions, set *chunkSet) (*ClusterResult, totalsDelta, error) {
	n := len(d.backends)
	scores := make([]int32, d.db.Len())
	statsPer := make([]Stats, n)
	claimed := make([]int64, n)
	claimedRes := make([]int64, n)
	errs := make([]error, n)

	start := time.Now()
	var next int64
	var mu sync.Mutex
	pop := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(len(set.dbs)) {
			return -1
		}
		c := int(next)
		next++
		return c
	}
	sigs := make([]*offload.Signal, n)
	for i, b := range d.backends {
		i, b := i, b
		sigs[i] = offload.Start(func() {
			bopt := backendOpt(opt.Search, b)
			for {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				c := pop()
				if c < 0 {
					return
				}
				r, err := b.Search(ctx, set.dbs[c], query, bopt)
				if err != nil {
					errs[i] = err
					return
				}
				claimed[i]++
				claimedRes[i] += set.dbs[c].Residues()
				for j, s := range r.Scores {
					scores[set.idx[c][j]] = s
				}
				statsPer[i].Add(r.Stats)
			}
		})
	}
	for _, sig := range sigs {
		sig.Wait()
	}
	wall := time.Since(start).Seconds()
	if err := firstErr(errs...); err != nil {
		return nil, totalsDelta{}, err
	}

	out := &ClusterResult{PerBackend: make([]BackendStats, n)}
	out.Scores = scores
	out.WallSeconds = wall
	for i := range statsPer {
		out.Stats.Add(statsPer[i])
	}
	// Simulated accounting: replay the deterministic device-level
	// schedule over the model-predicted chunk costs.
	plan := d.planChunks(query.Len(), opt, set)
	for i, b := range d.backends {
		st := &out.PerBackend[i]
		st.Name = b.Name()
		st.Share = plan.Shares[i]
		st.Chunks = plan.Chunks[i]
		st.SimSeconds = plan.Seconds[i]
		if plan.Chunks[i] > 0 {
			st.Threads = effectiveThreads(b)
			out.Threads += st.Threads
		}
	}
	out.SimSeconds = plan.Makespan
	d.finishResult(out, opt)
	return out, totalsDelta{grants: claimed, residues: claimedRes, simSeconds: plan.Seconds}, nil
}

// finishResult computes the derived fields shared by both distributions:
// GCUPS rates and the merged, sorted hit list of step 4.
func (d *Dispatcher) finishResult(out *ClusterResult, opt DispatchOptions) {
	if out.SimSeconds > 0 {
		out.SimGCUPS = float64(out.Stats.Cells) / out.SimSeconds / 1e9
	}
	if out.WallSeconds > 0 {
		out.WallGCUPS = float64(out.Stats.Cells) / out.WallSeconds / 1e9
	}
	hits := make([]Hit, d.db.Len())
	for i, s := range out.Scores {
		hits[i] = Hit{SeqIndex: i, ID: d.db.Seq(i).ID, Score: s}
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Score > hits[b].Score })
	if opt.Search.TopK > 0 && opt.Search.TopK < len(hits) {
		hits = hits[:opt.Search.TopK]
	}
	out.Hits = hits
}

func effectiveThreads(b Backend) int {
	if t := b.Threads(); t > 0 {
		return t
	}
	return b.Model().MaxThreads()
}

// Plan is a predicted cluster schedule: per-backend busy seconds and the
// completion time a distribution would achieve, computed from the device
// cost models alone (no kernels run). It powers distribution-strategy
// comparisons at full database scale, where functional execution is
// prohibitive but the shape-level simulation is exact.
type Plan struct {
	// Dist is the planned distribution.
	Dist Distribution
	// Shares is the residue fraction scheduled onto each backend.
	Shares []float64
	// Seconds is each backend's predicted busy time, including region
	// launch and PCIe transfers for offload devices.
	Seconds []float64
	// Chunks is the number of work grants per backend (the shard counts
	// as one under the static distribution).
	Chunks []int
	// Makespan is the predicted completion time: the slowest backend plus
	// the final host-side sort of the merged score list. Backend times
	// exclude per-shard/per-chunk sorting and the final sort is charged
	// identically to every distribution, so makespans are directly
	// comparable across strategies. (The functional static path reports
	// SimSeconds as the max of per-device Engine times — which do include
	// each shard's own sort — mirroring Algorithm 2's original
	// accounting.)
	Makespan float64
}

// Plan predicts the cluster schedule for a query length without running
// any kernels.
func (d *Dispatcher) Plan(queryLen int, opt DispatchOptions) (*Plan, error) {
	switch opt.Dist {
	case DistStatic:
		var set *shardSet
		if d.fixed != nil {
			set = d.fixed
		} else {
			shares, err := d.resolveShares(queryLen, opt)
			if err != nil {
				return nil, err
			}
			set = d.shardsFor(shares)
		}
		parts := make([][]int, len(set.dbs))
		for i, sdb := range set.dbs {
			parts[i] = sdb.OrderLengths()
		}
		return planStaticLengths(parts, queryLen, d.backends, opt, d.db.Len()), nil
	case DistDynamic, DistGuided:
		if d.fixed != nil {
			return nil, fmt.Errorf("core: %v distribution over a fixed shard assignment (only static is valid)", opt.Dist)
		}
		return d.planChunks(queryLen, opt, d.chunksFor(opt)), nil
	}
	return nil, fmt.Errorf("core: unknown distribution %v", opt.Dist)
}

// planStaticLengths prices one static split: per-part compute seconds,
// realised residue shares, and the final host-side sort of the merged
// list. It is the single static-planning pipeline behind both
// Dispatcher.Plan (materialised shards) and PlanLengths (bare lengths).
func planStaticLengths(parts [][]int, queryLen int, backends []Backend, opt DispatchOptions, dbLen int) *Plan {
	p := &Plan{
		Dist:    DistStatic,
		Shares:  make([]float64, len(backends)),
		Seconds: make([]float64, len(backends)),
		Chunks:  make([]int, len(backends)),
	}
	var total int64
	residues := make([]int64, len(parts))
	for i, part := range parts {
		for _, l := range part {
			residues[i] += int64(l)
		}
		total += residues[i]
	}
	for i, b := range backends {
		if total > 0 {
			p.Shares[i] = float64(residues[i]) / float64(total)
		}
		if len(parts[i]) == 0 {
			continue
		}
		p.Seconds[i] = estimateComputeSeconds(parts[i], queryLen, b.Model(), backendOpt(opt.Search, b))
		p.Chunks[i] = 1
		if p.Seconds[i] > p.Makespan {
			p.Makespan = p.Seconds[i]
		}
	}
	p.Makespan += device.HostSortSeconds(dbLen)
	return p
}

// maxCachedPlans bounds the chunk-plan cache.
const maxCachedPlans = 32

// planChunks returns (and caches) the chunk-queue plan for a query length
// over the dispatcher's materialised chunk set, so a batch of same-length
// queries prices the chunk/backend cost matrix once. The key covers every
// cost-relevant option; callers must treat the returned Plan as read-only.
func (d *Dispatcher) planChunks(queryLen int, opt DispatchOptions, set *chunkSet) *Plan {
	key := fmt.Sprintf("%v|%d|%s", opt.Dist, opt.ChunkResidues, shareKey(queryLen, opt.Search))
	d.mu.Lock()
	if p, ok := d.plans[key]; ok {
		d.mu.Unlock()
		return p
	}
	d.mu.Unlock()

	chunkLens := make([][]int, len(set.dbs))
	for c, cdb := range set.dbs {
		chunkLens[c] = cdb.OrderLengths()
	}
	p := planChunkLengths(chunkLens, queryLen, d.backends, opt, d.db.Len())

	d.mu.Lock()
	if len(d.plans) >= maxCachedPlans {
		d.plans = make(map[string]*Plan)
	}
	d.plans[key] = p
	d.mu.Unlock()
	return p
}

// planChunkLengths replays the device-level chunk queue deterministically
// over model-predicted costs: chunks are consumed in queue order and each
// goes to the backend predicted to finish it first. Backend busy times are
// seeded with the one-time region launch and query transfer; every chunk
// charges its own database shipment and score return for offload devices,
// which is the true cost a dynamic distribution pays for flexibility. The
// final host-side merge sort of the full score list closes the makespan.
func planChunkLengths(chunkLens [][]int, queryLen int, backends []Backend, opt DispatchOptions, dbLen int) *Plan {
	n := len(backends)
	costs := make([][]float64, len(chunkLens))
	residues := make([]int64, len(chunkLens))
	for c, lens := range chunkLens {
		costs[c] = make([]float64, n)
		for i, b := range backends {
			costs[c][i] = chunkSeconds(lens, queryLen, b.Model(), backendOpt(opt.Search, b))
		}
		for _, l := range lens {
			residues[c] += int64(l)
		}
	}
	seed := make([]float64, n)
	for i, b := range backends {
		m := b.Model()
		seed[i] = m.RegionSeconds
		if m.OffloadRequired {
			seed[i] += m.TransferSeconds(offload.QueryBytes(queryLen))
		}
	}
	s := sched.ScheduleChunks(len(chunkLens), n, seed, func(chunk, worker int) float64 {
		return costs[chunk][worker]
	})
	p := &Plan{
		Dist:    opt.Dist,
		Shares:  make([]float64, n),
		Seconds: s.Busy,
		Chunks:  s.Chunks,
	}
	var total int64
	perBackend := make([]int64, n)
	for c, w := range s.Assign {
		perBackend[w] += residues[c]
		total += residues[c]
	}
	if total > 0 {
		for i := range p.Shares {
			p.Shares[i] = float64(perBackend[i]) / float64(total)
		}
	}
	p.Makespan = s.Makespan + device.HostSortSeconds(dbLen)
	return p
}

// PlanLengths predicts the cluster schedule from sequence lengths alone —
// no database materialisation, no kernels. This is what lets swbench
// compare distribution strategies over the full 541,561-sequence
// Swiss-Prot in milliseconds, the same shape-level trick the figures use.
func PlanLengths(lengths []int, queryLen int, backends []Backend, opt DispatchOptions) (*Plan, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("core: empty backend roster")
	}
	sorted := append([]int(nil), lengths...)
	sort.Ints(sorted)
	switch opt.Dist {
	case DistStatic:
		shares := opt.Shares
		if shares == nil {
			shares = OptimalShares(sorted, queryLen, opt.Search, backends)
		}
		if err := validateShares(shares, len(backends)); err != nil {
			return nil, err
		}
		parts := seqdb.SplitLengthsN(sorted, shares)
		return planStaticLengths(parts, queryLen, backends, opt, len(sorted)), nil
	case DistDynamic, DistGuided:
		windows := chunkWindows(sorted, opt.Dist, len(backends), opt.ChunkResidues)
		chunkLens := make([][]int, len(windows))
		for c, w := range windows {
			chunkLens[c] = sorted[w[0]:w[1]]
		}
		return planChunkLengths(chunkLens, queryLen, backends, opt, len(sorted)), nil
	}
	return nil, fmt.Errorf("core: unknown distribution %v", opt.Dist)
}

// chunkSeconds predicts one chunk's busy time on one device, plus the
// chunk's own PCIe shipment for offload devices. Unlike estimateSeconds it
// charges neither the parallel-region launch nor the host sort — those are
// per-search, not per-chunk, and the dispatcher seeds/appends them once.
//
// The queue streams chunks through each backend's in-device dynamic
// scheduler with no barrier between chunks (the device keeps its thread
// pool fed from whatever it has claimed, as SWAPHI's multi-coprocessor
// distribution does), so a chunk's compute cost is its aggregate cycles
// over the device's whole-device throughput; the end-of-search drain tail
// is bounded by one lane group per thread and neglected.
func chunkSeconds(lengths []int, m int, dev *device.Model, opt SearchOptions) float64 {
	if len(lengths) == 0 || m == 0 {
		return 0
	}
	costs, residues, threads := shapeCosts(lengths, m, dev, opt)
	var cycles float64
	for _, c := range costs {
		cycles += c + dev.DispatchCycles
	}
	seconds := cycles / (float64(threads) * dev.ThreadRate(threads))
	if dev.OffloadRequired {
		in := offload.DatabaseBytes(residues, len(lengths))
		out := offload.ScoreBytes(len(lengths))
		seconds = offload.RegionSeconds(dev, in, out, seconds)
	}
	return seconds
}
