package core

import (
	"fmt"

	"heterosw/internal/device"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
)

// HeteroOptions configures the heterogeneous search of Algorithm 2.
type HeteroOptions struct {
	// Search carries the shared kernel configuration (variant, gaps,
	// blocking, schedule, matrix, TopK). Threads is interpreted per
	// device via CPUThreads/MICThreads below.
	Search SearchOptions
	// CPU and MIC are the two device models (Xeon/Phi when nil).
	CPU, MIC *device.Model
	// CPUThreads and MICThreads are the simulated thread counts (device
	// maxima when 0).
	CPUThreads, MICThreads int
	// MICShare is the fraction of database residues offloaded to the
	// coprocessor — the abscissa of Figure 8.
	MICShare float64
	// AutoSplit derives the share from the device cost models instead of
	// MICShare (see OptimalMICShare) — the model-driven distribution
	// strategy the paper proposes as future work.
	AutoSplit bool
}

// HeteroResult reports a heterogeneous search.
type HeteroResult struct {
	// Result is the merged outcome; its SimSeconds is the simulated
	// completion time max(CPU, offload+MIC) per Algorithm 2.
	Result
	// CPUSeconds and MICSeconds are the simulated per-device times; the
	// MIC time includes its PCIe transfers.
	CPUSeconds, MICSeconds float64
	// CPUShare and MICShare are the realised residue fractions.
	CPUShare, MICShare float64
}

// SearchHetero performs Algorithm 2: the database is split between host
// and coprocessor with a static distribution, the coprocessor part runs as
// an asynchronous offload region while the host computes its own share,
// and the score lists are merged and sorted. It is a thin two-backend
// wrapper over Dispatcher: the MIC plays shard 0 and the CPU shard 1, the
// exact deal the original fixed-pair implementation performed, so scores
// and simulated times are reproduced bit-for-bit.
func SearchHetero(db *seqdb.Database, query *sequence.Sequence, opt HeteroOptions) (*HeteroResult, error) {
	if db == nil {
		return nil, fmt.Errorf("core: nil database")
	}
	if opt.MICShare < 0 || opt.MICShare > 1 {
		return nil, fmt.Errorf("core: MIC share %v outside [0,1]", opt.MICShare)
	}
	cpu := opt.CPU
	if cpu == nil {
		cpu = device.Xeon()
	}
	mic := opt.MIC
	if mic == nil {
		mic = device.Phi()
	}
	share := opt.MICShare
	if opt.AutoSplit && query != nil {
		share = OptimalMICShare(db, query.Len(), opt.Search, cpu, mic, opt.CPUThreads, opt.MICThreads)
	}

	disp, err := NewDispatcher(db, []Backend{
		NewBackend(mic.Short, mic, opt.MICThreads),
		NewBackend(cpu.Short, cpu, opt.CPUThreads),
	})
	if err != nil {
		return nil, err
	}
	res, err := disp.Search(query, DispatchOptions{
		Search: opt.Search,
		Dist:   DistStatic,
		Shares: []float64{share, 1 - share},
	})
	if err != nil {
		return nil, err
	}
	return &HeteroResult{
		Result:     res.Result,
		MICSeconds: res.PerBackend[0].SimSeconds,
		CPUSeconds: res.PerBackend[1].SimSeconds,
		MICShare:   res.PerBackend[0].Share,
		CPUShare:   res.PerBackend[1].Share,
	}, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
