package core

import (
	"fmt"
	"sort"

	"heterosw/internal/device"
	"heterosw/internal/offload"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
)

// HeteroOptions configures the heterogeneous search of Algorithm 2.
type HeteroOptions struct {
	// Search carries the shared kernel configuration (variant, gaps,
	// blocking, schedule, matrix, TopK). Threads is interpreted per
	// device via CPUThreads/MICThreads below.
	Search SearchOptions
	// CPU and MIC are the two device models (Xeon/Phi when nil).
	CPU, MIC *device.Model
	// CPUThreads and MICThreads are the simulated thread counts (device
	// maxima when 0).
	CPUThreads, MICThreads int
	// MICShare is the fraction of database residues offloaded to the
	// coprocessor — the abscissa of Figure 8.
	MICShare float64
	// AutoSplit derives the share from the device cost models instead of
	// MICShare (see OptimalMICShare) — the model-driven distribution
	// strategy the paper proposes as future work.
	AutoSplit bool
}

// HeteroResult reports a heterogeneous search.
type HeteroResult struct {
	// Result is the merged outcome; its SimSeconds is the simulated
	// completion time max(CPU, offload+MIC) per Algorithm 2.
	Result
	// CPUSeconds and MICSeconds are the simulated per-device times; the
	// MIC time includes its PCIe transfers.
	CPUSeconds, MICSeconds float64
	// CPUShare and MICShare are the realised residue fractions.
	CPUShare, MICShare float64
}

// SearchHetero performs Algorithm 2: the database is split between host
// and coprocessor with a static distribution, the coprocessor part runs as
// an asynchronous offload region while the host computes its own share,
// and the score lists are merged and sorted. The functional execution uses
// real concurrency mirroring the signal/wait structure.
func SearchHetero(db *seqdb.Database, query *sequence.Sequence, opt HeteroOptions) (*HeteroResult, error) {
	if db == nil {
		return nil, fmt.Errorf("core: nil database")
	}
	if opt.MICShare < 0 || opt.MICShare > 1 {
		return nil, fmt.Errorf("core: MIC share %v outside [0,1]", opt.MICShare)
	}
	cpu := opt.CPU
	if cpu == nil {
		cpu = device.Xeon()
	}
	mic := opt.MIC
	if mic == nil {
		mic = device.Phi()
	}
	share := opt.MICShare
	if opt.AutoSplit && query != nil {
		share = OptimalMICShare(db, query.Len(), opt.Search, cpu, mic, opt.CPUThreads, opt.MICThreads)
	}

	// Step 2 of Algorithm 2: sort_and_split.
	micDB, cpuDB := db.Split(share)

	cpuEng, err := NewEngine(cpuDB, cpu)
	if err != nil {
		return nil, err
	}
	micEng, err := NewEngine(micDB, mic)
	if err != nil {
		return nil, err
	}
	cpuOpt := opt.Search
	cpuOpt.Threads = opt.CPUThreads
	cpuOpt.TopK = 0
	micOpt := opt.Search
	micOpt.Threads = opt.MICThreads
	micOpt.TopK = 0

	// Asynchronous offload of the MIC share (signal), host share runs
	// meanwhile, then wait. Empty shares skip their device entirely: at
	// a 0% MIC share Algorithm 2 degenerates to Algorithm 1 with no
	// offload region launched.
	var micRes, cpuRes *Result
	var micErr, cpuErr error
	if micDB.Len() > 0 {
		sig := offload.Start(func() {
			micRes, micErr = micEng.Search(query, micOpt)
		})
		if cpuDB.Len() > 0 {
			cpuRes, cpuErr = cpuEng.Search(query, cpuOpt)
		}
		sig.Wait()
	} else if cpuDB.Len() > 0 {
		cpuRes, cpuErr = cpuEng.Search(query, cpuOpt)
	}
	if err := firstErr(cpuErr, micErr); err != nil {
		return nil, err
	}
	if cpuRes == nil {
		cpuRes = &Result{Threads: 0}
	}
	if micRes == nil {
		micRes = &Result{Threads: 0}
	}

	// Merge scores back into caller order. Split produced two fresh
	// databases, so map by sequence identity.
	out := &HeteroResult{
		CPUSeconds: cpuRes.SimSeconds,
		MICSeconds: micRes.SimSeconds,
	}
	if db.Residues() > 0 {
		out.MICShare = float64(micDB.Residues()) / float64(db.Residues())
		out.CPUShare = float64(cpuDB.Residues()) / float64(db.Residues())
	}
	scores := make([]int32, db.Len())
	byPtr := make(map[*sequence.Sequence]int32, db.Len())
	for i := 0; i < cpuDB.Len(); i++ {
		byPtr[cpuDB.Seq(i)] = cpuRes.Scores[i]
	}
	for i := 0; i < micDB.Len(); i++ {
		byPtr[micDB.Seq(i)] = micRes.Scores[i]
	}
	for i := 0; i < db.Len(); i++ {
		scores[i] = byPtr[db.Seq(i)]
	}
	out.Scores = scores
	out.Stats = cpuRes.Stats
	out.Stats.Add(micRes.Stats)
	out.Threads = cpuRes.Threads + micRes.Threads

	// Simulated completion: host and offload region overlap (Algorithm
	// 2's signal/wait); the final sort of step 4 is serial on the host
	// and small.
	out.SimSeconds = cpuRes.SimSeconds
	if micRes.SimSeconds > out.SimSeconds {
		out.SimSeconds = micRes.SimSeconds
	}
	if out.SimSeconds > 0 {
		out.SimGCUPS = float64(out.Stats.Cells) / out.SimSeconds / 1e9
	}
	out.WallSeconds = cpuRes.WallSeconds
	if micRes.WallSeconds > out.WallSeconds {
		out.WallSeconds = micRes.WallSeconds
	}
	if out.WallSeconds > 0 {
		out.WallGCUPS = float64(out.Stats.Cells) / out.WallSeconds / 1e9
	}

	hits := make([]Hit, db.Len())
	for i, s := range scores {
		hits[i] = Hit{SeqIndex: i, ID: db.Seq(i).ID, Score: s}
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Score > hits[b].Score })
	if opt.Search.TopK > 0 && opt.Search.TopK < len(hits) {
		hits = hits[:opt.Search.TopK]
	}
	out.Hits = hits
	return out, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
