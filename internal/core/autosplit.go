package core

import (
	"heterosw/internal/device"
	"heterosw/internal/offload"
	"heterosw/internal/sched"
	"heterosw/internal/seqdb"
)

// shapeCosts resolves the engine's lane-width and long-sequence routing
// rules for a device, packs the lengths into scheduler-chunk shapes and
// prices each one — the cost pipeline shared by the static share
// estimator (estimateSeconds) and the dynamic chunk coster
// (chunkSeconds), kept in one place so the two distribution strategies
// can never drift apart.
func shapeCosts(lengths []int, m int, dev *device.Model, opt SearchOptions) (costs []float64, residues int64, threads int) {
	threads = opt.Threads
	if threads <= 0 {
		threads = dev.MaxThreads()
	}
	class := opt.Params.KernelClass()
	lanes := dev.Lanes
	if class.EightBit {
		// The ladder's 8-bit first pass packs byte lanes: twice as many
		// subjects per group, half as many groups to schedule. (The cost
		// estimate optimistically assumes no escalation recomputes; over a
		// realistic protein database the saturating tail is negligible.)
		lanes = dev.ByteLanes()
	}
	longThr := opt.LongSeqThreshold
	switch {
	case longThr < 0 || class.Scalar:
		longThr = 0
		if class.Scalar {
			lanes = 1
		}
	case longThr == 0:
		longThr = DefaultLongSeqThreshold
	}
	shapes := seqdb.PackShapes(lengths, lanes, true, longThr)
	coeffs := dev.Coeffs(class, m, lanes, threads)
	intra := dev.IntraCoeffs(m)
	costs = make([]float64, len(shapes))
	for i, s := range shapes {
		if s.Intra {
			costs[i] = intra.Cost(s)
		} else {
			costs[i] = coeffs.Cost(s)
		}
		residues += s.Residues
	}
	return costs, residues, threads
}

// estimateComputeSeconds predicts the parallel region and offload time of
// a search over the given sequence lengths on one device — everything
// Engine.Search simulates except the final host-side score sort, which
// cluster planning charges once over the merged list rather than per
// shard (see Plan).
func estimateComputeSeconds(lengths []int, m int, dev *device.Model, opt SearchOptions) float64 {
	if len(lengths) == 0 || m == 0 {
		return 0
	}
	costs, residues, threads := shapeCosts(lengths, m, dev, opt)
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = 1
	}
	sim := sched.Simulate(costs, threads, opt.Schedule, chunk, dev.DispatchCycles)
	seconds := dev.Seconds(sim.Makespan, threads)
	if dev.OffloadRequired {
		in := offload.QueryBytes(m) + offload.DatabaseBytes(residues, len(lengths))
		out := offload.ScoreBytes(len(lengths))
		seconds = offload.RegionSeconds(dev, in, out, seconds)
	}
	return seconds
}

// estimateSeconds predicts the simulated completion time of a search over
// a database with the given sequence lengths on one device, using the same
// cost pipeline as Engine.Search but without executing kernels. It powers
// the model-driven workload-distribution strategy.
func estimateSeconds(lengths []int, m int, dev *device.Model, opt SearchOptions) float64 {
	if len(lengths) == 0 || m == 0 {
		return 0
	}
	return estimateComputeSeconds(lengths, m, dev, opt) + device.HostSortSeconds(len(lengths))
}

// OptimalShares computes a model-driven static workload distribution over
// an arbitrary device roster — the N-way generalisation of the "other
// workload distribution strategies" the paper proposes as future work.
// Every backend is simulated over the whole database; since completion
// time is close to linear in the residue share, balanced shares are
// proportional to each backend's predicted throughput (1 / t_i). The
// returned shares are normalised to sum to 1; equal shares are returned
// when no prediction is possible (empty database, zero query length).
func OptimalShares(lengths []int, queryLen int, opt SearchOptions, backends []Backend) []float64 {
	n := len(backends)
	shares := make([]float64, n)
	if n == 0 {
		return shares
	}
	equal := func() []float64 {
		for i := range shares {
			shares[i] = 1 / float64(n)
		}
		return shares
	}
	if len(lengths) == 0 || queryLen == 0 {
		return equal()
	}
	var sum float64
	for i, b := range backends {
		bopt := opt
		bopt.Threads = b.Threads()
		t := estimateSeconds(lengths, queryLen, b.Model(), bopt)
		if t <= 0 {
			return equal()
		}
		shares[i] = 1 / t
		sum += shares[i]
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}

// OptimalMICShare computes a model-driven workload distribution for
// Algorithm 2 — the two-device case of OptimalShares. Both devices are
// simulated on the full database; since completion time is close to
// linear in the residue share, the balance point is tCPU / (tCPU + tMIC).
// The result is clamped to [0, 1].
func OptimalMICShare(db *seqdb.Database, queryLen int, opt SearchOptions, cpu, mic *device.Model, cpuThreads, micThreads int) float64 {
	if db == nil || db.Len() == 0 || queryLen == 0 {
		return 0.5
	}
	shares := OptimalShares(db.OrderLengths(), queryLen, opt, []Backend{
		NewBackend(mic.Short, mic, micThreads),
		NewBackend(cpu.Short, cpu, cpuThreads),
	})
	return shares[0]
}
