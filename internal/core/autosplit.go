package core

import (
	"heterosw/internal/device"
	"heterosw/internal/offload"
	"heterosw/internal/sched"
	"heterosw/internal/seqdb"
)

// estimateSeconds predicts the simulated completion time of a search over
// a database with the given sequence lengths on one device, using the same
// cost pipeline as Engine.Search but without executing kernels. It powers
// the model-driven workload-distribution strategy.
func estimateSeconds(lengths []int, m int, dev *device.Model, opt SearchOptions) float64 {
	if len(lengths) == 0 || m == 0 {
		return 0
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = dev.MaxThreads()
	}
	class := opt.Params.KernelClass()
	lanes := dev.Lanes
	longThr := opt.LongSeqThreshold
	switch {
	case longThr < 0 || class.Scalar:
		longThr = 0
		if class.Scalar {
			lanes = 1
		}
	case longThr == 0:
		longThr = DefaultLongSeqThreshold
	}
	shapes := seqdb.PackShapes(lengths, lanes, true, longThr)
	coeffs := dev.Coeffs(class, m, lanes, threads)
	intra := dev.IntraCoeffs(m)
	costs := make([]float64, len(shapes))
	var residues int64
	for i, s := range shapes {
		if s.Intra {
			costs[i] = intra.Cost(s)
		} else {
			costs[i] = coeffs.Cost(s)
		}
		residues += s.Residues
	}
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = 1
	}
	sim := sched.Simulate(costs, threads, opt.Schedule, chunk, dev.DispatchCycles)
	seconds := dev.Seconds(sim.Makespan, threads)
	if dev.OffloadRequired {
		in := offload.QueryBytes(m) + offload.DatabaseBytes(residues, len(lengths))
		out := offload.ScoreBytes(len(lengths))
		seconds = offload.RegionSeconds(dev, in, out, seconds)
	}
	return seconds + device.HostSortSeconds(len(lengths))
}

// OptimalMICShare computes a model-driven workload distribution for
// Algorithm 2 — the "other workload distribution strategies" the paper
// proposes as future work. Both devices are simulated on the full
// database; since completion time is close to linear in the residue share,
// the balance point is tCPU / (tCPU + tMIC). The result is clamped to
// [0, 1].
func OptimalMICShare(db *seqdb.Database, queryLen int, opt SearchOptions, cpu, mic *device.Model, cpuThreads, micThreads int) float64 {
	if db == nil || db.Len() == 0 || queryLen == 0 {
		return 0.5
	}
	lengths := make([]int, db.Len())
	for i := range lengths {
		lengths[i] = db.Seq(i).Len()
	}
	cpuOpt := opt
	cpuOpt.Threads = cpuThreads
	micOpt := opt
	micOpt.Threads = micThreads
	tCPU := estimateSeconds(lengths, queryLen, cpu, cpuOpt)
	tMIC := estimateSeconds(lengths, queryLen, mic, micOpt)
	if tCPU+tMIC <= 0 {
		return 0.5
	}
	share := tCPU / (tCPU + tMIC)
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	return share
}
