package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"heterosw/internal/alphabet"
	"heterosw/internal/offload"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
	"heterosw/internal/swalign"
)

// The traceback executor is the second phase of aligned-hit reporting: the
// vectorised score pass of Algorithm 1/2 selects the top-K hits, then the
// query is re-aligned against just those K database sequences with the full
// dynamic-programming matrix and backtracking (the paper's Section II,
// steps 1-4), recovering coordinates, the CIGAR path and identity counts.
// This is the SSW Library's score-then-traceback two-phase design: the
// O(query x database) bulk runs score-only on the fast kernels, and the
// O(query x subject) tracebacks are paid for K subjects, never the whole
// database.

// AlignmentDetail is the traceback decoration of one hit.
type AlignmentDetail struct {
	// SeqIndex is the subject's database index (caller order), matching
	// Hit.SeqIndex.
	SeqIndex int
	// Score is the traceback score; it always equals the kernel score of
	// the same pair (the executor verifies and fails otherwise).
	Score int32
	// QueryStart/QueryEnd and SubjectStart/SubjectEnd delimit the aligned
	// segments as half-open residue ranges.
	QueryStart, QueryEnd     int
	SubjectStart, SubjectEnd int
	// CIGAR is the alignment path in run-length notation ("12M2D5M");
	// Identities counts exactly-matching columns and Columns the total
	// alignment length.
	CIGAR      string
	Identities int
	Columns    int
}

// ShardAligner is the optional traceback capability of a Backend: given
// the shard it owns (a fixed-assignment dispatcher's shardDBs[i]) and hits
// whose SeqIndex values are shard-local caller indices, it returns one
// AlignmentDetail per hit, in hits order, with shard-local SeqIndex. The
// remote backend implements it by fanning the traceback out to the node
// that holds the shard; backends without it fall back to the host-side
// reference alignment over the parent database.
type ShardAligner interface {
	AlignShard(ctx context.Context, query *sequence.Sequence, shard *seqdb.Database, hits []Hit, opt SearchOptions) ([]AlignmentDetail, error)
}

// scoringFor derives the reference-alignment scoring from the search
// options and the database alphabet, so phase two scores under exactly the
// matrix and gap penalties phase one searched with.
func scoringFor(opt SearchOptions, alpha *alphabet.Alphabet) swalign.Scoring {
	return swalign.Scoring{
		Matrix:    opt.matrixFor(alpha),
		GapOpen:   opt.Params.GapOpen,
		GapExtend: opt.Params.GapExtend,
	}
}

// AlignHits runs the traceback phase over the dispatcher's roster: the K
// hits form a work queue drained by one host worker per backend, so the
// fan-out width scales with the roster size. (The workers are functional
// host goroutines — the traceback phase has no device-model pacing, and
// the per-backend traceback counts record which worker happened to drain
// each hit, not simulated device time.) Results are returned in hits
// order. ctx is checked at every queue pop, a worker failure aborts the
// remaining queue, and per-worker traceback counts are folded into the
// dispatcher's cumulative totals.
func (d *Dispatcher) AlignHits(ctx context.Context, query *sequence.Sequence, hits []Hit, opt DispatchOptions) ([]AlignmentDetail, error) {
	if query == nil {
		return nil, fmt.Errorf("core: nil query")
	}
	if err := opt.Search.Params.Validate(); err != nil {
		return nil, err
	}
	if len(hits) == 0 {
		return nil, nil
	}
	if d.fixed != nil {
		return d.alignHitsSharded(ctx, query, hits, opt)
	}
	sc := scoringFor(opt.Search, d.db.Alphabet())
	details := make([]AlignmentDetail, len(hits))
	errs := make([]error, len(d.backends))
	done := make([]int64, len(d.backends))

	// A worker failure flips failed, so its siblings stop at their next
	// pop instead of burning full DP tracebacks on a doomed phase.
	var failed atomic.Bool
	var next int64
	var mu sync.Mutex
	pop := func() int {
		mu.Lock()
		defer mu.Unlock()
		if failed.Load() || next >= int64(len(hits)) {
			return -1
		}
		c := int(next)
		next++
		return c
	}
	workers := len(d.backends)
	if workers > len(hits) {
		workers = len(hits)
	}
	sigs := make([]*offload.Signal, workers)
	for w := 0; w < workers; w++ {
		w := w
		sigs[w] = offload.Start(func() {
			for {
				if ctx.Err() != nil {
					errs[w] = ctx.Err()
					failed.Store(true)
					return
				}
				i := pop()
				if i < 0 {
					return
				}
				h := hits[i]
				if h.SeqIndex < 0 || h.SeqIndex >= d.db.Len() {
					errs[w] = fmt.Errorf("core: hit %d references sequence %d outside the %d-sequence database", i, h.SeqIndex, d.db.Len())
					failed.Store(true)
					return
				}
				subject := d.db.Seq(h.SeqIndex)
				al := swalign.Align(query.Residues, subject.Residues, sc)
				if int32(al.Score) != h.Score {
					errs[w] = fmt.Errorf("core: traceback score %d for %s disagrees with kernel score %d", al.Score, subject.ID, h.Score)
					failed.Store(true)
					return
				}
				details[i] = AlignmentDetail{
					SeqIndex:     h.SeqIndex,
					Score:        int32(al.Score),
					QueryStart:   al.AStart,
					QueryEnd:     al.AEnd,
					SubjectStart: al.BStart,
					SubjectEnd:   al.BEnd,
					CIGAR:        al.CIGAR(),
					Identities:   al.Identities,
					Columns:      len(al.Ops),
				}
				done[w]++
			}
		})
	}
	for _, sig := range sigs {
		sig.Wait()
	}
	if err := firstErr(errs...); err != nil {
		return nil, err
	}
	d.commitTracebacks(done)
	return details, nil
}

// alignHitsSharded is the traceback phase over a fixed shard assignment:
// each hit is routed to the backend owning its subject's shard, one
// concurrent launch per backend with work. ShardAligner backends run the
// tracebacks where the shard lives (the remote node); other backends fall
// back to the host-side reference alignment, which needs only the parent
// database. Results return in hits order with parent SeqIndex values, so
// callers see exactly AlignHits' contract.
func (d *Dispatcher) alignHitsSharded(ctx context.Context, query *sequence.Sequence, hits []Hit, opt DispatchOptions) ([]AlignmentDetail, error) {
	per := make([][]int, len(d.backends)) // positions in hits, per owning backend
	for pos, h := range hits {
		if h.SeqIndex < 0 || h.SeqIndex >= d.db.Len() {
			return nil, fmt.Errorf("core: hit %d references sequence %d outside the %d-sequence database", pos, h.SeqIndex, d.db.Len())
		}
		ref := d.owner[h.SeqIndex]
		per[ref.backend] = append(per[ref.backend], pos)
	}
	details := make([]AlignmentDetail, len(hits))
	errs := make([]error, len(d.backends))
	done := make([]int64, len(d.backends))
	sigs := make([]*offload.Signal, len(d.backends))
	for i, b := range d.backends {
		if len(per[i]) == 0 {
			continue
		}
		i, b := i, b
		sigs[i] = offload.Start(func() {
			positions := per[i]
			if al, ok := b.(ShardAligner); ok {
				local := make([]Hit, len(positions))
				for k, pos := range positions {
					h := hits[pos]
					local[k] = Hit{SeqIndex: d.owner[h.SeqIndex].local, ID: h.ID, Score: h.Score}
				}
				ds, err := al.AlignShard(ctx, query, d.fixed.dbs[i], local, opt.Search)
				if err != nil {
					errs[i] = err
					return
				}
				if len(ds) != len(positions) {
					errs[i] = fmt.Errorf("core: backend %s returned %d alignments for %d hits", b.Name(), len(ds), len(positions))
					return
				}
				for k, pos := range positions {
					det := ds[k]
					det.SeqIndex = hits[pos].SeqIndex // shard-local -> parent
					details[pos] = det
				}
				done[i] += int64(len(positions))
				return
			}
			sc := scoringFor(opt.Search, d.db.Alphabet())
			for _, pos := range positions {
				if ctx.Err() != nil {
					errs[i] = ctx.Err()
					return
				}
				h := hits[pos]
				subject := d.db.Seq(h.SeqIndex)
				al := swalign.Align(query.Residues, subject.Residues, sc)
				if int32(al.Score) != h.Score {
					errs[i] = fmt.Errorf("core: traceback score %d for %s disagrees with kernel score %d", al.Score, subject.ID, h.Score)
					return
				}
				details[pos] = AlignmentDetail{
					SeqIndex:     h.SeqIndex,
					Score:        int32(al.Score),
					QueryStart:   al.AStart,
					QueryEnd:     al.AEnd,
					SubjectStart: al.BStart,
					SubjectEnd:   al.BEnd,
					CIGAR:        al.CIGAR(),
					Identities:   al.Identities,
					Columns:      len(al.Ops),
				}
				done[i]++
			}
		})
	}
	for _, sig := range sigs {
		if sig != nil {
			sig.Wait()
		}
	}
	if err := firstErr(errs...); err != nil {
		return nil, err
	}
	d.commitTracebacks(done)
	return details, nil
}

// commitTracebacks folds one traceback phase's per-worker alignment counts
// into the cumulative totals. Worker w drains the queue on behalf of
// backend w; the split between backends records which worker happened to
// claim each hit, the sum the total tracebacks run.
func (d *Dispatcher) commitTracebacks(done []int64) {
	d.totalsMu.Lock()
	defer d.totalsMu.Unlock()
	for w, n := range done {
		d.totals[w].Tracebacks += n
	}
}
