package core

import (
	"heterosw/internal/alphabet"
	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
	"heterosw/internal/vec"
)

// alignGroupIntrinsic is the hand-vectorised kernel: explicit fixed-width
// 16-bit saturating vector operations from internal/vec, exactly the
// operation sequence an intrinsics implementation issues per cell. Lanes
// whose running maximum reaches the int16 ceiling are recomputed with the
// scalar 32-bit kernel (the standard saturation-escalation scheme of
// SIMD Smith-Waterman implementations).
//
// The tile driver is identical to the guided kernel's; see
// alignGroupGuided for the boundary hand-off invariants.
//
//sw:hotpath
func alignGroupIntrinsic(q *profile.Query, g *seqdb.LaneGroup, p Params, buf *Buffers) ([]int32, Stats) {
	L := g.Lanes
	M := q.Len()
	N := g.Width
	scores := make([]int32, L)
	var st Stats
	st.Groups = 1
	for lane := 0; lane < L; lane++ {
		if g.SeqIdx[lane] >= 0 {
			st.Alignments++
		}
	}
	if M == 0 || N == 0 {
		return scores, st
	}
	B := p.blockRows()
	if B == 0 || B > M {
		B = M
	}
	qr := int16(p.GapOpen + p.GapExtend)
	r := int16(p.GapExtend)
	isQP := p.Variant.Prof() == ProfQuery

	// H and E share one contiguous slab so a tile's hot state is a single
	// block; each holds (B+1)*L entries with row 0 the tile boundary row.
	he := grow16(&buf.he16, 2*(B+1)*L)
	h, e := he[:(B+1)*L], he[(B+1)*L:]
	hb := grow16(&buf.hb16, (N+1)*L)
	fb := grow16(&buf.fb16, (N+1)*L)
	maxv := buf.max16
	fcol := buf.f16
	diagv := buf.diag16

	vec.Set1(maxv, 0)
	for i := range hb {
		hb[i] = 0
		fb[i] = vec.MinI16
	}

	// The per-row vector-op sequence (AddSat diag+score; Max with E, F,
	// zero; MaxInto tracker; SubSatConst/Max updates of E and F) is fused
	// into one vec column step per database column, amortising dispatch
	// across the whole tile and keeping F, the diagonal and the tracker
	// register-resident on the native backend. internal/vec holds the
	// unfused reference semantics; the device model costs the individual
	// operations.
	seqBytes := alphabet.BytesView(q.Seq)
	for i0 := 1; i0 <= M; i0 += B {
		i1 := i0 + B - 1
		if i1 > M {
			i1 = M
		}
		rows := i1 - i0 + 1
		for i := 0; i < (rows+1)*L; i++ {
			h[i] = 0
			e[i] = vec.MinI16
		}
		vec.Set1(diagv, 0)
		tileSeq := seqBytes[i0-1 : i1]
		tileQP := q.QP[(i0-1)*q.Width:]
		for jj := 1; jj <= N; jj++ {
			col := g.Interleaved[(jj-1)*L : jj*L]
			fbRow := vec.I16(fb[jj*L : jj*L+L])
			copy(fcol, fbRow)
			if isQP {
				vec.StepCol16QP(vec.I16(h[L:]), vec.I16(e[L:]), fcol, diagv, maxv,
					tileQP, q.Width, col, rows, L, qr, r)
			} else {
				buf.sr.Build(q, col)
				vec.StepCol16SP(vec.I16(h[L:]), vec.I16(e[L:]), fcol, diagv, maxv,
					buf.sr.Raw(), tileSeq, rows, L, qr, r)
			}
			hbRow := vec.I16(hb[jj*L : jj*L+L])
			copy(diagv, hbRow)
			copy(hbRow, h[rows*L:(rows+1)*L])
			copy(fbRow, fcol)
		}
	}

	// Score extraction with saturation escalation: a lane whose tracked
	// maximum hit the int16 ceiling may have been clipped anywhere in the
	// matrix, so its exact score is recomputed in 32 bits.
	var h32, e32 []int32
	for l := 0; l < L; l++ {
		if g.SeqIdx[l] < 0 {
			continue
		}
		if maxv[l] == vec.MaxI16 {
			if h32 == nil {
				h32 = grow32(&buf.h32, M+1)
				e32 = grow32(&buf.e32, M+1)
			}
			scores[l] = scalarLane(q, g, l, p, h32, e32)
			st.Overflows++
			st.OverflowCells += int64(M) * int64(g.Lens[l])
		} else {
			scores[l] = int32(maxv[l])
		}
	}
	st.Cells = int64(M) * g.Residues
	st.VecIters = int64(M) * int64(N)
	st.PaddedCells = st.VecIters * int64(L)
	st.Columns = int64(N)
	if isQP {
		st.Gathers = st.VecIters
	} else {
		st.SPBuilds = st.Columns
	}
	return scores, st
}
