package core

import (
	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
	"heterosw/internal/vec"
)

// alignGroupIntrinsic is the hand-vectorised kernel: explicit fixed-width
// 16-bit saturating vector operations from internal/vec, exactly the
// operation sequence an intrinsics implementation issues per cell. Lanes
// whose running maximum reaches the int16 ceiling are recomputed with the
// scalar 32-bit kernel (the standard saturation-escalation scheme of
// SIMD Smith-Waterman implementations).
//
// The tile driver is identical to the guided kernel's; see
// alignGroupGuided for the boundary hand-off invariants.
func alignGroupIntrinsic(q *profile.Query, g *seqdb.LaneGroup, p Params, buf *Buffers) ([]int32, Stats) {
	L := g.Lanes
	M := q.Len()
	N := g.Width
	scores := make([]int32, L)
	var st Stats
	st.Groups = 1
	for lane := 0; lane < L; lane++ {
		if g.SeqIdx[lane] >= 0 {
			st.Alignments++
		}
	}
	if M == 0 || N == 0 {
		return scores, st
	}
	B := p.blockRows()
	if B == 0 || B > M {
		B = M
	}
	qr := int16(p.GapOpen + p.GapExtend)
	r := int16(p.GapExtend)
	isQP := p.Variant.Prof() == ProfQuery

	h := grow16(&buf.h16, (B+1)*L)
	e := grow16(&buf.e16, (B+1)*L)
	hb := grow16(&buf.hb16, (N+1)*L)
	fb := grow16(&buf.fb16, (N+1)*L)
	maxv := buf.max16
	fcol := buf.f16
	diagv := buf.diag16
	sc := buf.sc16

	vec.Set1(maxv, 0)
	for i := range hb {
		hb[i] = 0
		fb[i] = vec.MinI16
	}

	for i0 := 1; i0 <= M; i0 += B {
		i1 := i0 + B - 1
		if i1 > M {
			i1 = M
		}
		rows := i1 - i0 + 1
		for i := 0; i < (rows+1)*L; i++ {
			h[i] = 0
			e[i] = vec.MinI16
		}
		vec.Set1(diagv, 0)
		for jj := 1; jj <= N; jj++ {
			col := g.Interleaved[(jj-1)*L : jj*L]
			if !isQP {
				buf.sr.Build(q, col)
			}
			fbRow := vec.I16(fb[jj*L : jj*L+L])
			copy(fcol, fbRow)
			for ri := 0; ri < rows; ri++ {
				i := i0 + ri
				hrow := vec.I16(h[(ri+1)*L : (ri+2)*L])
				erow := vec.I16(e[(ri+1)*L : (ri+2)*L])
				var scoreVec vec.I16
				if isQP {
					vec.Gather(sc, q.QPRow(i-1), col)
					scoreVec = sc
				} else {
					scoreVec = buf.sr.Row(int(q.Seq[i-1]))
				}
				// Fused register-resident form of the per-row vector-op
				// sequence (AddSat diag+score; Max with E, F, zero;
				// MaxInto tracker; SubSatConst/Max updates of E and F).
				// internal/vec holds the unfused reference semantics;
				// the device model costs the individual operations.
				scoreVec = scoreVec[:L]
				erow = erow[:L]
				hrow = hrow[:L]
				for l := 0; l < L; l++ {
					up := hrow[l]
					hv := int32(diagv[l]) + int32(scoreVec[l])
					if hv > vec.MaxI16 {
						hv = vec.MaxI16
					}
					// The low rail is unreachable: diag >= 0 and scores
					// are bounded by the matrix range.
					ev, fv := erow[l], fcol[l]
					if int32(ev) > hv {
						hv = int32(ev)
					}
					if int32(fv) > hv {
						hv = int32(fv)
					}
					if hv < 0 {
						hv = 0
					}
					h16 := int16(hv)
					if h16 > maxv[l] {
						maxv[l] = h16
					}
					uv := hv - int32(qr) // no saturation: hv <= MaxI16
					e32 := int32(ev) - int32(r)
					if e32 < vec.MinI16 {
						e32 = vec.MinI16
					}
					if uv > e32 {
						e32 = uv
					}
					erow[l] = int16(e32)
					f32 := int32(fv) - int32(r)
					if f32 < vec.MinI16 {
						f32 = vec.MinI16
					}
					if uv > f32 {
						f32 = uv
					}
					fcol[l] = int16(f32)
					diagv[l] = up
					hrow[l] = h16
				}
			}
			hbRow := vec.I16(hb[jj*L : jj*L+L])
			copy(diagv, hbRow)
			copy(hbRow, h[rows*L:(rows+1)*L])
			copy(fbRow, fcol)
		}
	}

	// Score extraction with saturation escalation: a lane whose tracked
	// maximum hit the int16 ceiling may have been clipped anywhere in the
	// matrix, so its exact score is recomputed in 32 bits.
	var h32, e32 []int32
	for l := 0; l < L; l++ {
		if g.SeqIdx[l] < 0 {
			continue
		}
		if maxv[l] == vec.MaxI16 {
			if h32 == nil {
				h32 = grow32(&buf.h32, M+1)
				e32 = grow32(&buf.e32, M+1)
			}
			scores[l] = scalarLane(q, g, l, p, h32, e32)
			st.Overflows++
			st.OverflowCells += int64(M) * int64(g.Lens[l])
		} else {
			scores[l] = int32(maxv[l])
		}
	}
	st.Cells = int64(M) * g.Residues
	st.VecIters = int64(M) * int64(N)
	st.PaddedCells = st.VecIters * int64(L)
	st.Columns = int64(N)
	if isQP {
		st.Gathers = st.VecIters
	} else {
		st.SPBuilds = st.Columns
	}
	return scores, st
}
