package core

import (
	"heterosw/internal/alphabet"
	"heterosw/internal/profile"
)

// DefaultLongSeqThreshold is the database-sequence length above which the
// engine switches from the inter-task lane kernel to the intra-task
// anti-diagonal kernel. The value follows CUDASW++ [14] (cited by the
// paper for its database pre-processing), which routes subjects longer
// than 3072 residues to an intra-task path.
//
// Rationale: in the inter-task scheme one database sequence occupies one
// SIMD lane for its whole length, so a 35,213-residue Swiss-Prot entry
// pins a lane (and its scheduler chunk) for N columns regardless of thread
// count — at 240 threads that single chunk would dominate the makespan.
// The paper is silent on the issue; the mature implementations in its
// reference list handle it with an intra-task kernel, and so does this
// engine. See DESIGN.md.
const DefaultLongSeqThreshold = 3072

// alignPairIntra computes the Smith-Waterman score of one query/subject
// pair with intra-task (anti-diagonal wavefront) vectorisation: cells on an
// anti-diagonal have no mutual dependency, so the inner loop runs
// lane-parallel along the diagonal. The emulation keeps 32-bit lanes, the
// element width intra-task implementations use to sidestep saturation on
// long alignments. Score-only, O(query) memory.
//
// State is held in four row-indexed arrays that rotate in place as the
// wavefront advances. Processing rows in descending order makes the
// rotation safe: row i's update consumes only indices i and i-1 of the
// previous diagonal, and index i-1 has not been overwritten yet. The array
// boundaries double as the DP boundary conditions: index 0 is row 0
// (H = 0, F = -inf forever), and a row's slots still hold (H=0, E=-inf)
// from initialisation when the wavefront first reaches it.
func alignPairIntra(q *profile.Query, subject []alphabet.Code, p Params, buf *Buffers) int32 {
	m := q.Len()
	n := len(subject)
	if m == 0 || n == 0 {
		return 0
	}
	qr := int32(p.GapOpen + p.GapExtend)
	r := int32(p.GapExtend)

	// h1[i] = H(i, d-1-i), h2[i] = H(i, d-2-i), e[i] = E(i, d-1-i),
	// f[i] = F(i, d-1-i) when the loop stands at diagonal d.
	h1 := grow32(&buf.h32, m+1)
	h2 := grow32(&buf.e32, m+1)
	e := grow32(&buf.hb32, m+1)
	f := grow32(&buf.fb32, m+1)
	for i := 0; i <= m; i++ {
		h1[i], h2[i] = 0, 0
		e[i], f[i] = negInf32, negInf32
	}

	qp := q.QP
	best := int32(0)
	for d := 2; d <= m+n; d++ {
		lo := d - n
		if lo < 1 {
			lo = 1
		}
		hi := d - 1
		if hi > m {
			hi = m
		}
		for i := hi; i >= lo; i-- {
			j := d - i
			// E(i,j) from (i, j-1) on diagonal d-1, same row.
			eij := e[i] - r
			if v := h1[i] - qr; v > eij {
				eij = v
			}
			// F(i,j) from (i-1, j) on diagonal d-1, row above.
			fij := f[i-1] - r
			if v := h1[i-1] - qr; v > fij {
				fij = v
			}
			// H(i,j) from (i-1, j-1) on diagonal d-2, row above.
			hij := h2[i-1] + int32(qp[(i-1)*q.Width+int(subject[j-1])])
			if eij > hij {
				hij = eij
			}
			if fij > hij {
				hij = fij
			}
			if hij < 0 {
				hij = 0
			}
			if hij > best {
				best = hij
			}
			h2[i] = h1[i]
			h1[i] = hij
			e[i] = eij
			f[i] = fij
		}
	}
	return best
}
