package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"heterosw/internal/device"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
)

func xeonPhiPhi() []Backend {
	return []Backend{
		NewBackend("xeon0", device.Xeon(), 0),
		NewBackend("phi0", device.Phi(), 0),
		NewBackend("phi1", device.Phi(), 0),
	}
}

// A single-backend dispatcher must reproduce Engine.Search exactly —
// scores, hits and simulated time — under every distribution.
func TestDispatcherSingleBackendMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	db := randDB(rng, 90, 80, true)
	query := randProtein(rng, 70)
	eng := testEngine(t, db)
	want, err := eng.Search(query, defaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	disp, err := NewDispatcher(db, []Backend{NewBackend("solo", device.Xeon(), 0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []Distribution{DistStatic, DistDynamic, DistGuided} {
		res, err := disp.Search(query, DispatchOptions{Search: defaultSearchOptions(), Dist: dist})
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		for i := range want.Scores {
			if res.Scores[i] != want.Scores[i] {
				t.Fatalf("%v: score %d: %d != %d", dist, i, res.Scores[i], want.Scores[i])
			}
		}
		for i := range want.Hits {
			if res.Hits[i].SeqIndex != want.Hits[i].SeqIndex || res.Hits[i].Score != want.Hits[i].Score {
				t.Fatalf("%v: hit %d differs", dist, i)
			}
		}
		if dist == DistStatic && res.SimSeconds != want.SimSeconds {
			t.Fatalf("static single backend SimSeconds %v != engine %v", res.SimSeconds, want.SimSeconds)
		}
	}
}

// A two-backend static dispatcher is the old SearchHetero: for every share
// the merged scores must match the single-device oracle exactly, and the
// per-backend accounting must mirror HeteroResult's.
func TestDispatcherStaticMatchesSearchHetero(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	db := randDB(rng, 100, 75, true)
	query := randProtein(rng, 60)
	want := oracleScores(db, query.Residues)

	for _, share := range []float64{0, 0.25, 0.55, 1} {
		het, err := SearchHetero(db, query, HeteroOptions{
			Search:   defaultSearchOptions(),
			MICShare: share,
		})
		if err != nil {
			t.Fatalf("share %v: %v", share, err)
		}
		disp, err := NewDispatcher(db, []Backend{
			NewBackend("phi", device.Phi(), 0),
			NewBackend("xeon", device.Xeon(), 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := disp.Search(query, DispatchOptions{
			Search: defaultSearchOptions(),
			Dist:   DistStatic,
			Shares: []float64{share, 1 - share},
		})
		if err != nil {
			t.Fatalf("share %v: %v", share, err)
		}
		for i := range want {
			if int(res.Scores[i]) != want[i] {
				t.Fatalf("share %v: seq %d score %d, want oracle %d", share, i, res.Scores[i], want[i])
			}
			if res.Scores[i] != het.Scores[i] {
				t.Fatalf("share %v: seq %d dispatcher %d != SearchHetero %d", share, i, res.Scores[i], het.Scores[i])
			}
		}
		if res.PerBackend[0].SimSeconds != het.MICSeconds || res.PerBackend[1].SimSeconds != het.CPUSeconds {
			t.Fatalf("share %v: per-backend seconds diverge from HeteroResult", share)
		}
		if res.PerBackend[0].Share != het.MICShare || res.PerBackend[1].Share != het.CPUShare {
			t.Fatalf("share %v: realised shares diverge from HeteroResult", share)
		}
		if res.SimSeconds != math.Max(het.CPUSeconds, het.MICSeconds) {
			t.Fatalf("share %v: SimSeconds %v != max of device times", share, res.SimSeconds)
		}
	}
}

// Three heterogeneous backends under every distribution still produce the
// exact single-device scores: distribution strategy must never change
// results, only timing.
func TestDispatcherThreeBackendsScores(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	db := randDB(rng, 120, 90, true)
	query := randProtein(rng, 55)
	want := oracleScores(db, query.Residues)
	disp, err := NewDispatcher(db, xeonPhiPhi())
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []Distribution{DistStatic, DistDynamic, DistGuided} {
		res, err := disp.Search(query, DispatchOptions{Search: defaultSearchOptions(), Dist: dist})
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		for i := range want {
			if int(res.Scores[i]) != want[i] {
				t.Fatalf("%v: seq %d score %d, want %d", dist, i, res.Scores[i], want[i])
			}
		}
		if res.Stats.Cells != int64(query.Len())*db.Residues() {
			t.Fatalf("%v: cells %d, want %d", dist, res.Stats.Cells, int64(query.Len())*db.Residues())
		}
		var share float64
		for _, st := range res.PerBackend {
			share += st.Share
		}
		if share < 0.999 || share > 1.001 {
			t.Fatalf("%v: backend shares sum to %v", dist, share)
		}
	}
}

// SearchBatch must agree with query-at-a-time Search: same scores, same
// simulated times, with the shard split and engines shared by the batch.
func TestDispatcherBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	db := randDB(rng, 80, 70, true)
	queries := []*sequence.Sequence{
		randProtein(rng, 40),
		randProtein(rng, 90),
		randProtein(rng, 140),
	}
	disp, err := NewDispatcher(db, xeonPhiPhi())
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []Distribution{DistStatic, DistDynamic} {
		opt := DispatchOptions{Search: defaultSearchOptions(), Dist: dist}
		if dist == DistStatic {
			// Pin shares so the batch's mean-length auto split cannot
			// diverge from the per-query one.
			opt.Shares = []float64{0.3, 0.35, 0.35}
		}
		batch, err := disp.SearchBatch(queries, opt)
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		if len(batch) != len(queries) {
			t.Fatalf("%v: %d results for %d queries", dist, len(batch), len(queries))
		}
		for qi, q := range queries {
			single, err := disp.Search(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := range single.Scores {
				if batch[qi].Scores[i] != single.Scores[i] {
					t.Fatalf("%v: query %d seq %d: batch %d != single %d",
						dist, qi, i, batch[qi].Scores[i], single.Scores[i])
				}
			}
			if batch[qi].SimSeconds != single.SimSeconds {
				t.Fatalf("%v: query %d SimSeconds %v != %v", dist, qi, batch[qi].SimSeconds, single.SimSeconds)
			}
		}
	}
	if res, err := disp.SearchBatch(nil, DispatchOptions{Search: defaultSearchOptions()}); err != nil || res != nil {
		t.Fatalf("empty batch: %v %v", res, err)
	}
}

// The acceptance criterion: with >=3 simulated backends the dynamic chunk
// queue's predicted makespan must not exceed the best static split found
// over a share grid that includes the model-balanced (auto) shares.
func TestDispatcherDynamicBeatsBestStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	lengths := make([]int, 6000)
	for i := range lengths {
		lengths[i] = 80 + rng.Intn(500)
	}
	db := lengthsDB(rng, lengths)
	disp, err := NewDispatcher(db, xeonPhiPhi())
	if err != nil {
		t.Fatal(err)
	}
	opt := DispatchOptions{Search: defaultSearchOptions()}
	queryLen := 500

	best := math.Inf(1)
	var bestShares []float64
	try := func(shares []float64) {
		o := opt
		o.Dist = DistStatic
		o.Shares = shares
		p, err := disp.Plan(queryLen, o)
		if err != nil {
			t.Fatalf("static %v: %v", shares, err)
		}
		if p.Makespan < best {
			best = p.Makespan
			bestShares = shares
		}
	}
	try(nil)                      // model-balanced auto shares
	for ai := 0; ai <= 12; ai++ { // xeon share 0..0.60 in 0.05 steps
		for bi := 0; ai+bi <= 20; bi++ {
			a, b := float64(ai)/20, float64(bi)/20
			c := 1 - a - b
			if c < 0 {
				c = 0
			}
			try([]float64{a, b, c})
		}
	}

	for _, dist := range []Distribution{DistDynamic, DistGuided} {
		o := opt
		o.Dist = dist
		p, err := disp.Plan(queryLen, o)
		if err != nil {
			t.Fatal(err)
		}
		if p.Makespan > best {
			t.Fatalf("%v makespan %.6fs exceeds best static %.6fs (shares %v)",
				dist, p.Makespan, best, bestShares)
		}
	}
}

// lengthsDB materialises a database with the given sequence lengths using
// arbitrary residues: the cost models consume only shape information, and
// score correctness is covered by the equivalence tests on smaller inputs.
func lengthsDB(rng *rand.Rand, lengths []int) *seqdb.Database {
	seqs := make([]*sequence.Sequence, len(lengths))
	for i, l := range lengths {
		seqs[i] = randProtein(rng, l)
	}
	return seqdb.New(seqs, true)
}

func TestDispatcherErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	db := randDB(rng, 10, 30, true)
	if _, err := NewDispatcher(nil, xeonPhiPhi()); err == nil {
		t.Error("nil database accepted")
	}
	if _, err := NewDispatcher(db, nil); err == nil {
		t.Error("empty roster accepted")
	}
	if _, err := NewDispatcher(db, []Backend{nil}); err == nil {
		t.Error("nil backend accepted")
	}
	disp, err := NewDispatcher(db, xeonPhiPhi())
	if err != nil {
		t.Fatal(err)
	}
	q := randProtein(rng, 20)
	if _, err := disp.Search(q, DispatchOptions{Search: defaultSearchOptions(), Shares: []float64{0.5, 0.5}}); err == nil {
		t.Error("share/backend count mismatch accepted")
	}
	if _, err := disp.Search(q, DispatchOptions{Search: defaultSearchOptions(), Shares: []float64{-1, 1, 1}}); err == nil {
		t.Error("negative share accepted")
	}
	if _, err := disp.Search(q, DispatchOptions{Search: defaultSearchOptions(), Shares: []float64{0, 0, 0}}); err == nil {
		t.Error("all-zero shares accepted")
	}
	if _, err := disp.Search(nil, DispatchOptions{Search: defaultSearchOptions()}); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := disp.Search(q, DispatchOptions{Search: defaultSearchOptions(), Dist: Distribution(9)}); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestParseDistribution(t *testing.T) {
	for _, d := range []Distribution{DistStatic, DistDynamic, DistGuided} {
		got, err := ParseDistribution(d.String())
		if err != nil || got != d {
			t.Fatalf("round trip %v: %v %v", d, got, err)
		}
	}
	if _, err := ParseDistribution("adaptive"); err == nil {
		t.Error("bogus distribution accepted")
	}
}

func TestOptimalSharesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	lengths := make([]int, 2000)
	for i := range lengths {
		lengths[i] = 60 + rng.Intn(400)
	}
	shares := OptimalShares(lengths, 300, defaultSearchOptions(), xeonPhiPhi())
	var sum float64
	for i, s := range shares {
		if s <= 0 || s >= 1 {
			t.Fatalf("share %d = %v outside (0,1)", i, s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	// The two identical Phi backends must receive identical shares.
	if math.Abs(shares[1]-shares[2]) > 1e-9 {
		t.Fatalf("identical devices got different shares: %v", shares)
	}
	// Degenerate inputs fall back to equal shares.
	eq := OptimalShares(nil, 300, defaultSearchOptions(), xeonPhiPhi())
	for _, s := range eq {
		if math.Abs(s-1.0/3) > 1e-9 {
			t.Fatalf("empty-database shares %v, want equal", eq)
		}
	}
}

// Totals must accumulate functional per-backend work across concurrent
// batches, and SearchBatchContext must stop at a query boundary once its
// context is cancelled.
func TestDispatcherTotalsAcrossConcurrentBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	db := randDB(rng, 120, 70, true)
	queries := []*sequence.Sequence{
		randProtein(rng, 50), randProtein(rng, 60), randProtein(rng, 70),
	}
	for _, dist := range []Distribution{DistStatic, DistDynamic} {
		disp, err := NewDispatcher(db, xeonPhiPhi())
		if err != nil {
			t.Fatal(err)
		}
		opt := DispatchOptions{Search: defaultSearchOptions(), Dist: dist}
		const batches = 4
		errc := make(chan error, batches)
		for g := 0; g < batches; g++ {
			go func() {
				_, err := disp.SearchBatch(queries, opt)
				errc <- err
			}()
		}
		for g := 0; g < batches; g++ {
			if err := <-errc; err != nil {
				t.Fatalf("%v: %v", dist, err)
			}
		}
		nq, per := disp.Totals()
		if want := int64(batches * len(queries)); nq != want {
			t.Fatalf("%v: %d queries recorded, want %d", dist, nq, want)
		}
		if len(per) != 3 {
			t.Fatalf("%v: %d backend totals", dist, len(per))
		}
		var residues, grants int64
		for i, bt := range per {
			if bt.Name == "" {
				t.Fatalf("%v: backend %d unnamed", dist, i)
			}
			residues += bt.Residues
			grants += bt.Grants
			if bt.Grants > 0 && bt.SimSeconds <= 0 {
				t.Fatalf("%v: backend %s has %d grants but no sim time", dist, bt.Name, bt.Grants)
			}
		}
		if want := db.Residues() * int64(batches*len(queries)); residues != want {
			t.Fatalf("%v: %d residues recorded, want %d", dist, residues, want)
		}
		if grants < int64(batches*len(queries)) {
			t.Fatalf("%v: only %d grants recorded", dist, grants)
		}
	}
}

func TestSearchBatchContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	db := randDB(rng, 60, 60, true)
	disp, err := NewDispatcher(db, xeonPhiPhi())
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]*sequence.Sequence, 8)
	for i := range queries {
		queries[i] = randProtein(rng, 40)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: not even the first query may run
	if _, err := disp.SearchBatchContext(ctx, queries, DispatchOptions{Search: defaultSearchOptions()}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if nq, _ := disp.Totals(); nq != 0 {
		t.Fatalf("%d queries ran under a cancelled context", nq)
	}
	// A live context still completes the batch.
	res, err := disp.SearchBatchContext(context.Background(), queries, DispatchOptions{Search: defaultSearchOptions()})
	if err != nil || len(res) != len(queries) {
		t.Fatalf("live context: %v, %d results", err, len(res))
	}
}
