package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
	"heterosw/internal/submat"
	"heterosw/internal/swalign"
)

func stripedScore(t *testing.T, query, subject *sequence.Sequence, p Params) int32 {
	t.Helper()
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	buf := NewBuffers(stripedLanes)
	return alignPairStriped(q, subject.Residues, p, buf)
}

func TestStripedMatchesOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: 10, GapExtend: 2}
	for trial := 0; trial < 250; trial++ {
		a := randProtein(rng, rng.Intn(120)+1)
		b := randProtein(rng, rng.Intn(120)+1)
		want := swalign.Score(a.Residues, b.Residues, sc)
		got := stripedScore(t, a, b, testParamsBase)
		if int(got) != want {
			t.Fatalf("trial %d (|a|=%d |b|=%d): striped %d, oracle %d",
				trial, a.Len(), b.Len(), got, want)
		}
	}
}

func TestStripedShortQueries(t *testing.T) {
	// Queries shorter than the lane count exercise heavy stripe padding.
	rng := rand.New(rand.NewSource(401))
	sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: 10, GapExtend: 2}
	for _, m := range []int{1, 2, 7, 15, 16, 17, 31, 33} {
		a := randProtein(rng, m)
		b := randProtein(rng, 60)
		want := swalign.Score(a.Residues, b.Residues, sc)
		got := stripedScore(t, a, b, testParamsBase)
		if int(got) != want {
			t.Fatalf("M=%d: striped %d, oracle %d", m, got, want)
		}
	}
}

func TestStripedGapHeavyPenalties(t *testing.T) {
	// Zero extension and zero open costs stress the lazy-F loop: gaps
	// propagate far (r=0 decays nothing within the pass cap; q=0 makes
	// refreshes as strong as decay).
	rng := rand.New(rand.NewSource(402))
	for _, gp := range [][2]int{{0, 1}, {12, 0}, {0, 0}, {1, 1}} {
		sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: gp[0], GapExtend: gp[1]}
		p := Params{Variant: IntrinsicSP, GapOpen: gp[0], GapExtend: gp[1]}
		for trial := 0; trial < 40; trial++ {
			a := randProtein(rng, rng.Intn(70)+1)
			b := randProtein(rng, rng.Intn(70)+1)
			want := swalign.Score(a.Residues, b.Residues, sc)
			got := stripedScore(t, a, b, p)
			if int(got) != want {
				t.Fatalf("q=%d r=%d trial %d: striped %d, oracle %d", gp[0], gp[1], trial, got, want)
			}
		}
	}
}

func TestStripedSaturationEscalation(t *testing.T) {
	// Self-alignment of a 3100-tryptophan repeat exceeds int16; the
	// striped kernel must escalate to the 32-bit path.
	long := strings.Repeat("W", 3100)
	a := sequence.FromString("w", long)
	got := stripedScore(t, a, a, testParamsBase)
	if got != 11*3100 {
		t.Fatalf("striped saturated self-score %d, want %d", got, 11*3100)
	}
}

func TestStripedMatchesWavefront(t *testing.T) {
	// Property: both intra-task kernels agree on random pairs.
	rng := rand.New(rand.NewSource(403))
	q := profile.NewQuery(randProtein(rng, 90).Residues, submat.BLOSUM62)
	bufS := NewBuffers(stripedLanes)
	bufW := NewBuffers(stripedLanes)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randProtein(r, r.Intn(150)+1)
		return alignPairStriped(q, b.Residues, testParamsBase, bufS) ==
			alignPairIntra(q, b.Residues, testParamsBase, bufW)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEngineStripedIntraOption(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	seqs := []*sequence.Sequence{
		randProtein(rng, 40),
		randProtein(rng, 3500), // routed to the intra kernel
		randProtein(rng, 80),
	}
	db := seqdb.New(seqs, true)
	query := randProtein(rng, 60)
	want := oracleScores(db, query.Residues)
	e := testEngine(t, db)

	opt := defaultSearchOptions()
	opt.StripedIntra = true
	res, err := e.Search(query, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if int(res.Scores[i]) != want[i] {
			t.Fatalf("striped intra: seq %d score %d, want %d", i, res.Scores[i], want[i])
		}
	}
	if res.Stats.IntraCells != int64(query.Len())*3500 {
		t.Fatalf("IntraCells = %d", res.Stats.IntraCells)
	}
}

func TestStripedEmpty(t *testing.T) {
	q := profile.NewQuery(nil, submat.BLOSUM62)
	buf := NewBuffers(stripedLanes)
	if got := alignPairStriped(q, randProtein(rand.New(rand.NewSource(1)), 10).Residues, testParamsBase, buf); got != 0 {
		t.Fatalf("empty query: %d", got)
	}
}
