package core

import (
	"fmt"

	"heterosw/internal/device"
	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
	"heterosw/internal/vec"
)

// Params fixes the alignment parameters of a search. The gap model is the
// paper's Eq. 5: a gap of length x costs GapOpen + GapExtend*x.
type Params struct {
	Variant   Variant
	GapOpen   int // q >= 0
	GapExtend int // r >= 0
	// Blocked enables the cache-blocking optimisation (Figure 7): the
	// query dimension is processed in tiles of BlockRows rows, carrying
	// boundary state, so the hot working set is O(BlockRows) instead of
	// O(query length).
	Blocked   bool
	BlockRows int
	// Prec selects the first-pass precision of the intrinsic kernels:
	// Prec16 (the default) is the classic 16-bit pass with 32-bit
	// escalation; Prec8 puts an 8-bit biased pass in front, doubling the
	// lanes per vector word and escalating saturated lanes 8 -> 16 -> 32.
	// Ignored by the scalar and guided kernels (always 32-bit).
	Prec Precision
}

// DefaultBlockRows is the query-tile height used when Params.Blocked is set
// without an explicit BlockRows. 256 rows x 32 lanes x 2 arrays x 2 bytes
// = 32 KiB comfortably fits the per-thread share of both devices' caches.
const DefaultBlockRows = 256

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Variant < 0 || p.Variant >= numVariants {
		return fmt.Errorf("core: invalid variant %d", int(p.Variant))
	}
	if p.GapOpen < 0 || p.GapExtend < 0 {
		return fmt.Errorf("core: negative gap penalties q=%d r=%d", p.GapOpen, p.GapExtend)
	}
	if p.Blocked && p.BlockRows < 0 {
		return fmt.Errorf("core: negative block rows %d", p.BlockRows)
	}
	// The 16-bit kernels hold q+r in an int16 lane constant; bound it well
	// below the rail so gap arithmetic can never wrap.
	if p.GapOpen+p.GapExtend > 16384 {
		return fmt.Errorf("core: gap penalties q+r = %d exceed the supported maximum 16384", p.GapOpen+p.GapExtend)
	}
	if p.Prec != Prec16 && p.Prec != Prec8 {
		return fmt.Errorf("core: invalid precision %d", int(p.Prec))
	}
	if p.Prec == Prec8 && p.Variant.Vec() != VecIntrinsic {
		return fmt.Errorf("core: the 8-bit first pass requires an intrinsic variant, got %v", p.Variant)
	}
	return nil
}

// KernelClass maps the parameters to the architecture-neutral descriptor
// the device cost model consumes.
func (p Params) KernelClass() device.KernelClass {
	return device.KernelClass{
		Scalar:       p.Variant.Vec() == VecNone,
		Guided:       p.Variant.Vec() == VecGuided,
		QueryProfile: p.Variant.Prof() == ProfQuery,
		Blocked:      p.Blocked,
		BlockRows:    p.BlockRows,
		EightBit:     p.Prec == Prec8 && p.Variant.Vec() == VecIntrinsic,
	}
}

func (p Params) blockRows() int {
	if !p.Blocked {
		return 0
	}
	if p.BlockRows == 0 {
		return DefaultBlockRows
	}
	return p.BlockRows
}

// Buffers holds per-worker kernel scratch so the hot loops never allocate.
// Each scheduler worker owns one Buffers; they are not safe for concurrent
// use.
type Buffers struct {
	lanes int

	// 16-bit state for the intrinsic kernels. he16 is one contiguous slab
	// holding both the H and E tile arrays ((rows+1)*lanes each) so the
	// fused column steps walk a single cache-friendly block; h16/e16 are
	// the striped kernel's row scratch.
	h16, e16    []int16 // striped row state, tiles * lanes
	he16        []int16 // intrinsic tile state, 2 * (rows+1) * lanes
	hb16, fb16  []int16 // block boundary rows, width * lanes
	f16, diag16 vec.I16 // lane temporaries
	max16       vec.I16

	// 8-bit state for the ladder's first pass.
	h8, e8           []uint8 // striped row state, tiles * lanes
	he8              []uint8 // intrinsic tile state, 2 * (rows+1) * lanes
	hb8, fb8         []uint8 // block boundary rows, width * lanes
	f8, diag8        vec.U8  // lane temporaries
	max8             vec.U8
	sr8              *profile.ScoreRows8
	lane16H, lane16E []int16 // 16-bit scalar recompute state, query length + 1
	striped8         []uint8 // striped 8-bit profile scratch

	// 32-bit state for the guided kernels.
	h32, e32     []int32
	hb32, fb32   []int32
	f32, max32   []int32
	diag32, up32 []int32

	// Scalar state for no-vec and overflow recomputation.
	hS, fS []int32

	sr  *profile.ScoreRows
	idx []uint8 // current column residues (lane view)

	// Striped-kernel scratch.
	striped []int16
}

// NewBuffers allocates kernel scratch for a lane width.
func NewBuffers(lanes int) *Buffers {
	b := &Buffers{
		lanes:  lanes,
		f16:    make(vec.I16, lanes),
		diag16: make(vec.I16, lanes),
		max16:  make(vec.I16, lanes),
		f32:    make([]int32, lanes),
		max32:  make([]int32, lanes),
		diag32: make([]int32, lanes),
		up32:   make([]int32, lanes),
		sr:     profile.NewScoreRows(lanes),
		idx:    make([]uint8, lanes),
		f8:     make(vec.U8, lanes),
		diag8:  make(vec.U8, lanes),
		max8:   make(vec.U8, lanes),
		sr8:    profile.NewScoreRows8(lanes),
	}
	return b
}

//sw:hotpath
func grow8(p *[]uint8, n int) []uint8 {
	if cap(*p) < n {
		*p = make([]uint8, n)
	}
	return (*p)[:n]
}

//sw:hotpath
func grow16(p *[]int16, n int) []int16 {
	if cap(*p) < n {
		*p = make([]int16, n)
	}
	return (*p)[:n]
}

//sw:hotpath
func grow32(p *[]int32, n int) []int32 {
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	return (*p)[:n]
}

// AlignGroup aligns the query against every lane of group g and returns the
// per-lane optimal local-alignment scores (padding lanes score 0) plus the
// structural operation counts. buf must have been created with
// NewBuffers(g.Lanes) for the lane kernels; no-vec ignores the lane width.
func AlignGroup(q *profile.Query, g *seqdb.LaneGroup, p Params, buf *Buffers) ([]int32, Stats) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	switch p.Variant.Vec() {
	case VecNone:
		return alignGroupScalar(q, g, p)
	case VecGuided:
		return alignGroupGuided(q, g, p, buf)
	default:
		if p.Prec == Prec8 && q.Bias8Viable() {
			return alignGroupIntrinsic8(q, g, p, buf)
		}
		return alignGroupIntrinsic(q, g, p, buf)
	}
}
