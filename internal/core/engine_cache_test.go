package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"heterosw/internal/device"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
)

func cacheTestSeqs(n int) []*sequence.Sequence {
	rng := rand.New(rand.NewSource(77))
	const letters = "ARNDCQEGHILKMFPSTWYV"
	out := make([]*sequence.Sequence, n)
	for i := range out {
		var sb strings.Builder
		for j := 0; j < rng.Intn(60)+8; j++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		out[i] = sequence.FromString("s", sb.String())
	}
	return out
}

// TestEngineCacheSharesByKey pins the index-aware engine cache: two
// distinct Database values carrying the same identity key (two loads or
// splits of the same .swdb) share one engine — and its lane packings —
// while keyless databases keep their pointer identity.
func TestEngineCacheSharesByKey(t *testing.T) {
	seqs := cacheTestSeqs(40)
	keyedA, err := seqdb.Restore(seqs, seqdb.New(seqs, true).Order(), true, "swdb:test")
	if err != nil {
		t.Fatal(err)
	}
	keyedB, err := seqdb.Restore(seqs, keyedA.Order(), true, "swdb:test")
	if err != nil {
		t.Fatal(err)
	}
	plainA := seqdb.New(seqs, true)
	plainB := seqdb.New(seqs, true)

	b := NewBackend("xeon#0", device.Xeon(), 0)
	query := sequence.FromString("q", "MKWVTFISLLLLFSSAYS")
	opt := SearchOptions{Params: Params{GapOpen: 10, GapExtend: 2, Blocked: true}}

	var want *Result
	for i, db := range []*seqdb.Database{keyedA, keyedB} {
		res, err := b.Search(context.Background(), db, query, opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
		} else if len(res.Scores) != len(want.Scores) {
			t.Fatalf("score lists diverge across keyed loads")
		}
	}
	if got := len(b.engines); got != 1 {
		t.Fatalf("%d cached engines for two same-key databases, want 1 shared", got)
	}

	for _, db := range []*seqdb.Database{plainA, plainB} {
		if _, err := b.Search(context.Background(), db, query, opt); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(b.engines); got != 3 {
		t.Fatalf("%d cached engines, want 3 (1 shared keyed + 2 pointer-keyed)", got)
	}
}
