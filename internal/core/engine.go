package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"heterosw/internal/alphabet"
	"heterosw/internal/device"
	"heterosw/internal/offload"
	"heterosw/internal/profile"
	"heterosw/internal/sched"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
	"heterosw/internal/submat"
)

// Engine is a single-device Smith-Waterman database-search engine: the
// paper's Algorithm 1. It owns a database (already pre-processed per step
// 2), a device model for simulated timing, and cached lane-group packings.
// An Engine is safe for concurrent Search calls.
type Engine struct {
	db  *seqdb.Database
	dev *device.Model

	mu    sync.Mutex // guards parts
	parts map[partKey]*partition
}

type partKey struct {
	lanes, longThreshold int
}

// partition is a cached work decomposition: inter-task lane groups plus
// the long sequences routed to the intra-task kernel.
type partition struct {
	groups []*seqdb.LaneGroup
	long   []int // database indices (caller order)
}

// NewEngine builds an engine over a database for a device model.
func NewEngine(db *seqdb.Database, dev *device.Model) (*Engine, error) {
	if db == nil {
		return nil, fmt.Errorf("core: nil database")
	}
	if dev == nil {
		return nil, fmt.Errorf("core: nil device model")
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	return &Engine{db: db, dev: dev, parts: make(map[partKey]*partition)}, nil
}

// DB returns the engine's database.
func (e *Engine) DB() *seqdb.Database { return e.db }

// Device returns the engine's device model.
func (e *Engine) Device() *device.Model { return e.dev }

// partitionFor returns (and caches) the work decomposition for a lane
// width and long-sequence threshold.
func (e *Engine) partitionFor(lanes, longThreshold int) *partition {
	key := partKey{lanes, longThreshold}
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.parts[key]; ok {
		return p
	}
	groups, long := e.db.Partition(lanes, longThreshold)
	p := &partition{groups: groups, long: long}
	e.parts[key] = p
	return p
}

// SearchOptions configures one database search.
type SearchOptions struct {
	// Params selects the kernel variant, gap penalties and blocking.
	Params
	// Matrix is the substitution matrix (BLOSUM62 when nil, as in the
	// paper).
	Matrix *submat.Matrix
	// Threads is the simulated device thread count (device maximum when
	// 0).
	Threads int
	// Schedule is the OpenMP scheduling policy for the group loop; the
	// paper found dynamic to perform best.
	Schedule sched.Policy
	// ChunkSize is the scheduling chunk (1 when 0).
	ChunkSize int
	// Workers caps real host goroutines for the functional execution
	// (GOMAXPROCS when 0). It does not affect simulated time.
	Workers int
	// LongSeqThreshold routes database sequences longer than this to the
	// intra-task kernel (see DefaultLongSeqThreshold). 0 selects the
	// default for vector variants; negative disables routing.
	LongSeqThreshold int
	// StripedIntra selects Farrar's striped kernel [13] instead of the
	// anti-diagonal wavefront for routed long sequences. Scores are
	// identical; the kernels differ in memory access shape and real
	// (wall-clock) throughput.
	StripedIntra bool
	// TopK truncates the hit list (all hits when 0).
	TopK int
}

// matrixFor resolves the substitution matrix against a database alphabet:
// an explicit Matrix wins, otherwise the alphabet's conventional default
// (BLOSUM62 for protein as in the paper, the blastn +2/-3 scheme for DNA).
func (o SearchOptions) matrixFor(alpha *alphabet.Alphabet) *submat.Matrix {
	if o.Matrix != nil {
		return o.Matrix
	}
	if alpha == alphabet.DNA {
		return submat.NUC
	}
	return submat.BLOSUM62
}

func (o SearchOptions) kernelClass() device.KernelClass {
	return o.Params.KernelClass()
}

// Hit is one database match.
type Hit struct {
	// SeqIndex is the database index (caller order) of the subject.
	SeqIndex int
	// ID is the subject's FASTA identifier.
	ID string
	// Score is the optimal local alignment score.
	Score int32
}

// Result reports one search: the score list of step 4, plus functional and
// simulated performance accounting.
type Result struct {
	// Hits is sorted by descending score (ties by database order) and
	// truncated to TopK when requested.
	Hits []Hit
	// Scores holds the raw score of every database sequence, indexed by
	// caller order, regardless of TopK.
	Scores []int32
	// Stats aggregates kernel operation counts.
	Stats Stats
	// Threads is the simulated thread count used.
	Threads int
	// SimSeconds is the simulated wall time on the device model,
	// including offload transfers for coprocessors; SimGCUPS is
	// Stats.Cells/SimSeconds.
	SimSeconds float64
	SimGCUPS   float64
	// Imbalance is the simulated schedule's load imbalance.
	Imbalance float64
	// WallSeconds and WallGCUPS report the real execution of the pure-Go
	// kernels on the host, for transparency.
	WallSeconds float64
	WallGCUPS   float64
}

// Search performs Algorithm 1: alignments of the query against every
// database sequence in parallel, returning sorted similarity scores with
// functional and simulated timing.
func (e *Engine) Search(query *sequence.Sequence, opt SearchOptions) (*Result, error) {
	if query == nil {
		return nil, fmt.Errorf("core: nil query")
	}
	if err := opt.Params.Validate(); err != nil {
		return nil, err
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = e.dev.MaxThreads()
	}
	if threads > e.dev.MaxThreads() {
		return nil, fmt.Errorf("core: %d threads exceeds %s's %d hardware threads",
			threads, e.dev.Short, e.dev.MaxThreads())
	}
	alpha := e.db.Alphabet()
	matrix := opt.matrixFor(alpha)
	if matrix.Alphabet() != alpha {
		return nil, fmt.Errorf("core: %s matrix %s against a %s database",
			matrix.Alphabet().Name(), matrix.Name(), alpha.Name())
	}
	if qa := query.Alphabet(); qa != alpha {
		return nil, fmt.Errorf("core: %s query %s against a %s database",
			qa.Name(), query.ID, alpha.Name())
	}
	qp := profile.NewQuery(query.Residues, matrix)
	// The 8-bit first pass doubles the lanes per vector word; it needs the
	// biased byte profiles, so a matrix whose score range exceeds a byte
	// silently starts the ladder at 16 bits instead.
	prec8 := opt.Prec == Prec8 && opt.Variant.Vec() == VecIntrinsic && qp.Bias8Viable()
	lanes := e.dev.Lanes
	switch {
	case opt.Variant.Vec() == VecNone:
		lanes = 1
	case prec8:
		lanes = e.dev.ByteLanes()
	}
	longThr := opt.LongSeqThreshold
	switch {
	case longThr < 0 || opt.Variant.Vec() == VecNone:
		// The scalar kernel has no lane-occupancy problem; every
		// sequence already is its own chunk.
		longThr = 0
	case longThr == 0:
		longThr = DefaultLongSeqThreshold
	}
	part := e.partitionFor(lanes, longThr)
	groups, long := part.groups, part.long
	class := opt.kernelClass()
	class.EightBit = prec8
	m := qp.Len()

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Per-worker scratch; sized lazily inside the kernels.
	bufs := make([]*Buffers, workers)
	statsPer := make([]Stats, workers)
	items := len(groups) + len(long)
	costs := make([]float64, items)
	scores := make([]int32, e.db.Len())

	start := time.Now()
	sched.Parallel(items, workers, func(i, worker int) {
		if bufs[worker] == nil {
			bufs[worker] = NewBuffers(lanes)
		}
		if i < len(groups) {
			g := groups[i]
			got, st := AlignGroup(qp, g, opt.Params, bufs[worker])
			statsPer[worker].Add(st)
			for l, idx := range g.SeqIdx {
				if idx >= 0 {
					scores[idx] = got[l]
				}
			}
			shape := device.Shape{Width: g.Width, Lanes: g.Lanes, Residues: g.Residues}
			costs[i] = e.dev.GroupCost(class, m, shape, threads, st.OverflowCells)
			return
		}
		// Long sequences: intra-task kernel, one chunk per sequence.
		idx := long[i-len(groups)]
		subject := e.db.Seq(idx).Residues
		cells := int64(m) * int64(len(subject))
		st := Stats{
			Cells: cells, PaddedCells: cells, IntraCells: cells,
			Columns: int64(len(subject)), Alignments: 1, Groups: 1,
		}
		if opt.StripedIntra {
			scores[idx] = alignPairStripedLadder(qp, subject, opt.Params, prec8, bufs[worker], &st)
		} else {
			scores[idx] = alignPairIntra(qp, subject, opt.Params, bufs[worker])
		}
		statsPer[worker].Add(st)
		shape := device.Shape{Width: len(subject), Lanes: 1, Residues: int64(len(subject)), Intra: true}
		costs[i] = e.dev.GroupCost(class, m, shape, threads, 0)
	})
	wall := time.Since(start).Seconds()

	var stats Stats
	for i := range statsPer {
		stats.Add(statsPer[i])
	}
	sim := sched.Simulate(costs, threads, opt.Schedule, opt.ChunkSize, e.dev.DispatchCycles)
	seconds := e.dev.Seconds(sim.Makespan, threads)
	if e.dev.OffloadRequired {
		in := offload.QueryBytes(m) + offload.DatabaseBytes(e.db.Residues(), e.db.Len())
		out := offload.ScoreBytes(e.db.Len())
		seconds = offload.RegionSeconds(e.dev, in, out, seconds)
	}
	// Step 4: serial host-side sort of the score list.
	seconds += device.HostSortSeconds(e.db.Len())

	res := &Result{
		Scores:      scores,
		Stats:       stats,
		Threads:     threads,
		SimSeconds:  seconds,
		Imbalance:   sim.Imbalance(),
		WallSeconds: wall,
	}
	if seconds > 0 {
		res.SimGCUPS = float64(stats.Cells) / seconds / 1e9
	}
	if wall > 0 {
		res.WallGCUPS = float64(stats.Cells) / wall / 1e9
	}
	res.Hits = e.sortHits(scores, opt.TopK)
	return res, nil
}

// sortHits implements step 4: similarity scores in descending order.
func (e *Engine) sortHits(scores []int32, topK int) []Hit {
	hits := make([]Hit, len(scores))
	for i, s := range scores {
		hits[i] = Hit{SeqIndex: i, ID: e.db.Seq(i).ID, Score: s}
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Score > hits[b].Score })
	if topK > 0 && topK < len(hits) {
		hits = hits[:topK]
	}
	return hits
}
