package core

// Stats aggregates the structural operation counts of kernel execution.
// Counts are architecture-neutral facts about the computation (how many
// vector iterations, how many profile builds, how many cells were useful
// work versus padding); the device cost model in internal/device converts
// them into simulated cycles.
type Stats struct {
	// Cells counts useful cell updates: query length times true database
	// residues. This is the numerator of GCUPS.
	Cells int64
	// PaddedCells counts all cell updates performed, including lane
	// padding; the gap to Cells is packing waste.
	PaddedCells int64
	// VecIters counts inner-loop iterations: vector iterations for the
	// lane kernels, scalar iterations for no-vec.
	VecIters int64
	// Columns counts database-column passes (outer-loop iterations).
	Columns int64
	// SPBuilds counts score-profile row constructions (one per column per
	// group in SP mode; each builds TableWidth lane vectors).
	SPBuilds int64
	// Gathers counts indexed score loads (one per inner iteration in QP
	// mode).
	Gathers int64
	// Groups counts lane groups processed.
	Groups int64
	// Alignments counts database sequences aligned.
	Alignments int64
	// Overflows counts lanes whose 16-bit score saturated and were
	// recomputed in 32 bits.
	Overflows int64
	// OverflowCells counts the extra scalar cell updates spent on those
	// recomputations.
	OverflowCells int64
	// IntraCells counts cell updates performed by the intra-task
	// (anti-diagonal) kernel that handles extremely long database
	// sequences. They are also included in Cells.
	IntraCells int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Cells += other.Cells
	s.PaddedCells += other.PaddedCells
	s.VecIters += other.VecIters
	s.Columns += other.Columns
	s.SPBuilds += other.SPBuilds
	s.Gathers += other.Gathers
	s.Groups += other.Groups
	s.Alignments += other.Alignments
	s.Overflows += other.Overflows
	s.OverflowCells += other.OverflowCells
	s.IntraCells += other.IntraCells
}
