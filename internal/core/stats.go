package core

// Stats aggregates the structural operation counts of kernel execution.
// Counts are architecture-neutral facts about the computation (how many
// vector iterations, how many profile builds, how many cells were useful
// work versus padding); the device cost model in internal/device converts
// them into simulated cycles.
type Stats struct {
	// Cells counts useful cell updates: query length times true database
	// residues. This is the numerator of GCUPS.
	Cells int64
	// PaddedCells counts all cell updates performed, including lane
	// padding; the gap to Cells is packing waste.
	PaddedCells int64
	// VecIters counts inner-loop iterations: vector iterations for the
	// lane kernels, scalar iterations for no-vec.
	VecIters int64
	// Columns counts database-column passes (outer-loop iterations).
	Columns int64
	// SPBuilds counts score-profile row constructions (one per column per
	// group in SP mode; each builds TableWidth lane vectors).
	SPBuilds int64
	// Gathers counts indexed score loads (one per inner iteration in QP
	// mode).
	Gathers int64
	// Groups counts lane groups processed.
	Groups int64
	// Alignments counts database sequences aligned.
	Alignments int64
	// Overflows counts lanes whose 16-bit score saturated and were
	// recomputed in 32 bits — the top escalation of the precision ladder,
	// reached from either the 16-bit first pass or a ladder lane that
	// already escalated once.
	Overflows int64
	// Overflows8 counts lanes whose 8-bit first pass saturated and were
	// recomputed at 16 bits (only the Prec8 ladder produces these).
	Overflows8 int64
	// Safe8Groups counts lane groups whose score upper bound provably fits
	// the biased byte rail, so the 8-bit pass skipped saturation detection.
	Safe8Groups int64
	// OverflowCells counts the extra cell updates spent on escalation
	// recomputations, across both ladder tiers.
	OverflowCells int64
	// IntraCells counts cell updates performed by the intra-task
	// (anti-diagonal) kernel that handles extremely long database
	// sequences. They are also included in Cells.
	IntraCells int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Cells += other.Cells
	s.PaddedCells += other.PaddedCells
	s.VecIters += other.VecIters
	s.Columns += other.Columns
	s.SPBuilds += other.SPBuilds
	s.Gathers += other.Gathers
	s.Groups += other.Groups
	s.Alignments += other.Alignments
	s.Overflows += other.Overflows
	s.Overflows8 += other.Overflows8
	s.Safe8Groups += other.Safe8Groups
	s.OverflowCells += other.OverflowCells
	s.IntraCells += other.IntraCells
}
