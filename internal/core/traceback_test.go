package core

import (
	"context"
	"math/rand"
	"testing"

	"heterosw/internal/device"
	"heterosw/internal/submat"
	"heterosw/internal/swalign"
)

func tracebackDispatcher(t *testing.T, seqs int) (*Dispatcher, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	db := randDB(rng, seqs, 80, true)
	backends := []Backend{
		NewBackend("xeon#0", device.Xeon(), 0),
		NewBackend("phi#1", device.Phi(), 0),
	}
	d, err := NewDispatcher(db, backends)
	if err != nil {
		t.Fatal(err)
	}
	return d, rng
}

func TestAlignHitsMatchesOracle(t *testing.T) {
	d, rng := tracebackDispatcher(t, 40)
	query := randProtein(rng, 50)
	opt := DispatchOptions{Search: SearchOptions{
		Params: Params{Variant: IntrinsicSP, GapOpen: 10, GapExtend: 2, Blocked: true},
		TopK:   8,
	}}
	res, err := d.Search(query, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 8 {
		t.Fatalf("%d hits, want 8", len(res.Hits))
	}
	details, err := d.AlignHits(context.Background(), query, res.Hits, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(details) != len(res.Hits) {
		t.Fatalf("%d details for %d hits", len(details), len(res.Hits))
	}
	sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: 10, GapExtend: 2}
	for i, det := range details {
		h := res.Hits[i]
		if det.SeqIndex != h.SeqIndex || det.Score != h.Score {
			t.Fatalf("detail %d is {seq %d, score %d}, hit is {seq %d, score %d}",
				i, det.SeqIndex, det.Score, h.SeqIndex, h.Score)
		}
		want := swalign.Align(query.Residues, d.DB().Seq(h.SeqIndex).Residues, sc)
		if det.CIGAR != want.CIGAR() || det.Identities != want.Identities ||
			det.QueryStart != want.AStart || det.QueryEnd != want.AEnd ||
			det.SubjectStart != want.BStart || det.SubjectEnd != want.BEnd ||
			det.Columns != len(want.Ops) {
			t.Fatalf("detail %d = %+v, oracle CIGAR %s [%d:%d]x[%d:%d]",
				i, det, want.CIGAR(), want.AStart, want.AEnd, want.BStart, want.BEnd)
		}
	}
	// The traceback phase is accounted: alignments land in the cumulative
	// totals, distributed over the roster, and only K were ever run.
	_, per := d.Totals()
	var tb int64
	for _, bt := range per {
		tb += bt.Tracebacks
	}
	if tb != int64(len(res.Hits)) {
		t.Fatalf("totals record %d tracebacks, want %d", tb, len(res.Hits))
	}
}

func TestAlignHitsEmptyAndErrors(t *testing.T) {
	d, rng := tracebackDispatcher(t, 35)
	query := randProtein(rng, 30)
	opt := DispatchOptions{Search: SearchOptions{
		Params: Params{Variant: IntrinsicSP, GapOpen: 10, GapExtend: 2},
	}}
	if det, err := d.AlignHits(context.Background(), query, nil, opt); err != nil || det != nil {
		t.Fatalf("empty hits: %v, %v", det, err)
	}
	if _, err := d.AlignHits(context.Background(), nil, nil, opt); err == nil {
		t.Fatal("nil query accepted")
	}
	// A hit referencing a sequence outside the database must fail, not
	// panic.
	if _, err := d.AlignHits(context.Background(), query, []Hit{{SeqIndex: 10000}}, opt); err == nil {
		t.Fatal("out-of-range hit accepted")
	}
	// A hit whose claimed score disagrees with the traceback is a kernel
	// bug; the executor must surface it.
	if _, err := d.AlignHits(context.Background(), query, []Hit{{SeqIndex: 0, Score: -1}}, opt); err == nil {
		t.Fatal("score mismatch not detected")
	}
	// A cancelled context aborts the phase.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := d.Search(query, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AlignHits(ctx, query, res.Hits[:3], opt); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
