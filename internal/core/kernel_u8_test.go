package core

import (
	"math/rand"
	"strings"
	"testing"

	"heterosw/internal/profile"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
	"heterosw/internal/submat"
)

// ladderParams returns intrinsic params with the 8-bit first pass enabled.
func ladderParams(v Variant, blocked bool, blockRows int) Params {
	p := testParamsBase
	p.Variant = v
	p.Blocked = blocked
	p.BlockRows = blockRows
	p.Prec = Prec8
	return p
}

// The 8-bit first pass must be score-identical to the oracle across both
// profile modes, every lane width and blocking shape — saturating lanes
// escalate transparently.
func TestLadderMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	db := randDB(rng, 41, 70, true)
	query := randProtein(rng, 52)
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	if !q.Bias8Viable() {
		t.Fatal("BLOSUM62 must be byte-viable")
	}
	want := oracleScores(db, query.Residues)
	for _, v := range []Variant{IntrinsicQP, IntrinsicSP} {
		for _, blk := range [][2]int{{0, 0}, {1, 1}, {1, 7}, {1, 64}} {
			for _, lanes := range []int{1, 4, 8, 32, 64} {
				p := ladderParams(v, blk[0] == 1, blk[1])
				got, _ := runVariantQuiet(db, q, p, lanes)
				for i := range want {
					if int(got[i]) != want[i] {
						t.Fatalf("%s blocked=%v/%d lanes=%d: seq %d score %d, want %d",
							VariantSpec(v, Prec8), p.Blocked, p.BlockRows, lanes, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// Three subjects pinned to the three rungs of the ladder: a short one that
// resolves in the provably-safe 8-bit pass, a mid one that saturates the
// biased byte rail but fits 16 bits, and a long one that climbs to 32
// bits. Per-tier overflow counters must record exactly the escalations.
func TestLadderEscalationTiers(t *testing.T) {
	w := strings.Repeat("W", 23)      // 11*23 = 253 > 255-bias(4) = 251: needs 16 bits
	long := strings.Repeat("W", 3000) // 33000 > MaxInt16: needs 32 bits
	db := seqdb.New([]*sequence.Sequence{
		sequence.FromString("short", "ARNDARND"),
		sequence.FromString("mid", w),
		sequence.FromString("long", long),
	}, true)
	query := sequence.FromString("q", long)
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	want := oracleScores(db, query.Residues)

	for _, blocked := range []bool{false, true} {
		p := ladderParams(IntrinsicSP, blocked, 0)
		// lanes=1: one group per subject, so the short group is provably
		// byte-safe on its own.
		got, st := runVariantQuiet(db, q, p, 1)
		for i := range want {
			if int(got[i]) != want[i] {
				t.Fatalf("blocked=%v: seq %d score %d, want %d", blocked, i, got[i], want[i])
			}
		}
		if st.Overflows8 != 2 {
			t.Fatalf("blocked=%v: Overflows8 = %d, want 2 (mid and long)", blocked, st.Overflows8)
		}
		if st.Overflows != 1 {
			t.Fatalf("blocked=%v: Overflows = %d, want 1 (long)", blocked, st.Overflows)
		}
		if st.Safe8Groups != 1 {
			t.Fatalf("blocked=%v: Safe8Groups = %d, want 1 (short)", blocked, st.Safe8Groups)
		}
		// mid pays one 16-bit recompute; long pays a 16-bit then a 32-bit.
		if st.OverflowCells != int64(q.Len())*(int64(len(w))+2*int64(len(long))) {
			t.Fatalf("blocked=%v: OverflowCells = %d", blocked, st.OverflowCells)
		}
	}
}

// The 16-bit middle rung must agree with the oracle on scores that fit
// int16 and report saturation on scores that do not.
func TestScalarLane16(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	db := randDB(rng, 15, 60, true)
	query := randProtein(rng, 48)
	q := profile.NewQuery(query.Residues, submat.BLOSUM62)
	want := oracleScores(db, query.Residues)
	p := testParamsBase
	p.Variant = IntrinsicSP
	groups := db.Groups(4)
	h := make([]int16, q.Len()+1)
	e := make([]int16, q.Len()+1)
	for _, g := range groups {
		for l, idx := range g.SeqIdx {
			if idx < 0 {
				continue
			}
			s, sat := scalarLane16(q, g, l, p, h, e)
			if sat {
				t.Fatalf("seq %d: unexpected saturation", idx)
			}
			if int(s) != want[idx] {
				t.Fatalf("seq %d: score %d, want %d", idx, s, want[idx])
			}
		}
	}

	long := strings.Repeat("W", 3000)
	ldb := seqdb.New([]*sequence.Sequence{sequence.FromString("l", long)}, true)
	lq := profile.NewQuery(sequence.FromString("q", long).Residues, submat.BLOSUM62)
	lh := make([]int16, lq.Len()+1)
	le := make([]int16, lq.Len()+1)
	if _, sat := scalarLane16(lq, ldb.Groups(1)[0], 0, p, lh, le); !sat {
		t.Fatal("33000-scoring pair did not report int16 saturation")
	}
}

// The striped ladder must match the 16-bit striped kernel (and the oracle)
// on every tier, including the escalating ones.
func TestStripedLadderMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	buf := NewBuffers(stripedLanes8)
	subjects := []*sequence.Sequence{
		randProtein(rng, 40),
		randProtein(rng, 500),
		sequence.FromString("mid", strings.Repeat("W", 25)),
		sequence.FromString("long", strings.Repeat("W", 3100)),
	}
	for qi, qlen := range []int{30, 300} {
		query := randProtein(rng, qlen)
		q := profile.NewQuery(query.Residues, submat.BLOSUM62)
		p := testParamsBase
		p.Variant = IntrinsicSP
		p.Prec = Prec8
		for si, s := range subjects {
			var st Stats
			got := alignPairStripedLadder(q, s.Residues, p, true, buf, &st)
			want := oracleScores(seqdb.New([]*sequence.Sequence{s}, true), query.Residues)[0]
			if int(got) != want {
				t.Fatalf("query %d subject %d: score %d, want %d", qi, si, got, want)
			}
		}
	}
	// The W self-alignments force both escalations.
	wq := sequence.FromString("q", strings.Repeat("W", 3100))
	q := profile.NewQuery(wq.Residues, submat.BLOSUM62)
	p := testParamsBase
	p.Variant = IntrinsicSP
	p.Prec = Prec8
	var st Stats
	if got := alignPairStripedLadder(q, wq.Residues, p, true, buf, &st); got != 11*3100 {
		t.Fatalf("W-run score %d, want %d", got, 11*3100)
	}
	if st.Overflows8 != 1 || st.Overflows != 1 {
		t.Fatalf("W-run escalations: Overflows8=%d Overflows=%d, want 1/1", st.Overflows8, st.Overflows)
	}
}

func TestVariantSpecRoundTrip(t *testing.T) {
	for _, v := range Variants() {
		got, prec, err := ParseVariantSpec(v.String())
		if err != nil || got != v || prec != Prec16 {
			t.Fatalf("ParseVariantSpec(%q) = %v/%v/%v", v.String(), got, prec, err)
		}
	}
	for _, v := range []Variant{IntrinsicQP, IntrinsicSP} {
		spec := VariantSpec(v, Prec8)
		got, prec, err := ParseVariantSpec(spec)
		if err != nil || got != v || prec != Prec8 {
			t.Fatalf("ParseVariantSpec(%q) = %v/%v/%v", spec, got, prec, err)
		}
	}
	for _, bad := range []string{"simd-SP-8bit", "no-vec-QP-8bit", "intrinsic-XX-8bit"} {
		if _, _, err := ParseVariantSpec(bad); err == nil {
			t.Fatalf("ParseVariantSpec(%q) accepted", bad)
		}
	}
	if ok := func() bool {
		p := Params{Variant: GuidedSP, GapOpen: 10, GapExtend: 2, Prec: Prec8}
		return p.Validate() != nil
	}(); !ok {
		t.Fatal("Params.Validate accepted Prec8 on a guided variant")
	}
}
