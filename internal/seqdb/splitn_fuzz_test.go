package seqdb

import (
	"fmt"
	"math/rand"
	"testing"

	"heterosw/internal/sequence"
)

// buildSplitCase derives a database and share vector from fuzz input: n
// sequences with lengths from the byte stream, and shares (possibly zero,
// tiny, or wildly unbalanced) for a roster that may exceed the database
// size.
func buildSplitCase(nSeqs, nShards int, raw []byte) ([]*sequence.Sequence, []float64) {
	if nSeqs < 0 {
		nSeqs = -nSeqs
	}
	nSeqs %= 64
	if nShards < 0 {
		nShards = -nShards
	}
	nShards = nShards%12 + 1 // rosters larger than the database happen
	rng := rand.New(rand.NewSource(int64(len(raw))))
	seqs := make([]*sequence.Sequence, nSeqs)
	for i := range seqs {
		l := 1
		if len(raw) > 0 {
			l = int(raw[i%len(raw)])%97 + 1
		}
		res := make([]byte, l)
		for j := range res {
			res[j] = "ARNDCQEGHILKMFPSTWYV"[rng.Intn(20)]
		}
		seqs[i] = sequence.New(fmt.Sprintf("S%d", i), res)
	}
	shares := make([]float64, nShards)
	for i := range shares {
		switch {
		case len(raw) == 0:
			shares[i] = 1
		default:
			b := raw[(i*7)%len(raw)]
			// Mix zero shares, shares that round to zero sequences and
			// ordinary ones.
			shares[i] = float64(b%32) / 31 * float64(b%5)
		}
	}
	return seqs, shares
}

// FuzzSplitN asserts the shard invariants for arbitrary share vectors:
// every parent sequence lands in exactly one shard, index maps point at
// the right sequences, residues are conserved, and the shape-level
// SplitLengthsN deal never diverges from the materialised SplitN.
func FuzzSplitN(f *testing.F) {
	f.Add(5, 3, []byte{10, 20, 30, 40, 50})
	f.Add(0, 4, []byte{})                        // empty database
	f.Add(2, 9, []byte{200, 1})                  // roster larger than the database
	f.Add(40, 3, []byte{0, 0, 7})                // zero shares in the vector
	f.Add(33, 5, []byte{1, 255, 1, 255, 90, 13}) // extreme imbalance
	f.Add(17, 1, []byte{42})                     // single shard
	f.Fuzz(func(t *testing.T, nSeqs, nShards int, raw []byte) {
		seqs, shares := buildSplitCase(nSeqs, nShards, raw)
		for _, sorted := range []bool{true, false} {
			db := New(seqs, sorted)
			parts, idx := db.SplitN(shares)
			if len(parts) != len(shares) || len(idx) != len(shares) {
				t.Fatalf("got %d parts / %d index maps for %d shares", len(parts), len(idx), len(shares))
			}
			seen := make(map[int]int)
			var residues int64
			for s, part := range parts {
				if part.Len() != len(idx[s]) {
					t.Fatalf("shard %d: %d sequences but %d index entries", s, part.Len(), len(idx[s]))
				}
				if part.Sorted() != sorted {
					t.Fatalf("shard %d lost the parent sort mode", s)
				}
				for j := 0; j < part.Len(); j++ {
					pi := idx[s][j]
					if pi < 0 || pi >= db.Len() {
						t.Fatalf("shard %d[%d]: parent index %d outside [0,%d)", s, j, pi, db.Len())
					}
					seen[pi]++
					if part.Seq(j) != db.Seq(pi) {
						t.Fatalf("shard %d[%d]: sequence is not parent %d", s, j, pi)
					}
				}
				residues += part.Residues()
			}
			for pi := 0; pi < db.Len(); pi++ {
				if seen[pi] != 1 {
					t.Fatalf("parent sequence %d landed in %d shards, want exactly 1", pi, seen[pi])
				}
			}
			if residues != db.Residues() {
				t.Fatalf("shards hold %d residues, parent has %d", residues, db.Residues())
			}
			// For a length-sorted parent, the shape-level deal
			// (SplitLengthsN, which sorts its input) must match the
			// materialised split shard for shard — the full-scale
			// planner depends on this equivalence.
			if sorted {
				lenParts := SplitLengthsN(db.OrderLengths(), shares)
				if len(lenParts) != len(parts) {
					t.Fatalf("SplitLengthsN made %d parts, SplitN %d", len(lenParts), len(parts))
				}
				for s := range parts {
					if len(lenParts[s]) != parts[s].Len() {
						t.Fatalf("shard %d: lengths deal %d sequences, materialised %d", s, len(lenParts[s]), parts[s].Len())
					}
					for j, l := range lenParts[s] {
						if got := db.Seq(idx[s][j]).Len(); got != l {
							t.Fatalf("shard %d[%d]: lengths deal %d, materialised %d", s, j, l, got)
						}
					}
				}
			}
		}
	})
}
