package seqdb

import (
	"sort"

	"heterosw/internal/device"
)

// PackShapes computes the scheduler-chunk geometry that Partition would
// produce for a database with the given sequence lengths, without
// materialising any residues. This is what lets experiments simulate the
// full 541,561-sequence Swiss-Prot in milliseconds: the device cost model
// depends only on chunk shapes.
//
// sortAsc applies the shortest-first pre-processing (step 2 of Algorithm
// 1); when false the input order is packed as-is, reproducing the padding
// waste and load imbalance of an unsorted database. Sequences longer than
// longThreshold (when > 0) become single intra-task chunks, mirroring the
// engine's long-sequence routing.
func PackShapes(lengths []int, lanes int, sortAsc bool, longThreshold int) []device.Shape {
	if lanes < 1 {
		panic("seqdb: invalid lane count")
	}
	ls := lengths
	if sortAsc {
		ls = append([]int(nil), lengths...)
		sort.Ints(ls)
	}
	var shapes []device.Shape
	var short []int
	if longThreshold > 0 {
		short = make([]int, 0, len(ls))
		for _, l := range ls {
			if l > longThreshold {
				shapes = append(shapes, device.Shape{
					Width: l, Lanes: 1, Residues: int64(l), Intra: true,
				})
			} else {
				short = append(short, l)
			}
		}
		ls = short
	}
	for start := 0; start < len(ls); start += lanes {
		end := start + lanes
		if end > len(ls) {
			end = len(ls)
		}
		s := device.Shape{Lanes: lanes}
		for _, l := range ls[start:end] {
			s.Residues += int64(l)
			if l > s.Width {
				s.Width = l
			}
		}
		shapes = append(shapes, s)
	}
	return shapes
}

// SplitLengths partitions lengths into two parts holding approximately frac
// and 1-frac of the residues, using the same greedy deal as
// Database.Split over the shortest-first order (DealGreedy). It serves the
// shape-level simulation of the heterogeneous split sweep.
func SplitLengths(lengths []int, frac float64) (first, second []int) {
	parts := SplitLengthsN(lengths, []float64{frac, 1 - frac})
	return parts[0], parts[1]
}

// SplitLengthsN is the shape-level counterpart of Database.SplitN: it
// deals lengths (shortest-first) into len(fracs) parts with the same
// greedy residue deal (DealGreedy). It serves the cluster dispatcher's
// full-scale planning, where no database is materialised.
func SplitLengthsN(lengths []int, fracs []float64) [][]int {
	ls := append([]int(nil), lengths...)
	sort.Ints(ls)
	positions := DealGreedy(ls, fracs)
	parts := make([][]int, len(fracs))
	for i, ps := range positions {
		for _, p := range ps {
			parts[i] = append(parts[i], ls[p])
		}
	}
	return parts
}
