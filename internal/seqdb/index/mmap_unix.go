//go:build unix

package index

import (
	"os"
	"syscall"
)

// readFileMapped maps path read-only into memory — the true map-and-go
// open: no copy of the residue arena is ever made, the kernel pages the
// file in on first touch (the checksum pass), and the pages are shared
// with every other process holding the same index. The mapping lives as
// long as the database does; indexes back long-lived servers, so no
// munmap path is provided. Falls back to a plain read when mmap fails
// (exotic filesystems, empty files).
func readFileMapped(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return os.ReadFile(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return os.ReadFile(path)
	}
	return data, nil
}
