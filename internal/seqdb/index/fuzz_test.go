package index

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"heterosw/internal/alphabet"
	"heterosw/internal/datagen"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
)

// fuzzMaxResidues bounds one fuzz case's total arena so a hostile spec
// cannot make a single execution quadratically slow.
const fuzzMaxResidues = 1 << 20

// seqsFromSpec decodes a fuzz spec into a sequence set: repeated uint16
// lengths, residues filled deterministically from the spec bytes, IDs
// drawn from a small pool so duplicate headers occur naturally.
func seqsFromSpec(spec []byte) []*sequence.Sequence {
	var seqs []*sequence.Sequence
	var total int
	ids := []string{"s0", "s1", "s0", "dup dup"} // includes duplicates and a spacey ID
	for pos := 0; pos+2 <= len(spec); pos += 2 {
		l := int(binary.LittleEndian.Uint16(spec[pos:]))
		if l > datagen.SwissProtMaxLen {
			l = datagen.SwissProtMaxLen
		}
		if total+l > fuzzMaxResidues {
			break
		}
		total += l
		res := make([]alphabet.Code, l)
		for j := range res {
			res[j] = alphabet.Code((int(spec[(pos+j)%len(spec)]) + j) % alphabet.Size)
		}
		i := len(seqs)
		s := &sequence.Sequence{ID: ids[i%len(ids)], Residues: res}
		if i%2 == 1 {
			s.Desc = "fuzzed record"
		}
		seqs = append(seqs, s)
	}
	return seqs
}

// le16 encodes lengths as a spec.
func le16(lengths ...int) []byte {
	out := make([]byte, 2*len(lengths))
	for i, l := range lengths {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(l))
	}
	return out
}

// FuzzIndexRoundTrip drives random sequence sets through Write and Read
// and requires exact equality of residues, headers, processing order,
// lengths and partition shapes.
func FuzzIndexRoundTrip(f *testing.F) {
	f.Add([]byte{}, true)                         // empty database
	f.Add(le16(1), true)                          // one 1-residue sequence
	f.Add(le16(datagen.SwissProtMaxLen), true)    // the max-length sequence
	f.Add(le16(5, 5, 5), true)                    // duplicate headers (ids cycle s0,s1,s0)
	f.Add(le16(3000, 1, 4000, 2, 3500), true)     // long-sequence routing both sides of 3072
	f.Add(le16(40, 0, 7, 300, 40, 40, 40), false) // unsorted, with a 0-length spec entry
	f.Fuzz(func(t *testing.T, spec []byte, sorted bool) {
		seqs := seqsFromSpec(spec)
		db := seqdb.New(seqs, sorted)

		var buf bytes.Buffer
		sum, err := Write(&buf, db)
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		ix, err := Read(buf.Bytes())
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		got := ix.Database()
		if ix.Checksum != sum || got.Key() == "" || got.Key() != ix.Key() {
			t.Fatalf("identity: checksum %016x/%016x key %q", ix.Checksum, sum, got.Key())
		}
		if got.Len() != db.Len() || got.Residues() != db.Residues() ||
			got.MaxLen() != db.MaxLen() || got.Sorted() != db.Sorted() {
			t.Fatalf("summary %v, want %v", got, db)
		}
		for i := 0; i < db.Len(); i++ {
			w, g := db.Seq(i), got.Seq(i)
			if w.ID != g.ID || w.Desc != g.Desc {
				t.Fatalf("seq %d headers %q/%q, want %q/%q", i, g.ID, g.Desc, w.ID, w.Desc)
			}
			if len(w.Residues) != len(g.Residues) {
				t.Fatalf("seq %d length %d, want %d", i, len(g.Residues), len(w.Residues))
			}
			for j := range w.Residues {
				if w.Residues[j] != g.Residues[j] {
					t.Fatalf("seq %d residue %d: %d, want %d", i, j, g.Residues[j], w.Residues[j])
				}
			}
		}
		if !reflect.DeepEqual(db.Order(), got.Order()) {
			t.Fatal("processing order diverged")
		}
		if !reflect.DeepEqual(db.OrderLengths(), got.OrderLengths()) {
			t.Fatal("order lengths diverged")
		}
		for _, lanes := range []int{16, 64} {
			wantShapes := seqdb.PackShapes(db.OrderLengths(), lanes, false, defaultLongSeqThreshold)
			gotShapes, ok := ix.Shapes(lanes, defaultLongSeqThreshold)
			if !ok || !reflect.DeepEqual(wantShapes, gotShapes) {
				t.Fatalf("%d-lane shape table diverged (ok=%v)", lanes, ok)
			}
			wg, wl := db.Partition(lanes, defaultLongSeqThreshold)
			gg, gl := got.Partition(lanes, defaultLongSeqThreshold)
			if !reflect.DeepEqual(wl, gl) || !reflect.DeepEqual(wg, gg) {
				t.Fatalf("%d-lane partition diverged", lanes)
			}
		}
	})
}
