//go:build !unix

package index

import "os"

// readFileMapped reads path into memory on platforms without mmap
// support; still one contiguous buffer, still zero per-sequence copies.
func readFileMapped(path string) ([]byte, error) {
	return os.ReadFile(path)
}
