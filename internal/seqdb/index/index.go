// Package index implements the persistent preprocessed database format
// `.swdb`: a versioned binary image of a seqdb.Database with every piece of
// startup preprocessing already done. A search path loading an index pays
// neither the FASTA parse, nor the residue encoding, nor the length sort —
// opening is O(1) work per sequence (slice headers over one contiguous
// residue arena) instead of O(residues) parsing, the same amortisation
// BLAST-style preformatted databases and SWAPHI's pre-packed device buffers
// buy for large references.
//
// # Layout (version 1, little-endian)
//
//	offset  size      field
//	0       4         magic "SWDB"
//	4       4         version (1)
//	8       4         flags (bit 0: length-sorted processing order;
//	                  bit 1: DNA alphabet)
//	12      4         alphabet length A
//	16      8         sequence count N
//	24      8         residue arena length R (bytes)
//	32      8         header-string blob length H
//	40      8         shape-table section length S
//	48      4         max sequence length
//	52      4         shape-table count
//	56      8         checksum: CRC-32C (Castagnoli) over bytes
//	                  [0,56) ++ [64,EOF), widened to uint64
//	64      A         alphabet letters (the database alphabet's letter
//	                  string, which must resolve via alphabet.ByLetters
//	                  and agree with the DNA flag bit)
//	...     4N        sequence lengths, uint32, caller order
//	...     8N        arena offsets, uint64, caller order
//	...     4N        processing order, uint32: order[i] = caller index
//	...     H         header blob: per sequence, uvarint(len(ID)) ID
//	                  uvarint(len(Desc)) Desc, caller order
//	...     S         shape tables (see below)
//	...     R         residue arena: encoded residues packed back-to-back
//	                  in processing order
//
// Each shape table precomputes the lane-group partition geometry
// (device.Shape) one SIMD lane width produces over the processing order:
// uint32 lanes, uint32 long-sequence threshold, uint32 count, then count
// entries of {uint32 width, uint32 lanes, uint64 residues, uint8 intra}.
// Planning tools can price a database without touching the arena.
//
// The checksum covers the whole file except its own field, so any flipped
// bit — header or payload — is detected at open. CRC-32C is chosen over a
// wider CRC because it is hardware-accelerated on every platform this
// targets: checksumming dominates the open path, and database readiness is
// the whole point of the format. Structural validation (offsets and
// lengths inside the arena, the order being a permutation, residue codes
// in range) still runs after the checksum, as defence in depth against a
// consistent but hostile file; the engine-sharing identity key folds the
// sequence and residue counts in beside the checksum so accidental 32-bit
// collisions between different databases cannot alias engines.
package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"unsafe"

	"heterosw/internal/alphabet"
	"heterosw/internal/device"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
)

// Magic identifies a .swdb file; Version is the current format revision.
const (
	Magic   = "SWDB"
	Version = 1
)

// headerSize is the fixed header length in bytes.
const headerSize = 64

// flagSorted marks a length-sorted processing order; flagDNA marks a
// database encoded under the IUPAC DNA alphabet (absent: protein, keeping
// pre-DNA protein images byte-identical and readable by older readers).
const (
	flagSorted = 1
	flagDNA    = 2
)

// The ErrBadIndex family: every way an index can fail to open wraps
// ErrBadIndex, so callers can test the family with one errors.Is while
// tests (and operators) still distinguish the failure mode.
var (
	// ErrBadIndex is the family root: the file is not a usable index.
	ErrBadIndex = errors.New("swdb: invalid index")
	// ErrBadMagic marks a file that is not a .swdb index at all.
	ErrBadMagic = fmt.Errorf("%w: bad magic", ErrBadIndex)
	// ErrBadVersion marks an index written by an unknown format revision.
	ErrBadVersion = fmt.Errorf("%w: unsupported version", ErrBadIndex)
	// ErrTruncated marks a file shorter (or longer) than its header claims.
	ErrTruncated = fmt.Errorf("%w: truncated file", ErrBadIndex)
	// ErrBadChecksum marks a checksum mismatch: the file was corrupted
	// after it was written.
	ErrBadChecksum = fmt.Errorf("%w: checksum mismatch", ErrBadIndex)
	// ErrBadOffset marks an offset/length table entry pointing outside the
	// residue arena.
	ErrBadOffset = fmt.Errorf("%w: offset table points past the arena", ErrBadIndex)
	// ErrBadLayout marks any other structural inconsistency (alphabet
	// mismatch, non-permutation order, malformed header blob, invalid
	// residue codes).
	ErrBadLayout = fmt.Errorf("%w: inconsistent layout", ErrBadIndex)
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum computes the file checksum: CRC-32C over the header (with the
// checksum field excluded) and the payload, widened to the format's
// 8-byte field.
func checksum(header, payload []byte) uint64 {
	crc := crc32.Update(0, crcTable, header)
	return uint64(crc32.Update(crc, crcTable, payload))
}

// defaultLongSeqThreshold mirrors core.DefaultLongSeqThreshold (this
// package sits below core in the dependency order; the equality is pinned
// by a test). Shape tables are precomputed at this routing threshold, the
// one every vector search path uses by default.
const defaultLongSeqThreshold = 3072

// shapeLanes lists the lane widths shape tables are precomputed for: the
// 16-bit lane counts of the modelled devices plus their 8-bit ladder
// (byte-lane) widths.
func shapeLanes() []int {
	seen := map[int]bool{}
	var out []int
	for _, name := range []string{"xeon", "phi"} {
		m := device.Devices()[name]
		for _, l := range []int{m.Lanes, m.ByteLanes()} {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// TableKey identifies one precomputed shape table.
type TableKey struct {
	Lanes, LongThreshold int
}

// Index is an opened .swdb image: the restored database plus the
// precomputed metadata the format carries.
type Index struct {
	// Checksum is the file's CRC-32C content fingerprint (widened to the
	// format's 8-byte field); matching checksums with matching headline
	// counts identify identical indexes.
	Checksum uint64
	// Sorted reports whether the processing order is length-sorted.
	Sorted bool

	db     *seqdb.Database
	shapes map[TableKey][]device.Shape
}

// Database returns the restored database. Its sequences alias the index's
// residue arena (zero per-sequence copies) and its Key() is derived from
// the checksum, so shards split from two loads of the same index share
// backend engines.
func (ix *Index) Database() *seqdb.Database { return ix.db }

// Key returns the database identity key derived from the checksum and the
// database's headline counts.
func (ix *Index) Key() string {
	return checksumKey(ix.Checksum, uint64(ix.db.Len()), uint64(ix.db.Residues()))
}

// Shapes returns the precomputed lane-group partition geometry for a lane
// width and long-sequence routing threshold, or ok=false when the table
// was not precomputed for that combination.
func (ix *Index) Shapes(lanes, longThreshold int) (shapes []device.Shape, ok bool) {
	s, ok := ix.shapes[TableKey{lanes, longThreshold}]
	return s, ok
}

// ShapeTables lists the (lanes, longThreshold) combinations the file
// actually carries shape tables for — whatever writer produced them —
// sorted for deterministic reporting.
func (ix *Index) ShapeTables() []TableKey {
	out := make([]TableKey, 0, len(ix.shapes))
	for k := range ix.shapes {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Lanes != out[b].Lanes {
			return out[a].Lanes < out[b].Lanes
		}
		return out[a].LongThreshold < out[b].LongThreshold
	})
	return out
}

// checksumKey derives the engine-sharing identity key: the checksum plus
// the sequence and residue counts, so a 32-bit CRC collision between
// different databases cannot alias their engines.
func checksumKey(sum, nSeqs, residues uint64) string {
	return fmt.Sprintf("swdb:%08x-%d-%d", sum, nSeqs, residues)
}

// Write serialises db as a version-1 .swdb image and returns its checksum.
func Write(w io.Writer, db *seqdb.Database) (uint64, error) {
	if db == nil {
		return 0, fmt.Errorf("swdb: nil database")
	}
	n := db.Len()
	if int64(n) > int64(^uint32(0)) {
		return 0, fmt.Errorf("swdb: %d sequences exceed the format's uint32 order table", n)
	}
	order := db.Order()
	alpha := db.Alphabet()

	var payload bytes.Buffer
	payload.WriteString(alpha.Letters())

	// Lengths and (sorted-order) arena offsets, both in caller order.
	offsets := make([]uint64, n)
	var off uint64
	for _, si := range order {
		offsets[si] = off
		off += uint64(db.Seq(si).Len())
	}
	var u32 [4]byte
	var u64 [8]byte
	for i := 0; i < n; i++ {
		l := db.Seq(i).Len()
		if int64(l) > int64(^uint32(0)) {
			return 0, fmt.Errorf("swdb: sequence %d: %d residues exceed the format's uint32 length table", i, l)
		}
		binary.LittleEndian.PutUint32(u32[:], uint32(l))
		payload.Write(u32[:])
	}
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(u64[:], offsets[i])
		payload.Write(u64[:])
	}
	for _, si := range order {
		binary.LittleEndian.PutUint32(u32[:], uint32(si))
		payload.Write(u32[:])
	}

	// Header-string blob.
	blobStart := payload.Len()
	var uv [binary.MaxVarintLen64]byte
	for i := 0; i < n; i++ {
		s := db.Seq(i)
		payload.Write(uv[:binary.PutUvarint(uv[:], uint64(len(s.ID)))])
		payload.WriteString(s.ID)
		payload.Write(uv[:binary.PutUvarint(uv[:], uint64(len(s.Desc)))])
		payload.WriteString(s.Desc)
	}
	blobLen := payload.Len() - blobStart

	// Shape tables: the partition geometry each modelled lane width
	// produces over the processing order.
	shapesStart := payload.Len()
	lengths := db.OrderLengths()
	lanesSet := shapeLanes()
	for _, lanes := range lanesSet {
		shapes := seqdb.PackShapes(lengths, lanes, false, defaultLongSeqThreshold)
		binary.LittleEndian.PutUint32(u32[:], uint32(lanes))
		payload.Write(u32[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(defaultLongSeqThreshold))
		payload.Write(u32[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(len(shapes)))
		payload.Write(u32[:])
		for _, s := range shapes {
			binary.LittleEndian.PutUint32(u32[:], uint32(s.Width))
			payload.Write(u32[:])
			binary.LittleEndian.PutUint32(u32[:], uint32(s.Lanes))
			payload.Write(u32[:])
			binary.LittleEndian.PutUint64(u64[:], uint64(s.Residues))
			payload.Write(u64[:])
			if s.Intra {
				payload.WriteByte(1)
			} else {
				payload.WriteByte(0)
			}
		}
	}
	shapesLen := payload.Len() - shapesStart

	// Residue arena: raw codes packed back-to-back in processing order,
	// one memcpy per sequence via the byte view.
	for _, si := range order {
		payload.Write(alphabet.BytesView(db.Seq(si).Residues))
	}

	var hdr [headerSize]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	flags := uint32(0)
	if db.Sorted() {
		flags |= flagSorted
	}
	if alpha == alphabet.DNA {
		flags |= flagDNA
	}
	binary.LittleEndian.PutUint32(hdr[8:12], flags)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(alpha.Letters())))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(db.Residues()))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(blobLen))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(shapesLen))
	binary.LittleEndian.PutUint32(hdr[48:52], uint32(db.MaxLen()))
	binary.LittleEndian.PutUint32(hdr[52:56], uint32(len(lanesSet)))

	sum := checksum(hdr[:56], payload.Bytes())
	binary.LittleEndian.PutUint64(hdr[56:64], sum)

	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return 0, err
	}
	return sum, nil
}

// WriteFile writes db as a .swdb file, atomically: the image lands in a
// temporary file in the target directory and is renamed into place. This
// makes rebuilding an index over itself safe — the source mapping keeps
// its inode until unmapped, so `swindex build db.swdb` (or any
// WriteIndexFile over a database loaded from the same path) can never
// truncate the pages it is still reading — and a crash mid-write never
// leaves a half-written index at path.
func WriteFile(path string, db *seqdb.Database) (uint64, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must keep the temp file beside the target:
		// os.CreateTemp("") would fall back to the system temp directory,
		// making the rename cross-filesystem (EXDEV) and non-atomic.
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return 0, err
	}
	sum, err := Write(f, db)
	if err == nil {
		// CreateTemp's private 0600 would stick through the rename; the
		// published index is a conventional shareable artifact.
		err = f.Chmod(0o644)
	}
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err == nil {
		err = os.Rename(f.Name(), path)
	}
	if err != nil {
		os.Remove(f.Name())
		return 0, err
	}
	return sum, nil
}

// Read parses a .swdb image held in memory. The returned Index (and every
// sequence of its database) aliases data, which must not be mutated
// afterwards.
func Read(data []byte) (*Index, error) {
	if len(data) < headerSize {
		if len(data) >= 4 && string(data[0:4]) != Magic {
			return nil, ErrBadMagic
		}
		return nil, ErrTruncated
	}
	if string(data[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("%w %d (have %d)", ErrBadVersion, v, Version)
	}
	flags := binary.LittleEndian.Uint32(data[8:12])
	alphaLen := uint64(binary.LittleEndian.Uint32(data[12:16]))
	nSeqs := binary.LittleEndian.Uint64(data[16:24])
	arenaLen := binary.LittleEndian.Uint64(data[24:32])
	blobLen := binary.LittleEndian.Uint64(data[32:40])
	shapesLen := binary.LittleEndian.Uint64(data[40:48])
	nTables := binary.LittleEndian.Uint32(data[52:56])
	wantSum := binary.LittleEndian.Uint64(data[56:64])

	if nSeqs > uint64(^uint32(0)) {
		return nil, fmt.Errorf("%w: %d sequences", ErrBadLayout, nSeqs)
	}
	// Exact size check before anything else: a truncated (or padded) file
	// is reported as such, not as a checksum mismatch.
	total, ok := addAll(headerSize, alphaLen, 16*nSeqs, blobLen, shapesLen, arenaLen)
	if !ok {
		return nil, fmt.Errorf("%w: section sizes overflow", ErrBadLayout)
	}
	if uint64(len(data)) != total {
		return nil, fmt.Errorf("%w: %d bytes, header describes %d", ErrTruncated, len(data), total)
	}

	if got := checksum(data[:56], data[headerSize:]); got != wantSum {
		return nil, fmt.Errorf("%w: computed %016x, stored %016x", ErrBadChecksum, got, wantSum)
	}

	pos := uint64(headerSize)
	alpha, err := alphabet.ByLetters(string(data[pos : pos+alphaLen]))
	if err != nil {
		return nil, fmt.Errorf("%w: alphabet %q", ErrBadLayout, data[pos:pos+alphaLen])
	}
	if (flags&flagDNA != 0) != (alpha == alphabet.DNA) {
		return nil, fmt.Errorf("%w: DNA flag disagrees with the %s alphabet letters",
			ErrBadLayout, alpha.Name())
	}
	pos += alphaLen

	n := int(nSeqs)
	lengthsRaw := data[pos : pos+4*nSeqs]
	pos += 4 * nSeqs
	offsetsRaw := data[pos : pos+8*nSeqs]
	pos += 8 * nSeqs
	order := make([]int, n)
	for i := range order {
		order[i] = int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
	}

	blob := data[pos : pos+blobLen]
	pos += blobLen
	shapesRaw := data[pos : pos+shapesLen]
	pos += shapesLen
	arena := alphabet.CodesView(data[pos : pos+arenaLen])
	if !alpha.ValidCodes(arena) {
		return nil, fmt.Errorf("%w: arena holds out-of-range residue codes", ErrBadLayout)
	}

	// One struct block for all sequences: the open path is the product the
	// format sells, so per-sequence work is kept to slice headers. IDs and
	// descriptions are unsafe string views over the blob — data is
	// immutable by contract.
	seqArr := make([]sequence.Sequence, n)
	seqs := make([]*sequence.Sequence, n)
	bpos := 0
	for i := 0; i < n; i++ {
		off := binary.LittleEndian.Uint64(offsetsRaw[8*i:])
		l := uint64(binary.LittleEndian.Uint32(lengthsRaw[4*i:]))
		end := off + l
		if end < off || end > arenaLen {
			return nil, fmt.Errorf("%w (sequence %d: offset %d + length %d > %d)",
				ErrBadOffset, i, off, l, arenaLen)
		}
		id, ok := blobString(blob, &bpos)
		if !ok {
			return nil, fmt.Errorf("%w: header blob: sequence %d ID", ErrBadLayout, i)
		}
		desc, ok := blobString(blob, &bpos)
		if !ok {
			return nil, fmt.Errorf("%w: header blob: sequence %d description", ErrBadLayout, i)
		}
		seqArr[i] = sequence.Sequence{ID: id, Desc: desc, Residues: arena[off:end:end], Alpha: alpha}
		seqs[i] = &seqArr[i]
	}
	if bpos != len(blob) {
		return nil, fmt.Errorf("%w: %d trailing header-blob bytes", ErrBadLayout, len(blob)-bpos)
	}

	shapes, err := readShapeTables(shapesRaw, nTables)
	if err != nil {
		return nil, err
	}

	db, err := seqdb.Restore(seqs, order, flags&flagSorted != 0, checksumKey(wantSum, nSeqs, arenaLen))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadLayout, err)
	}
	return &Index{Checksum: wantSum, Sorted: flags&flagSorted != 0, db: db, shapes: shapes}, nil
}

// blobString reads one uvarint-length-prefixed string at *pos, advancing
// it. The returned string aliases blob (zero-copy).
func blobString(blob []byte, pos *int) (string, bool) {
	v, k := binary.Uvarint(blob[*pos:])
	if k <= 0 {
		return "", false
	}
	p := *pos + k
	if v > uint64(len(blob)-p) {
		return "", false
	}
	*pos = p + int(v)
	if v == 0 {
		return "", true
	}
	return unsafe.String(&blob[p], int(v)), true
}

// Open maps (on unix; reads elsewhere) and parses a .swdb file: the
// residue arena is never copied, only sliced — the map-and-go startup
// path. The mapping is shared with the returned database for its
// lifetime; indexes back long-lived processes, so it is never unmapped.
func Open(path string) (*Index, error) {
	data, err := readFileMapped(path)
	if err != nil {
		return nil, err
	}
	return Read(data)
}

// Sniff reports whether data begins with the .swdb magic.
func Sniff(data []byte) bool {
	return len(data) >= len(Magic) && string(data[0:len(Magic)]) == Magic
}

// SniffFile reports whether path begins with the .swdb magic. A missing
// or unreadable file reports false.
func SniffFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	head := make([]byte, len(Magic))
	n, _ := io.ReadFull(f, head)
	return Sniff(head[:n])
}

// LoadDatabase opens either database representation, sniffed by magic:
// a .swdb index (mapped zero-copy, carrying its own alphabet) or a FASTA
// file (parsed under the protein alphabet, encoded and length-sorted). The
// returned kind is "swdb" or "fasta".
func LoadDatabase(path string) (*seqdb.Database, string, error) {
	return LoadDatabaseAlpha(path, alphabet.Protein)
}

// LoadDatabaseAlpha is LoadDatabase with an explicit alphabet for the
// FASTA path. A .swdb index always decodes under its persisted alphabet;
// fastaAlpha only governs how bare FASTA input is encoded.
func LoadDatabaseAlpha(path string, fastaAlpha *alphabet.Alphabet) (*seqdb.Database, string, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, "", err
	}
	if SniffFile(path) {
		ix, err := Open(path)
		if err != nil {
			return nil, "", err
		}
		return ix.Database(), "swdb", nil
	}
	seqs, err := sequence.ReadFASTAFileAlpha(path, fastaAlpha)
	if err != nil {
		return nil, "", err
	}
	return seqdb.New(seqs, true), "fasta", nil
}

// readShapeTables parses the shape-table section.
func readShapeTables(raw []byte, nTables uint32) (map[TableKey][]device.Shape, error) {
	out := make(map[TableKey][]device.Shape, nTables)
	pos := 0
	for t := uint32(0); t < nTables; t++ {
		if len(raw)-pos < 12 {
			return nil, fmt.Errorf("%w: shape table %d header", ErrBadLayout, t)
		}
		lanes := int(binary.LittleEndian.Uint32(raw[pos:]))
		longThr := int(binary.LittleEndian.Uint32(raw[pos+4:]))
		count := int(binary.LittleEndian.Uint32(raw[pos+8:]))
		pos += 12
		// Division avoids count*17 overflowing int on 32-bit platforms —
		// a hostile count must error, never wrap past the guard and panic.
		if count < 0 || count > (len(raw)-pos)/17 {
			return nil, fmt.Errorf("%w: shape table %d entries", ErrBadLayout, t)
		}
		var shapes []device.Shape
		if count > 0 {
			shapes = make([]device.Shape, count)
		}
		for i := range shapes {
			shapes[i] = device.Shape{
				Width:    int(binary.LittleEndian.Uint32(raw[pos:])),
				Lanes:    int(binary.LittleEndian.Uint32(raw[pos+4:])),
				Residues: int64(binary.LittleEndian.Uint64(raw[pos+8:])),
				Intra:    raw[pos+16] != 0,
			}
			pos += 17
		}
		out[TableKey{lanes, longThr}] = shapes
	}
	if pos != len(raw) {
		return nil, fmt.Errorf("%w: %d trailing shape-table bytes", ErrBadLayout, len(raw)-pos)
	}
	return out, nil
}

// addAll sums uint64s, reporting overflow.
func addAll(vs ...uint64) (uint64, bool) {
	var sum uint64
	for _, v := range vs {
		next := sum + v
		if next < sum {
			return 0, false
		}
		sum = next
	}
	return sum, true
}
