package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"heterosw/internal/core"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
)

// randSeqs builds a deterministic random sequence set with varied lengths,
// descriptions and duplicate IDs.
func randSeqs(seed int64, n, maxLen int) []*sequence.Sequence {
	rng := rand.New(rand.NewSource(seed))
	const letters = "ARNDCQEGHILKMFPSTWYVBZX*"
	seqs := make([]*sequence.Sequence, n)
	for i := range seqs {
		l := rng.Intn(maxLen) + 1
		buf := make([]byte, l)
		for j := range buf {
			buf[j] = letters[rng.Intn(len(letters))]
		}
		s := sequence.New(fmt.Sprintf("seq%d", i%max(1, n-2)), buf) // a couple of duplicate IDs
		if i%3 == 0 {
			s.Desc = fmt.Sprintf("synthetic record %d", i)
		}
		seqs[i] = s
	}
	return seqs
}

// checkEqual asserts the restored database matches the original in every
// caller-visible respect: residues, headers, lengths, processing order and
// partition geometry.
func checkEqual(t *testing.T, want, got *seqdb.Database) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	if got.Residues() != want.Residues() || got.MaxLen() != want.MaxLen() || got.Sorted() != want.Sorted() {
		t.Fatalf("summary %v, want %v", got, want)
	}
	for i := 0; i < want.Len(); i++ {
		ws, gs := want.Seq(i), got.Seq(i)
		if ws.ID != gs.ID || ws.Desc != gs.Desc {
			t.Fatalf("seq %d header = %q/%q, want %q/%q", i, gs.ID, gs.Desc, ws.ID, ws.Desc)
		}
		if !reflect.DeepEqual(ws.Residues, gs.Residues) {
			t.Fatalf("seq %d residues differ", i)
		}
	}
	if !reflect.DeepEqual(want.Order(), got.Order()) {
		t.Fatalf("processing order differs")
	}
	for _, lanes := range []int{1, 16, 32, 64} {
		wg, wl := want.Partition(lanes, 3072)
		gg, gl := got.Partition(lanes, 3072)
		if !reflect.DeepEqual(wl, gl) {
			t.Fatalf("lanes %d: long routing differs", lanes)
		}
		if !reflect.DeepEqual(wg, gg) {
			t.Fatalf("lanes %d: lane groups differ", lanes)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		seqs   []*sequence.Sequence
		sorted bool
	}{
		{"sorted", randSeqs(1, 200, 600), true},
		{"unsorted", randSeqs(2, 64, 200), false},
		{"with-long", append(randSeqs(3, 40, 100), sequence.FromString("long", string(bytes.Repeat([]byte("ARND"), 1000)))), true},
		{"single", randSeqs(4, 1, 50), true},
		{"empty", nil, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := seqdb.New(tc.seqs, tc.sorted)
			var buf bytes.Buffer
			sum, err := Write(&buf, db)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := Read(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if ix.Checksum != sum {
				t.Fatalf("checksum %016x, Write reported %016x", ix.Checksum, sum)
			}
			if ix.Sorted != tc.sorted {
				t.Fatalf("Sorted = %v, want %v", ix.Sorted, tc.sorted)
			}
			if got, want := ix.Database().Key(), ix.Key(); got != want || got == "" {
				t.Fatalf("Key = %q, want non-empty %q", got, want)
			}
			checkEqual(t, db, ix.Database())
		})
	}
}

// TestWriteDeterministic pins that the image is a pure function of the
// database, so checksums are stable identities.
func TestWriteDeterministic(t *testing.T) {
	db := seqdb.New(randSeqs(7, 100, 300), true)
	var a, b bytes.Buffer
	sa, err := Write(&a, db)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Write(&b, db)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of one database differ")
	}
}

// TestShapeTables pins that the precomputed shape tables are exactly what
// PackShapes derives over the processing order, for every modelled lane
// width, at the engine's default long-sequence threshold.
func TestShapeTables(t *testing.T) {
	seqs := append(randSeqs(5, 120, 500), sequence.FromString("titin", string(bytes.Repeat([]byte("MKWV"), 2000))))
	db := seqdb.New(seqs, true)
	var buf bytes.Buffer
	if _, err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	ix, err := Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if defaultLongSeqThreshold != core.DefaultLongSeqThreshold {
		t.Fatalf("defaultLongSeqThreshold = %d, core uses %d", defaultLongSeqThreshold, core.DefaultLongSeqThreshold)
	}
	tables := ix.ShapeTables()
	if len(tables) != 3 {
		t.Fatalf("ShapeTables = %v, want the three modelled lane widths", tables)
	}
	for _, lanes := range []int{16, 32, 64} {
		got, ok := ix.Shapes(lanes, core.DefaultLongSeqThreshold)
		if !ok {
			t.Fatalf("no shape table for %d lanes", lanes)
		}
		want := seqdb.PackShapes(db.OrderLengths(), lanes, false, core.DefaultLongSeqThreshold)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-lane shapes diverge from PackShapes", lanes)
		}
	}
	if _, ok := ix.Shapes(8, core.DefaultLongSeqThreshold); ok {
		t.Fatal("unexpected shape table for 8 lanes")
	}
}

func TestOpenFile(t *testing.T) {
	db := seqdb.New(randSeqs(6, 50, 200), true)
	path := filepath.Join(t.TempDir(), "db.swdb")
	sum, err := WriteFile(path, db)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Checksum != sum {
		t.Fatalf("checksum %016x, want %016x", ix.Checksum, sum)
	}
	checkEqual(t, db, ix.Database())
}

// TestLoadDatabaseSniffs pins the dual-format loader: the same sequences
// come back from a FASTA file and from an index built over it.
func TestLoadDatabaseSniffs(t *testing.T) {
	seqs := randSeqs(8, 80, 300)
	dir := t.TempDir()
	fasta := filepath.Join(dir, "db.fasta")
	if err := sequence.WriteFASTAFile(fasta, seqs, 60); err != nil {
		t.Fatal(err)
	}
	fromFasta, kind, err := LoadDatabase(fasta)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "fasta" {
		t.Fatalf("kind = %q, want fasta", kind)
	}
	if fromFasta.Key() != "" {
		t.Fatalf("FASTA-loaded database has identity key %q", fromFasta.Key())
	}

	swdb := filepath.Join(dir, "db.swdb")
	if _, err := WriteFile(swdb, fromFasta); err != nil {
		t.Fatal(err)
	}
	fromIndex, kind, err := LoadDatabase(swdb)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "swdb" {
		t.Fatalf("kind = %q, want swdb", kind)
	}
	if fromIndex.Key() == "" {
		t.Fatal("index-loaded database has no identity key")
	}
	checkEqual(t, fromFasta, fromIndex)

	if _, _, err := LoadDatabase(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestSplitSharesKeys pins the key propagation that lets shards of one
// index share engines: equal splits of two loads of the same index carry
// equal keys, different windows different keys.
func TestSplitSharesKeys(t *testing.T) {
	db := seqdb.New(randSeqs(9, 60, 200), true)
	var buf bytes.Buffer
	if _, err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	load := func() *seqdb.Database {
		ix, err := Read(append([]byte(nil), buf.Bytes()...))
		if err != nil {
			t.Fatal(err)
		}
		return ix.Database()
	}
	a, b := load(), load()
	if a.Key() == "" || a.Key() != b.Key() {
		t.Fatalf("keys %q vs %q", a.Key(), b.Key())
	}
	fracs := []float64{0.3, 0.7}
	as, _ := a.SplitN(fracs)
	bs, _ := b.SplitN(fracs)
	for i := range as {
		if as[i].Key() == "" || as[i].Key() != bs[i].Key() {
			t.Fatalf("shard %d keys %q vs %q", i, as[i].Key(), bs[i].Key())
		}
	}
	if as[0].Key() == as[1].Key() {
		t.Fatal("distinct shards share a key")
	}
	aw, _ := a.OrderSlice(0, 10)
	bw, _ := b.OrderSlice(0, 10)
	if aw.Key() == "" || aw.Key() != bw.Key() {
		t.Fatalf("window keys %q vs %q", aw.Key(), bw.Key())
	}
	cw, _ := a.OrderSlice(10, 20)
	if cw.Key() == aw.Key() {
		t.Fatal("distinct windows share a key")
	}
}

func TestSniff(t *testing.T) {
	if Sniff([]byte(">fasta")) || Sniff(nil) || Sniff([]byte("SW")) {
		t.Fatal("Sniff accepted non-index bytes")
	}
	if !Sniff([]byte("SWDBxxxx")) {
		t.Fatal("Sniff rejected the magic")
	}
}

func TestWriteNil(t *testing.T) {
	if _, err := Write(os.Stderr, nil); err == nil {
		t.Fatal("Write(nil database) did not error")
	}
}

// TestWriteFileInPlaceRebuild pins the atomic replace: rebuilding an
// index over its own path while the source database still aliases the
// mapped file must neither fault nor corrupt the output (the rename
// leaves the old inode alive for the mapping).
func TestWriteFileInPlaceRebuild(t *testing.T) {
	want := seqdb.New(randSeqs(11, 40, 150), true)
	path := filepath.Join(t.TempDir(), "db.swdb")
	sum, err := WriteFile(path, want)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(path) // mmaps path on unix
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := WriteFile(path, ix.Database()) // residues read from the mapping itself
	if err != nil {
		t.Fatal(err)
	}
	if sum2 != sum {
		t.Fatalf("in-place rebuild changed the checksum: %016x -> %016x", sum, sum2)
	}
	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, want, reopened.Database())
	checkEqual(t, want, ix.Database()) // the old mapping is still fully readable
}

// TestWriteFileBareFilename pins that a directory-less target path keeps
// the atomic temp file beside the target (os.CreateTemp("") would use the
// system temp dir and make the rename cross-filesystem).
func TestWriteFileBareFilename(t *testing.T) {
	t.Chdir(t.TempDir())
	db := seqdb.New(randSeqs(12, 10, 50), true)
	if _, err := WriteFile("bare.swdb", db); err != nil {
		t.Fatal(err)
	}
	if _, err := Open("bare.swdb"); err != nil {
		t.Fatal(err)
	}
}
