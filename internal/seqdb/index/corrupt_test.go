package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"heterosw/internal/seqdb"
)

// validImage builds one well-formed index image for mutation.
func validImage(t testing.TB) []byte {
	t.Helper()
	db := seqdb.New(randSeqs(42, 30, 120), true)
	var buf bytes.Buffer
	if _, err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reseal recomputes and stores the checksum after a deliberate payload
// mutation, so structural validation — not the checksum — is what rejects
// the file.
func reseal(data []byte) {
	binary.LittleEndian.PutUint64(data[56:64], checksum(data[:56], data[headerSize:]))
}

// TestCorruption pins one distinct sentinel per failure mode — and that
// none of them panics.
func TestCorruption(t *testing.T) {
	base := validImage(t)
	// The offset table starts after the alphabet and the lengths table.
	nSeqs := int(binary.LittleEndian.Uint64(base[16:24]))
	offTable := headerSize + 24 + 4*nSeqs

	cases := []struct {
		name   string
		mutate func(data []byte) []byte
		want   error
	}{
		{"truncated-mid-arena", func(d []byte) []byte { return d[:len(d)-5] }, ErrTruncated},
		{"truncated-header", func(d []byte) []byte { return d[:17] }, ErrTruncated},
		{"trailing-garbage", func(d []byte) []byte { return append(d, 0xFF) }, ErrTruncated},
		{"bad-magic", func(d []byte) []byte { d[0] = 'X'; return d }, ErrBadMagic},
		{"wrong-version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[4:8], 99)
			return d
		}, ErrBadVersion},
		{"flipped-checksum-byte", func(d []byte) []byte { d[56] ^= 0x01; return d }, ErrBadChecksum},
		{"flipped-payload-byte", func(d []byte) []byte { d[len(d)-1] ^= 0x40; return d }, ErrBadChecksum},
		{"flipped-header-byte", func(d []byte) []byte { d[48] ^= 0x20; return d }, ErrBadChecksum}, // maxLen is checksummed too
		{"offset-past-eof", func(d []byte) []byte {
			// Point the first sequence's offset past the arena, then
			// reseal so the checksum is consistent with the corruption.
			binary.LittleEndian.PutUint64(d[offTable:], 1<<40)
			reseal(d)
			return d
		}, ErrBadOffset},
		{"order-not-permutation", func(d []byte) []byte {
			orderTable := offTable + 8*nSeqs
			binary.LittleEndian.PutUint32(d[orderTable:], binary.LittleEndian.Uint32(d[orderTable+4:]))
			reseal(d)
			return d
		}, ErrBadLayout},
		{"bad-alphabet", func(d []byte) []byte {
			d[headerSize] = '?'
			reseal(d)
			return d
		}, ErrBadLayout},
		{"empty", func(d []byte) []byte { return nil }, ErrTruncated},
		{"magic-only", func(d []byte) []byte { return d[:4] }, ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			ix, err := Read(data)
			if err == nil {
				t.Fatalf("corrupted image opened: %v", ix.Database())
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrBadIndex) {
				t.Fatalf("err = %v does not wrap ErrBadIndex", err)
			}
		})
	}
}

// FuzzReadArbitrary feeds arbitrary bytes to Read: every outcome must be a
// clean error or a valid database — never a panic. Seeded with a valid
// image so the fuzzer explores mutations of real structure.
func FuzzReadArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SWDB"))
	f.Add(validImage(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Read(data)
		if err != nil {
			if !errors.Is(err, ErrBadIndex) {
				t.Fatalf("non-family error: %v", err)
			}
			return
		}
		// A successful open must yield an internally consistent database.
		db := ix.Database()
		var residues int64
		for i := 0; i < db.Len(); i++ {
			residues += int64(db.Seq(i).Len())
		}
		if residues != db.Residues() {
			t.Fatalf("inconsistent database: %d residues, reports %d", residues, db.Residues())
		}
	})
}
