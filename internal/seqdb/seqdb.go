// Package seqdb implements the reference-database side of the search
// engine: loading, the length-sorting pre-processing step the paper applies
// before scheduling (step 2 of Algorithm 1), packing sequences into
// SIMD lane groups for the inter-task kernels, and the static database
// split between host and coprocessor used by the heterogeneous version
// (step 2 of Algorithm 2).
package seqdb

import (
	"fmt"
	"sort"

	"heterosw/internal/alphabet"
	"heterosw/internal/sequence"
)

// Database is an immutable, optionally length-sorted collection of target
// sequences. The sort order is kept as a permutation so hit reporting can
// refer back to the caller's sequence order.
type Database struct {
	seqs   []*sequence.Sequence
	order  []int // processing order: indices into seqs
	sorted bool
	alpha  *alphabet.Alphabet

	totalResidues int64
	maxLen        int

	// key is a content-identity fingerprint for index-backed databases
	// (and their derived shards): two databases with the same non-empty
	// key hold identical sequences in identical order, so per-database
	// pre-processing (engines, lane packings) can be shared between them.
	// Empty for ad-hoc databases, whose identity is their pointer.
	key string
}

// New builds a database over seqs. When sortByLength is true the processing
// order is shortest-first, the optimisation the paper adopts from [14] so
// that consecutive alignment operations take similar time and lane groups
// waste little padding. (Ascending order also keeps the geometrically
// shrinking chunks of OpenMP guided scheduling balanced, which is why the
// paper finds guided only slightly behind dynamic.) seqs is not copied and
// must not be mutated; a nil slice builds a valid empty database.
func New(seqs []*sequence.Sequence, sortByLength bool) *Database {
	db := &Database{
		seqs:   seqs,
		order:  make([]int, len(seqs)),
		sorted: sortByLength,
		alpha:  alphaOf(seqs),
	}
	for i, s := range seqs {
		db.order[i] = i
		db.totalResidues += int64(s.Len())
		if s.Len() > db.maxLen {
			db.maxLen = s.Len()
		}
	}
	if sortByLength {
		sort.SliceStable(db.order, func(a, b int) bool {
			return seqs[db.order[a]].Len() < seqs[db.order[b]].Len()
		})
	}
	return db
}

// Restore rebuilds a database from already-preprocessed parts: sequences in
// caller order plus the processing-order permutation, skipping New's
// length sort. This is the O(n) construction path of the on-disk index
// loader — the permutation was computed once at build time by the exact
// sort New performs, so loading pays neither the parse nor the sort.
// key, when non-empty, records the content identity (see Key). order is
// not copied and must not be mutated.
func Restore(seqs []*sequence.Sequence, order []int, sorted bool, key string) (*Database, error) {
	if len(order) != len(seqs) {
		return nil, fmt.Errorf("seqdb: %d order entries for %d sequences", len(order), len(seqs))
	}
	db := &Database{seqs: seqs, order: order, sorted: sorted, key: key, alpha: alphaOf(seqs)}
	seen := make([]bool, len(seqs))
	for _, si := range order {
		if si < 0 || si >= len(seqs) || seen[si] {
			return nil, fmt.Errorf("seqdb: order is not a permutation of [0,%d)", len(seqs))
		}
		seen[si] = true
	}
	for _, s := range seqs {
		db.totalResidues += int64(s.Len())
		if s.Len() > db.maxLen {
			db.maxLen = s.Len()
		}
	}
	return db, nil
}

// alphaOf derives a sequence set's alphabet: the first sequence's, with an
// empty set defaulting to protein. Mixed-alphabet sets are a construction
// error caught here rather than as garbage scores in the kernels.
func alphaOf(seqs []*sequence.Sequence) *alphabet.Alphabet {
	if len(seqs) == 0 {
		return alphabet.Protein
	}
	a := seqs[0].Alphabet()
	for _, s := range seqs[1:] {
		if s.Alphabet() != a {
			panic(fmt.Sprintf("seqdb: mixed alphabets: %s holds %s residues in a %s database",
				s.ID, s.Alphabet().Name(), a.Name()))
		}
	}
	return a
}

// Len returns the number of sequences.
func (db *Database) Len() int { return len(db.seqs) }

// Alphabet returns the alphabet every member sequence is encoded under.
func (db *Database) Alphabet() *alphabet.Alphabet { return db.alpha }

// Key returns the database's content-identity fingerprint: non-empty for
// index-backed databases and shards derived from them, where equal keys
// guarantee identical sequences in identical order. Per-database caches
// (backend engines) use it to share pre-processing across distinct Database
// values loaded or split from the same on-disk index.
func (db *Database) Key() string { return db.key }

// Order returns a copy of the processing order: Order()[i] is the caller
// index of the i-th sequence processed. The index writer persists it so
// loading can restore the length sort without re-sorting.
func (db *Database) Order() []int { return append([]int(nil), db.order...) }

// Seq returns the sequence with the caller-visible index i (original
// order).
func (db *Database) Seq(i int) *sequence.Sequence { return db.seqs[i] }

// Sorted reports whether the processing order is length-sorted.
func (db *Database) Sorted() bool { return db.sorted }

// Residues returns the total residue count, the denominator scale of the
// GCUPS metric.
func (db *Database) Residues() int64 { return db.totalResidues }

// MaxLen returns the longest sequence length.
func (db *Database) MaxLen() int { return db.maxLen }

// MeanLen returns the mean sequence length.
func (db *Database) MeanLen() float64 {
	if len(db.seqs) == 0 {
		return 0
	}
	return float64(db.totalResidues) / float64(len(db.seqs))
}

// String summarises the database.
func (db *Database) String() string {
	return fmt.Sprintf("seqdb: %d sequences, %d residues, max length %d, sorted=%v",
		db.Len(), db.totalResidues, db.maxLen, db.sorted)
}

// LaneGroup packs up to Lanes database sequences for simultaneous
// alignment by the inter-task kernels. Residues are interleaved
// column-major: Interleaved[j*Lanes+l] is residue j of lane l, or the
// database alphabet's padding index (its Size) beyond lane l's true length.
type LaneGroup struct {
	// Lanes is the SIMD width the group was packed for.
	Lanes int
	// Width is the padded column count: the longest member's length.
	Width int
	// SeqIdx maps lanes to database sequence indices (original order);
	// -1 marks an empty padding lane.
	SeqIdx []int
	// Lens holds each lane's true length (0 for empty lanes).
	Lens []int
	// Interleaved is the Width x Lanes residue-index matrix.
	Interleaved []uint8
	// Residues is the sum of true lane lengths: the useful cells per
	// query residue this group contributes.
	Residues int64
}

// Groups packs the whole database processing order into lane groups of the
// given width (no long-sequence routing). With a length-sorted database,
// members of a group have nearly equal lengths and padding waste is
// minimal; unsorted packing is supported to reproduce the paper's
// motivation for pre-sorting.
func (db *Database) Groups(lanes int) []*LaneGroup {
	groups, _ := db.Partition(lanes, 0)
	return groups
}

// Partition splits the processing order into inter-task lane groups and a
// list of long sequences (length > longThreshold, database indices in
// caller order) destined for the intra-task kernel. longThreshold <= 0
// disables routing and packs everything into groups.
func (db *Database) Partition(lanes, longThreshold int) ([]*LaneGroup, []int) {
	if lanes < 1 {
		panic(fmt.Sprintf("seqdb: invalid lane count %d", lanes))
	}
	order := db.order
	var long []int
	if longThreshold > 0 {
		short := make([]int, 0, len(order))
		for _, idx := range order {
			if db.seqs[idx].Len() > longThreshold {
				long = append(long, idx)
			} else {
				short = append(short, idx)
			}
		}
		order = short
	}
	n := len(order)
	groups := make([]*LaneGroup, 0, (n+lanes-1)/lanes)
	for start := 0; start < n; start += lanes {
		end := start + lanes
		if end > n {
			end = n
		}
		g := &LaneGroup{
			Lanes:  lanes,
			SeqIdx: make([]int, lanes),
			Lens:   make([]int, lanes),
		}
		for l := 0; l < lanes; l++ {
			g.SeqIdx[l] = -1
		}
		for l, oi := start, 0; l < end; l, oi = l+1, oi+1 {
			idx := order[l]
			s := db.seqs[idx]
			g.SeqIdx[oi] = idx
			g.Lens[oi] = s.Len()
			g.Residues += int64(s.Len())
			if s.Len() > g.Width {
				g.Width = s.Len()
			}
		}
		g.Interleaved = make([]uint8, g.Width*lanes)
		pad := uint8(db.alpha.Size())
		for i := range g.Interleaved {
			g.Interleaved[i] = pad
		}
		for oi := 0; oi < end-start; oi++ {
			res := db.seqs[g.SeqIdx[oi]].Residues
			for j, c := range res {
				g.Interleaved[j*lanes+oi] = uint8(c)
			}
		}
		groups = append(groups, g)
	}
	return groups, long
}

// PaddedCells returns Width*Lanes, the cell updates per query residue the
// kernels actually perform for this group (including padding waste).
func (g *LaneGroup) PaddedCells() int64 { return int64(g.Width) * int64(g.Lanes) }

// PaddingEfficiency summarises packing quality over groups: the ratio of
// useful residues to padded residues (1.0 = no waste).
func PaddingEfficiency(groups []*LaneGroup) float64 {
	var useful, padded int64
	for _, g := range groups {
		useful += g.Residues
		padded += g.PaddedCells()
	}
	if padded == 0 {
		return 1
	}
	return float64(useful) / float64(padded)
}

// Split partitions the database into two databases holding approximately
// frac and 1-frac of the residues — the static workload distribution of
// Algorithm 2 (first return value plays the coprocessor's part). Sequences
// are dealt greedily in processing order so both halves inherit the full
// length distribution; each half preserves the parent's sort mode.
//
// firstIdx and secondIdx map each half's caller-visible sequence order
// back to the parent database's indices, so per-sequence results computed
// on a half can be merged into parent order without relying on pointer
// identity.
func (db *Database) Split(frac float64) (first, second *Database, firstIdx, secondIdx []int) {
	parts, idx := db.SplitN([]float64{frac, 1 - frac})
	return parts[0], parts[1], idx[0], idx[1]
}

// DealGreedy deals items with the given lengths (in input order) into
// len(fracs) parts holding approximately the requested residue fractions:
// each item goes to the eligible part furthest below its residue target —
// argmin res[i]/frac[i], compared by cross-multiplication, ties to the
// lowest index (for N=2 this reproduces the original two-way deal
// exactly). The fractions are ratios and need not sum to 1; non-positive
// fractions yield empty parts (all non-positive falls back to equal
// shares). The return value lists each part's input positions, and is the
// single deal used by SplitN (over materialised sequences) and
// SplitLengthsN (over bare lengths), so the shape-level planner can never
// diverge from the materialised split.
func DealGreedy(lengths []int, fracs []float64) [][]int {
	n := len(fracs)
	if n == 0 {
		return nil
	}
	f := make([]float64, n)
	any := false
	for i, v := range fracs {
		if v > 0 {
			f[i] = v
			any = true
		}
	}
	if !any {
		for i := range f {
			f[i] = 1
		}
	}
	parts := make([][]int, n)
	res := make([]int64, n)
	for pos, l := range lengths {
		best := -1
		for i := 0; i < n; i++ {
			if f[i] <= 0 {
				continue
			}
			if best < 0 || float64(res[i])*f[best] < float64(res[best])*f[i] {
				best = i
			}
		}
		parts[best] = append(parts[best], pos)
		res[best] += int64(l)
	}
	return parts
}

// SplitN generalises Split to N shards: fracs[i] is the target residue
// fraction of shard i. Sequences are dealt greedily in processing order
// (see DealGreedy), so every shard inherits the full length distribution —
// the static workload distribution of Algorithm 2 extended to an N-device
// cluster.
//
// The second return value maps shard-local sequence indices back to the
// parent: parent index = idx[i][j] for shard i's j-th sequence.
func (db *Database) SplitN(fracs []float64) ([]*Database, [][]int) {
	parts := DealGreedy(db.OrderLengths(), fracs)
	seqs := make([][]*sequence.Sequence, len(fracs))
	idx := make([][]int, len(fracs))
	for i, positions := range parts {
		for _, p := range positions {
			si := db.order[p]
			seqs[i] = append(seqs[i], db.seqs[si])
			idx[i] = append(idx[i], si)
		}
	}
	out := make([]*Database, len(fracs))
	for i := range out {
		out[i] = New(seqs[i], db.sorted)
		if db.key != "" {
			// The deal is deterministic in (key, fracs), so the child key
			// identifies the shard's exact content — a rebuilt split of the
			// same index reuses the shard's cached engines. %x encodes each
			// fraction exactly (hex float), so fracs that differ anywhere in
			// their 64 bits can never collide onto one shard key.
			out[i].key = fmt.Sprintf("%s|split%x#%d", db.key, fracs, i)
		}
	}
	return out, idx
}

// Select builds a database over the parent sequences at the given caller
// indices, in the given order, with an explicit content key. It is the
// coordinator-side mirror of a shard cut: replaying a shard manifest's
// parent-index list through Select (with the shard's checksum key)
// reconstructs a database whose caller order, processing order and key all
// match the shard index a remote node loaded from disk, so per-sequence
// results computed remotely merge back into parent order exactly. The
// sequences are shared, not copied.
func (db *Database) Select(indices []int, key string) (*Database, error) {
	seqs := make([]*sequence.Sequence, len(indices))
	for i, si := range indices {
		if si < 0 || si >= len(db.seqs) {
			return nil, fmt.Errorf("seqdb: select index %d outside [0,%d)", si, len(db.seqs))
		}
		seqs[i] = db.seqs[si]
	}
	out := New(seqs, db.sorted)
	out.key = key
	return out, nil
}

// OrderSlice returns a database over the window [start, end) of the
// processing order, plus the parent indices (caller order) of its members —
// the building block of the cluster dispatcher's device-level chunk queue.
func (db *Database) OrderSlice(start, end int) (*Database, []int) {
	if start < 0 {
		start = 0
	}
	if end > len(db.order) {
		end = len(db.order)
	}
	if end < start {
		end = start
	}
	seqs := make([]*sequence.Sequence, 0, end-start)
	idx := make([]int, 0, end-start)
	for _, si := range db.order[start:end] {
		seqs = append(seqs, db.seqs[si])
		idx = append(idx, si)
	}
	out := New(seqs, db.sorted)
	if db.key != "" {
		out.key = fmt.Sprintf("%s|win%d-%d", db.key, start, end)
	}
	return out, idx
}

// OrderLengths returns the sequence lengths in processing order.
func (db *Database) OrderLengths() []int {
	out := make([]int, len(db.order))
	for i, si := range db.order {
		out[i] = db.seqs[si].Len()
	}
	return out
}
