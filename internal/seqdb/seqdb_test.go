package seqdb

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"heterosw/internal/device"
	"heterosw/internal/profile"
	"heterosw/internal/sequence"
)

func makeSeqs(rng *rand.Rand, n, maxLen int) []*sequence.Sequence {
	letters := "ARNDCQEGHILKMFPSTWYV"
	out := make([]*sequence.Sequence, n)
	for i := range out {
		L := rng.Intn(maxLen) + 1
		var sb strings.Builder
		for j := 0; j < L; j++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		out[i] = sequence.FromString(string(rune('A'+i%26))+"seq", sb.String())
	}
	return out
}

func TestNewStats(t *testing.T) {
	seqs := []*sequence.Sequence{
		sequence.FromString("a", "ARND"),
		sequence.FromString("b", "AR"),
		sequence.FromString("c", "ARNDCQ"),
	}
	db := New(seqs, true)
	if db.Len() != 3 || db.Residues() != 12 || db.MaxLen() != 6 {
		t.Fatalf("stats wrong: %s", db)
	}
	if db.MeanLen() != 4 {
		t.Fatalf("MeanLen = %v", db.MeanLen())
	}
	if !db.Sorted() {
		t.Fatal("Sorted() = false")
	}
}

func TestSortOrderShortestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	seqs := makeSeqs(rng, 100, 50)
	db := New(seqs, true)
	groups := db.Groups(1)
	prev := 0
	for _, g := range groups {
		if g.Lens[0] < prev {
			t.Fatalf("order not ascending: %d after %d", g.Lens[0], prev)
		}
		prev = g.Lens[0]
	}
}

func TestUnsortedKeepsOrder(t *testing.T) {
	seqs := []*sequence.Sequence{
		sequence.FromString("a", "AR"),
		sequence.FromString("b", "ARNDCQ"),
	}
	db := New(seqs, false)
	groups := db.Groups(1)
	if groups[0].SeqIdx[0] != 0 || groups[1].SeqIdx[0] != 1 {
		t.Fatal("unsorted database reordered sequences")
	}
}

func TestGroupsInterleaving(t *testing.T) {
	seqs := []*sequence.Sequence{
		sequence.FromString("a", "ARND"),
		sequence.FromString("b", "WY"),
		sequence.FromString("c", "CCC"),
	}
	db := New(seqs, true) // ascending order: b(2), c(3), a(4)
	groups := db.Groups(2)
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	g := groups[0]
	if g.Width != 3 || g.Lanes != 2 {
		t.Fatalf("group shape %d x %d", g.Width, g.Lanes)
	}
	if g.SeqIdx[0] != 1 || g.SeqIdx[1] != 2 {
		t.Fatalf("group members %v", g.SeqIdx)
	}
	// Column 0: residues W (from b) and C (from c); column 2: pad and C.
	b0 := seqs[1].Residues[0]
	c0 := seqs[2].Residues[0]
	if g.Interleaved[0] != uint8(b0) || g.Interleaved[1] != uint8(c0) {
		t.Fatalf("column 0 = %v", g.Interleaved[:2])
	}
	if g.Interleaved[2*2+0] != profile.PadIndex {
		t.Fatalf("lane 0 tail not padded: %d", g.Interleaved[2*2+0])
	}
	if g.Residues != 5 {
		t.Fatalf("group residues %d", g.Residues)
	}
	// Second group: single member a, one empty lane.
	g2 := groups[1]
	if g2.SeqIdx[0] != 0 || g2.SeqIdx[1] != -1 || g2.Lens[1] != 0 {
		t.Fatalf("tail group %v / %v", g2.SeqIdx, g2.Lens)
	}
	for j := 0; j < g2.Width; j++ {
		if g2.Interleaved[j*2+1] != profile.PadIndex {
			t.Fatalf("empty lane has residue at column %d", j)
		}
	}
}

func TestGroupsCoverDatabaseExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	seqs := makeSeqs(rng, 137, 80)
	db := New(seqs, true)
	for _, lanes := range []int{1, 4, 16, 32} {
		groups := db.Groups(lanes)
		seen := make(map[int]int)
		var residues int64
		for _, g := range groups {
			for l, idx := range g.SeqIdx {
				if idx == -1 {
					if g.Lens[l] != 0 {
						t.Fatalf("empty lane with length %d", g.Lens[l])
					}
					continue
				}
				seen[idx]++
				if g.Lens[l] != seqs[idx].Len() {
					t.Fatalf("lane length mismatch for seq %d", idx)
				}
			}
			residues += g.Residues
		}
		if len(seen) != len(seqs) {
			t.Fatalf("lanes=%d: %d distinct sequences, want %d", lanes, len(seen), len(seqs))
		}
		for idx, c := range seen {
			if c != 1 {
				t.Fatalf("sequence %d packed %d times", idx, c)
			}
		}
		if residues != db.Residues() {
			t.Fatalf("lanes=%d: group residues %d != %d", lanes, residues, db.Residues())
		}
	}
}

func TestSortedPackingBeatsUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	seqs := makeSeqs(rng, 512, 400)
	sorted := PaddingEfficiency(New(seqs, true).Groups(16))
	unsorted := PaddingEfficiency(New(seqs, false).Groups(16))
	if sorted <= unsorted {
		t.Fatalf("sorted efficiency %.3f <= unsorted %.3f", sorted, unsorted)
	}
	if sorted < 0.9 {
		t.Fatalf("sorted packing efficiency %.3f unexpectedly poor", sorted)
	}
}

func TestSplitFractions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	seqs := makeSeqs(rng, 400, 120)
	db := New(seqs, true)
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.55, 0.9} {
		first, second, firstIdx, secondIdx := db.Split(frac)
		if first.Len()+second.Len() != db.Len() {
			t.Fatalf("frac %.2f: split loses sequences", frac)
		}
		if first.Residues()+second.Residues() != db.Residues() {
			t.Fatalf("frac %.2f: split loses residues", frac)
		}
		got := float64(first.Residues()) / float64(db.Residues())
		if got < frac-0.03 || got > frac+0.03 {
			t.Fatalf("frac %.2f: first half has %.3f of residues", frac, got)
		}
		for j, pi := range firstIdx {
			if first.Seq(j) != db.Seq(pi) {
				t.Fatalf("frac %.2f: firstIdx[%d]=%d maps to the wrong sequence", frac, j, pi)
			}
		}
		for j, pi := range secondIdx {
			if second.Seq(j) != db.Seq(pi) {
				t.Fatalf("frac %.2f: secondIdx[%d]=%d maps to the wrong sequence", frac, j, pi)
			}
		}
	}
}

func TestSplitEdges(t *testing.T) {
	db := New(makeSeqs(rand.New(rand.NewSource(24)), 10, 30), true)
	first, second, _, _ := db.Split(0)
	if first.Len() != 0 || second.Len() != 10 {
		t.Fatalf("Split(0) = %d/%d", first.Len(), second.Len())
	}
	first, second, _, _ = db.Split(1)
	if first.Len() != 10 || second.Len() != 0 {
		t.Fatalf("Split(1) = %d/%d", first.Len(), second.Len())
	}
}

// Property: SplitN partitions the index space exactly — every parent index
// appears in exactly one shard mapping, mappings agree with shard content,
// and realised fractions track the requested ones.
func TestSplitNMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	db := New(makeSeqs(rng, 600, 150), true)
	fracs := []float64{0.2, 0.5, 0.3}
	shards, idx := db.SplitN(fracs)
	if len(shards) != 3 || len(idx) != 3 {
		t.Fatalf("SplitN arity: %d shards, %d mappings", len(shards), len(idx))
	}
	seen := make(map[int]int)
	var total int64
	for i, sh := range shards {
		if sh.Len() != len(idx[i]) {
			t.Fatalf("shard %d: %d sequences, %d mapped indices", i, sh.Len(), len(idx[i]))
		}
		for j, pi := range idx[i] {
			if sh.Seq(j) != db.Seq(pi) {
				t.Fatalf("shard %d: idx[%d]=%d maps to the wrong sequence", i, j, pi)
			}
			seen[pi]++
		}
		total += sh.Residues()
		got := float64(sh.Residues()) / float64(db.Residues())
		if got < fracs[i]-0.05 || got > fracs[i]+0.05 {
			t.Fatalf("shard %d holds %.3f of residues, want ~%.2f", i, got, fracs[i])
		}
	}
	if total != db.Residues() {
		t.Fatalf("SplitN loses residues: %d != %d", total, db.Residues())
	}
	if len(seen) != db.Len() {
		t.Fatalf("%d distinct parent indices, want %d", len(seen), db.Len())
	}
	for pi, c := range seen {
		if c != 1 {
			t.Fatalf("parent index %d appears %d times", pi, c)
		}
	}
}

// SplitN with a two-element fraction vector must reproduce Split exactly:
// the N-way greedy deal generalises, it does not replace, the two-way one.
func TestSplitNMatchesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	db := New(makeSeqs(rng, 300, 90), true)
	for _, frac := range []float64{0, 0.25, 0.55, 1} {
		a, b, ai, bi := db.Split(frac)
		shards, idx := db.SplitN([]float64{frac, 1 - frac})
		if a.Len() != shards[0].Len() || b.Len() != shards[1].Len() {
			t.Fatalf("frac %.2f: Split %d/%d != SplitN %d/%d",
				frac, a.Len(), b.Len(), shards[0].Len(), shards[1].Len())
		}
		for j := range ai {
			if ai[j] != idx[0][j] {
				t.Fatalf("frac %.2f: first mapping diverges at %d", frac, j)
			}
		}
		for j := range bi {
			if bi[j] != idx[1][j] {
				t.Fatalf("frac %.2f: second mapping diverges at %d", frac, j)
			}
		}
	}
}

func TestDealGreedyEdges(t *testing.T) {
	if got := DealGreedy([]int{5, 7}, nil); got != nil {
		t.Fatalf("empty fracs: %v", got)
	}
	parts := DealGreedy(nil, []float64{0.5, 0.5})
	if len(parts) != 2 || parts[0] != nil || parts[1] != nil {
		t.Fatalf("empty lengths: %v", parts)
	}
	parts = DealGreedy([]int{3, 3, 3}, []float64{-1, 0})
	if len(parts[0])+len(parts[1]) != 3 {
		t.Fatalf("all-non-positive fracs lose items: %v", parts)
	}
}

func TestOrderSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	db := New(makeSeqs(rng, 100, 60), true)
	lens := db.OrderLengths()
	if !sort.IntsAreSorted(lens) {
		t.Fatal("processing order not length-sorted")
	}
	seen := make(map[int]bool)
	for start := 0; start < db.Len(); start += 33 {
		end := start + 33
		chunk, idx := db.OrderSlice(start, end)
		if end > db.Len() {
			end = db.Len()
		}
		if chunk.Len() != end-start {
			t.Fatalf("window [%d,%d): %d sequences", start, end, chunk.Len())
		}
		for j, pi := range idx {
			if chunk.Seq(j) != db.Seq(pi) {
				t.Fatalf("window [%d,%d): idx[%d]=%d maps wrong", start, end, j, pi)
			}
			if seen[pi] {
				t.Fatalf("parent index %d appears in two windows", pi)
			}
			seen[pi] = true
		}
	}
	if len(seen) != db.Len() {
		t.Fatalf("windows cover %d of %d sequences", len(seen), db.Len())
	}
	empty, idx := db.OrderSlice(5, 5)
	if empty.Len() != 0 || len(idx) != 0 {
		t.Fatal("empty window not empty")
	}
}

// Property: for any lane width and any split fraction, no sequence is lost
// or duplicated across the split.
func TestSplitPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	f := func(n uint8, fr uint8) bool {
		seqs := makeSeqs(rng, int(n%60)+1, 50)
		db := New(seqs, true)
		frac := float64(fr%101) / 100
		a, b, _, _ := db.Split(frac)
		ids := make(map[*sequence.Sequence]int)
		for i := 0; i < a.Len(); i++ {
			ids[a.Seq(i)]++
		}
		for i := 0; i < b.Len(); i++ {
			ids[b.Seq(i)]++
		}
		if len(ids) != len(seqs) {
			return false
		}
		for _, c := range ids {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGroupsPanicsOnBadLanes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Groups(0) did not panic")
		}
	}()
	New(nil, true).Groups(0)
}

// PackShapes must reproduce the exact geometry Partition produces on a
// materialised database: the shape-only simulation path and the functional
// engine path must never diverge.
func TestPackShapesMatchesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	seqs := makeSeqs(rng, 300, 500)
	// Give a few sequences lengths beyond a routing threshold.
	seqs = append(seqs, sequence.FromString("long1", strings.Repeat("A", 700)))
	seqs = append(seqs, sequence.FromString("long2", strings.Repeat("W", 900)))
	db := New(seqs, true)
	lengths := make([]int, db.Len())
	for i := range lengths {
		lengths[i] = db.Seq(i).Len()
	}
	for _, lanes := range []int{1, 8, 16, 32} {
		for _, thr := range []int{0, 600} {
			groups, long := db.Partition(lanes, thr)
			shapes := PackShapes(lengths, lanes, true, thr)
			var fromGroups []device.Shape
			for _, idx := range long {
				l := db.Seq(idx).Len()
				fromGroups = append(fromGroups, device.Shape{Width: l, Lanes: 1, Residues: int64(l), Intra: true})
			}
			for _, g := range groups {
				fromGroups = append(fromGroups, device.Shape{Width: g.Width, Lanes: g.Lanes, Residues: g.Residues})
			}
			if len(shapes) != len(fromGroups) {
				t.Fatalf("lanes=%d thr=%d: %d shapes vs %d group shapes", lanes, thr, len(shapes), len(fromGroups))
			}
			// Same multiset: compare sorted by (Width, Residues).
			key := func(s device.Shape) [3]int64 {
				intra := int64(0)
				if s.Intra {
					intra = 1
				}
				return [3]int64{int64(s.Width), s.Residues, intra}
			}
			sortShapes := func(v []device.Shape) {
				sort.Slice(v, func(a, b int) bool {
					ka, kb := key(v[a]), key(v[b])
					for i := range ka {
						if ka[i] != kb[i] {
							return ka[i] < kb[i]
						}
					}
					return false
				})
			}
			sortShapes(shapes)
			sortShapes(fromGroups)
			for i := range shapes {
				if shapes[i] != fromGroups[i] {
					t.Fatalf("lanes=%d thr=%d: shape %d differs: %+v vs %+v",
						lanes, thr, i, shapes[i], fromGroups[i])
				}
			}
		}
	}
}

// TestEmptyDatabase pins the empty-database edge cases the index fuzz
// seeds exercise: a nil sequence slice is a valid input, MeanLen must not
// divide by zero, and every derived view stays well-defined.
func TestEmptyDatabase(t *testing.T) {
	for _, db := range []*Database{New(nil, true), New([]*sequence.Sequence{}, false)} {
		if db.Len() != 0 || db.Residues() != 0 || db.MaxLen() != 0 {
			t.Fatalf("empty database stats: %s", db)
		}
		if got := db.MeanLen(); got != 0 {
			t.Fatalf("MeanLen of empty database = %v, want 0 (no division by zero)", got)
		}
		groups, long := db.Partition(16, 3072)
		if len(groups) != 0 || len(long) != 0 {
			t.Fatalf("empty partition: %d groups, %d long", len(groups), len(long))
		}
		if got := len(db.OrderLengths()); got != 0 {
			t.Fatalf("OrderLengths length %d", got)
		}
		parts, idx := db.SplitN([]float64{0.5, 0.5})
		if len(parts) != 2 || parts[0].Len()+parts[1].Len() != 0 || len(idx[0])+len(idx[1]) != 0 {
			t.Fatal("empty SplitN misbehaved")
		}
		win, widx := db.OrderSlice(0, 5)
		if win.Len() != 0 || len(widx) != 0 {
			t.Fatal("empty OrderSlice misbehaved")
		}
	}
}

// TestRestore pins the O(n) construction path the index loader uses: the
// stored permutation reproduces exactly what New computes, and invalid
// permutations are rejected.
func TestRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seqs := makeSeqs(rng, 60, 80)
	want := New(seqs, true)
	got, err := Restore(seqs, want.Order(), true, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != "k" || !got.Sorted() {
		t.Fatalf("Key/Sorted = %q/%v", got.Key(), got.Sorted())
	}
	if got.Residues() != want.Residues() || got.MaxLen() != want.MaxLen() {
		t.Fatalf("stats %v, want %v", got, want)
	}
	wantOrder, gotOrder := want.OrderLengths(), got.OrderLengths()
	for i := range wantOrder {
		if wantOrder[i] != gotOrder[i] {
			t.Fatalf("order lengths diverge at %d", i)
		}
	}
	if _, err := Restore(seqs, want.Order()[:10], true, ""); err == nil {
		t.Fatal("short order accepted")
	}
	bad := want.Order()
	bad[0] = bad[1] // repeated entry: not a permutation
	if _, err := Restore(seqs, bad, true, ""); err == nil {
		t.Fatal("non-permutation accepted")
	}
	bad[0] = len(seqs) // out of range
	if _, err := Restore(seqs, bad, true, ""); err == nil {
		t.Fatal("out-of-range order accepted")
	}
	if empty, err := Restore(nil, nil, true, ""); err != nil || empty.Len() != 0 {
		t.Fatalf("empty Restore: %v, %v", empty, err)
	}
}

// TestKeyPropagation pins that derived databases inherit identity only
// from keyed parents: ad-hoc databases and their children stay keyless.
func TestKeyPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	db := New(makeSeqs(rng, 30, 60), true)
	if db.Key() != "" {
		t.Fatalf("ad-hoc database has key %q", db.Key())
	}
	parts, _ := db.SplitN([]float64{0.5, 0.5})
	win, _ := db.OrderSlice(0, 10)
	if parts[0].Key() != "" || win.Key() != "" {
		t.Fatal("children of a keyless database gained keys")
	}
}
