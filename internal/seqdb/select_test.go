package seqdb

import (
	"math/rand"
	"testing"
)

// TestSelectMirrorsSplitN pins the property the distributed coordinator
// relies on: replaying a shard's parent-index list through Select (with
// the shard's key) reconstructs a database whose caller order, processing
// order and key match the shard SplitN produced — so remote per-sequence
// results merge back into parent order exactly.
func TestSelectMirrorsSplitN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parent := New(makeSeqs(rng, 60, 200), true)
	shards, idx := parent.SplitN([]float64{1, 1, 1})
	for i, shard := range shards {
		got, err := parent.Select(idx[i], shard.Key())
		if err != nil {
			t.Fatalf("shard %d: Select: %v", i, err)
		}
		if got.Key() != shard.Key() {
			t.Fatalf("shard %d: key %q != %q", i, got.Key(), shard.Key())
		}
		if got.Len() != shard.Len() || got.Residues() != shard.Residues() {
			t.Fatalf("shard %d: stats %d/%d != %d/%d", i,
				got.Len(), got.Residues(), shard.Len(), shard.Residues())
		}
		for j := 0; j < shard.Len(); j++ {
			if got.Seq(j) != shard.Seq(j) {
				t.Fatalf("shard %d: caller-order seq %d differs", i, j)
			}
			// Sequences are shared with the parent, not copied.
			if got.Seq(j) != parent.Seq(idx[i][j]) {
				t.Fatalf("shard %d: seq %d is not the parent's object", i, j)
			}
		}
		gi, si := got.OrderLengths(), shard.OrderLengths()
		for j := range gi {
			if gi[j] != si[j] {
				t.Fatalf("shard %d: processing order diverges at %d", i, j)
			}
		}
	}
}

func TestSelectBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	parent := New(makeSeqs(rng, 4, 50), true)
	if _, err := parent.Select([]int{0, 4}, "k"); err == nil {
		t.Fatal("index == Len() must be rejected")
	}
	if _, err := parent.Select([]int{-1}, "k"); err == nil {
		t.Fatal("negative index must be rejected")
	}
	got, err := parent.Select(nil, "empty")
	if err != nil || got.Len() != 0 || got.Key() != "empty" {
		t.Fatalf("empty select: %v, %d seqs, key %q", err, got.Len(), got.Key())
	}
}
