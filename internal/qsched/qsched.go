// Package qsched implements the concurrent micro-batching query scheduler
// behind the cluster's streaming and serving paths.
//
// The PR-1 streaming pipeline ran one query at a time through a single
// worker goroutine — the opposite of a serving path. SWAPHI (Liu &
// Schmidt, 2014) shows that multi-query batching is where coprocessor-class
// search throughput comes from: per-batch pre-processing amortises, and
// several batches in flight keep every device busy. qsched packages that
// shape generically:
//
//   - Submit enqueues a query and returns a Ticket (a future) immediately;
//   - an intake collector coalesces queued queries into adaptive
//     micro-batches: dispatch is immediate while the scheduler is idle, but
//     once batches are in flight the collector waits a short window so the
//     backlog coalesces into fuller batches (up to MaxBatch);
//   - up to MaxInFlight batches run concurrently through the caller's
//     batch function;
//   - identical in-flight queries (same cache key) share one Ticket, and
//     completed results land in an LRU cache so repeated queries are free;
//   - Close drains gracefully, CloseNow cancels the scheduler context so
//     queued work is dropped and in-flight batches abort at their next
//     query boundary — an abandoned consumer never strands a worker.
//
// The scheduler spawns no permanent goroutines: the collector starts on
// demand and exits as soon as the intake queue is empty.
package qsched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by Submit and Do after Close or CloseNow.
var ErrClosed = errors.New("qsched: scheduler closed")

// errClosedNow resolves tickets stranded by CloseNow: queued jobs that
// never ran and in-flight batches aborted by the scheduler context. It
// wraps both ErrClosed (so serving layers classify the failure as a
// retryable shutdown, never a generic server error) and context.Canceled
// (the mechanism that aborted the work, which callers select on).
var errClosedNow = fmt.Errorf("%w (%w)", ErrClosed, context.Canceled)

// Options tunes a Scheduler. The zero value selects the defaults noted on
// each field.
type Options struct {
	// MaxBatch caps the queries coalesced into one micro-batch
	// (DefaultMaxBatch when 0).
	MaxBatch int
	// Window is how long the collector waits for more arrivals before
	// dispatching a partial batch while other batches are in flight
	// (DefaultWindow when 0, negative disables waiting). While the
	// scheduler is idle dispatch is always immediate, so the window costs
	// no latency on an unloaded system.
	Window time.Duration
	// MaxInFlight caps concurrently running micro-batches
	// (DefaultMaxInFlight when 0).
	MaxInFlight int
}

// Default knob values.
const (
	DefaultMaxBatch    = 32
	DefaultWindow      = 500 * time.Microsecond
	DefaultMaxInFlight = 4
)

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.Window == 0 {
		o.Window = DefaultWindow
	} else if o.Window < 0 {
		o.Window = 0
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = DefaultMaxInFlight
	}
	return o
}

// Ticket is the future of one submitted query. Multiple submissions of the
// same cache key may share one Ticket; treat the resolved value as
// read-only.
type Ticket[R any] struct {
	done   chan struct{}
	val    R
	err    error
	cached bool
}

func newTicket[R any]() *Ticket[R] { return &Ticket[R]{done: make(chan struct{})} }

func resolvedTicket[R any](v R, cached bool) *Ticket[R] {
	t := newTicket[R]()
	t.val = v
	t.cached = cached
	close(t.done)
	return t
}

// Done is closed once the ticket has resolved.
func (t *Ticket[R]) Done() <-chan struct{} { return t.done }

// Wait blocks until the ticket resolves or ctx is cancelled.
func (t *Ticket[R]) Wait(ctx context.Context) (R, error) {
	select {
	case <-t.done:
		return t.val, t.err
	case <-ctx.Done():
		var zero R
		return zero, ctx.Err()
	}
}

// Cached reports whether the ticket was resolved straight from the cache
// at Submit time, without scheduling any work. (Submissions that joined an
// identical in-flight query share that query's ticket and report false;
// they are counted in Stats.Joined.) Valid only after Done.
func (t *Ticket[R]) Cached() bool { return t.cached }

// Stats is a point-in-time snapshot of scheduler activity.
type Stats struct {
	// Submitted counts Submit calls (including cache hits and joins).
	Submitted int64
	// Batches counts dispatched micro-batches; Batched the queries they
	// carried. Batched/Batches is the realised mean batch size.
	Batches int64
	Batched int64
	// Joined counts submissions that attached to an identical in-flight
	// query instead of queueing their own.
	Joined int64
	// CacheHits counts submissions answered directly from the cache.
	CacheHits int64
}

type job[Q, R any] struct {
	q      Q
	t      *Ticket[R]
	key    string
	hasKey bool
}

// Scheduler coalesces submitted queries into micro-batches and runs them
// through a caller-supplied batch function, up to MaxInFlight batches
// concurrently. It is safe for concurrent use.
type Scheduler[Q, R any] struct {
	run   func(ctx context.Context, batch []Q) ([]R, error)
	key   func(q Q) (string, bool)
	cache *Cache[R]
	opt   Options

	ctx    context.Context
	cancel context.CancelFunc
	slots  chan struct{} // counting semaphore: len == batches in flight

	mu         sync.Mutex
	queue      []*job[Q, R]          //sw:guardedBy(mu)
	pending    map[string]*Ticket[R] //sw:guardedBy(mu)
	collecting bool                  //sw:guardedBy(mu)
	closed     bool                  //sw:guardedBy(mu)
	stats      Stats                 //sw:guardedBy(mu)
}

// New builds a scheduler over a batch function. key derives the cache /
// dedup key of a query (nil, or a false second return, disables caching
// for that query); cache may be nil (no caching) or shared between
// schedulers. The scheduler's context is its own lifetime root — it is
// cancelled by Close/CloseNow, not by any request — while per-request
// cancellation rides on the context each Ticket.Wait receives.
//
//sw:ctxroot
func New[Q, R any](
	run func(ctx context.Context, batch []Q) ([]R, error),
	key func(q Q) (string, bool),
	cache *Cache[R],
	opt Options,
) *Scheduler[Q, R] {
	if run == nil {
		panic("qsched: nil run function")
	}
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Scheduler[Q, R]{
		run:     run,
		key:     key,
		cache:   cache,
		opt:     opt,
		ctx:     ctx,
		cancel:  cancel,
		slots:   make(chan struct{}, opt.MaxInFlight),
		pending: make(map[string]*Ticket[R]),
	}
}

// Stats returns a snapshot of scheduler activity.
func (s *Scheduler[Q, R]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Submit enqueues a query and returns its Ticket immediately. Cached
// results resolve the ticket synchronously; an identical in-flight query
// shares its ticket. Submit never blocks on query execution.
func (s *Scheduler[Q, R]) Submit(q Q) (*Ticket[R], error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.stats.Submitted++
	var key string
	var hasKey bool
	if s.key != nil {
		key, hasKey = s.key(q)
	}
	if hasKey {
		if s.cache != nil {
			if v, ok := s.cache.Get(key); ok {
				s.stats.CacheHits++
				return resolvedTicket(v, true), nil
			}
		}
		if t, ok := s.pending[key]; ok {
			s.stats.Joined++
			return t, nil
		}
	}
	t := newTicket[R]()
	if hasKey {
		s.pending[key] = t
	}
	s.queue = append(s.queue, &job[Q, R]{q: q, t: t, key: key, hasKey: hasKey})
	if !s.collecting {
		s.collecting = true
		go s.collect()
	}
	return t, nil
}

// Do submits a query and waits for its result, honouring ctx for the wait
// (cancelling ctx abandons the wait, not the computation: the result still
// lands in the cache for the next asker).
func (s *Scheduler[Q, R]) Do(ctx context.Context, q Q) (R, error) {
	t, err := s.Submit(q)
	if err != nil {
		var zero R
		return zero, err
	}
	return t.Wait(ctx)
}

// Close stops intake: queued and in-flight queries still complete, further
// Submit calls fail. Close is idempotent and never blocks on query
// execution.
func (s *Scheduler[Q, R]) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// CloseNow stops intake and cancels the scheduler context: queued queries
// resolve with the cancellation error without running, and in-flight
// batches abort at their next query boundary. Idempotent.
func (s *Scheduler[Q, R]) CloseNow() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.failQueued(errClosedNow)
}

// failQueued resolves every queued (not yet dispatched) job with err.
func (s *Scheduler[Q, R]) failQueued(err error) {
	s.mu.Lock()
	queued := s.queue
	s.queue = nil
	s.mu.Unlock()
	var zero R
	for _, j := range queued {
		s.resolve(j, zero, err, false)
	}
}

// collect is the intake loop: it runs only while the queue is non-empty,
// coalescing jobs into micro-batches and dispatching them as in-flight
// slots free up.
func (s *Scheduler[Q, R]) collect() {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.collecting = false
			s.mu.Unlock()
			return
		}
		// Adaptive coalescing: while batches are in flight and this one is
		// not yet full, wait a short window so the backlog coalesces into
		// fewer, fuller batches. When the scheduler is idle, dispatch
		// immediately — the window never delays an unloaded system.
		if s.opt.Window > 0 && len(s.queue) < s.opt.MaxBatch && len(s.slots) > 0 && !s.closed {
			s.mu.Unlock()
			select {
			case <-time.After(s.opt.Window):
			case <-s.ctx.Done():
				s.failQueued(errClosedNow)
				s.mu.Lock()
				s.collecting = false
				s.mu.Unlock()
				return
			}
			s.mu.Lock()
		}
		n := len(s.queue)
		if n == 0 {
			// CloseNow drained the queue while we slept in the window.
			s.collecting = false
			s.mu.Unlock()
			return
		}
		if n > s.opt.MaxBatch {
			n = s.opt.MaxBatch
		}
		batch := make([]*job[Q, R], n)
		copy(batch, s.queue)
		s.queue = s.queue[n:]
		s.stats.Batches++
		s.stats.Batched += int64(n)
		s.mu.Unlock()

		select {
		case s.slots <- struct{}{}:
		case <-s.ctx.Done():
			err := errClosedNow
			var zero R
			for _, j := range batch {
				s.resolve(j, zero, err, false)
			}
			s.failQueued(err)
			s.mu.Lock()
			s.collecting = false
			s.mu.Unlock()
			return
		}
		go s.runBatch(batch)
	}
}

// runBatch executes one micro-batch and resolves its tickets. A batch-wide
// failure falls back to per-query execution so one poisoned query cannot
// fail its batch neighbours.
func (s *Scheduler[Q, R]) runBatch(batch []*job[Q, R]) {
	defer func() { <-s.slots }()
	qs := make([]Q, len(batch))
	for i, j := range batch {
		qs[i] = j.q
	}
	rs, err := s.run(s.ctx, qs)
	if err == nil && len(rs) != len(batch) {
		err = fmt.Errorf("qsched: batch function returned %d results for %d queries", len(rs), len(batch))
	}
	if err != nil && len(batch) > 1 && s.ctx.Err() == nil {
		// Failure isolation: retry queries individually.
		var zero R
		for _, j := range batch {
			r, jerr := s.run(s.ctx, []Q{j.q})
			switch {
			case jerr != nil:
				s.resolve(j, zero, jerr, false)
			case len(r) != 1:
				s.resolve(j, zero, fmt.Errorf("qsched: batch function returned %d results for 1 query", len(r)), false)
			default:
				s.resolve(j, r[0], nil, true)
			}
		}
		return
	}
	if err != nil && s.ctx.Err() != nil {
		// The batch died because CloseNow cancelled the scheduler context,
		// not on its own merits: resolve with the shutdown error so waiters
		// see a retryable closed scheduler rather than a bare cancellation.
		err = errClosedNow
	}
	var zero R
	for i, j := range batch {
		if err != nil {
			s.resolve(j, zero, err, false)
		} else {
			s.resolve(j, rs[i], nil, true)
		}
	}
}

// resolve completes one job's ticket, retires its pending-key entry and,
// on success, caches the value.
func (s *Scheduler[Q, R]) resolve(j *job[Q, R], v R, err error, cacheable bool) {
	if j.hasKey {
		s.mu.Lock()
		if s.pending[j.key] == j.t {
			delete(s.pending, j.key)
		}
		s.mu.Unlock()
		if err == nil && cacheable && s.cache != nil {
			s.cache.Add(j.key, v)
		}
	}
	j.t.val = v
	j.t.err = err
	close(j.t.done)
}
