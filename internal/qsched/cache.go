package qsched

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU result cache. One Cache may back several
// Schedulers (a cluster shares one cache between its serving scheduler and
// every stream), so repeated queries are free no matter which path they
// arrive on. Values are shared on hit: treat them as read-only.
type Cache[R any] struct {
	mu  sync.Mutex
	max int
	// front = most recent
	//sw:guardedBy(mu)
	ll *list.List
	//sw:guardedBy(mu)
	byKey map[string]*list.Element
	//sw:guardedBy(mu)
	hits int64
	//sw:guardedBy(mu)
	misses int64
}

type cacheEntry[R any] struct {
	key string
	val R
}

// NewCache builds an LRU cache holding up to max entries. max <= 0 returns
// nil, which every user treats as "caching disabled".
func NewCache[R any](max int) *Cache[R] {
	if max <= 0 {
		return nil
	}
	return &Cache[R]{
		max:   max,
		ll:    list.New(),
		byKey: make(map[string]*list.Element, max),
	}
}

// Get returns the cached value for key, refreshing its recency.
func (c *Cache[R]) Get(key string) (R, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry[R]).val, true
	}
	c.misses++
	var zero R
	return zero, false
}

// Add inserts (or refreshes) a value, evicting the least recently used
// entry when full.
func (c *Cache[R]) Add(key string, v R) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry[R]).val = v
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.byKey, oldest.Value.(*cacheEntry[R]).key)
		}
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry[R]{key: key, val: v})
}

// Len returns the number of cached entries.
func (c *Cache[R]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time snapshot of cache traffic.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
}

// Stats returns hit/miss counters and the current entry count. Safe on a
// nil cache (all zeros).
func (c *Cache[R]) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}
