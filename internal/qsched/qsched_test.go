package qsched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoRun returns a run function that maps each query string to "R:"+q and
// appends every batch it executes to the shared log.
func echoRun(mu *sync.Mutex, batches *[][]string) func(context.Context, []string) ([]string, error) {
	return func(ctx context.Context, qs []string) ([]string, error) {
		mu.Lock()
		*batches = append(*batches, append([]string(nil), qs...))
		mu.Unlock()
		out := make([]string, len(qs))
		for i, q := range qs {
			out[i] = "R:" + q
		}
		return out, nil
	}
}

func waitTicket(t *testing.T, tk *Ticket[string]) (string, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := tk.Wait(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ticket did not resolve in time")
	}
	return v, err
}

func TestSubmitResolvesEachQuery(t *testing.T) {
	var mu sync.Mutex
	var batches [][]string
	s := New(echoRun(&mu, &batches), nil, nil, Options{})
	defer s.CloseNow()
	var tickets []*Ticket[string]
	for i := 0; i < 10; i++ {
		tk, err := s.Submit(fmt.Sprintf("q%d", i))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		v, err := waitTicket(t, tk)
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if want := fmt.Sprintf("R:q%d", i); v != want {
			t.Fatalf("ticket %d resolved to %q, want %q", i, v, want)
		}
	}
}

// A backlog accumulated while a batch is in flight must coalesce into
// micro-batches instead of running one query at a time.
func TestBacklogCoalesces(t *testing.T) {
	gate := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	var batches [][]string
	run := func(ctx context.Context, qs []string) ([]string, error) {
		held := false
		once.Do(func() { held = true })
		if held {
			close(first)
			<-gate // hold the only in-flight slot so the backlog builds
		}
		mu.Lock()
		batches = append(batches, append([]string(nil), qs...))
		mu.Unlock()
		out := make([]string, len(qs))
		copy(out, qs)
		return out, nil
	}
	s := New(run, nil, nil, Options{MaxBatch: 4, MaxInFlight: 1, Window: 5 * time.Millisecond})
	defer s.CloseNow()

	tk0, err := s.Submit("q0")
	if err != nil {
		t.Fatal(err)
	}
	<-first // first batch is in flight, holding the slot
	var rest []*Ticket[string]
	for i := 1; i <= 8; i++ {
		tk, err := s.Submit(fmt.Sprintf("q%d", i))
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, tk)
	}
	close(gate)
	waitTicket(t, tk0)
	for _, tk := range rest {
		waitTicket(t, tk)
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, b := range batches {
		if len(b) > 4 {
			t.Fatalf("batch of %d exceeds MaxBatch 4: %v", len(b), b)
		}
		total += len(b)
	}
	if total != 9 {
		t.Fatalf("ran %d queries, want 9", total)
	}
	// 8 backlogged queries at MaxBatch 4 need only 2 batches; allow 3 for
	// scheduling jitter, but 8 singleton batches means coalescing failed.
	if len(batches) > 4 {
		t.Fatalf("backlog ran as %d batches, want coalesced (<= 4): %v", len(batches), batches)
	}
	st := s.Stats()
	if st.Submitted != 9 || st.Batched != 9 {
		t.Fatalf("stats %+v", st)
	}
}

func TestInFlightJoinAndCache(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var calls int64
	var mu sync.Mutex
	run := func(ctx context.Context, qs []string) ([]string, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			close(started)
			<-gate
		}
		out := make([]string, len(qs))
		for i, q := range qs {
			out[i] = "R:" + q
		}
		return out, nil
	}
	key := func(q string) (string, bool) { return q, true }
	cache := NewCache[string](8)
	s := New(run, key, cache, Options{MaxInFlight: 1})
	defer s.CloseNow()

	a, err := s.Submit("same")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	b, err := s.Submit("same") // joins the in-flight ticket
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical in-flight query did not share its ticket")
	}
	close(gate)
	if v, err := waitTicket(t, a); err != nil || v != "R:same" {
		t.Fatalf("got %q, %v", v, err)
	}
	// Now cached: a third submission resolves synchronously.
	c, err := s.Submit("same")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("cached submission did not resolve synchronously")
	}
	if v, _ := waitTicket(t, c); v != "R:same" {
		t.Fatalf("cached value %q", v)
	}
	if !c.Cached() {
		t.Fatal("cached ticket not marked Cached")
	}
	st := s.Stats()
	if st.Joined != 1 || st.CacheHits != 1 {
		t.Fatalf("stats %+v", st)
	}
	if cs := cache.Stats(); cs.Hits != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats %+v", cs)
	}
}

// A batch-wide failure must be retried per query so one poisoned query
// cannot fail its neighbours.
func TestFailureIsolation(t *testing.T) {
	poison := errors.New("poisoned query")
	run := func(ctx context.Context, qs []string) ([]string, error) {
		out := make([]string, len(qs))
		for i, q := range qs {
			if strings.Contains(q, "bad") {
				return nil, poison
			}
			out[i] = "R:" + q
		}
		return out, nil
	}
	// Window large enough that all three coalesce into one batch behind a
	// blocked slot is unnecessary: submit them before the collector runs.
	s := New(run, nil, nil, Options{MaxBatch: 8, MaxInFlight: 1, Window: -1})
	defer s.CloseNow()
	tks := make([]*Ticket[string], 0, 3)
	for _, q := range []string{"ok1", "bad", "ok2"} {
		tk, err := s.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	if v, err := waitTicket(t, tks[0]); err != nil || v != "R:ok1" {
		t.Fatalf("ok1: %q, %v", v, err)
	}
	if _, err := waitTicket(t, tks[1]); !errors.Is(err, poison) {
		t.Fatalf("bad: err = %v, want poison", err)
	}
	if v, err := waitTicket(t, tks[2]); err != nil || v != "R:ok2" {
		t.Fatalf("ok2: %q, %v", v, err)
	}
}

func TestCloseStopsIntakeButDrains(t *testing.T) {
	var mu sync.Mutex
	var batches [][]string
	s := New(echoRun(&mu, &batches), nil, nil, Options{})
	tk, err := s.Submit("q")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Submit("late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
	if v, err := waitTicket(t, tk); err != nil || v != "R:q" {
		t.Fatalf("queued query dropped by Close: %q, %v", v, err)
	}
}

func TestCloseNowCancelsQueuedAndInFlight(t *testing.T) {
	started := make(chan struct{})
	run := func(ctx context.Context, qs []string) ([]string, error) {
		close(started)
		<-ctx.Done() // a long search aborted by cancellation
		return nil, ctx.Err()
	}
	s := New(run, nil, nil, Options{MaxInFlight: 1, Window: -1})
	inflight, err := s.Submit("slow")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit("queued")
	if err != nil {
		t.Fatal(err)
	}
	s.CloseNow()
	if _, err := waitTicket(t, inflight); !errors.Is(err, context.Canceled) {
		t.Fatalf("in-flight err = %v", err)
	}
	if _, err := waitTicket(t, queued); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued err = %v", err)
	}
}

// The scheduler must not keep goroutines alive while idle: the collector
// exits once the queue drains.
func TestNoGoroutinesWhileIdle(t *testing.T) {
	base := runtime.NumGoroutine()
	var mu sync.Mutex
	var batches [][]string
	s := New(echoRun(&mu, &batches), nil, nil, Options{})
	for round := 0; round < 3; round++ {
		var tks []*Ticket[string]
		for i := 0; i < 20; i++ {
			tk, err := s.Submit(fmt.Sprintf("r%dq%d", round, i))
			if err != nil {
				t.Fatal(err)
			}
			tks = append(tks, tk)
		}
		for _, tk := range tks {
			waitTicket(t, tk)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+1 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("idle scheduler holds goroutines: %d, baseline %d", runtime.NumGoroutine(), base)
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache[int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	if NewCache[int](0) != nil {
		t.Fatal("size 0 cache should be nil (disabled)")
	}
	var nilCache *Cache[int]
	if nilCache.Len() != 0 || nilCache.Stats().Entries != 0 {
		t.Fatal("nil cache accessors not safe")
	}
}

// Hammer the scheduler from many goroutines under the race detector.
func TestConcurrentSubmitHammer(t *testing.T) {
	run := func(ctx context.Context, qs []string) ([]string, error) {
		out := make([]string, len(qs))
		for i, q := range qs {
			out[i] = "R:" + q
		}
		return out, nil
	}
	key := func(q string) (string, bool) { return q, true }
	s := New(run, key, NewCache[string](32), Options{MaxBatch: 8, MaxInFlight: 4})
	defer s.CloseNow()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := fmt.Sprintf("q%d", (g*13+i)%20) // overlapping keys
				v, err := s.Do(context.Background(), q)
				if err != nil {
					t.Errorf("Do(%q): %v", q, err)
					return
				}
				if v != "R:"+q {
					t.Errorf("Do(%q) = %q", q, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
