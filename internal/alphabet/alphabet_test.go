package alphabet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLettersLength(t *testing.T) {
	if len(Letters) != Size {
		t.Fatalf("Letters has %d letters, want %d", len(Letters), Size)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for c := Code(0); c < Size; c++ {
		b := Decode(c)
		got, ok := Encode(b)
		if !ok {
			t.Fatalf("Encode(%q) not recognised", b)
		}
		if got != c {
			t.Fatalf("Encode(Decode(%d)) = %d", c, got)
		}
	}
}

func TestEncodeLowerCase(t *testing.T) {
	for c := Code(0); c < 20; c++ {
		upper := Decode(c)
		lower := upper + 'a' - 'A'
		got, ok := Encode(lower)
		if !ok || got != c {
			t.Fatalf("Encode(%q) = %d,%v; want %d,true", lower, got, ok, c)
		}
	}
}

func TestEncodeUnknown(t *testing.T) {
	for _, b := range []byte{'1', ' ', '-', '\n', 0, 255} {
		c, ok := Encode(b)
		if ok {
			t.Errorf("Encode(%q) recognised, want unrecognised", b)
		}
		if c != Unknown {
			t.Errorf("Encode(%q) = %d, want Unknown", b, c)
		}
	}
}

func TestNonStandardResiduesMapToX(t *testing.T) {
	for _, b := range []byte{'U', 'u', 'O', 'o', 'J'} {
		c, _ := Encode(b)
		if c != Unknown {
			t.Errorf("Encode(%q) = %d, want Unknown (X)", b, c)
		}
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	in := []byte("MKVLAARNDW")
	codes := EncodeAll(in)
	out := DecodeAll(codes)
	if !bytes.Equal(in, out) {
		t.Fatalf("round trip %q -> %q", in, out)
	}
}

func TestValid(t *testing.T) {
	if !Valid([]byte("ACDEFGHIKLMNPQRSTVWYBZX*")) {
		t.Error("standard residues reported invalid")
	}
	if Valid([]byte("ACD EFG")) {
		t.Error("space reported valid")
	}
	if !Valid(nil) {
		t.Error("empty sequence should be valid")
	}
}

func TestIsStandard(t *testing.T) {
	std := 0
	for c := Code(0); c < Size; c++ {
		if IsStandard(c) {
			std++
		}
	}
	if std != 20 {
		t.Fatalf("IsStandard counts %d codes, want 20", std)
	}
	for _, b := range []byte{'B', 'Z', 'X', '*'} {
		c, _ := Encode(b)
		if IsStandard(c) {
			t.Errorf("IsStandard(%q) = true", b)
		}
	}
}

func TestDecodePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Decode(Size) did not panic")
		}
	}()
	Decode(Size)
}

// Property: encoding any byte slice yields codes < Size, and decoding those
// codes yields bytes that re-encode to the same codes (idempotence after the
// first pass).
func TestEncodeIdempotentProperty(t *testing.T) {
	f := func(data []byte) bool {
		codes := EncodeAll(data)
		for _, c := range codes {
			if int(c) >= Size {
				return false
			}
		}
		letters := DecodeAll(codes)
		again := EncodeAll(letters)
		for i := range codes {
			if codes[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodesView(t *testing.T) {
	if CodesView(nil) != nil || CodesView([]byte{}) != nil {
		t.Fatal("empty views must be nil")
	}
	b := []byte{0, 5, 23, 1}
	v := CodesView(b)
	if len(v) != len(b) {
		t.Fatalf("len %d, want %d", len(v), len(b))
	}
	for i := range b {
		if v[i] != Code(b[i]) {
			t.Fatalf("v[%d] = %d, want %d", i, v[i], b[i])
		}
	}
	b[2] = 7 // the view aliases the backing bytes
	if v[2] != 7 {
		t.Fatal("view did not alias the byte slice")
	}
	if !ValidCodes(v) {
		t.Fatal("ValidCodes rejected in-range codes")
	}
	if ValidCodes([]Code{0, Code(Size)}) {
		t.Fatal("ValidCodes accepted an out-of-range code")
	}
}
