package alphabet

import (
	"bytes"
	"testing"
)

// The DNA instance pins: 15 IUPAC letters, N directly after the four
// bases as the unknown code, case-insensitive soft-mask handling, and a
// U→T alias for RNA input.

func TestDNAShape(t *testing.T) {
	if got := DNA.Letters(); got != "ACGTNRYSWKMBDHV" {
		t.Fatalf("DNA letters %q", got)
	}
	if DNA.Size() != 15 {
		t.Fatalf("DNA size %d, want 15", DNA.Size())
	}
	if DNA.Unknown() != 4 {
		t.Fatalf("DNA unknown code %d, want 4 (N)", DNA.Unknown())
	}
	if DNA.Decode(DNA.Unknown()) != 'N' {
		t.Fatalf("DNA unknown decodes to %q, want N", DNA.Decode(DNA.Unknown()))
	}
	std := 0
	for c := Code(0); int(c) < DNA.Size(); c++ {
		if DNA.IsStandard(c) {
			std++
		}
	}
	if std != 4 {
		t.Fatalf("DNA has %d standard codes, want 4 (ACGT)", std)
	}
}

func TestDNAEncodeDecodeRoundTrip(t *testing.T) {
	for c := Code(0); int(c) < DNA.Size(); c++ {
		b := DNA.Decode(c)
		got, ok := DNA.Encode(b)
		if !ok || got != c {
			t.Fatalf("Encode(Decode(%d)) = %d,%v", c, got, ok)
		}
	}
}

// TestDNALowerCaseRoundTrip pins the soft-mask contract: lowercase
// nucleotides (repeat-masked regions in genomic FASTA) encode to the same
// codes as their uppercase forms, and decode back to uppercase.
func TestDNALowerCaseRoundTrip(t *testing.T) {
	upper := []byte("ACGTNRYSWKMBDHV")
	lower := bytes.ToLower(upper)
	uc, lc := DNA.EncodeAll(upper), DNA.EncodeAll(lower)
	if !bytes.Equal(BytesView(uc), BytesView(lc)) {
		t.Fatalf("lowercase codes %v differ from uppercase %v", lc, uc)
	}
	if got := DNA.DecodeAll(lc); !bytes.Equal(got, upper) {
		t.Fatalf("soft-masked round trip %q -> %q, want %q", lower, got, upper)
	}
}

// TestDNAUnknownBytes pins that unrecognised input becomes N, and that
// RNA's U (and u) aliases to T rather than N.
func TestDNAUnknownBytes(t *testing.T) {
	for _, b := range []byte{'E', 'F', '1', ' ', '-', 0, 255} {
		c, ok := DNA.Encode(b)
		if ok {
			t.Errorf("Encode(%q) recognised, want unrecognised", b)
		}
		if c != DNA.Unknown() {
			t.Errorf("Encode(%q) = %d, want N", b, c)
		}
	}
	tc, _ := DNA.Encode('T')
	for _, b := range []byte{'U', 'u'} {
		c, ok := DNA.Encode(b)
		if !ok || c != tc {
			t.Errorf("Encode(%q) = %d,%v; want T's code %d", b, c, ok, tc)
		}
	}
}

func TestDNAValidCodes(t *testing.T) {
	cs := DNA.EncodeAll([]byte("ACGTNacgtnRYSWKMBDHVrsyw"))
	if !DNA.ValidCodes(cs) {
		t.Fatal("ValidCodes rejected encoded DNA")
	}
	if DNA.ValidCodes([]Code{0, 15}) {
		t.Fatal("ValidCodes accepted code 15 (out of range for DNA)")
	}
	// Protein codes 15..23 are invalid under DNA but valid under protein:
	// the same arena must validate differently per alphabet.
	if DNA.ValidCodes([]Code{23}) || !Protein.ValidCodes([]Code{23}) {
		t.Fatal("per-alphabet code validation disagrees")
	}
}

func TestByNameByLetters(t *testing.T) {
	for _, tc := range []struct {
		name string
		want *Alphabet
	}{{"", Protein}, {"protein", Protein}, {"dna", DNA}, {"DNA", DNA}} {
		got, err := ByName(tc.name)
		if err != nil || got != tc.want {
			t.Fatalf("ByName(%q) = %v, %v", tc.name, got, err)
		}
	}
	if _, err := ByName("rna"); err == nil {
		t.Fatal("ByName(rna) succeeded")
	}
	for _, a := range []*Alphabet{Protein, DNA} {
		got, err := ByLetters(a.Letters())
		if err != nil || got != a {
			t.Fatalf("ByLetters(%q) = %v, %v", a.Letters(), got, err)
		}
	}
	if _, err := ByLetters("ACGT"); err == nil {
		t.Fatal("ByLetters(ACGT) succeeded")
	}
}
