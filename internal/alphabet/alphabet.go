// Package alphabet defines the amino-acid alphabet used throughout the
// Smith-Waterman engine and the compact residue encoding shared by
// sequences, substitution matrices and alignment kernels.
//
// Residues are stored as small integer codes (type Code) so that profile
// tables can be indexed directly without byte-to-index translation in inner
// loops. The alphabet matches the 24-letter NCBI protein alphabet used by
// BLOSUM and PAM matrices: the 20 standard amino acids, the ambiguity codes
// B (Asx), Z (Glx) and X (unknown), and the stop/terminator '*'.
package alphabet

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Code is the compact integer encoding of a residue. Valid codes are in
// [0, Size). The zero value encodes 'A'.
type Code uint8

// Size is the number of distinct residue codes in the protein alphabet.
const Size = 24

// Letters lists the alphabet in code order: Letters[c] is the byte for
// Code c. The ordering matches NCBI's NCBIstdaa-derived ordering used by
// textual BLOSUM matrices, which keeps matrix parsing straightforward.
const Letters = "ARNDCQEGHILKMFPSTWYVBZX*"

// Unknown is the code for the ambiguity residue 'X'. Invalid input bytes
// decode to Unknown rather than failing, mirroring common search-tool
// behaviour for stray characters in FASTA data.
const Unknown Code = 22

// codeOf maps an ASCII byte to its residue code, or -1 if the byte is not a
// valid residue letter.
var codeOf [256]int8

func init() {
	for i := range codeOf {
		codeOf[i] = -1
	}
	for c := 0; c < Size; c++ {
		upper := Letters[c]
		codeOf[upper] = int8(c)
		if upper >= 'A' && upper <= 'Z' {
			codeOf[upper+'a'-'A'] = int8(c) // accept lower case
		}
	}
	// Accept U (selenocysteine) and O (pyrrolysine) as X: they occur in
	// Swiss-Prot but have no BLOSUM column.
	for _, b := range []byte{'U', 'u', 'O', 'o', 'J', 'j'} {
		codeOf[b] = int8(Unknown)
	}
}

// Encode returns the residue code for an ASCII letter and whether the letter
// is a recognised residue. Unrecognised letters return (Unknown, false).
func Encode(b byte) (Code, bool) {
	if c := codeOf[b]; c >= 0 {
		return Code(c), true
	}
	return Unknown, false
}

// MustEncode returns the residue code for b, mapping any unrecognised byte
// to Unknown.
func MustEncode(b byte) Code {
	c, _ := Encode(b)
	return c
}

// Decode returns the ASCII letter for a residue code. It panics if the code
// is out of range, since codes are produced only by this package.
func Decode(c Code) byte {
	if int(c) >= Size {
		panic(fmt.Sprintf("alphabet: code %d out of range", c))
	}
	return Letters[c]
}

// EncodeAll encodes an ASCII residue string into a fresh code slice.
// Unrecognised bytes become Unknown.
func EncodeAll(s []byte) []Code {
	out := make([]Code, len(s))
	for i, b := range s {
		out[i] = MustEncode(b)
	}
	return out
}

// DecodeAll renders a code slice as an ASCII residue string.
func DecodeAll(cs []Code) []byte {
	out := make([]byte, len(cs))
	for i, c := range cs {
		out[i] = Decode(c)
	}
	return out
}

// CodesView reinterprets a byte slice as a Code slice without copying.
// Code is a uint8, so the two layouts are identical; the view aliases b,
// which must hold already-encoded residues (every byte < Size) and must not
// be mutated afterwards. This is the zero-copy path the on-disk database
// index uses to slice sequences out of one contiguous residue arena.
func CodesView(b []byte) []Code {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*Code)(unsafe.Pointer(&b[0])), len(b))
}

// BytesView is the inverse of CodesView: a zero-copy byte view over a
// code slice (the index writer's arena serialisation). The view aliases
// cs and must not be mutated.
func BytesView(cs []Code) []byte {
	if len(cs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&cs[0])), len(cs))
}

// ValidCodes reports whether every element of cs is a valid residue code,
// the integrity check applied to residue arenas loaded from disk. The scan
// runs eight codes per word (SWAR), so validating a multi-megabyte arena
// costs a fraction of a millisecond of the load budget.
func ValidCodes(cs []Code) bool {
	const (
		hiBits = 0x8080808080808080
		// addend lifts a byte's high bit exactly when the byte >= Size:
		// 0x80 - Size replicated per byte. Carry-free whenever no input
		// byte has its high bit set, which the hiBits term checks first.
		addend = (0x80 - Size) * 0x0101010101010101
	)
	i, n := 0, len(cs)
	if n >= 8 {
		b := unsafe.Slice((*byte)(unsafe.Pointer(&cs[0])), n)
		for ; i+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(b[i:])
			if (w|(w+addend))&hiBits != 0 {
				return false
			}
		}
	}
	for ; i < n; i++ {
		if int(cs[i]) >= Size {
			return false
		}
	}
	return true
}

// Valid reports whether every byte of s is a recognised residue letter.
func Valid(s []byte) bool {
	for _, b := range s {
		if codeOf[b] < 0 {
			return false
		}
	}
	return true
}

// IsStandard reports whether c is one of the 20 standard amino acids
// (i.e. not B, Z, X or *).
func IsStandard(c Code) bool { return c < 20 }
