// Package alphabet defines the residue alphabets used throughout the
// Smith-Waterman engine and the compact residue encoding shared by
// sequences, substitution matrices and alignment kernels.
//
// Residues are stored as small integer codes (type Code) so that profile
// tables can be indexed directly without byte-to-index translation in inner
// loops. Two alphabets are provided: Protein, the 24-letter NCBI protein
// alphabet used by BLOSUM and PAM matrices (the 20 standard amino acids,
// the ambiguity codes B, Z and X, and the stop '*'), and DNA, the 16-letter
// IUPAC nucleotide alphabet (A, C, G, T, the unknown N, and the remaining
// ambiguity codes).
//
// The package-level functions and constants are protein shorthands kept for
// the protein-only call sites (and the original API); alphabet-generic code
// should hold an *Alphabet and use its methods.
package alphabet

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// Code is the compact integer encoding of a residue. Valid codes are in
// [0, Alphabet.Size()). The zero value encodes 'A' in both alphabets.
type Code uint8

// Alphabet is a residue alphabet: an ordered letter set, the byte-to-code
// table derived from it, and the unknown (catch-all) code. Values are
// immutable after construction; the two canonical instances are Protein and
// DNA.
type Alphabet struct {
	name     string
	letters  string
	unknown  Code
	standard int // count of unambiguous residues (a prefix of letters)
	codeOf   [256]int8
}

// newAlphabet builds an alphabet over letters (code order). Uppercase
// letters also accept their lowercase forms (soft-masked residues in
// genomic FASTA). aliases maps extra input bytes to existing codes.
func newAlphabet(name, letters string, unknown Code, standard int, aliases map[byte]byte) *Alphabet {
	a := &Alphabet{name: name, letters: letters, unknown: unknown, standard: standard}
	for i := range a.codeOf {
		a.codeOf[i] = -1
	}
	for c := 0; c < len(letters); c++ {
		upper := letters[c]
		a.codeOf[upper] = int8(c)
		if upper >= 'A' && upper <= 'Z' {
			a.codeOf[upper+'a'-'A'] = int8(c) // accept lower case
		}
	}
	for b, to := range aliases {
		c := a.codeOf[to]
		a.codeOf[b] = c
		if b >= 'A' && b <= 'Z' {
			a.codeOf[b+'a'-'A'] = c
		}
	}
	return a
}

// Protein is the 24-letter NCBI protein alphabet. The ordering matches
// NCBI's NCBIstdaa-derived ordering used by textual BLOSUM matrices, which
// keeps matrix parsing straightforward. U (selenocysteine), O (pyrrolysine)
// and J are accepted as X: they occur in Swiss-Prot but have no BLOSUM
// column.
var Protein = newAlphabet("protein", Letters, Unknown, 20,
	map[byte]byte{'U': 'X', 'O': 'X', 'J': 'X'})

// DNA is the IUPAC nucleotide alphabet: the four standard bases, the
// unknown base N, then the remaining ambiguity codes. N is placed directly
// after the bases so ambiguity handling (anything with code >= 4) is a
// single compare. U (uracil) is accepted as T so RNA input encodes
// losslessly; lowercase (soft-masked) residues encode case-insensitively
// like protein letters.
var DNA = newAlphabet("dna", "ACGTNRYSWKMBDHV", 4, 4,
	map[byte]byte{'U': 'T'})

// ByName returns the named alphabet: "protein" or "dna".
func ByName(name string) (*Alphabet, error) {
	switch name {
	case "", "protein":
		return Protein, nil
	case "dna", "DNA":
		return DNA, nil
	}
	return nil, fmt.Errorf("alphabet: unknown alphabet %q (have protein, dna)", name)
}

// ByLetters resolves an alphabet from its exact letter string — the form
// persisted in .swdb index headers.
func ByLetters(letters string) (*Alphabet, error) {
	switch letters {
	case Protein.letters:
		return Protein, nil
	case DNA.letters:
		return DNA, nil
	}
	return nil, fmt.Errorf("alphabet: unknown alphabet letters %q", letters)
}

// Name returns the alphabet's name: "protein" or "dna".
func (a *Alphabet) Name() string { return a.name }

// Letters lists the alphabet in code order: Letters()[c] is the byte for
// Code c.
func (a *Alphabet) Letters() string { return a.letters }

// Size returns the number of distinct residue codes.
func (a *Alphabet) Size() int { return len(a.letters) }

// Unknown returns the catch-all code unrecognised input bytes decode to:
// X for protein, N for DNA.
func (a *Alphabet) Unknown() Code { return a.unknown }

// IsStandard reports whether c is an unambiguous residue: one of the 20
// standard amino acids, or one of the four DNA bases.
func (a *Alphabet) IsStandard(c Code) bool { return int(c) < a.standard }

// Encode returns the residue code for an ASCII letter and whether the
// letter is a recognised residue. Unrecognised letters return
// (Unknown(), false).
func (a *Alphabet) Encode(b byte) (Code, bool) {
	if c := a.codeOf[b]; c >= 0 {
		return Code(c), true
	}
	return a.unknown, false
}

// MustEncode returns the residue code for b, mapping any unrecognised byte
// to the unknown code.
func (a *Alphabet) MustEncode(b byte) Code {
	c, _ := a.Encode(b)
	return c
}

// Decode returns the ASCII letter for a residue code. It panics if the
// code is out of range, since codes are produced only by this package.
func (a *Alphabet) Decode(c Code) byte {
	if int(c) >= len(a.letters) {
		panic(fmt.Sprintf("alphabet: %s code %d out of range", a.name, c))
	}
	return a.letters[c]
}

// EncodeAll encodes an ASCII residue string into a fresh code slice.
// Unrecognised bytes become the unknown code.
func (a *Alphabet) EncodeAll(s []byte) []Code {
	out := make([]Code, len(s))
	for i, b := range s {
		out[i] = a.MustEncode(b)
	}
	return out
}

// DecodeAll renders a code slice as an ASCII residue string.
func (a *Alphabet) DecodeAll(cs []Code) []byte {
	out := make([]byte, len(cs))
	for i, c := range cs {
		out[i] = a.Decode(c)
	}
	return out
}

// Valid reports whether every byte of s is a recognised residue letter.
func (a *Alphabet) Valid(s []byte) bool {
	for _, b := range s {
		if a.codeOf[b] < 0 {
			return false
		}
	}
	return true
}

// ValidCodes reports whether every element of cs is a valid residue code
// under this alphabet — the integrity check applied to residue arenas
// loaded from disk. The scan runs eight codes per word (SWAR), so
// validating a multi-megabyte arena costs a fraction of a millisecond of
// the load budget.
func (a *Alphabet) ValidCodes(cs []Code) bool {
	return validCodes(cs, len(a.letters))
}

func validCodes(cs []Code, size int) bool {
	const hiBits = 0x8080808080808080
	// addend lifts a byte's high bit exactly when the byte >= size:
	// 0x80 - size replicated per byte. Carry-free whenever no input byte
	// has its high bit set, which the hiBits term checks first.
	addend := uint64(0x80-size) * 0x0101010101010101
	i, n := 0, len(cs)
	if n >= 8 {
		b := unsafe.Slice((*byte)(unsafe.Pointer(&cs[0])), n)
		for ; i+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(b[i:])
			if (w|(w+addend))&hiBits != 0 {
				return false
			}
		}
	}
	for ; i < n; i++ {
		if int(cs[i]) >= size {
			return false
		}
	}
	return true
}

// Protein shorthands: the original fixed-alphabet API, delegating to the
// Protein instance. Kernel- and matrix-generic code should use *Alphabet
// methods instead.

// Size is the number of distinct residue codes in the protein alphabet.
const Size = 24

// Letters lists the protein alphabet in code order.
const Letters = "ARNDCQEGHILKMFPSTWYVBZX*"

// Unknown is the protein code for the ambiguity residue 'X'. Invalid input
// bytes decode to Unknown rather than failing, mirroring common search-tool
// behaviour for stray characters in FASTA data.
const Unknown Code = 22

// Encode returns the protein residue code for an ASCII letter and whether
// the letter is a recognised residue.
func Encode(b byte) (Code, bool) { return Protein.Encode(b) }

// MustEncode returns the protein residue code for b, mapping any
// unrecognised byte to Unknown.
func MustEncode(b byte) Code { return Protein.MustEncode(b) }

// Decode returns the ASCII letter for a protein residue code.
func Decode(c Code) byte { return Protein.Decode(c) }

// EncodeAll encodes an ASCII residue string under the protein alphabet.
func EncodeAll(s []byte) []Code { return Protein.EncodeAll(s) }

// DecodeAll renders a protein code slice as an ASCII residue string.
func DecodeAll(cs []Code) []byte { return Protein.DecodeAll(cs) }

// Valid reports whether every byte of s is a recognised protein residue
// letter.
func Valid(s []byte) bool { return Protein.Valid(s) }

// ValidCodes reports whether every element of cs is a valid protein
// residue code.
func ValidCodes(cs []Code) bool { return validCodes(cs, Size) }

// IsStandard reports whether c is one of the 20 standard amino acids
// (i.e. not B, Z, X or *).
func IsStandard(c Code) bool { return c < 20 }

// CodesView reinterprets a byte slice as a Code slice without copying.
// Code is a uint8, so the two layouts are identical; the view aliases b,
// which must hold already-encoded residues and must not be mutated
// afterwards. This is the zero-copy path the on-disk database index uses
// to slice sequences out of one contiguous residue arena.
func CodesView(b []byte) []Code {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*Code)(unsafe.Pointer(&b[0])), len(b))
}

// BytesView is the inverse of CodesView: a zero-copy byte view over a
// code slice (the index writer's arena serialisation). The view aliases
// cs and must not be mutated.
func BytesView(cs []Code) []byte {
	if len(cs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&cs[0])), len(cs))
}
