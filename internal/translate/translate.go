// Package translate implements six-frame translation of DNA sequences
// into protein, the preprocessing step of blastx-style translated search:
// a nucleotide query is translated in all six reading frames (three
// offsets on each strand) and each frame is searched against a protein
// database with the unmodified protein kernels. The package also supplies
// the coordinate mapping from aligned protein segments back to the
// original DNA, which reporting needs to cite nucleotide positions.
package translate

import (
	"fmt"

	"heterosw/internal/alphabet"
)

// complement maps each IUPAC DNA code to its complement code, in the
// alphabet's "ACGTNRYSWKMBDHV" order. Ambiguity codes complement to the
// code matching the complemented base set (R={A,G} <-> Y={C,T}, S and W
// are self-complementary, K={G,T} <-> M={A,C}, B <-> V, D <-> H).
var complement = [15]alphabet.Code{
	3, 2, 1, 0, // A<->T, C<->G
	4,    // N
	6, 5, // R<->Y
	7, 8, // S, W self
	10, 9, // K<->M
	14, 13, // B->V, D->H
	12, 11, // H->D, V->B
}

// codonAA maps a codon index (16*a + 4*b + c over standard base codes
// A=0, C=1, G=2, T=3) to the protein code of the encoded amino acid under
// the standard genetic code, with '*' for the stop codons.
var codonAA [64]alphabet.Code

func init() {
	// The classic genetic-code string, indexed 16*b1+4*b2+b3 over the
	// textbook base order T=0, C=1, A=2, G=3.
	const tcag = "FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG"
	// Our DNA codes order A, C, G, T; remap each base to its textbook index.
	toTCAG := [4]int{2, 1, 3, 0}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 4; c++ {
				aa := tcag[16*toTCAG[a]+4*toTCAG[b]+toTCAG[c]]
				codonAA[16*a+4*b+c] = alphabet.Protein.MustEncode(aa)
			}
		}
	}
}

// ReverseComplement returns the reverse complement of a DNA code sequence
// as a fresh slice.
func ReverseComplement(dna []alphabet.Code) []alphabet.Code {
	out := make([]alphabet.Code, len(dna))
	for i, c := range dna {
		out[len(dna)-1-i] = complement[c]
	}
	return out
}

// Codon translates one codon of DNA codes into a protein code. A codon
// containing any ambiguity code (including N) translates to the protein
// unknown X, the tolerant behaviour of translated-search tools.
func Codon(a, b, c alphabet.Code) alphabet.Code {
	if a >= 4 || b >= 4 || c >= 4 {
		return alphabet.Unknown
	}
	return codonAA[16*int(a)+4*int(b)+int(c)]
}

// Frame is one reading frame of a DNA sequence: the translated protein
// codes plus everything needed to map protein coordinates back to the
// original (forward-strand) DNA.
type Frame struct {
	// Index identifies the frame blastx-style: +1, +2, +3 translate the
	// forward strand starting at offsets 0, 1, 2; -1, -2, -3 the reverse
	// complement at the same offsets.
	Index int
	// Protein holds the translated protein codes (length dnaLen-offset / 3).
	Protein []alphabet.Code

	offset int // start offset on the translated strand
	dnaLen int // original DNA length
}

// Name renders the frame index in the conventional signed form ("+2", "-1").
func (f *Frame) Name() string { return fmt.Sprintf("%+d", f.Index) }

// Reverse reports whether the frame reads the reverse-complement strand.
func (f *Frame) Reverse() bool { return f.Index < 0 }

// DNARange maps a half-open protein residue range [aaStart, aaEnd) of this
// frame back to the half-open nucleotide range it was translated from, in
// forward-strand coordinates of the original DNA sequence.
func (f *Frame) DNARange(aaStart, aaEnd int) (start, end int) {
	s := f.offset + 3*aaStart
	e := f.offset + 3*aaEnd
	if !f.Reverse() {
		return s, e
	}
	// Positions on the reverse complement count from the 3' end of the
	// original strand: revcomp index r is original index dnaLen-1-r.
	return f.dnaLen - e, f.dnaLen - s
}

// frame translates one strand at one offset.
func frame(strand []alphabet.Code, index, offset, dnaLen int) *Frame {
	n := (len(strand) - offset) / 3
	if n < 0 {
		n = 0
	}
	aa := make([]alphabet.Code, n)
	for i := 0; i < n; i++ {
		p := offset + 3*i
		aa[i] = Codon(strand[p], strand[p+1], strand[p+2])
	}
	return &Frame{Index: index, Protein: aa, offset: offset, dnaLen: dnaLen}
}

// Frames translates dna (encoded under the DNA alphabet) in all six
// reading frames: +1, +2, +3, -1, -2, -3. Frames too short to hold a
// codon are returned with an empty translation so frame indexing stays
// uniform for callers.
func Frames(dna []alphabet.Code) []*Frame {
	rc := ReverseComplement(dna)
	out := make([]*Frame, 0, 6)
	for off := 0; off < 3; off++ {
		out = append(out, frame(dna, off+1, off, len(dna)))
	}
	for off := 0; off < 3; off++ {
		out = append(out, frame(rc, -(off+1), off, len(dna)))
	}
	return out
}
