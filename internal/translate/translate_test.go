package translate

import (
	"testing"

	"heterosw/internal/alphabet"
)

func dna(t *testing.T, s string) []alphabet.Code {
	t.Helper()
	return alphabet.DNA.EncodeAll([]byte(s))
}

func protein(t *testing.T, cs []alphabet.Code) string {
	t.Helper()
	return string(alphabet.Protein.DecodeAll(cs))
}

func TestReverseComplement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ACGT", "ACGT"},
		{"AAACCC", "GGGTTT"},
		{"ATGN", "NCAT"},
		{"RYSWKMBDHV", "BDHVKMWSRY"},
		{"", ""},
	}
	for _, c := range cases {
		got := string(alphabet.DNA.DecodeAll(ReverseComplement(dna(t, c.in))))
		if got != c.want {
			t.Errorf("ReverseComplement(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	in := dna(t, "ATGCGTNNRYACGTAGCTAGSWKM")
	back := ReverseComplement(ReverseComplement(in))
	for i := range in {
		if back[i] != in[i] {
			t.Fatalf("double complement differs at %d", i)
		}
	}
}

func TestCodonKnownValues(t *testing.T) {
	cases := []struct {
		codon string
		want  byte
	}{
		{"ATG", 'M'}, {"TGG", 'W'}, {"TTT", 'F'}, {"AAA", 'K'},
		{"TAA", '*'}, {"TAG", '*'}, {"TGA", '*'},
		{"GGG", 'G'}, {"GCT", 'A'}, {"TGT", 'C'},
		{"ANA", 'X'}, {"RTG", 'X'}, // ambiguity anywhere -> X
	}
	for _, c := range cases {
		cs := dna(t, c.codon)
		got := alphabet.Protein.Decode(Codon(cs[0], cs[1], cs[2]))
		if got != c.want {
			t.Errorf("Codon(%s) = %c, want %c", c.codon, got, c.want)
		}
	}
}

// The six frames of a known sequence, checked against hand translation.
func TestFramesTranslation(t *testing.T) {
	// Forward: ATG GCC TGA -> MA*
	// revcomp(ATGGCCTGA) = TCAGGCCAT: TCA GGC CAT -> SGH
	fs := Frames(dna(t, "ATGGCCTGA"))
	if len(fs) != 6 {
		t.Fatalf("Frames returned %d frames", len(fs))
	}
	want := map[int]string{
		1: "MA*", 2: "WP", 3: "GL",
		-1: "SGH", -2: "QA", -3: "RP",
	}
	for _, f := range fs {
		if got := protein(t, f.Protein); got != want[f.Index] {
			t.Errorf("frame %+d = %q, want %q", f.Index, got, want[f.Index])
		}
	}
}

func TestFramesShortInput(t *testing.T) {
	for _, s := range []string{"", "A", "AC"} {
		fs := Frames(dna(t, s))
		if len(fs) != 6 {
			t.Fatalf("Frames(%q) returned %d frames", s, len(fs))
		}
		for _, f := range fs {
			if len(f.Protein) != 0 {
				t.Errorf("Frames(%q) frame %+d non-empty", s, f.Index)
			}
		}
	}
}

func TestDNARangeForward(t *testing.T) {
	fs := Frames(dna(t, "ATGGCCTGA"))
	// Frame +1, protein [0,2) = residues M,A -> DNA [0,6).
	s, e := fs[0].DNARange(0, 2)
	if s != 0 || e != 6 {
		t.Errorf("+1 [0,2) -> [%d,%d), want [0,6)", s, e)
	}
	// Frame +2, protein [1,2) -> DNA [4,7).
	s, e = fs[1].DNARange(1, 2)
	if s != 4 || e != 7 {
		t.Errorf("+2 [1,2) -> [%d,%d), want [4,7)", s, e)
	}
}

func TestDNARangeReverse(t *testing.T) {
	n := 9
	fs := Frames(dna(t, "ATGGCCTGA"))
	// Frame -1 offset 0: protein [0,1) covers revcomp [0,3) = original [6,9).
	s, e := fs[3].DNARange(0, 1)
	if s != n-3 || e != n {
		t.Errorf("-1 [0,1) -> [%d,%d), want [%d,%d)", s, e, n-3, n)
	}
	// Frame -2 offset 1: protein [1,2) covers revcomp [4,7) = original [2,5).
	s, e = fs[4].DNARange(1, 2)
	if s != 2 || e != 5 {
		t.Errorf("-2 [1,2) -> [%d,%d), want [2,5)", s, e)
	}
}

// Every frame's DNARange must map its full span inside the original
// sequence, and a reverse frame's range must translate (as revcomp) back
// to the frame's own protein.
func TestDNARangeRoundTrip(t *testing.T) {
	seq := dna(t, "ATGCGTACGTTAGCCATGACGTACGATCG")
	for _, f := range Frames(seq) {
		n := len(f.Protein)
		if n == 0 {
			continue
		}
		s, e := f.DNARange(0, n)
		if s < 0 || e > len(seq) || e-s != 3*n {
			t.Fatalf("frame %+d full range [%d,%d) invalid", f.Index, s, e)
		}
		segment := seq[s:e]
		if f.Reverse() {
			segment = ReverseComplement(segment)
		}
		for i := 0; i < n; i++ {
			if got := Codon(segment[3*i], segment[3*i+1], segment[3*i+2]); got != f.Protein[i] {
				t.Fatalf("frame %+d residue %d: mapped codon translates to %c, frame holds %c",
					f.Index, i, alphabet.Protein.Decode(got), alphabet.Protein.Decode(f.Protein[i]))
			}
		}
	}
}
