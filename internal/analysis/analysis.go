// Package analysis is the project's static-analysis framework: a small,
// dependency-free core (modelled on golang.org/x/tools/go/analysis, which
// the build environment does not vendor) plus the project-specific
// analyzers behind cmd/swlint.
//
// The repository rests on invariants that tests and fuzzers only sample:
// allocation-free asm-backed kernel columns, unsafe zero-copy reinterprets
// over mmapped .swdb images, a sentinel-error taxonomy the distributed
// retry policy depends on being honest, request contexts that must reach
// every blocking call for hedging and cancellation to work, and
// mutex-guarded accounting shared across goroutines. Each analyzer turns
// one of those disciplines into a compiler-backed check that runs over the
// whole repository in CI (see cmd/swlint), so a violation fails the build
// instead of waiting for a fuzzer to sample it.
//
// # Annotations
//
// The analyzers are driven by machine-readable //sw: directive comments
// (written without a space after //, like //go: directives, so gofmt
// leaves them alone):
//
//	//sw:hotpath        function doc: steady-state allocation-free kernel
//	                    discipline (see the hotalloc analyzer)
//	//sw:ctxroot        function doc: this function may mint
//	                    context.Background/TODO — a process-lifetime root
//	                    or a documented context-free convenience wrapper
//	//sw:errmapper      function doc: the central error -> HTTP response
//	                    mapper, allowed to render err.Error() into bodies
//	//sw:guardedBy(mu)  struct field: the field may only be accessed by
//	                    functions that lock the sibling mutex field mu
//	//sw:locked(mu)     function doc: the caller guarantees mu is held, so
//	                    guardedBy(mu) accesses inside are legal
//
// Analyzers receive a fully type-checked package (a Pass), report
// position-anchored Diagnostics, and are pure functions of the source —
// the same inputs always produce the same findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description printed by swlint -help.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Reportf. A non-nil error aborts the whole run (reserved for
	// internal failures, never for findings).
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token.Pos values of Files to file positions.
	Fset *token.FileSet
	// Files are the package's parsed compiled Go files (test files are
	// not analyzed; the invariants the analyzers enforce are production
	// disciplines).
	Files []*ast.File
	// Pkg and Info are the type-checker's results for Files.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position. Analyzer errors (internal failures, not
// findings) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Pkg.Path(), err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// A Directive is one parsed //sw: annotation.
type Directive struct {
	// Name is the directive keyword ("hotpath", "guardedBy", ...).
	Name string
	// Arg is the text inside the optional parentheses ("mu" for
	// //sw:guardedBy(mu)); empty when absent.
	Arg string
	// Pos locates the directive comment.
	Pos token.Pos
}

// directivePrefix introduces every project annotation.
const directivePrefix = "//sw:"

// ParseDirectives extracts //sw: directives from comment groups. Nil
// groups are permitted.
func ParseDirectives(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			body := strings.TrimPrefix(text, directivePrefix)
			name, arg := body, ""
			if i := strings.IndexByte(body, '('); i >= 0 {
				j := strings.IndexByte(body[i:], ')')
				if j < 0 {
					continue // unbalanced parens: not a directive
				}
				name, arg = body[:i], body[i+1:i+j]
			} else {
				name, _, _ = strings.Cut(body, " ")
			}
			out = append(out, Directive{Name: name, Arg: strings.TrimSpace(arg), Pos: c.Pos()})
		}
	}
	return out
}

// FuncDirectives returns the //sw: directives in a function's doc comment.
func FuncDirectives(fn *ast.FuncDecl) []Directive {
	return ParseDirectives(fn.Doc)
}

// HasDirective reports whether ds contains a directive named name.
func HasDirective(ds []Directive, name string) bool {
	for _, d := range ds {
		if d.Name == name {
			return true
		}
	}
	return false
}

// DirectiveArgs collects the Arg of every directive named name.
func DirectiveArgs(ds []Directive, name string) []string {
	var out []string
	for _, d := range ds {
		if d.Name == name {
			out = append(out, d.Arg)
		}
	}
	return out
}

// ErrorType is the universe error interface, for Implements tests.
var ErrorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t implements error.
func IsErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, ErrorType)
}

// IsNamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name {
		return false
	}
	pkg := obj.Pkg()
	return pkg != nil && pkg.Path() == pkgPath
}

// CalleeObject resolves the object a call expression invokes (function,
// method or builtin), or nil when the callee is dynamic (a function value)
// or a type conversion.
func CalleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := CalleeObject(info, call)
	if obj == nil || obj.Name() != name {
		return false
	}
	if _, ok := obj.(*types.Func); !ok {
		return false
	}
	pkg := obj.Pkg()
	return pkg != nil && pkg.Path() == pkgPath
}

// IsBuiltin reports whether call invokes the named builtin (len, cap,
// make, new, append, ...).
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// IsConversion reports whether call is a type conversion rather than a
// function call, returning the target type.
func IsConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}
