package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc enforces the steady-state allocation-free discipline on
// functions annotated //sw:hotpath — the per-column kernel loops in
// internal/core, the portable fallbacks in internal/vec, and the profile
// builders. A hot-path function may allocate its scratch once, outside
// any loop; inside loops every iteration must be allocation-free, and a
// set of constructs that allocate (or schedule) no matter where they
// appear is banned outright:
//
//   - append (growth reallocates; hot paths index into pre-sized scratch)
//   - map types, map literals, map indexing and map range
//   - calls into package fmt
//   - interface boxing: converting, assigning, passing or returning a
//     concrete value as an interface allocates the box
//   - closures, defer, go, channel operations and select
//
// make, new and composite literals remain legal outside loops — that is
// the one-time scratch setup the kernels rely on — and are reported when
// they appear inside any for/range body.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "check //sw:hotpath functions for steady-state heap allocation",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !HasDirective(FuncDirectives(fn), "hotpath") {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	loops := loopBodies(fn.Body)
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= pos && pos < l.End() {
				return true
			}
		}
		return false
	}
	var sig *types.Signature
	if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
		sig = obj.Signature()
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path: closure allocates and escapes")
			return false
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hot path: defer allocates a frame record")
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hot path: goroutine launch")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "hot path: channel send")
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "hot path: select statement")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "hot path: channel receive")
			}
		case *ast.CompositeLit:
			if isMapType(info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "hot path: map literal")
			} else if inLoop(n.Pos()) {
				pass.Reportf(n.Pos(), "hot path: composite literal allocates in loop")
			}
		case *ast.IndexExpr:
			if isMapType(info.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), "hot path: map access")
			}
		case *ast.RangeStmt:
			if isMapType(info.TypeOf(n.X)) {
				pass.Reportf(n.X.Pos(), "hot path: map range")
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, inLoop(n.Pos()))
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					checkBoxing(pass, rhs, info.TypeOf(n.Lhs[i]))
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if target := info.TypeOf(n.Type); target != nil {
					for _, v := range n.Values {
						checkBoxing(pass, v, target)
					}
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					checkBoxing(pass, res, sig.Results().At(i).Type())
				}
			}
		}
		return true
	})
}

// loopBodies collects the body blocks of every for/range statement in the
// function, so allocation sites can be classified as setup vs steady-state.
func loopBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			out = append(out, n.Body)
		case *ast.RangeStmt:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

func checkHotCall(pass *Pass, call *ast.CallExpr, inLoop bool) {
	info := pass.Info
	if target, ok := IsConversion(info, call); ok {
		if len(call.Args) == 1 {
			checkBoxing(pass, call.Args[0], target)
		}
		return
	}
	switch {
	case IsBuiltin(info, call, "append"):
		pass.Reportf(call.Pos(), "hot path: append may grow and allocate; index into pre-sized scratch")
		return
	case IsBuiltin(info, call, "make"):
		if isMapType(info.TypeOf(call)) {
			pass.Reportf(call.Pos(), "hot path: map allocation")
		} else if inLoop {
			pass.Reportf(call.Pos(), "hot path: make allocates in loop")
		}
		return
	case IsBuiltin(info, call, "new"):
		if inLoop {
			pass.Reportf(call.Pos(), "hot path: new allocates in loop")
		}
		return
	}
	if obj := CalleeObject(info, call); obj != nil {
		if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			pass.Reportf(call.Pos(), "hot path: call into fmt allocates")
			return
		}
	}
	// Boxing through call arguments: a concrete value passed where the
	// callee takes an interface.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, arg, pt)
	}
}

// checkBoxing reports expr when a concrete value meets an interface-typed
// destination: the conversion allocates.
func checkBoxing(pass *Pass, expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	t := pass.Info.TypeOf(expr)
	if t == nil || types.IsInterface(t) {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(expr.Pos(), "hot path: interface boxing of %s", types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
