package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"

	"heterosw/internal/analysis"
	"heterosw/internal/analysis/analysistest"
)

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, fixture("hotalloc", "bad"), analysis.Hotalloc)
	analysistest.Run(t, fixture("hotalloc", "good"), analysis.Hotalloc)
}

func TestUnsafescope(t *testing.T) {
	analysistest.Run(t, fixture("unsafescope", "bad"), analysis.Unsafescope)

	// The compliant fixture plays an allowlisted package.
	defer func(old []string) { analysis.UnsafeAllowlist = old }(analysis.UnsafeAllowlist)
	analysis.UnsafeAllowlist = append(analysis.UnsafeAllowlist, "good")
	analysistest.Run(t, fixture("unsafescope", "good"), analysis.Unsafescope)
}

func TestErrfence(t *testing.T) {
	analysistest.Run(t, fixture("errfence", "bad"), analysis.Errfence)
	analysistest.Run(t, fixture("errfence", "good"), analysis.Errfence)
}

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, fixture("ctxflow", "bad"), analysis.Ctxflow)
	analysistest.Run(t, fixture("ctxflow", "good"), analysis.Ctxflow)
	analysistest.Run(t, fixture("ctxflow", "mainpkg"), analysis.Ctxflow)
}

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, fixture("guardedby", "bad"), analysis.Guardedby)
	analysistest.Run(t, fixture("guardedby", "good"), analysis.Guardedby)
	analysistest.Run(t, fixture("guardedby", "generic"), analysis.Guardedby)
}

// TestParseDirectives pins the annotation grammar: //sw:name, optional
// (arg), written without a space after // so gofmt preserves it.
func TestParseDirectives(t *testing.T) {
	src := `package p

// kernel does things fast.
//
//sw:hotpath
//sw:locked(mu)
//sw:guardedBy( stats )
// plain comment, not a directive
// sw:spaced is not a directive either
func kernel() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	ds := analysis.FuncDirectives(fn)
	if len(ds) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(ds), ds)
	}
	if !analysis.HasDirective(ds, "hotpath") {
		t.Errorf("hotpath directive not found in %+v", ds)
	}
	if got := analysis.DirectiveArgs(ds, "locked"); len(got) != 1 || got[0] != "mu" {
		t.Errorf("locked args = %v, want [mu]", got)
	}
	if got := analysis.DirectiveArgs(ds, "guardedBy"); len(got) != 1 || got[0] != "stats" {
		t.Errorf("guardedBy args = %v, want [stats] (arg whitespace trimmed)", got)
	}
	if analysis.HasDirective(ds, "spaced") {
		t.Errorf("'// sw:' with a space must not parse as a directive")
	}
}
