package analysis_test

import (
	"path/filepath"
	"testing"

	"heterosw/internal/analysis"
)

// TestRepoPassesAllAnalyzers runs every project analyzer over the whole
// module — the same check `swlint ./...` performs in CI — so the ordinary
// test leg also enforces the project invariants: hot-path allocation
// discipline, the unsafe allowlist, sentinel-error fencing, context flow
// and mutex annotations. A finding here is a real defect (or a missing
// annotation on a legitimate exception), not a test artefact.
func TestRepoPassesAllAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(pkgs, analysis.All)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
	}
}
