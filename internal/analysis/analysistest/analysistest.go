// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want expectations, mirroring the x/tools
// harness of the same name.
//
// A fixture is a directory of Go files (conventionally
// testdata/src/<case> under the analyzer's package). Lines that must
// trigger a diagnostic carry a trailing comment:
//
//	m := map[int]int{} // want `hot path: map literal`
//
// The quoted text is a regular expression matched against the diagnostic
// message; several expectations may follow one want on the same line.
// Every expectation must be hit and every diagnostic must be expected —
// silent fixtures prove the analyzer's negative space as strictly as
// firing ones prove its positive space.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"heterosw/internal/analysis"
)

// An expectation is one // want entry: a message regexp anchored to a
// file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads the fixture package in dir, applies a, and reports any
// mismatch between diagnostics and // want expectations as test errors.
// It returns the diagnostics for additional assertions.
func Run(t *testing.T, dir string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				es, err := parseWant(pkg.Fset.Position(c.Pos()), c.Text)
				if err != nil {
					t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), err)
				}
				wants = append(wants, es...)
			}
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
	return diags
}

// claim marks the first unused expectation matching d, if any.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}

// parseWant extracts the expectations from one comment, or nil when the
// comment is not a want.
func parseWant(pos token.Position, text string) ([]*expectation, error) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, nil
	}
	var out []*expectation
	for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
		var lit string
		switch rest[0] {
		case '"':
			end := strings.Index(rest[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("unterminated want string: %s", rest)
			}
			raw := rest[:end+2]
			unq, err := strconv.Unquote(raw)
			if err != nil {
				return nil, fmt.Errorf("bad want string %s: %v", raw, err)
			}
			lit, rest = unq, rest[end+2:]
		case '`':
			end := strings.Index(rest[1:], "`")
			if end < 0 {
				return nil, fmt.Errorf("unterminated want string: %s", rest)
			}
			lit, rest = rest[1:end+1], rest[end+2:]
		default:
			return nil, fmt.Errorf("want expects quoted regexps, got: %s", rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
	}
	return out, nil
}
