package good

import "unsafe"

// view validates length before the reinterpret: silent.
func view(b []byte) string {
	if len(b) < 8 {
		return ""
	}
	return unsafe.String(&b[0], 8)
}

// derived guards count too: the bound is computed from len up front.
func codes(cs []byte) bool {
	n := len(cs)
	if n < 8 {
		return false
	}
	_ = *(*uint64)(unsafe.Pointer(&cs[0]))
	return true
}

// size is compile-time only: exempt from the guard requirement.
func size() uintptr {
	return unsafe.Sizeof(int64(0))
}
