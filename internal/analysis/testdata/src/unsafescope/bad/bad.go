package bad

import "unsafe" // want `unsafe imported outside the allowlist`

// view reinterprets without any len/cap validation in scope.
func view(b []byte) string {
	return unsafe.String(&b[0], 8) // want `unsafe.String without a len/cap bounds validation in view`
}

func peek(p *int64) int64 {
	q := (*int32)(unsafe.Pointer(p)) // want `unsafe.Pointer without a len/cap bounds validation in peek`
	return int64(*q)
}
