package bad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //sw:guardedBy(mu)
	//sw:guardedBy(lock)
	m int // want `guardedBy\(lock\) names no sibling field of the struct`
}

func (c *counter) bump() {
	c.n++ // want `field n \(guardedBy mu\) accessed without mu held in bump`
}

func (c *counter) read() int {
	return c.n // want `field n \(guardedBy mu\) accessed without mu held in read`
}
