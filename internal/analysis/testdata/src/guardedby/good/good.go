package good

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //sw:guardedBy(mu)
}

func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) read() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// add assumes the caller already holds mu.
//
//sw:locked(mu)
func (c *counter) add(d int) {
	c.n += d
}

// reset never touches guarded fields; lock-free is fine.
func (c *counter) reset() *sync.Mutex {
	return &c.mu
}
