// Package generic pins guardedby behaviour on generic structs: methods on
// Box[T] see substituted copies of the field objects, so the analyzer must
// match guarded fields by declaration position, not object identity.
package generic

import "sync"

type Box[T any] struct {
	mu sync.Mutex
	//sw:guardedBy(mu)
	items []T
	//sw:guardedBy(mu)
	gets int64
}

func (b *Box[T]) Len() int {
	return len(b.items) // want `field items \(guardedBy mu\) accessed without mu held in Len`
}

func (b *Box[T]) Get(i int) T {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	return b.items[i]
}

// lenLocked is documented caller-locked, so the unlocked access is fine.
//
//sw:locked(mu)
func (b *Box[T]) lenLocked() int { return len(b.items) }

func (b *Box[T]) Stats() int64 {
	return b.gets // want `field gets \(guardedBy mu\) accessed without mu held in Stats`
}
