package good

import (
	"errors"
	"fmt"
	"net/http"
)

var ErrBadThing = errors.New("bad thing")

func compare(err error) bool {
	return errors.Is(err, ErrBadThing)
}

func wrap(q string) error {
	return fmt.Errorf("query %s: %w", q, ErrBadThing)
}

func describe(err error) string {
	// %v on a non-sentinel error is a deliberate formatting choice.
	return fmt.Sprintf("saw: %v", err)
}

// writeError is the central status mapper: the one place allowed to
// render err.Error() into a response body.
//
//sw:errmapper
func writeError(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}

func handle(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		writeError(w, http.StatusBadRequest, err)
	}
}

func nilChecks(err error) bool {
	// == nil is ordinary control flow, not sentinel identity.
	return err == nil || err != nil
}
