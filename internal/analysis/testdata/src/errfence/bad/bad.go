package bad

import (
	"errors"
	"fmt"
	"net/http"
)

var ErrBadThing = errors.New("bad thing")

func compare(err error) bool {
	return err == ErrBadThing // want `sentinel error compared with ==; use errors.Is`
}

func reject(err error) bool {
	return ErrBadThing != err // want `sentinel error compared with !=; use errors.Is`
}

func classify(err error) int {
	switch err {
	case ErrBadThing: // want `sentinel error matched in switch; use errors.Is`
		return 1
	}
	return 0
}

func wrap(q string) error {
	return fmt.Errorf("query %s: %v", q, ErrBadThing) // want `fmt.Errorf wraps sentinel ErrBadThing without %w`
}

func handle(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest) // want `raw err.Error\(\) in HTTP handler handle`
	}
}
