package main

import "context"

// CLI entry points own their lifetime: package main is exempt wholesale.
func main() {
	_ = context.Background()
}
