package bad

import "context"

func search(q string) error {
	ctx := context.Background() // want `context.Background\(\) in library path`
	return run(ctx, q)
}

func probe(q string) error {
	return run(context.TODO(), q) // want `context.TODO\(\) in library path`
}

func run(ctx context.Context, q string) error {
	_, _ = ctx, q
	return nil
}
