package good

import "context"

// WithDefault mints a root only when the caller passes nil: the
// idiomatic optional-context default is silent.
func WithDefault(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// Serve owns the process lifetime; the annotation declares it a root.
//
//sw:ctxroot
func Serve() context.Context {
	return context.Background()
}

func threaded(ctx context.Context, q string) error {
	_, _ = ctx, q
	return nil
}
