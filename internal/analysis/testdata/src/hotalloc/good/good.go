package good

// kernel allocates its scratch once, outside the loop, then runs
// steady-state allocation-free: the shape hotalloc admits.
//
//sw:hotpath
func kernel(xs []int32) int32 {
	buf := make([]int32, len(xs))
	var best int32
	for i, x := range xs {
		buf[i] = x + buf[max(i-1, 0)]
		if buf[i] > best {
			best = buf[i]
		}
	}
	return best
}

// grow reallocates only under a capacity guard — legal because the make
// sits outside any loop.
//
//sw:hotpath
func grow(buf []int32, n int) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	}
	return buf[:n]
}
