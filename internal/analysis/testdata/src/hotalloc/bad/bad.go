package bad

import "fmt"

func sink(v any) { _ = v }

//sw:hotpath
func kernel(dst []int32, xs []int32) int32 {
	seen := map[int32]bool{} // want `hot path: map literal`
	var best int32
	for _, x := range xs {
		buf := make([]int32, 4) // want `hot path: make allocates in loop`
		buf[0] = x
		dst = append(dst, buf[0]) // want `hot path: append may grow and allocate`
		if seen[x] {              // want `hot path: map access`
			continue
		}
		if x > best {
			best = x
		}
	}
	fmt.Println(best) // want `hot path: call into fmt allocates`
	return best
}

//sw:hotpath
func kernel2(x int32) any {
	defer sink(nil) // want `hot path: defer allocates a frame record`
	f := func() {}  // want `hot path: closure allocates and escapes`
	f()
	sink(x)     // want `hot path: interface boxing of int32`
	v := any(x) // want `hot path: interface boxing of int32`
	_ = v
	return x // want `hot path: interface boxing of int32`
}

// unannotated: the analyzer leaves ordinary code alone.
func slowpath(xs []int32) map[int32]bool {
	seen := make(map[int32]bool, len(xs))
	for _, x := range xs {
		seen[x] = true
	}
	return seen
}
