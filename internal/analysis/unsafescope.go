package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// UnsafeAllowlist names the packages permitted to import unsafe. The
// zero-copy reinterprets over mmapped .swdb images live in exactly two
// places — the alphabet code views and the index blob decoder — and every
// other package must stay in the safe subset. Tests may extend this list
// to admit fixture packages.
var UnsafeAllowlist = []string{
	"heterosw/internal/alphabet",
	"heterosw/internal/seqdb/index",
}

// Unsafescope confines unsafe to the allowlisted packages and requires
// every reinterpret (unsafe.Pointer conversions, unsafe.String/Slice/
// SliceData/StringData/Add) to share a function with a length or capacity
// validation — a len() or cap() call the bounds check is derived from.
// Compile-time queries (Sizeof, Alignof, Offsetof) are exempt.
var Unsafescope = &Analyzer{
	Name: "unsafescope",
	Doc:  "confine unsafe to allowlisted packages and guarded functions",
	Run:  runUnsafescope,
}

func runUnsafescope(pass *Pass) error {
	allowed := false
	for _, p := range UnsafeAllowlist {
		if pass.Pkg.Path() == p {
			allowed = true
			break
		}
	}
	for _, file := range pass.Files {
		for _, spec := range file.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil && path == "unsafe" && !allowed {
				pass.Reportf(spec.Pos(), "unsafe imported outside the allowlist (%v)", UnsafeAllowlist)
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkUnsafeFunc(pass, fn)
		}
	}
	return nil
}

// reinterpretOps are the unsafe operations that reinterpret memory at
// run time and therefore demand a same-function bounds validation.
var reinterpretOps = map[string]bool{
	"Pointer":    true,
	"String":     true,
	"StringData": true,
	"Slice":      true,
	"SliceData":  true,
	"Add":        true,
}

func checkUnsafeFunc(pass *Pass, fn *ast.FuncDecl) {
	var uses []*ast.SelectorExpr
	guarded := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isUnsafeSelector(pass.Info, n) && reinterpretOps[n.Sel.Name] {
				uses = append(uses, n)
			}
		case *ast.CallExpr:
			if IsBuiltin(pass.Info, n, "len") || IsBuiltin(pass.Info, n, "cap") {
				guarded = true
			}
		}
		return true
	})
	if guarded {
		return
	}
	for _, sel := range uses {
		pass.Reportf(sel.Pos(), "unsafe.%s without a len/cap bounds validation in %s", sel.Sel.Name, fn.Name.Name)
	}
}

// isUnsafeSelector reports whether sel is a reference through the unsafe
// package (unsafe.Pointer, unsafe.String, ...).
func isUnsafeSelector(info *types.Info, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "unsafe"
}
