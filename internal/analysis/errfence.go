package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Errfence polices the sentinel-error taxonomy the distributed retry
// policy depends on being honest. Sentinels are package-level error
// variables named Err*; the analyzer reports:
//
//   - == or != against a sentinel (wrapped errors make identity false;
//     use errors.Is)
//   - switch cases matching a sentinel on an error-typed tag
//   - fmt.Errorf calls that include a sentinel argument but whose
//     constant format string has no %w verb — the wrap chain breaks and
//     errors.Is stops seeing the sentinel downstream
//   - err.Error() rendered inside an HTTP handler (a function taking an
//     http.ResponseWriter) unless the function carries //sw:errmapper —
//     handlers must route through the central status mapper so bodies
//     and status codes stay consistent
var Errfence = &Analyzer{
	Name: "errfence",
	Doc:  "enforce %w wrapping, errors.Is comparison and central HTTP error mapping for Err* sentinels",
	Run:  runErrfence,
}

func runErrfence(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil && takesResponseWriter(pass.Info, fn) &&
				!HasDirective(FuncDirectives(fn), "errmapper") {
				checkHandlerErrors(pass, fn)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNilExpr(pass.Info, n.X) || isNilExpr(pass.Info, n.Y) {
					return true
				}
				if sentinelObject(pass.Info, n.X) != nil || sentinelObject(pass.Info, n.Y) != nil {
					pass.Reportf(n.OpPos, "sentinel error compared with %s; use errors.Is", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !IsErrorType(pass.Info.TypeOf(n.Tag)) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if sentinelObject(pass.Info, e) != nil {
							pass.Reportf(e.Pos(), "sentinel error matched in switch; use errors.Is")
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelObject resolves expr to a package-level error variable named
// Err*, or nil. Both local and imported sentinels count.
func sentinelObject(info *types.Info, expr ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || !strings.HasPrefix(obj.Name(), "Err") || !IsErrorType(obj.Type()) {
		return nil
	}
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	return obj
}

func isNilExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.IsNil()
}

// checkErrorfWrap reports fmt.Errorf calls that pass a sentinel without a
// %w verb in a constant format string.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !IsPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if obj := sentinelObject(pass.Info, arg); obj != nil {
			pass.Reportf(call.Pos(), "fmt.Errorf wraps sentinel %s without %%w; errors.Is will not see it", obj.Name())
			return
		}
	}
}

// takesResponseWriter reports whether fn has an http.ResponseWriter
// parameter — the shape of an HTTP handler.
func takesResponseWriter(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if IsNamedType(info.TypeOf(field.Type), "net/http", "ResponseWriter") {
			return true
		}
	}
	return false
}

// checkHandlerErrors reports err.Error() calls inside an HTTP handler
// that is not the annotated error mapper.
func checkHandlerErrors(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
			return true
		}
		if t := pass.Info.TypeOf(sel.X); t != nil && IsErrorType(t) {
			pass.Reportf(call.Pos(), "raw err.Error() in HTTP handler %s; route through the //sw:errmapper status mapper", fn.Name.Name)
		}
		return true
	})
}
