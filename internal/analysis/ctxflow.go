package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxflow keeps request contexts flowing: hedging, per-attempt timeouts
// and traceback cancellation all die silently when a layer mints a fresh
// context.Background() instead of threading the caller's. In library
// packages (everything except package main) every context.Background()
// or context.TODO() call is reported unless:
//
//   - the enclosing function is annotated //sw:ctxroot — a documented
//     process-lifetime root (scheduler construction, default streams) or
//     a context-free convenience wrapper whose doc says so, or
//   - the call sits inside an `if ctx == nil { ... }` default for a
//     context parameter the function already accepts.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/TODO in request-scoped library paths",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if HasDirective(FuncDirectives(fn), "ctxroot") {
				continue
			}
			checkCtxFunc(pass, fn)
		}
	}
	return nil
}

func checkCtxFunc(pass *Pass, fn *ast.FuncDecl) {
	defaults := nilDefaultRanges(pass.Info, fn)
	exempt := func(pos token.Pos) bool {
		for _, r := range defaults {
			if r.Pos() <= pos && pos < r.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range [...]string{"Background", "TODO"} {
			if IsPkgFunc(pass.Info, call, "context", name) && !exempt(call.Pos()) {
				pass.Reportf(call.Pos(), "context.%s() in library path; thread the caller's context (or annotate //sw:ctxroot)", name)
			}
		}
		return true
	})
}

// nilDefaultRanges finds `if ctx == nil { ... }` bodies where ctx is a
// context.Context-typed variable: the idiomatic optional-context default,
// where minting Background is the point.
func nilDefaultRanges(info *types.Info, fn *ast.FuncDecl) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		x, y := cond.X, cond.Y
		if !isNilExpr(info, y) {
			x, y = y, x
		}
		if isNilExpr(info, y) && isContextExpr(info, x) {
			out = append(out, ifs.Body)
		}
		return true
	})
	return out
}

func isContextExpr(info *types.Info, expr ast.Expr) bool {
	return IsNamedType(info.TypeOf(expr), "context", "Context")
}
