package analysis

// All is the full project analyzer suite, in the order swlint runs it.
var All = []*Analyzer{
	Hotalloc,
	Unsafescope,
	Errfence,
	Ctxflow,
	Guardedby,
}
