package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Guardedby checks mutex discipline on annotated struct fields. A field
// declared with a //sw:guardedBy(mu) comment (doc or trailing) may only
// be read or written inside a function that demonstrably holds mu:
// either the function body contains a mu.Lock()/mu.RLock() call, or the
// function is annotated //sw:locked(mu), declaring that its callers hold
// the lock. The check is function-granular — it proves the lock is taken
// somewhere in the accessing function, not that it brackets the access —
// which is exactly the invariant the dispatcher totals, scheduler stats
// and cache counters rely on.
//
// Annotations naming a mutex that is not a sibling field of the struct
// are themselves reported, so a typo cannot silently disable the check.
var Guardedby = &Analyzer{
	Name: "guardedby",
	Doc:  "check //sw:guardedBy(mu) fields are only accessed with mu held",
	Run:  runGuardedby,
}

func runGuardedby(pass *Pass) error {
	// Pass 1: collect annotated fields and validate their mutex names.
	// Guards are keyed by the field's declaration position, not object
	// identity: methods on generic types see substituted copies of the
	// struct's field objects (fresh types.Var values per method
	// declaration), and the declaration position is the one identity that
	// survives the substitution.
	guards := map[token.Pos]string{} // field declaration pos -> mutex field name
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					siblings[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				ds := ParseDirectives(field.Doc, field.Comment)
				for _, mu := range DirectiveArgs(ds, "guardedBy") {
					if !siblings[mu] {
						pass.Reportf(field.Pos(), "guardedBy(%s) names no sibling field of the struct", mu)
						continue
					}
					for _, name := range field.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							guards[obj.Pos()] = mu
						}
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return nil
	}

	// Pass 2: every selector access to a guarded field must sit in a
	// function that locks (or declares it holds) the named mutex.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := heldMutexes(pass.Info, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !obj.IsField() {
					return true
				}
				mu, guarded := guards[obj.Pos()]
				if guarded && !held[mu] {
					pass.Reportf(sel.Sel.Pos(), "field %s (guardedBy %s) accessed without %s held in %s", sel.Sel.Name, mu, mu, fn.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}

// heldMutexes reports the mutex names fn can be assumed to hold: those it
// locks itself (x.mu.Lock / x.mu.RLock anywhere in the body) plus those
// its //sw:locked(mu) annotation declares the caller holds.
func heldMutexes(info *types.Info, fn *ast.FuncDecl) map[string]bool {
	held := map[string]bool{}
	for _, mu := range DirectiveArgs(FuncDirectives(fn), "locked") {
		held[mu] = true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			held[recv.Name] = true
		case *ast.SelectorExpr:
			held[recv.Sel.Name] = true
		}
		return true
	})
	return held
}
