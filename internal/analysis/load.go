package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=Dir,ImportPath,Name,Export,GoFiles,Standard,DepOnly"

// Load expands the package patterns (e.g. "./...") in dir, type-checks
// every matched package from source and returns them ready for analysis.
//
// The loader leans on the go tool rather than re-implementing build-list
// semantics: one `go list -export -deps` invocation resolves the patterns,
// compiles the dependency closure and reports each dependency's export
// data, against which the matched packages are type-checked. Only compiled
// non-test Go files are analyzed — the analyzers enforce production
// disciplines — and the whole pipeline works offline, from the module and
// the local build cache alone.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", listFields}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := check(fset, imp, p.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		pkg.Dir = p.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses every .go file directly under dir as one package and
// type-checks it against the standard library — the fixture loader behind
// the analysistest harness. Fixture packages live under testdata (invisible
// to the ordinary build) and may import standard-library packages only.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		args := append([]string{"list", "-export", "-deps", listFields}, sortedKeys(imports)...)
		listed, err := goList(dir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	pkg, err := check(fset, exportImporter(fset, exports), files[0].Name.Name, files)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", dir, err)
	}
	pkg.Dir = dir
	return pkg, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// exportImporter builds a types.Importer that resolves imports from the
// export-data files `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// check type-checks one package's files.
func check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
