package swalign

import (
	"fmt"
	"strings"

	"heterosw/internal/alphabet"
)

// Op is one column class of a local alignment.
type Op byte

const (
	// OpMatch aligns a residue of A against a residue of B (match or
	// mismatch).
	OpMatch Op = 'M'
	// OpDeleteB aligns a gap in A against a residue of B.
	OpDeleteB Op = 'D'
	// OpInsertA aligns a residue of A against a gap in B.
	OpInsertA Op = 'I'
)

// Alignment is the result of a full Smith-Waterman alignment with
// backtracking (step 4 of Section II): the highest-scoring pair of local
// segments and the edit path between them.
type Alignment struct {
	Score int
	// AStart/AEnd delimit the aligned segment of A as a half-open
	// residue range [AStart, AEnd); similarly BStart/BEnd for B.
	AStart, AEnd int
	BStart, BEnd int
	// Ops is the alignment path from head to tail.
	Ops []Op
	// Identities counts exactly-matching residue columns.
	Identities int

	a, b []alphabet.Code
}

// Align computes the optimal local alignment between a and b using the full
// O(M*N) matrix of Section II and recovers the alignment by backtracking
// from the global maximum (Eq. 6) to the nearest zero cell. Ties are broken
// preferring diagonal moves, then gaps in B, matching common tool
// behaviour. Align panics on invalid scoring; it returns a zero-score,
// empty alignment when either sequence is empty or no positive-scoring pair
// exists.
func Align(a, b []alphabet.Code, sc Scoring) *Alignment {
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	out := &Alignment{a: a, b: b}
	m, n := len(a), len(b)
	if m == 0 || n == 0 {
		return out
	}
	qr := sc.GapOpen + sc.GapExtend
	r := sc.GapExtend

	// Full matrices, row-major, (m+1) x (n+1). Initialisation per Eq. 1.
	stride := n + 1
	H := make([]int32, (m+1)*stride)
	E := make([]int32, (m+1)*stride)
	F := make([]int32, (m+1)*stride)
	for j := 0; j <= n; j++ {
		E[j], F[j] = negInf, negInf
	}
	bestI, bestJ, best := 0, 0, int32(0)
	for i := 1; i <= m; i++ {
		row := sc.Matrix.Row(a[i-1])
		base := i * stride
		prev := base - stride
		E[base], F[base] = negInf, negInf
		for j := 1; j <= n; j++ {
			e := E[base+j-1] - int32(r)
			if v := H[base+j-1] - int32(qr); v > e {
				e = v
			}
			E[base+j] = e
			f := F[prev+j] - int32(r)
			if v := H[prev+j] - int32(qr); v > f {
				f = v
			}
			F[base+j] = f
			h := H[prev+j-1] + int32(row[b[j-1]])
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			if h < 0 {
				h = 0
			}
			H[base+j] = h
			if h > best {
				best, bestI, bestJ = h, i, j
			}
		}
	}
	out.Score = int(best)
	if best == 0 {
		return out
	}

	// Backtracking state machine over (H, E, F).
	type state byte
	const (
		inH state = iota
		inE
		inF
	)
	var ops []Op
	i, j, st := bestI, bestJ, inH
	for {
		idx := i*stride + j
		switch st {
		case inH:
			h := H[idx]
			if h == 0 {
				goto done
			}
			switch {
			case i > 0 && j > 0 && h == H[idx-stride-1]+int32(sc.Matrix.Score(a[i-1], b[j-1])):
				ops = append(ops, OpMatch)
				if a[i-1] == b[j-1] {
					out.Identities++
				}
				i, j = i-1, j-1
			case h == E[idx]:
				st = inE
			case h == F[idx]:
				st = inF
			default:
				panic(fmt.Sprintf("swalign: inconsistent H cell at (%d,%d)", i, j))
			}
		case inE: // gap consuming b[j-1]
			ops = append(ops, OpDeleteB)
			e := E[idx]
			prevH := H[idx-1] - int32(qr)
			j--
			if e == prevH {
				st = inH
			} else if e != E[idx-1]-int32(r) {
				panic(fmt.Sprintf("swalign: inconsistent E cell at (%d,%d)", i, j+1))
			}
		case inF: // gap consuming a[i-1]
			ops = append(ops, OpInsertA)
			f := F[idx]
			prevH := H[idx-stride] - int32(qr)
			i--
			if f == prevH {
				st = inH
			} else if f != F[idx-stride]-int32(r) {
				panic(fmt.Sprintf("swalign: inconsistent F cell at (%d,%d)", i+1, j))
			}
		}
	}
done:
	// ops were collected tail-to-head; reverse.
	for l, rr := 0, len(ops)-1; l < rr; l, rr = l+1, rr-1 {
		ops[l], ops[rr] = ops[rr], ops[l]
	}
	out.Ops = ops
	out.AStart, out.AEnd = i, bestI
	out.BStart, out.BEnd = j, bestJ
	return out
}

// CIGAR renders the op path in run-length CIGAR notation, e.g. "12M2D5M".
func (al *Alignment) CIGAR() string {
	if len(al.Ops) == 0 {
		return "*"
	}
	var sb strings.Builder
	run, cur := 0, al.Ops[0]
	flush := func() { fmt.Fprintf(&sb, "%d%c", run, cur) }
	for _, op := range al.Ops {
		if op == cur {
			run++
			continue
		}
		flush()
		run, cur = 1, op
	}
	flush()
	return sb.String()
}

// Format renders a three-line human-readable alignment (query, midline,
// subject) wrapped at width columns (60 when width <= 0).
func (al *Alignment) Format(width int) string {
	if len(al.Ops) == 0 {
		return "(no alignment)"
	}
	if width <= 0 {
		width = 60
	}
	var qRow, mRow, sRow []byte
	i, j := al.AStart, al.BStart
	for _, op := range al.Ops {
		switch op {
		case OpMatch:
			qa, sb := al.a[i], al.b[j]
			qRow = append(qRow, alphabet.Decode(qa))
			sRow = append(sRow, alphabet.Decode(sb))
			if qa == sb {
				mRow = append(mRow, '|')
			} else {
				mRow = append(mRow, ' ')
			}
			i++
			j++
		case OpInsertA:
			qRow = append(qRow, alphabet.Decode(al.a[i]))
			sRow = append(sRow, '-')
			mRow = append(mRow, ' ')
			i++
		case OpDeleteB:
			qRow = append(qRow, '-')
			sRow = append(sRow, alphabet.Decode(al.b[j]))
			mRow = append(mRow, ' ')
			j++
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "score=%d identities=%d/%d a[%d:%d] b[%d:%d]\n",
		al.Score, al.Identities, len(al.Ops), al.AStart, al.AEnd, al.BStart, al.BEnd)
	for off := 0; off < len(qRow); off += width {
		end := off + width
		if end > len(qRow) {
			end = len(qRow)
		}
		fmt.Fprintf(&sb, "A: %s\n   %s\nB: %s\n", qRow[off:end], mRow[off:end], sRow[off:end])
	}
	return sb.String()
}
