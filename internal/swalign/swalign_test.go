package swalign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"heterosw/internal/alphabet"
	"heterosw/internal/submat"
)

var testScoring = Scoring{Matrix: submat.BLOSUM62, GapOpen: 10, GapExtend: 2}

// naiveScore evaluates Eqs. 1-6 of the paper literally: C and F are
// computed as explicit maxima over all gap lengths k. It is O(M*N*(M+N)),
// usable only on small inputs, and is the independent oracle for both the
// linear-space Score and the Gotoh recurrences.
func naiveScore(a, b []alphabet.Code, sc Scoring) int {
	m, n := len(a), len(b)
	H := make([][]int, m+1)
	for i := range H {
		H[i] = make([]int, n+1)
	}
	g := func(x int) int { return sc.GapOpen + sc.GapExtend*x }
	best := 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			h := 0
			if v := H[i-1][j-1] + sc.Matrix.Score(a[i-1], b[j-1]); v > h {
				h = v
			}
			for k := 1; k <= i; k++ { // C_ij, Eq. 3
				if v := H[i-k][j] - g(k); v > h {
					h = v
				}
			}
			for l := 1; l <= j; l++ { // F_ij, Eq. 4
				if v := H[i][j-l] - g(l); v > h {
					h = v
				}
			}
			H[i][j] = h
			if h > best {
				best = h
			}
		}
	}
	return best
}

func randSeq(rng *rand.Rand, n int) []alphabet.Code {
	s := make([]alphabet.Code, n)
	for i := range s {
		s[i] = alphabet.Code(rng.Intn(20)) // standard residues
	}
	return s
}

func TestScoreMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		a := randSeq(rng, rng.Intn(40)+1)
		b := randSeq(rng, rng.Intn(40)+1)
		want := naiveScore(a, b, testScoring)
		got := Score(a, b, testScoring)
		if got != want {
			t.Fatalf("trial %d: Score=%d naive=%d\na=%s\nb=%s", trial, got, want,
				alphabet.DecodeAll(a), alphabet.DecodeAll(b))
		}
	}
}

func TestScoreMatchesNaiveOtherPenalties(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	scorings := []Scoring{
		{Matrix: submat.BLOSUM62, GapOpen: 0, GapExtend: 1},
		{Matrix: submat.BLOSUM62, GapOpen: 5, GapExtend: 0},
		{Matrix: submat.BLOSUM50, GapOpen: 12, GapExtend: 2},
		{Matrix: submat.PAM250, GapOpen: 14, GapExtend: 2},
	}
	for _, sc := range scorings {
		for trial := 0; trial < 60; trial++ {
			a := randSeq(rng, rng.Intn(30)+1)
			b := randSeq(rng, rng.Intn(30)+1)
			want := naiveScore(a, b, sc)
			got := Score(a, b, sc)
			if got != want {
				t.Fatalf("%s q=%d r=%d: Score=%d naive=%d\na=%s\nb=%s",
					sc.Matrix.Name(), sc.GapOpen, sc.GapExtend, got, want,
					alphabet.DecodeAll(a), alphabet.DecodeAll(b))
			}
		}
	}
}

func TestScoreEdgeCases(t *testing.T) {
	a := randSeq(rand.New(rand.NewSource(1)), 10)
	if got := Score(nil, a, testScoring); got != 0 {
		t.Errorf("Score(nil, a) = %d", got)
	}
	if got := Score(a, nil, testScoring); got != 0 {
		t.Errorf("Score(a, nil) = %d", got)
	}
	// Single residues: identical residues score the diagonal value.
	w := []alphabet.Code{alphabet.MustEncode('W')}
	if got := Score(w, w, testScoring); got != 11 {
		t.Errorf("Score(W,W) = %d, want 11", got)
	}
	// All-mismatch input with strongly negative scores gives 0.
	c := []alphabet.Code{alphabet.MustEncode('C'), alphabet.MustEncode('C')}
	g := []alphabet.Code{alphabet.MustEncode('G'), alphabet.MustEncode('G')}
	if got := Score(c, g, testScoring); got != 0 {
		t.Errorf("Score(CC,GG) = %d, want 0", got)
	}
}

func TestScoreSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	f := func(seedA, seedB uint16) bool {
		a := randSeq(rng, int(seedA%50)+1)
		b := randSeq(rng, int(seedB%50)+1)
		return Score(a, b, testScoring) == Score(b, a, testScoring)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSelfAlignmentAtLeastDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 50; trial++ {
		a := randSeq(rng, rng.Intn(80)+1)
		diagSum := 0
		for _, c := range a {
			diagSum += testScoring.Matrix.Score(c, c)
		}
		if got := Score(a, a, testScoring); got < diagSum {
			t.Fatalf("self score %d < diagonal sum %d", got, diagSum)
		}
	}
}

// scoreFromOps replays an alignment path and recomputes its score with the
// affine gap model, validating the backtracking output independently.
func scoreFromOps(t *testing.T, al *Alignment, a, b []alphabet.Code, sc Scoring) int {
	t.Helper()
	i, j := al.AStart, al.BStart
	total := 0
	idx := 0
	for idx < len(al.Ops) {
		op := al.Ops[idx]
		run := 0
		for idx < len(al.Ops) && al.Ops[idx] == op {
			run++
			idx++
		}
		switch op {
		case OpMatch:
			for k := 0; k < run; k++ {
				total += sc.Matrix.Score(a[i], b[j])
				i++
				j++
			}
		case OpInsertA:
			total -= sc.GapOpen + sc.GapExtend*run
			i += run
		case OpDeleteB:
			total -= sc.GapOpen + sc.GapExtend*run
			j += run
		}
	}
	if i != al.AEnd || j != al.BEnd {
		t.Fatalf("ops end at (%d,%d), header says (%d,%d)", i, j, al.AEnd, al.BEnd)
	}
	return total
}

func TestAlignMatchesScoreAndReplays(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 200; trial++ {
		a := randSeq(rng, rng.Intn(60)+1)
		b := randSeq(rng, rng.Intn(60)+1)
		al := Align(a, b, testScoring)
		want := Score(a, b, testScoring)
		if al.Score != want {
			t.Fatalf("Align score %d != Score %d", al.Score, want)
		}
		if al.Score == 0 {
			continue
		}
		if got := scoreFromOps(t, al, a, b, testScoring); got != al.Score {
			t.Fatalf("replayed score %d != %d (cigar %s)", got, al.Score, al.CIGAR())
		}
	}
}

func TestAlignKnownExample(t *testing.T) {
	// Identical sequences align end to end along the diagonal.
	a := alphabet.EncodeAll([]byte("MKWVLA"))
	al := Align(a, a, testScoring)
	wantScore := 0
	for _, c := range a {
		wantScore += testScoring.Matrix.Score(c, c)
	}
	if al.Score != wantScore {
		t.Fatalf("self align score %d, want %d", al.Score, wantScore)
	}
	if al.Identities != len(a) {
		t.Fatalf("identities %d, want %d", al.Identities, len(a))
	}
	if al.AStart != 0 || al.AEnd != len(a) || al.BStart != 0 || al.BEnd != len(a) {
		t.Fatalf("bad coordinates %+v", al)
	}
	if al.CIGAR() != "6M" {
		t.Fatalf("CIGAR = %q, want 6M", al.CIGAR())
	}
}

func TestAlignGapExample(t *testing.T) {
	// b is a with a 2-residue deletion; high-identity flanks force a gap.
	a := alphabet.EncodeAll([]byte("MKWVLAHHWWKY"))
	b := append(append([]alphabet.Code{}, a[:5]...), a[7:]...)
	al := Align(a, b, testScoring)
	if al.Score != Score(a, b, testScoring) {
		t.Fatalf("score mismatch")
	}
	sawGap := false
	for _, op := range al.Ops {
		if op == OpInsertA {
			sawGap = true
		}
	}
	if !sawGap {
		t.Fatalf("expected an insertion gap, got CIGAR %s", al.CIGAR())
	}
}

func TestAlignEmpty(t *testing.T) {
	al := Align(nil, nil, testScoring)
	if al.Score != 0 || len(al.Ops) != 0 {
		t.Fatalf("empty align: %+v", al)
	}
	if al.CIGAR() != "*" {
		t.Fatalf("CIGAR = %q", al.CIGAR())
	}
	if al.Format(0) != "(no alignment)" {
		t.Fatalf("Format = %q", al.Format(0))
	}
}

func TestFormatContainsRows(t *testing.T) {
	a := alphabet.EncodeAll([]byte("MKWVLA"))
	al := Align(a, a, testScoring)
	out := al.Format(4)
	if len(out) == 0 || out[0] != 's' {
		t.Fatalf("Format output unexpected: %q", out)
	}
}

func TestBandedEqualsFullWithWideBand(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 150; trial++ {
		a := randSeq(rng, rng.Intn(50)+1)
		b := randSeq(rng, rng.Intn(50)+1)
		want := Score(a, b, testScoring)
		got := ScoreBanded(a, b, testScoring, 0, len(a)+len(b))
		if got != want {
			t.Fatalf("wide band %d != full %d\na=%s\nb=%s", got, want,
				alphabet.DecodeAll(a), alphabet.DecodeAll(b))
		}
	}
}

func TestBandedIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 200; trial++ {
		a := randSeq(rng, rng.Intn(50)+1)
		b := randSeq(rng, rng.Intn(50)+1)
		full := Score(a, b, testScoring)
		for _, band := range []int{0, 1, 3, 8} {
			diag := rng.Intn(2*len(b)+1) - len(b)
			got := ScoreBanded(a, b, testScoring, diag, band)
			if got > full || got < 0 {
				t.Fatalf("banded score %d out of [0, %d] (diag %d band %d)", got, full, diag, band)
			}
		}
	}
}

func TestBandedFindsOnDiagonalMatch(t *testing.T) {
	// A perfect match on the main diagonal must be found even with band 0.
	a := alphabet.EncodeAll([]byte("WWWW"))
	got := ScoreBanded(a, a, testScoring, 0, 0)
	if got != 44 {
		t.Fatalf("band-0 self score %d, want 44", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Scoring{}).Validate(); err == nil {
		t.Error("nil matrix accepted")
	}
	if err := (Scoring{Matrix: submat.BLOSUM62, GapOpen: -1}).Validate(); err == nil {
		t.Error("negative gap open accepted")
	}
	if err := testScoring.Validate(); err != nil {
		t.Errorf("valid scoring rejected: %v", err)
	}
}

func TestCells(t *testing.T) {
	a := make([]alphabet.Code, 123)
	b := make([]alphabet.Code, 77)
	if got := Cells(a, b); got != 123*77 {
		t.Fatalf("Cells = %d", got)
	}
}
