// Package swalign implements the reference Smith-Waterman local alignment
// of Section II of the paper: the full dynamic-programming matrix with
// affine gap penalties (Gotoh's formulation of Eqs. 2-5), the maximum
// similarity score (Eq. 6), and the backtracking step that recovers the
// highest-scoring pair of segments.
//
// This package is deliberately simple and allocation-heavy: it is the
// oracle against which every optimised kernel in internal/core is verified,
// and the engine behind the pairwise-alignment public API. The database
// search path never uses it.
//
// Gap model: a gap of length x costs g(x) = q + r*x (Eq. 5), with q the
// open penalty and r the extension penalty, both >= 0. The paper's C
// (column gap, consuming query residues) is F here; the paper's F (row gap,
// consuming database residues) is E here, matching the usual Gotoh naming.
package swalign

import (
	"fmt"

	"heterosw/internal/alphabet"
	"heterosw/internal/submat"
)

// Scoring bundles the substitution matrix and affine gap penalties.
type Scoring struct {
	Matrix    *submat.Matrix
	GapOpen   int // q in Eq. 5; cost of opening a gap (>= 0)
	GapExtend int // r in Eq. 5; cost per gapped residue (>= 0)
}

// Validate reports whether the scoring parameters are usable.
func (s Scoring) Validate() error {
	if s.Matrix == nil {
		return fmt.Errorf("swalign: nil substitution matrix")
	}
	if s.GapOpen < 0 || s.GapExtend < 0 {
		return fmt.Errorf("swalign: negative gap penalties q=%d r=%d", s.GapOpen, s.GapExtend)
	}
	return nil
}

// negInf is a safely-small score: adding one substitution plus one gap step
// cannot underflow int32 arithmetic used by callers.
const negInf = -(1 << 29)

// Score computes the optimal local alignment score between sequences a and
// b in O(len(b)) space and O(len(a)*len(b)) time. It is the linear-space
// variant used to verify kernels on inputs too large for the full matrix.
func Score(a, b []alphabet.Code, sc Scoring) int {
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	qr := sc.GapOpen + sc.GapExtend
	r := sc.GapExtend

	// h[j] holds H[i-1][j] entering row i (and H[i][j] after the inner loop
	// passes column j); f[j] holds F[*][j] for the column-direction gaps.
	// E depends only on the current row's previous column, so it is a
	// scalar carried along the row.
	h := make([]int, len(b)+1)
	f := make([]int, len(b)+1)
	for j := range f {
		f[j] = negInf
	}
	best := 0
	for i := 1; i <= len(a); i++ {
		row := sc.Matrix.Row(a[i-1])
		diag := h[0] // H[i-1][0] == 0
		h[0] = 0
		e := negInf
		for j := 1; j <= len(b); j++ {
			up := h[j] // H[i-1][j]
			// E: gap consuming b (row gap, the paper's F).
			// E[i][j] = max(E[i][j-1], H[i][j-1]-q) - r.
			e -= r
			if v := h[j-1] - qr; v > e {
				e = v
			}
			// F: gap consuming a (column gap, the paper's C).
			// F[i][j] = max(F[i-1][j], H[i-1][j]-q) - r.
			fij := f[j] - r
			if v := up - qr; v > fij {
				fij = v
			}
			f[j] = fij
			// H per Eq. 2.
			hij := diag + int(row[b[j-1]])
			if e > hij {
				hij = e
			}
			if fij > hij {
				hij = fij
			}
			if hij < 0 {
				hij = 0
			}
			diag = up
			h[j] = hij
			if hij > best {
				best = hij
			}
		}
	}
	return best
}

// Cells returns the number of DP cells a Score/Align call evaluates, the
// quantity underlying the GCUPS metric.
func Cells(a, b []alphabet.Code) int64 {
	return int64(len(a)) * int64(len(b))
}
