package swalign

import "heterosw/internal/alphabet"

// ScoreBanded computes a banded local-alignment score: only cells with
// |(j - i) - diag| <= band are evaluated, where i indexes a and j indexes
// b. It is the rescoring primitive for seed-and-extend pipelines (the
// BLAST-style workflow motivating the paper's introduction): a k-mer seed
// fixes the diagonal and the band bounds the explored gap budget.
//
// The returned score is a lower bound on the unbanded Score; they are equal
// whenever the optimal alignment stays within the band.
func ScoreBanded(a, b []alphabet.Code, sc Scoring, diag, band int) int {
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	if len(a) == 0 || len(b) == 0 || band < 0 {
		return 0
	}
	qr := sc.GapOpen + sc.GapExtend
	r := sc.GapExtend

	// Band in j for row i: [i+diag-band, i+diag+band] clipped to [1, n].
	n := len(b)
	h := make([]int, n+2) // h[j] = H[i-1][j]
	f := make([]int, n+2)
	for j := range f {
		f[j] = negInf
	}
	best := 0
	prevLo, prevHi := 1, 0 // empty previous band (row 0 is all zero anyway)
	for i := 1; i <= len(a); i++ {
		lo := i + diag - band
		hi := i + diag + band
		if lo < 1 {
			lo = 1
		}
		if hi > n {
			hi = n
		}
		if lo > hi {
			continue
		}
		row := sc.Matrix.Row(a[i-1])
		// Cells of the previous row outside [prevLo, prevHi] were never
		// written; they are implicitly zero at row 0 and "absent" later.
		// Clear h/f on the freshly-entered right edge so stale values from
		// two rows back are not read.
		for j := prevHi + 1; j <= hi; j++ {
			h[j] = 0
			f[j] = negInf
		}
		// Out-of-band neighbours act as score-0 / gap-closed boundary
		// cells: legal for local alignment (H >= 0 everywhere), so the
		// banded score is a lower bound on the unbanded one.
		diagH := 0
		if lo-1 >= prevLo && lo-1 <= prevHi {
			diagH = h[lo-1]
		}
		e := negInf
		hLeft := 0 // H[i][lo-1]: outside the band, treated as 0 boundary
		for j := lo; j <= hi; j++ {
			up := 0
			if j >= prevLo && j <= prevHi {
				up = h[j]
			}
			fj := negInf
			if j >= prevLo && j <= prevHi {
				fj = f[j]
			}
			e -= r
			if v := hLeft - qr; v > e {
				e = v
			}
			fij := fj - r
			if v := up - qr; v > fij {
				fij = v
			}
			f[j] = fij
			hij := diagH + int(row[b[j-1]])
			if e > hij {
				hij = e
			}
			if fij > hij {
				hij = fij
			}
			if hij < 0 {
				hij = 0
			}
			diagH = up
			hLeft = hij
			h[j] = hij
			if hij > best {
				best = hij
			}
		}
		prevLo, prevHi = lo, hi
	}
	return best
}
