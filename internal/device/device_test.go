package device

import (
	"testing"
)

func classes() []KernelClass {
	return []KernelClass{
		{Scalar: true},
		{Guided: true, QueryProfile: true},
		{Guided: true},
		{QueryProfile: true},
		{}, // intrinsic SP
		{Blocked: true},
		{Blocked: true, QueryProfile: true},
	}
}

func TestBuiltinsValidate(t *testing.T) {
	for name, m := range Devices() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.Short != name {
			t.Errorf("map key %q != Short %q", name, m.Short)
		}
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := Xeon()
	m.SMT = []float64{1}
	if err := m.Validate(); err == nil {
		t.Error("short SMT curve accepted")
	}
	m = Phi()
	m.PCIeBytesPerSec = 0
	if err := m.Validate(); err == nil {
		t.Error("offload device without PCIe accepted")
	}
	m = Xeon()
	m.Cores = 0
	if err := m.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestThreadRateMonotoneAggregate(t *testing.T) {
	for _, m := range []*Model{Xeon(), Phi()} {
		prev := 0.0
		for threads := 1; threads <= m.MaxThreads(); threads++ {
			agg := m.ThreadRate(threads) * float64(threads)
			if agg < prev*0.999 {
				t.Fatalf("%s: aggregate rate drops at %d threads: %v -> %v", m.Short, threads, prev, agg)
			}
			prev = agg
		}
	}
}

func TestThreadRateClamps(t *testing.T) {
	m := Xeon()
	if m.ThreadRate(0) != m.ThreadRate(1) {
		t.Error("ThreadRate(0) not clamped to 1")
	}
	if m.ThreadRate(1000) != m.ThreadRate(m.MaxThreads()) {
		t.Error("ThreadRate above MaxThreads not clamped")
	}
}

func TestPhiNeedsSMTForThroughput(t *testing.T) {
	phi := Phi()
	one := phi.ThreadRate(60) * 60   // 1 thread/core
	two := phi.ThreadRate(120) * 120 // 2 threads/core
	if two < one*1.5 {
		t.Fatalf("Phi 2 threads/core aggregate %v not ~2x of 1/core %v", two, one)
	}
	xeon := Xeon()
	ht := xeon.ThreadRate(32) * 32
	st := xeon.ThreadRate(16) * 16
	if ht <= st || ht > st*1.7 {
		t.Fatalf("Xeon HT gain out of range: %v vs %v", ht, st)
	}
}

func TestGroupCostOrdering(t *testing.T) {
	s := Shape{Width: 400, Lanes: 16, Residues: 6000}
	const M, T = 1000, 32
	for _, m := range []*Model{Xeon(), Phi()} {
		s.Lanes = m.Lanes
		s.Residues = int64(s.Width*m.Lanes) * 95 / 100
		intrSP := m.GroupCost(KernelClass{Blocked: true}, M, s, T, 0)
		intrQP := m.GroupCost(KernelClass{Blocked: true, QueryProfile: true}, M, s, T, 0)
		guidSP := m.GroupCost(KernelClass{Blocked: true, Guided: true}, M, s, T, 0)
		guidQP := m.GroupCost(KernelClass{Blocked: true, Guided: true, QueryProfile: true}, M, s, T, 0)
		if !(intrSP < intrQP) {
			t.Errorf("%s: intrinsic SP %v !< QP %v", m.Short, intrSP, intrQP)
		}
		if !(intrSP < guidSP) || !(intrQP < guidQP) {
			t.Errorf("%s: intrinsic not cheaper than guided", m.Short)
		}
		// Scalar cost per cell must dwarf the vector kernels.
		scalar := m.GroupCost(KernelClass{Scalar: true}, M, Shape{Width: 400, Lanes: 1, Residues: 400}, T, 0)
		perCellScalar := scalar / float64(M*400)
		perCellVec := intrSP / float64(M*s.Width*m.Lanes)
		if perCellScalar < 5*perCellVec {
			t.Errorf("%s: scalar per-cell %v not >> vector %v", m.Short, perCellScalar, perCellVec)
		}
	}
}

func TestBlockingRemovesMemoryPenaltyForLongQueries(t *testing.T) {
	// Long query: non-blocked working set exceeds cache, blocked does not.
	const M = 5478
	for _, m := range []*Model{Xeon(), Phi()} {
		s := Shape{Width: 400, Lanes: m.Lanes, Residues: int64(400 * m.Lanes)}
		T := m.MaxThreads()
		blocked := m.GroupCost(KernelClass{Blocked: true}, M, s, T, 0)
		unblocked := m.GroupCost(KernelClass{}, M, s, T, 0)
		if blocked >= unblocked {
			t.Errorf("%s: blocked %v >= unblocked %v at M=%d", m.Short, blocked, unblocked, M)
		}
		// Relative blocking benefit must be larger on the Phi (Fig. 7).
	}
	phi, xeon := Phi(), Xeon()
	rel := func(m *Model) float64 {
		s := Shape{Width: 400, Lanes: m.Lanes, Residues: int64(400 * m.Lanes)}
		T := m.MaxThreads()
		b := m.GroupCost(KernelClass{Blocked: true}, M, s, T, 0)
		u := m.GroupCost(KernelClass{}, M, s, T, 0)
		return u / b
	}
	if rel(phi) <= rel(xeon) {
		t.Errorf("blocking speedup Phi %v <= Xeon %v", rel(phi), rel(xeon))
	}
}

func TestShortQueriesUnaffectedByBlocking(t *testing.T) {
	// At M=144 both fit in cache; blocked should not be dramatically
	// different from unblocked (only boundary overhead).
	for _, m := range []*Model{Xeon(), Phi()} {
		s := Shape{Width: 400, Lanes: m.Lanes, Residues: int64(400 * m.Lanes)}
		b := m.GroupCost(KernelClass{Blocked: true}, 144, s, m.MaxThreads(), 0)
		u := m.GroupCost(KernelClass{}, 144, s, m.MaxThreads(), 0)
		ratio := b / u
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s: short-query blocked/unblocked ratio %v", m.Short, ratio)
		}
	}
}

func TestGroupCostScalesWithWork(t *testing.T) {
	m := Xeon()
	s1 := Shape{Width: 100, Lanes: 16, Residues: 1500}
	s2 := Shape{Width: 200, Lanes: 16, Residues: 3000}
	c1 := m.GroupCost(KernelClass{}, 500, s1, 32, 0)
	c2 := m.GroupCost(KernelClass{}, 500, s2, 32, 0)
	if c2 < c1*1.8 || c2 > c1*2.2 {
		t.Errorf("double width cost ratio %v", c2/c1)
	}
	if m.GroupCost(KernelClass{}, 0, s1, 32, 0) != m.GroupCycles {
		t.Error("empty query not charged group overhead only")
	}
}

func TestOverflowCellsCharged(t *testing.T) {
	m := Phi()
	s := Shape{Width: 100, Lanes: 32, Residues: 3200}
	base := m.GroupCost(KernelClass{}, 300, s, 240, 0)
	with := m.GroupCost(KernelClass{}, 300, s, 240, 50000)
	if with-base < 50000*m.ScalarIterCycles*0.99 {
		t.Errorf("overflow recompute undercharged: %v", with-base)
	}
}

func TestTransferSeconds(t *testing.T) {
	phi := Phi()
	xeon := Xeon()
	if xeon.TransferSeconds(1<<30) != 0 {
		t.Error("host device charged transfer time")
	}
	tiny := phi.TransferSeconds(0)
	if tiny != phi.PCIeLatencySec {
		t.Errorf("zero-byte transfer = %v, want latency %v", tiny, phi.PCIeLatencySec)
	}
	big := phi.TransferSeconds(6_000_000_000)
	if big < 1.0 || big > 1.1 {
		t.Errorf("6 GB transfer = %v s, want ~1s", big)
	}
}

func TestGatherContentionRaisesQPCostWithCores(t *testing.T) {
	m := Xeon()
	s := Shape{Width: 355, Lanes: 16, Residues: 16 * 350}
	qpLow := m.GroupCost(KernelClass{QueryProfile: true, Blocked: true}, 1000, s, 1, 0)
	qpHigh := m.GroupCost(KernelClass{QueryProfile: true, Blocked: true}, 1000, s, 16, 0)
	spLow := m.GroupCost(KernelClass{Blocked: true}, 1000, s, 1, 0)
	spHigh := m.GroupCost(KernelClass{Blocked: true}, 1000, s, 16, 0)
	if !(qpHigh/qpLow > spHigh/spLow) {
		t.Errorf("QP cost ratio %v not above SP ratio %v", qpHigh/qpLow, spHigh/spLow)
	}
}

// Coeffs must agree exactly with GroupCost for every class and shape:
// the bulk experiment path and the engine path share one cost model.
func TestCoeffsMatchGroupCost(t *testing.T) {
	shapes := []Shape{
		{Width: 355, Lanes: 16, Residues: 16 * 340},
		{Width: 3000, Lanes: 32, Residues: 32 * 2900},
		{Width: 12, Lanes: 16, Residues: 40},
		{Width: 9000, Lanes: 1, Residues: 9000, Intra: true},
	}
	for _, m := range []*Model{Xeon(), Phi()} {
		for _, k := range classes() {
			for _, threads := range []int{1, 16, 32, 240} {
				if threads > m.MaxThreads() {
					continue
				}
				for _, M := range []int{144, 1000, 5478} {
					for _, s := range shapes {
						lanes := s.Lanes
						var want float64
						if s.Intra {
							want = m.IntraCoeffs(M).Cost(s)
						} else if k.Scalar {
							want = m.Coeffs(k, M, 1, threads).Cost(s)
						} else {
							want = m.Coeffs(k, M, lanes, threads).Cost(s)
						}
						var got float64
						if k.Scalar && !s.Intra {
							got = m.GroupCost(k, M, s, threads, 0)
							want = m.Coeffs(k, M, lanes, threads).Cost(s)
						} else {
							got = m.GroupCost(k, M, s, threads, 0)
						}
						if got != want {
							t.Fatalf("%s %+v threads=%d M=%d shape=%+v: GroupCost %v != Coeffs %v",
								m.Short, k, threads, M, s, got, want)
						}
					}
				}
			}
		}
	}
}
