// Package device models the two processors of the paper's testbed — the
// dual-socket Intel Xeon E5-2670 host and the 60-core Intel Xeon Phi
// coprocessor — as deterministic performance models. The alignment kernels
// report architecture-neutral structure (vector iterations, gathers,
// profile builds, working sets); this package converts that structure into
// simulated cycles and seconds.
//
// The model captures the six mechanisms that produce the shapes of the
// paper's figures:
//
//  1. vector width (16 16-bit lanes on Xeon, 32 on Phi);
//  2. gather support: the query-profile inner loop needs an indexed load
//     per iteration, cheap-ish on the Phi (hardware vgather), expensive on
//     the Xeon (shuffle/insert sequences) — Figures 3-6's QP/SP gaps;
//  3. per-column overhead amortised by query length — Figures 4 and 6;
//  4. cache capacity versus kernel working set, removed by blocking —
//     Figure 7;
//  5. SMT and shared-resource contention thread-scaling — Figures 3 and 5;
//  6. PCIe offload transfer for the coprocessor — Figure 8.
//
// Constants marked "fitted" in params.go were calibrated once against the
// GCUPS values the paper states in its text and then frozen; everything
// else is mechanistic. See DESIGN.md §6.
package device

import (
	"fmt"
	"math"

	"heterosw/internal/vec"
)

// HostSIMD reports the real vector backend executing the emulated lanes in
// this process (AVX2 assembly or the portable Go loops), so tools can
// print host capability beside the modelled device widths. The modelled
// widths and the cost model are unaffected by the selection — simulated
// cycles come from structural operation counts, wall throughput from the
// backend.
func HostSIMD() vec.BackendInfo { return vec.Info() }

// HostSortSeconds models step 4 of the paper's pipeline: the final
// descending sort of one similarity score per database sequence, performed
// serially on the host after the parallel region (and after the offload
// returns, for coprocessor runs). For short queries against a 541k-sequence
// database this serial tail is a measurable fraction of the search, which
// is part of why GCUPS grows with query length.
func HostSortSeconds(n int) float64 {
	if n < 2 {
		return 0
	}
	const cyclesPerElementCompare = 22 // fitted; ~90 ms for 541k scores (callback-based sort)
	const hostFreqHz = 2.6e9
	return float64(n) * math.Log2(float64(n)) * cyclesPerElementCompare / hostFreqHz
}

// KernelClass describes which kernel variant a cost query is about, in
// architecture-neutral terms (mirrors internal/core's Variant + Params
// without importing it, to keep the dependency direction substrate->none).
type KernelClass struct {
	// Scalar marks the no-vec kernel; Guided distinguishes
	// compiler-vectorised from hand-vectorised (intrinsic) kernels.
	Scalar, Guided bool
	// QueryProfile selects QP (gather per iteration) versus SP (profile
	// build per column).
	QueryProfile bool
	// Blocked enables the cache-blocking cost shape with BlockRows tile
	// height (0 selects the engine default of 256).
	Blocked   bool
	BlockRows int
	// EightBit marks the intrinsic ladder's 8-bit first pass: byte lanes
	// (twice as many per register, halving the group count the engine
	// schedules) and byte-sized kernel state. The per-vector-iteration
	// cycle cost is unchanged — the speedup comes from the doubled lane
	// packing, plus the smaller working set where cache pressure bites.
	EightBit bool
}

// Shape is the cost-relevant geometry of one scheduler chunk: a lane
// group's padded width, lane count and true residue content — or a single
// long sequence handled by the intra-task kernel.
type Shape struct {
	Width    int
	Lanes    int
	Residues int64
	// Intra marks a long-sequence chunk processed by the anti-diagonal
	// intra-task kernel instead of the inter-task lane kernel.
	Intra bool
}

// Model is a device performance model. Fields are exported so experiment
// code can derive ablations (e.g. a gather-less Phi); the package-level
// Xeon() and Phi() constructors return the calibrated instances.
type Model struct {
	Name  string
	Short string

	// Execution resources.
	Cores          int
	ThreadsPerCore int
	FreqHz         float64
	Lanes          int // 16-bit vector lanes

	// SMT holds relative whole-core throughput with 1..ThreadsPerCore
	// resident threads (fitted). The Phi's in-order cores need >=2
	// threads to fill the pipeline, so SMT[0] is ~0.5 there.
	SMT []float64
	// ContentionSlope is the per-additional-active-core throughput loss
	// from shared resources (uncore, memory bandwidth) (fitted).
	ContentionSlope float64

	// Inner-loop costs in cycles (fitted).
	ScalarIterCycles    float64 // per cell, no-vec kernel
	GuidedIterCycles    float64 // per vector iteration, compiler-vectorised
	IntrinsicIterCycles float64 // per vector iteration, hand-vectorised
	GatherGuided        float64 // extra cycles/iteration, QP with guided code
	GatherIntrinsic     float64 // extra cycles/iteration, QP with intrinsics
	// GatherContention scales the gather cost with active cores,
	// modelling shared-port/cache pressure of indexed loads (fitted; the
	// mechanism behind intrinsic-QP's poorer scaling efficiency on Xeon).
	GatherContention float64

	// Structural overheads in cycles (fitted).
	SPBuildCycles  float64 // score-profile build, per column per tile
	ColCycles      float64 // loop restart + E/F spill, per column per tile
	BoundaryCycles float64 // boundary row traffic, per column per tile when blocked
	GroupCycles    float64 // per lane group setup
	SeqCycles      float64 // per alignment finalisation
	DispatchCycles float64 // per scheduler chunk dispatch

	// IntraCellCycles is the per-cell cost of the intra-task
	// (anti-diagonal) kernel that long database sequences are routed to
	// (fitted). It is an order of magnitude below the scalar cost but
	// above the per-lane inter-task cost, reflecting the wavefront's
	// shift/gather overhead.
	IntraCellCycles float64

	// Memory system.
	CachePerCore     int64   // bytes of effective cache per core
	MemPenaltyCycles float64 // extra cycles/iteration at 100% working-set miss

	// Parallel region launch (barrier + thread wake) per search.
	RegionSeconds float64

	// Offload link; zero-valued for the host device.
	OffloadRequired bool
	PCIeBytesPerSec float64
	PCIeLatencySec  float64

	// TDPWatts is the thermal design power used by the energy ablation.
	TDPWatts float64
}

// Validate checks internal consistency of a model.
func (m *Model) Validate() error {
	if m.Cores < 1 || m.ThreadsPerCore < 1 || m.FreqHz <= 0 || m.Lanes < 1 {
		return fmt.Errorf("device %s: bad resources", m.Name)
	}
	if len(m.SMT) != m.ThreadsPerCore {
		return fmt.Errorf("device %s: SMT curve has %d points, want %d", m.Name, len(m.SMT), m.ThreadsPerCore)
	}
	if m.OffloadRequired && m.PCIeBytesPerSec <= 0 {
		return fmt.Errorf("device %s: offload without PCIe bandwidth", m.Name)
	}
	return nil
}

// MaxThreads returns the hardware thread count.
func (m *Model) MaxThreads() int { return m.Cores * m.ThreadsPerCore }

// ByteLanes returns the register's unsigned 8-bit lane count — twice the
// 16-bit count, the packing the ladder's first pass exploits.
func (m *Model) ByteLanes() int { return 2 * m.Lanes }

// threadsPerCore returns how many threads share a core when T threads run
// (threads are spread across cores first, as OpenMP's default affinity
// does).
func (m *Model) threadsPerCore(threads int) int {
	tpc := (threads + m.Cores - 1) / m.Cores
	if tpc < 1 {
		tpc = 1
	}
	if tpc > m.ThreadsPerCore {
		tpc = m.ThreadsPerCore
	}
	return tpc
}

// activeCores returns how many cores have at least one thread.
func (m *Model) activeCores(threads int) int {
	if threads < m.Cores {
		return threads
	}
	return m.Cores
}

// contention returns the shared-resource throughput factor with a active
// cores.
func (m *Model) contention(active int) float64 {
	c := 1 - m.ContentionSlope*float64(active-1)
	if c < 0.1 {
		c = 0.1
	}
	return c
}

// coreUnits returns the device-wide throughput in whole-core units when
// `threads` threads run, with threads dealt round-robin across cores: rem
// cores host one extra thread when threads is not a multiple of Cores.
func (m *Model) coreUnits(threads int) float64 {
	c := m.Cores
	if threads <= c {
		return float64(threads) * m.SMT[0]
	}
	q := threads / c
	rem := threads % c
	if q >= m.ThreadsPerCore {
		return float64(c) * m.SMT[m.ThreadsPerCore-1]
	}
	if rem == 0 {
		return float64(c) * m.SMT[q-1]
	}
	return float64(rem)*m.SMT[q] + float64(c-rem)*m.SMT[q-1]
}

// ThreadRate returns the simulated cycles per second a single thread
// retires when `threads` threads run device-wide: core throughput is
// divided among resident threads and degraded by shared-resource
// contention. (The mean rate over threads is used; at every thread count
// the paper evaluates, occupancy is uniform and the mean is exact.)
func (m *Model) ThreadRate(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	if threads > m.MaxThreads() {
		threads = m.MaxThreads()
	}
	return m.FreqHz * m.coreUnits(threads) / float64(threads) * m.contention(m.activeCores(threads))
}

// Seconds converts a simulated makespan in cycles into wall time for a
// given thread count, adding the parallel-region launch cost.
func (m *Model) Seconds(makespanCycles float64, threads int) float64 {
	return makespanCycles/m.ThreadRate(threads) + m.RegionSeconds
}

// TransferSeconds models one offload data movement of the given byte count
// over the PCIe link (zero for host devices).
func (m *Model) TransferSeconds(bytes int64) float64 {
	if !m.OffloadRequired {
		return 0
	}
	return m.PCIeLatencySec + float64(bytes)/m.PCIeBytesPerSec
}

const (
	// profileTableWidth mirrors profile.TableWidth (alphabet + pad)
	// without importing it.
	profileTableWidth = 25
	// defaultBlockRows mirrors core.DefaultBlockRows.
	defaultBlockRows = 256
)

// workingSet returns the hot per-thread bytes of the kernel inner loop for
// a query of length m under class k.
func (m *Model) workingSet(k KernelClass, M int, lanes int) int64 {
	if k.Scalar {
		// Two int32 arrays over the query.
		return int64(M+1) * 8
	}
	rows := M
	if k.Blocked {
		b := k.BlockRows
		if b == 0 {
			b = defaultBlockRows
		}
		if b < rows {
			rows = b
		}
	}
	elem := int64(2) // int16 intrinsics
	if k.Guided {
		elem = 4 // compiler-vectorised code keeps 32-bit lanes
	}
	if k.EightBit {
		elem = 1 // byte lanes of the ladder's first pass
	}
	state := int64(rows+1) * int64(lanes) * elem * 2 // H and E tiles
	scoreElem := int64(2)
	if k.EightBit {
		scoreElem = 1 // biased byte profiles
	}
	var prof int64
	if k.QueryProfile {
		prof = int64(rows) * profileTableWidth * scoreElem // QP rows touched per column
	} else {
		prof = profileTableWidth * int64(lanes) * scoreElem // SP scratch
	}
	return state + prof
}

// missFraction returns the fraction of working-set sweeps that overflow the
// per-thread cache share.
func (m *Model) missFraction(ws int64, tpc int) float64 {
	cache := m.CachePerCore / int64(tpc)
	if cache <= 0 || ws <= cache {
		return 0
	}
	return 1 - float64(cache)/float64(ws)
}

// CostCoeffs are the linear coefficients of GroupCost for a fixed kernel
// class, query length and device occupancy:
//
//	cycles = PerWidth*Width + PerResidue*Residues + PerLane*Lanes + PerGroup
//
// Bulk experiments precompute them once per configuration and cost hundreds
// of thousands of group shapes with two multiply-adds each.
type CostCoeffs struct {
	PerWidth   float64
	PerResidue float64
	PerLane    float64
	PerGroup   float64
}

// Cost applies the coefficients to one group shape.
func (c CostCoeffs) Cost(s Shape) float64 {
	return c.PerWidth*float64(s.Width) +
		c.PerResidue*float64(s.Residues) +
		c.PerLane*float64(s.Lanes) +
		c.PerGroup
}

// Coeffs precomputes GroupCost's linear coefficients for a kernel class,
// query length and device-wide thread count. lanes is the group lane width
// (the device's vector lanes, or 1 for the scalar kernel); it determines
// the kernel working set.
func (m *Model) Coeffs(k KernelClass, M, lanes, threads int) CostCoeffs {
	c := CostCoeffs{PerGroup: m.GroupCycles, PerLane: m.SeqCycles}
	if M == 0 {
		c.PerLane = 0
		return c
	}
	if k.Scalar {
		// Cells = M * Residues; per-column overhead folded per residue.
		c.PerResidue = float64(M)*m.ScalarIterCycles + m.ColCycles/8
		return c
	}
	tpc := m.threadsPerCore(threads)
	active := m.activeCores(threads)
	blocks := 1.0
	if k.Blocked {
		b := k.BlockRows
		if b == 0 {
			b = defaultBlockRows
		}
		blocks = float64((M + b - 1) / b)
	}
	base := m.IntrinsicIterCycles
	gather := m.GatherIntrinsic
	if k.Guided {
		base = m.GuidedIterCycles
		gather = m.GatherGuided
	}
	iterCost := base
	if k.QueryProfile {
		iterCost += gather * (1 + m.GatherContention*float64(active-1))
	}
	ws := m.workingSet(k, M, lanes)
	iterCost += m.MemPenaltyCycles * m.missFraction(ws, tpc)

	// Per-column costs: ColCycles is charged once per column (outer-loop
	// bookkeeping, E/F boundary handling); tile restarts and the score-
	// profile rebuild recur per tile, since a blocked kernel revisits
	// every column once per tile.
	perColPerTile := 0.0
	if k.Blocked {
		perColPerTile += m.BoundaryCycles
	}
	if !k.QueryProfile {
		perColPerTile += m.SPBuildCycles
	}
	c.PerWidth = float64(M)*iterCost + m.ColCycles + blocks*perColPerTile
	return c
}

// IntraCoeffs returns the cost coefficients for intra-task long-sequence
// chunks with a query of length M.
func (m *Model) IntraCoeffs(M int) CostCoeffs {
	return CostCoeffs{
		PerResidue: float64(M) * m.IntraCellCycles,
		PerGroup:   m.GroupCycles,
		PerLane:    m.SeqCycles,
	}
}

// GroupCost returns the simulated cycles one thread spends aligning a query
// of length M against one lane group of the given shape, when `threads`
// threads are active device-wide (cache shares and gather contention depend
// on occupancy). overflowCells charges the 32-bit recomputation of
// saturated lanes, when known from a functional run.
func (m *Model) GroupCost(k KernelClass, M int, s Shape, threads int, overflowCells int64) float64 {
	if M == 0 || s.Width == 0 {
		return m.GroupCycles
	}
	if s.Intra {
		return m.IntraCoeffs(M).Cost(s)
	}
	cycles := m.Coeffs(k, M, s.Lanes, threads).Cost(s)
	return cycles + float64(overflowCells)*m.ScalarIterCycles
}
