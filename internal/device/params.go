package device

// Calibrated device instances.
//
// Mechanistic fields (cores, threads, frequency, lane counts, cache sizes,
// PCIe generation, TDP) are taken from the paper's Section V.A and public
// processor specifications. Fields marked (fitted) were tuned once so that
// the simulated GCUPS of the synthetic Swiss-Prot workload reproduces the
// numbers the paper states in its text:
//
//	Xeon:  intrinsic-SP 30.4 GCUPS @ 32 threads; parallel efficiency
//	       99%/88%/70% at 4/16/32 threads; intrinsic-QP efficiency 73% @ 16;
//	       simd-SP 25.1 and intrinsic-SP 32 GCUPS on the longest queries.
//	Phi:   simd-QP 13.6, simd-SP 14.5, intrinsic-QP 27.1, intrinsic-SP
//	       34.9 GCUPS @ 240 threads.
//	Hybrid: 62.6 GCUPS at a ~55% Phi share.
//
// The calibration is locked by internal/figures tests; if you change a
// constant here, those tests tell you which paper number you broke.

// Xeon returns the model of the host: 2x Intel Xeon E5-2670 (Sandy Bridge
// EP, 8 cores each, 2.60 GHz, HyperThreading), 256-bit vectors = 16
// 16-bit lanes, no hardware gather.
func Xeon() *Model {
	return &Model{
		Name:  "2x Intel Xeon E5-2670 (16 cores, 32 threads, 256-bit SIMD)",
		Short: "xeon",

		Cores:          16,
		ThreadsPerCore: 2,
		FreqHz:         2.6e9,
		Lanes:          16,

		SMT:             []float64{1.0, 1.60}, // (fitted) HT gain on latency-bound integer DP
		ContentionSlope: 0.008,                // (fitted) uncore/LLC/bandwidth pressure

		ScalarIterCycles:    30,   // (fitted) no-vec ~1.9 GCUPS @ 32T
		GuidedIterCycles:    37,   // (fitted) simd-SP ~ 0.78x intrinsic-SP
		IntrinsicIterCycles: 29.2, // (fitted) intrinsic-SP 30.4 GCUPS @ 32T
		GatherGuided:        26,   // (fitted) compiler scalarises the QP lookup
		GatherIntrinsic:     7,    // (fitted) shuffle/insert emulation of gather
		GatherContention:    0.07, // (fitted) QP efficiency 73% @ 16T

		SPBuildCycles:  50,   // (fitted) 25 lane-vector stores per column
		ColCycles:      120,  // (fitted) Xeon is nearly query-length flat (Fig. 4)
		BoundaryCycles: 40,   // (fitted) blocked boundary-row traffic
		GroupCycles:    1200, // (fitted)
		SeqCycles:      100,  // (fitted)
		DispatchCycles: 250,  // (fitted) omp dynamic dequeue

		IntraCellCycles: 3.0, // (fitted) anti-diagonal kernel for long sequences

		CachePerCore:     512 << 10, // 256 KiB L2 + 1.25 MiB L3 slice, derated for sharing
		MemPenaltyCycles: 26,        // (fitted) Fig. 7 non-blocked degradation

		RegionSeconds: 15e-6,

		TDPWatts: 230, // 2 x 115 W (E5-2670 specification)
	}
}

// Phi returns the model of the coprocessor: Intel Xeon Phi (KNC), 60 cores
// at 1.053 GHz, 4 hardware threads per core, 512-bit vectors = 32 16-bit
// lanes, hardware gather, 512 KiB L2 per core, PCIe Gen2 offload link.
func Phi() *Model {
	return &Model{
		Name:  "Intel Xeon Phi (60 cores, 240 threads, 512-bit SIMD)",
		Short: "phi",

		Cores:          60,
		ThreadsPerCore: 4,
		FreqHz:         1.053e9,
		Lanes:          32,

		SMT:             []float64{0.50, 0.80, 0.92, 1.00}, // in-order core needs 3-4 threads
		ContentionSlope: 0.0005,                            // (fitted) ring interconnect scales well

		ScalarIterCycles:    38,   // (fitted) in-order scalar DP is very slow
		GuidedIterCycles:    130,  // (fitted) simd-SP 14.5 GCUPS @ 240T
		IntrinsicIterCycles: 50.4, // (fitted) intrinsic-SP 34.9 GCUPS @ 240T
		GatherGuided:        9,    // (fitted) simd-QP 13.6 GCUPS @ 240T
		GatherIntrinsic:     16,   // (fitted) vgather is available but not free
		GatherContention:    0,

		SPBuildCycles:  80,   // (fitted)
		ColCycles:      1900, // (fitted) drives the Fig. 6 query-length ramp
		BoundaryCycles: 70,   // (fitted)
		GroupCycles:    4000, // (fitted)
		SeqCycles:      300,  // (fitted)
		DispatchCycles: 500,  // (fitted)

		IntraCellCycles: 3.6, // (fitted) anti-diagonal kernel for long sequences

		CachePerCore:     512 << 10, // 512 KiB L2, no L3
		MemPenaltyCycles: 60,        // (fitted) GDDR5 miss penalty, Fig. 7

		RegionSeconds: 40e-6,

		OffloadRequired: true,
		PCIeBytesPerSec: 6.0e9, // PCIe Gen2 x16 effective
		PCIeLatencySec:  1.2e-4,

		TDPWatts: 240, // as stated in the paper's Section V.C.3
	}
}

// Devices returns the calibrated models keyed by their Short name.
func Devices() map[string]*Model {
	return map[string]*Model{"xeon": Xeon(), "phi": Phi()}
}
