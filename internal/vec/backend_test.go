package vec

import (
	"math/rand"
	"testing"
)

// The differential suite: every native routine must be lane-exact against
// its portable generic on adversarial inputs (saturation rails, negatives,
// zero, full-range randoms) at every register-multiple width. Skipped
// where the host has no AVX2 backend.

func requireNative(t *testing.T) {
	t.Helper()
	if !Native() {
		t.Skip("native backend unavailable on this host")
	}
}

// railsI16 mixes full-range randoms with rail and near-rail values.
func railsI16(rng *rand.Rand, n int) I16 {
	out := make(I16, n)
	for i := range out {
		switch rng.Intn(6) {
		case 0:
			out[i] = MaxI16
		case 1:
			out[i] = MinI16
		case 2:
			out[i] = int16(rng.Intn(7) - 3)
		default:
			out[i] = int16(rng.Intn(1 << 16))
		}
	}
	return out
}

func railsU8(rng *rand.Rand, n int) U8 {
	out := make(U8, n)
	for i := range out {
		switch rng.Intn(6) {
		case 0:
			out[i] = MaxU8
		case 1:
			out[i] = 0
		case 2:
			out[i] = uint8(253 + rng.Intn(3))
		default:
			out[i] = uint8(rng.Intn(256))
		}
	}
	return out
}

var testWidths16 = []int{16, 32, 48, 64, 128}
var testWidths8 = []int{32, 64, 96, 128}

func TestNativeI16Primitives(t *testing.T) {
	requireNative(t)
	rng := rand.New(rand.NewSource(61))
	for _, n := range testWidths16 {
		for trial := 0; trial < 50; trial++ {
			a, b := railsI16(rng, n), railsI16(rng, n)
			c := int16(rng.Intn(1 << 16))
			thr := int16(rng.Intn(1 << 16))

			got, want := make(I16, n), make(I16, n)
			addSat16(&got[0], &a[0], &b[0], n)
			addSatGeneric(want, a, b)
			eqI16(t, "addSat16", got, want)

			subSatConst16(&got[0], &a[0], n, int(c))
			subSatConstGeneric(want, a, c)
			eqI16(t, "subSatConst16", got, want)

			max16(&got[0], &a[0], &b[0], n)
			maxGeneric(want, a, b)
			eqI16(t, "max16", got, want)

			maxConst16(&got[0], &a[0], n, int(c))
			maxConstGeneric(want, a, c)
			eqI16(t, "maxConst16", got, want)

			copy(got, b)
			copy(want, b)
			maxInto16(&got[0], &a[0], n)
			maxIntoGeneric(want, a)
			eqI16(t, "maxInto16", got, want)

			set1x16(&got[0], n, int(c))
			set1Generic(want, c)
			eqI16(t, "set1x16", got, want)

			table := railsI16(rng, 25)
			idx := make([]uint8, n)
			for i := range idx {
				idx[i] = uint8(rng.Intn(25))
			}
			gather16(&got[0], &table[0], &idx[0], n)
			gatherGeneric(want, table, idx)
			eqI16(t, "gather16", got, want)

			if g, w := hmax16(&a[0], n), horizontalMaxGeneric(a); g != w {
				t.Fatalf("hmax16(n=%d) = %d, generic %d", n, g, w)
			}
			if g, w := anyGE16(&a[0], n, int(thr)), anyGEGeneric(a, thr); g != w {
				t.Fatalf("anyGE16(n=%d, thr=%d) = %v, generic %v", n, thr, g, w)
			}
			if g, w := anyGT16(&a[0], &b[0], n), anyGTGeneric(a, b); g != w {
				t.Fatalf("anyGT16(n=%d) = %v, generic %v", n, g, w)
			}
		}
	}
}

func TestNativeU8Primitives(t *testing.T) {
	requireNative(t)
	rng := rand.New(rand.NewSource(62))
	for _, n := range testWidths8 {
		for trial := 0; trial < 50; trial++ {
			a, b := railsU8(rng, n), railsU8(rng, n)
			c := uint8(rng.Intn(256))
			thr := uint8(rng.Intn(256))

			got, want := make(U8, n), make(U8, n)
			addSatU8x(&got[0], &a[0], &b[0], n)
			addSatU8Generic(want, a, b)
			eqU8(t, "addSatU8x", got, want)

			subSatConstU8(&got[0], &a[0], n, int(c))
			subSatU8ConstGeneric(want, a, c)
			eqU8(t, "subSatConstU8", got, want)

			maxU8x(&got[0], &a[0], &b[0], n)
			maxU8sGeneric(want, a, b)
			eqU8(t, "maxU8x", got, want)

			copy(got, b)
			copy(want, b)
			maxIntoU8x(&got[0], &a[0], n)
			maxIntoU8Generic(want, a)
			eqU8(t, "maxIntoU8x", got, want)

			set1U8x(&got[0], n, int(c))
			set1U8Generic(want, c)
			eqU8(t, "set1U8x", got, want)

			table := railsU8(rng, 25)
			idx := make([]uint8, n)
			for i := range idx {
				idx[i] = uint8(rng.Intn(25))
			}
			gatherU8x(&got[0], &table[0], &idx[0], n)
			gatherU8Generic(want, table, idx)
			eqU8(t, "gatherU8x", got, want)

			if g, w := hmaxU8(&a[0], n), horizontalMaxU8Generic(a); g != w {
				t.Fatalf("hmaxU8(n=%d) = %d, generic %d", n, g, w)
			}
			if g, w := anyGEU8x(&a[0], n, int(thr)), anyGEU8Generic(a, thr); g != w {
				t.Fatalf("anyGEU8x(n=%d, thr=%d) = %v, generic %v", n, thr, g, w)
			}
			if g, w := anyGTU8x(&a[0], &b[0], n), anyGTU8Generic(a, b); g != w {
				t.Fatalf("anyGTU8x(n=%d) = %v, generic %v", n, g, w)
			}
		}
	}
}

func eqI16(t *testing.T, op string, got, want I16) {
	t.Helper()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s(n=%d) lane %d: native %d, generic %d", op, len(got), i, got[i], want[i])
		}
	}
}

func eqU8(t *testing.T, op string, got, want U8) {
	t.Helper()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s(n=%d) lane %d: native %d, generic %d", op, len(got), i, got[i], want[i])
		}
	}
}

// stepState bundles one randomized column-step input set; clone() deep-copies
// so native and generic runs see identical state.
type stepState16 struct {
	h, e, f, diag, maxv I16
}

func randStep16(rng *rand.Rand, rows, lanes int) *stepState16 {
	s := &stepState16{
		h:    make(I16, rows*lanes),
		e:    make(I16, rows*lanes),
		f:    make(I16, lanes),
		diag: make(I16, lanes),
		maxv: make(I16, lanes),
	}
	for i := range s.h {
		// H is a cell value in [0, MaxI16]; E may carry the -inf rail.
		s.h[i] = int16(rng.Intn(MaxI16 + 1))
		if rng.Intn(8) == 0 {
			s.h[i] = MaxI16
		}
		s.e[i] = int16(rng.Intn(1 << 16))
		if rng.Intn(8) == 0 {
			s.e[i] = MinI16
		}
	}
	for l := 0; l < lanes; l++ {
		s.diag[l] = int16(rng.Intn(MaxI16 + 1))
		s.f[l] = int16(rng.Intn(1 << 16))
		if rng.Intn(8) == 0 {
			s.f[l] = MinI16
		}
		s.maxv[l] = int16(rng.Intn(MaxI16 + 1))
	}
	return s
}

func (s *stepState16) clone() *stepState16 {
	c := &stepState16{
		h:    append(I16(nil), s.h...),
		e:    append(I16(nil), s.e...),
		f:    append(I16(nil), s.f...),
		diag: append(I16(nil), s.diag...),
		maxv: append(I16(nil), s.maxv...),
	}
	return c
}

func (s *stepState16) diff(t *testing.T, op string, o *stepState16) {
	t.Helper()
	eqI16(t, op+" h", s.h, o.h)
	eqI16(t, op+" e", s.e, o.e)
	eqI16(t, op+" f", s.f, o.f)
	eqI16(t, op+" diag", s.diag, o.diag)
	eqI16(t, op+" maxv", s.maxv, o.maxv)
}

const testStride = 25 // profile.TableWidth, without the import cycle

func TestNativeStepCol16(t *testing.T) {
	requireNative(t)
	rng := rand.New(rand.NewSource(63))
	for _, lanes := range []int{16, 32, 64} {
		for _, rows := range []int{1, 2, 7, 33} {
			for trial := 0; trial < 20; trial++ {
				st := randStep16(rng, rows, lanes)
				qr := int16(rng.Intn(100))
				r := int16(rng.Intn(30))

				score := railsI16(rng, testStride*lanes)
				seq := make([]uint8, rows)
				for i := range seq {
					seq[i] = uint8(rng.Intn(testStride))
				}
				native, generic := st.clone(), st.clone()
				stepCol16SP(&native.h[0], &native.e[0], &native.f[0], &native.diag[0], &native.maxv[0],
					&score[0], &seq[0], rows, lanes, int(qr), int(r))
				stepCol16SPGeneric(generic.h, generic.e, generic.f, generic.diag, generic.maxv,
					score, seq, rows, lanes, qr, r)
				native.diff(t, "stepCol16SP", generic)

				qp := make([]int16, rows*testStride, rows*testStride+2)
				for i := range qp {
					qp[i] = int16(rng.Intn(1 << 16))
				}
				col := make([]uint8, lanes)
				for i := range col {
					col[i] = uint8(rng.Intn(testStride))
				}
				native, generic = st.clone(), st.clone()
				stepCol16QP(&native.h[0], &native.e[0], &native.f[0], &native.diag[0], &native.maxv[0],
					&qp[0], testStride, &col[0], rows, lanes, int(qr), int(r))
				stepCol16QPGeneric(generic.h, generic.e, generic.f, generic.diag, generic.maxv,
					qp, testStride, col, rows, lanes, qr, r)
				native.diff(t, "stepCol16QP", generic)
			}
		}
	}
}

type stepState8 struct {
	h, e, f, diag, maxv U8
}

func randStep8(rng *rand.Rand, rows, lanes int) *stepState8 {
	s := &stepState8{
		h:    railsU8(rng, rows*lanes),
		e:    railsU8(rng, rows*lanes),
		f:    railsU8(rng, lanes),
		diag: railsU8(rng, lanes),
		maxv: railsU8(rng, lanes),
	}
	return s
}

func (s *stepState8) clone() *stepState8 {
	return &stepState8{
		h:    append(U8(nil), s.h...),
		e:    append(U8(nil), s.e...),
		f:    append(U8(nil), s.f...),
		diag: append(U8(nil), s.diag...),
		maxv: append(U8(nil), s.maxv...),
	}
}

func (s *stepState8) diff(t *testing.T, op string, o *stepState8) {
	t.Helper()
	eqU8(t, op+" h", s.h, o.h)
	eqU8(t, op+" e", s.e, o.e)
	eqU8(t, op+" f", s.f, o.f)
	eqU8(t, op+" diag", s.diag, o.diag)
	eqU8(t, op+" maxv", s.maxv, o.maxv)
}

func TestNativeStepCol8(t *testing.T) {
	requireNative(t)
	rng := rand.New(rand.NewSource(64))
	for _, lanes := range []int{32, 64, 128} {
		for _, rows := range []int{1, 2, 7, 33} {
			for trial := 0; trial < 20; trial++ {
				st := randStep8(rng, rows, lanes)
				bias := uint8(rng.Intn(32))
				qr := uint8(rng.Intn(256))
				r := uint8(rng.Intn(64))

				score := railsU8(rng, testStride*lanes)
				seq := make([]uint8, rows)
				for i := range seq {
					seq[i] = uint8(rng.Intn(testStride))
				}
				native, generic := st.clone(), st.clone()
				stepCol8SP(&native.h[0], &native.e[0], &native.f[0], &native.diag[0], &native.maxv[0],
					&score[0], &seq[0], rows, lanes, int(bias), int(qr), int(r))
				stepCol8SPGeneric(generic.h, generic.e, generic.f, generic.diag, generic.maxv,
					score, seq, rows, lanes, bias, qr, r)
				native.diff(t, "stepCol8SP", generic)

				qp := make([]uint8, rows*testStride, (rows-1)*testStride+32)
				for i := range qp {
					qp[i] = uint8(rng.Intn(256))
				}
				col := make([]uint8, lanes)
				for i := range col {
					col[i] = uint8(rng.Intn(testStride))
				}
				native, generic = st.clone(), st.clone()
				stepCol8QP(&native.h[0], &native.e[0], &native.f[0], &native.diag[0], &native.maxv[0],
					&qp[0], testStride, &col[0], rows, lanes, int(bias), int(qr), int(r))
				stepCol8QPGeneric(generic.h, generic.e, generic.f, generic.diag, generic.maxv,
					qp, testStride, col, rows, lanes, bias, qr, r)
				native.diff(t, "stepCol8QP", generic)
			}
		}
	}
}

func TestNativeBuildRows(t *testing.T) {
	requireNative(t)
	rng := rand.New(rand.NewSource(65))
	const nrows = testStride
	for _, lanes := range []int{16, 32, 64, 128} {
		for trial := 0; trial < 20; trial++ {
			idx := make([]uint8, lanes)
			for i := range idx {
				idx[i] = uint8(rng.Intn(testStride))
			}

			if lanes%16 == 0 {
				table := make([]int16, nrows*testStride, nrows*testStride+2)
				for i := range table {
					table[i] = int16(rng.Intn(1 << 16))
				}
				got := make([]int16, nrows*lanes)
				want := make([]int16, nrows*lanes)
				buildRows16(&got[0], &table[0], &idx[0], nrows, lanes, testStride)
				buildRows16Generic(want, table, idx, nrows, lanes, testStride)
				eqI16(t, "buildRows16", got, want)
			}
			if lanes%32 == 0 {
				table := make([]uint8, nrows*testStride, (nrows-1)*testStride+32)
				for i := range table {
					table[i] = uint8(rng.Intn(256))
				}
				got := make([]uint8, nrows*lanes)
				want := make([]uint8, nrows*lanes)
				buildRows8(&got[0], &table[0], &idx[0], nrows, lanes, testStride)
				buildRows8Generic(want, table, idx, nrows, lanes, testStride)
				eqU8(t, "buildRows8", got, want)
			}
		}
	}
}

// TestDispatchFallbacks pins the dispatch rules: odd lane counts and the
// portable override always take the generic path (observable because the
// exported wrappers agree with the generics everywhere).
func TestDispatchFallbacks(t *testing.T) {
	if native16(15) || native16(17) || native16(0) {
		t.Fatal("native16 accepted a non-multiple-of-16 width")
	}
	if native8(31) || native8(33) || native8(0) {
		t.Fatal("native8 accepted a non-multiple-of-32 width")
	}
	prev := ForcePortable(true)
	if native16(16) || native8(32) {
		t.Fatal("forced-portable override did not disable native dispatch")
	}
	if Backend() != "portable" || Native() {
		t.Fatal("Backend()/Native() disagree with the forced override")
	}
	if !Info().Forced {
		t.Fatal("Info().Forced false under override")
	}
	if got := ForcePortable(prev); got != true {
		t.Fatal("ForcePortable did not report the previous override")
	}
}

// TestForcedPortableParityExported runs a sample of exported entry points
// under both backends on the same inputs; on non-AVX2 hosts both runs take
// the generic path and the test degenerates to self-consistency.
func TestForcedPortableParityExported(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	a, b := railsI16(rng, 64), railsI16(rng, 64)
	nat, port := make(I16, 64), make(I16, 64)

	AddSat(nat, a, b)
	prev := ForcePortable(true)
	AddSat(port, a, b)
	ForcePortable(prev)
	eqI16(t, "AddSat backends", nat, port)

	au, bu := railsU8(rng, 64), railsU8(rng, 64)
	natu, portu := make(U8, 64), make(U8, 64)
	AddSatU8(natu, au, bu)
	prev = ForcePortable(true)
	AddSatU8(portu, au, bu)
	ForcePortable(prev)
	eqU8(t, "AddSatU8 backends", natu, portu)
}
