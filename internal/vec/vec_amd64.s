//go:build amd64 && !purego

// AVX2 backend for the vec primitive set and the fused column kernels.
//
// Every routine computes bit-identical results to the portable Go loops in
// vec.go / step.go; the differential tests in this package and core's
// kernel parity fuzzing pin that equivalence. Callers (the Go wrappers)
// guarantee n is a positive multiple of 16 for int16 routines and 32 for
// uint8 routines, and that gathered tables carry the documented spare
// capacity, so no tail or bounds handling appears here.
//
// Plan 9 operand order reminders (reversed from Intel syntax):
//   VPSUBSW  Yb, Ya, Yd      d = a - b
//   VPCMPGTW Yb, Ya, Yd      d = (a > b)
//   VPSHUFB  Yctl, Ysrc, Yd  d = shuffle(src, ctl)
//   VPBLENDVB Ym, Yb, Ya, Yd d = m ? b : a
//   VPACKUSDW Yb, Ya, Yd     per 128-bit lane: [a words, b words]

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// ---- 16-bit lane primitives ----

// func addSat16(dst, a, b *int16, n int)
TEXT ·addSat16(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	SHLQ $1, CX
	XORQ AX, AX
loop:
	VMOVDQU (SI)(AX*1), Y0
	VPADDSW (DX)(AX*1), Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ $32, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func subSatConst16(dst, a *int16, n, c int)
TEXT ·subSatConst16(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ c+24(FP), AX
	MOVQ AX, X1
	VPBROADCASTW X1, Y1
	SHLQ $1, CX
	XORQ AX, AX
loop:
	VMOVDQU  (SI)(AX*1), Y0
	VPSUBSW  Y1, Y0, Y0
	VMOVDQU  Y0, (DI)(AX*1)
	ADDQ     $32, AX
	CMPQ     AX, CX
	JLT      loop
	VZEROUPPER
	RET

// func max16(dst, a, b *int16, n int)
TEXT ·max16(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	SHLQ $1, CX
	XORQ AX, AX
loop:
	VMOVDQU (SI)(AX*1), Y0
	VPMAXSW (DX)(AX*1), Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	CMPQ    AX, CX
	JLT     loop
	VZEROUPPER
	RET

// func maxConst16(dst, a *int16, n, c int)
TEXT ·maxConst16(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ c+24(FP), AX
	MOVQ AX, X1
	VPBROADCASTW X1, Y1
	SHLQ $1, CX
	XORQ AX, AX
loop:
	VMOVDQU (SI)(AX*1), Y0
	VPMAXSW Y1, Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	CMPQ    AX, CX
	JLT     loop
	VZEROUPPER
	RET

// func maxInto16(dst, a *int16, n int)
TEXT ·maxInto16(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n+16(FP), CX
	SHLQ $1, CX
	XORQ AX, AX
loop:
	VMOVDQU (SI)(AX*1), Y0
	VPMAXSW (DI)(AX*1), Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	CMPQ    AX, CX
	JLT     loop
	VZEROUPPER
	RET

// func set1x16(dst *int16, n, c int)
TEXT ·set1x16(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ c+16(FP), AX
	MOVQ AX, X0
	VPBROADCASTW X0, Y0
	SHLQ $1, CX
	XORQ AX, AX
loop:
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	CMPQ    AX, CX
	JLT     loop
	VZEROUPPER
	RET

// func gather16(dst *int16, table *int16, idx *uint8, n int)
//
// Scalar loads: the hardware "insert sequence" form, safe for arbitrary
// caller tables (no over-read).
TEXT ·gather16(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ table+8(FP), SI
	MOVQ idx+16(FP), DX
	MOVQ n+24(FP), CX
	XORQ AX, AX
loop:
	MOVBQZX (DX)(AX*1), R8
	MOVWQZX (SI)(R8*2), R9
	MOVW    R9, (DI)(AX*2)
	INCQ    AX
	CMPQ    AX, CX
	JLT     loop
	RET

// func hmax16(a *int16, n int) int16
TEXT ·hmax16(SB), NOSPLIT, $0-18
	MOVQ a+0(FP), SI
	MOVQ n+8(FP), CX
	SHLQ $1, CX
	VMOVDQU (SI), Y0
	MOVQ $32, AX
	JMP  cond
loop:
	VPMAXSW (SI)(AX*1), Y0, Y0
	ADDQ    $32, AX
cond:
	CMPQ AX, CX
	JLT  loop
	VEXTRACTI128 $1, Y0, X1
	VPMAXSW X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VPMAXSW X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPMAXSW X1, X0, X0
	VPSRLD  $16, X0, X1
	VPMAXSW X1, X0, X0
	MOVQ    X0, AX
	MOVW    AX, ret+16(FP)
	VZEROUPPER
	RET

// func anyGE16(a *int16, n, threshold int) bool
//
// a >= t per lane as (max(a, t) == a), ORed across chunks.
TEXT ·anyGE16(SB), NOSPLIT, $0-25
	MOVQ a+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ threshold+16(FP), AX
	MOVQ AX, X2
	VPBROADCASTW X2, Y2
	VPXOR Y3, Y3, Y3
	SHLQ  $1, CX
	XORQ  AX, AX
loop:
	VMOVDQU  (SI)(AX*1), Y0
	VPMAXSW  Y2, Y0, Y1
	VPCMPEQW Y0, Y1, Y1
	VPOR     Y1, Y3, Y3
	ADDQ     $32, AX
	CMPQ     AX, CX
	JLT      loop
	VPMOVMSKB Y3, AX
	TESTL AX, AX
	SETNE ret+24(FP)
	VZEROUPPER
	RET

// func anyGT16(a, b *int16, n int) bool
TEXT ·anyGT16(SB), NOSPLIT, $0-25
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DX
	MOVQ n+16(FP), CX
	VPXOR Y3, Y3, Y3
	SHLQ  $1, CX
	XORQ  AX, AX
loop:
	VMOVDQU  (SI)(AX*1), Y0
	VMOVDQU  (DX)(AX*1), Y1
	VPCMPGTW Y1, Y0, Y1
	VPOR     Y1, Y3, Y3
	ADDQ     $32, AX
	CMPQ     AX, CX
	JLT      loop
	VPMOVMSKB Y3, AX
	TESTL AX, AX
	SETNE ret+24(FP)
	VZEROUPPER
	RET

// ---- 8-bit lane primitives ----

// func addSatU8x(dst, a, b *uint8, n int)
TEXT ·addSatU8x(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	XORQ AX, AX
loop:
	VMOVDQU  (SI)(AX*1), Y0
	VPADDUSB (DX)(AX*1), Y0, Y0
	VMOVDQU  Y0, (DI)(AX*1)
	ADDQ     $32, AX
	CMPQ     AX, CX
	JLT      loop
	VZEROUPPER
	RET

// func subSatConstU8(dst, a *uint8, n, c int)
TEXT ·subSatConstU8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ c+24(FP), AX
	MOVQ AX, X1
	VPBROADCASTB X1, Y1
	XORQ AX, AX
loop:
	VMOVDQU  (SI)(AX*1), Y0
	VPSUBUSB Y1, Y0, Y0
	VMOVDQU  Y0, (DI)(AX*1)
	ADDQ     $32, AX
	CMPQ     AX, CX
	JLT      loop
	VZEROUPPER
	RET

// func maxU8x(dst, a, b *uint8, n int)
TEXT ·maxU8x(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	XORQ AX, AX
loop:
	VMOVDQU (SI)(AX*1), Y0
	VPMAXUB (DX)(AX*1), Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	CMPQ    AX, CX
	JLT     loop
	VZEROUPPER
	RET

// func maxIntoU8x(dst, a *uint8, n int)
TEXT ·maxIntoU8x(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX
loop:
	VMOVDQU (SI)(AX*1), Y0
	VPMAXUB (DI)(AX*1), Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	CMPQ    AX, CX
	JLT     loop
	VZEROUPPER
	RET

// func set1U8x(dst *uint8, n, c int)
TEXT ·set1U8x(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ c+16(FP), AX
	MOVQ AX, X0
	VPBROADCASTB X0, Y0
	XORQ AX, AX
loop:
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	CMPQ    AX, CX
	JLT     loop
	VZEROUPPER
	RET

// func gatherU8x(dst *uint8, table *uint8, idx *uint8, n int)
TEXT ·gatherU8x(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ table+8(FP), SI
	MOVQ idx+16(FP), DX
	MOVQ n+24(FP), CX
	XORQ AX, AX
loop:
	MOVBQZX (DX)(AX*1), R8
	MOVBQZX (SI)(R8*1), R9
	MOVB    R9, (DI)(AX*1)
	INCQ    AX
	CMPQ    AX, CX
	JLT     loop
	RET

// func hmaxU8(a *uint8, n int) uint8
TEXT ·hmaxU8(SB), NOSPLIT, $0-17
	MOVQ a+0(FP), SI
	MOVQ n+8(FP), CX
	VMOVDQU (SI), Y0
	MOVQ $32, AX
	JMP  cond
loop:
	VPMAXUB (SI)(AX*1), Y0, Y0
	ADDQ    $32, AX
cond:
	CMPQ AX, CX
	JLT  loop
	VEXTRACTI128 $1, Y0, X1
	VPMAXUB X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VPMAXUB X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPMAXUB X1, X0, X0
	VPSRLD  $16, X0, X1
	VPMAXUB X1, X0, X0
	VPSRLW  $8, X0, X1
	VPMAXUB X1, X0, X0
	MOVQ    X0, AX
	MOVB    AX, ret+16(FP)
	VZEROUPPER
	RET

// func anyGEU8x(a *uint8, n, threshold int) bool
TEXT ·anyGEU8x(SB), NOSPLIT, $0-25
	MOVQ a+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ threshold+16(FP), AX
	MOVQ AX, X2
	VPBROADCASTB X2, Y2
	VPXOR Y3, Y3, Y3
	XORQ  AX, AX
loop:
	VMOVDQU  (SI)(AX*1), Y0
	VPMAXUB  Y2, Y0, Y1
	VPCMPEQB Y0, Y1, Y1
	VPOR     Y1, Y3, Y3
	ADDQ     $32, AX
	CMPQ     AX, CX
	JLT      loop
	VPMOVMSKB Y3, AX
	TESTL AX, AX
	SETNE ret+24(FP)
	VZEROUPPER
	RET

// func anyGTU8x(a, b *uint8, n int) bool
//
// No unsigned byte greater-than exists; a lane satisfies a <= b exactly
// when max(a, b) == b, so the accumulated AND of those masks is all-ones
// iff no lane of a exceeds b.
TEXT ·anyGTU8x(SB), NOSPLIT, $0-25
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DX
	MOVQ n+16(FP), CX
	VPCMPEQB Y3, Y3, Y3
	XORQ AX, AX
loop:
	VMOVDQU  (SI)(AX*1), Y0
	VMOVDQU  (DX)(AX*1), Y1
	VPMAXUB  Y1, Y0, Y2
	VPCMPEQB Y1, Y2, Y2
	VPAND    Y2, Y3, Y3
	ADDQ     $32, AX
	CMPQ     AX, CX
	JLT      loop
	VPMOVMSKB Y3, AX
	NOTL  AX
	TESTL AX, AX
	SETNE ret+24(FP)
	VZEROUPPER
	RET

// ---- fused column kernels ----

// func stepCol16SP(h, e, f, diag, maxv *int16, score *int16, seq *uint8, rows, lanes, qr, r int)
//
// Register plan per 16-lane strip: Y0 diag, Y1 F, Y2 maxv, Y3 qr, Y4 r,
// Y5 zero, Y6 H/score, Y7 up, Y8 E. DI/SI walk the h/e tile rows, R8 is
// the strip's score-table base (row selected by seq byte * row stride).
TEXT ·stepCol16SP(SB), NOSPLIT, $0-88
	MOVQ lanes+64(FP), R10
	SHLQ $1, R10              // row stride in bytes
	MOVQ qr+72(FP), AX
	MOVQ AX, X3
	VPBROADCASTW X3, Y3
	MOVQ r+80(FP), AX
	MOVQ AX, X4
	VPBROADCASTW X4, Y4
	VPXOR Y5, Y5, Y5
	XORQ  R11, R11            // strip byte offset
strip:
	MOVQ diag+24(FP), AX
	VMOVDQU (AX)(R11*1), Y0
	MOVQ f+16(FP), AX
	VMOVDQU (AX)(R11*1), Y1
	MOVQ maxv+32(FP), AX
	VMOVDQU (AX)(R11*1), Y2
	MOVQ h+0(FP), DI
	ADDQ R11, DI
	MOVQ e+8(FP), SI
	ADDQ R11, SI
	MOVQ score+40(FP), R8
	ADDQ R11, R8
	MOVQ seq+48(FP), DX
	MOVQ rows+56(FP), R9
rowloop:
	MOVBQZX (DX), BX
	INCQ    DX
	IMULQ   R10, BX
	VMOVDQU (R8)(BX*1), Y6    // score row for this query residue
	VPADDSW Y0, Y6, Y6        // diag + score, saturating
	VMOVDQU (DI), Y7          // up (previous column's H)
	VMOVDQU (SI), Y8          // E
	VPMAXSW Y8, Y6, Y6
	VPMAXSW Y1, Y6, Y6
	VPMAXSW Y5, Y6, Y6        // clamp at zero
	VPMAXSW Y6, Y2, Y2        // score tracker
	VMOVDQU Y6, (DI)
	VPSUBSW Y3, Y6, Y6        // uv = H - qr
	VPSUBSW Y4, Y8, Y8        // E - r
	VPMAXSW Y6, Y8, Y8
	VMOVDQU Y8, (SI)
	VPSUBSW Y4, Y1, Y1        // F - r
	VPMAXSW Y6, Y1, Y1
	VMOVDQA Y7, Y0            // diag carries down the column
	ADDQ    R10, DI
	ADDQ    R10, SI
	DECQ    R9
	JNZ     rowloop
	MOVQ diag+24(FP), AX
	VMOVDQU Y0, (AX)(R11*1)
	MOVQ f+16(FP), AX
	VMOVDQU Y1, (AX)(R11*1)
	MOVQ maxv+32(FP), AX
	VMOVDQU Y2, (AX)(R11*1)
	ADDQ $32, R11
	CMPQ R11, R10
	JLT  strip
	VZEROUPPER
	RET

// func stepCol16QP(h, e, f, diag, maxv *int16, qp *int16, stride int, col *uint8, rows, lanes, qr, r int)
//
// The score vector is gathered from the query-profile row with vpgatherdd
// (dword loads at word indices; the high halves are masked and the pair
// packed back to words). Y10/Y11 hold the strip's zero-extended column
// residues, Y15 the 0x0000FFFF dword mask, Y12 the per-gather mask.
// Requires one spare element past the last profile row (wrapper-checked).
TEXT ·stepCol16QP(SB), NOSPLIT, $0-96
	MOVQ lanes+72(FP), R10
	SHLQ $1, R10              // row stride in bytes
	MOVQ stride+48(FP), R12
	SHLQ $1, R12              // profile row stride in bytes
	MOVQ qr+80(FP), AX
	MOVQ AX, X3
	VPBROADCASTW X3, Y3
	MOVQ r+88(FP), AX
	MOVQ AX, X4
	VPBROADCASTW X4, Y4
	VPXOR    Y5, Y5, Y5
	VPCMPEQD Y15, Y15, Y15
	VPSRLD   $16, Y15, Y15    // 0x0000FFFF per dword
	XORQ R11, R11             // strip byte offset (state arrays)
	XORQ R13, R13             // strip byte offset (col residues)
strip:
	MOVQ col+56(FP), AX
	ADDQ R13, AX
	VPMOVZXBD (AX), Y10       // lanes 0-7 residue indices as dwords
	VPMOVZXBD 8(AX), Y11      // lanes 8-15
	MOVQ diag+24(FP), AX
	VMOVDQU (AX)(R11*1), Y0
	MOVQ f+16(FP), AX
	VMOVDQU (AX)(R11*1), Y1
	MOVQ maxv+32(FP), AX
	VMOVDQU (AX)(R11*1), Y2
	MOVQ h+0(FP), DI
	ADDQ R11, DI
	MOVQ e+8(FP), SI
	ADDQ R11, SI
	MOVQ qp+40(FP), R8
	MOVQ rows+64(FP), R9
rowloop:
	VPCMPEQD   Y12, Y12, Y12
	VPGATHERDD Y12, (R8)(Y10*2), Y13
	VPCMPEQD   Y12, Y12, Y12
	VPGATHERDD Y12, (R8)(Y11*2), Y14
	VPAND      Y15, Y13, Y13
	VPAND      Y15, Y14, Y14
	VPACKUSDW  Y14, Y13, Y6
	VPERMQ     $0xD8, Y6, Y6  // undo the per-128-lane interleave
	VPADDSW Y0, Y6, Y6
	VMOVDQU (DI), Y7
	VMOVDQU (SI), Y8
	VPMAXSW Y8, Y6, Y6
	VPMAXSW Y1, Y6, Y6
	VPMAXSW Y5, Y6, Y6
	VPMAXSW Y6, Y2, Y2
	VMOVDQU Y6, (DI)
	VPSUBSW Y3, Y6, Y6
	VPSUBSW Y4, Y8, Y8
	VPMAXSW Y6, Y8, Y8
	VMOVDQU Y8, (SI)
	VPSUBSW Y4, Y1, Y1
	VPMAXSW Y6, Y1, Y1
	VMOVDQA Y7, Y0
	ADDQ    R12, R8           // next query-profile row
	ADDQ    R10, DI
	ADDQ    R10, SI
	DECQ    R9
	JNZ     rowloop
	MOVQ diag+24(FP), AX
	VMOVDQU Y0, (AX)(R11*1)
	MOVQ f+16(FP), AX
	VMOVDQU Y1, (AX)(R11*1)
	MOVQ maxv+32(FP), AX
	VMOVDQU Y2, (AX)(R11*1)
	ADDQ $32, R11
	ADDQ $16, R13
	CMPQ R11, R10
	JLT  strip
	VZEROUPPER
	RET

// func stepCol8SP(h, e, f, diag, maxv *uint8, score *uint8, seq *uint8, rows, lanes, bias, qr, r int)
//
// The biased unsigned-byte pass: saturating add of the biased score, then
// a saturating subtract of the bias floors the cell at zero. Y9 holds the
// broadcast bias; otherwise the register plan mirrors stepCol16SP over 32
// byte lanes.
TEXT ·stepCol8SP(SB), NOSPLIT, $0-96
	MOVQ lanes+64(FP), R10    // row stride in bytes
	MOVQ bias+72(FP), AX
	MOVQ AX, X9
	VPBROADCASTB X9, Y9
	MOVQ qr+80(FP), AX
	MOVQ AX, X3
	VPBROADCASTB X3, Y3
	MOVQ r+88(FP), AX
	MOVQ AX, X4
	VPBROADCASTB X4, Y4
	XORQ R11, R11             // strip byte offset
strip:
	MOVQ diag+24(FP), AX
	VMOVDQU (AX)(R11*1), Y0
	MOVQ f+16(FP), AX
	VMOVDQU (AX)(R11*1), Y1
	MOVQ maxv+32(FP), AX
	VMOVDQU (AX)(R11*1), Y2
	MOVQ h+0(FP), DI
	ADDQ R11, DI
	MOVQ e+8(FP), SI
	ADDQ R11, SI
	MOVQ score+40(FP), R8
	ADDQ R11, R8
	MOVQ seq+48(FP), DX
	MOVQ rows+56(FP), R9
rowloop:
	MOVBQZX  (DX), BX
	INCQ     DX
	IMULQ    R10, BX
	VMOVDQU  (R8)(BX*1), Y6   // biased score row
	VPADDUSB Y0, Y6, Y6       // diag + biased score, saturating
	VPSUBUSB Y9, Y6, Y6       // remove bias, floor at zero
	VMOVDQU  (DI), Y7         // up
	VMOVDQU  (SI), Y8         // E
	VPMAXUB  Y8, Y6, Y6
	VPMAXUB  Y1, Y6, Y6
	VPMAXUB  Y6, Y2, Y2
	VMOVDQU  Y6, (DI)
	VPSUBUSB Y3, Y6, Y6       // uv = H - qr, floored
	VPSUBUSB Y4, Y8, Y8
	VPMAXUB  Y6, Y8, Y8
	VMOVDQU  Y8, (SI)
	VPSUBUSB Y4, Y1, Y1
	VPMAXUB  Y6, Y1, Y1
	VMOVDQA  Y7, Y0
	ADDQ     R10, DI
	ADDQ     R10, SI
	DECQ     R9
	JNZ      rowloop
	MOVQ diag+24(FP), AX
	VMOVDQU Y0, (AX)(R11*1)
	MOVQ f+16(FP), AX
	VMOVDQU Y1, (AX)(R11*1)
	MOVQ maxv+32(FP), AX
	VMOVDQU Y2, (AX)(R11*1)
	ADDQ $32, R11
	CMPQ R11, R10
	JLT  strip
	VZEROUPPER
	RET

// func stepCol8QP(h, e, f, diag, maxv *uint8, qp *uint8, stride int, col *uint8, rows, lanes, bias, qr, r int)
//
// Byte gather as an in-register table permute: the profile row's 32 bytes
// are loaded as two 16-byte halves broadcast to both 128-bit lanes
// (VBROADCASTI128, reading up to 32 bytes from the row start —
// wrapper-checked spare capacity), then vpshufb looks up idx in the low
// half and idx-16 in the high half (indices with the sign bit set shuffle
// to zero), and vpblendvb selects by idx > 15. Y10 idx, Y11 idx-16,
// Y12 blend mask, all strip-invariant.
TEXT ·stepCol8QP(SB), NOSPLIT, $0-104
	MOVQ lanes+72(FP), R10    // row stride in bytes
	MOVQ stride+48(FP), R12   // profile row stride in bytes
	MOVQ bias+80(FP), AX
	MOVQ AX, X9
	VPBROADCASTB X9, Y9
	MOVQ qr+88(FP), AX
	MOVQ AX, X3
	VPBROADCASTB X3, Y3
	MOVQ r+96(FP), AX
	MOVQ AX, X4
	VPBROADCASTB X4, Y4
	XORQ R11, R11             // strip byte offset
strip:
	MOVQ col+56(FP), AX
	ADDQ R11, AX
	VMOVDQU (AX), Y10         // residue indices, one byte per lane
	MOVQ $0x1010101010101010, AX
	MOVQ AX, X11
	VPBROADCASTQ X11, Y11
	VPSUBB Y11, Y10, Y11      // idx - 16 (sign bit set for idx < 16)
	MOVQ $0x0F0F0F0F0F0F0F0F, AX
	MOVQ AX, X12
	VPBROADCASTQ X12, Y12
	VPCMPGTB Y12, Y10, Y12    // idx > 15: take the high-half lookup
	MOVQ diag+24(FP), AX
	VMOVDQU (AX)(R11*1), Y0
	MOVQ f+16(FP), AX
	VMOVDQU (AX)(R11*1), Y1
	MOVQ maxv+32(FP), AX
	VMOVDQU (AX)(R11*1), Y2
	MOVQ h+0(FP), DI
	ADDQ R11, DI
	MOVQ e+8(FP), SI
	ADDQ R11, SI
	MOVQ qp+40(FP), R8
	MOVQ rows+64(FP), R9
rowloop:
	VBROADCASTI128 (R8), Y13  // profile row bytes 0-15 in both lanes
	VBROADCASTI128 16(R8), Y14 // bytes 16-31 (over-read past row end)
	VPSHUFB   Y10, Y13, Y13   // low-half lookup
	VPSHUFB   Y11, Y14, Y14   // high-half lookup
	VPBLENDVB Y12, Y14, Y13, Y6
	VPADDUSB Y0, Y6, Y6
	VPSUBUSB Y9, Y6, Y6
	VMOVDQU  (DI), Y7
	VMOVDQU  (SI), Y8
	VPMAXUB  Y8, Y6, Y6
	VPMAXUB  Y1, Y6, Y6
	VPMAXUB  Y6, Y2, Y2
	VMOVDQU  Y6, (DI)
	VPSUBUSB Y3, Y6, Y6
	VPSUBUSB Y4, Y8, Y8
	VPMAXUB  Y6, Y8, Y8
	VMOVDQU  Y8, (SI)
	VPSUBUSB Y4, Y1, Y1
	VPMAXUB  Y6, Y1, Y1
	VMOVDQA  Y7, Y0
	ADDQ     R12, R8          // next query-profile row
	ADDQ     R10, DI
	ADDQ     R10, SI
	DECQ     R9
	JNZ      rowloop
	MOVQ diag+24(FP), AX
	VMOVDQU Y0, (AX)(R11*1)
	MOVQ f+16(FP), AX
	VMOVDQU Y1, (AX)(R11*1)
	MOVQ maxv+32(FP), AX
	VMOVDQU Y2, (AX)(R11*1)
	ADDQ $32, R11
	CMPQ R11, R10
	JLT  strip
	VZEROUPPER
	RET

// func buildRows16(dst, table *int16, idx *uint8, nrows, lanes, stride int)
//
// The score-profile transposition as nrows vpgatherdd word gathers per
// strip (same dword-load/mask/pack scheme as stepCol16QP).
TEXT ·buildRows16(SB), NOSPLIT, $0-48
	MOVQ lanes+32(FP), R10
	SHLQ $1, R10              // dst row stride in bytes
	MOVQ stride+40(FP), R12
	SHLQ $1, R12              // table row stride in bytes
	VPCMPEQD Y15, Y15, Y15
	VPSRLD   $16, Y15, Y15
	XORQ R11, R11             // strip byte offset (dst)
	XORQ R13, R13             // strip byte offset (idx)
strip:
	MOVQ idx+16(FP), AX
	ADDQ R13, AX
	VPMOVZXBD (AX), Y10
	VPMOVZXBD 8(AX), Y11
	MOVQ dst+0(FP), DI
	ADDQ R11, DI
	MOVQ table+8(FP), R8
	MOVQ nrows+24(FP), R9
rowloop:
	VPCMPEQD   Y12, Y12, Y12
	VPGATHERDD Y12, (R8)(Y10*2), Y13
	VPCMPEQD   Y12, Y12, Y12
	VPGATHERDD Y12, (R8)(Y11*2), Y14
	VPAND      Y15, Y13, Y13
	VPAND      Y15, Y14, Y14
	VPACKUSDW  Y14, Y13, Y6
	VPERMQ     $0xD8, Y6, Y6
	VMOVDQU    Y6, (DI)
	ADDQ R12, R8
	ADDQ R10, DI
	DECQ R9
	JNZ  rowloop
	ADDQ $32, R11
	ADDQ $16, R13
	CMPQ R11, R10
	JLT  strip
	VZEROUPPER
	RET

// func buildRows8(dst, table, idx *uint8, nrows, lanes, stride int)
//
// The biased-byte transposition via the two-half vpshufb lookup of
// stepCol8QP.
TEXT ·buildRows8(SB), NOSPLIT, $0-48
	MOVQ lanes+32(FP), R10    // dst row stride in bytes
	MOVQ stride+40(FP), R12   // table row stride in bytes
	XORQ R11, R11             // strip byte offset
strip:
	MOVQ idx+16(FP), AX
	ADDQ R11, AX
	VMOVDQU (AX), Y10
	MOVQ $0x1010101010101010, AX
	MOVQ AX, X11
	VPBROADCASTQ X11, Y11
	VPSUBB Y11, Y10, Y11
	MOVQ $0x0F0F0F0F0F0F0F0F, AX
	MOVQ AX, X12
	VPBROADCASTQ X12, Y12
	VPCMPGTB Y12, Y10, Y12
	MOVQ dst+0(FP), DI
	ADDQ R11, DI
	MOVQ table+8(FP), R8
	MOVQ nrows+24(FP), R9
rowloop:
	VBROADCASTI128 (R8), Y13
	VBROADCASTI128 16(R8), Y14
	VPSHUFB   Y10, Y13, Y13
	VPSHUFB   Y11, Y14, Y14
	VPBLENDVB Y12, Y14, Y13, Y6
	VMOVDQU   Y6, (DI)
	ADDQ R12, R8
	ADDQ R10, DI
	DECQ R9
	JNZ  rowloop
	ADDQ $32, R11
	CMPQ R11, R10
	JLT  strip
	VZEROUPPER
	RET
