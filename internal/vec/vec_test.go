package vec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSatSaturates(t *testing.T) {
	a := I16{30000, -30000, 100, MaxI16}
	b := I16{10000, -10000, 28, 1}
	dst := make(I16, 4)
	AddSat(dst, a, b)
	want := I16{MaxI16, MinI16, 128, MaxI16}
	for l := range want {
		if dst[l] != want[l] {
			t.Errorf("lane %d: got %d want %d", l, dst[l], want[l])
		}
	}
}

func TestSubSatConst(t *testing.T) {
	a := I16{MinI16, 0, 5}
	dst := make(I16, 3)
	SubSatConst(dst, a, 10)
	want := I16{MinI16, -10, -5}
	for l := range want {
		if dst[l] != want[l] {
			t.Errorf("lane %d: got %d want %d", l, dst[l], want[l])
		}
	}
}

func TestMaxVariants(t *testing.T) {
	a := I16{1, 5, -3}
	b := I16{2, 4, -7}
	dst := make(I16, 3)
	Max(dst, a, b)
	if dst[0] != 2 || dst[1] != 5 || dst[2] != -3 {
		t.Errorf("Max = %v", dst)
	}
	MaxConst(dst, a, 0)
	if dst[0] != 1 || dst[1] != 5 || dst[2] != 0 {
		t.Errorf("MaxConst = %v", dst)
	}
	acc := I16{0, 10, -5}
	MaxInto(acc, a)
	if acc[0] != 1 || acc[1] != 10 || acc[2] != -3 {
		t.Errorf("MaxInto = %v", acc)
	}
}

func TestSet1AndHorizontalMax(t *testing.T) {
	dst := make(I16, int(Lanes512))
	Set1(dst, -7)
	for l, v := range dst {
		if v != -7 {
			t.Fatalf("lane %d = %d", l, v)
		}
	}
	dst[17] = 300
	if got := HorizontalMax(dst); got != 300 {
		t.Fatalf("HorizontalMax = %d", got)
	}
}

func TestGather(t *testing.T) {
	table := []int16{10, 20, 30, 40}
	idx := []uint8{3, 0, 2}
	dst := make(I16, 3)
	Gather(dst, table, idx)
	if dst[0] != 40 || dst[1] != 10 || dst[2] != 30 {
		t.Fatalf("Gather = %v", dst)
	}
}

func TestAnyGE(t *testing.T) {
	a := I16{1, 2, 3}
	if AnyGE(a, 4) {
		t.Error("AnyGE(3-max, 4) = true")
	}
	if !AnyGE(a, 3) {
		t.Error("AnyGE(3-max, 3) = false")
	}
}

// Property: AddSat equals clamped wide addition on random lanes.
func TestAddSatProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		n := rng.Intn(int(Lanes512)) + 1
		a, b, dst := make(I16, n), make(I16, n), make(I16, n)
		for l := 0; l < n; l++ {
			a[l] = int16(rng.Intn(1 << 16))
			b[l] = int16(rng.Intn(1 << 16))
		}
		AddSat(dst, a, b)
		for l := 0; l < n; l++ {
			wide := int32(a[l]) + int32(b[l])
			if wide > MaxI16 {
				wide = MaxI16
			}
			if wide < MinI16 {
				wide = MinI16
			}
			if int32(dst[l]) != wide {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Max is commutative, idempotent and bounded by its operands.
func TestMaxProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(uint8) bool {
		n := rng.Intn(int(Lanes256)) + 1
		a, b, ab, ba := make(I16, n), make(I16, n), make(I16, n), make(I16, n)
		for l := 0; l < n; l++ {
			a[l] = int16(rng.Intn(1 << 16))
			b[l] = int16(rng.Intn(1 << 16))
		}
		Max(ab, a, b)
		Max(ba, b, a)
		for l := 0; l < n; l++ {
			if ab[l] != ba[l] {
				return false
			}
			if ab[l] < a[l] || ab[l] < b[l] {
				return false
			}
			if ab[l] != a[l] && ab[l] != b[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAnyGT(t *testing.T) {
	a := I16{1, 5, -3}
	b := I16{1, 4, -3}
	if !AnyGT(a, b) {
		t.Error("AnyGT missed 5>4")
	}
	if AnyGT(b, a) && b[1] >= a[1] {
		t.Error("AnyGT(b,a) true with no greater lane")
	}
	if AnyGT(a, a) {
		t.Error("AnyGT(a,a) = true")
	}
}

// ---- 8-bit unsigned lane primitives ----

func TestU8Saturation(t *testing.T) {
	a := U8{0, 100, 200, 255}
	b := U8{0, 100, 100, 1}
	dst := make(U8, 4)
	AddSatU8(dst, a, b)
	for i, want := range []uint8{0, 200, 255, 255} {
		if dst[i] != want {
			t.Errorf("AddSatU8 lane %d = %d, want %d", i, dst[i], want)
		}
	}
	SubSatU8Const(dst, a, 150)
	for i, want := range []uint8{0, 0, 50, 105} {
		if dst[i] != want {
			t.Errorf("SubSatU8Const lane %d = %d, want %d", i, dst[i], want)
		}
	}
}

func TestU8MaxOps(t *testing.T) {
	a := U8{1, 200, 7}
	b := U8{3, 100, 7}
	dst := make(U8, 3)
	MaxU8s(dst, a, b)
	if dst[0] != 3 || dst[1] != 200 || dst[2] != 7 {
		t.Errorf("MaxU8s = %v", dst)
	}
	tracker := U8{2, 150, 9}
	MaxIntoU8(tracker, a)
	if tracker[0] != 2 || tracker[1] != 200 || tracker[2] != 9 {
		t.Errorf("MaxIntoU8 = %v", tracker)
	}
	if HorizontalMaxU8(a) != 200 {
		t.Errorf("HorizontalMaxU8 = %d", HorizontalMaxU8(a))
	}
}

func TestU8BroadcastGatherTests(t *testing.T) {
	dst := make(U8, 5)
	Set1U8(dst, 42)
	for _, v := range dst {
		if v != 42 {
			t.Fatalf("Set1U8 = %v", dst)
		}
	}
	table := []uint8{9, 8, 7, 6}
	GatherU8(dst[:3], table, []uint8{3, 0, 2})
	if dst[0] != 6 || dst[1] != 9 || dst[2] != 7 {
		t.Errorf("GatherU8 = %v", dst[:3])
	}
	if !AnyGEU8(U8{1, 250}, 250) || AnyGEU8(U8{1, 249}, 250) {
		t.Error("AnyGEU8 threshold wrong")
	}
	if !AnyGTU8(U8{1, 5}, U8{1, 4}) || AnyGTU8(U8{1, 4}, U8{1, 4}) {
		t.Error("AnyGTU8 wrong")
	}
}
