// Package vec emulates the fixed-width integer SIMD units of the two
// devices modelled by this library: the 256-bit vectors of the Intel Xeon
// (16 lanes of int16) and the 512-bit vectors of the Xeon Phi (32 lanes of
// int16). The "intrinsic" alignment kernels in internal/core are written
// against this package exactly as hand-vectorised C would be written
// against immintrin.h: saturating 16-bit adds and subtractions, lane-wise
// maxima, broadcasts, and the gather operation whose presence (Phi) or
// absence (Xeon) drives the query-profile results in the paper.
//
// The emulation is semantic, not temporal: operations compute exact lane
// results; the cycle cost of each operation class is attributed by
// internal/device from the structural counts reported by the kernels.
package vec

import "math"

// Width is the number of 16-bit lanes in an emulated vector register.
type Width int

const (
	// Lanes256 is the lane count of a 256-bit register holding int16
	// elements (the Xeon model).
	Lanes256 Width = 16
	// Lanes512 is the lane count of a 512-bit register holding int16
	// elements (the Xeon Phi model).
	Lanes512 Width = 32
)

// MaxI16 and MinI16 are the saturation rails of 16-bit lanes.
const (
	MaxI16 = math.MaxInt16
	MinI16 = math.MinInt16
)

// I16 is an emulated vector register of int16 lanes. Slices are used
// rather than fixed arrays so both widths share one implementation; kernels
// allocate them with exactly the device lane count and the helpers assume
// len(dst) == len(src) for every operand.
type I16 []int16

func sat(v int32) int16 {
	if v > MaxI16 {
		return MaxI16
	}
	if v < MinI16 {
		return MinI16
	}
	return int16(v)
}

// AddSat sets dst = a + b with signed 16-bit saturation (vpaddsw).
func AddSat(dst, a, b I16) {
	for l := range dst {
		dst[l] = sat(int32(a[l]) + int32(b[l]))
	}
}

// SubSatConst sets dst = a - c with signed 16-bit saturation (vpsubsw with
// a broadcast operand).
func SubSatConst(dst, a I16, c int16) {
	for l := range dst {
		dst[l] = sat(int32(a[l]) - int32(c))
	}
}

// Max sets dst = max(a, b) lane-wise (vpmaxsw).
func Max(dst, a, b I16) {
	for l := range dst {
		if a[l] > b[l] {
			dst[l] = a[l]
		} else {
			dst[l] = b[l]
		}
	}
}

// MaxConst sets dst = max(a, c) lane-wise against a broadcast constant.
func MaxConst(dst, a I16, c int16) {
	for l := range dst {
		if a[l] > c {
			dst[l] = a[l]
		} else {
			dst[l] = c
		}
	}
}

// MaxInto sets dst = max(dst, a) lane-wise; the running-maximum update of
// the score tracker.
func MaxInto(dst, a I16) {
	for l := range dst {
		if a[l] > dst[l] {
			dst[l] = a[l]
		}
	}
}

// Set1 broadcasts c into every lane (vpbroadcastw).
func Set1(dst I16, c int16) {
	for l := range dst {
		dst[l] = c
	}
}

// Gather sets dst[l] = table[idx[l]] (vpgatherdd-style indexed load). On
// the Xeon model this operation has no hardware equivalent and is costed by
// the device model as a shuffle/insert sequence; on the Phi it maps to the
// native gather. idx values must be valid table offsets.
func Gather(dst I16, table []int16, idx []uint8) {
	for l := range dst {
		dst[l] = table[idx[l]]
	}
}

// HorizontalMax returns the maximum lane value (vphmaxsw-style reduction
// tree).
func HorizontalMax(a I16) int16 {
	m := a[0]
	for _, v := range a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// AnyGE reports whether any lane is >= threshold; kernels use it to detect
// potential 16-bit saturation and trigger 32-bit recomputation.
func AnyGE(a I16, threshold int16) bool {
	for _, v := range a {
		if v >= threshold {
			return true
		}
	}
	return false
}

// AnyGT reports whether any lane of a exceeds the corresponding lane of b
// (vpcmpgtw + movemask); the lazy-F termination test of striped kernels.
func AnyGT(a, b I16) bool {
	for l := range a {
		if a[l] > b[l] {
			return true
		}
	}
	return false
}
