// Package vec implements the fixed-width integer SIMD primitive set the
// alignment kernels in internal/core are written against, exactly as
// hand-vectorised C would be written against immintrin.h: saturating
// 16-bit and unsigned 8-bit adds and subtractions, lane-wise maxima,
// broadcasts, and the gather operation whose presence (Phi) or absence
// (Xeon) drives the query-profile results in the paper.
//
// Two backends implement the set (see dispatch.go): portable pure-Go
// loops — the verified reference, and the emulation used to model the
// paper's devices at widths the host does not have — and native AVX2
// assembly selected at runtime on capable amd64 hosts, which turns the
// emulated registers into real 256-bit ones. Both produce bit-identical
// lane results. Beyond the per-op primitives, the package exports fused
// column kernels (step.go) that advance an entire database column per
// call, the granularity at which the native backend pays off.
//
// The lane-count emulation remains semantic, not temporal: the cycle cost
// of each operation class is attributed by internal/device from the
// structural counts reported by the kernels, independent of which backend
// executed the lanes.
package vec

import "math"

// Width is the number of 16-bit lanes in an emulated vector register.
type Width int

const (
	// Lanes256 is the lane count of a 256-bit register holding int16
	// elements (the Xeon model).
	Lanes256 Width = 16
	// Lanes512 is the lane count of a 512-bit register holding int16
	// elements (the Xeon Phi model).
	Lanes512 Width = 32
)

// MaxI16 and MinI16 are the saturation rails of 16-bit lanes.
const (
	MaxI16 = math.MaxInt16
	MinI16 = math.MinInt16
)

// I16 is an emulated vector register of int16 lanes. Slices are used
// rather than fixed arrays so both widths share one implementation; kernels
// allocate them with exactly the device lane count and the helpers assume
// len(dst) == len(src) for every operand.
type I16 []int16

func sat(v int32) int16 {
	if v > MaxI16 {
		return MaxI16
	}
	if v < MinI16 {
		return MinI16
	}
	return int16(v)
}

// AddSat sets dst = a + b with signed 16-bit saturation (vpaddsw).
func AddSat(dst, a, b I16) {
	if native16(len(dst)) {
		addSat16(&dst[0], &a[0], &b[0], len(dst))
		return
	}
	addSatGeneric(dst, a, b)
}

//sw:hotpath
func addSatGeneric(dst, a, b I16) {
	for l := range dst {
		dst[l] = sat(int32(a[l]) + int32(b[l]))
	}
}

// SubSatConst sets dst = a - c with signed 16-bit saturation (vpsubsw with
// a broadcast operand).
func SubSatConst(dst, a I16, c int16) {
	if native16(len(dst)) {
		subSatConst16(&dst[0], &a[0], len(dst), int(c))
		return
	}
	subSatConstGeneric(dst, a, c)
}

//sw:hotpath
func subSatConstGeneric(dst, a I16, c int16) {
	for l := range dst {
		dst[l] = sat(int32(a[l]) - int32(c))
	}
}

// Max sets dst = max(a, b) lane-wise (vpmaxsw).
func Max(dst, a, b I16) {
	if native16(len(dst)) {
		max16(&dst[0], &a[0], &b[0], len(dst))
		return
	}
	maxGeneric(dst, a, b)
}

//sw:hotpath
func maxGeneric(dst, a, b I16) {
	for l := range dst {
		if a[l] > b[l] {
			dst[l] = a[l]
		} else {
			dst[l] = b[l]
		}
	}
}

// MaxConst sets dst = max(a, c) lane-wise against a broadcast constant.
func MaxConst(dst, a I16, c int16) {
	if native16(len(dst)) {
		maxConst16(&dst[0], &a[0], len(dst), int(c))
		return
	}
	maxConstGeneric(dst, a, c)
}

//sw:hotpath
func maxConstGeneric(dst, a I16, c int16) {
	for l := range dst {
		if a[l] > c {
			dst[l] = a[l]
		} else {
			dst[l] = c
		}
	}
}

// MaxInto sets dst = max(dst, a) lane-wise; the running-maximum update of
// the score tracker.
func MaxInto(dst, a I16) {
	if native16(len(dst)) {
		maxInto16(&dst[0], &a[0], len(dst))
		return
	}
	maxIntoGeneric(dst, a)
}

//sw:hotpath
func maxIntoGeneric(dst, a I16) {
	for l := range dst {
		if a[l] > dst[l] {
			dst[l] = a[l]
		}
	}
}

// Set1 broadcasts c into every lane (vpbroadcastw).
func Set1(dst I16, c int16) {
	if native16(len(dst)) {
		set1x16(&dst[0], len(dst), int(c))
		return
	}
	set1Generic(dst, c)
}

//sw:hotpath
func set1Generic(dst I16, c int16) {
	for l := range dst {
		dst[l] = c
	}
}

// Gather sets dst[l] = table[idx[l]] (vpgatherdd-style indexed load). On
// the Xeon model this operation has no hardware equivalent and is costed by
// the device model as a shuffle/insert sequence; on the Phi it maps to the
// native gather. idx values must be valid table offsets. (The native
// backend performs the loads scalar too — the insert sequence — because an
// arbitrary caller table carries no over-read padding guarantee; the fused
// column kernels in step.go use true vpgatherdd against the padded profile
// tables.)
func Gather(dst I16, table []int16, idx []uint8) {
	if native16(len(dst)) {
		gather16(&dst[0], &table[0], &idx[0], len(dst))
		return
	}
	gatherGeneric(dst, table, idx)
}

//sw:hotpath
func gatherGeneric(dst I16, table []int16, idx []uint8) {
	for l := range dst {
		dst[l] = table[idx[l]]
	}
}

// HorizontalMax returns the maximum lane value (vphmaxsw-style reduction
// tree).
func HorizontalMax(a I16) int16 {
	if native16(len(a)) {
		return hmax16(&a[0], len(a))
	}
	return horizontalMaxGeneric(a)
}

//sw:hotpath
func horizontalMaxGeneric(a I16) int16 {
	m := a[0]
	for _, v := range a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// AnyGE reports whether any lane is >= threshold; kernels use it to detect
// potential 16-bit saturation and trigger 32-bit recomputation.
func AnyGE(a I16, threshold int16) bool {
	if native16(len(a)) {
		return anyGE16(&a[0], len(a), int(threshold))
	}
	return anyGEGeneric(a, threshold)
}

//sw:hotpath
func anyGEGeneric(a I16, threshold int16) bool {
	for _, v := range a {
		if v >= threshold {
			return true
		}
	}
	return false
}

// AnyGT reports whether any lane of a exceeds the corresponding lane of b
// (vpcmpgtw + movemask); the lazy-F termination test of striped kernels.
func AnyGT(a, b I16) bool {
	if native16(len(a)) {
		return anyGT16(&a[0], &b[0], len(a))
	}
	return anyGTGeneric(a, b)
}

//sw:hotpath
func anyGTGeneric(a, b I16) bool {
	for l := range a {
		if a[l] > b[l] {
			return true
		}
	}
	return false
}

// ---- 8-bit unsigned lanes ----
//
// The 8-bit first pass of the precision ladder scores in unsigned byte
// lanes with biased substitution scores, the SSW Library's representation:
// a register holds twice as many lanes as the 16-bit form (32 on the Xeon's
// 256-bit vectors, 64 on the Phi's 512-bit vectors), H/E/F values are true
// non-negative cell values in [0, 255], and substitution scores are stored
// as score+bias so the per-cell add is a single unsigned saturating add
// followed by an unsigned saturating subtract of the bias. Saturation of
// the top rail marks a lane for 16-bit recomputation.

// MaxU8 is the top saturation rail of unsigned 8-bit lanes.
const MaxU8 = 255

// U8 is an emulated vector register of unsigned 8-bit lanes, the element
// type of the ladder's first pass. As with I16, slices let both device
// widths share one implementation.
type U8 []uint8

// AddSatU8 sets dst = a + b with unsigned 8-bit saturation (vpaddusb).
func AddSatU8(dst, a, b U8) {
	if native8(len(dst)) {
		addSatU8x(&dst[0], &a[0], &b[0], len(dst))
		return
	}
	addSatU8Generic(dst, a, b)
}

//sw:hotpath
func addSatU8Generic(dst, a, b U8) {
	for l := range dst {
		v := uint16(a[l]) + uint16(b[l])
		if v > MaxU8 {
			v = MaxU8
		}
		dst[l] = uint8(v)
	}
}

// SubSatU8Const sets dst = a - c with unsigned 8-bit saturation at zero
// (vpsubusb with a broadcast operand).
func SubSatU8Const(dst, a U8, c uint8) {
	if native8(len(dst)) {
		subSatConstU8(&dst[0], &a[0], len(dst), int(c))
		return
	}
	subSatU8ConstGeneric(dst, a, c)
}

//sw:hotpath
func subSatU8ConstGeneric(dst, a U8, c uint8) {
	for l := range dst {
		if a[l] > c {
			dst[l] = a[l] - c
		} else {
			dst[l] = 0
		}
	}
}

// MaxU8s sets dst = max(a, b) lane-wise (vpmaxub).
func MaxU8s(dst, a, b U8) {
	if native8(len(dst)) {
		maxU8x(&dst[0], &a[0], &b[0], len(dst))
		return
	}
	maxU8sGeneric(dst, a, b)
}

//sw:hotpath
func maxU8sGeneric(dst, a, b U8) {
	for l := range dst {
		if a[l] > b[l] {
			dst[l] = a[l]
		} else {
			dst[l] = b[l]
		}
	}
}

// MaxIntoU8 sets dst = max(dst, a) lane-wise; the running-maximum update.
func MaxIntoU8(dst, a U8) {
	if native8(len(dst)) {
		maxIntoU8x(&dst[0], &a[0], len(dst))
		return
	}
	maxIntoU8Generic(dst, a)
}

func maxIntoU8Generic(dst, a U8) {
	for l := range dst {
		if a[l] > dst[l] {
			dst[l] = a[l]
		}
	}
}

// Set1U8 broadcasts c into every lane (vpbroadcastb).
func Set1U8(dst U8, c uint8) {
	if native8(len(dst)) {
		set1U8x(&dst[0], len(dst), int(c))
		return
	}
	set1U8Generic(dst, c)
}

func set1U8Generic(dst U8, c uint8) {
	for l := range dst {
		dst[l] = c
	}
}

// GatherU8 sets dst[l] = table[idx[l]]; the byte-granularity indexed load
// of the 8-bit query-profile kernels. As with Gather, the native backend
// issues the loads scalar for arbitrary tables; the fused 8-bit column
// kernels use the in-register vpshufb table permute instead.
func GatherU8(dst U8, table []uint8, idx []uint8) {
	if native8(len(dst)) {
		gatherU8x(&dst[0], &table[0], &idx[0], len(dst))
		return
	}
	gatherU8Generic(dst, table, idx)
}

func gatherU8Generic(dst U8, table []uint8, idx []uint8) {
	for l := range dst {
		dst[l] = table[idx[l]]
	}
}

// HorizontalMaxU8 returns the maximum lane value.
func HorizontalMaxU8(a U8) uint8 {
	if native8(len(a)) {
		return hmaxU8(&a[0], len(a))
	}
	return horizontalMaxU8Generic(a)
}

func horizontalMaxU8Generic(a U8) uint8 {
	m := a[0]
	for _, v := range a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// AnyGEU8 reports whether any lane is >= threshold; the ladder's 8-bit
// saturation test.
func AnyGEU8(a U8, threshold uint8) bool {
	if native8(len(a)) {
		return anyGEU8x(&a[0], len(a), int(threshold))
	}
	return anyGEU8Generic(a, threshold)
}

func anyGEU8Generic(a U8, threshold uint8) bool {
	for _, v := range a {
		if v >= threshold {
			return true
		}
	}
	return false
}

// AnyGTU8 reports whether any lane of a exceeds the corresponding lane of
// b; the lazy-F termination test of the 8-bit striped pass.
func AnyGTU8(a, b U8) bool {
	if native8(len(a)) {
		return anyGTU8x(&a[0], &b[0], len(a))
	}
	return anyGTU8Generic(a, b)
}

func anyGTU8Generic(a, b U8) bool {
	for l := range a {
		if a[l] > b[l] {
			return true
		}
	}
	return false
}
