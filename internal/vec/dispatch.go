package vec

import (
	"os"
	"sync/atomic"
)

// Backend selection. The package ships two implementations of every
// primitive: the portable pure-Go loops (the verified reference, and the
// only implementation on non-amd64 hosts or under the purego build tag)
// and hand-written AVX2 assembly in vec_amd64.s. The assembly is selected
// per call when
//
//   - the binary was built with the native backend compiled in
//     (GOARCH=amd64 and no purego tag),
//   - the host CPU and OS support AVX2 (CPUID + XGETBV, checked once at
//     process start),
//   - the portable override is off (HETEROSW_VEC=portable in the
//     environment, or ForcePortable(true) from a test), and
//   - the lane count is a whole number of 256-bit registers (16 int16 or
//     32 uint8 lanes); odd widths always take the portable loops.
//
// The two backends are lane-exact: every assembly routine computes the
// same saturating two's-complement results as the Go reference, so kernel
// output is byte-identical whichever is selected. That property is pinned
// by the differential tests in this package, by core's FuzzKernelParity
// (which replays the intrinsic kernels under both backends) and by the
// repository's cross-backend conformance test.

// EnvPortable is the environment variable consulted once at process
// start: set HETEROSW_VEC=portable to force the pure-Go backend even on
// AVX2-capable hosts (benchmark baselines, fallback-path CI legs).
const EnvPortable = "HETEROSW_VEC"

var (
	// hasAVX2 is fixed at init: the binary has the assembly compiled in
	// and the host CPU+OS can execute it.
	hasAVX2 bool
	// forcedPortable is the runtime override. Atomic so tests can flip
	// backends while kernels run on other goroutines (conformance and
	// parity tests); reads on the hot path are plain loads on amd64.
	forcedPortable atomic.Bool
)

func init() {
	hasAVX2 = asmSupported && detectNative()
	if os.Getenv(EnvPortable) == "portable" {
		forcedPortable.Store(true)
	}
}

// enabled reports whether the native backend is selected right now.
func enabled() bool { return hasAVX2 && !forcedPortable.Load() }

// native16 reports whether a call over n int16 lanes dispatches to the
// AVX2 backend. With asmSupported a compile-time false (non-amd64 or
// purego), the whole test folds away.
func native16(n int) bool { return asmSupported && n >= 16 && n&15 == 0 && enabled() }

// native8 is native16 for uint8 lanes (32 per 256-bit register).
func native8(n int) bool { return asmSupported && n >= 32 && n&31 == 0 && enabled() }

// Native reports whether the AVX2 backend is currently selected for
// register-width lane counts.
func Native() bool { return enabled() }

// Backend names the currently selected backend: "avx2" or "portable".
func Backend() string {
	if enabled() {
		return "avx2"
	}
	return "portable"
}

// ForcePortable switches the portable backend on or off at runtime and
// returns the previous override, so tests can restore it:
//
//	defer vec.ForcePortable(vec.ForcePortable(true))
//
// Forcing portable is always honoured; ForcePortable(false) re-enables
// the native backend only where the host supports it.
func ForcePortable(force bool) bool {
	return forcedPortable.Swap(force)
}

// BackendInfo describes the selected vector backend, for surfacing in
// health endpoints and benchmark artifacts so performance numbers are
// attributable to real or emulated lanes.
type BackendInfo struct {
	// Backend is "avx2" or "portable".
	Backend string `json:"backend"`
	// AVX2 reports host capability (true even when the portable override
	// masks it).
	AVX2 bool `json:"avx2"`
	// Forced reports an active portable override (env var or
	// ForcePortable).
	Forced bool `json:"forced"`
	// Lanes16 and Lanes8 are the native register lane counts the selected
	// backend executes per instruction: 16/32 under AVX2, 0 for the
	// portable loops (which have no fixed hardware width).
	Lanes16 int `json:"lanes16"`
	Lanes8  int `json:"lanes8"`
}

// Info snapshots the backend selection.
func Info() BackendInfo {
	info := BackendInfo{
		Backend: Backend(),
		AVX2:    hasAVX2,
		Forced:  forcedPortable.Load(),
	}
	if enabled() {
		info.Lanes16, info.Lanes8 = 16, 32
	}
	return info
}

// String renders the selection as a one-line summary for startup logs.
func (b BackendInfo) String() string {
	switch {
	case b.Backend == "avx2":
		return "avx2 (16x int16 / 32x uint8 lanes per register)"
	case b.Forced && b.AVX2:
		return "portable (pure Go; avx2 available but overridden)"
	case b.AVX2:
		return "portable (pure Go)"
	default:
		return "portable (pure Go; host lacks AVX2 or binary built without it)"
	}
}
