//go:build amd64 && !purego

package vec

// asmSupported marks binaries with the AVX2 backend compiled in; the
// runtime CPU check still gates execution.
const asmSupported = true

// detectNative reports whether the host CPU and OS can execute the AVX2
// backend: CPUID advertises AVX2 and OSXSAVE, and XGETBV confirms the OS
// saves the full YMM state on context switch.
func detectNative() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

// ---- 16-bit lane primitives ----
//
// All stubs require n to be a positive multiple of 16 (int16) or 32
// (uint8); the exported wrappers in vec.go enforce that before
// dispatching.

//go:noescape
func addSat16(dst, a, b *int16, n int)

//go:noescape
func subSatConst16(dst, a *int16, n, c int)

//go:noescape
func max16(dst, a, b *int16, n int)

//go:noescape
func maxConst16(dst, a *int16, n, c int)

//go:noescape
func maxInto16(dst, a *int16, n int)

//go:noescape
func set1x16(dst *int16, n, c int)

//go:noescape
func gather16(dst *int16, table *int16, idx *uint8, n int)

//go:noescape
func hmax16(a *int16, n int) int16

//go:noescape
func anyGE16(a *int16, n, threshold int) bool

//go:noescape
func anyGT16(a, b *int16, n int) bool

// ---- 8-bit lane primitives ----

//go:noescape
func addSatU8x(dst, a, b *uint8, n int)

//go:noescape
func subSatConstU8(dst, a *uint8, n, c int)

//go:noescape
func maxU8x(dst, a, b *uint8, n int)

//go:noescape
func maxIntoU8x(dst, a *uint8, n int)

//go:noescape
func set1U8x(dst *uint8, n, c int)

//go:noescape
func gatherU8x(dst *uint8, table *uint8, idx *uint8, n int)

//go:noescape
func hmaxU8(a *uint8, n int) uint8

//go:noescape
func anyGEU8x(a *uint8, n, threshold int) bool

//go:noescape
func anyGTU8x(a, b *uint8, n int) bool

// ---- fused column kernels ----
//
// One call advances a whole database column of the inter-task DP across
// every row of the current query tile, so the call cost amortises over
// rows x lanes cells; F, the diagonal and the score tracker stay in
// registers for the entire column. See step.go for the layout contracts
// and the portable reference semantics.

//go:noescape
func stepCol16SP(h, e, f, diag, maxv *int16, score *int16, seq *uint8, rows, lanes, qr, r int)

//go:noescape
func stepCol16QP(h, e, f, diag, maxv *int16, qp *int16, stride int, col *uint8, rows, lanes, qr, r int)

//go:noescape
func stepCol8SP(h, e, f, diag, maxv *uint8, score *uint8, seq *uint8, rows, lanes, bias, qr, r int)

//go:noescape
func stepCol8QP(h, e, f, diag, maxv *uint8, qp *uint8, stride int, col *uint8, rows, lanes, bias, qr, r int)

//go:noescape
func buildRows16(dst, table *int16, idx *uint8, nrows, lanes, stride int)

//go:noescape
func buildRows8(dst, table, idx *uint8, nrows, lanes, stride int)
