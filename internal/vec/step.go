package vec

// Fused column kernels. The per-op primitives in vec.go are the reference
// granularity — one emulated vector instruction per call — but at 16–64
// lanes the call and bounds-check overhead of that granularity dwarfs the
// arithmetic, so the inter-task kernels in internal/core advance the DP
// through these fused entry points instead: one call processes one
// database column across every row of the current query tile, keeping F,
// the diagonal vector and the running-maximum tracker register-resident
// for the whole column. The portable generics below are the semantic
// definition (they reproduce, lane for lane, the sequence of vec.go
// primitives a per-op kernel would issue); vec_amd64.s implements the same
// loops over real 256-bit registers.
//
// Layout contract shared by all four column steps:
//
//   - h and e hold the tile's H and E state for rows query rows, row ri at
//     h[ri*lanes : (ri+1)*lanes]. On entry h carries the previous column's
//     values (the "up" cells); on return, this column's. Callers whose
//     slabs include a boundary row 0 pass h[lanes:].
//   - f, diag and maxv are lanes-wide vectors carried across columns: the
//     vertical-gap state entering each row, the diagonal H value entering
//     row 0, and the running score maximum.
//   - qr is the gap-open+extend penalty and r the extend penalty, both
//     non-negative; the 16-bit forms rely on qr <= 16384 (enforced by
//     core.Params.Validate) so gap arithmetic cannot wrap below MinI16.
//
// The SP forms read the column's score profile (row stride = lanes) with
// the row selected by the query residue seq[ri]; the QP forms read the
// query profile (row stride = stride, row ri at qp[ri*stride:]) indexed by
// the column residues col[l]. The native QP and BuildRows paths use true
// vector gathers / in-register shuffles that read a few bytes past the
// last table row; they dispatch only when the table's backing array has
// the spare capacity (internal/profile over-allocates its tables for
// exactly this), and fall back to the portable loops otherwise.

// StepCol16SP advances one database column of the 16-bit score-profile
// kernel. score is the column's score-row table (stride lanes) and seq the
// tile's query residues, so row ri scores with
// score[seq[ri]*lanes : ...].
func StepCol16SP(h, e, f, diag, maxv I16, score []int16, seq []uint8, rows, lanes int, qr, r int16) {
	if rows <= 0 {
		return
	}
	if native16(lanes) {
		stepCol16SP(&h[0], &e[0], &f[0], &diag[0], &maxv[0], &score[0], &seq[0], rows, lanes, int(qr), int(r))
		return
	}
	stepCol16SPGeneric(h, e, f, diag, maxv, score, seq, rows, lanes, qr, r)
}

//sw:hotpath
func stepCol16SPGeneric(h, e, f, diag, maxv I16, score []int16, seq []uint8, rows, lanes int, qr, r int16) {
	for ri := 0; ri < rows; ri++ {
		hrow := h[ri*lanes : (ri+1)*lanes]
		erow := e[ri*lanes : (ri+1)*lanes]
		sv := score[int(seq[ri])*lanes:]
		for l := 0; l < lanes; l++ {
			up := hrow[l]
			hv := int32(diag[l]) + int32(sv[l])
			if hv > MaxI16 {
				hv = MaxI16
			}
			// The low rail is unreachable: diag >= 0 and scores are
			// bounded by the matrix range (>= profile.PadScore).
			ev, fv := erow[l], f[l]
			if int32(ev) > hv {
				hv = int32(ev)
			}
			if int32(fv) > hv {
				hv = int32(fv)
			}
			if hv < 0 {
				hv = 0
			}
			h16 := int16(hv)
			if h16 > maxv[l] {
				maxv[l] = h16
			}
			uv := hv - int32(qr) // no saturation: 0 <= hv <= MaxI16, qr <= 16384
			e2 := int32(ev) - int32(r)
			if e2 < MinI16 {
				e2 = MinI16
			}
			if uv > e2 {
				e2 = uv
			}
			erow[l] = int16(e2)
			f2 := int32(fv) - int32(r)
			if f2 < MinI16 {
				f2 = MinI16
			}
			if uv > f2 {
				f2 = uv
			}
			f[l] = int16(f2)
			diag[l] = up
			hrow[l] = h16
		}
	}
}

// StepCol16QP advances one database column of the 16-bit query-profile
// kernel. qp is the query profile positioned at the tile's first row (row
// ri at qp[ri*stride:]); col holds the column's lane residues, each <
// stride. The native path gathers profile entries with vpgatherdd, which
// loads a dword per lane and so reads one element past qp[rows*stride-1];
// it requires cap(qp) >= rows*stride+1 and falls back to the portable
// loop otherwise.
func StepCol16QP(h, e, f, diag, maxv I16, qp []int16, stride int, col []uint8, rows, lanes int, qr, r int16) {
	if rows <= 0 {
		return
	}
	if native16(lanes) && cap(qp) >= rows*stride+1 {
		stepCol16QP(&h[0], &e[0], &f[0], &diag[0], &maxv[0], &qp[0], stride, &col[0], rows, lanes, int(qr), int(r))
		return
	}
	stepCol16QPGeneric(h, e, f, diag, maxv, qp, stride, col, rows, lanes, qr, r)
}

//sw:hotpath
func stepCol16QPGeneric(h, e, f, diag, maxv I16, qp []int16, stride int, col []uint8, rows, lanes int, qr, r int16) {
	for ri := 0; ri < rows; ri++ {
		hrow := h[ri*lanes : (ri+1)*lanes]
		erow := e[ri*lanes : (ri+1)*lanes]
		row := qp[ri*stride : ri*stride+stride]
		for l := 0; l < lanes; l++ {
			up := hrow[l]
			hv := int32(diag[l]) + int32(row[col[l]])
			if hv > MaxI16 {
				hv = MaxI16
			}
			ev, fv := erow[l], f[l]
			if int32(ev) > hv {
				hv = int32(ev)
			}
			if int32(fv) > hv {
				hv = int32(fv)
			}
			if hv < 0 {
				hv = 0
			}
			h16 := int16(hv)
			if h16 > maxv[l] {
				maxv[l] = h16
			}
			uv := hv - int32(qr)
			e2 := int32(ev) - int32(r)
			if e2 < MinI16 {
				e2 = MinI16
			}
			if uv > e2 {
				e2 = uv
			}
			erow[l] = int16(e2)
			f2 := int32(fv) - int32(r)
			if f2 < MinI16 {
				f2 = MinI16
			}
			if uv > f2 {
				f2 = uv
			}
			f[l] = int16(f2)
			diag[l] = up
			hrow[l] = h16
		}
	}
}

// StepCol8SP advances one database column of the 8-bit biased
// score-profile kernel: H/E/F are true non-negative cell values clamped at
// zero, scores are stored biased (score+bias), and every subtraction
// saturates at the unsigned floor. bias, qr and r are pre-clamped to the
// byte range by the caller (a penalty >= 255 zeroes any byte lane, so
// clamping is exact).
func StepCol8SP(h, e, f, diag, maxv U8, score []uint8, seq []uint8, rows, lanes int, bias, qr, r uint8) {
	if rows <= 0 {
		return
	}
	if native8(lanes) {
		stepCol8SP(&h[0], &e[0], &f[0], &diag[0], &maxv[0], &score[0], &seq[0], rows, lanes, int(bias), int(qr), int(r))
		return
	}
	stepCol8SPGeneric(h, e, f, diag, maxv, score, seq, rows, lanes, bias, qr, r)
}

//sw:hotpath
func stepCol8SPGeneric(h, e, f, diag, maxv U8, score []uint8, seq []uint8, rows, lanes int, bias, qr, r uint8) {
	for ri := 0; ri < rows; ri++ {
		hrow := h[ri*lanes : (ri+1)*lanes]
		erow := e[ri*lanes : (ri+1)*lanes]
		sv := score[int(seq[ri])*lanes:]
		for l := 0; l < lanes; l++ {
			up := hrow[l]
			hv := int32(diag[l]) + int32(sv[l])
			if hv > MaxU8 {
				hv = MaxU8 // vpaddusb clip: the lane will escalate
			}
			hv -= int32(bias)
			if hv < 0 {
				hv = 0
			}
			ev, fv := erow[l], f[l]
			if int32(ev) > hv {
				hv = int32(ev)
			}
			if int32(fv) > hv {
				hv = int32(fv)
			}
			h8 := uint8(hv)
			if h8 > maxv[l] {
				maxv[l] = h8
			}
			uv := hv - int32(qr)
			if uv < 0 {
				uv = 0
			}
			e2 := int32(ev) - int32(r)
			if e2 < 0 {
				e2 = 0
			}
			if uv > e2 {
				e2 = uv
			}
			erow[l] = uint8(e2)
			f2 := int32(fv) - int32(r)
			if f2 < 0 {
				f2 = 0
			}
			if uv > f2 {
				f2 = uv
			}
			f[l] = uint8(f2)
			diag[l] = up
			hrow[l] = h8
		}
	}
}

// StepCol8QP advances one database column of the 8-bit biased
// query-profile kernel. The native path replaces the per-lane gather with
// two in-register vpshufb table lookups (profile rows fit two 16-byte
// halves when stride <= 32), loading each row with a pair of 16-byte
// broadcasts that read up to 32 bytes from the row start; it requires
// stride <= 32, every col[l] < stride, and cap(qp) >= (rows-1)*stride+32,
// falling back to the portable loop otherwise.
func StepCol8QP(h, e, f, diag, maxv U8, qp []uint8, stride int, col []uint8, rows, lanes int, bias, qr, r uint8) {
	if rows <= 0 {
		return
	}
	if native8(lanes) && stride <= 32 && cap(qp) >= (rows-1)*stride+32 {
		stepCol8QP(&h[0], &e[0], &f[0], &diag[0], &maxv[0], &qp[0], stride, &col[0], rows, lanes, int(bias), int(qr), int(r))
		return
	}
	stepCol8QPGeneric(h, e, f, diag, maxv, qp, stride, col, rows, lanes, bias, qr, r)
}

//sw:hotpath
func stepCol8QPGeneric(h, e, f, diag, maxv U8, qp []uint8, stride int, col []uint8, rows, lanes int, bias, qr, r uint8) {
	for ri := 0; ri < rows; ri++ {
		hrow := h[ri*lanes : (ri+1)*lanes]
		erow := e[ri*lanes : (ri+1)*lanes]
		row := qp[ri*stride : ri*stride+stride]
		for l := 0; l < lanes; l++ {
			up := hrow[l]
			hv := int32(diag[l]) + int32(row[col[l]])
			if hv > MaxU8 {
				hv = MaxU8
			}
			hv -= int32(bias)
			if hv < 0 {
				hv = 0
			}
			ev, fv := erow[l], f[l]
			if int32(ev) > hv {
				hv = int32(ev)
			}
			if int32(fv) > hv {
				hv = int32(fv)
			}
			h8 := uint8(hv)
			if h8 > maxv[l] {
				maxv[l] = h8
			}
			uv := hv - int32(qr)
			if uv < 0 {
				uv = 0
			}
			e2 := int32(ev) - int32(r)
			if e2 < 0 {
				e2 = 0
			}
			if uv > e2 {
				e2 = uv
			}
			erow[l] = uint8(e2)
			f2 := int32(fv) - int32(r)
			if f2 < 0 {
				f2 = 0
			}
			if uv > f2 {
				f2 = uv
			}
			f[l] = uint8(f2)
			diag[l] = up
			hrow[l] = h8
		}
	}
}

// BuildRows16 fills a score-profile row table from a pad-extended
// substitution table: dst[e*lanes+l] = table[e*stride+idx[l]] for every
// residue row e in [0, nrows). The native path gathers with vpgatherdd
// (dword loads, one element of over-read) and requires
// cap(table) >= nrows*stride+1.
func BuildRows16(dst, table []int16, idx []uint8, nrows, lanes, stride int) {
	if native16(lanes) && cap(table) >= nrows*stride+1 {
		buildRows16(&dst[0], &table[0], &idx[0], nrows, lanes, stride)
		return
	}
	buildRows16Generic(dst, table, idx, nrows, lanes, stride)
}

//sw:hotpath
func buildRows16Generic(dst, table []int16, idx []uint8, nrows, lanes, stride int) {
	// Walk lane-major: each lane copies one strided column of the table,
	// the transposition the real SP code performs with vector inserts.
	for l, d := range idx[:lanes] {
		src := table[int(d):]
		for e := 0; e < nrows; e++ {
			dst[e*lanes+l] = src[e*stride]
		}
	}
}

// BuildRows8 is BuildRows16 over biased uint8 tables, using the vpshufb
// two-half lookup; the native path requires stride <= 32, idx values <
// stride, and cap(table) >= (nrows-1)*stride+32.
func BuildRows8(dst, table, idx []uint8, nrows, lanes, stride int) {
	if native8(lanes) && stride <= 32 && cap(table) >= (nrows-1)*stride+32 {
		buildRows8(&dst[0], &table[0], &idx[0], nrows, lanes, stride)
		return
	}
	buildRows8Generic(dst, table, idx, nrows, lanes, stride)
}

//sw:hotpath
func buildRows8Generic(dst, table, idx []uint8, nrows, lanes, stride int) {
	for l, d := range idx[:lanes] {
		src := table[int(d):]
		for e := 0; e < nrows; e++ {
			dst[e*lanes+l] = src[e*stride]
		}
	}
}
