//go:build !amd64 || purego

package vec

// asmSupported is false in binaries without the AVX2 backend (non-amd64
// hosts, or any host under the purego build tag); every native16/native8
// test then folds to false at compile time and the stubs below are
// unreachable.
const asmSupported = false

func detectNative() bool { return false }

func addSat16(dst, a, b *int16, n int)                      { panic("vec: no asm") }
func subSatConst16(dst, a *int16, n, c int)                 { panic("vec: no asm") }
func max16(dst, a, b *int16, n int)                         { panic("vec: no asm") }
func maxConst16(dst, a *int16, n, c int)                    { panic("vec: no asm") }
func maxInto16(dst, a *int16, n int)                        { panic("vec: no asm") }
func set1x16(dst *int16, n, c int)                          { panic("vec: no asm") }
func gather16(dst *int16, table *int16, idx *uint8, n int)  { panic("vec: no asm") }
func hmax16(a *int16, n int) int16                          { panic("vec: no asm") }
func anyGE16(a *int16, n, threshold int) bool               { panic("vec: no asm") }
func anyGT16(a, b *int16, n int) bool                       { panic("vec: no asm") }
func addSatU8x(dst, a, b *uint8, n int)                     { panic("vec: no asm") }
func subSatConstU8(dst, a *uint8, n, c int)                 { panic("vec: no asm") }
func maxU8x(dst, a, b *uint8, n int)                        { panic("vec: no asm") }
func maxIntoU8x(dst, a *uint8, n int)                       { panic("vec: no asm") }
func set1U8x(dst *uint8, n, c int)                          { panic("vec: no asm") }
func gatherU8x(dst *uint8, table *uint8, idx *uint8, n int) { panic("vec: no asm") }
func hmaxU8(a *uint8, n int) uint8                          { panic("vec: no asm") }
func anyGEU8x(a *uint8, n, threshold int) bool              { panic("vec: no asm") }
func anyGTU8x(a, b *uint8, n int) bool                      { panic("vec: no asm") }
func stepCol16SP(h, e, f, diag, maxv *int16, score *int16, seq *uint8, rows, lanes, qr, r int) {
	panic("vec: no asm")
}
func stepCol16QP(h, e, f, diag, maxv *int16, qp *int16, stride int, col *uint8, rows, lanes, qr, r int) {
	panic("vec: no asm")
}
func stepCol8SP(h, e, f, diag, maxv *uint8, score *uint8, seq *uint8, rows, lanes, bias, qr, r int) {
	panic("vec: no asm")
}
func stepCol8QP(h, e, f, diag, maxv *uint8, qp *uint8, stride int, col *uint8, rows, lanes, bias, qr, r int) {
	panic("vec: no asm")
}
func buildRows16(dst, table *int16, idx *uint8, nrows, lanes, stride int) { panic("vec: no asm") }
func buildRows8(dst, table, idx *uint8, nrows, lanes, stride int)         { panic("vec: no asm") }
