// Package profile implements the two substitution-score layouts studied by
// the paper (Section IV):
//
//   - the query profile (QP): a |Q| x |E| table built once per query in the
//     pre-processing stage, indexed in the inner loop by each lane's current
//     database residue (a gather / non-contiguous access);
//   - the score profile (SP, the paper's "sequence profile"): per database
//     column, one L-lane score vector for every possible query residue,
//     rebuilt as the kernel advances through the database group so the inner
//     loop performs a single contiguous vector load.
//
// Both layouts are extended with a padding pseudo-residue used by the
// inter-task kernels to neutralise the tails of lanes shorter than their
// group: the pad scores so negatively that padded cells can never raise a
// lane's running maximum.
//
// Table dimensions follow the substitution matrix's alphabet: a Query built
// from a protein matrix has Width 25 (24 residues + pad), one built from
// the IUPAC DNA matrix has Width 16. The kernels read the dimensions off
// the Query, never off a package constant.
package profile

import (
	"heterosw/internal/alphabet"
	"heterosw/internal/submat"
	"heterosw/internal/vec"
)

// PadIndex is the protein padding residue index — the value one past the
// last protein alphabet code. Alphabet-generic code must use Query.Pad (or
// the database alphabet's Size()) instead; this constant remains for the
// protein-only call sites.
const PadIndex = alphabet.Size

// TableWidth is the protein profile table width: the protein alphabet plus
// the padding pseudo-residue. Alphabet-generic code must use Query.Width.
const TableWidth = alphabet.Size + 1

// PadScore is the substitution score of the padding pseudo-residue against
// anything. It is negative enough that a padded column always strictly
// decreases H (the largest real substitution score is ~17), yet small
// enough that no int32 arithmetic in the guided kernels can wrap.
const PadScore = -1024

// Query carries everything the kernels need about one query sequence: the
// encoded residues, the query profile, and the pad-extended substitution
// table used to build score profiles.
type Query struct {
	// Seq is the encoded query of length M.
	Seq []alphabet.Code
	// Matrix is the substitution matrix the profiles were built from.
	Matrix *submat.Matrix
	// Pad is the padding residue index: the matrix alphabet's size.
	// Width is the profile table width: Pad + 1. Every row of QP and Ext
	// has Width entries; interleaved lane groups must pad with Pad.
	Pad, Width int
	// QP is the query profile, row-major (M rows x Width columns):
	// QP[(i-1)*Width + e] = V(q_i, e). The Pad column holds PadScore.
	QP []int16
	// Ext is the pad-extended substitution table:
	// Ext[e*Width + d] = V(e, d), with PadScore wherever either index
	// is the padding pseudo-residue.
	Ext []int16
	// MaxScore is Matrix.Max(), cached for overflow thresholds.
	MaxScore int

	// Bias is the unsigned-byte score bias of the 8-bit first pass:
	// max(0, -Matrix.Min()), so every biased substitution score is
	// non-negative. QP8 and Ext8 are the biased uint8 mirrors of QP and
	// Ext; padding entries hold 0 (an effective score of -Bias, which can
	// never raise a lane maximum). They are nil when the matrix range does
	// not fit a byte (Bias8Viable false), in which case the ladder starts
	// at 16 bits.
	Bias uint8
	QP8  []uint8
	Ext8 []uint8
}

// Bias8Viable reports whether the 8-bit biased profiles were built.
func (q *Query) Bias8Viable() bool { return q.Ext8 != nil }

// gatherPad16 and gatherPad8 are the spare capacities (in elements) the
// profile tables carry past their logical length, so the native vector
// backend's wide loads may over-read: vpgatherdd fetches a dword per
// 16-bit entry (one element of over-read at the table end), and the 8-bit
// shuffle lookup loads each Width-element row as 16-byte chunks (up to
// 32-Width bytes past the final row — 32 covers every alphabet down to a
// one-letter one). internal/vec dispatches its gathering paths only when
// the backing array has this headroom (checked via cap), so the padding
// here is what makes the native QP and SP-build paths eligible.
const (
	gatherPad16 = 2
	gatherPad8  = 32
)

func padded16(n int) []int16 { return make([]int16, n+gatherPad16)[:n] }
func padded8(n int) []uint8  { return make([]uint8, n+gatherPad8)[:n] }

// NewQuery builds the profiles for a query under a substitution matrix.
// The query residues must be encoded under the matrix's alphabet.
func NewQuery(seq []alphabet.Code, m *submat.Matrix) *Query {
	size := m.Size()
	width := size + 1
	q := &Query{
		Seq:      seq,
		Matrix:   m,
		Pad:      size,
		Width:    width,
		QP:       padded16(len(seq) * width),
		Ext:      padded16(width * width),
		MaxScore: m.Max(),
	}
	for e := 0; e < size; e++ {
		row := m.Row(alphabet.Code(e))
		base := e * width
		for d := 0; d < size; d++ {
			q.Ext[base+d] = int16(row[d])
		}
		q.Ext[base+size] = PadScore
	}
	padBase := size * width
	for d := 0; d < width; d++ {
		q.Ext[padBase+d] = PadScore
	}
	for i, r := range seq {
		copy(q.QP[i*width:(i+1)*width], q.Ext[int(r)*width:(int(r)+1)*width])
	}
	q.buildBias8()
	return q
}

// buildBias8 derives the biased uint8 profiles of the ladder's 8-bit first
// pass. Every real substitution score s is stored as s+Bias (non-negative
// by construction); padding entries store 0, the strongest representable
// penalty. The build is skipped when the matrix range does not fit a byte.
func (q *Query) buildBias8() {
	m := q.Matrix
	bias := 0
	if m.Min() < 0 {
		bias = -m.Min()
	}
	if bias > 255 || m.Max()+bias > 255 {
		return // matrix range exceeds a byte; ladder starts at 16 bits
	}
	q.Bias = uint8(bias)
	q.Ext8 = padded8(len(q.Ext))
	for i, s := range q.Ext {
		if int(s) == PadScore {
			continue // padding stays 0
		}
		q.Ext8[i] = uint8(int(s) + bias)
	}
	q.QP8 = padded8(len(q.QP))
	for i := range q.Seq {
		copy(q.QP8[i*q.Width:(i+1)*q.Width], q.Ext8[int(q.Seq[i])*q.Width:(int(q.Seq[i])+1)*q.Width])
	}
}

// Len returns the query length M.
func (q *Query) Len() int { return len(q.Seq) }

// QPRow returns the query-profile row for query position i (0-based): the
// scores of q_i against every residue index including the pad.
func (q *Query) QPRow(i int) []int16 {
	return q.QP[i*q.Width : (i+1)*q.Width]
}

// QPRow8 returns the biased uint8 query-profile row for query position i;
// only valid when Bias8Viable.
func (q *Query) QPRow8(i int) []uint8 {
	return q.QP8[i*q.Width : (i+1)*q.Width]
}

// ExtRow returns the pad-extended substitution row for residue index e.
func (q *Query) ExtRow(e int) []int16 {
	return q.Ext[e*q.Width : (e+1)*q.Width]
}

// ScoreRows is the score-profile scratch for one database column: for every
// residue index e, an L-lane vector of V(e, d_l) where d_l is lane l's
// current database residue. Laid out row-major with stride = lane count, so
// Row(e) is the contiguous vector the paper's SP inner loop loads. The row
// count follows the query's table width; the scratch grows on first use
// and is reused across queries of any alphabet.
type ScoreRows struct {
	lanes int
	rows  []int16 // Width * lanes of the last built query
}

// NewScoreRows allocates score-profile scratch for the given lane count.
func NewScoreRows(lanes int) *ScoreRows {
	return &ScoreRows{lanes: lanes, rows: make([]int16, TableWidth*lanes)}
}

// Lanes returns the lane count the scratch was built for.
func (sr *ScoreRows) Lanes() int { return sr.lanes }

// Build fills the score rows for the current column's lane residues.
// residues must have length Lanes(); entries are residue indices in
// [0, q.Width). The transposition — each lane copies one column of Ext
// — dispatches through vec.BuildRows16, which uses hardware gathers when
// the native backend is selected (Ext carries the required spare
// capacity) and a lane-major strided walk otherwise.
//
//sw:hotpath
func (sr *ScoreRows) Build(q *Query, residues []uint8) {
	n := q.Width * sr.lanes
	if cap(sr.rows) < n {
		sr.rows = make([]int16, n)
	}
	sr.rows = sr.rows[:n]
	vec.BuildRows16(sr.rows, q.Ext, residues, q.Width, sr.lanes, q.Width)
}

// Row returns the L-lane score vector for query residue index e.
func (sr *ScoreRows) Row(e int) vec.I16 {
	return vec.I16(sr.rows[int(e)*sr.lanes : (int(e)+1)*sr.lanes])
}

// Raw exposes the packed row table (stride Lanes, Width rows of the last
// built query), the form the fused column kernels in internal/vec consume
// directly.
func (sr *ScoreRows) Raw() []int16 { return sr.rows }

// ScoreRows8 is the biased uint8 score-profile scratch of the ladder's
// 8-bit first pass, laid out exactly like ScoreRows.
type ScoreRows8 struct {
	lanes int
	rows  []uint8 // Width * lanes of the last built query
}

// NewScoreRows8 allocates 8-bit score-profile scratch for a lane count.
func NewScoreRows8(lanes int) *ScoreRows8 {
	return &ScoreRows8{lanes: lanes, rows: make([]uint8, TableWidth*lanes)}
}

// Build fills the biased score rows for the current column's lane residues
// from the query's Ext8 table; only valid when q.Bias8Viable().
//
//sw:hotpath
func (sr *ScoreRows8) Build(q *Query, residues []uint8) {
	n := q.Width * sr.lanes
	if cap(sr.rows) < n {
		sr.rows = make([]uint8, n)
	}
	sr.rows = sr.rows[:n]
	vec.BuildRows8(sr.rows, q.Ext8, residues, q.Width, sr.lanes, q.Width)
}

// Row returns the L-lane biased score vector for query residue index e.
func (sr *ScoreRows8) Row(e int) vec.U8 {
	return vec.U8(sr.rows[int(e)*sr.lanes : (int(e)+1)*sr.lanes])
}

// Raw exposes the packed biased row table (stride Lanes, Width rows).
func (sr *ScoreRows8) Raw() []uint8 { return sr.rows }
