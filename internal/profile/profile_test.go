package profile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"heterosw/internal/alphabet"
	"heterosw/internal/submat"
)

func randCodes(rng *rand.Rand, n int) []alphabet.Code {
	s := make([]alphabet.Code, n)
	for i := range s {
		s[i] = alphabet.Code(rng.Intn(alphabet.Size))
	}
	return s
}

func TestQueryProfileMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seq := randCodes(rng, 200)
	q := NewQuery(seq, submat.BLOSUM62)
	if q.Len() != 200 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i, r := range seq {
		row := q.QPRow(i)
		if len(row) != TableWidth {
			t.Fatalf("row width %d", len(row))
		}
		for e := 0; e < alphabet.Size; e++ {
			if int(row[e]) != submat.BLOSUM62.Score(r, alphabet.Code(e)) {
				t.Fatalf("QP[%d][%d] = %d, want %d", i, e, row[e], submat.BLOSUM62.Score(r, alphabet.Code(e)))
			}
		}
		if row[PadIndex] != PadScore {
			t.Fatalf("QP pad column = %d", row[PadIndex])
		}
	}
}

func TestExtTablePadding(t *testing.T) {
	q := NewQuery(randCodes(rand.New(rand.NewSource(12)), 5), submat.BLOSUM62)
	for e := 0; e < TableWidth; e++ {
		if q.ExtRow(e)[PadIndex] != PadScore {
			t.Fatalf("Ext[%d][pad] = %d", e, q.ExtRow(e)[PadIndex])
		}
		if q.ExtRow(PadIndex)[e] != PadScore {
			t.Fatalf("Ext[pad][%d] = %d", e, q.ExtRow(PadIndex)[e])
		}
	}
}

func TestExtMatchesMatrix(t *testing.T) {
	q := NewQuery(randCodes(rand.New(rand.NewSource(13)), 3), submat.PAM250)
	for e := 0; e < alphabet.Size; e++ {
		for d := 0; d < alphabet.Size; d++ {
			if int(q.ExtRow(e)[d]) != submat.PAM250.Score(alphabet.Code(e), alphabet.Code(d)) {
				t.Fatalf("Ext[%d][%d] mismatch", e, d)
			}
		}
	}
	if q.MaxScore != submat.PAM250.Max() {
		t.Fatalf("MaxScore = %d", q.MaxScore)
	}
}

func TestScoreRowsBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	q := NewQuery(randCodes(rng, 10), submat.BLOSUM62)
	const L = 16
	sr := NewScoreRows(L)
	if sr.Lanes() != L {
		t.Fatalf("Lanes = %d", sr.Lanes())
	}
	residues := make([]uint8, L)
	for l := range residues {
		if l%5 == 4 {
			residues[l] = PadIndex
		} else {
			residues[l] = uint8(rng.Intn(alphabet.Size))
		}
	}
	sr.Build(q, residues)
	for e := 0; e < TableWidth; e++ {
		row := sr.Row(e)
		for l := 0; l < L; l++ {
			want := q.ExtRow(e)[residues[l]]
			if row[l] != want {
				t.Fatalf("SP[e=%d][lane=%d] = %d, want %d", e, l, row[l], want)
			}
		}
	}
}

// Property: score rows agree with the matrix for any residue assignment,
// and every pad lane scores PadScore for every query residue.
func TestScoreRowsProperty(t *testing.T) {
	q := NewQuery(randCodes(rand.New(rand.NewSource(15)), 4), submat.BLOSUM50)
	sr := NewScoreRows(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		residues := make([]uint8, 8)
		for l := range residues {
			residues[l] = uint8(rng.Intn(TableWidth))
		}
		sr.Build(q, residues)
		for e := 0; e < alphabet.Size; e++ {
			for l := 0; l < 8; l++ {
				d := residues[l]
				var want int16
				if d == PadIndex {
					want = PadScore
				} else {
					want = int16(submat.BLOSUM50.Score(alphabet.Code(e), alphabet.Code(d)))
				}
				if sr.Row(e)[l] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPadScoreDominatesMatrix(t *testing.T) {
	// The pad score must be far below any real score so padded columns
	// strictly decay. Guard the constant against matrix changes.
	for _, name := range submat.Names() {
		m, _ := submat.ByName(name)
		if PadScore >= m.Min() {
			t.Fatalf("PadScore %d not below %s minimum %d", PadScore, name, m.Min())
		}
	}
}
