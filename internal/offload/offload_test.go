package offload

import (
	"sync/atomic"
	"testing"

	"heterosw/internal/device"
)

func TestStartWait(t *testing.T) {
	var ran atomic.Bool
	s := Start(func() { ran.Store(true) })
	s.Wait()
	if !ran.Load() {
		t.Fatal("offloaded region did not run before Wait returned")
	}
	s.Wait() // Wait must be idempotent
}

func TestConcurrentRegions(t *testing.T) {
	var counter atomic.Int32
	sigs := make([]*Signal, 8)
	for i := range sigs {
		sigs[i] = Start(func() { counter.Add(1) })
	}
	for _, s := range sigs {
		s.Wait()
	}
	if counter.Load() != 8 {
		t.Fatalf("%d regions ran, want 8", counter.Load())
	}
}

func TestByteSizing(t *testing.T) {
	if got := DatabaseBytes(1000, 10); got != 1000+160 {
		t.Errorf("DatabaseBytes = %d", got)
	}
	if got := QueryBytes(100); got != 100+100*50+matrixBytes {
		t.Errorf("QueryBytes = %d", got)
	}
	if got := ScoreBytes(541561); got != 541561*8 {
		t.Errorf("ScoreBytes = %d", got)
	}
}

func TestRegionSecondsPhiVsHost(t *testing.T) {
	phi := device.Phi()
	xeon := device.Xeon()
	compute := 2.0
	// Host regions add no transfer time.
	if got := RegionSeconds(xeon, 1<<30, 1<<20, compute); got != compute {
		t.Errorf("host region = %v, want %v", got, compute)
	}
	// Phi regions add both directions plus latency.
	got := RegionSeconds(phi, 6_000_000_000, 0, compute)
	want := compute + 1.0 + 2*phi.PCIeLatencySec
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("phi region = %v, want ~%v", got, want)
	}
}
