// Package offload models the Intel offload runtime the paper drives with
// #pragma offload target(mic) in Algorithms 1 and 2: explicit in/out data
// transfers over the PCIe link, asynchronous kernel launch with
// signal/wait semantics, and the byte-level sizing of what a Smith-Waterman
// database search actually ships to the coprocessor.
//
// Functional execution uses Start/Wait (real goroutines standing in for the
// asynchronous offload); simulated timing uses RegionSeconds over the
// device's PCIe model.
package offload

import (
	"heterosw/internal/device"
)

// Signal is the handle of an asynchronous offload region, mirroring the
// signal/wait clauses of Algorithm 2: the host launches the region, keeps
// computing its own share, then waits.
type Signal struct {
	done chan struct{}
}

// Start launches fn asynchronously and returns its completion signal.
func Start(fn func()) *Signal {
	s := &Signal{done: make(chan struct{})}
	go func() {
		defer close(s.done)
		fn()
	}()
	return s
}

// Wait blocks until the offloaded region has completed (the wait(sem)
// clause).
func (s *Signal) Wait() {
	<-s.done
}

// Transfer sizing. The offload in Algorithm 2 ships the query, the
// substitution matrix and the device's database partition in, and the
// similarity scores out.
const (
	perSequenceMetaBytes = 16 // length + offset bookkeeping per sequence
	matrixBytes          = 25 * 25 * 2
	perScoreBytes        = 8 // score + sequence index
)

// DatabaseBytes returns the size of a database partition transfer: one byte
// per residue plus per-sequence metadata.
func DatabaseBytes(residues int64, sequences int) int64 {
	return residues + int64(sequences)*perSequenceMetaBytes
}

// QueryBytes returns the size of the query-side transfer: the encoded
// query, its precomputed query profile and the substitution matrix.
func QueryBytes(queryLen int) int64 {
	return int64(queryLen) + int64(queryLen)*25*2 + matrixBytes
}

// ScoreBytes returns the size of the out transfer of similarity scores.
func ScoreBytes(sequences int) int64 {
	return int64(sequences) * perScoreBytes
}

// RegionSeconds returns the simulated wall time of one offload region on
// the target device: transfer in, compute, transfer out, with the link
// latency charged per transfer direction. For host devices (no offload)
// it is just the compute time.
func RegionSeconds(m *device.Model, inBytes, outBytes int64, computeSeconds float64) float64 {
	return m.TransferSeconds(inBytes) + computeSeconds + m.TransferSeconds(outBytes)
}
