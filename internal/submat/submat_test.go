package submat

import (
	"strings"
	"testing"
	"testing/quick"

	"heterosw/internal/alphabet"
)

func enc(t *testing.T, b byte) alphabet.Code {
	t.Helper()
	c, ok := alphabet.Encode(b)
	if !ok {
		t.Fatalf("cannot encode %q", b)
	}
	return c
}

// BLOSUM62 spot checks against the canonical NCBI table.
func TestBLOSUM62KnownValues(t *testing.T) {
	cases := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', 4}, {'R', 'R', 5}, {'W', 'W', 11}, {'C', 'C', 9},
		{'A', 'R', -1}, {'W', 'C', -2}, {'I', 'L', 2}, {'E', 'D', 2},
		{'Y', 'F', 3}, {'X', 'X', -1}, {'*', '*', 1}, {'A', '*', -4},
		{'B', 'D', 4}, {'Z', 'E', 4}, {'P', 'P', 7}, {'G', 'G', 6},
	}
	for _, c := range cases {
		got := BLOSUM62.Score(enc(t, c.a), enc(t, c.b))
		if got != c.want {
			t.Errorf("BLOSUM62(%c,%c) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBuiltinsSymmetric(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := m.Alphabet()
		for i := alphabet.Code(0); int(i) < m.Size(); i++ {
			for j := alphabet.Code(0); int(j) < m.Size(); j++ {
				if m.Score(i, j) != m.Score(j, i) {
					t.Fatalf("%s asymmetric at (%c,%c)", name, a.Decode(i), a.Decode(j))
				}
			}
		}
	}
}

func TestBuiltinsDiagonalPositive(t *testing.T) {
	for _, name := range Names() {
		m, _ := ByName(name)
		a := m.Alphabet()
		for c := alphabet.Code(0); int(c) < m.Size(); c++ {
			if !a.IsStandard(c) {
				continue
			}
			if m.Score(c, c) <= 0 {
				t.Errorf("%s: self score of %c is %d, want > 0", name, a.Decode(c), m.Score(c, c))
			}
		}
	}
}

func TestMaxMin(t *testing.T) {
	if BLOSUM62.Max() != 11 { // W-W
		t.Errorf("BLOSUM62.Max() = %d, want 11", BLOSUM62.Max())
	}
	if BLOSUM62.Min() != -4 {
		t.Errorf("BLOSUM62.Min() = %d, want -4", BLOSUM62.Min())
	}
	if PAM250.Max() != 17 { // W-W
		t.Errorf("PAM250.Max() = %d, want 17", PAM250.Max())
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("BLOSUM999"); err == nil {
		t.Fatal("ByName(BLOSUM999) succeeded, want error")
	}
}

func TestRowMatchesScore(t *testing.T) {
	for a := alphabet.Code(0); int(a) < alphabet.Size; a++ {
		row := BLOSUM62.Row(a)
		for b := alphabet.Code(0); int(b) < alphabet.Size; b++ {
			if int(row[b]) != BLOSUM62.Score(a, b) {
				t.Fatalf("Row(%c)[%c] = %d != Score %d",
					alphabet.Decode(a), alphabet.Decode(b), row[b], BLOSUM62.Score(a, b))
			}
		}
	}
}

// Round trip: Format then Parse must reproduce every built-in matrix.
func TestFormatParseRoundTrip(t *testing.T) {
	for _, name := range Names() {
		m, _ := ByName(name)
		text := Format(m)
		back, err := Parse(name, strings.NewReader(text), m.Alphabet())
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		a := m.Alphabet()
		for i := alphabet.Code(0); int(i) < m.Size(); i++ {
			for j := alphabet.Code(0); int(j) < m.Size(); j++ {
				if m.Score(i, j) != back.Score(i, j) {
					t.Fatalf("%s: round trip differs at (%c,%c)", name, a.Decode(i), a.Decode(j))
				}
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"comment only": "# nothing here\n",
		"bad header":   "AB C\nA 1 2\n",
		"short row":    "A R\nA 1\n",
		"bad score":    "A R\nA x y\n",
		"bad residue":  "A R\n1 0 0\n",
		"overflow":     "A R\nA 1000 0\nR 0 1000\n",
	}
	for name, text := range cases {
		if _, err := ParseProtein("t", strings.NewReader(text)); err == nil {
			t.Errorf("Parse(%s) succeeded, want error", name)
		}
	}
}

func TestParsePartialMatrix(t *testing.T) {
	// A 2-residue matrix: unseen pairs must take the minimum score (-3).
	text := "   A  R\nA  4 -3\nR -3  5\n"
	m, err := ParseProtein("mini", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	a, r, w := enc(t, 'A'), enc(t, 'R'), enc(t, 'W')
	if m.Score(a, a) != 4 || m.Score(r, r) != 5 || m.Score(a, r) != -3 {
		t.Fatalf("parsed scores wrong: %d %d %d", m.Score(a, a), m.Score(r, r), m.Score(a, r))
	}
	if m.Score(w, w) != -3 || m.Score(a, w) != -3 {
		t.Fatalf("unseen pairs = %d/%d, want min -3", m.Score(w, w), m.Score(a, w))
	}
}

func TestNewRejectsAsymmetric(t *testing.T) {
	s := make([]int8, alphabet.Size*alphabet.Size)
	s[0*alphabet.Size+1] = 3
	s[1*alphabet.Size+0] = -3
	if _, err := New("bad", alphabet.Protein, s); err == nil {
		t.Fatal("New accepted asymmetric matrix")
	}
}

// Property: for random residue pairs the matrix is symmetric and bounded by
// [Min, Max].
func TestScoreBoundsProperty(t *testing.T) {
	f := func(x, y uint8) bool {
		a := alphabet.Code(x % alphabet.Size)
		b := alphabet.Code(y % alphabet.Size)
		s := BLOSUM62.Score(a, b)
		return s == BLOSUM62.Score(b, a) && s >= BLOSUM62.Min() && s <= BLOSUM62.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
