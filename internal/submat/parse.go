package submat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"heterosw/internal/alphabet"
)

// Parse reads a substitution matrix in the NCBI textual format: '#' comment
// lines, a header row of residue letters, then one row per residue starting
// with its letter followed by integer scores. Residues may appear in any
// order and a subset of the alphabet is allowed; absent pairs score the
// minimum of the parsed cells (mirroring how search tools treat rare codes).
func Parse(name string, r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)

	var header []alphabet.Code
	var scores [alphabet.Size][alphabet.Size]int8
	var seen [alphabet.Size][alphabet.Size]bool
	rows := 0

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if header == nil {
			for _, f := range fields {
				if len(f) != 1 {
					return nil, fmt.Errorf("submat: %s: bad header token %q", name, f)
				}
				c, ok := alphabet.Encode(f[0])
				if !ok {
					return nil, fmt.Errorf("submat: %s: unknown residue %q in header", name, f)
				}
				header = append(header, c)
			}
			continue
		}
		if len(fields) != len(header)+1 {
			return nil, fmt.Errorf("submat: %s: row %q has %d scores, want %d",
				name, fields[0], len(fields)-1, len(header))
		}
		if len(fields[0]) != 1 {
			return nil, fmt.Errorf("submat: %s: bad row label %q", name, fields[0])
		}
		rowRes, ok := alphabet.Encode(fields[0][0])
		if !ok {
			return nil, fmt.Errorf("submat: %s: unknown row residue %q", name, fields[0])
		}
		for k, f := range fields[1:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("submat: %s: bad score %q in row %c: %v", name, f, fields[0][0], err)
			}
			if v < -128 || v > 127 {
				return nil, fmt.Errorf("submat: %s: score %d out of int8 range", name, v)
			}
			scores[rowRes][header[k]] = int8(v)
			seen[rowRes][header[k]] = true
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("submat: %s: %v", name, err)
	}
	if header == nil || rows == 0 {
		return nil, fmt.Errorf("submat: %s: no matrix data found", name)
	}

	// Fill cells not covered by the file with the matrix minimum so that
	// partial matrices still produce sane (strongly negative) scores.
	minSeen := int8(127)
	for i := range seen {
		for j := range seen[i] {
			if seen[i][j] && scores[i][j] < minSeen {
				minSeen = scores[i][j]
			}
		}
	}
	for i := range seen {
		for j := range seen[i] {
			if !seen[i][j] {
				scores[i][j] = minSeen
			}
		}
	}
	return New(name, scores)
}

// MustParse is like Parse on a string but panics on error. It is intended
// for the built-in matrix literals, where a parse failure is a programming
// error caught at package initialisation.
func MustParse(name, text string) *Matrix {
	m, err := Parse(name, strings.NewReader(text))
	if err != nil {
		panic(err)
	}
	return m
}

// Format renders the matrix in NCBI textual form, suitable for Parse.
func Format(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n ", m.Name())
	for i := 0; i < alphabet.Size; i++ {
		fmt.Fprintf(&b, " %2c", alphabet.Letters[i])
	}
	b.WriteByte('\n')
	for i := 0; i < alphabet.Size; i++ {
		fmt.Fprintf(&b, "%c", alphabet.Letters[i])
		for j := 0; j < alphabet.Size; j++ {
			fmt.Fprintf(&b, " %2d", m.scores[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
