package submat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"heterosw/internal/alphabet"
)

// Parse reads a substitution matrix in the NCBI textual format against a
// target alphabet: '#' comment lines, a header row of residue letters, then
// one row per residue starting with its letter followed by integer scores.
// Residues may appear in any order and a subset of the alphabet is allowed;
// absent pairs score the minimum of the parsed cells (mirroring how search
// tools treat rare codes). Every parse failure wraps ErrBadMatrix (see the
// sentinel family), so the serving layer can map user-supplied matrix text
// errors to one client-error class.
func Parse(name string, r io.Reader, alpha *alphabet.Alphabet) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)

	n := alpha.Size()
	var header []alphabet.Code
	scores := make([]int8, n*n)
	seen := make([]bool, n*n)
	rows := 0

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if header == nil {
			for _, f := range fields {
				if len(f) != 1 {
					return nil, fmt.Errorf("%w: %s: bad header token %q", ErrBadAlphabet, name, f)
				}
				c, ok := alpha.Encode(f[0])
				if !ok {
					return nil, fmt.Errorf("%w: %s: residue %q in header is not in the %s alphabet",
						ErrBadAlphabet, name, f, alpha.Name())
				}
				header = append(header, c)
			}
			continue
		}
		if len(fields) != len(header)+1 {
			return nil, fmt.Errorf("%w: %s: row %q has %d scores, want %d",
				ErrNotSquare, name, fields[0], len(fields)-1, len(header))
		}
		if len(fields[0]) != 1 {
			return nil, fmt.Errorf("%w: %s: bad row label %q", ErrBadAlphabet, name, fields[0])
		}
		rowRes, ok := alpha.Encode(fields[0][0])
		if !ok {
			return nil, fmt.Errorf("%w: %s: row residue %q is not in the %s alphabet",
				ErrBadAlphabet, name, fields[0], alpha.Name())
		}
		for k, f := range fields[1:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: bad score %q in row %c: %v", ErrBadMatrix, name, f, fields[0][0], err)
			}
			if v < -128 || v > 127 {
				return nil, fmt.Errorf("%w: %s: score %d in row %c", ErrScoreRange, name, v, fields[0][0])
			}
			scores[int(rowRes)*n+int(header[k])] = int8(v)
			seen[int(rowRes)*n+int(header[k])] = true
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadMatrix, name, err)
	}
	if header == nil || rows == 0 {
		return nil, fmt.Errorf("%w: %s: no matrix data found", ErrNotSquare, name)
	}

	// Fill cells not covered by the file with the matrix minimum so that
	// partial matrices still produce sane (strongly negative) scores.
	minSeen := int8(127)
	for i, s := range seen {
		if s && scores[i] < minSeen {
			minSeen = scores[i]
		}
	}
	for i, s := range seen {
		if !s {
			scores[i] = minSeen
		}
	}
	return New(name, alpha, scores)
}

// ParseProtein parses matrix text against the protein alphabet — the form
// the built-in BLOSUM/PAM literals use.
func ParseProtein(name string, r io.Reader) (*Matrix, error) {
	return Parse(name, r, alphabet.Protein)
}

// MustParse is like Parse on a protein-alphabet string but panics on
// error. It is intended for the built-in matrix literals, where a parse
// failure is a programming error caught at package initialisation.
func MustParse(name, text string) *Matrix {
	m, err := Parse(name, strings.NewReader(text), alphabet.Protein)
	if err != nil {
		panic(err)
	}
	return m
}

// Format renders the matrix in NCBI textual form, suitable for Parse.
func Format(m *Matrix) string {
	var b strings.Builder
	letters := m.alpha.Letters()
	fmt.Fprintf(&b, "# %s\n ", m.Name())
	for i := 0; i < m.n; i++ {
		fmt.Fprintf(&b, " %2c", letters[i])
	}
	b.WriteByte('\n')
	for i := 0; i < m.n; i++ {
		fmt.Fprintf(&b, "%c", letters[i])
		for j := 0; j < m.n; j++ {
			fmt.Fprintf(&b, " %2d", m.scores[i*m.n+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
