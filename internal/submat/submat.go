// Package submat provides substitution matrices for Smith-Waterman
// alignment: the standard BLOSUM and PAM families used by protein database
// search tools, generated match/mismatch matrices for nucleotide search,
// and a parser for the NCBI textual matrix format so user-supplied
// matrices can be loaded from disk or submitted over HTTP.
//
// All experiments in the reproduced paper use BLOSUM62 with gap-open 10 and
// gap-extend 2; the other matrices are provided for library completeness.
package submat

import (
	"errors"
	"fmt"

	"heterosw/internal/alphabet"
)

// The ErrBadMatrix family: every way user-supplied matrix text can be
// rejected wraps ErrBadMatrix, so callers (the HTTP front end in
// particular) can test the family with one errors.Is while tests still
// distinguish the failure mode.
var (
	// ErrBadMatrix is the family root: the matrix text is unusable.
	ErrBadMatrix = errors.New("submat: invalid matrix")
	// ErrBadAlphabet marks a header or row label letter outside the
	// target alphabet.
	ErrBadAlphabet = fmt.Errorf("%w: residue outside the alphabet", ErrBadMatrix)
	// ErrNotSquare marks a row whose score count does not match the
	// header, an asymmetric table, or missing matrix data.
	ErrNotSquare = fmt.Errorf("%w: malformed shape", ErrBadMatrix)
	// ErrScoreRange marks a score outside int8 — the storage cells use and
	// exactly the range the 8-bit kernel ladder's bias arithmetic assumes.
	ErrScoreRange = fmt.Errorf("%w: score outside int8", ErrBadMatrix)
)

// Matrix is a symmetric substitution score table over a residue alphabet.
// The zero value is unusable; obtain instances from the package-level
// variables (BLOSUM62 etc.), Parse, MatchMismatch, or New.
type Matrix struct {
	name   string
	alpha  *alphabet.Alphabet
	n      int
	scores []int8 // n x n, row-major
	max    int    // largest score in the table
	min    int    // smallest score in the table
}

// New builds a Matrix over an alphabet from a full row-major score table of
// alpha.Size() x alpha.Size() cells. It returns an error (wrapping
// ErrNotSquare) if the table has the wrong cell count or is not symmetric,
// since the Smith-Waterman recurrences assume V(a,b) == V(b,a).
func New(name string, alpha *alphabet.Alphabet, scores []int8) (*Matrix, error) {
	n := alpha.Size()
	if len(scores) != n*n {
		return nil, fmt.Errorf("%w: %s has %d cells, want %dx%d", ErrNotSquare, name, len(scores), n, n)
	}
	m := &Matrix{name: name, alpha: alpha, n: n,
		scores: scores, max: int(scores[0]), min: int(scores[0])}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := int(scores[i*n+j])
			if s != int(scores[j*n+i]) {
				return nil, fmt.Errorf("%w: %s is asymmetric at (%c,%c): %d vs %d",
					ErrNotSquare, name, alpha.Letters()[i], alpha.Letters()[j], s, scores[j*n+i])
			}
			if s > m.max {
				m.max = s
			}
			if s < m.min {
				m.min = s
			}
		}
	}
	return m, nil
}

// MatchMismatch generates the nucleotide-style scoring scheme of blastn and
// the SSW library over an alphabet: match for identical unambiguous
// residues, mismatch for differing unambiguous residues, and 0 for any
// pair involving an ambiguity code (an N column can never raise or sink an
// alignment). match must be positive and mismatch negative.
func MatchMismatch(name string, alpha *alphabet.Alphabet, match, mismatch int) (*Matrix, error) {
	if match <= 0 || mismatch >= 0 {
		return nil, fmt.Errorf("%w: %s: match %d / mismatch %d (want positive/negative)",
			ErrScoreRange, name, match, mismatch)
	}
	if match > 127 || mismatch < -128 {
		return nil, fmt.Errorf("%w: %s: match %d / mismatch %d", ErrScoreRange, name, match, mismatch)
	}
	n := alpha.Size()
	scores := make([]int8, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case !alpha.IsStandard(alphabet.Code(i)) || !alpha.IsStandard(alphabet.Code(j)):
				scores[i*n+j] = 0
			case i == j:
				scores[i*n+j] = int8(match)
			default:
				scores[i*n+j] = int8(mismatch)
			}
		}
	}
	return New(name, alpha, scores)
}

// Name returns the matrix name, e.g. "BLOSUM62".
func (m *Matrix) Name() string { return m.name }

// Alphabet returns the residue alphabet the matrix scores over.
func (m *Matrix) Alphabet() *alphabet.Alphabet { return m.alpha }

// Size returns the alphabet size n; the table is n x n.
func (m *Matrix) Size() int { return m.n }

// Score returns the substitution score V(a, b).
func (m *Matrix) Score(a, b alphabet.Code) int { return int(m.scores[int(a)*m.n+int(b)]) }

// Row returns the score row for residue a against every alphabet residue.
// The returned slice is shared with the matrix and must not be modified; it
// is exposed so profile construction can copy rows without per-cell calls.
func (m *Matrix) Row(a alphabet.Code) []int8 { return m.scores[int(a)*m.n : (int(a)+1)*m.n] }

// Max returns the largest score in the matrix (the best possible per-cell
// gain, used for overflow-threshold computation in 16-bit kernels).
func (m *Matrix) Max() int { return m.max }

// Min returns the smallest score in the matrix.
func (m *Matrix) Min() int { return m.min }

// Built-in matrices, parsed once at package initialisation from their NCBI
// textual form. BLOSUM62 is the matrix used by every experiment in the
// paper; the values below are the standard NCBI distribution tables.
// (BLOSUM45/50/80 and PAM250 are transcriptions of the NCBI/EMBOSS data
// files; BLOSUM62 is the canonical table and is additionally locked by
// spot-check tests.) NUC is the blastn-default +2/-3 nucleotide
// match/mismatch scheme over the IUPAC DNA alphabet.
var (
	BLOSUM45 = MustParse("BLOSUM45", blosum45Text)
	BLOSUM50 = MustParse("BLOSUM50", blosum50Text)
	BLOSUM62 = MustParse("BLOSUM62", blosum62Text)
	BLOSUM80 = MustParse("BLOSUM80", blosum80Text)
	PAM250   = MustParse("PAM250", pam250Text)
	NUC      = mustMatchMismatch("NUC.2.3", alphabet.DNA, 2, -3)
)

func mustMatchMismatch(name string, alpha *alphabet.Alphabet, match, mismatch int) *Matrix {
	m, err := MatchMismatch(name, alpha, match, mismatch)
	if err != nil {
		panic(err)
	}
	return m
}

// ByName returns the built-in matrix with the given (case-sensitive) name.
// "NUC" and "DNA" both select the +2/-3 nucleotide scheme.
func ByName(name string) (*Matrix, error) {
	switch name {
	case "BLOSUM45":
		return BLOSUM45, nil
	case "BLOSUM50":
		return BLOSUM50, nil
	case "BLOSUM62":
		return BLOSUM62, nil
	case "BLOSUM80":
		return BLOSUM80, nil
	case "PAM250":
		return PAM250, nil
	case "NUC", "NUC.2.3", "DNA":
		return NUC, nil
	}
	return nil, fmt.Errorf("submat: unknown matrix %q (have BLOSUM45/50/62/80, PAM250, NUC)", name)
}

// Names lists the built-in matrix names.
func Names() []string {
	return []string{"BLOSUM45", "BLOSUM50", "BLOSUM62", "BLOSUM80", "PAM250", "NUC.2.3"}
}
