// Package submat provides amino-acid substitution matrices for
// Smith-Waterman alignment: the standard BLOSUM and PAM families used by
// protein database search tools, plus a parser for the NCBI textual matrix
// format so user-supplied matrices can be loaded from disk.
//
// All experiments in the reproduced paper use BLOSUM62 with gap-open 10 and
// gap-extend 2; the other matrices are provided for library completeness.
package submat

import (
	"fmt"

	"heterosw/internal/alphabet"
)

// Matrix is a symmetric substitution score table over the residue alphabet.
// The zero value is unusable; obtain instances from the package-level
// variables (BLOSUM62 etc.), Parse, or New.
type Matrix struct {
	name   string
	scores [alphabet.Size][alphabet.Size]int8
	max    int // largest score in the table
	min    int // smallest score in the table
}

// New builds a Matrix from a full score table. It returns an error if the
// table is not symmetric, since the Smith-Waterman recurrences assume
// V(a,b) == V(b,a).
func New(name string, scores [alphabet.Size][alphabet.Size]int8) (*Matrix, error) {
	m := &Matrix{name: name, scores: scores, max: int(scores[0][0]), min: int(scores[0][0])}
	for i := 0; i < alphabet.Size; i++ {
		for j := 0; j < alphabet.Size; j++ {
			s := int(scores[i][j])
			if s != int(scores[j][i]) {
				return nil, fmt.Errorf("submat: %s is asymmetric at (%c,%c): %d vs %d",
					name, alphabet.Letters[i], alphabet.Letters[j], s, scores[j][i])
			}
			if s > m.max {
				m.max = s
			}
			if s < m.min {
				m.min = s
			}
		}
	}
	return m, nil
}

// Name returns the matrix name, e.g. "BLOSUM62".
func (m *Matrix) Name() string { return m.name }

// Score returns the substitution score V(a, b).
func (m *Matrix) Score(a, b alphabet.Code) int { return int(m.scores[a][b]) }

// Row returns the score row for residue a against every alphabet residue.
// The returned array is shared with the matrix and must not be modified; it
// is exposed so profile construction can copy rows without per-cell calls.
func (m *Matrix) Row(a alphabet.Code) *[alphabet.Size]int8 { return &m.scores[a] }

// Max returns the largest score in the matrix (the best possible per-cell
// gain, used for overflow-threshold computation in 16-bit kernels).
func (m *Matrix) Max() int { return m.max }

// Min returns the smallest score in the matrix.
func (m *Matrix) Min() int { return m.min }

// Built-in matrices, parsed once at package initialisation from their NCBI
// textual form. BLOSUM62 is the matrix used by every experiment in the
// paper; the values below are the standard NCBI distribution tables.
// (BLOSUM45/50/80 and PAM250 are transcriptions of the NCBI/EMBOSS data
// files; BLOSUM62 is the canonical table and is additionally locked by
// spot-check tests.)
var (
	BLOSUM45 = MustParse("BLOSUM45", blosum45Text)
	BLOSUM50 = MustParse("BLOSUM50", blosum50Text)
	BLOSUM62 = MustParse("BLOSUM62", blosum62Text)
	BLOSUM80 = MustParse("BLOSUM80", blosum80Text)
	PAM250   = MustParse("PAM250", pam250Text)
)

// ByName returns the built-in matrix with the given (case-sensitive) name.
func ByName(name string) (*Matrix, error) {
	switch name {
	case "BLOSUM45":
		return BLOSUM45, nil
	case "BLOSUM50":
		return BLOSUM50, nil
	case "BLOSUM62":
		return BLOSUM62, nil
	case "BLOSUM80":
		return BLOSUM80, nil
	case "PAM250":
		return PAM250, nil
	}
	return nil, fmt.Errorf("submat: unknown matrix %q (have BLOSUM45/50/62/80, PAM250)", name)
}

// Names lists the built-in matrix names.
func Names() []string {
	return []string{"BLOSUM45", "BLOSUM50", "BLOSUM62", "BLOSUM80", "PAM250"}
}
