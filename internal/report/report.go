// Package report renders reproduced figures as aligned text tables and CSV
// so the benchmark harness can print exactly the rows/series the paper
// plots, and EXPERIMENTS.md can be regenerated mechanically.
package report

import (
	"fmt"
	"io"
	"strings"

	"heterosw/internal/figures"
)

// Table renders a figure as an aligned text table: one row per x value,
// one column per series.
func Table(w io.Writer, f *figures.Figure) error {
	if len(f.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", f.ID)
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n", strings.ToUpper(f.ID), f.Title)
	for _, note := range f.PaperNotes {
		fmt.Fprintf(&b, "#  %s\n", note)
	}

	// Header.
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteByte('\n')

	// Rows: x values come from the first series; all series in one figure
	// share the x grid by construction.
	for i := range f.Series[0].X {
		fmt.Fprintf(&b, "%-14s", trimFloat(f.Series[0].X[i]))
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %14.2f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV renders a figure as comma-separated values with a header row.
func CSV(w io.Writer, f *figures.Figure) error {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteByte('\n')
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			b.WriteString(trimFloat(f.Series[0].X[i]))
			for _, s := range f.Series {
				fmt.Fprintf(&b, ",%.4f", s.Y[i])
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// trimFloat renders an x coordinate without trailing zeros (thread counts
// and query lengths are integers; shares are percentages).
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Summary renders a one-line per-series summary (final value), used by the
// harness's terse mode.
func Summary(w io.Writer, f *figures.Figure) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", f.ID)
	for _, s := range f.Series {
		if len(s.Y) == 0 {
			continue
		}
		best := s.Y[0]
		for _, y := range s.Y[1:] {
			if y > best {
				best = y
			}
		}
		fmt.Fprintf(&b, " %s=%.1f", s.Label, best)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
