package report

import (
	"strings"
	"testing"

	"heterosw/internal/figures"
)

func testFigure() *figures.Figure {
	return &figures.Figure{
		ID: "fig3", Title: "Example", XLabel: "threads", YLabel: "GCUPS",
		PaperNotes: []string{"paper: something"},
		Series: []figures.Series{
			{Label: "intrinsic-SP", X: []float64{1, 2}, Y: []float64{1.5, 3.01}},
			{Label: "simd,QP", X: []float64{1, 2}, Y: []float64{0.7, 1.4}},
		},
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	if err := Table(&sb, testFigure()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FIG3", "intrinsic-SP", "threads", "3.01", "paper: something"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + note + header + 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestTableEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Table(&sb, &figures.Figure{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty figure output: %q", sb.String())
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, testFigure()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if lines[0] != `threads,intrinsic-SP,"simd,QP"` {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,1.5000,") {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestSummary(t *testing.T) {
	var sb strings.Builder
	if err := Summary(&sb, testFigure()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "intrinsic-SP=3.0") {
		t.Errorf("summary = %q", sb.String())
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape(`a"b`); got != `"a""b"` {
		t.Errorf("escape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("escape = %q", got)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(32) != "32" {
		t.Errorf("trimFloat(32) = %q", trimFloat(32))
	}
	if trimFloat(0.55) != "0.55" {
		t.Errorf("trimFloat(0.55) = %q", trimFloat(0.55))
	}
}
