// Package figures regenerates every figure and in-text table of the
// paper's evaluation (Section V): Xeon and Phi thread scaling (Figs. 3, 5),
// query-length sweeps (Figs. 4, 6), blocking (Fig. 7), the heterogeneous
// workload-distribution sweep (Fig. 8), the parallel-efficiency numbers
// quoted in the text, and the scheduling/sorting/power ablations the paper
// discusses qualitatively.
//
// Figures are computed over the synthetic Swiss-Prot workload at shape
// level: the device cost models consume only lane-group geometry, so the
// full 541,561-sequence database is simulated exactly without materialising
// residues (see DESIGN.md). Functional score verification is exercised by
// the engine tests and the swverify tool on smaller materialised databases.
package figures

import (
	"fmt"

	"heterosw/internal/core"
	"heterosw/internal/datagen"
	"heterosw/internal/device"
	"heterosw/internal/offload"
	"heterosw/internal/sched"
	"heterosw/internal/seqdb"
)

// Workload is the simulated benchmark environment: the database length
// distribution and the paper's 20 queries.
type Workload struct {
	// Scale is the fraction of full Swiss-Prot simulated (1.0 = 541,561
	// sequences).
	Scale float64

	lengths  []int
	residues int64
	queries  []datagen.QuerySpec

	shapes map[shapeKey][]device.Shape
	costs  []float64 // scratch, grown on demand
	splits map[float64]*heteroParts
}

type heteroParts struct {
	cpu, mic *Workload
}

type shapeKey struct {
	lanes         int
	sorted        bool
	longThreshold int
}

// NewWorkload builds the benchmark workload at the given database scale.
func NewWorkload(scale float64) *Workload {
	cfg := datagen.SwissProtConfig(scale)
	w := &Workload{
		Scale:   scale,
		lengths: datagen.Lengths(cfg),
		queries: datagen.PaperQueries(),
		shapes:  make(map[shapeKey][]device.Shape),
		splits:  make(map[float64]*heteroParts),
	}
	for _, l := range w.lengths {
		w.residues += int64(l)
	}
	return w
}

// Residues returns the database residue count at this scale.
func (w *Workload) Residues() int64 { return w.residues }

// Sequences returns the database sequence count at this scale.
func (w *Workload) Sequences() int { return len(w.lengths) }

// Queries returns the benchmark query specs (ascending length).
func (w *Workload) Queries() []datagen.QuerySpec { return w.queries }

func (w *Workload) shapesFor(lanes int, sorted bool, longThreshold int) []device.Shape {
	k := shapeKey{lanes, sorted, longThreshold}
	if s, ok := w.shapes[k]; ok {
		return s
	}
	s := seqdb.PackShapes(w.lengths, lanes, sorted, longThreshold)
	w.shapes[k] = s
	return s
}

// Config selects one simulated search configuration.
type Config struct {
	Dev     *device.Model
	Variant core.Variant
	// Unblocked disables the cache-blocking optimisation (figures default
	// to the blocked baseline, as the paper's code does).
	Unblocked bool
	BlockRows int
	Threads   int // device maximum when 0
	Policy    sched.Policy
	ChunkSize int  // scheduling chunk; sensible default when 0
	Unsorted  bool // skip the length-sorting pre-processing
}

func (c Config) params() core.Params {
	return core.Params{
		Variant:   c.Variant,
		GapOpen:   10,
		GapExtend: 2,
		Blocked:   !c.Unblocked,
		BlockRows: c.BlockRows,
	}
}

func (c Config) threads() int {
	if c.Threads <= 0 {
		return c.Dev.MaxThreads()
	}
	return c.Threads
}

func (c Config) chunk() int {
	if c.ChunkSize > 0 {
		return c.ChunkSize
	}
	// OpenMP dynamic's default chunk: one iteration per dispatch. Larger
	// chunks on the longest-first order would glue the longest sequences
	// into one over-heavy chunk.
	return 1
}

// SimSearch simulates one database search with a query of length m,
// returning the simulated seconds and the useful cell count.
func (w *Workload) SimSearch(c Config, m int) (seconds float64, cells int64) {
	class := c.params().KernelClass()
	lanes := c.Dev.Lanes
	longThr := core.DefaultLongSeqThreshold
	if class.Scalar {
		lanes = 1
		longThr = 0 // the scalar kernel needs no long-sequence routing
	}
	threads := c.threads()
	shapes := w.shapesFor(lanes, !c.Unsorted, longThr)
	coeffs := c.Dev.Coeffs(class, m, lanes, threads)
	intra := c.Dev.IntraCoeffs(m)
	if cap(w.costs) < len(shapes) {
		w.costs = make([]float64, len(shapes))
	}
	costs := w.costs[:len(shapes)]
	for i, s := range shapes {
		if s.Intra {
			costs[i] = intra.Cost(s)
		} else {
			costs[i] = coeffs.Cost(s)
		}
	}
	sim := sched.Simulate(costs, threads, c.Policy, c.chunk(), c.Dev.DispatchCycles)
	seconds = c.Dev.Seconds(sim.Makespan, threads)
	if c.Dev.OffloadRequired {
		in := offload.QueryBytes(m) + offload.DatabaseBytes(w.residues, len(w.lengths))
		out := offload.ScoreBytes(len(w.lengths))
		seconds = offload.RegionSeconds(c.Dev, in, out, seconds)
	}
	// Step 4: the serial host-side sort of the similarity scores.
	seconds += device.HostSortSeconds(len(w.lengths))
	return seconds, int64(m) * w.residues
}

// GCUPS simulates one search and returns its GCUPS.
func (w *Workload) GCUPS(c Config, m int) float64 {
	sec, cells := w.SimSearch(c, m)
	return float64(cells) / sec / 1e9
}

// AggregateGCUPS runs the full 20-query benchmark and returns the mean of
// the per-query GCUPS values, the workload-level metric the thread-scaling
// figures report.
func (w *Workload) AggregateGCUPS(c Config) float64 {
	var sum float64
	for _, q := range w.queries {
		sec, cells := w.SimSearch(c, q.Length)
		sum += float64(cells) / sec / 1e9
	}
	return sum / float64(len(w.queries))
}

// HeteroConfig selects a simulated heterogeneous search.
type HeteroConfig struct {
	CPU, MIC Config // Dev fields select the two models
	MICShare float64
}

// partsFor caches the per-share split sub-workloads so a share sweep does
// not re-sort half a million lengths per query.
func (w *Workload) partsFor(share float64) *heteroParts {
	if p, ok := w.splits[share]; ok {
		return p
	}
	micLens, cpuLens := seqdb.SplitLengths(w.lengths, share)
	mk := func(lens []int) *Workload {
		sub := &Workload{lengths: lens, shapes: make(map[shapeKey][]device.Shape)}
		for _, l := range lens {
			sub.residues += int64(l)
		}
		return sub
	}
	p := &heteroParts{cpu: mk(cpuLens), mic: mk(micLens)}
	w.splits[share] = p
	return p
}

// SimHetero simulates Algorithm 2 for one query length: the database is
// split by residue share, the MIC part runs inside an offload region
// overlapping the CPU part, and completion is the maximum of the two.
func (w *Workload) SimHetero(h HeteroConfig, m int) (seconds float64, cells int64) {
	p := w.partsFor(h.MICShare)
	var cpuSec, micSec float64
	if len(p.cpu.lengths) > 0 {
		cpuSec, _ = p.cpu.SimSearch(h.CPU, m)
	}
	if len(p.mic.lengths) > 0 {
		micSec, _ = p.mic.SimSearch(h.MIC, m)
	}
	seconds = cpuSec
	if micSec > seconds {
		seconds = micSec
	}
	return seconds, int64(m) * w.residues
}

// HeteroAggregateGCUPS runs the 20-query benchmark over the hybrid system
// and returns the mean per-query GCUPS.
func (w *Workload) HeteroAggregateGCUPS(h HeteroConfig) float64 {
	var sum float64
	for _, q := range w.queries {
		sec, cells := w.SimHetero(h, q.Length)
		sum += float64(cells) / sec / 1e9
	}
	return sum / float64(len(w.queries))
}

// String identifies the workload in reports.
func (w *Workload) String() string {
	return fmt.Sprintf("synthetic Swiss-Prot x%.3g: %d sequences, %d residues",
		w.Scale, len(w.lengths), w.residues)
}
