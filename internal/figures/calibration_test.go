package figures

// Calibration lock: these tests pin the simulated figures to the GCUPS
// values the paper states in its text (see EXPERIMENTS.md for the full
// paper-vs-measured table). If a device constant in
// internal/device/params.go changes, the failing assertion names the paper
// number that broke.

import (
	"testing"

	"heterosw/internal/core"
	"heterosw/internal/device"
	"heterosw/internal/sched"
)

// calibScale is 1.0: the calibration is pinned at the paper's full
// Swiss-Prot size (541,561 sequences). Scheduling-tail effects depend on
// the ratio of the largest chunk to the per-thread share, so reduced
// scales would distort the Phi's 240-thread numbers.
const calibScale = 1.0

var calibW = NewWorkload(calibScale)

func cfg(dev *device.Model, v core.Variant, threads int) Config {
	return Config{Dev: dev, Variant: v, Threads: threads, Policy: sched.Dynamic}
}

// within asserts got is within frac of want.
func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	if got < want*(1-frac) || got > want*(1+frac) {
		t.Errorf("%s = %.2f, want %.2f +/- %.0f%%", name, got, want, frac*100)
	}
}

func TestXeonHeadlineGCUPS(t *testing.T) {
	xeon := device.Xeon()
	// Stated in the text: best Xeon result 30.4 GCUPS (intrinsic-SP, 32T).
	within(t, "Xeon intrinsic-SP @32T", calibW.AggregateGCUPS(cfg(xeon, core.IntrinsicSP, 32)), 30.4, 0.10)
	// Fig. 4 plateau values stated in the text.
	within(t, "Xeon intrinsic-SP @M=5478", calibW.GCUPS(cfg(xeon, core.IntrinsicSP, 32), 5478), 32.0, 0.10)
	within(t, "Xeon simd-SP @M=5478", calibW.GCUPS(cfg(xeon, core.GuidedSP, 32), 5478), 25.1, 0.10)
	// "The two non-vectorised versions hardly offer performances."
	for _, v := range []core.Variant{core.NoVecQP, core.NoVecSP} {
		g := calibW.AggregateGCUPS(cfg(xeon, v, 32))
		if g > 3 {
			t.Errorf("Xeon %v @32T = %.2f GCUPS; paper says 'hardly offer performances'", v, g)
		}
	}
}

func TestXeonEfficiency(t *testing.T) {
	xeon := device.Xeon()
	base := calibW.AggregateGCUPS(cfg(xeon, core.IntrinsicSP, 1))
	eff := func(v core.Variant, threads int) float64 {
		b := base
		if v != core.IntrinsicSP {
			b = calibW.AggregateGCUPS(cfg(xeon, v, 1))
		}
		return calibW.AggregateGCUPS(cfg(xeon, v, threads)) / (float64(threads) * b)
	}
	// Section V.C.1: 99% @4T, 88% @16T, 70% @32T for intrinsic-SP.
	within(t, "intrinsic-SP efficiency @4T", eff(core.IntrinsicSP, 4), 0.99, 0.04)
	within(t, "intrinsic-SP efficiency @16T", eff(core.IntrinsicSP, 16), 0.88, 0.04)
	within(t, "intrinsic-SP efficiency @32T", eff(core.IntrinsicSP, 32), 0.70, 0.04)
	// 73% @16T for intrinsic-QP.
	within(t, "intrinsic-QP efficiency @16T", eff(core.IntrinsicQP, 16), 0.73, 0.04)
}

func TestPhiHeadlineGCUPS(t *testing.T) {
	phi := device.Phi()
	// Section V.C.2: maxima of the four vectorised variants at 240T.
	within(t, "Phi simd-QP @240T", calibW.AggregateGCUPS(cfg(phi, core.GuidedQP, 240)), 13.6, 0.10)
	within(t, "Phi simd-SP @240T", calibW.AggregateGCUPS(cfg(phi, core.GuidedSP, 240)), 14.5, 0.10)
	within(t, "Phi intrinsic-QP @240T", calibW.AggregateGCUPS(cfg(phi, core.IntrinsicQP, 240)), 27.1, 0.10)
	within(t, "Phi intrinsic-SP @240T", calibW.AggregateGCUPS(cfg(phi, core.IntrinsicSP, 240)), 34.9, 0.10)
	for _, v := range []core.Variant{core.NoVecQP, core.NoVecSP} {
		g := calibW.AggregateGCUPS(cfg(phi, v, 240))
		if g > 3 {
			t.Errorf("Phi %v @240T = %.2f GCUPS; paper says 'barely exhibit performances'", v, g)
		}
	}
}

func TestPhiThreadScalingMonotone(t *testing.T) {
	phi := device.Phi()
	for _, v := range []core.Variant{core.GuidedSP, core.IntrinsicQP, core.IntrinsicSP} {
		prev := 0.0
		for _, threads := range PhiThreadCounts() {
			g := calibW.AggregateGCUPS(cfg(phi, v, threads))
			if g <= prev {
				t.Errorf("Phi %v not scalable: %.2f GCUPS at %dT <= %.2f before", v, g, threads, prev)
			}
			prev = g
		}
	}
}

func TestVariantOrdering(t *testing.T) {
	// On both devices: no-vec < guided < intrinsic, and QP < SP within
	// each vectorised tier (Figures 3 and 5).
	for _, dev := range []*device.Model{device.Xeon(), device.Phi()} {
		g := make(map[core.Variant]float64)
		for _, v := range core.Variants() {
			g[v] = calibW.AggregateGCUPS(cfg(dev, v, dev.MaxThreads()))
		}
		if !(g[core.NoVecSP] < g[core.GuidedQP]) {
			t.Errorf("%s: no-vec %.2f !< simd-QP %.2f", dev.Short, g[core.NoVecSP], g[core.GuidedQP])
		}
		if !(g[core.GuidedQP] < g[core.GuidedSP]) {
			t.Errorf("%s: simd-QP %.2f !< simd-SP %.2f", dev.Short, g[core.GuidedQP], g[core.GuidedSP])
		}
		if !(g[core.GuidedSP] < g[core.IntrinsicSP]) {
			t.Errorf("%s: simd-SP %.2f !< intrinsic-SP %.2f", dev.Short, g[core.GuidedSP], g[core.IntrinsicSP])
		}
		if !(g[core.IntrinsicQP] < g[core.IntrinsicSP]) {
			t.Errorf("%s: intrinsic-QP %.2f !< intrinsic-SP %.2f", dev.Short, g[core.IntrinsicQP], g[core.IntrinsicSP])
		}
	}
}

func TestQueryLengthTrends(t *testing.T) {
	// Fig. 6: the Phi gains clearly with query length; Fig. 4: the Xeon is
	// comparatively flat with a light upward SP trend.
	phi, xeon := device.Phi(), device.Xeon()
	for _, v := range []core.Variant{core.GuidedSP, core.IntrinsicQP, core.IntrinsicSP} {
		shortQ := calibW.GCUPS(cfg(phi, v, 240), 144)
		longQ := calibW.GCUPS(cfg(phi, v, 240), 5478)
		if longQ < shortQ*1.10 {
			t.Errorf("Phi %v: no query-length gain (%.2f -> %.2f)", v, shortQ, longQ)
		}
	}
	shortQ := calibW.GCUPS(cfg(xeon, core.IntrinsicSP, 32), 144)
	longQ := calibW.GCUPS(cfg(xeon, core.IntrinsicSP, 32), 5478)
	if longQ < shortQ {
		t.Errorf("Xeon intrinsic-SP decreases with query length (%.2f -> %.2f)", shortQ, longQ)
	}
	if longQ > shortQ*1.25 {
		t.Errorf("Xeon intrinsic-SP ramp too steep (%.2f -> %.2f); paper calls it practically flat", shortQ, longQ)
	}
}

func TestBlockingFig7(t *testing.T) {
	// Fig. 7: blocking seriously improves both devices at long queries,
	// and the improvement is larger on the Phi.
	ratio := func(dev *device.Model) float64 {
		blocked := calibW.GCUPS(cfg(dev, core.IntrinsicSP, dev.MaxThreads()), 5478)
		c := cfg(dev, core.IntrinsicSP, dev.MaxThreads())
		c.Unblocked = true
		unblocked := calibW.GCUPS(c, 5478)
		return blocked / unblocked
	}
	xr, pr := ratio(device.Xeon()), ratio(device.Phi())
	if xr < 1.05 {
		t.Errorf("Xeon blocking speedup %.2fx; paper reports a serious improvement", xr)
	}
	if pr < 1.3 {
		t.Errorf("Phi blocking speedup %.2fx; paper reports a serious improvement", pr)
	}
	if pr <= xr {
		t.Errorf("blocking speedup Phi %.2fx <= Xeon %.2fx; paper says Phi benefits more", pr, xr)
	}
	// Short queries fit in cache: blocking must not matter much there.
	c := cfg(device.Phi(), core.IntrinsicSP, 240)
	c.Unblocked = true
	shortUnblocked := calibW.GCUPS(c, 144)
	shortBlocked := calibW.GCUPS(cfg(device.Phi(), core.IntrinsicSP, 240), 144)
	if shortBlocked/shortUnblocked > 1.1 {
		t.Errorf("Phi blocking speedup %.2fx at M=144; working set already fits", shortBlocked/shortUnblocked)
	}
}

func TestHeteroFig8(t *testing.T) {
	hc := func(share float64) HeteroConfig {
		return HeteroConfig{
			CPU:      cfg(device.Xeon(), core.IntrinsicSP, 32),
			MIC:      cfg(device.Phi(), core.IntrinsicSP, 240),
			MICShare: share,
		}
	}
	bestShare, bestG := 0.0, 0.0
	var at0, at100 float64
	for _, share := range Fig8Shares() {
		g := calibW.HeteroAggregateGCUPS(hc(share))
		if g > bestG {
			bestG, bestShare = g, share
		}
		switch share {
		case 0:
			at0 = g
		case 1:
			at100 = g
		}
	}
	// Paper: peak 62.6 GCUPS at ~55% Phi share, close to homogeneous.
	within(t, "Fig8 peak GCUPS", bestG, 62.6, 0.10)
	if bestShare < 0.45 || bestShare > 0.65 {
		t.Errorf("Fig8 peak at %.0f%% Phi share, paper says ~55%%", bestShare*100)
	}
	// The hybrid peak is almost the sum of the individual throughputs.
	if bestG < at0+at100*0.80 {
		t.Errorf("hybrid peak %.2f far below sum of parts (%.2f + %.2f)", bestG, at0, at100)
	}
	if bestG > at0+at100 {
		t.Errorf("hybrid peak %.2f exceeds sum of parts (%.2f + %.2f)", bestG, at0, at100)
	}
}

func TestSchedulingPolicyOrdering(t *testing.T) {
	// Section IV: dynamic outperforms static significantly; guided is
	// slightly behind dynamic.
	g := func(p sched.Policy) float64 {
		c := cfg(device.Xeon(), core.IntrinsicSP, 32)
		c.Policy = p
		return calibW.AggregateGCUPS(c)
	}
	dynamic, guided, static := g(sched.Dynamic), g(sched.Guided), g(sched.Static)
	if !(dynamic > static*1.05) {
		t.Errorf("dynamic %.2f not significantly above static %.2f", dynamic, static)
	}
	if !(guided > static) {
		t.Errorf("guided %.2f not above static %.2f", guided, static)
	}
	if !(dynamic >= guided*0.999) {
		t.Errorf("dynamic %.2f below guided %.2f", dynamic, guided)
	}
	if guided < dynamic*0.80 {
		t.Errorf("guided %.2f too far below dynamic %.2f; paper says slightly minor", guided, dynamic)
	}
}

func TestSortingPreprocessingHelps(t *testing.T) {
	// Section IV [14]: pre-sorting the database by length makes
	// consecutive alignments take similar time (better packing and
	// balance).
	sorted := calibW.AggregateGCUPS(cfg(device.Phi(), core.IntrinsicSP, 240))
	c := cfg(device.Phi(), core.IntrinsicSP, 240)
	c.Unsorted = true
	unsorted := calibW.AggregateGCUPS(c)
	if sorted <= unsorted {
		t.Errorf("sorted db %.2f GCUPS <= unsorted %.2f", sorted, unsorted)
	}
}

func TestPowerAblation(t *testing.T) {
	fig := Power(calibW)
	if len(fig.Series) != 1 || len(fig.Series[0].Y) != len(Fig8Shares()) {
		t.Fatalf("power figure malformed: %+v", fig.Series)
	}
	for i, y := range fig.Series[0].Y {
		if y <= 0 || y > 1 {
			t.Errorf("GCUPS/W out of range at point %d: %v", i, y)
		}
	}
}

func TestHalfScaleCloseToFullScale(t *testing.T) {
	// GCUPS is an intensity: a half-size database should produce similar
	// throughput (the residual gap is the scheduling tail, which shrinks
	// with database size).
	if testing.Short() {
		t.Skip("extra workload in -short mode")
	}
	half := NewWorkload(0.5)
	for _, dev := range []*device.Model{device.Xeon(), device.Phi()} {
		a := half.GCUPS(cfg(dev, core.IntrinsicSP, dev.MaxThreads()), 1000)
		b := calibW.GCUPS(cfg(dev, core.IntrinsicSP, dev.MaxThreads()), 1000)
		if a < b*0.85 || a > b*1.10 {
			t.Errorf("%s: half-scale %.2f vs full-scale %.2f GCUPS", dev.Short, a, b)
		}
	}
}

func TestTransferImpactShape(t *testing.T) {
	fig := TransferImpact(calibW)
	if len(fig.Series) != 2 {
		t.Fatalf("%d series", len(fig.Series))
	}
	perQuery, resident := fig.Series[0], fig.Series[1]
	// Transfers amortise with query length: the share must decrease.
	if perQuery.Y[0] <= perQuery.Y[len(perQuery.Y)-1] {
		t.Errorf("per-query transfer share does not decrease: %v", perQuery.Y)
	}
	// The resident-database policy always transfers less.
	for i := range perQuery.Y {
		if resident.Y[i] >= perQuery.Y[i] {
			t.Errorf("resident share %v >= per-query %v at point %d", resident.Y[i], perQuery.Y[i], i)
		}
		if perQuery.Y[i] < 0 || perQuery.Y[i] > 100 {
			t.Errorf("share out of range: %v", perQuery.Y[i])
		}
	}
	// Transfers are a visible cost for short queries and negligible for
	// the longest ones.
	if perQuery.Y[0] < 1 {
		t.Errorf("shortest-query transfer share %v%% suspiciously small", perQuery.Y[0])
	}
	if perQuery.Y[len(perQuery.Y)-1] > 2 {
		t.Errorf("longest-query transfer share %v%% suspiciously large", perQuery.Y[len(perQuery.Y)-1])
	}
}
