package figures

import (
	"fmt"
	"math"

	"heterosw/internal/core"
	"heterosw/internal/device"
	"heterosw/internal/offload"
	"heterosw/internal/sched"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is one reproduced figure or table: labelled series over a common
// x-axis, plus provenance notes comparing against the paper.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// PaperNotes records the values the paper states in its text for
	// this experiment, for EXPERIMENTS.md-style reporting.
	PaperNotes []string
}

// XeonThreadCounts are the thread counts of Figure 3.
func XeonThreadCounts() []int { return []int{1, 2, 4, 8, 16, 32} }

// PhiThreadCounts are the thread counts of Figure 5.
func PhiThreadCounts() []int { return []int{30, 60, 120, 180, 240} }

// Fig3 reproduces "Performance on Intel Xeon with different number of
// threads": six variants, 20-query aggregate GCUPS.
func Fig3(w *Workload) *Figure {
	return threadScalingFigure(w, device.Xeon(), "fig3",
		"Performance on Intel Xeon with different number of threads",
		XeonThreadCounts(),
		[]string{
			"paper: best result 30.4 GCUPS with intrinsic-SP at 32 threads",
			"paper: non-vectorised versions hardly offer performance",
		})
}

// Fig5 reproduces "Performance of the different Intel Xeon Phi algorithm
// variants using a variable number of threads".
func Fig5(w *Workload) *Figure {
	return threadScalingFigure(w, device.Phi(), "fig5",
		"Performance on Intel Xeon Phi with different number of threads",
		PhiThreadCounts(),
		[]string{
			"paper @240T: simd-QP 13.6, simd-SP 14.5, intrinsic-QP 27.1, intrinsic-SP 34.9 GCUPS",
		})
}

func threadScalingFigure(w *Workload, dev *device.Model, id, title string, threads []int, notes []string) *Figure {
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "threads", YLabel: "GCUPS",
		PaperNotes: notes,
	}
	for _, v := range core.Variants() {
		s := Series{Label: v.String()}
		for _, t := range threads {
			g := w.AggregateGCUPS(Config{Dev: dev, Variant: v, Threads: t, Policy: sched.Dynamic})
			s.X = append(s.X, float64(t))
			s.Y = append(s.Y, g)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig4 reproduces "Performance on Intel Xeon with a variable query length"
// at the most favourable 32 threads.
func Fig4(w *Workload) *Figure {
	return queryLengthFigure(w, device.Xeon(), 32, "fig4",
		"Performance on Intel Xeon with variable query length (32 threads)",
		[]string{
			"paper: query length has practically no impact in most experiments",
			"paper: SP versions trend slightly upward, to 25.1 (simd-SP) and 32 (intrinsic-SP) GCUPS",
		})
}

// Fig6 reproduces "Performance of the different Intel Xeon Phi algorithm
// variants using variable query lengths" at 240 threads.
func Fig6(w *Workload) *Figure {
	return queryLengthFigure(w, device.Phi(), 240, "fig6",
		"Performance on Intel Xeon Phi with variable query length (240 threads)",
		[]string{
			"paper: longer queries expose more parallelism and achieve more performance",
			"paper: SP beats QP thanks to consecutive memory accesses",
		})
}

func queryLengthFigure(w *Workload, dev *device.Model, threads int, id, title string, notes []string) *Figure {
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "query length", YLabel: "GCUPS",
		PaperNotes: notes,
	}
	for _, v := range core.Variants() {
		s := Series{Label: v.String()}
		for _, q := range w.Queries() {
			g := w.GCUPS(Config{Dev: dev, Variant: v, Threads: threads, Policy: sched.Dynamic}, q.Length)
			s.X = append(s.X, float64(q.Length))
			s.Y = append(s.Y, g)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig7 reproduces "Performance of blocking and non-blocking Intel Xeon and
// Intel Xeon Phi algorithm variants using variable query lengths"
// (intrinsic-SP, all hardware threads).
func Fig7(w *Workload) *Figure {
	fig := &Figure{
		ID:     "fig7",
		Title:  "Blocking vs non-blocking (intrinsic-SP, all threads)",
		XLabel: "query length", YLabel: "GCUPS",
		PaperNotes: []string{
			"paper: exploiting data locality seriously improves performance on both devices",
			"paper: the improvement is larger on the Phi because its cache is smaller",
		},
	}
	type cfg struct {
		dev       *device.Model
		unblocked bool
		label     string
	}
	for _, c := range []cfg{
		{device.Xeon(), false, "xeon blocking"},
		{device.Xeon(), true, "xeon non-blocking"},
		{device.Phi(), false, "phi blocking"},
		{device.Phi(), true, "phi non-blocking"},
	} {
		s := Series{Label: c.label}
		for _, q := range w.Queries() {
			g := w.GCUPS(Config{
				Dev: c.dev, Variant: core.IntrinsicSP, Unblocked: c.unblocked,
				Policy: sched.Dynamic,
			}, q.Length)
			s.X = append(s.X, float64(q.Length))
			s.Y = append(s.Y, g)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig8Shares are the workload-distribution grid points of Figure 8.
func Fig8Shares() []float64 {
	shares := make([]float64, 0, 21)
	for p := 0; p <= 100; p += 5 {
		shares = append(shares, float64(p)/100)
	}
	return shares
}

// Fig8 reproduces "Performance of the heterogeneous algorithm for
// different workload distributions": intrinsic-SP on both devices, MIC
// share swept from 0 to 100%.
func Fig8(w *Workload) *Figure {
	fig := &Figure{
		ID:     "fig8",
		Title:  "Heterogeneous performance vs workload distribution (intrinsic-SP)",
		XLabel: "% of workload on Xeon Phi", YLabel: "GCUPS",
		PaperNotes: []string{
			"paper: best configuration close to homogeneous (45% Xeon / 55% Phi)",
			"paper: peak 62.6 GCUPS, almost the sum of 30.4 and 34.9",
		},
	}
	s := Series{Label: "hetero intrinsic-SP"}
	for _, share := range Fig8Shares() {
		g := w.HeteroAggregateGCUPS(HeteroConfig{
			CPU:      Config{Dev: device.Xeon(), Variant: core.IntrinsicSP, Policy: sched.Dynamic},
			MIC:      Config{Dev: device.Phi(), Variant: core.IntrinsicSP, Policy: sched.Dynamic},
			MICShare: share,
		})
		s.X = append(s.X, math.Round(share*100))
		s.Y = append(s.Y, g)
	}
	fig.Series = append(fig.Series, s)
	return fig
}

// Efficiency reproduces the parallel-efficiency numbers quoted in Section
// V.C.1: GCUPS(T) / (T * GCUPS(1)) for the intrinsic variants on the Xeon.
func Efficiency(w *Workload) *Figure {
	fig := &Figure{
		ID:     "eff",
		Title:  "Xeon parallel efficiency (text of Section V.C.1)",
		XLabel: "threads", YLabel: "efficiency",
		PaperNotes: []string{
			"paper: intrinsic-SP 99% @4T, 88% @16T, 70% @32T (hyper-threading)",
			"paper: intrinsic-QP 73% @16T",
		},
	}
	for _, v := range []core.Variant{core.IntrinsicSP, core.IntrinsicQP} {
		base := w.AggregateGCUPS(Config{Dev: device.Xeon(), Variant: v, Threads: 1, Policy: sched.Dynamic})
		s := Series{Label: v.String()}
		for _, t := range XeonThreadCounts() {
			g := w.AggregateGCUPS(Config{Dev: device.Xeon(), Variant: v, Threads: t, Policy: sched.Dynamic})
			s.X = append(s.X, float64(t))
			s.Y = append(s.Y, g/(float64(t)*base))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// SchedulePolicies reproduces the Section IV observation that dynamic
// scheduling outperforms static significantly with guided slightly behind
// dynamic, on the length-sorted database (intrinsic-SP, Xeon, 32 threads).
func SchedulePolicies(w *Workload) *Figure {
	fig := &Figure{
		ID:     "sched",
		Title:  "OpenMP scheduling policy ablation (intrinsic-SP, Xeon, 32 threads)",
		XLabel: "policy (0=static 1=dynamic 2=guided)", YLabel: "GCUPS",
		PaperNotes: []string{
			"paper: dynamic outperforms static significantly; difference with guided is slightly minor",
		},
	}
	for _, sorted := range []bool{true, false} {
		label := "sorted db"
		if !sorted {
			label = "unsorted db"
		}
		s := Series{Label: label}
		for i, p := range []sched.Policy{sched.Static, sched.Dynamic, sched.Guided} {
			g := w.AggregateGCUPS(Config{
				Dev: device.Xeon(), Variant: core.IntrinsicSP, Threads: 32,
				Policy: p, Unsorted: !sorted,
			})
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, g)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Power extends Figure 8 with the energy view the paper proposes as future
// work (Section V.C.3): GCUPS per watt across the split sweep, using the
// TDP figures the paper quotes.
func Power(w *Workload) *Figure {
	fig := &Figure{
		ID:     "power",
		Title:  "Energy efficiency of the split sweep (GCUPS/W, TDP-based)",
		XLabel: "% of workload on Xeon Phi", YLabel: "GCUPS/W",
		PaperNotes: []string{
			"paper (future work): workload distribution should also weigh power; Xeon ~120 W/chip vs Phi 240 W",
		},
	}
	xeonW := device.Xeon().TDPWatts
	phiW := device.Phi().TDPWatts
	s := Series{Label: "hetero GCUPS/W"}
	for _, share := range Fig8Shares() {
		g := w.HeteroAggregateGCUPS(HeteroConfig{
			CPU:      Config{Dev: device.Xeon(), Variant: core.IntrinsicSP, Policy: sched.Dynamic},
			MIC:      Config{Dev: device.Phi(), Variant: core.IntrinsicSP, Policy: sched.Dynamic},
			MICShare: share,
		})
		watts := xeonW + phiW
		switch share {
		case 0:
			watts = xeonW
		case 1:
			watts = phiW
		}
		s.X = append(s.X, math.Round(share*100))
		s.Y = append(s.Y, g/watts)
	}
	fig.Series = append(fig.Series, s)
	return fig
}

// All returns every reproduced figure, keyed as the harness and CLI name
// them.
func All(w *Workload) []*Figure {
	return []*Figure{
		Fig3(w), Fig4(w), Fig5(w), Fig6(w), Fig7(w), Fig8(w),
		Efficiency(w), SchedulePolicies(w), Power(w), TransferImpact(w),
	}
}

// ByID computes a single figure by its ID ("fig3".."fig8", "eff", "sched",
// "power").
func ByID(w *Workload, id string) (*Figure, error) {
	switch id {
	case "fig3", "3":
		return Fig3(w), nil
	case "fig4", "4":
		return Fig4(w), nil
	case "fig5", "5":
		return Fig5(w), nil
	case "fig6", "6":
		return Fig6(w), nil
	case "fig7", "7":
		return Fig7(w), nil
	case "fig8", "8":
		return Fig8(w), nil
	case "eff":
		return Efficiency(w), nil
	case "sched":
		return SchedulePolicies(w), nil
	case "power":
		return Power(w), nil
	case "transfer":
		return TransferImpact(w), nil
	}
	return nil, fmt.Errorf("figures: unknown figure %q", id)
}

// TransferImpact addresses the paper's closing future-work question —
// "assess the impact of transferences between host and coprocessor" — by
// measuring what fraction of the Phi's time goes to PCIe data movement,
// per query length, under two transfer policies: Algorithm 2's literal
// per-query database shipment, and a resident-database policy that ships
// the database once per 20-query batch.
func TransferImpact(w *Workload) *Figure {
	fig := &Figure{
		ID:     "transfer",
		Title:  "PCIe transfer share of Phi time (future work of Section VI)",
		XLabel: "query length", YLabel: "% of Phi time",
		PaperNotes: []string{
			"paper (future work): evaluating larger databases (UniProt TrEMBL) will assess the impact of transfers",
			"resident-database policy ships the database once per 20-query batch",
		},
	}
	phi := device.Phi()
	cfg := Config{Dev: phi, Variant: core.IntrinsicSP, Threads: 240, Policy: sched.Dynamic}
	perQuery := Series{Label: "db per query"}
	resident := Series{Label: "db resident"}
	queries := len(w.Queries())
	for _, q := range w.Queries() {
		total, _ := w.SimSearch(cfg, q.Length)
		dbIn := phi.TransferSeconds(offloadDatabaseBytes(w))
		other := phi.TransferSeconds(offload.QueryBytes(q.Length)) +
			phi.TransferSeconds(offload.ScoreBytes(w.Sequences()))
		compute := total - dbIn - other
		perQuery.X = append(perQuery.X, float64(q.Length))
		perQuery.Y = append(perQuery.Y, (dbIn+other)/total*100)
		amortised := dbIn/float64(queries) + other
		resident.X = append(resident.X, float64(q.Length))
		resident.Y = append(resident.Y, amortised/(compute+amortised)*100)
	}
	fig.Series = append(fig.Series, perQuery, resident)
	return fig
}

func offloadDatabaseBytes(w *Workload) int64 {
	return offload.DatabaseBytes(w.Residues(), w.Sequences())
}
