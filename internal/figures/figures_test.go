package figures

import (
	"testing"

	"heterosw/internal/datagen"
	"heterosw/internal/device"
)

func TestNewWorkloadStats(t *testing.T) {
	w := NewWorkload(0.02)
	scale := 0.02
	want := int(scale*float64(datagen.SwissProtSequences) + 0.5)
	if w.Sequences() != want {
		t.Fatalf("sequences = %d, want %d", w.Sequences(), want)
	}
	mean := float64(w.Residues()) / float64(w.Sequences())
	if mean < 300 || mean > 420 {
		t.Fatalf("mean length %.1f implausible for Swiss-Prot", mean)
	}
	if len(w.Queries()) != 20 {
		t.Fatalf("%d queries", len(w.Queries()))
	}
	if w.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestAllFiguresWellFormed(t *testing.T) {
	w := NewWorkload(0.02)
	figs := All(w)
	if len(figs) != 10 {
		t.Fatalf("All returned %d figures, want 10", len(figs))
	}
	seen := make(map[string]bool)
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || f.XLabel == "" || f.YLabel == "" {
			t.Errorf("figure %q missing metadata", f.ID)
		}
		if seen[f.ID] {
			t.Errorf("duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
		if len(f.Series) == 0 {
			t.Errorf("figure %q has no series", f.ID)
		}
		for _, s := range f.Series {
			if len(s.X) != len(s.Y) {
				t.Errorf("figure %q series %q: %d x vs %d y", f.ID, s.Label, len(s.X), len(s.Y))
			}
			if len(s.X) == 0 {
				t.Errorf("figure %q series %q empty", f.ID, s.Label)
			}
			for i, y := range s.Y {
				if y < 0 {
					t.Errorf("figure %q series %q: negative value at %d", f.ID, s.Label, i)
				}
			}
		}
	}
}

func TestThreadScalingFigureSeriesCount(t *testing.T) {
	w := NewWorkload(0.02)
	f3 := Fig3(w)
	if len(f3.Series) != 6 {
		t.Fatalf("Fig3 has %d series, want 6 variants", len(f3.Series))
	}
	if len(f3.Series[0].X) != len(XeonThreadCounts()) {
		t.Fatalf("Fig3 x-points %d", len(f3.Series[0].X))
	}
	f5 := Fig5(w)
	if len(f5.Series[0].X) != len(PhiThreadCounts()) {
		t.Fatalf("Fig5 x-points %d", len(f5.Series[0].X))
	}
}

func TestByID(t *testing.T) {
	w := NewWorkload(0.02)
	for _, id := range []string{"fig3", "4", "fig5", "6", "fig7", "8", "eff", "sched", "power", "transfer"} {
		f, err := ByID(w, id)
		if err != nil || f == nil {
			t.Errorf("ByID(%q): %v", id, err)
		}
	}
	if _, err := ByID(w, "fig99"); err == nil {
		t.Error("ByID accepted junk id")
	}
}

func TestFig8SharesGrid(t *testing.T) {
	shares := Fig8Shares()
	if len(shares) != 21 || shares[0] != 0 || shares[20] != 1 {
		t.Fatalf("bad share grid: %v", shares)
	}
}

func TestSimHeteroDegenerateShares(t *testing.T) {
	w := NewWorkload(0.02)
	h := HeteroConfig{
		CPU: cfg(devXeon(), 0, 32),
		MIC: cfg(devPhi(), 0, 240),
	}
	h.MICShare = 0
	sec0, cells := w.SimHetero(h, 1000)
	if sec0 <= 0 || cells != 1000*w.Residues() {
		t.Fatalf("share 0: %v %v", sec0, cells)
	}
	cpuOnly, _ := w.SimSearch(h.CPU, 1000)
	if sec0 != cpuOnly {
		t.Fatalf("share 0 time %v != cpu-only %v", sec0, cpuOnly)
	}
	h.MICShare = 1
	sec1, _ := w.SimHetero(h, 1000)
	micOnly, _ := w.SimSearch(h.MIC, 1000)
	if sec1 != micOnly {
		t.Fatalf("share 1 time %v != mic-only %v", sec1, micOnly)
	}
}

func devXeon() *device.Model { return device.Xeon() }
func devPhi() *device.Model  { return device.Phi() }
