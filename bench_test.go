package heterosw

// Benchmark harness: one benchmark per figure/table of the paper's
// evaluation (regenerating its series through the simulated devices and
// reporting the headline number as a custom metric), plus functional
// microbenchmarks of every kernel variant measuring real pure-Go cell
// throughput on the host.
//
// Figure benchmarks run the simulation at 1/20 of Swiss-Prot scale per
// iteration to keep -bench runs quick; cmd/swbench regenerates the same
// figures at full scale and prints the complete series.

import (
	"fmt"
	"math/rand"
	"testing"

	"heterosw/internal/alphabet"
	"heterosw/internal/core"
	"heterosw/internal/datagen"
	"heterosw/internal/device"
	"heterosw/internal/figures"
	"heterosw/internal/profile"
	"heterosw/internal/sched"
	"heterosw/internal/seqdb"
	"heterosw/internal/sequence"
	"heterosw/internal/submat"
	"heterosw/internal/swalign"
	"heterosw/internal/vec"
)

const benchFigureScale = 0.05

// benchWorkload is shared by the figure benchmarks (building it is cheap
// but not free, and identical across iterations).
var benchWorkload = figures.NewWorkload(benchFigureScale)

func reportSeriesMax(b *testing.B, fig *figures.Figure, label string) {
	b.Helper()
	for _, s := range fig.Series {
		if s.Label != label {
			continue
		}
		best := 0.0
		for _, y := range s.Y {
			if y > best {
				best = y
			}
		}
		b.ReportMetric(best, "GCUPS")
		return
	}
	b.Fatalf("series %q not found", label)
}

// BenchmarkFig03XeonThreadScaling regenerates Figure 3 (Xeon, 6 variants,
// threads 1..32) and reports the intrinsic-SP peak.
func BenchmarkFig03XeonThreadScaling(b *testing.B) {
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.Fig3(benchWorkload)
	}
	reportSeriesMax(b, fig, "intrinsic-SP")
}

// BenchmarkFig04XeonQueryLength regenerates Figure 4 (Xeon @32T over the
// 20 query lengths).
func BenchmarkFig04XeonQueryLength(b *testing.B) {
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.Fig4(benchWorkload)
	}
	reportSeriesMax(b, fig, "intrinsic-SP")
}

// BenchmarkFig05PhiThreadScaling regenerates Figure 5 (Phi, 6 variants,
// threads 30..240).
func BenchmarkFig05PhiThreadScaling(b *testing.B) {
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.Fig5(benchWorkload)
	}
	reportSeriesMax(b, fig, "intrinsic-SP")
}

// BenchmarkFig06PhiQueryLength regenerates Figure 6 (Phi @240T over the 20
// query lengths).
func BenchmarkFig06PhiQueryLength(b *testing.B) {
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.Fig6(benchWorkload)
	}
	reportSeriesMax(b, fig, "intrinsic-SP")
}

// BenchmarkFig07Blocking regenerates Figure 7 (blocking vs non-blocking on
// both devices).
func BenchmarkFig07Blocking(b *testing.B) {
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.Fig7(benchWorkload)
	}
	reportSeriesMax(b, fig, "phi blocking")
}

// BenchmarkFig08HeteroSplit regenerates Figure 8 (the CPU/Phi workload-
// distribution sweep) and reports the hybrid peak.
func BenchmarkFig08HeteroSplit(b *testing.B) {
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.Fig8(benchWorkload)
	}
	reportSeriesMax(b, fig, "hetero intrinsic-SP")
}

// BenchmarkTableEfficiency regenerates the Section V.C.1 efficiency table
// and reports intrinsic-SP efficiency at 16 threads (paper: 0.88).
func BenchmarkTableEfficiency(b *testing.B) {
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.Efficiency(benchWorkload)
	}
	for _, s := range fig.Series {
		if s.Label == "intrinsic-SP" {
			for i, x := range s.X {
				if x == 16 {
					b.ReportMetric(s.Y[i], "efficiency@16T")
				}
			}
		}
	}
}

// BenchmarkAblationSchedule regenerates the scheduling-policy ablation
// (Section IV: dynamic > guided > static).
func BenchmarkAblationSchedule(b *testing.B) {
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.SchedulePolicies(benchWorkload)
	}
	reportSeriesMax(b, fig, "sorted db")
}

// BenchmarkAblationPower regenerates the GCUPS/W extension of Figure 8.
func BenchmarkAblationPower(b *testing.B) {
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.Power(benchWorkload)
	}
	reportSeriesMax(b, fig, "hetero GCUPS/W")
}

// ---- Functional kernel microbenchmarks (real wall-clock throughput) ----

type kernelBench struct {
	qp     *profile.Query
	groups []*seqdb.LaneGroup
	long   []int
	db     *seqdb.Database
	params core.Params
	bufs   *core.Buffers
	cells  int64
}

func newKernelBench(b *testing.B, variant core.Variant, lanes int, blocked bool) *kernelBench {
	b.Helper()
	seqs := datagen.Generate(datagen.Config{Sequences: 256, Seed: 99, MeanLen: 355, MaxLen: 2000})
	db := seqdb.New(seqs, true)
	groups, long := db.Partition(lanes, 0)
	queries := datagen.GenerateQueries(7)
	q := profile.NewQuery(queries[4].Residues, submat.BLOSUM62) // 464 aa
	kb := &kernelBench{
		qp:     q,
		groups: groups,
		long:   long,
		db:     db,
		params: core.Params{Variant: variant, GapOpen: 10, GapExtend: 2, Blocked: blocked},
		bufs:   core.NewBuffers(lanes),
		cells:  int64(q.Len()) * db.Residues(),
	}
	return kb
}

func (kb *kernelBench) run(b *testing.B) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range kb.groups {
			core.AlignGroup(kb.qp, g, kb.params, kb.bufs)
		}
	}
	b.StopTimer()
	megaCells := float64(kb.cells) / 1e6
	b.ReportMetric(megaCells*float64(b.N)/b.Elapsed().Seconds(), "Mcells/s")
}

func BenchmarkKernelNoVec(b *testing.B)       { newKernelBench(b, core.NoVecSP, 1, false).run(b) }
func BenchmarkKernelGuidedQP(b *testing.B)    { newKernelBench(b, core.GuidedQP, 16, false).run(b) }
func BenchmarkKernelGuidedSP(b *testing.B)    { newKernelBench(b, core.GuidedSP, 16, false).run(b) }
func BenchmarkKernelIntrinsicQP(b *testing.B) { newKernelBench(b, core.IntrinsicQP, 16, false).run(b) }
func BenchmarkKernelIntrinsicSP(b *testing.B) { newKernelBench(b, core.IntrinsicSP, 16, false).run(b) }
func BenchmarkKernelIntrinsicSP32(b *testing.B) {
	newKernelBench(b, core.IntrinsicSP, 32, false).run(b)
}
func BenchmarkKernelIntrinsicSPBlocked(b *testing.B) {
	newKernelBench(b, core.IntrinsicSP, 16, true).run(b)
}

// Portable-backend twins of the intrinsic microbenchmarks: identical
// workloads with internal/vec's pure-Go loops forced. On an AVX2 host the
// pair measures the native backend's speedup directly; committed side by
// side in the benchmark artifact they let the wall-GCUPS gate catch a
// silently lost native backend (mis-detected CPU feature, broken
// dispatch) rather than only gross portable-loop regressions.
func benchKernelPortable(b *testing.B, variant core.Variant, lanes int) {
	b.Helper()
	kb := newKernelBench(b, variant, lanes, false)
	prev := vec.ForcePortable(true)
	defer vec.ForcePortable(prev)
	kb.run(b)
}

func BenchmarkKernelIntrinsicSPPortable(b *testing.B) { benchKernelPortable(b, core.IntrinsicSP, 16) }
func BenchmarkKernelIntrinsicQPPortable(b *testing.B) { benchKernelPortable(b, core.IntrinsicQP, 16) }

// Precision-ladder microbenchmark: the 8-bit first pass vs the 16-bit
// pass over short-sequence lane groups — the packing the ladder exists
// for, since a length-sorted protein database is dominated by subjects
// whose scores provably fit a byte. Wall Mcells/s reports the emulation's
// host throughput; sim-GCUPS is the deterministic device-model number the
// regression gate compares (byte lanes halve the group count per residue,
// so the model shows the ~2x the real hardware trick delivers).
func benchLadder(b *testing.B, prec core.Precision) {
	seqs := datagen.Generate(datagen.Config{Sequences: 512, Seed: 42, MeanLen: 120, MaxLen: 240})
	db := seqdb.New(seqs, true)
	dev := device.Xeon()
	params := core.Params{Variant: core.IntrinsicSP, GapOpen: 10, GapExtend: 2, Blocked: true, Prec: prec}
	lanes := dev.Lanes
	if prec == core.Prec8 {
		lanes = dev.ByteLanes()
	}
	groups, _ := db.Partition(lanes, 0)
	q := profile.NewQuery(datagen.GenerateQueries(7)[2].Residues, submat.BLOSUM62) // 222 aa
	bufs := core.NewBuffers(lanes)
	cells := int64(q.Len()) * db.Residues()
	threads := dev.MaxThreads()
	class := params.KernelClass()
	var cycles float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycles = 0
		for _, g := range groups {
			_, st := core.AlignGroup(q, g, params, bufs)
			shape := device.Shape{Width: g.Width, Lanes: g.Lanes, Residues: g.Residues}
			cycles += dev.GroupCost(class, q.Len(), shape, threads, st.OverflowCells)
		}
	}
	b.StopTimer()
	simSeconds := cycles / (float64(threads) * dev.ThreadRate(threads))
	b.ReportMetric(float64(cells)/simSeconds/1e9, "sim-GCUPS")
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

func BenchmarkKernelLadderShort8(b *testing.B)  { benchLadder(b, core.Prec8) }
func BenchmarkKernelLadderShort16(b *testing.B) { benchLadder(b, core.Prec16) }

// BenchmarkKernelDNANuc is the nucleotide twin of the kernel
// microbenchmarks: intrinsic-SP over a seeded random DNA database under
// the NUC +2/-3 match/mismatch matrix. The 15-letter alphabet shrinks the
// query profile but the inner loops are identical, so nucleotide Mcells/s
// should track the protein number; sim-GCUPS is the deterministic
// device-model figure the regression gate compares.
func BenchmarkKernelDNANuc(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	const bases = "ACGT"
	randDNA := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = bases[rng.Intn(4)]
		}
		return s
	}
	seqs := make([]*sequence.Sequence, 256)
	for i := range seqs {
		seqs[i] = sequence.NewAlpha(fmt.Sprintf("d%03d", i), randDNA(100+rng.Intn(600)), alphabet.DNA)
	}
	db := seqdb.New(seqs, true)
	dev := device.Xeon()
	lanes := dev.Lanes
	groups, _ := db.Partition(lanes, 0)
	q := profile.NewQuery(sequence.NewAlpha("q", randDNA(400), alphabet.DNA).Residues, submat.NUC)
	params := core.Params{Variant: core.IntrinsicSP, GapOpen: 10, GapExtend: 2, Blocked: true}
	bufs := core.NewBuffers(lanes)
	cells := int64(q.Len()) * db.Residues()
	threads := dev.MaxThreads()
	class := params.KernelClass()
	var cycles float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycles = 0
		for _, g := range groups {
			_, st := core.AlignGroup(q, g, params, bufs)
			shape := device.Shape{Width: g.Width, Lanes: g.Lanes, Residues: g.Residues}
			cycles += dev.GroupCost(class, q.Len(), shape, threads, st.OverflowCells)
		}
	}
	b.StopTimer()
	simSeconds := cycles / (float64(threads) * dev.ThreadRate(threads))
	b.ReportMetric(float64(cells)/simSeconds/1e9, "sim-GCUPS")
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

// Intra-task kernel microbenchmarks: Farrar's striped layout vs the
// anti-diagonal wavefront on one long pair (the two long-sequence engines).
func benchIntra(b *testing.B, striped bool) {
	seqs := datagen.Generate(datagen.Config{Sequences: 1, Seed: 17, MeanLen: 8000, SigmaLog: 0.01, MaxLen: 9000})
	subject := seqs[0]
	q := profile.NewQuery(datagen.GenerateQueries(7)[9].Residues, submat.BLOSUM62) // 1000 aa
	db := seqdb.New([]*sequence.Sequence{subject}, true)
	eng, err := core.NewEngine(db, device.Xeon())
	if err != nil {
		b.Fatal(err)
	}
	opt := core.SearchOptions{
		Params:       core.Params{Variant: core.IntrinsicSP, GapOpen: 10, GapExtend: 2, Blocked: true},
		StripedIntra: striped,
	}
	cells := float64(q.Len()) * float64(subject.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(&sequence.Sequence{ID: "q", Residues: q.Seq}, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

func BenchmarkIntraWavefront(b *testing.B) { benchIntra(b, false) }
func BenchmarkIntraStriped(b *testing.B)   { benchIntra(b, true) }

// BenchmarkSearchEndToEnd measures the full parallel functional search
// (Algorithm 1) on the host.
func BenchmarkSearchEndToEnd(b *testing.B) {
	db, queries := SyntheticSwissProt(0.002, true)
	q := queries[4]
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = db.Search(q, Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.WallGCUPS*1000, "wall-McUPS")
	b.ReportMetric(res.SimGCUPS, "sim-GCUPS")
}

// BenchmarkSearchHeteroEndToEnd measures the full Algorithm 2 execution.
func BenchmarkSearchHeteroEndToEnd(b *testing.B) {
	db, queries := SyntheticSwissProt(0.002, true)
	q := queries[4]
	b.ResetTimer()
	var res *HeteroResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = db.SearchHetero(q, HeteroOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.SimGCUPS, "sim-GCUPS")
}

// BenchmarkPairwiseAlign measures the reference full-matrix alignment with
// traceback.
func BenchmarkPairwiseAlign(b *testing.B) {
	qs := datagen.GenerateQueries(3)
	a := qs[4].Residues // 464
	c := qs[2].Residues // 222
	sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: 10, GapExtend: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		swalign.Align(a, c, sc)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(a))*float64(len(c))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

// BenchmarkPairwiseBanded measures banded rescoring (the seed-and-extend
// primitive).
func BenchmarkPairwiseBanded(b *testing.B) {
	qs := datagen.GenerateQueries(3)
	a := qs[4].Residues
	c := qs[9].Residues // 1000
	sc := swalign.Scoring{Matrix: submat.BLOSUM62, GapOpen: 10, GapExtend: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		swalign.ScoreBanded(a, c, sc, 0, 16)
	}
}

// BenchmarkScheduleSimulation measures the deterministic makespan
// simulator that replays OpenMP policies over half a million chunks.
func BenchmarkScheduleSimulation(b *testing.B) {
	lengths := datagen.Lengths(datagen.SwissProtConfig(1.0))
	shapes := seqdb.PackShapes(lengths, 32, true, core.DefaultLongSeqThreshold)
	phi := device.Phi()
	coeffs := phi.Coeffs(device.KernelClass{Blocked: true}, 1000, 32, 240)
	intra := phi.IntraCoeffs(1000)
	costs := make([]float64, len(shapes))
	for i, s := range shapes {
		if s.Intra {
			costs[i] = intra.Cost(s)
		} else {
			costs[i] = coeffs.Cost(s)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Simulate(costs, 240, sched.Dynamic, 1, phi.DispatchCycles)
	}
}

// BenchmarkProfileBuild measures score-profile construction, the per-column
// cost the SP variants amortise over the query length.
func BenchmarkProfileBuild(b *testing.B) {
	q := profile.NewQuery(datagen.GenerateQueries(3)[0].Residues, submat.BLOSUM62)
	sr := profile.NewScoreRows(32)
	residues := make([]uint8, 32)
	for i := range residues {
		residues[i] = uint8(i % 24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.Build(q, residues)
	}
}

// BenchmarkFASTAWrite measures database serialisation throughput.
func BenchmarkFASTAWrite(b *testing.B) {
	seqs := datagen.Generate(datagen.Config{Sequences: 200, Seed: 5})
	b.ResetTimer()
	var sink countingWriter
	for i := 0; i < b.N; i++ {
		if err := sequence.WriteFASTA(&sink, seqs, 60); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(sink.n / int64(b.N))
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }
