package heterosw

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// The golden end-to-end test pins the full two-phase reporting pipeline —
// top hits, scores, CIGARs, coordinates, identities, bit scores and
// E-values over a curated testdata query and mini-database — across all
// three surfaces: the library (Cluster.Search with ReportOptions), the
// HTTP front end (POST /search with align/evalue) and the swsearch -blast
// formatted output (WriteReport). Regenerate the expectations with
//
//	go test -run TestGolden -update .
//
// after an intentional output change, and review the diff.

var updateGolden = flag.Bool("update", false, "rewrite the golden files from current output")

const goldenTopK = 5

// goldenHit is one pinned hit; floats are stored to 6 significant digits
// so the file stays readable and insensitive to last-ulp drift.
type goldenHit struct {
	Index        int    `json:"index"`
	ID           string `json:"id"`
	Score        int    `json:"score"`
	Frame        int    `json:"frame,omitempty"`
	CIGAR        string `json:"cigar"`
	QueryStart   int    `json:"query_start"`
	QueryEnd     int    `json:"query_end"`
	SubjectStart int    `json:"subject_start"`
	SubjectEnd   int    `json:"subject_end"`
	QueryDNAFrom int    `json:"query_dna_start,omitempty"`
	QueryDNATo   int    `json:"query_dna_end,omitempty"`
	Identities   int    `json:"identities"`
	Columns      int    `json:"columns"`
	BitScore     string `json:"bit_score"`
	EValue       string `json:"evalue"`
}

type goldenFile struct {
	Query     string      `json:"query"`
	Sequences int         `json:"sequences"`
	Model     string      `json:"model"`
	Hits      []goldenHit `json:"hits"`
}

func sigDigits(v float64) string { return fmt.Sprintf("%.6g", v) }

func goldenSetup(t *testing.T) (*Database, Sequence, *Cluster) {
	t.Helper()
	qs, err := ReadFASTAFile("testdata/golden_query.fasta")
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := ReadFASTAFile("testdata/golden_db.fasta")
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(seqs)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(db, ClusterOptions{
		Devices: []DeviceKind{DeviceXeon, DevicePhi},
		Dist:    "dynamic",
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, qs[0], cl
}

func goldenFromResult(t *testing.T, query Sequence, db *Database, res *ClusterResult) goldenFile {
	t.Helper()
	if res.Significance == nil {
		t.Fatal("result carries no significance model")
	}
	out := goldenFile{
		Query:     query.ID(),
		Sequences: db.Len(),
		Model:     res.Significance.String(),
	}
	for _, h := range res.Hits {
		if h.Alignment == nil || h.Significance == nil {
			t.Fatalf("hit %s missing decorations: %+v", h.ID, h)
		}
		a := h.Alignment
		out.Hits = append(out.Hits, goldenHit{
			Index: h.Index, ID: h.ID, Score: h.Score, Frame: h.Frame,
			CIGAR:      a.CIGAR,
			QueryStart: a.QueryStart, QueryEnd: a.QueryEnd,
			SubjectStart: a.SubjectStart, SubjectEnd: a.SubjectEnd,
			QueryDNAFrom: a.QueryDNAStart, QueryDNATo: a.QueryDNAEnd,
			Identities: a.Identities, Columns: a.Columns,
			BitScore: sigDigits(h.Significance.BitScore),
			EValue:   sigDigits(h.Significance.EValue),
		})
	}
	return out
}

func goldenFromJSON(t *testing.T, query Sequence, db *Database, sr SearchJSON) goldenFile {
	t.Helper()
	if sr.Significance == "" {
		t.Fatal("HTTP response carries no significance model")
	}
	out := goldenFile{Query: query.ID(), Sequences: db.Len(), Model: sr.Significance}
	for _, h := range sr.Hits {
		if h.Alignment == nil || h.BitScore == nil || h.EValue == nil {
			t.Fatalf("HTTP hit %s missing decorations: %+v", h.ID, h)
		}
		a := h.Alignment
		out.Hits = append(out.Hits, goldenHit{
			Index: h.Index, ID: h.ID, Score: h.Score, Frame: h.Frame,
			CIGAR:      a.CIGAR,
			QueryStart: a.QueryStart, QueryEnd: a.QueryEnd,
			SubjectStart: a.SubjectStart, SubjectEnd: a.SubjectEnd,
			QueryDNAFrom: a.QueryDNAStart, QueryDNATo: a.QueryDNAEnd,
			Identities: a.Identities, Columns: a.Columns,
			BitScore: sigDigits(*h.BitScore),
			EValue:   sigDigits(*h.EValue),
		})
	}
	return out
}

func checkGoldenFile(t *testing.T, surface string, got goldenFile) {
	t.Helper()
	checkGoldenFileAt(t, surface, got, "testdata/golden.json")
}

func checkGoldenFileAt(t *testing.T, surface string, got goldenFile, path string) {
	t.Helper()
	raw, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if *updateGolden {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run: go test -run TestGolden -update .)", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("%s diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", surface, path, raw, want)
	}
}

// checkGoldenText pins raw text output (reports, SAM, TSV) at path.
func checkGoldenText(t *testing.T, surface string, got []byte, path string) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run: go test -run TestGolden -update .)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", surface, path, got, want)
	}
}

// TestGoldenClusterSearch pins the library surface and proves the
// traceback phase only ever aligned K sequences.
func TestGoldenClusterSearch(t *testing.T) {
	db, query, cl := goldenSetup(t)
	res, err := cl.Search(query, ReportOptions{Alignments: true, EValues: true, TopK: goldenTopK})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != goldenTopK {
		t.Fatalf("%d hits, want %d", len(res.Hits), goldenTopK)
	}
	checkGoldenFile(t, "Cluster.Search", goldenFromResult(t, query, db, res))

	// The acceptance pin: phase two aligned exactly K sequences, never
	// the 48-sequence database.
	_, per := cl.Totals()
	var tracebacks int64
	for _, bt := range per {
		tracebacks += bt.Tracebacks
	}
	if tracebacks != goldenTopK {
		t.Fatalf("traceback phase aligned %d sequences, want exactly %d", tracebacks, goldenTopK)
	}
}

// TestGoldenIndexSearch pins the .swdb load path against the same golden
// file: building an index from the golden FASTA (exactly what swindex
// build does), reloading it through the sniffing loader and searching must
// reproduce the FASTA-loaded pipeline's output byte for byte.
func TestGoldenIndexSearch(t *testing.T) {
	db, query, _ := goldenSetup(t)
	swdb := filepath.Join(t.TempDir(), "golden.swdb")
	if err := WriteIndexFile(swdb, db); err != nil {
		t.Fatal(err)
	}
	idb, err := LoadDatabaseFile(swdb)
	if err != nil {
		t.Fatal(err)
	}
	if !IsIndexFile(swdb) || IsIndexFile("testdata/golden_db.fasta") {
		t.Fatal("index sniffing misclassified a golden input")
	}
	cl, err := NewCluster(idb, ClusterOptions{
		Devices: []DeviceKind{DeviceXeon, DevicePhi},
		Dist:    "dynamic",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Search(query, ReportOptions{Alignments: true, EValues: true, TopK: goldenTopK})
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		t.Skip("golden files are regenerated from the FASTA path")
	}
	checkGoldenFile(t, "swdb Cluster.Search", goldenFromResult(t, query, idb, res))
}

// TestGoldenHTTPSearch pins the HTTP surface against the same golden
// file: POST /search with align and evalue must return byte-identical
// decorations.
func TestGoldenHTTPSearch(t *testing.T) {
	db, query, cl := goldenSetup(t)
	ts := httptest.NewServer(NewHTTPHandler(cl))
	t.Cleanup(func() { ts.Close(); cl.CloseNow() })

	resp, body := postJSON(t, ts.URL+"/search", map[string]any{
		"id":       query.ID(),
		"residues": query.String(),
		"top_k":    goldenTopK,
		"align":    true,
		"evalue":   true,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SearchJSON
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if len(sr.Hits) != goldenTopK {
		t.Fatalf("%d hits, want %d", len(sr.Hits), goldenTopK)
	}
	checkGoldenFile(t, "HTTP /search", goldenFromJSON(t, query, db, sr))
}

// TestGoldenReportText pins the swsearch -blast output: WriteReport is
// exactly what the CLI prints for the aligned search.
func TestGoldenReportText(t *testing.T) {
	db, query, cl := goldenSetup(t)
	res, err := cl.Search(query, ReportOptions{Alignments: true, EValues: true, TopK: goldenTopK})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, query, db, res, 60); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/golden_report.txt"
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run: go test -run TestGolden -update .)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
	}
}
