package heterosw

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"heterosw/internal/datagen"
)

// The distributed conformance and failure-mode harness: a coordinator
// over swserve shard nodes must be indistinguishable — modulo host wall
// times and per-backend accounting — from a single-node search of the
// unsplit database, and node failures at every stage (fan-out, mid-query,
// slow replica) must degrade to retried or hedged success, never to an
// error surfaced to the caller.

// distribOpts is the kernel configuration shared by the reference
// cluster, every shard node and the coordinator — the operator contract
// the README documents.
func distribOpts() ClusterOptions {
	return ClusterOptions{
		Options: Options{},
		Devices: []DeviceKind{DeviceXeon},
		Dist:    "static",
	}
}

// distribSetup builds the corpus once: a parent .swdb, its 2-shard split
// and the manifest. Returns the parent index path, the manifest path and
// the shard file paths.
func distribSetup(t testing.TB) (parentPath, manifestPath string, shardPaths []string, queries []Sequence) {
	t.Helper()
	dir := t.TempDir()
	seqs := wrapSeqs(datagen.Generate(datagen.Config{
		Sequences: 96, Seed: 4242, MeanLen: 90, SigmaLog: 0.5, MaxLen: 4000,
	}))
	db, err := NewDatabase(seqs)
	if err != nil {
		t.Fatal(err)
	}
	parentPath = filepath.Join(dir, "parent.swdb")
	if err := WriteIndexFile(parentPath, db); err != nil {
		t.Fatal(err)
	}
	manifestPath, err = SplitIndexFile(parentPath, 2, dir, "")
	if err != nil {
		t.Fatal(err)
	}
	shardPaths = []string{
		filepath.Join(dir, "parent-00.swdb"),
		filepath.Join(dir, "parent-01.swdb"),
	}
	donor := seqs[48].String()
	if len(donor) > 64 {
		donor = donor[:64]
	}
	queries = []Sequence{
		NewSequence("planted", donor),
		NewSequence("random", "MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPF"),
	}
	return parentPath, manifestPath, shardPaths, queries
}

// startShardNode serves the given shard files from one in-process node.
// wrap, when non-nil, decorates the node handler (fault injection).
func startShardNode(t testing.TB, shardPaths []string, wrap func(http.Handler) http.Handler) (*httptest.Server, *ShardServer) {
	t.Helper()
	clusters := make([]*Cluster, len(shardPaths))
	for i, p := range shardPaths {
		sdb, err := OpenIndexFile(p)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := NewCluster(sdb, distribOpts())
		if err != nil {
			t.Fatal(err)
		}
		clusters[i] = cl
	}
	ss, err := NewShardServer(clusters)
	if err != nil {
		t.Fatal(err)
	}
	h := ss.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		ss.CloseNow()
	})
	return srv, ss
}

// fastDistribOptions is the coordinator tuning used by the failure-mode
// tests: tight timeouts so a dead node is detected in milliseconds.
func fastDistribOptions() DistributedOptions {
	return DistributedOptions{
		Timeout: 5 * time.Second,
		Retries: 2,
		Backoff: time.Millisecond,
	}
}

// canonDistrib canonicalises a result for cross-topology comparison:
// wall times, simulated timing, thread counts and per-backend accounting
// legitimately differ between one local backend and N remote shards;
// scores, hits, alignments, significance and cell counts must not.
func canonDistrib(t testing.TB, res *ClusterResult) []byte {
	t.Helper()
	c := *res
	c.WallSeconds, c.WallGCUPS = 0, 0
	c.SimSeconds, c.SimGCUPS = 0, 0
	c.Threads = 0
	c.Backends = nil
	raw, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCoordinatorConformance pins the tentpole acceptance criterion: a
// coordinator over two loopback nodes holding the swindex-split halves
// of the database answers every query — scores, hits, E-values,
// alignments, and the rendered report — byte-identically to a
// single-node search of the unsplit database.
func TestCoordinatorConformance(t *testing.T) {
	parentPath, manifestPath, shardPaths, queries := distribSetup(t)

	nodeA, _ := startShardNode(t, shardPaths[:1], nil)
	nodeB, _ := startShardNode(t, shardPaths[1:], nil)

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{nodeA.URL, nodeB.URL}, fastDistribOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseNow()

	refDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCluster(refDB, distribOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.CloseNow()

	rep := ReportOptions{Alignments: true, EValues: true, TopK: 5}
	for _, q := range queries {
		want, err := ref.Search(q, rep)
		if err != nil {
			t.Fatalf("reference Search(%s): %v", q.ID(), err)
		}
		got, err := coord.Search(q, rep)
		if err != nil {
			t.Fatalf("coordinator Search(%s): %v", q.ID(), err)
		}
		if w, g := canonDistrib(t, want), canonDistrib(t, got); !bytes.Equal(w, g) {
			t.Errorf("query %s: coordinator result differs from single-node:\nwant %s\ngot  %s", q.ID(), w, g)
		}
		// The scheduled path must agree too (it is what swserve serves).
		sched, err := coord.SearchScheduled(context.Background(), q, rep)
		if err != nil {
			t.Fatalf("coordinator SearchScheduled(%s): %v", q.ID(), err)
		}
		if w, g := canonDistrib(t, want), canonDistrib(t, sched); !bytes.Equal(w, g) {
			t.Errorf("query %s: scheduled coordinator result differs from single-node", q.ID())
		}
		// The rendered report carries no timing at all, so it must be
		// byte-identical with no canonicalisation.
		var wantRep, gotRep bytes.Buffer
		if err := WriteReport(&wantRep, q, refDB, want, 60); err != nil {
			t.Fatal(err)
		}
		if err := WriteReport(&gotRep, q, parentDB, got, 60); err != nil {
			t.Fatal(err)
		}
		if wantRep.String() != gotRep.String() {
			t.Errorf("query %s: rendered reports differ:\n--- single-node\n%s\n--- coordinator\n%s",
				q.ID(), wantRep.String(), gotRep.String())
		}
		// Cells must merge exactly: useful cells are sharding-independent.
		if want.Cells != got.Cells {
			t.Errorf("query %s: cells %d != single-node %d", q.ID(), got.Cells, want.Cells)
		}
	}
}

// TestCoordinatorNodeDownAtFanout pins fan-out degradation: both nodes
// replicate both shards, one node dies after discovery, and every
// request retries over to the survivor — no error reaches the caller.
func TestCoordinatorNodeDownAtFanout(t *testing.T) {
	parentPath, manifestPath, shardPaths, queries := distribSetup(t)

	nodeA, _ := startShardNode(t, shardPaths, nil) // replicates both shards
	nodeB, _ := startShardNode(t, shardPaths, nil)

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{nodeA.URL, nodeB.URL}, fastDistribOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseNow()

	// Kill the primary after discovery, before any query.
	nodeA.Close()

	res, err := coord.Search(queries[0])
	if err != nil {
		t.Fatalf("search with a dead primary must retry to the replica, got: %v", err)
	}
	if len(res.Hits) == 0 || res.Hits[0].Score <= 0 {
		t.Fatalf("degraded search returned no hits: %+v", res.Hits)
	}
}

// TestCoordinatorNodeDiesMidQuery pins mid-flight death: the primary
// accepts the search request and then aborts the connection; the
// transport failure is retryable, so the retry (to the replica) answers.
func TestCoordinatorNodeDiesMidQuery(t *testing.T) {
	parentPath, manifestPath, shardPaths, queries := distribSetup(t)

	var aborted atomic.Int64
	dying, _ := startShardNode(t, shardPaths, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/shard/search" {
				aborted.Add(1)
				panic(http.ErrAbortHandler) // die mid-request: torn connection
			}
			next.ServeHTTP(w, r)
		})
	})
	healthy, _ := startShardNode(t, shardPaths, nil)

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{dying.URL, healthy.URL}, fastDistribOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseNow()

	res, err := coord.Search(queries[0])
	if err != nil {
		t.Fatalf("search through a node dying mid-query must retry, got: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("degraded search returned no hits")
	}
	if aborted.Load() == 0 {
		t.Fatal("fault was never injected; the test proved nothing")
	}
}

// TestCoordinatorRetryThenSuccess pins the 503 retry path end to end:
// the primary answers 503 (draining) for its first search, then recovers;
// the coordinator's retry lands on the replica (or the recovered
// primary) and the caller sees clean success.
func TestCoordinatorRetryThenSuccess(t *testing.T) {
	parentPath, manifestPath, shardPaths, queries := distribSetup(t)

	var searches atomic.Int64
	flaky, _ := startShardNode(t, shardPaths, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/shard/search" && searches.Add(1) == 1 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"error":"draining"}`)
				return
			}
			next.ServeHTTP(w, r)
		})
	})

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{flaky.URL}, fastDistribOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseNow()

	res, err := coord.Search(queries[0])
	if err != nil {
		t.Fatalf("search through a briefly-draining node must retry, got: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("retried search returned no hits")
	}
	if searches.Load() < 2 {
		t.Fatalf("node saw %d searches; the 503 was never retried", searches.Load())
	}
}

// TestCoordinatorHedgeSlowReplica pins tail-latency hedging: the primary
// replica stalls, the hedge fires to the second replica, the winner's
// answer is used and the stalled loser observes cancellation.
func TestCoordinatorHedgeSlowReplica(t *testing.T) {
	parentPath, manifestPath, shardPaths, queries := distribSetup(t)

	loserCancelled := make(chan struct{}, 16)
	slow, _ := startShardNode(t, shardPaths, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/shard/search" {
				// Stall until the hedge winner cancels us. Drain the body
				// first so net/http watches for the disconnect.
				io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				loserCancelled <- struct{}{}
				return
			}
			next.ServeHTTP(w, r)
		})
	})
	fast, _ := startShardNode(t, shardPaths, nil)

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	opt := fastDistribOptions()
	opt.Retries = -1 // isolate hedging from retries
	opt.HedgeDelay = 5 * time.Millisecond
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{slow.URL, fast.URL}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseNow()

	res, err := coord.Search(queries[0])
	if err != nil {
		t.Fatalf("hedged search over a stalled primary must win via the replica, got: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("hedged search returned no hits")
	}
	select {
	case <-loserCancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled loser was never cancelled")
	}
}

// BenchmarkCoordinatorLoopback measures a coordinator fanning one query
// out to two loopback shard nodes — wire encoding, HTTP round trips and
// the score merge included. Search (not SearchScheduled) is used so the
// LRU cache cannot short-circuit repeated queries.
func BenchmarkCoordinatorLoopback(b *testing.B) {
	parentPath, manifestPath, shardPaths, queries := distribSetup(b)
	nodeA, _ := startShardNode(b, shardPaths[:1], nil)
	nodeB, _ := startShardNode(b, shardPaths[1:], nil)
	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		b.Fatal(err)
	}
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{nodeA.URL, nodeB.URL}, fastDistribOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer coord.CloseNow()

	q := queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.Search(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkCoordinatorSingleNode is the in-process baseline for
// BenchmarkCoordinatorLoopback: the same corpus and query through one
// local cluster, so the delta is the distribution overhead.
func BenchmarkCoordinatorSingleNode(b *testing.B) {
	parentPath, _, _, queries := distribSetup(b)
	refDB, err := OpenIndexFile(parentPath)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := NewCluster(refDB, distribOpts())
	if err != nil {
		b.Fatal(err)
	}
	defer ref.CloseNow()

	q := queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Search(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// TestCoordinatorRejectsWrongParent pins the identity check: a manifest
// cut from a different database must be refused at construction.
func TestCoordinatorRejectsWrongParent(t *testing.T) {
	_, manifestPath, shardPaths, _ := distribSetup(t)
	node, _ := startShardNode(t, shardPaths, nil)

	otherSeqs := wrapSeqs(datagen.Generate(datagen.Config{
		Sequences: 64, Seed: 99, MeanLen: 80, SigmaLog: 0.4, MaxLen: 2000,
	}))
	otherDB, err := NewDatabase(otherSeqs)
	if err != nil {
		t.Fatal(err)
	}
	otherPath := filepath.Join(t.TempDir(), "other.swdb")
	if err := WriteIndexFile(otherPath, otherDB); err != nil {
		t.Fatal(err)
	}
	wrong, err := OpenIndexFile(otherPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDistributedCluster(context.Background(), wrong, manifestPath, []string{node.URL}, fastDistribOptions()); err == nil {
		t.Fatal("a coordinator over the wrong parent database must be refused")
	} else if !strings.Contains(err.Error(), "manifest parent") {
		t.Fatalf("refusal should name the key mismatch, got: %v", err)
	}
}

// TestCoordinatorUnownedShard pins the coverage check: if no probed node
// serves some manifest shard, construction fails loudly instead of
// silently dropping those sequences from every result.
func TestCoordinatorUnownedShard(t *testing.T) {
	parentPath, manifestPath, shardPaths, _ := distribSetup(t)
	nodeA, _ := startShardNode(t, shardPaths[:1], nil) // serves only shard 0

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{nodeA.URL}, fastDistribOptions())
	if err == nil {
		t.Fatal("a shard nobody serves must fail construction")
	}
	if !strings.Contains(err.Error(), "no node serves shard") {
		t.Fatalf("error should name the unowned shard, got: %v", err)
	}
}
