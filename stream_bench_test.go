package heterosw

// Streaming throughput benchmarks: the acceptance evidence that the
// micro-batching scheduler beats the PR-1 per-query worker on a >= 64
// query stream.
//
// Two workloads:
//
//   - Hot: 64 requests drawn from a pool of 16 distinct queries — the
//     serving shape (real query traffic repeats its hot queries). The
//     scheduler answers repeats from the LRU cache and joins identical
//     in-flight queries, so it does a quarter of the kernel work; the
//     serial worker recomputes all 64.
//   - Distinct: 64 unique queries — the scheduler's worst case, included
//     to show micro-batching costs nothing when there is nothing to
//     share. On multi-core hosts MaxInFlight batches overlap and win;
//     on a single core this is parity.
//
// Each iteration builds a fresh cluster so the cache never carries over
// between iterations; both sides pay identical engine/lane-packing setup.

import (
	"fmt"
	"testing"
)

const (
	benchStreamQueries  = 64
	benchStreamDistinct = 16
	benchStreamQueryLen = 100
	benchStreamScale    = 0.0002
)

// benchQueryPool builds the distinct query pool once.
func benchQueryPool(n int) []Sequence {
	const letters = "ARNDCQEGHILKMFPSTWYV"
	out := make([]Sequence, n)
	seed := uint32(7)
	for i := range out {
		buf := make([]byte, benchStreamQueryLen)
		for j := range buf {
			seed = seed*1664525 + 1013904223
			buf[j] = letters[seed%uint32(len(letters))]
		}
		out[i] = NewSequence(fmt.Sprintf("bq%d", i), string(buf))
	}
	return out
}

// benchStream builds the request schedule: n requests over the pool,
// interleaved so repeats are spread across the stream as serving traffic
// spreads its hot queries.
func benchStream(pool []Sequence, n int) []Sequence {
	out := make([]Sequence, n)
	for i := range out {
		out[i] = pool[(i*7)%len(pool)]
	}
	return out
}

var benchStreamDB *Database

func benchDB(b *testing.B) *Database {
	b.Helper()
	if benchStreamDB == nil {
		benchStreamDB, _ = SyntheticSwissProt(benchStreamScale, false)
	}
	return benchStreamDB
}

// runSerialWorker replays the PR-1 streaming pipeline exactly: one worker
// goroutine popping an intake queue, searching one query at a time and
// sending into a buffered results channel drained by the consumer.
func runSerialWorker(b *testing.B, cl *Cluster, stream []Sequence) {
	b.Helper()
	out := make(chan StreamResult, streamBuffer)
	go func() {
		for i, q := range stream {
			res, err := cl.Search(q)
			out <- StreamResult{Index: i, Query: q, Result: res, Err: err}
		}
		close(out)
	}()
	got := 0
	for sr := range out {
		if sr.Err != nil {
			b.Fatal(sr.Err)
		}
		got++
	}
	if got != len(stream) {
		b.Fatalf("drained %d of %d", got, len(stream))
	}
}

// runScheduler pushes the same stream through the micro-batching
// scheduler and drains in order.
func runScheduler(b *testing.B, cl *Cluster, stream []Sequence) {
	b.Helper()
	st := cl.NewStream(nil)
	go func() {
		for _, q := range stream {
			if err := st.Submit(q); err != nil {
				b.Error(err)
				return
			}
		}
		st.Close()
	}()
	got := 0
	for sr := range st.Results() {
		if sr.Err != nil {
			b.Fatal(sr.Err)
		}
		if sr.Index != got {
			b.Fatalf("result %d out of order (want %d)", sr.Index, got)
		}
		got++
	}
	if got != len(stream) {
		b.Fatalf("drained %d of %d", got, len(stream))
	}
}

func benchCluster(b *testing.B) *Cluster {
	b.Helper()
	cl, err := NewCluster(benchDB(b), ClusterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return cl
}

func reportStreamRate(b *testing.B, queries int) {
	b.Helper()
	b.ReportMetric(float64(queries*b.N)/b.Elapsed().Seconds(), "queries/s")
}

func benchSerial(b *testing.B, stream []Sequence) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSerialWorker(b, benchCluster(b), stream)
	}
	b.StopTimer()
	reportStreamRate(b, len(stream))
}

func benchSched(b *testing.B, stream []Sequence) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runScheduler(b, benchCluster(b), stream)
	}
	b.StopTimer()
	reportStreamRate(b, len(stream))
}

func BenchmarkStreamSerialWorkerHot(b *testing.B) {
	benchSerial(b, benchStream(benchQueryPool(benchStreamDistinct), benchStreamQueries))
}

func BenchmarkStreamSchedulerHot(b *testing.B) {
	benchSched(b, benchStream(benchQueryPool(benchStreamDistinct), benchStreamQueries))
}

func BenchmarkStreamSerialWorkerDistinct(b *testing.B) {
	benchSerial(b, benchStream(benchQueryPool(benchStreamQueries), benchStreamQueries))
}

func BenchmarkStreamSchedulerDistinct(b *testing.B) {
	benchSched(b, benchStream(benchQueryPool(benchStreamQueries), benchStreamQueries))
}
