package heterosw

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteReport renders an aligned search as a BLAST-style text report: a
// header describing the query, database and fitted significance model, a
// ranked hit table (score, bit score, E-value, identities, CIGAR — each
// column present when the corresponding reporting phase ran), and a
// wrapped three-line alignment block for every hit that carries a
// traceback. This is the output format of swsearch -blast; the golden
// end-to-end test pins it.
//
// width sets the alignment wrap column (60 when <= 0). Results produced
// without ReportOptions render as a plain score table.
func WriteReport(w io.Writer, query Sequence, db *Database, res *ClusterResult, width int) error {
	if query.impl == nil {
		return fmt.Errorf("heterosw: zero-value query")
	}
	if db == nil || res == nil {
		return fmt.Errorf("heterosw: nil database or result")
	}
	if width <= 0 {
		width = 60
	}
	var sb strings.Builder
	unit := "aa"
	if query.Alphabet() == "dna" {
		unit = "nt"
	}
	fmt.Fprintf(&sb, "query:    %s (%d %s)\n", query.ID(), query.Len(), unit)
	fmt.Fprintf(&sb, "database: %s\n", db)
	if res.Significance != nil {
		fmt.Fprintf(&sb, "model:    %s\n", res.Significance)
	}
	sb.WriteByte('\n')

	idw := len("subject")
	for _, h := range res.Hits {
		if len(h.ID) > idw {
			idw = len(h.ID)
		}
	}
	fmt.Fprintf(&sb, "%4s  %-*s %7s", "#", idw, "subject", "score")
	withSig := res.Significance != nil
	var withAlign, withFrame bool
	for _, h := range res.Hits {
		if h.Alignment != nil {
			withAlign = true
		}
		if h.Frame != 0 {
			withFrame = true
		}
	}
	if withFrame {
		fmt.Fprintf(&sb, " %5s", "frame")
	}
	if withSig {
		fmt.Fprintf(&sb, " %8s %10s", "bits", "e-value")
	}
	if withAlign {
		fmt.Fprintf(&sb, "  %-11s %s", "identities", "cigar")
	}
	sb.WriteByte('\n')
	for i, h := range res.Hits {
		fmt.Fprintf(&sb, "%4d  %-*s %7d", i+1, idw, h.ID, h.Score)
		if withFrame {
			fmt.Fprintf(&sb, " %+5d", h.Frame)
		}
		if withSig {
			if h.Significance != nil {
				fmt.Fprintf(&sb, " %8.1f %10.3g", h.Significance.BitScore, h.Significance.EValue)
			} else {
				fmt.Fprintf(&sb, " %8s %10s", "-", "-")
			}
		}
		if withAlign {
			if a := h.Alignment; a != nil {
				fmt.Fprintf(&sb, "  %-11s %s", fmt.Sprintf("%d/%d", a.Identities, a.Columns), a.CIGAR)
			} else {
				fmt.Fprintf(&sb, "  %-11s %s", "-", "-")
			}
		}
		sb.WriteByte('\n')
	}

	var frames map[int]Sequence
	for _, h := range res.Hits {
		if h.Alignment == nil {
			continue
		}
		// Translated hits expand their CIGAR against the winning frame's
		// protein, not the DNA query.
		q := query
		if h.Frame != 0 {
			if frames == nil {
				frames = frameQueries(query)
			}
			q = frames[h.Frame]
		}
		sb.WriteByte('\n')
		if err := renderHitAlignment(&sb, q, db.Seq(h.Index), h, width); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// renderHitAlignment writes one hit's BLAST-style alignment block: a
// header line with score, range and identity summary, then wrapped
// query/midline/subject rows with 1-based residue coordinates.
func renderHitAlignment(sb *strings.Builder, query, subject Sequence, h Hit, width int) error {
	a := h.Alignment
	fmt.Fprintf(sb, "> %s  score=%d", h.ID, h.Score)
	if h.Frame != 0 {
		fmt.Fprintf(sb, " frame=%+d query_dna=%d..%d", h.Frame, a.QueryDNAStart+1, a.QueryDNAEnd)
	}
	if s := h.Significance; s != nil {
		fmt.Fprintf(sb, " bits=%.1f evalue=%.3g", s.BitScore, s.EValue)
	}
	sb.WriteByte('\n')
	if a.CIGAR == "*" || a.Columns == 0 {
		sb.WriteString("  (no alignment)\n")
		return nil
	}
	fmt.Fprintf(sb, "  identities=%d/%d (%.0f%%), query %d..%d, subject %d..%d\n",
		a.Identities, a.Columns, 100*float64(a.Identities)/float64(a.Columns),
		a.QueryStart+1, a.QueryEnd, a.SubjectStart+1, a.SubjectEnd)

	qSeq, sSeq := query.String(), subject.String()
	qRow, mRow, sRow, err := expandCIGAR(a, qSeq, sSeq)
	if err != nil {
		return fmt.Errorf("heterosw: hit %s: %w", h.ID, err)
	}
	qPos, sPos := a.QueryStart+1, a.SubjectStart+1
	for off := 0; off < len(qRow); off += width {
		end := off + width
		if end > len(qRow) {
			end = len(qRow)
		}
		qEnd, sEnd := qPos, sPos
		for _, b := range qRow[off:end] {
			if b != '-' {
				qEnd++
			}
		}
		for _, b := range sRow[off:end] {
			if b != '-' {
				sEnd++
			}
		}
		// A wrapped row that consumes no residues of one sequence (a gap
		// run spanning the whole row) labels both ends with the last
		// consumed coordinate, as BLAST does — never an inverted n..n-1
		// range. A local alignment starts and ends on match columns, so a
		// consumed residue always precedes such a row.
		qFrom, qTo := qPos, qEnd-1
		if qEnd == qPos {
			qFrom = qPos - 1
			qTo = qPos - 1
		}
		sFrom, sTo := sPos, sEnd-1
		if sEnd == sPos {
			sFrom = sPos - 1
			sTo = sPos - 1
		}
		fmt.Fprintf(sb, "  Query %6d %s %d\n", qFrom, qRow[off:end], qTo)
		fmt.Fprintf(sb, "  %12s %s\n", "", mRow[off:end])
		fmt.Fprintf(sb, "  Sbjct %6d %s %d\n", sFrom, sRow[off:end], sTo)
		qPos, sPos = qEnd, sEnd
	}
	return nil
}

// expandCIGAR reconstructs the three display rows of an alignment from
// its CIGAR path and the two sequences: M columns consume a residue of
// both, D a residue of the subject against a gap in the query, I a
// residue of the query against a gap in the subject.
func expandCIGAR(a *HitAlignment, qSeq, sSeq string) (qRow, mRow, sRow []byte, err error) {
	qi, si := a.QueryStart, a.SubjectStart
	c := a.CIGAR
	for i := 0; i < len(c); {
		j := i
		for j < len(c) && c[j] >= '0' && c[j] <= '9' {
			j++
		}
		if j == i || j >= len(c) {
			return nil, nil, nil, fmt.Errorf("malformed CIGAR %q", c)
		}
		run, aerr := strconv.Atoi(c[i:j])
		if aerr != nil || run <= 0 {
			return nil, nil, nil, fmt.Errorf("malformed CIGAR %q", c)
		}
		op := c[j]
		i = j + 1
		for k := 0; k < run; k++ {
			switch op {
			case 'M':
				if qi >= len(qSeq) || si >= len(sSeq) {
					return nil, nil, nil, fmt.Errorf("CIGAR %q overruns sequences", c)
				}
				qb, sb := qSeq[qi], sSeq[si]
				qRow = append(qRow, qb)
				sRow = append(sRow, sb)
				if qb == sb {
					mRow = append(mRow, '|')
				} else {
					mRow = append(mRow, ' ')
				}
				qi++
				si++
			case 'D': // gap in the query, consuming a subject residue
				if si >= len(sSeq) {
					return nil, nil, nil, fmt.Errorf("CIGAR %q overruns subject", c)
				}
				qRow = append(qRow, '-')
				mRow = append(mRow, ' ')
				sRow = append(sRow, sSeq[si])
				si++
			case 'I': // query residue against a gap in the subject
				if qi >= len(qSeq) {
					return nil, nil, nil, fmt.Errorf("CIGAR %q overruns query", c)
				}
				qRow = append(qRow, qSeq[qi])
				mRow = append(mRow, ' ')
				sRow = append(sRow, '-')
				qi++
			default:
				return nil, nil, nil, fmt.Errorf("unknown CIGAR op %q in %q", op, c)
			}
		}
	}
	if qi != a.QueryEnd || si != a.SubjectEnd {
		return nil, nil, nil, fmt.Errorf("CIGAR %q ends at query %d subject %d, want %d %d",
			c, qi, si, a.QueryEnd, a.SubjectEnd)
	}
	return qRow, mRow, sRow, nil
}
