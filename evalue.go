package heterosw

import (
	"heterosw/internal/stats"
)

// Significance is a fitted statistical model of a search's null score
// distribution, for converting raw Smith-Waterman scores into E-values
// (the expected number of equal-or-better chance hits in a database of
// this size) — the significance measure BLAST-style tools report.
type Significance struct {
	impl *stats.EValueModel
}

// FitSignificance fits an extreme-value (Gumbel) null model to this
// search's score list. The bulk of any large database is unrelated to the
// query, so the empirical score distribution estimates the null; the top
// trimFrac fraction of scores is excluded as suspected homologs (0 selects
// the 1% default). Requires a few dozen database sequences.
func (r *Result) FitSignificance(trimFrac float64) (*Significance, error) {
	m, err := stats.FitEValues(r.Scores, trimFrac)
	if err != nil {
		return nil, err
	}
	return &Significance{impl: m}, nil
}

// EValue returns the expected number of database subjects reaching score s
// by chance; values well below 1 indicate likely homology.
func (s *Significance) EValue(score int) float64 { return s.impl.EValue(score) }

// PValue returns the probability of one unrelated subject reaching score
// s.
func (s *Significance) PValue(score int) float64 { return s.impl.PValue(score) }

// BitScore converts a raw score into the fitted model's bit scale.
func (s *Significance) BitScore(score int) float64 { return s.impl.BitScore(score) }

// String summarises the fitted parameters.
func (s *Significance) String() string { return s.impl.String() }
