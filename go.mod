module heterosw

go 1.24
